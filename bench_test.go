// Benchmarks regenerating the paper's evaluation at testing.B scale: one
// benchmark family per figure. These run each system's transaction loop on
// a preloaded structure with the paper's workload parameters scaled to
// laptop size; cmd/medley-bench performs the full thread sweeps.
package medley_test

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"medley/internal/harness"
	"medley/internal/montage"
	"medley/internal/onefile"
	"medley/internal/tpcc"
)

// benchKeyRange and benchPreload are scaled-down versions of the paper's
// 1M/0.5M microbenchmark parameters so the preload fits in benchmark time.
const (
	benchKeyRange = 1 << 16
	benchPreload  = 1 << 15
	benchBuckets  = 1 << 16
)

// benchLoop preloads sys and measures b.N transactions of the given mix.
func benchLoop(b *testing.B, sys harness.System, ratio harness.Ratio) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, benchPreload)
	for i := range keys {
		keys[i] = uint64(rng.Int63n(benchKeyRange))
	}
	sys.Preload(keys)
	stop := sys.Start()
	defer stop()
	w := sys.NewWorker()
	ops := make([]harness.Op, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 1 + rng.Intn(10)
		ops = ops[:0]
		for j := 0; j < n; j++ {
			var kind harness.OpKind
			total := ratio.Get + ratio.Insert + ratio.Remove
			x := rng.Intn(total)
			switch {
			case x < ratio.Get:
				kind = harness.OpGet
			case x < ratio.Get+ratio.Insert:
				kind = harness.OpInsert
			default:
				kind = harness.OpRemove
			}
			ops = append(ops, harness.Op{Kind: kind, Key: uint64(rng.Int63n(benchKeyRange)), Val: rng.Uint64()})
		}
		w.Do(ops)
	}
}

// ratioFor maps the benchmark suffix to the paper's mixes.
func ratioFor(name string) harness.Ratio {
	switch name {
	case "W": // write-only 0:1:1
		return harness.Ratio{Get: 0, Insert: 1, Remove: 1}
	case "M": // mixed 2:1:1
		return harness.Ratio{Get: 2, Insert: 1, Remove: 1}
	default: // read-mostly 18:1:1
		return harness.Ratio{Get: 18, Insert: 1, Remove: 1}
	}
}

// ---- Figure 7: transactional hash tables ----

func BenchmarkFig7_Medley_W(b *testing.B) {
	benchLoop(b, harness.NewMedleyHash(benchBuckets), ratioFor("W"))
}
func BenchmarkFig7_Medley_M(b *testing.B) {
	benchLoop(b, harness.NewMedleyHash(benchBuckets), ratioFor("M"))
}
func BenchmarkFig7_Medley_R(b *testing.B) {
	benchLoop(b, harness.NewMedleyHash(benchBuckets), ratioFor("R"))
}

func fig7Montage() harness.System {
	return harness.NewMontage(harness.MontageOpts{
		Buckets: benchBuckets, RegionWords: 1 << 24,
		WriteBackLatency: 300 * time.Nanosecond, FenceLatency: 100 * time.Nanosecond,
		StoreLatency: 60 * time.Nanosecond,
	})
}

func BenchmarkFig7_TxMontage_W(b *testing.B) { benchLoop(b, fig7Montage(), ratioFor("W")) }
func BenchmarkFig7_TxMontage_M(b *testing.B) { benchLoop(b, fig7Montage(), ratioFor("M")) }
func BenchmarkFig7_TxMontage_R(b *testing.B) { benchLoop(b, fig7Montage(), ratioFor("R")) }

func BenchmarkFig7_OneFile_W(b *testing.B) {
	benchLoop(b, harness.NewOneFile(harness.OneFileOpts{Buckets: benchBuckets}), ratioFor("W"))
}
func BenchmarkFig7_OneFile_M(b *testing.B) {
	benchLoop(b, harness.NewOneFile(harness.OneFileOpts{Buckets: benchBuckets}), ratioFor("M"))
}
func BenchmarkFig7_OneFile_R(b *testing.B) {
	benchLoop(b, harness.NewOneFile(harness.OneFileOpts{Buckets: benchBuckets}), ratioFor("R"))
}

func fig7POneFile() harness.System {
	return harness.NewOneFile(harness.OneFileOpts{
		Buckets: benchBuckets, Persistent: true, RegionWords: 1 << 22,
		WriteBackLatency: 300 * time.Nanosecond, FenceLatency: 100 * time.Nanosecond,
	})
}

func BenchmarkFig7_POneFile_W(b *testing.B) { benchLoop(b, fig7POneFile(), ratioFor("W")) }
func BenchmarkFig7_POneFile_R(b *testing.B) { benchLoop(b, fig7POneFile(), ratioFor("R")) }

// ---- Figure 8: transactional skiplists ----

func BenchmarkFig8_Medley_W(b *testing.B) { benchLoop(b, harness.NewMedleySkip(), ratioFor("W")) }
func BenchmarkFig8_Medley_M(b *testing.B) { benchLoop(b, harness.NewMedleySkip(), ratioFor("M")) }
func BenchmarkFig8_Medley_R(b *testing.B) { benchLoop(b, harness.NewMedleySkip(), ratioFor("R")) }

func fig8Montage() harness.System {
	return harness.NewMontage(harness.MontageOpts{
		Skiplist: true, RegionWords: 1 << 24,
		WriteBackLatency: 300 * time.Nanosecond, FenceLatency: 100 * time.Nanosecond,
		StoreLatency: 60 * time.Nanosecond,
	})
}

func BenchmarkFig8_TxMontage_W(b *testing.B) { benchLoop(b, fig8Montage(), ratioFor("W")) }
func BenchmarkFig8_TxMontage_R(b *testing.B) { benchLoop(b, fig8Montage(), ratioFor("R")) }

func BenchmarkFig8_OneFile_W(b *testing.B) {
	benchLoop(b, harness.NewOneFile(harness.OneFileOpts{Skiplist: true}), ratioFor("W"))
}
func BenchmarkFig8_OneFile_R(b *testing.B) {
	benchLoop(b, harness.NewOneFile(harness.OneFileOpts{Skiplist: true}), ratioFor("R"))
}

func fig8POneFile() harness.System {
	return harness.NewOneFile(harness.OneFileOpts{
		Skiplist: true, Persistent: true, RegionWords: 1 << 22,
		WriteBackLatency: 300 * time.Nanosecond, FenceLatency: 100 * time.Nanosecond,
	})
}

func BenchmarkFig8_POneFile_W(b *testing.B) { benchLoop(b, fig8POneFile(), ratioFor("W")) }

func BenchmarkFig8_TDSL_W(b *testing.B) { benchLoop(b, harness.NewTDSL(), ratioFor("W")) }
func BenchmarkFig8_TDSL_M(b *testing.B) { benchLoop(b, harness.NewTDSL(), ratioFor("M")) }
func BenchmarkFig8_TDSL_R(b *testing.B) { benchLoop(b, harness.NewTDSL(), ratioFor("R")) }

func BenchmarkFig8_LFTT_W(b *testing.B) { benchLoop(b, harness.NewLFTT(), ratioFor("W")) }
func BenchmarkFig8_LFTT_M(b *testing.B) { benchLoop(b, harness.NewLFTT(), ratioFor("M")) }
func BenchmarkFig8_LFTT_R(b *testing.B) { benchLoop(b, harness.NewLFTT(), ratioFor("R")) }

// ---- Figure 9: TPC-C subset ----

func benchTPCC(b *testing.B, mk func() tpcc.Backend) {
	b.Helper()
	scale := tpcc.Scale{Warehouses: 2, Districts: 4, Customers: 30, Items: 200}
	back := mk()
	if err := tpcc.Load(back, scale); err != nil {
		b.Fatal(err)
	}
	var stopAdv func()
	if mb, ok := back.(*tpcc.MontageBackend); ok {
		stopAdv = mb.StartAdvancer(20 * time.Millisecond)
		defer stopAdv()
	}
	d := tpcc.NewDriver(back, scale, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_TPCC_Medley(b *testing.B) {
	benchTPCC(b, func() tpcc.Backend { return tpcc.NewMedleyBackend() })
}
func BenchmarkFig9_TPCC_TxMontage(b *testing.B) {
	benchTPCC(b, func() tpcc.Backend {
		return tpcc.NewMontageBackend(montage.NewSystem(montage.Config{
			RegionWords:      1 << 24,
			WriteBackLatency: 300 * time.Nanosecond,
			FenceLatency:     100 * time.Nanosecond,
			StoreLatency:     60 * time.Nanosecond,
		}))
	})
}
func BenchmarkFig9_TPCC_OneFile(b *testing.B) {
	benchTPCC(b, func() tpcc.Backend { return tpcc.NewOneFileBackend(onefile.New(), "OneFile") })
}
func BenchmarkFig9_TPCC_TDSL(b *testing.B) {
	benchTPCC(b, func() tpcc.Backend { return tpcc.NewTDSLBackend() })
}

// ---- Figure 10: latency decomposition ----

func BenchmarkFig10a_Original_W(b *testing.B) {
	benchLoop(b, harness.NewOriginalSkip(), ratioFor("W"))
}
func BenchmarkFig10a_Original_M(b *testing.B) {
	benchLoop(b, harness.NewOriginalSkip(), ratioFor("M"))
}
func BenchmarkFig10a_Original_R(b *testing.B) {
	benchLoop(b, harness.NewOriginalSkip(), ratioFor("R"))
}

func BenchmarkFig10a_TxOff_W(b *testing.B) { benchLoop(b, harness.NewTxOffSkip(), ratioFor("W")) }
func BenchmarkFig10a_TxOff_M(b *testing.B) { benchLoop(b, harness.NewTxOffSkip(), ratioFor("M")) }
func BenchmarkFig10a_TxOff_R(b *testing.B) { benchLoop(b, harness.NewTxOffSkip(), ratioFor("R")) }

func BenchmarkFig10a_TxOn_W(b *testing.B) { benchLoop(b, harness.NewMedleySkip(), ratioFor("W")) }
func BenchmarkFig10a_TxOn_M(b *testing.B) { benchLoop(b, harness.NewMedleySkip(), ratioFor("M")) }
func BenchmarkFig10a_TxOn_R(b *testing.B) { benchLoop(b, harness.NewMedleySkip(), ratioFor("R")) }

func fig10bNVM() harness.System {
	return harness.NewMontage(harness.MontageOpts{
		Skiplist: true, RegionWords: 1 << 24, PersistOff: true,
		StoreLatency: 60 * time.Nanosecond,
	})
}

func BenchmarkFig10b_NVMTransient_W(b *testing.B) { benchLoop(b, fig10bNVM(), ratioFor("W")) }
func BenchmarkFig10b_NVMTransient_R(b *testing.B) { benchLoop(b, fig10bNVM(), ratioFor("R")) }

func BenchmarkFig10c_TxMontage_W(b *testing.B) { benchLoop(b, fig8Montage(), ratioFor("W")) }
func BenchmarkFig10c_TxMontage_R(b *testing.B) { benchLoop(b, fig8Montage(), ratioFor("R")) }

// ---- Workload-engine scenarios (beyond the paper's figures) ----

// benchScenario preloads sys and measures b.N transactions drawn from the
// named scenario's steady-state mix — the per-transaction cost view of the
// thread sweeps cmd/medley-bench -scenario performs.
func benchScenario(b *testing.B, sys harness.System, name string) {
	b.Helper()
	sc, err := harness.LookupScenario(name)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, benchPreload)
	for i := range keys {
		keys[i] = uint64(rng.Int63n(benchKeyRange))
	}
	sys.Preload(keys)
	stop := sys.Start()
	defer stop()
	w := sys.NewWorker()
	mix := sc.Phases[len(sc.Phases)-1].Mix
	for _, ph := range sc.Phases {
		if ph.Measure {
			mix = ph.Mix
			break
		}
	}
	gen := harness.NewTxGen(sc.Dist, benchKeyRange, mix, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Do(gen.Next())
	}
}

func BenchmarkScenario_ZipfianMixed_Medley(b *testing.B) {
	benchScenario(b, harness.NewMedleyHash(benchBuckets), "zipfian-mixed")
}
func BenchmarkScenario_ZipfianMixed_OneFile(b *testing.B) {
	benchScenario(b, harness.NewOneFile(harness.OneFileOpts{Buckets: benchBuckets}), "zipfian-mixed")
}
func BenchmarkScenario_HotspotReadMostly_Medley(b *testing.B) {
	benchScenario(b, harness.NewMedleyHash(benchBuckets), "hotspot-readmostly")
}
func BenchmarkScenario_Transfer_Medley(b *testing.B) {
	benchScenario(b, harness.NewMedleyHash(benchBuckets), "transfer")
}
func BenchmarkScenario_TpccMini_Medley(b *testing.B) {
	benchScenario(b, harness.NewMedleyHash(benchBuckets), "tpcc-mini")
}

// BenchmarkTxGen isolates workload generation itself, which must stay far
// cheaper than any system's transaction path for measurements to be about
// the systems.
func BenchmarkTxGen(b *testing.B) {
	gen := harness.NewTxGen(harness.Dist{Kind: harness.DistZipfian, Theta: 1.2}, benchKeyRange,
		harness.Mix{Ratio: harness.Ratio{Get: 2, Insert: 1, Remove: 1}, TxMin: 1, TxMax: 10,
			Mixed: 2, Transfer: 1, Order: 1}, 42)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n += len(gen.Next())
	}
	sink.Add(uint64(n))
}

// guard against compiler eliding the workloads entirely.
var sink atomic.Uint64

func init() { sink.Store(1) }
