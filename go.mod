module medley

go 1.23
