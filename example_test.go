package medley_test

import (
	"errors"
	"fmt"

	"medley"
)

// ExampleTxManager is the bank-transfer composition from the package
// documentation: two operations on a lock-free hash table become one
// strictly serializable transaction, with a business abort that is not
// retried.
func ExampleTxManager() {
	mgr := medley.NewTxManager()
	accounts := medley.NewHashMap[int](mgr, 1<<10)

	// Setup outside any transaction: a nil *Tx runs operations with the
	// structure's native lock-free semantics.
	const alice, bob = 1, 2
	accounts.Put(nil, alice, 100)
	accounts.Put(nil, bob, 50)

	errInsufficient := errors.New("insufficient funds")
	transfer := func(tx *medley.Tx, from, to uint64, amount int) error {
		return tx.RunRetry(func() error {
			v, ok := accounts.Get(tx, from)
			if !ok || v < amount {
				return errInsufficient // business abort: not retried
			}
			w, _ := accounts.Get(tx, to)
			accounts.Put(tx, from, v-amount)
			accounts.Put(tx, to, w+amount)
			return nil
		})
	}

	tx := mgr.Register() // per goroutine
	if err := transfer(tx, alice, bob, 30); err != nil {
		fmt.Println("unexpected:", err)
	}
	if err := transfer(tx, alice, bob, 1000); !errors.Is(err, errInsufficient) {
		fmt.Println("unexpected:", err)
	}

	a, _ := accounts.Get(nil, alice)
	b, _ := accounts.Get(nil, bob)
	fmt.Printf("alice: %d\nbob: %d\n", a, b)
	st := mgr.Stats()
	fmt.Printf("commits: %d\n", st.Commits)
	// Output:
	// alice: 70
	// bob: 80
	// commits: 1
}

// ExamplePStore shows txMontage end to end: durable transactions over
// simulated persistent memory, a sync, and recovery after a crash.
func ExamplePStore() {
	sys := medley.NewMontage(medley.MontageConfig{RegionWords: 1 << 16})
	mgr := medley.NewTxManager()
	idx := medley.NewHashMap[medley.PEntry[uint64]](mgr, 256)
	store := medley.NewPStore[uint64](sys, idx, medley.U64Codec())

	tx := mgr.Register()
	h := sys.Wrap(tx) // epoch validation joins the transaction's read set
	_ = tx.RunRetry(func() error {
		store.Put(h, 1, 100)
		store.Put(h, 2, 200)
		return nil
	})
	sys.Sync() // everything committed so far is now durable

	// This transaction commits in DRAM but its epoch is never persisted,
	// so the crash below rolls it back as a group.
	_ = tx.RunRetry(func() error {
		store.Put(h, 3, 300)
		return nil
	})

	rec := sys.CrashAndRecover()
	mgr2 := medley.NewTxManager()
	idx2 := medley.NewHashMap[medley.PEntry[uint64]](mgr2, 256)
	store2 := medley.RebuildPStore(sys, idx2, medley.U64Codec(), rec)
	h2 := sys.Wrap(mgr2.Register())

	v, _ := store2.Get(h2, 1)
	fmt.Println("key 1 recovered as", v)
	_, ok := store2.Get(h2, 3)
	fmt.Println("unsynced key 3 survived:", ok)
	// Output:
	// key 1 recovered as 100
	// unsynced key 3 survived: false
}

// ExampleNewShardedMap partitions one logical map over 8 structure
// instances; because every shard shares one TxManager, a transaction
// spanning shards is still strictly serializable.
func ExampleNewShardedMap() {
	mgr := medley.NewTxManager()
	m, err := medley.NewShardedMap(mgr, "hash", 8, 1<<10)
	if err != nil {
		fmt.Println(err)
		return
	}

	tx := mgr.Register() // per goroutine
	_ = tx.RunRetry(func() error {
		m.Put(tx, 1, 100)
		m.Put(tx, 2, 200) // a different shard, the same transaction
		return nil
	})

	v1, _ := m.Get(nil, 1) // nil Tx: native lock-free read
	v2, _ := m.Get(nil, 2)
	fmt.Println(v1, v2, m.ShardCount())
	// Output: 100 200 8
}
