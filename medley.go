// Package medley is a Go implementation of nonblocking transaction
// composition (NBTC) and its realizations Medley and txMontage, from
//
//	Wentao Cai, Haosen Wen, and Michael L. Scott.
//	"Transactional Composition of Nonblocking Data Structures." SPAA 2023.
//
// This package is the public facade: it re-exports the transaction core
// and the NBTC-transformed data structures so that applications can
// compose operations on nonblocking structures into strictly serializable,
// obstruction-free transactions:
//
//	mgr := medley.NewTxManager()
//	ht1 := medley.NewHashMap[int](mgr, 1<<20)
//	ht2 := medley.NewHashMap[int](mgr, 1<<20)
//	tx := mgr.Register() // per goroutine
//	err := tx.RunRetry(func() error {
//		v, ok := ht1.Get(tx, from)
//		if !ok || v < amount {
//			return ErrInsufficient // business abort: not retried
//		}
//		w, _ := ht2.Get(tx, to)
//		ht1.Put(tx, from, v-amount)
//		ht2.Put(tx, to, w+amount)
//		return nil
//	})
//
// Passing a nil *Tx (or one with no open transaction) to any structure
// operation runs it non-transactionally with the structure's native
// lock-free semantics.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// reproduction of the paper's evaluation, and the examples/ directory for
// runnable programs (including durable txMontage usage).
package medley

import (
	"medley/internal/core"
	"medley/internal/ebr"
	"medley/internal/kv"
	"medley/internal/montage"
	"medley/internal/structures/fraserskip"
	"medley/internal/structures/mhash"
	"medley/internal/structures/msqueue"
	"medley/internal/structures/nmbst"
	"medley/internal/structures/rotatingskip"
)

// Core transaction types (see internal/core for full documentation).
type (
	// TxManager holds metadata shared by all structures that participate
	// in the same transactions.
	TxManager = core.TxManager
	// Tx is a per-goroutine transaction context.
	Tx = core.Tx
	// CASObj is a transactional shared word, for building custom NBTC
	// structures.
	CASObj[T comparable] = core.CASObj[T]
	// ReadWitness is the evidence of a linearizing load, registered via
	// Tx.AddToReadSet.
	ReadWitness = core.ReadWitness
	// Stats is a snapshot of transaction counters.
	Stats = core.Stats
)

// ErrTxAborted is returned by Tx.End / Tx.Run when a transaction aborts.
var ErrTxAborted = core.ErrTxAborted

// NewTxManager creates a transaction manager.
func NewTxManager() *TxManager { return core.NewTxManager() }

// NewCASObj returns a transactional word initialized to v.
func NewCASObj[T comparable](v T) *CASObj[T] { return core.NewCASObj(v) }

// Transformed data structures.
type (
	// HashMap is Michael's lock-free chained hash table (SPAA 2002),
	// NBTC-transformed (the paper's Figure 2 structure).
	HashMap[V any] = mhash.Map[V]
	// Skiplist is Fraser's lock-free skiplist, NBTC-transformed.
	Skiplist[V any] = fraserskip.List[V]
	// RotatingSkiplist is the rotating skiplist of Dick et al.,
	// NBTC-transformed.
	RotatingSkiplist[V any] = rotatingskip.List[V]
	// BST is a Natarajan-Mittal-style external binary search tree,
	// NBTC-transformed.
	BST[V any] = nmbst.Tree[V]
	// Queue is the Michael & Scott FIFO queue, NBTC-transformed.
	Queue[V any] = msqueue.Queue[V]
)

// NewHashMap creates a hash table with at least nBuckets buckets.
func NewHashMap[V any](mgr *TxManager, nBuckets int) *HashMap[V] {
	return mhash.NewMap[V](mgr, nBuckets)
}

// NewSkiplist creates an empty skiplist.
func NewSkiplist[V any](mgr *TxManager) *Skiplist[V] { return fraserskip.New[V](mgr) }

// NewRotatingSkiplist creates an empty rotating skiplist.
func NewRotatingSkiplist[V any](mgr *TxManager) *RotatingSkiplist[V] {
	return rotatingskip.New[V](mgr)
}

// NewBST creates an empty binary search tree.
func NewBST[V any](mgr *TxManager) *BST[V] { return nmbst.New[V](mgr) }

// NewQueue creates an empty queue.
func NewQueue[V any](mgr *TxManager) *Queue[V] { return msqueue.New[V](mgr) }

// Uniform transactional map layer (see internal/kv).
type (
	// TxMap is the uniform transactional uint64 map interface every
	// transformed structure implements; pass a nil *Tx for
	// non-transactional operations.
	TxMap = kv.TxMap
	// ShardedMap hash-partitions a key space over N TxMap shards under
	// one TxManager; cross-shard transactions are strictly serializable.
	ShardedMap = kv.ShardedStore
)

// MapStructures lists the named structures NewShardedMap accepts
// (transformed structures compose across shards; competitor and plain
// structures are single-shard only).
func MapStructures() []string { return kv.Names() }

// NewShardedMap creates a map partitioned over shards instances of the
// named structure ("hash", "skip", "bst", "rotating"), all attached to
// mgr. buckets sizes each hash shard (0 means the 1M default). A
// transaction registered on mgr may touch any number of shards — of this
// map and of any other structure on the same manager — atomically:
//
//	mgr := medley.NewTxManager()
//	m, _ := medley.NewShardedMap(mgr, "hash", 8, 1<<20)
//	tx := mgr.Register() // per goroutine
//	err := tx.RunRetry(func() error {
//		v, _ := m.Get(tx, from) // shard A
//		m.Put(tx, to, v)        // shard B, same transaction
//		return nil
//	})
func NewShardedMap(mgr *TxManager, structure string, shards, buckets int) (*ShardedMap, error) {
	return kv.NewShardedNamed(structure, shards, kv.Options{Mgr: mgr, Buckets: buckets})
}

// Persistence (txMontage over simulated NVM).
type (
	// Montage is an nbMontage persistence domain: epochs over simulated
	// NVM.
	Montage = montage.System
	// MontageConfig sizes a Montage domain.
	MontageConfig = montage.Config
	// MontageHandle is a per-goroutine txMontage context wrapping a Tx.
	MontageHandle = montage.Handle
	// PStore is a txMontage persistent map: a transient Medley index over
	// epoch-tagged NVM payloads.
	PStore[V any] = montage.PStore[V]
	// PEntry is what a PStore keeps in its transient index.
	PEntry[V any] = montage.Entry[V]
	// PCodec serializes values into payload words.
	PCodec[V any] = montage.Codec[V]
	// Recovered is one payload surviving a crash.
	Recovered = montage.Recovered
)

// NewMontage creates a txMontage persistence domain.
func NewMontage(cfg MontageConfig) *Montage { return montage.NewSystem(cfg) }

// NewPStore creates a persistent store over a transient index (any Medley
// map with V = PEntry[T] works).
func NewPStore[V any](sys *Montage, idx montage.Index[PEntry[V]], codec PCodec[V]) *PStore[V] {
	return montage.NewPStore(sys, idx, codec)
}

// RebuildPStore reconstructs a persistent store from recovered payloads.
func RebuildPStore[V any](sys *Montage, idx montage.Index[PEntry[V]], codec PCodec[V], payloads []Recovered) *PStore[V] {
	return montage.RebuildPStore(sys, idx, codec, payloads)
}

// U64Codec is the identity codec for uint64 values.
func U64Codec() PCodec[uint64] { return montage.U64Codec() }

// Safe memory reclamation.
type (
	// EBR is an epoch-based reclamation domain.
	EBR = ebr.Manager
	// EBRHandle is a per-goroutine EBR participant; attach to a Tx with
	// Tx.SetSMR.
	EBRHandle = ebr.Handle
)

// NewEBR creates an epoch-based reclamation domain.
func NewEBR(advanceEvery int) *EBR { return ebr.New(advanceEvery) }
