package kv

import (
	"medley/internal/core"
	"medley/internal/montage"
)

// MontageMap adapts a txMontage persistent store to TxMap. PStore
// operations run on a per-goroutine epoch Handle rather than a bare Tx,
// so the unbound map cannot execute operations: workers must Bind first
// (kv.Bind does this transparently). One Handle serves every store of the
// same montage System, so a ShardedStore whose shards wrap stores of one
// System pays a single epoch read-check per transaction after binding.
type MontageMap struct {
	sys   *montage.System
	store *montage.PStore[uint64]
}

// NewMontageMap wraps store, which must belong to sys.
func NewMontageMap(sys *montage.System, store *montage.PStore[uint64]) *MontageMap {
	return &MontageMap{sys: sys, store: store}
}

// Store returns the wrapped persistent store.
func (m *MontageMap) Store() *montage.PStore[uint64] { return m.store }

// Bind implements Binder: wrap tx into an epoch handle once per worker.
func (m *MontageMap) Bind(tx *core.Tx) TxMap {
	return boundMontageMap{store: m.store, h: m.sys.Wrap(tx)}
}

// BindHandle returns the view over an existing handle; harness code that
// manages handles itself (transient-on-NVM variants, shared handles
// across shards) binds this way.
func (m *MontageMap) BindHandle(h *montage.Handle) TxMap {
	return boundMontageMap{store: m.store, h: h}
}

func (m *MontageMap) unboundPanic() {
	panic("kv: MontageMap must be bound to a Tx (kv.Bind) before use")
}

// Get implements TxMap (unbound: refuse, the handle is mandatory).
func (m *MontageMap) Get(*core.Tx, uint64) (uint64, bool) { m.unboundPanic(); return 0, false }

// Put implements TxMap.
func (m *MontageMap) Put(*core.Tx, uint64, uint64) (uint64, bool) { m.unboundPanic(); return 0, false }

// Insert implements TxMap.
func (m *MontageMap) Insert(*core.Tx, uint64, uint64) bool { m.unboundPanic(); return false }

// Remove implements TxMap.
func (m *MontageMap) Remove(*core.Tx, uint64) (uint64, bool) { m.unboundPanic(); return 0, false }

// Range implements TxMap; reads come from the DRAM index, no handle
// needed.
func (m *MontageMap) Range(fn func(key, val uint64) bool) { m.store.Range(fn) }

// Len implements Lener.
func (m *MontageMap) Len() int { return m.store.Len() }

type boundMontageMap struct {
	store *montage.PStore[uint64]
	h     *montage.Handle
}

func (b boundMontageMap) Get(_ *core.Tx, key uint64) (uint64, bool) {
	return b.store.Get(b.h, key)
}
func (b boundMontageMap) Put(_ *core.Tx, key, val uint64) (uint64, bool) {
	return b.store.Put(b.h, key, val)
}
func (b boundMontageMap) Insert(_ *core.Tx, key, val uint64) bool {
	return b.store.Insert(b.h, key, val)
}
func (b boundMontageMap) Remove(_ *core.Tx, key uint64) (uint64, bool) {
	return b.store.Remove(b.h, key)
}
func (b boundMontageMap) Range(fn func(key, val uint64) bool) { b.store.Range(fn) }
func (b boundMontageMap) Len() int                            { return b.store.Len() }
