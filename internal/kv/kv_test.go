package kv

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"medley/internal/core"
	"medley/internal/montage"
	"medley/internal/structures/mhash"
)

// implCase is one TxMap implementation under the conformance suite.
type implCase struct {
	name string
	// composable implementations run the transactional legs under
	// core.Tx transactions; the rest auto-commit per op.
	composable bool
	mk         func(t *testing.T, mgr *core.TxManager) TxMap
}

// conformanceCases enumerates every registered implementation plus the
// compositions the registry cannot name directly (sharded stores, the
// montage adapter).
func conformanceCases(t *testing.T) []implCase {
	t.Helper()
	var cases []implCase
	for _, name := range Names() {
		name := name
		cases = append(cases, implCase{
			name:       name,
			composable: Composable(name),
			mk: func(t *testing.T, mgr *core.TxManager) TxMap {
				m, err := New(name, Options{Mgr: mgr, Buckets: 1 << 8})
				if err != nil {
					t.Fatalf("New(%s): %v", name, err)
				}
				return m
			},
		})
		if Composable(name) {
			cases = append(cases, implCase{
				name:       "sharded-" + name + "-4",
				composable: true,
				mk: func(t *testing.T, mgr *core.TxManager) TxMap {
					s, err := NewShardedNamed(name, 4, Options{Mgr: mgr, Buckets: 1 << 8})
					if err != nil {
						t.Fatalf("NewShardedNamed(%s): %v", name, err)
					}
					return s
				},
			})
		}
	}
	mkMontage := func(t *testing.T, mgr *core.TxManager) TxMap {
		sys := montage.NewSystem(montage.Config{RegionWords: 1 << 20})
		idx := mhash.NewMap[montage.Entry[uint64]](mgr, 1<<8)
		return NewMontageMap(sys, montage.NewPStore[uint64](sys, idx, montage.U64Codec()))
	}
	cases = append(cases, implCase{name: "montage", composable: true, mk: mkMontage})
	cases = append(cases, implCase{
		name: "sharded-montage-4", composable: true,
		mk: func(t *testing.T, mgr *core.TxManager) TxMap {
			return NewSharded(4, func(int) TxMap { return mkMontage(t, mgr) })
		},
	})
	return cases
}

// modelStep applies one op to both the implementation and a model map and
// cross-checks every return value.
func modelStep(t *testing.T, m TxMap, tx *core.Tx, model map[uint64]uint64, r *rand.Rand) {
	t.Helper()
	key := uint64(r.Intn(1 << 7))
	val := r.Uint64() % 1000
	old, had := model[key]
	switch r.Intn(4) {
	case 0:
		gv, ok := m.Get(tx, key)
		if ok != had || (ok && gv != old) {
			t.Fatalf("Get(%d) = (%d,%v), model (%d,%v)", key, gv, ok, old, had)
		}
	case 1:
		pv, ok := m.Put(tx, key, val)
		if ok != had || (ok && pv != old) {
			t.Fatalf("Put(%d) = (%d,%v), model (%d,%v)", key, pv, ok, old, had)
		}
		model[key] = val
	case 2:
		ok := m.Insert(tx, key, val)
		if ok == had {
			t.Fatalf("Insert(%d) = %v with present=%v", key, ok, had)
		}
		if ok {
			model[key] = val
		}
	case 3:
		rv, ok := m.Remove(tx, key)
		if ok != had || (ok && rv != old) {
			t.Fatalf("Remove(%d) = (%d,%v), model (%d,%v)", key, rv, ok, old, had)
		}
		delete(model, key)
	}
}

// checkAgainstModel verifies Range coverage matches the model exactly.
func checkAgainstModel(t *testing.T, m TxMap, model map[uint64]uint64) {
	t.Helper()
	got := map[uint64]uint64{}
	m.Range(func(k, v uint64) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("Range yielded key %d twice", k)
		}
		got[k] = v
		return true
	})
	if len(got) != len(model) {
		t.Fatalf("Range yielded %d entries, model has %d", len(got), len(model))
	}
	for k, v := range model {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("key %d: Range (%d,%v), model %d", k, gv, ok, v)
		}
	}
}

// TestTxMapConformance is the table-driven conformance property test:
// every implementation, sequential and concurrent, transactional and
// bare (nil-Tx-equivalent) paths.
func TestTxMapConformance(t *testing.T) {
	for _, c := range conformanceCases(t) {
		c := c
		t.Run(c.name+"/sequential-bare", func(t *testing.T) {
			mgr := core.NewTxManager()
			tx := mgr.Register() // registered but never opened: the nil-Tx path
			m := Bind(c.mk(t, mgr), tx)
			model := map[uint64]uint64{}
			r := rand.New(rand.NewSource(1))
			for i := 0; i < 4000; i++ {
				modelStep(t, m, tx, model, r)
			}
			checkAgainstModel(t, m, model)
		})
		t.Run(c.name+"/sequential-transactional", func(t *testing.T) {
			mgr := core.NewTxManager()
			tx := mgr.Register()
			m := Bind(c.mk(t, mgr), tx)
			model := map[uint64]uint64{}
			r := rand.New(rand.NewSource(2))
			for i := 0; i < 1000; i++ {
				if c.composable {
					// A short transaction of 1-4 model steps; single
					// threaded, so it always commits on the first try.
					steps := 1 + r.Intn(4)
					if err := tx.RunRetry(func() error {
						for s := 0; s < steps; s++ {
							modelStep(t, m, tx, model, r)
						}
						return nil
					}); err != nil {
						t.Fatal(err)
					}
				} else {
					modelStep(t, m, tx, model, r)
				}
			}
			checkAgainstModel(t, m, model)
		})
		t.Run(c.name+"/concurrent", func(t *testing.T) {
			const workers = 4
			mgr := core.NewTxManager()
			base := c.mk(t, mgr)
			models := make([]map[uint64]uint64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				models[w] = map[uint64]uint64{}
				wg.Add(1)
				go func() {
					defer wg.Done()
					tx := mgr.Register()
					m := Bind(base, tx)
					r := rand.New(rand.NewSource(int64(w) + 10))
					// Disjoint key residues per worker keep each model
					// authoritative for its keys under concurrency.
					for i := 0; i < 1500; i++ {
						key := uint64(r.Intn(1<<7))*workers + uint64(w)
						val := r.Uint64() % 1000
						// The op is chosen before the transaction runs so a
						// conflict-abort retry replays the same effect.
						op := r.Intn(3)
						do := func() error {
							switch op {
							case 0:
								m.Put(tx, key, val)
								models[w][key] = val
							case 1:
								if m.Insert(tx, key, val) {
									models[w][key] = val
								}
							case 2:
								m.Remove(tx, key)
								delete(models[w], key)
							}
							return nil
						}
						if c.composable {
							// Model mutations re-run on retry, but they are
							// idempotent per attempt outcome: last attempt
							// wins and matches the committed effect.
							if err := tx.RunRetry(do); err != nil {
								t.Error(err)
								return
							}
						} else {
							_ = do()
						}
					}
				}()
			}
			wg.Wait()
			merged := map[uint64]uint64{}
			for _, mm := range models {
				for k, v := range mm {
					merged[k] = v
				}
			}
			checkAgainstModel(t, base, merged)
		})
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := New("no-such-structure", Options{}); err == nil {
		t.Fatal("unknown name did not error")
	}
	if _, err := New("hash", Options{}); err == nil {
		t.Fatal("missing Mgr did not error")
	}
	if _, err := NewShardedNamed("tdsl", 4, Options{}); err == nil {
		t.Fatal("multi-shard competitor did not error")
	}
	if s, err := NewShardedNamed("tdsl", 1, Options{}); err != nil || s.ShardCount() != 1 {
		t.Fatalf("single-shard competitor: %v, %d shards", err, s.ShardCount())
	}
}

func TestShardedRoundsToPowerOfTwo(t *testing.T) {
	mgr := core.NewTxManager()
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		s, err := NewShardedNamed("hash", tc.in, Options{Mgr: mgr, Buckets: 1 << 6})
		if err != nil {
			t.Fatal(err)
		}
		if s.ShardCount() != tc.want {
			t.Fatalf("shards(%d) = %d, want %d", tc.in, s.ShardCount(), tc.want)
		}
	}
}

func TestShardOfMatchesStoreRouting(t *testing.T) {
	mgr := core.NewTxManager()
	s, err := NewShardedNamed("hash", 8, Options{Mgr: mgr, Buckets: 1 << 6})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 4096; k++ {
		s.Put(nil, k, k)
	}
	// Every key must be findable in exactly the shard ShardOf names.
	for k := uint64(0); k < 4096; k++ {
		sh := s.Shard(ShardOf(k, s.ShardCount()))
		if _, ok := sh.Get(nil, k); !ok {
			t.Fatalf("key %d not in shard %d", k, ShardOf(k, s.ShardCount()))
		}
	}
}

func TestShardedSpreadsKeys(t *testing.T) {
	// 512 shards also checks that routing reaches counts beyond 8 hash
	// bits, not just small stores.
	for _, n := range []int{8, 512} {
		counts := make([]int, n)
		total := n << 8
		for k := uint64(0); k < uint64(total); k++ {
			counts[ShardOf(k, n)]++
		}
		for i, c := range counts {
			if c < total/n/4 || c > total/n*4 {
				t.Fatalf("n=%d: shard %d holds %d of %d keys: bad spread", n, i, c, total)
			}
		}
	}
}

func ExampleShardedStore() {
	mgr := core.NewTxManager()
	s, _ := NewShardedNamed("hash", 4, Options{Mgr: mgr, Buckets: 1 << 10})
	tx := mgr.Register()
	_ = tx.RunRetry(func() error {
		s.Put(tx, 1, 100)
		s.Put(tx, 2, 200) // possibly a different shard: still one transaction
		return nil
	})
	v1, _ := s.Get(nil, 1)
	v2, _ := s.Get(nil, 2)
	fmt.Println(v1, v2, s.ShardCount())
	// Output: 100 200 4
}
