package kv

import (
	"fmt"
	"math/bits"

	"medley/internal/core"
)

// ShardedStore hash-partitions a uint64 key space over N TxMap shards.
// It implements TxMap itself, so a sharded store drops in anywhere a
// single structure does — including as a shard of another store.
//
// When every shard is an NBTC-transformed structure attached to the same
// TxManager, a transaction that touches several shards is still strictly
// serializable: the shards share commit machinery, so cross-shard
// atomicity is the paper's composition claim at the architecture level
// and costs nothing beyond the transaction itself. Shards backed by
// competitor STMs (see competitors.go) do not compose; build those stores
// with one shard.
type ShardedStore struct {
	shards []TxMap
	mask   uint64
}

// shardMul spreads keys over shards with a multiplicative hash
// independent of the bucket hash inside mhash (which consumes bits
// 32..32+b of the same product; the shard index takes the top bits).
const shardMul = 0x9E3779B97F4A7C15

// RoundShards rounds a requested shard count up to the power of two
// every routing path (shardIndex, ShardOf) assumes; n <= 0 means 1.
// Callers that size per-shard state before building a store use it to
// stay in lockstep with the store's rounding.
func RoundShards(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewSharded builds a store over n shards produced by mk (called with
// shard indices 0..n-1). n is rounded up to a power of two so shard
// selection is mask-cheap.
func NewSharded(n int, mk func(i int) TxMap) *ShardedStore {
	p := RoundShards(n)
	s := &ShardedStore{shards: make([]TxMap, p), mask: uint64(p - 1)}
	for i := range s.shards {
		s.shards[i] = mk(i)
	}
	return s
}

// NewShardedNamed builds a store over n shards of the named registry
// implementation, all sharing o.Mgr. Each shard is provisioned with the
// full o.Buckets like an independent instance — the way a partitioned
// deployment provisions its partitions — so sharding trades memory for
// shorter chains and disjoint allocation domains per shard.
// Non-composable implementations are refused for n > 1: their shards
// could not join one transaction, so multi-key operations would silently
// lose atomicity.
func NewShardedNamed(name string, n int, o Options) (*ShardedStore, error) {
	if n > 1 && !Composable(name) {
		return nil, fmt.Errorf("kv: %w: %q must use a single shard", errNotComposable, name)
	}
	var err error
	s := NewSharded(n, func(int) TxMap {
		var m TxMap
		if err == nil {
			m, err = New(name, o)
		}
		return m
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// ShardCount returns the number of shards.
func (s *ShardedStore) ShardCount() int { return len(s.shards) }

// Shard returns shard i, for callers that manage shards directly
// (maintenance hooks, recovery rebuilds).
func (s *ShardedStore) Shard(i int) TxMap { return s.shards[i] }

// ShardOf returns the shard index key routes to in a store of n shards
// (n must be the power of two the store rounded to). Exposed so recovery
// paths can partition recovered entries the same way live traffic does.
func ShardOf(key uint64, n int) int {
	return shardIndex(key, uint64(n-1))
}

// shardIndex picks the top log2(shards) bits of the multiplicative
// hash, so every shard count up to 2^63 routes to all shards.
func shardIndex(key, mask uint64) int {
	if mask == 0 {
		return 0
	}
	return int((key * shardMul) >> (64 - uint(bits.Len64(mask))))
}

func (s *ShardedStore) shard(key uint64) TxMap {
	return s.shards[shardIndex(key, s.mask)]
}

// Get implements TxMap.
func (s *ShardedStore) Get(tx *core.Tx, key uint64) (uint64, bool) {
	return s.shard(key).Get(tx, key)
}

// Put implements TxMap.
func (s *ShardedStore) Put(tx *core.Tx, key, val uint64) (uint64, bool) {
	return s.shard(key).Put(tx, key, val)
}

// Insert implements TxMap.
func (s *ShardedStore) Insert(tx *core.Tx, key, val uint64) bool {
	return s.shard(key).Insert(tx, key, val)
}

// Remove implements TxMap.
func (s *ShardedStore) Remove(tx *core.Tx, key uint64) (uint64, bool) {
	return s.shard(key).Remove(tx, key)
}

// Range implements TxMap: shards are iterated in index order, so keys are
// grouped by shard, ordered within one only as the shard structure
// orders them.
func (s *ShardedStore) Range(fn func(key, val uint64) bool) {
	for _, sh := range s.shards {
		stop := false
		sh.Range(func(k, v uint64) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Len implements Lener when every shard does.
func (s *ShardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		if l, ok := sh.(Lener); ok {
			n += l.Len()
		}
	}
	return n
}

// Bind implements Binder: shards that need per-worker state are bound
// once here, so per-operation dispatch stays a plain slice index.
func (s *ShardedStore) Bind(tx *core.Tx) TxMap {
	bound := s
	for i, sh := range s.shards {
		b, ok := sh.(Binder)
		if !ok {
			continue
		}
		if bound == s {
			bound = &ShardedStore{shards: append([]TxMap(nil), s.shards...), mask: s.mask}
		}
		bound.shards[i] = b.Bind(tx)
	}
	return bound
}

// Apply implements Applier: the batch request API's entry point, routed
// through the same shard-grouped pass (eachShardGroup) as GetBatch and
// PutBatch so every batch consumer — the network service's tick executor,
// the harness worker loop, and explicit Batcher callers — shares one
// routing path. Keyed operations are visited shard by shard; scans have no
// key and run store-wide after the keyed pass (they are non-linearizable
// either way, exactly like Range).
func (s *ShardedStore) Apply(tx *core.Tx, ops []Op, res []Result) {
	record := func(i int, r Result) {
		if res != nil {
			res[i] = r
		}
	}
	if len(ops) <= 1 || len(s.shards) == 1 {
		for i := range ops {
			if ops[i].Kind == OpScan {
				record(i, ApplyOne(tx, s, ops[i])) // store-wide, like Range
				continue
			}
			record(i, ApplyOne(tx, s.shard(ops[i].Key), ops[i]))
		}
		return
	}
	scans := false
	s.eachShardGroup(len(ops), func(i int) uint64 { return ops[i].Key }, func(sh TxMap, i int) {
		if ops[i].Kind == OpScan {
			scans = true // store-wide, not shard-local: second pass below
			return
		}
		record(i, ApplyOne(tx, sh, ops[i]))
	})
	if scans {
		for i := range ops {
			if ops[i].Kind == OpScan {
				record(i, ApplyOne(tx, s, ops[i]))
			}
		}
	}
}

// GetBatch implements Batcher: keys are visited shard by shard, so a
// multi-key transaction touches each shard's memory once instead of
// ping-ponging between shards per key.
//
// A transaction consisting only of GetBatch calls rides the core's
// read-only commit fast path regardless of how many shards the batch
// straddles: the shards share one TxManager, witnesses accumulate in the
// caller's single read set as each shard group is visited, and the commit
// is one owner-side validation sweep with no descriptor handshake — the
// cross-shard snapshot costs no more atomics than a single-shard one.
func (s *ShardedStore) GetBatch(tx *core.Tx, keys []uint64, vals []uint64, oks []bool) {
	if len(keys) <= 1 || len(s.shards) == 1 {
		for i, k := range keys {
			vals[i], oks[i] = s.shards[shardIndex(k, s.mask)].Get(tx, k)
		}
		return
	}
	s.eachShardGroup(len(keys), func(i int) uint64 { return keys[i] }, func(sh TxMap, i int) {
		vals[i], oks[i] = sh.Get(tx, keys[i])
	})
}

// PutBatch implements Batcher.
func (s *ShardedStore) PutBatch(tx *core.Tx, keys []uint64, vals []uint64) {
	if len(keys) <= 1 || len(s.shards) == 1 {
		for i, k := range keys {
			s.shards[shardIndex(k, s.mask)].Put(tx, k, vals[i])
		}
		return
	}
	s.eachShardGroup(len(keys), func(i int) uint64 { return keys[i] }, func(sh TxMap, i int) {
		sh.Put(tx, keys[i], vals[i])
	})
}

// eachShardGroup invokes fn(shard, i) for indices 0..n-1 whose keys are
// supplied by key(i), grouped by shard — the one routing pass behind
// Apply, GetBatch and PutBatch. Batches are short (transaction-sized), so
// the grouping is a bitset pass rather than an allocation.
func (s *ShardedStore) eachShardGroup(n int, key func(i int) uint64, fn func(sh TxMap, i int)) {
	var done uint64 // bit i set once index i is processed; batches are <= 64 ops
	if n > 64 {
		for i := 0; i < n; i++ {
			fn(s.shards[shardIndex(key(i), s.mask)], i)
		}
		return
	}
	for i := 0; i < n; i++ {
		if done&(1<<i) != 0 {
			continue
		}
		si := shardIndex(key(i), s.mask)
		sh := s.shards[si]
		for j := i; j < n; j++ {
			if done&(1<<j) == 0 && shardIndex(key(j), s.mask) == si {
				fn(sh, j)
				done |= 1 << j
			}
		}
	}
}
