package kv

import "medley/internal/core"

// This file is the group-execution seam of the batch request API: a
// commit group is several independent batch requests — each one logical
// transaction — that an executor may merge into a single physical commit
// (core.Tx.RunGroup). ApplyGroup is the store-side half: it flattens the
// whole group through ONE shard-grouped routing pass, so a group touches
// each shard's memory once rather than once per member batch.

// Batch is one logical transaction's request inside a commit group: the
// operations to run atomically and the result slice to fill (nil when the
// caller discards outcomes; otherwise len(Res) must equal len(Ops)).
type Batch struct {
	Ops []Op
	Res []Result
}

// GroupExecutor is the optional capability of Executors that can commit a
// group of batch requests with amortized fences. Each batch remains its
// own logical transaction — results are exactly what a loop of ExecBatch
// calls in batch order would produce — but the executor may merge
// compatible batches into group commits. errs, when non-nil, receives
// per-batch outcomes (len(errs) must equal len(batches)); as with
// ExecBatch, conflicts retry internally and never surface.
type GroupExecutor interface {
	Executor
	ExecGroup(batches []Batch, errs []error)
}

// GroupScratch holds one caller's reusable flatten buffers for
// ApplyGroup, so the group path stays allocation-free once warm. A
// GroupScratch is owner-bound like the executor that holds it.
type GroupScratch struct {
	ops []Op
	res []Result
}

// groupFlattenMax bounds the flattened-op count of one routing pass: it
// is eachShardGroup's bitset capacity, above which the grouped pass would
// degenerate to index order anyway.
const groupFlattenMax = 64

// ApplyGroup executes every batch's ops under tx, in batch order. When
// the store routes batches through a shard-grouped pass (Applier, i.e.
// ShardedStore) and the group is small enough for one bitset pass, the
// members are flattened so the whole group pays one routing sweep; the
// flattening preserves the relative order of any two operations on the
// same key (same key → same shard, and the pass keeps index order within
// a shard), so member semantics are exactly those of sequential
// execution. Larger or unroutable groups fall back to per-batch Apply.
//
// ApplyGroup is called inside an open transaction (typically a RunGroup
// member sweep); like Apply, it must not be handed OpScan alongside
// writes — executors hoist scans out of the transaction instead.
func ApplyGroup(tx *core.Tx, m TxMap, batches []Batch, sc *GroupScratch) {
	total := 0
	for i := range batches {
		total += len(batches[i].Ops)
	}
	a, routable := m.(Applier)
	if !routable || total > groupFlattenMax || len(batches) <= 1 {
		for i := range batches {
			Apply(tx, m, batches[i].Ops, batches[i].Res)
		}
		return
	}
	sc.ops = sc.ops[:0]
	for i := range batches {
		sc.ops = append(sc.ops, batches[i].Ops...)
	}
	if cap(sc.res) < total {
		sc.res = make([]Result, total)
	}
	sc.res = sc.res[:total]
	a.Apply(tx, sc.ops, sc.res)
	at := 0
	for i := range batches {
		n := len(batches[i].Ops)
		if batches[i].Res != nil {
			copy(batches[i].Res, sc.res[at:at+n])
		}
		at += n
	}
}
