package kv

import (
	"errors"

	"medley/internal/core"
	"medley/internal/lftt"
	"medley/internal/onefile"
	"medley/internal/tdsl"
)

// This file registers the competitor backends behind the TxMap interface.
// Each operation runs as one transaction of the backend's own STM; the
// *core.Tx argument is ignored, so these maps do NOT compose into
// cross-shard transactions (see the package comment for the gap this
// documents). They exist so that drivers, conformance tests and
// single-shard stores can treat every backend uniformly.

func init() {
	Register("onefile-hash", false, func(o Options) (TxMap, error) {
		stm := onefile.New()
		return onefileMap{stm: stm, m: onefile.NewHashMap(stm, o.buckets())}, nil
	})
	Register("onefile-skip", false, func(o Options) (TxMap, error) {
		stm := onefile.New()
		return onefileMap{stm: stm, m: onefile.NewSkiplist(stm)}, nil
	})
	Register("tdsl", false, func(Options) (TxMap, error) {
		return &tdslMap{sl: tdsl.New()}, nil
	})
	Register("lftt", false, func(Options) (TxMap, error) {
		return lfttMap{sl: lftt.New()}, nil
	})
}

// onefileKV is the shape shared by OneFile's hash map and skiplist.
type onefileKV interface {
	Get(tx *onefile.Tx, key uint64) (uint64, bool)
	Put(tx *onefile.Tx, key uint64, val uint64) (uint64, bool)
	Insert(tx *onefile.Tx, key uint64, val uint64) bool
	Remove(tx *onefile.Tx, key uint64) (uint64, bool)
	Range(fn func(key, val uint64) bool)
	Len() int
}

type onefileMap struct {
	stm *onefile.STM
	m   onefileKV
}

func (o onefileMap) Get(_ *core.Tx, key uint64) (val uint64, ok bool) {
	_ = o.stm.ReadTx(func(tx *onefile.Tx) error {
		val, ok = o.m.Get(tx, key)
		return nil
	})
	return
}

func (o onefileMap) Put(_ *core.Tx, key, v uint64) (old uint64, replaced bool) {
	_ = o.stm.WriteTx(func(tx *onefile.Tx) error {
		old, replaced = o.m.Put(tx, key, v)
		return nil
	})
	return
}

func (o onefileMap) Insert(_ *core.Tx, key, v uint64) (ok bool) {
	_ = o.stm.WriteTx(func(tx *onefile.Tx) error {
		ok = o.m.Insert(tx, key, v)
		return nil
	})
	return
}

func (o onefileMap) Remove(_ *core.Tx, key uint64) (old uint64, ok bool) {
	_ = o.stm.WriteTx(func(tx *onefile.Tx) error {
		old, ok = o.m.Remove(tx, key)
		return nil
	})
	return
}

func (o onefileMap) Range(fn func(key, val uint64) bool) { o.m.Range(fn) }
func (o onefileMap) Len() int                            { return o.m.Len() }

// tdslMap runs every operation as one TDSL transaction with retry.
type tdslMap struct{ sl *tdsl.Skiplist }

func (t *tdslMap) Get(_ *core.Tx, key uint64) (val uint64, ok bool) {
	_ = tdsl.RunRetry(func(tx *tdsl.Tx) error {
		val, ok = tx.Get(t.sl, key)
		return nil
	})
	return
}

func (t *tdslMap) Put(_ *core.Tx, key, v uint64) (old uint64, replaced bool) {
	_ = tdsl.RunRetry(func(tx *tdsl.Tx) error {
		old, replaced = tx.Put(t.sl, key, v)
		return nil
	})
	return
}

func (t *tdslMap) Insert(_ *core.Tx, key, v uint64) (ok bool) {
	_ = tdsl.RunRetry(func(tx *tdsl.Tx) error {
		ok = tx.Insert(t.sl, key, v)
		return nil
	})
	return
}

func (t *tdslMap) Remove(_ *core.Tx, key uint64) (old uint64, ok bool) {
	_ = tdsl.RunRetry(func(tx *tdsl.Tx) error {
		old, ok = tx.Remove(t.sl, key)
		return nil
	})
	return
}

func (t *tdslMap) Range(fn func(key, val uint64) bool) { t.sl.Range(fn) }
func (t *tdslMap) Len() int                            { return t.sl.Len() }

// lfttMap expresses each operation as a static LFTT transaction. Put
// (upsert returning the old value) has no native LFTT form; remove+insert
// in one static transaction is atomic and yields the displaced value.
type lfttMap struct{ sl *lftt.Skiplist }

func (l lfttMap) Get(_ *core.Tx, key uint64) (uint64, bool) { return l.sl.Contains(key) }

func (l lfttMap) Put(_ *core.Tx, key, v uint64) (uint64, bool) {
	res := l.sl.Execute([]lftt.Op{
		{Kind: lftt.OpRemove, Key: key},
		{Kind: lftt.OpInsert, Key: key, Val: v},
	})
	return res[0].Val, res[0].OK
}

func (l lfttMap) Insert(_ *core.Tx, key, v uint64) bool { return l.sl.Insert(key, v) }

func (l lfttMap) Remove(_ *core.Tx, key uint64) (uint64, bool) { return l.sl.Remove(key) }

func (l lfttMap) Range(fn func(key, val uint64) bool) { l.sl.Range(fn) }
func (l lfttMap) Len() int                            { return l.sl.Len() }

// errNotComposable is returned by constructors asked for impossible
// configurations (kept here so future competitor registrations share it).
var errNotComposable = errors.New("kv: implementation does not compose across shards")
