package kv

import (
	"fmt"
	"sort"
	"sync"

	"medley/internal/core"
	"medley/internal/structures/fraserskip"
	"medley/internal/structures/mhash"
	"medley/internal/structures/nmbst"
	"medley/internal/structures/plainskip"
	"medley/internal/structures/rotatingskip"
)

// Options parameterizes a registry constructor. Constructors read only
// the fields they need; zero values get sensible defaults.
type Options struct {
	// Mgr is the transaction manager transactional structures attach to.
	// Required by every NBTC-transformed structure; ignored by
	// non-transactional and competitor implementations.
	Mgr *core.TxManager
	// Buckets sizes hash-based structures (default 1<<20, the paper's 1M).
	Buckets int
}

func (o Options) buckets() int {
	if o.Buckets <= 0 {
		return 1 << 20
	}
	return o.Buckets
}

// Constructor builds one TxMap implementation.
type Constructor func(Options) (TxMap, error)

// Transactional reports, per registered name, whether the implementation
// threads the *core.Tx into a shared TxManager (and therefore composes
// into cross-shard transactions). Competitor implementations are
// registered with transactional = false; see the package comment for the
// gap this encodes.
var (
	regMu      sync.RWMutex
	registry   = map[string]Constructor{}
	composable = map[string]bool{}
)

// Register adds a named TxMap constructor. txComposable marks
// implementations whose operations compose under the Options.Mgr
// TxManager (the NBTC-transformed structures, which therefore require
// Options.Mgr); competitor and plain structures register false.
// Registering a duplicate name panics: names are API.
func Register(name string, txComposable bool, c Constructor) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("kv: duplicate registration of " + name)
	}
	registry[name] = c
	composable[name] = txComposable
}

// New builds the named implementation.
func New(name string, o Options) (TxMap, error) {
	regMu.RLock()
	c, ok := registry[name]
	needMgr := composable[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("kv: unknown structure %q (known: %v)", name, Names())
	}
	if needMgr && o.Mgr == nil {
		return nil, fmt.Errorf("kv: structure %q requires Options.Mgr", name)
	}
	return c(o)
}

// Composable reports whether the named implementation joins cross-shard
// transactions under a shared TxManager. Unknown names report false.
func Composable(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	return composable[name]
}

// Names lists registered implementations in stable order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// The transformed structures satisfy TxMap natively with V = uint64 —
// registering them is the whole adapter.
func init() {
	Register("hash", true, func(o Options) (TxMap, error) {
		return mhash.NewMap[uint64](o.Mgr, o.buckets()), nil
	})
	Register("skip", true, func(o Options) (TxMap, error) {
		return fraserskip.New[uint64](o.Mgr), nil
	})
	Register("bst", true, func(o Options) (TxMap, error) {
		return nmbst.New[uint64](o.Mgr), nil
	})
	Register("rotating", true, func(o Options) (TxMap, error) {
		return rotatingskip.New[uint64](o.Mgr), nil
	})
	Register("plain-skip", false, func(Options) (TxMap, error) {
		return plainMap{plainskip.New[uint64]()}, nil
	})
}

// plainMap adapts the untransformed skiplist: the Tx is ignored entirely
// (the structure has no transactional instrumentation to elide).
type plainMap struct{ l *plainskip.List[uint64] }

func (p plainMap) Get(_ *core.Tx, key uint64) (uint64, bool) { return p.l.Get(key) }
func (p plainMap) Put(_ *core.Tx, key, val uint64) (uint64, bool) {
	return p.l.Put(key, val)
}
func (p plainMap) Insert(_ *core.Tx, key, val uint64) bool { return p.l.Insert(key, val) }
func (p plainMap) Remove(_ *core.Tx, key uint64) (uint64, bool) {
	return p.l.Remove(key)
}
func (p plainMap) Range(fn func(key, val uint64) bool) { p.l.Range(fn) }
func (p plainMap) Len() int                            { return p.l.Len() }
