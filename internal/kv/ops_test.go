package kv

import (
	"testing"

	"medley/internal/core"
)

// applyEnv builds an 8-shard store and a single instance over one manager,
// so Apply's shard-grouped routing can be checked against the loop path.
func applyEnv(t *testing.T) (*core.TxManager, *ShardedStore, TxMap) {
	t.Helper()
	mgr := core.NewTxManager()
	sharded, err := NewShardedNamed("hash", 8, Options{Mgr: mgr, Buckets: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	single, err := New("hash", Options{Mgr: mgr, Buckets: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return mgr, sharded, single
}

// TestApplySemantics pins the Op/Result contract on both the sharded
// Applier path and the single-instance loop path: Get/Put/Delete results,
// Add's fetch-and-add with wraparound debits, and Scan's entry count.
func TestApplySemantics(t *testing.T) {
	mgr, sharded, single := applyEnv(t)
	for name, m := range map[string]TxMap{"sharded": sharded, "single": single} {
		tx := mgr.Register()
		ops := []Op{
			{Kind: OpPut, Key: 1, Val: 100},
			{Kind: OpPut, Key: 2, Val: 50},
			{Kind: OpGet, Key: 1},
			{Kind: OpAdd, Key: 1, Val: ^uint64(0) - 29}, // -30
			{Kind: OpAdd, Key: 2, Val: 30},
			{Kind: OpDelete, Key: 3},
			{Kind: OpGet, Key: 404},
		}
		res := make([]Result, len(ops))
		if err := tx.RunRetry(func() error {
			Apply(tx, m, ops, res)
			return nil
		}); err != nil {
			t.Fatalf("%s: apply: %v", name, err)
		}
		if res[2].Val != 100 || !res[2].Ok {
			t.Fatalf("%s: get after put = %+v", name, res[2])
		}
		if res[3].Val != 70 || !res[3].Ok {
			t.Fatalf("%s: add -30 = %+v, want 70", name, res[3])
		}
		if res[4].Val != 80 {
			t.Fatalf("%s: add +30 = %+v, want 80", name, res[4])
		}
		if res[5].Ok {
			t.Fatalf("%s: delete of absent key reported ok", name)
		}
		if res[6].Ok {
			t.Fatalf("%s: get of absent key reported ok", name)
		}
		// Scans run outside transactions (see OpScan): apply with a nil tx
		// after commit, the way Executor implementations hoist them.
		scan := []Op{{Kind: OpScan, Val: 2}}
		sres := make([]Result, 1)
		Apply(nil, m, scan, sres)
		if sres[0].Val != 2 || !sres[0].Ok {
			t.Fatalf("%s: scan visited %+v entries, want 2", name, sres[0])
		}
		v, ok := m.Get(nil, 1)
		if !ok || v != 70 {
			t.Fatalf("%s: committed value = %d,%v, want 70", name, v, ok)
		}
	}
}

// TestApplyShardRoutingMatchesLoop runs the same mixed batch through the
// sharded Applier and through ApplyOne loops and requires identical
// results — the shard-grouped reordering must be invisible.
func TestApplyShardRoutingMatchesLoop(t *testing.T) {
	mgr, sharded, single := applyEnv(t)
	var ops []Op
	for i := uint64(0); i < 40; i++ {
		ops = append(ops,
			Op{Kind: OpPut, Key: i * 7, Val: i},
			Op{Kind: OpGet, Key: i * 7},
			Op{Kind: OpAdd, Key: i * 7, Val: 1},
		)
	}
	run := func(m TxMap) []Result {
		tx := mgr.Register()
		res := make([]Result, len(ops))
		if err := tx.RunRetry(func() error {
			Apply(tx, m, ops, res)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return res
	}
	got, want := run(sharded), run(single)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("op %d: sharded %+v != single %+v", i, got[i], want[i])
		}
	}
}

// TestApplyAtomicTransfer expresses a transfer as two Adds and checks a
// concurrent reader never sees a torn intermediate across shards.
func TestApplyAtomicTransfer(t *testing.T) {
	mgr, sharded, _ := applyEnv(t)
	sharded.Put(nil, 10, 1000)
	sharded.Put(nil, 11, 1000)
	done := make(chan struct{})
	go func() {
		defer close(done)
		tx := mgr.Register()
		for i := 0; i < 2000; i++ {
			_ = tx.RunRetry(func() error {
				Apply(tx, sharded, []Op{
					{Kind: OpAdd, Key: 10, Val: ^uint64(0)}, // -1
					{Kind: OpAdd, Key: 11, Val: 1},
				}, nil)
				return nil
			})
		}
	}()
	tx := mgr.Register()
	ops := []Op{{Kind: OpGet, Key: 10}, {Kind: OpGet, Key: 11}}
	res := make([]Result, 2)
	for i := 0; i < 2000; i++ {
		_ = tx.RunRetry(func() error {
			Apply(tx, sharded, ops, res)
			return nil
		})
		if sum := res[0].Val + res[1].Val; sum != 2000 {
			t.Fatalf("torn transfer observed: %d + %d = %d", res[0].Val, res[1].Val, sum)
		}
	}
	<-done
}
