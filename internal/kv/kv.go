// Package kv is the uniform transactional key–value seam of the
// repository: one interface (TxMap) that every NBTC-transformed structure
// and every competitor backend implements exactly once, a named
// constructor registry so drivers select implementations by string rather
// than by hand-rolled adapter, and a hash-partitioned ShardedStore that
// composes N TxMap shards into one logical map.
//
// The paper's central claim (Cai, Wen & Scott, SPAA 2023) is that
// NBTC-transformed structures compose freely under a single TxManager.
// ShardedStore is that claim put to work as an architecture: N shard
// instances — each an independent lock-free structure — joined in one
// strictly serializable transaction because they share one TxManager.
// A cross-shard transfer is just a transaction that happens to touch two
// shards; no extra protocol is needed.
//
// # The competitor gap
//
// The competitor backends (OneFile, TDSL, LFTT) also implement TxMap, but
// their transactions live inside their own STMs, not the shared
// TxManager; the *core.Tx argument is ignored and every operation commits
// as its own native transaction. They therefore cannot join a cross-shard
// transaction: a ShardedStore over competitor shards executes multi-key
// operations as a sequence of independent single-key transactions, which
// is NOT atomic across keys. Benchmarks express this by wrapping a single
// competitor instance (shard count 1) — the documented gap between
// composable NBTC structures and monolithic STM structures.
package kv

import "medley/internal/core"

// TxMap is a transactional map over uint64 keys and values. All
// operations thread a *core.Tx: inside an open transaction they compose
// atomically with every other TxMap attached to the same TxManager; with
// a nil Tx (or one with no open transaction) they run non-transactionally
// with the structure's native lock-free semantics.
type TxMap interface {
	// Get returns the value bound to key.
	Get(tx *core.Tx, key uint64) (uint64, bool)
	// Put binds key to val, returning the previous value if the key
	// existed.
	Put(tx *core.Tx, key uint64, val uint64) (uint64, bool)
	// Insert adds key only if absent.
	Insert(tx *core.Tx, key uint64, val uint64) bool
	// Remove deletes key, returning the removed value.
	Remove(tx *core.Tx, key uint64) (uint64, bool)
	// Range iterates a non-linearizable snapshot of entries, stopping if
	// fn returns false. It does not participate in transactions; scans
	// observe a best-effort view, exactly like the structures' native
	// Range.
	Range(fn func(key, val uint64) bool)
}

// Binder is the optional capability of TxMap implementations whose
// operations need per-goroutine state beyond the Tx itself (txMontage
// needs an epoch Handle wrapping the Tx). Workers call Bind once per
// (map, Tx) pair and use the returned view for all operations on that Tx.
type Binder interface {
	Bind(tx *core.Tx) TxMap
}

// Bind resolves the worker-local view of m for tx: m.Bind(tx) when m is a
// Binder, m itself otherwise (the common case — the transformed
// structures are stateless per worker).
func Bind(m TxMap, tx *core.Tx) TxMap {
	if b, ok := m.(Binder); ok {
		return b.Bind(tx)
	}
	return m
}

// Batcher is the optional capability of TxMap implementations that can
// execute multi-key operations more cheaply than a loop of single-key
// calls. ShardedStore implements it by grouping keys per shard, cutting
// per-operation dispatch overhead on multi-key mixes (transfer, order).
// Batch operations compose transactionally exactly like their single-key
// forms: with a nil Tx each element commits independently.
type Batcher interface {
	// GetBatch looks up keys[i] into vals[i], oks[i]. All three slices
	// must have equal length.
	GetBatch(tx *core.Tx, keys []uint64, vals []uint64, oks []bool)
	// PutBatch binds keys[i] to vals[i]. Both slices must have equal
	// length.
	PutBatch(tx *core.Tx, keys []uint64, vals []uint64)
}

// Lener is implemented by maps that can count their entries (not
// linearizable; tests and diagnostics).
type Lener interface {
	Len() int
}
