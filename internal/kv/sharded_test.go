package kv

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"medley/internal/core"
)

// TestCrossShardTransferAtomicity is the sharded-store counterpart of the
// paper's composition claim: concurrent transfers between accounts that
// live on different shards, with concurrent auditors summing every
// account transactionally. The total is invariant; a half-applied
// transfer would break it.
func TestCrossShardTransferAtomicity(t *testing.T) {
	const (
		accounts  = 64
		initial   = 1000
		movers    = 4
		transfers = 2000
	)
	mgr := core.NewTxManager()
	s, err := NewShardedNamed("hash", 8, Options{Mgr: mgr, Buckets: 1 << 8})
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < accounts; a++ {
		s.Put(nil, a, initial)
	}
	var stop atomic.Bool
	var moverWG, auditWG sync.WaitGroup
	for w := 0; w < movers; w++ {
		w := w
		moverWG.Add(1)
		go func() {
			defer moverWG.Done()
			tx := mgr.Register()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				from := uint64(r.Intn(accounts))
				to := uint64(r.Intn(accounts))
				if from == to {
					to = (to + 1) % accounts
				}
				amount := uint64(r.Intn(5))
				err := tx.RunRetry(func() error {
					fv, _ := s.Get(tx, from)
					if fv < amount {
						return nil // insufficient: commit without effect
					}
					tv, _ := s.Get(tx, to)
					s.Put(tx, from, fv-amount)
					s.Put(tx, to, tv+amount)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Auditors run transactional full sums while transfers are in flight:
	// strict serializability means every committed read snapshot balances.
	auditors := 2
	for w := 0; w < auditors; w++ {
		auditWG.Add(1)
		go func() {
			defer auditWG.Done()
			tx := mgr.Register()
			for !stop.Load() {
				var sum uint64
				err := tx.RunRetry(func() error {
					sum = 0
					for a := uint64(0); a < accounts; a++ {
						v, ok := s.Get(tx, a)
						if !ok {
							t.Errorf("account %d missing", a)
							return nil
						}
						sum += v
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if sum != accounts*initial {
					t.Errorf("observed half-applied transfer: sum %d, want %d", sum, accounts*initial)
					return
				}
			}
		}()
	}
	moverWG.Wait()
	stop.Store(true)
	auditWG.Wait()
	// Final ground-truth check.
	var sum uint64
	s.Range(func(_, v uint64) bool { sum += v; return true })
	if sum != accounts*initial {
		t.Fatalf("final sum %d, want %d", sum, accounts*initial)
	}
}

// TestBatchGroupsPerShard checks batch results equal per-key results and
// that batched writes land on the same shards single writes would.
func TestBatchOpsMatchSingleOps(t *testing.T) {
	mgr := core.NewTxManager()
	s, err := NewShardedNamed("hash", 4, Options{Mgr: mgr, Buckets: 1 << 8})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	keys := make([]uint64, 48)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = uint64(r.Intn(1 << 10))
		vals[i] = r.Uint64() % 1000
	}
	tx := mgr.Register()
	if err := tx.RunRetry(func() error {
		s.PutBatch(tx, keys, vals)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got := make([]uint64, len(keys))
	oks := make([]bool, len(keys))
	if err := tx.RunRetry(func() error {
		s.GetBatch(tx, keys, got, oks)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Later duplicates override earlier ones, like sequential puts.
	want := map[uint64]uint64{}
	for i, k := range keys {
		want[k] = vals[i]
	}
	for i, k := range keys {
		if !oks[i] || got[i] != want[k] {
			t.Fatalf("key %d: batch get (%d,%v), want %d", k, got[i], oks[i], want[k])
		}
		if v, ok := s.Get(nil, k); !ok || v != want[k] {
			t.Fatalf("key %d: single get (%d,%v), want %d", k, v, ok, want[k])
		}
	}
}

// TestGetBatchRidesReadOnlyFastPath proves the documented GetBatch
// guarantee: a get-only transaction over a multi-shard store commits
// through the core's read-only fast path (no publication, no descriptor
// handshake) no matter how many shards the batch straddles.
func TestGetBatchRidesReadOnlyFastPath(t *testing.T) {
	mgr := core.NewTxManager()
	s, err := NewShardedNamed("hash", 8, Options{Mgr: mgr, Buckets: 1 << 8})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 32)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = uint64(i * 37)
		s.Put(nil, keys[i], uint64(i))
	}
	oks := make([]bool, len(keys))
	tx := mgr.Register()
	const rounds = 5
	for r := 0; r < rounds; r++ {
		if err := tx.RunRetry(func() error {
			s.GetBatch(tx, keys, vals, oks)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range keys {
		if !oks[i] || vals[i] != uint64(i) {
			t.Fatalf("key %d: got (%d,%v), want %d", keys[i], vals[i], oks[i], i)
		}
	}
	st := mgr.Stats()
	if st.ReadOnlyCommits != rounds || st.FastPathCommits != rounds {
		t.Fatalf("ReadOnlyCommits,FastPathCommits = %d,%d, want %d,%d (get-only batches must elide the handshake)",
			st.ReadOnlyCommits, st.FastPathCommits, rounds, rounds)
	}
}

// TestCrossShardBatchAtomicity moves value between shards with PutBatch
// inside transactions and asserts auditors never see an unbalanced batch.
func TestCrossShardBatchAtomicity(t *testing.T) {
	const accounts = 32
	mgr := core.NewTxManager()
	s, err := NewShardedNamed("skip", 4, Options{Mgr: mgr})
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < accounts; a++ {
		s.Put(nil, a, 100)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		tx := mgr.Register()
		r := rand.New(rand.NewSource(9))
		keys := make([]uint64, 2)
		vals := make([]uint64, 2)
		for i := 0; i < 1500; i++ {
			keys[0] = uint64(r.Intn(accounts))
			keys[1] = uint64((r.Intn(accounts) + 1) % accounts)
			if keys[0] == keys[1] {
				continue
			}
			_ = tx.RunRetry(func() error {
				a, _ := s.Get(tx, keys[0])
				b, _ := s.Get(tx, keys[1])
				if a == 0 {
					return nil
				}
				vals[0], vals[1] = a-1, b+1
				s.PutBatch(tx, keys, vals)
				return nil
			})
		}
		close(stop)
	}()
	tx := mgr.Register()
	for audits := 0; ; audits++ {
		select {
		case <-stop:
			wg.Wait()
			var sum uint64
			s.Range(func(_, v uint64) bool { sum += v; return true })
			if sum != accounts*100 {
				t.Fatalf("final sum %d, want %d", sum, accounts*100)
			}
			return
		default:
		}
		var sum uint64
		if err := tx.RunRetry(func() error {
			sum = 0
			for a := uint64(0); a < accounts; a++ {
				v, _ := s.Get(tx, a)
				sum += v
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if sum != accounts*100 {
			t.Fatalf("audit %d saw half-applied batch: sum %d, want %d", audits, sum, accounts*100)
		}
	}
}
