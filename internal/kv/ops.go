package kv

import "medley/internal/core"

// This file is the first-class batch request API of the kv seam: a wire-
// and server-friendly Op/Result pair plus one Apply routine that every
// batch consumer — the network service's tick executor (internal/service),
// the harness worker loop (internal/harness), and tests — runs through.
// ShardedStore implements Applier over the same shard-grouped routing pass
// (eachShardGroup) that backs GetBatch/PutBatch, so multi-key requests
// touch each shard's memory once regardless of which entry point built
// them.

// OpKind enumerates batch request operations.
type OpKind uint8

// Batch operation kinds. Get/Put/Delete are the transactional point
// operations; Scan rides along non-transactionally (the structures' native
// best-effort Range, exactly like TxMap.Range); Add is a read-modify-write
// (fetch-and-add with uint64 wraparound) — two Adds with opposite deltas
// express an atomic transfer without the request carrying read-dependent
// values.
const (
	OpGet OpKind = iota
	OpPut
	OpDelete
	// OpScan visits up to Val entries of the structure's native Range
	// iteration; Key is unused. Scans are not part of the read set, and
	// Executor implementations run them outside the batch's transaction:
	// Range's raw loads finalize pending descriptors, so a scan inside the
	// transaction that wrote the same structure would abort its own
	// speculation on every retry.
	OpScan
	// OpAdd stores Get(Key)+Val back under Key (missing keys read as 0)
	// and reports the new value. Deltas are uint64 wraparound, so a
	// debit is Add(key, -amount).
	OpAdd
)

// String names the kind as the wire protocol spells it.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpAdd:
		return "add"
	}
	return "unknown"
}

// Op is one operation of a batch request. The whole batch executes as one
// atomic transaction when applied under an open *core.Tx.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  uint64
}

// Result is one operation's outcome: the value read (Get), the previous
// value (Put/Delete), the entries visited (Scan), or the new value (Add);
// Ok reports key presence (for Scan it is always true).
type Result struct {
	Val uint64
	Ok  bool
}

// Applier is the optional capability of TxMap implementations that can
// route a whole mixed-kind batch more cheaply than a loop of single-key
// calls. ShardedStore implements it with one shard-grouped pass.
type Applier interface {
	// Apply executes ops[i] into res[i]. res may be nil when the caller
	// discards outcomes; otherwise len(res) must equal len(ops).
	Apply(tx *core.Tx, ops []Op, res []Result)
}

// Executor runs batch requests, each as one atomic transaction, retrying
// conflict aborts internally until commit. Implementations are bound to
// one goroutine (they carry a *core.Tx and its SMR handle); callers hold
// one Executor per worker. The network service's tick workers and the
// harness's driver sessions both execute through this interface.
type Executor interface {
	// ExecBatch applies ops as one atomic transaction. res may be nil;
	// otherwise len(res) must equal len(ops). A non-nil error means the
	// batch did not commit (executor shut down, not a conflict — conflicts
	// retry internally).
	ExecBatch(ops []Op, res []Result) error
}

// Apply executes ops against m under tx: through m's Applier when it has
// one (the shard-grouped path), one operation at a time otherwise. It is
// the single batch-execution routine shared by every consumer of the
// request API.
//
// Callers running Apply inside an open transaction must not include OpScan
// alongside writes: see OpScan. Executors hoist scans out of the
// transaction instead.
func Apply(tx *core.Tx, m TxMap, ops []Op, res []Result) {
	if a, ok := m.(Applier); ok {
		a.Apply(tx, ops, res)
		return
	}
	for i := range ops {
		r := ApplyOne(tx, m, ops[i])
		if res != nil {
			res[i] = r
		}
	}
}

// ApplyOne executes a single operation against m under tx.
func ApplyOne(tx *core.Tx, m TxMap, op Op) Result {
	switch op.Kind {
	case OpGet:
		v, ok := m.Get(tx, op.Key)
		return Result{Val: v, Ok: ok}
	case OpPut:
		prev, existed := m.Put(tx, op.Key, op.Val)
		return Result{Val: prev, Ok: existed}
	case OpDelete:
		v, ok := m.Remove(tx, op.Key)
		return Result{Val: v, Ok: ok}
	case OpScan:
		n := int(op.Val)
		seen := uint64(0)
		if n > 0 {
			m.Range(func(_, _ uint64) bool {
				seen++
				n--
				return n > 0
			})
		}
		return Result{Val: seen, Ok: true}
	case OpAdd:
		v, ok := m.Get(tx, op.Key)
		v += op.Val
		m.Put(tx, op.Key, v)
		return Result{Val: v, Ok: ok}
	}
	return Result{}
}
