// Package nmbst implements an NBTC-transformed lock-free external binary
// search tree in the style of Natarajan & Mittal (PPoPP 2014): an
// edge-based design in which deletion first flags the edge to the victim
// leaf, then freezes the sibling edge with a tag, and finally splices the
// sibling up to the grandparent.
//
// The BST is the paper's example of an operation with a distinct
// publication point: the flag CAS makes the deletion visible (other
// updaters may help complete it) before the splice CAS linearizes it. Under
// NBTC the speculation interval therefore spans from the flag (pubPt) to
// the splice (linPt), and all three CASes of a deletion commit atomically
// with the rest of the transaction.
//
// Like the original, the tree is leaf-oriented: internal nodes route, keys
// live in leaves, and every internal node has exactly two children. GC
// replaces the original's epoch-based reclamation; fresh-cell identity in
// the Medley core replaces its pointer-packing of flag/tag bits.
package nmbst

import (
	"medley/internal/core"
)

// Key-space sentinels, mirroring the inf0/inf1/inf2 construction of the
// original: user keys must be at most MaxKey.
const (
	inf0 = ^uint64(0) - 2
	inf1 = ^uint64(0) - 1
	inf2 = ^uint64(0)
	// MaxKey is the largest user key the tree accepts.
	MaxKey = inf0 - 1
)

// edge is the value of a child pointer: target node plus the deletion
// protocol bits. flag marks an edge to a leaf being deleted; tag freezes a
// sibling edge while its subtree is spliced up.
type edge[V any] struct {
	n    *node[V]
	flag bool
	tag  bool
}

type node[V any] struct {
	key      uint64
	val      V
	internal bool
	left     core.CASObj[edge[V]]
	right    core.CASObj[edge[V]]
}

// ResetForReuse implements core.Resettable: clear references and bump the
// resident edge cells' generations so no stale witness can validate
// against a reused node. Leaves and internal nodes share the pool.
func (n *node[V]) ResetForReuse() {
	var zero V
	n.key = 0
	n.val = zero
	n.internal = false
	core.ResetSlot(&n.left)
	core.ResetSlot(&n.right)
}

// pool returns tx's node pool (nil when pooling is off; all NodePool
// methods are nil-receiver safe).
func pool[V any](tx *core.Tx) *core.NodePool[node[V]] {
	return core.PoolOf[node[V]](tx)
}

// getNode sources a node from the pool or the heap.
func getNode[V any](p *core.NodePool[node[V]]) *node[V] {
	if n := p.Get(); n != nil {
		return n
	}
	return &node[V]{}
}

func (n *node[V]) child(k uint64) *core.CASObj[edge[V]] {
	if k < n.key {
		return &n.left
	}
	return &n.right
}

// Tree is an NBTC-transformed external BST mapping uint64 keys (≤ MaxKey)
// to V.
type Tree[V any] struct {
	root *node[V]
	mgr  *core.TxManager
}

// New creates an empty tree attached to mgr.
func New[V any](mgr *core.TxManager) *Tree[V] {
	s := &node[V]{key: inf1, internal: true}
	s.left.Init(edge[V]{n: &node[V]{key: inf0}})
	s.right.Init(edge[V]{n: &node[V]{key: inf1}})
	r := &node[V]{key: inf2, internal: true}
	r.left.Init(edge[V]{n: s})
	r.right.Init(edge[V]{n: &node[V]{key: inf2}})
	return &Tree[V]{root: r, mgr: mgr}
}

// Manager returns the TxManager this tree participates in.
func (t *Tree[V]) Manager() *core.TxManager { return t.mgr }

// seekResult is the position of key: gp --gpEdge--> p --pEdge--> leaf, with
// the witnessed load of pEdge (the linearizing load of read-only
// outcomes). pEdgeVal carries the flag observed on the leaf edge.
type seekResult[V any] struct {
	gp     *node[V]
	gpEdge *core.CASObj[edge[V]]
	gpVal  edge[V]
	p      *node[V]
	pEdge  *core.CASObj[edge[V]]
	pVal   edge[V]
	leaf   *node[V]
	pW     core.ReadWitness
	found  bool
}

// seek descends from the root to the leaf governing key, helping any
// foreign pending deletion it encounters (flagged or tagged edges), except
// a deletion identified by (ownP, ownLeaf), which belongs to the calling
// operation itself.
func (t *Tree[V]) seek(tx *core.Tx, key uint64, ownP, ownLeaf *node[V]) seekResult[V] {
retry:
	for {
		var r seekResult[V]
		r.p = t.root
		r.pEdge = t.root.child(key)
		var pV edge[V]
		pV, r.pW = r.pEdge.NbtcLoad(tx)
		r.pVal = pV
		r.leaf = pV.n
		for r.leaf.internal {
			r.gp, r.gpEdge, r.gpVal = r.p, r.pEdge, r.pVal
			r.p = r.leaf
			r.pEdge = r.p.child(key)
			pV, r.pW = r.pEdge.NbtcLoad(tx)
			r.pVal = pV
			r.leaf = pV.n
		}
		if (r.pVal.flag || r.pVal.tag) && !(r.p == ownP && r.leaf == ownLeaf) {
			// A foreign deletion is pending at our destination; help it
			// finish and retry. (Tagged leaf edges occur transiently when
			// the sibling of a pending delete is itself a leaf.)
			if r.pVal.flag {
				t.helpDelete(tx, r.gp, r.gpEdge, r.p, r.leaf)
			} else {
				t.helpTagged(tx, r.gp, r.gpEdge, r.gpVal)
			}
			continue retry
		}
		r.found = r.leaf.key == key
		return r
	}
}

// helpDelete completes a deletion whose flag is set on p's edge to leaf:
// freeze p's other edge with a tag, then splice the sibling into gp. Safe
// to run concurrently by any number of helpers; every CAS tolerates having
// already been done.
func (t *Tree[V]) helpDelete(tx *core.Tx, gp *node[V], gpEdge *core.CASObj[edge[V]], p, leaf *node[V]) {
	if gp == nil || gpEdge == nil {
		return // flags directly under the root never happen: sentinels are never deleted
	}
	sibEdge := &p.right
	if !leafIsLeft(p, leaf, tx) {
		sibEdge = &p.left
	}
	// Freeze the sibling edge: tag it if clean; a flag (competing deletion
	// of the sibling leaf) freezes it just as well.
	var sv edge[V]
	for {
		sv, _ = sibEdge.NbtcLoad(tx)
		if sv.flag || sv.tag {
			break
		}
		if sibEdge.NbtcCAS(tx, sv, edge[V]{sv.n, false, true}, false, false) {
			sv.tag = true
			break
		}
	}
	// Splice: gp's edge to p becomes an edge to the frozen sibling.
	gpEdge.NbtcCAS(tx, edge[V]{p, false, false}, edge[V]{sv.n, false, false}, false, false)
}

// helpTagged resolves an encountered tagged edge by re-running the
// deletion that owns it: the tag's owner flagged p's other edge, so locate
// that flag and help. gpEdge/gpVal address the tagged edge's parent edge.
func (t *Tree[V]) helpTagged(tx *core.Tx, gp *node[V], gpEdge *core.CASObj[edge[V]], gpVal edge[V]) {
	// The tagged edge hangs off gpVal.n's parent p = the node whose other
	// edge is flagged. Our caller found the tag on p's edge, with p
	// reachable from gp; the flagged edge is p's other child.
	p := gpVal.n
	if p == nil || !p.internal {
		return
	}
	lv, _ := p.left.NbtcLoad(tx)
	rv, _ := p.right.NbtcLoad(tx)
	if lv.flag && lv.n != nil && !lv.n.internal {
		t.helpDelete(tx, gp, gpEdge, p, lv.n)
	} else if rv.flag && rv.n != nil && !rv.n.internal {
		t.helpDelete(tx, gp, gpEdge, p, rv.n)
	}
}

// leafIsLeft reports which side of p holds leaf, reading through any
// installed descriptors.
func leafIsLeft[V any](p *node[V], leaf *node[V], tx *core.Tx) bool {
	lv, _ := p.left.NbtcLoad(tx)
	return lv.n == leaf
}

// Get returns the value bound to key; the witnessed load of the leaf edge
// is the linearization point (a committed replace or delete of that leaf
// must change the edge, and an insert of key must replace it with an
// internal node).
func (t *Tree[V]) Get(tx *core.Tx, key uint64) (V, bool) {
	tx.OpStart()
	r := t.seek(tx, key, nil, nil)
	tx.AddToReadSet(r.pW)
	if r.found {
		return r.leaf.val, true
	}
	var zero V
	return zero, false
}

// Contains reports presence with the same evidence as Get.
func (t *Tree[V]) Contains(tx *core.Tx, key uint64) bool {
	_, ok := t.Get(tx, key)
	return ok
}

// Put binds key to val, inserting or replacing; one linearizing CAS on the
// leaf edge in either path.
func (t *Tree[V]) Put(tx *core.Tx, key uint64, val V) (V, bool) {
	tx.OpStart()
	for {
		r := t.seek(tx, key, nil, nil)
		if r.found {
			p := pool[V](tx)
			newLeaf := getNode(p)
			newLeaf.key, newLeaf.val, newLeaf.internal = key, val, false
			old := r.leaf.val
			if r.pEdge.NbtcCAS(tx, edge[V]{r.leaf, false, false}, edge[V]{newLeaf, false, false}, true, true) {
				// The replaced leaf is unreachable the moment the edge CAS
				// takes effect; retire it (commit-gated inside a
				// transaction).
				p.Retire(r.leaf)
				return old, true
			}
			p.Put(newLeaf) // never published
			continue
		}
		if t.insertAt(tx, r, key, val) {
			var zero V
			return zero, false
		}
	}
}

// Insert adds key only if absent; a failed insert is a read-only outcome.
func (t *Tree[V]) Insert(tx *core.Tx, key uint64, val V) bool {
	tx.OpStart()
	for {
		r := t.seek(tx, key, nil, nil)
		if r.found {
			tx.AddToReadSet(r.pW)
			return false
		}
		if t.insertAt(tx, r, key, val) {
			return true
		}
	}
}

// insertAt replaces the reached leaf with an internal node holding the old
// leaf and the new one in key order. Both nodes come from the Tx's pool
// when pooling is on; a failed attempt returns them (never published) for
// immediate reuse by the retry.
func (t *Tree[V]) insertAt(tx *core.Tx, r seekResult[V], key uint64, val V) bool {
	p := pool[V](tx)
	newLeaf := getNode(p)
	newLeaf.key, newLeaf.val, newLeaf.internal = key, val, false
	in := getNode(p)
	in.internal = true
	if key < r.leaf.key {
		in.key = r.leaf.key
		in.left.InitTx(tx, edge[V]{n: newLeaf})
		in.right.InitTx(tx, edge[V]{n: r.leaf})
	} else {
		in.key = key
		in.left.InitTx(tx, edge[V]{n: r.leaf})
		in.right.InitTx(tx, edge[V]{n: newLeaf})
	}
	if r.pEdge.NbtcCAS(tx, edge[V]{r.leaf, false, false}, edge[V]{in, false, false}, true, true) {
		return true
	}
	p.Put(newLeaf)
	p.Put(in)
	return false
}

// Remove deletes key. Protocol: flag the leaf edge (publication point),
// freeze the sibling edge with a tag, splice the sibling into the
// grandparent (linearization point). All three CASes are critical inside a
// transaction and commit together.
func (t *Tree[V]) Remove(tx *core.Tx, key uint64) (V, bool) {
	tx.OpStart()
	var ownP, ownLeaf *node[V]
	var val V
	for {
		r := t.seek(tx, key, ownP, ownLeaf)
		if ownP == nil {
			if !r.found {
				tx.AddToReadSet(r.pW)
				var zero V
				return zero, false
			}
			val = r.leaf.val
			// Publication point: flag the edge to the victim leaf.
			if !r.pEdge.NbtcCAS(tx, edge[V]{r.leaf, false, false}, edge[V]{r.leaf, true, false}, false, true) {
				continue
			}
			ownP, ownLeaf = r.p, r.leaf
		} else if r.p != ownP || r.leaf != ownLeaf {
			// Our flagged leaf is no longer where we left it: some other
			// thread restructured around our flag (only possible outside a
			// transaction, where the flag is immediately visible). Nothing
			// is retired here — a racing deletion of the sibling leaf can
			// splice OUR flagged leaf up to the grandparent (dropping the
			// flag), in which case ownLeaf is still reachable and ownP may
			// already have been retired by that racer; both therefore fall
			// back to the garbage collector, which is always safe.
			return val, true
		}
		// Freeze the sibling edge, then splice (linearization point).
		sibEdge := &ownP.right
		if !leafIsLeft(ownP, ownLeaf, tx) {
			sibEdge = &ownP.left
		}
		var sv edge[V]
		for {
			sv, _ = sibEdge.NbtcLoad(tx)
			if sv.flag || sv.tag {
				break
			}
			if sibEdge.NbtcCAS(tx, sv, edge[V]{sv.n, false, true}, false, false) {
				break
			}
		}
		if r.gpEdge.NbtcCAS(tx, edge[V]{ownP, false, false}, edge[V]{sv.n, false, false}, true, true) {
			// The splice detaches both the victim leaf and its parent; the
			// leaf stays reachable only through the parent's frozen edge, so
			// retiring them together keeps their grace periods aligned.
			p := pool[V](tx)
			p.Retire(ownLeaf)
			p.Retire(ownP)
			return val, true
		}
		// Splice failed: the grandparent edge changed (e.g., another
		// deletion restructured above us). Re-seek and retry; the flag
		// keeps our victim frozen.
	}
}

// Len counts leaves with user keys; not linearizable, for tests.
func (t *Tree[V]) Len() int {
	n := 0
	t.Range(func(uint64, V) bool { n++; return true })
	return n
}

// Range iterates a non-linearizable snapshot of user entries in key order;
// for tests.
func (t *Tree[V]) Range(fn func(key uint64, val V) bool) {
	var walk func(nd *node[V]) bool
	walk = func(nd *node[V]) bool {
		if nd == nil {
			return true
		}
		if !nd.internal {
			if nd.key <= MaxKey {
				return fn(nd.key, nd.val)
			}
			return true
		}
		if !walk(nd.left.Load().n) {
			return false
		}
		return walk(nd.right.Load().n)
	}
	walk(t.root)
}
