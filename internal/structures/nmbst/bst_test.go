package nmbst

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"medley/internal/core"
)

func TestSequentialBasics(t *testing.T) {
	mgr := core.NewTxManager()
	tr := New[string](mgr)
	if _, ok := tr.Get(nil, 5); ok {
		t.Fatal("empty Get found")
	}
	if _, repl := tr.Put(nil, 5, "five"); repl {
		t.Fatal("fresh Put replaced")
	}
	if v, ok := tr.Get(nil, 5); !ok || v != "five" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if old, repl := tr.Put(nil, 5, "FIVE"); !repl || old != "five" {
		t.Fatalf("replace = %q,%v", old, repl)
	}
	if !tr.Insert(nil, 3, "three") || tr.Insert(nil, 3, "x") {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := tr.Remove(nil, 3); !ok || v != "three" {
		t.Fatalf("Remove = %q,%v", v, ok)
	}
	if _, ok := tr.Remove(nil, 3); ok {
		t.Fatal("double Remove succeeded")
	}
	if v, ok := tr.Remove(nil, 5); !ok || v != "FIVE" {
		t.Fatalf("Remove(5) = %q,%v", v, ok)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	// Tree must remain usable after shrinking to empty.
	if !tr.Insert(nil, 9, "nine") {
		t.Fatal("insert after empty failed")
	}
	if v, ok := tr.Get(nil, 9); !ok || v != "nine" {
		t.Fatalf("Get(9) = %q,%v", v, ok)
	}
}

func TestInOrderTraversal(t *testing.T) {
	mgr := core.NewTxManager()
	tr := New[int](mgr)
	rng := rand.New(rand.NewSource(1))
	ref := map[uint64]int{}
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(3000))
		v := rng.Int()
		tr.Put(nil, k, v)
		ref[k] = v
	}
	var prev uint64
	first := true
	count := 0
	tr.Range(func(k uint64, v int) bool {
		if !first && k <= prev {
			t.Fatalf("order violated: %d after %d", k, prev)
		}
		if ref[k] != v {
			t.Fatalf("value mismatch at %d", k)
		}
		prev, first = k, false
		count++
		return true
	})
	if count != len(ref) {
		t.Fatalf("Range saw %d, want %d", count, len(ref))
	}
}

func TestQuickVsReference(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint16
	}
	f := func(ops []op) bool {
		mgr := core.NewTxManager()
		tr := New[uint16](mgr)
		ref := map[uint64]uint16{}
		for _, o := range ops {
			k := uint64(o.Key % 40)
			switch o.Kind % 4 {
			case 0:
				tr.Put(nil, k, o.Val)
				ref[k] = o.Val
			case 1:
				v, ok := tr.Remove(nil, k)
				rv, had := ref[k]
				if ok != had || (ok && v != rv) {
					return false
				}
				delete(ref, k)
			case 2:
				ins := tr.Insert(nil, k, o.Val)
				_, had := ref[k]
				if ins == had {
					return false
				}
				if ins {
					ref[k] = o.Val
				}
			default:
				v, ok := tr.Get(nil, k)
				rv, had := ref[k]
				if ok != had || (ok && v != rv) {
					return false
				}
			}
		}
		return tr.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionalComposition(t *testing.T) {
	mgr := core.NewTxManager()
	t1 := New[int](mgr)
	t2 := New[int](mgr)
	tx := mgr.Register()
	t1.Put(nil, 1, 100)
	err := tx.Run(func() error {
		v, ok := t1.Get(tx, 1)
		if !ok || v < 40 {
			tx.Abort()
		}
		t1.Put(tx, 1, v-40)
		v2, _ := t2.Get(tx, 9)
		t2.Put(tx, 9, v2+40)
		return nil
	})
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if v, _ := t1.Get(nil, 1); v != 60 {
		t.Fatalf("t1[1] = %d", v)
	}
	if v, _ := t2.Get(nil, 9); v != 40 {
		t.Fatalf("t2[9] = %d", v)
	}
}

func TestTxRemoveAtomicMultiCAS(t *testing.T) {
	// Remove spans three CASes (flag, tag, splice); abort must roll back
	// all of them.
	mgr := core.NewTxManager()
	tr := New[int](mgr)
	tx := mgr.Register()
	for k := uint64(1); k <= 7; k++ {
		tr.Put(nil, k, int(k))
	}
	_ = tx.Run(func() error {
		if _, ok := tr.Remove(tx, 4); !ok {
			t.Fatal("Remove failed")
		}
		if _, ok := tr.Get(tx, 4); ok {
			t.Fatal("own remove invisible to self")
		}
		tx.Abort()
		return nil
	})
	if v, ok := tr.Get(nil, 4); !ok || v != 4 {
		t.Fatalf("aborted remove leaked: %d,%v", v, ok)
	}
	if tr.Len() != 7 {
		t.Fatalf("Len = %d, want 7", tr.Len())
	}
	// And the committed version takes effect.
	if err := tx.Run(func() error {
		_, ok := tr.Remove(tx, 4)
		if !ok {
			t.Fatal("Remove failed")
		}
		return nil
	}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if _, ok := tr.Get(nil, 4); ok {
		t.Fatal("committed remove had no effect")
	}
}

func TestTxInsertRemoveSameKey(t *testing.T) {
	mgr := core.NewTxManager()
	tr := New[int](mgr)
	tx := mgr.Register()
	err := tx.Run(func() error {
		if !tr.Insert(tx, 5, 50) {
			t.Fatal("Insert failed")
		}
		if v, ok := tr.Get(tx, 5); !ok || v != 50 {
			t.Fatal("own insert invisible")
		}
		if _, ok := tr.Remove(tx, 5); !ok {
			t.Fatal("remove of own insert failed")
		}
		if _, ok := tr.Get(tx, 5); ok {
			t.Fatal("removed key still visible")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

func TestStaleReadAborts(t *testing.T) {
	mgr := core.NewTxManager()
	tr := New[int](mgr)
	tx := mgr.Register()
	tr.Put(nil, 5, 50)
	err := tx.Run(func() error {
		if _, ok := tr.Get(tx, 5); !ok {
			t.Fatal("Get missing")
		}
		tr.Put(nil, 5, 51)
		return nil
	})
	if !errors.Is(err, core.ErrTxAborted) {
		t.Fatalf("stale read committed: %v", err)
	}
}

func TestConcurrentMixed(t *testing.T) {
	mgr := core.NewTxManager()
	tr := New[uint64](mgr)
	const goroutines = 6
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := uint64(rng.Intn(200))
				switch rng.Intn(3) {
				case 0:
					tr.Put(nil, k, k*7)
				case 1:
					tr.Remove(nil, k)
				default:
					if v, ok := tr.Get(nil, k); ok && v != k*7 {
						t.Errorf("Get(%d) = %d", k, v)
					}
				}
			}
		}(int64(g) + 23)
	}
	wg.Wait()
	var prev uint64
	first := true
	tr.Range(func(k uint64, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("order violated after churn")
		}
		prev, first = k, false
		return true
	})
}

func TestConcurrentSiblingDeletes(t *testing.T) {
	// Stress the double-delete conflict: pairs of adjacent keys removed by
	// different goroutines.
	mgr := core.NewTxManager()
	tr := New[int](mgr)
	const pairs = 200
	for k := uint64(0); k < pairs*2; k++ {
		tr.Put(nil, k, int(k))
	}
	var wg sync.WaitGroup
	for side := 0; side < 2; side++ {
		wg.Add(1)
		go func(off uint64) {
			defer wg.Done()
			for p := uint64(0); p < pairs; p++ {
				if _, ok := tr.Remove(nil, p*2+off); !ok {
					t.Errorf("remove %d failed", p*2+off)
				}
			}
		}(uint64(side))
	}
	wg.Wait()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

func TestConcurrentTransactionalConservation(t *testing.T) {
	mgr := core.NewTxManager()
	tr := New[int](mgr)
	const nAccounts = 16
	const initial = 400
	for k := uint64(0); k < nAccounts; k++ {
		tr.Put(nil, k, initial)
	}
	const goroutines = 5
	iters := 500
	if testing.Short() {
		iters = 100
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				a := uint64(rng.Intn(nAccounts))
				b := uint64(rng.Intn(nAccounts))
				if a == b {
					continue
				}
				amt := rng.Intn(7) + 1
				_ = tx.RunRetry(func() error {
					va, ok := tr.Get(tx, a)
					if !ok || va < amt {
						return errInsufficient
					}
					vb, _ := tr.Get(tx, b)
					tr.Put(tx, a, va-amt)
					tr.Put(tx, b, vb+amt)
					return nil
				})
			}
		}(int64(g)*13 + 7)
	}
	wg.Wait()
	total := 0
	for k := uint64(0); k < nAccounts; k++ {
		v, ok := tr.Get(nil, k)
		if !ok || v < 0 {
			t.Fatalf("account %d = %d,%v", k, v, ok)
		}
		total += v
	}
	if total != nAccounts*initial {
		t.Fatalf("total = %d, want %d", total, nAccounts*initial)
	}
}

func TestMaxKeyBoundary(t *testing.T) {
	mgr := core.NewTxManager()
	tr := New[int](mgr)
	if !tr.Insert(nil, MaxKey, 1) {
		t.Fatal("MaxKey insert failed")
	}
	if v, ok := tr.Get(nil, MaxKey); !ok || v != 1 {
		t.Fatalf("Get(MaxKey) = %d,%v", v, ok)
	}
	if _, ok := tr.Remove(nil, MaxKey); !ok {
		t.Fatal("MaxKey remove failed")
	}
}
