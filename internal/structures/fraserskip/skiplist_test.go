package fraserskip

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"medley/internal/core"
)

func TestSequentialBasics(t *testing.T) {
	mgr := core.NewTxManager()
	s := New[string](mgr)
	if _, ok := s.Get(nil, 5); ok {
		t.Fatal("empty Get found")
	}
	if _, repl := s.Put(nil, 5, "five"); repl {
		t.Fatal("Put on empty replaced")
	}
	if v, ok := s.Get(nil, 5); !ok || v != "five" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if old, repl := s.Put(nil, 5, "FIVE"); !repl || old != "five" {
		t.Fatalf("replace = %q,%v", old, repl)
	}
	if v, _ := s.Get(nil, 5); v != "FIVE" {
		t.Fatalf("Get after replace = %q", v)
	}
	if !s.Insert(nil, 3, "three") || s.Insert(nil, 3, "x") {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := s.Remove(nil, 3); !ok || v != "three" {
		t.Fatalf("Remove = %q,%v", v, ok)
	}
	if _, ok := s.Remove(nil, 3); ok {
		t.Fatal("double Remove succeeded")
	}
}

func TestAscendingOrderManyKeys(t *testing.T) {
	mgr := core.NewTxManager()
	s := New[int](mgr)
	rng := rand.New(rand.NewSource(7))
	seen := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(5000))
		s.Put(nil, k, int(k))
		seen[k] = true
	}
	var prev uint64
	first := true
	count := 0
	s.Range(func(k uint64, v int) bool {
		if !first && k <= prev {
			t.Fatalf("order violated: %d after %d", k, prev)
		}
		if v != int(k) {
			t.Fatalf("value mismatch at %d", k)
		}
		prev, first = k, false
		count++
		return true
	})
	if count != len(seen) {
		t.Fatalf("Range saw %d, want %d", count, len(seen))
	}
}

func TestQuickVsReference(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint16
	}
	f := func(ops []op) bool {
		mgr := core.NewTxManager()
		s := New[uint16](mgr)
		ref := map[uint64]uint16{}
		for _, o := range ops {
			k := uint64(o.Key % 48)
			switch o.Kind % 4 {
			case 0:
				s.Put(nil, k, o.Val)
				ref[k] = o.Val
			case 1:
				s.Remove(nil, k)
				delete(ref, k)
			case 2:
				ins := s.Insert(nil, k, o.Val)
				_, had := ref[k]
				if ins == had {
					return false
				}
				if ins {
					ref[k] = o.Val
				}
			default:
				v, ok := s.Get(nil, k)
				rv, had := ref[k]
				if ok != had || (ok && v != rv) {
					return false
				}
			}
		}
		return s.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionalComposition(t *testing.T) {
	mgr := core.NewTxManager()
	s1 := New[int](mgr)
	s2 := New[int](mgr)
	tx := mgr.Register()
	s1.Put(nil, 1, 100)

	err := tx.Run(func() error {
		v, ok := s1.Get(tx, 1)
		if !ok || v < 30 {
			tx.Abort()
		}
		v2, _ := s2.Get(tx, 2)
		s1.Put(tx, 1, v-30)
		s2.Put(tx, 2, v2+30)
		return nil
	})
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if v, _ := s1.Get(nil, 1); v != 70 {
		t.Fatalf("s1[1] = %d", v)
	}
	if v, _ := s2.Get(nil, 2); v != 30 {
		t.Fatalf("s2[2] = %d", v)
	}
}

func TestTxSelfVisibilityAndRollback(t *testing.T) {
	mgr := core.NewTxManager()
	s := New[int](mgr)
	tx := mgr.Register()
	s.Put(nil, 10, 1)
	_ = tx.Run(func() error {
		if !s.Insert(tx, 20, 2) {
			t.Fatal("Insert failed")
		}
		if v, ok := s.Get(tx, 20); !ok || v != 2 {
			t.Fatal("own insert invisible")
		}
		if _, ok := s.Remove(tx, 10); !ok {
			t.Fatal("Remove failed")
		}
		if _, ok := s.Get(tx, 10); ok {
			t.Fatal("own remove invisible")
		}
		tx.Abort()
		return nil
	})
	if _, ok := s.Get(nil, 20); ok {
		t.Fatal("aborted insert leaked")
	}
	if v, ok := s.Get(nil, 10); !ok || v != 1 {
		t.Fatalf("aborted remove leaked: %d,%v", v, ok)
	}
}

func TestStaleReadAborts(t *testing.T) {
	mgr := core.NewTxManager()
	s := New[int](mgr)
	tx := mgr.Register()
	s.Put(nil, 5, 50)
	err := tx.Run(func() error {
		if _, ok := s.Get(tx, 5); !ok {
			t.Fatal("Get missing")
		}
		s.Put(nil, 5, 51) // committed interference
		return nil
	})
	if !errors.Is(err, core.ErrTxAborted) {
		t.Fatalf("stale read committed: %v", err)
	}
}

func TestAbsenceWitnessAborts(t *testing.T) {
	mgr := core.NewTxManager()
	s := New[int](mgr)
	tx := mgr.Register()
	err := tx.Run(func() error {
		if _, ok := s.Get(tx, 5); ok {
			t.Fatal("phantom key")
		}
		s.Put(nil, 5, 1) // insert into the observed gap
		return nil
	})
	if !errors.Is(err, core.ErrTxAborted) {
		t.Fatalf("phantom insert not detected: %v", err)
	}
}

func TestConcurrentMixed(t *testing.T) {
	mgr := core.NewTxManager()
	s := New[uint64](mgr)
	const goroutines = 6
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := uint64(rng.Intn(256))
				switch rng.Intn(3) {
				case 0:
					s.Put(nil, k, k*3)
				case 1:
					s.Remove(nil, k)
				default:
					if v, ok := s.Get(nil, k); ok && v != k*3 {
						t.Errorf("Get(%d) = %d", k, v)
					}
				}
			}
		}(int64(g) + 11)
	}
	wg.Wait()
	// Structural sanity after churn.
	var prev uint64
	first := true
	s.Range(func(k uint64, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("order violated after churn: %d after %d", k, prev)
		}
		prev, first = k, false
		return true
	})
}

func TestConcurrentTransactionalConservation(t *testing.T) {
	mgr := core.NewTxManager()
	s := New[int](mgr)
	const nAccounts = 16
	const initial = 300
	for k := uint64(0); k < nAccounts; k++ {
		s.Put(nil, k, initial)
	}
	const goroutines = 5
	iters := 600
	if testing.Short() {
		iters = 100
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				a := uint64(rng.Intn(nAccounts))
				b := uint64(rng.Intn(nAccounts))
				if a == b {
					continue
				}
				amt := rng.Intn(9) + 1
				_ = tx.RunRetry(func() error {
					va, ok := s.Get(tx, a)
					if !ok || va < amt {
						return errInsufficient
					}
					vb, _ := s.Get(tx, b)
					s.Put(tx, a, va-amt)
					s.Put(tx, b, vb+amt)
					return nil
				})
			}
		}(int64(g)*17 + 3)
	}
	wg.Wait()
	total := 0
	for k := uint64(0); k < nAccounts; k++ {
		v, ok := s.Get(nil, k)
		if !ok || v < 0 {
			t.Fatalf("account %d = %d,%v", k, v, ok)
		}
		total += v
	}
	if total != nAccounts*initial {
		t.Fatalf("total = %d, want %d", total, nAccounts*initial)
	}
}

func TestTowerIntegrityAfterChurn(t *testing.T) {
	// Index levels must remain consistent sublists of level 0.
	mgr := core.NewTxManager()
	s := New[int](mgr)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(400))
		if rng.Intn(2) == 0 {
			s.Put(nil, k, 1)
		} else {
			s.Remove(nil, k)
		}
	}
	level0 := map[*node[int]]bool{}
	for c := s.head.next[0].Load().node; c != nil; c = c.next[0].Load().node {
		if !c.next[0].Load().mark {
			level0[c] = true
		}
	}
	for l := 1; l < MaxLevel; l++ {
		var prevKey uint64
		first := true
		for c := s.head.next[l].Load().node; c != nil; c = c.next[l].Load().node {
			if c.dead.Load() {
				continue // awaiting unlink; hygiene only
			}
			if !level0[c] {
				t.Fatalf("level %d references node %d not live at level 0", l, c.key)
			}
			if !first && c.key < prevKey {
				t.Fatalf("level %d key order violated", l)
			}
			prevKey, first = c.key, false
		}
	}
}
