package fraserskip

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"medley/internal/core"
)

// checkNoCycles walks every index level with a step bound; exceeding the
// bound implies a cycle (the list can never legitimately exceed the node
// count).
func checkNoCycles[V any](t *testing.T, s *List[V], maxNodes int) {
	t.Helper()
	for l := 0; l < MaxLevel; l++ {
		steps := 0
		seen := map[*node[V]]int{}
		for c := s.head.next[l].Load().node; c != nil; c = c.next[l].Load().node {
			if prev, dup := seen[c]; dup {
				t.Fatalf("cycle at level %d: node key=%d revisited (first at step %d, now %d)",
					l, c.key, prev, steps)
			}
			seen[c] = steps
			steps++
			if steps > maxNodes*4 {
				t.Fatalf("level %d walk exceeded %d steps without nil", l, maxNodes*4)
			}
		}
	}
}

// TestReplaceChurnNoIndexCycle hammers Put (replace) and Remove on a tiny
// key space from several goroutines — the racing tower-build scenario that
// can weave same-key nodes into an index-level cycle — then verifies every
// level is acyclic. Regression test for the search() livelock.
func TestReplaceChurnNoIndexCycle(t *testing.T) {
	mgr := core.NewTxManager()
	s := New[uint64](mgr)
	const keys = 32
	var wg sync.WaitGroup
	var stop atomic.Bool
	var totalOps atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			tx := mgr.Register()
			for !stop.Load() {
				// Mirror the paper's microbenchmark: transactions of 1-10
				// uniformly random put/remove operations.
				n := 1 + rng.Intn(10)
				_ = tx.RunRetry(func() error {
					for i := 0; i < n; i++ {
						k := uint64(rng.Intn(keys))
						if rng.Intn(2) == 0 {
							s.Put(tx, k, k)
						} else {
							s.Remove(tx, k)
						}
					}
					return nil
				})
				totalOps.Add(1)
			}
		}(int64(g) + 3)
	}
	deadline := time.After(1500 * time.Millisecond)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	last := int64(0)
	for {
		select {
		case <-deadline:
			stop.Store(true)
			wg.Wait()
			checkNoCycles(t, s, keys*4)
			return
		case <-tick.C:
			cur := totalOps.Load()
			if cur == last && cur > 0 {
				stop.Store(true)
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Logf("stall stacks:\n%s", buf[:n])
				// Don't wg.Wait(): workers may be wedged in a cycle.
				checkNoCycles(t, s, keys*4)
				t.Fatal("workers stalled but no cycle found — investigate")
			}
			last = cur
		}
	}
}
