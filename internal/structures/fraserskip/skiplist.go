// Package fraserskip implements Fraser's CAS-based lock-free skiplist
// (Practical Lock-Freedom, Cambridge 2003), NBTC-transformed for Medley.
//
// Linearization follows Fraser's design: an operation linearizes on a
// single CAS at the bottom (level-0) list — linking a node in (insert),
// marking a node's level-0 successor (remove), or marking with a spliced
// replacement (put on an existing key, the same trick as Michael's hash
// table in the paper's Figure 2). All index-level (level > 0) work is
// performance-only: towers are built and torn down post-linearization, so
// the NBTC transform defers them to post-commit cleanup, and readers treat
// the index as a hint that is repaired en passant.
package fraserskip

import (
	"math/bits"
	"math/rand/v2"

	"medley/internal/core"
	"sync/atomic"
)

// MaxLevel matches the paper's experimental configuration ("each skiplist
// has up to 20 levels").
const MaxLevel = 20

// ref is a level-0 link: successor plus logical-deletion mark. Index levels
// reuse the type with mark always false.
type ref[V any] struct {
	node *node[V]
	mark bool
}

// node reclamation audit (pooling): fraserskip nodes are deliberately NOT
// pool-recycled. Tower teardown is lazy — a removed node's index-level
// links are repaired best-effort by finishRemove and later traversals, so a
// node can remain physically linked at index levels long after its level-0
// unlink, with no bound tied to any EBR grace period. Recycling such a node
// would let a descending search reach a reused node through a stale index
// link. Nodes therefore stay GC-reclaimed; the *cells* inside their links
// still recycle safely, because cells are only ever reached through live
// slots of reachable (never-freed) nodes and are retired at displacement.
type node[V any] struct {
	key   uint64
	val   V
	level int         // tower height, 1..MaxLevel
	dead  atomic.Bool // set post-commit; index-level hygiene only
	next  []core.CASObj[ref[V]]
}

// List is an NBTC-transformed Fraser skiplist mapping uint64 keys to V.
type List[V any] struct {
	head *node[V] // sentinel, full height, key ignored
	mgr  *core.TxManager
}

// New creates an empty skiplist attached to mgr.
func New[V any](mgr *core.TxManager) *List[V] {
	h := &node[V]{level: MaxLevel, next: make([]core.CASObj[ref[V]], MaxLevel)}
	return &List[V]{head: h, mgr: mgr}
}

// Manager returns the TxManager this skiplist participates in.
func (s *List[V]) Manager() *core.TxManager { return s.mgr }

// randomLevel draws a geometric(1/2) height in [1, MaxLevel].
func randomLevel() int {
	l := bits.TrailingZeros64(rand.Uint64()|1<<(MaxLevel-1)) + 1
	return l
}

// searchResult is the postcondition of search at level 0: pred.next[0] held
// {curr, unmarked}; curr is the first node with key >= the search key (nil
// at the end). predW / currW witness the loads of pred.next[0] and
// curr.next[0].
type searchResult[V any] struct {
	pred  *node[V]
	curr  *node[V]
	next  *node[V]
	found bool
	predW core.ReadWitness
	currW core.ReadWitness
}

// search locates key. The index levels are a best-effort fast path: the
// descent repairs dead towers opportunistically and hands the level-0
// stage a starting predecessor. The level-0 stage is exact Michael-style
// traversal (the same discipline as mhash, whose anchors — bucket heads —
// are immortal): whenever the inherited anchor proves stale (its link is
// marked, or an unlink CAS fails), the walk restarts from the list head at
// level 0, which is immortal and therefore always converges. All loads go
// through NbtcLoad so a transaction observes its own speculative links;
// helper unlinks go through NbtcCAS with no lin/pub flags.
func (s *List[V]) search(tx *core.Tx, key uint64) searchResult[V] {
	pred := s.head
	// Fast-path descent. Each dead tower gets one repair attempt; on CAS
	// failure we walk through it (hint quality only — level 0 decides).
	for l := MaxLevel - 1; l >= 1; l-- {
		for {
			cr, _ := pred.next[l].NbtcLoad(tx)
			curr := cr.node
			if curr == nil {
				break
			}
			nr0, _ := curr.next[0].NbtcLoad(tx)
			if curr.dead.Load() || nr0.mark {
				// curr is logically deleted (lazy flag, committed mark with
				// pending cleanup, or this transaction's own speculative
				// mark): swing pred past its tower, best effort.
				sr, _ := curr.next[l].NbtcLoad(tx)
				if pred.next[l].NbtcCAS(tx, ref[V]{curr, false}, ref[V]{sr.node, false}, false, false) {
					continue
				}
				// Repair raced; fall through the dead node as a mere hint.
			}
			if curr.key < key {
				pred = curr
				continue
			}
			break
		}
	}
	// Exact level-0 stage.
	for attempt := 0; ; attempt++ {
		prev := pred
		if attempt > 0 {
			prev = s.head // inherited anchor proved stale: immortal restart
		}
		cr, prevW := prev.next[0].NbtcLoad(tx)
		if cr.mark {
			// The anchor itself is deleted; only possible for an inherited
			// (non-head) anchor.
			continue
		}
		curr := cr.node
		ok := true
		for ok {
			if curr == nil {
				return searchResult[V]{pred: prev, predW: prevW}
			}
			nr, currW := curr.next[0].NbtcLoad(tx)
			if nr.mark {
				if prev.next[0].NbtcCAS(tx, ref[V]{curr, false}, ref[V]{nr.node, false}, false, false) {
					curr = nr.node
					continue
				}
				ok = false // lost an unlink race: restart from the head
				break
			}
			if curr.key >= key {
				return searchResult[V]{
					pred: prev, curr: curr, next: nr.node,
					found: curr.key == key,
					predW: prevW, currW: currW,
				}
			}
			prev = curr
			prevW = currW
			curr = nr.node
		}
	}
}

// Get returns the value bound to key; see mhash for the witness discipline
// (curr.next[0] when present, pred.next[0] when absent).
func (s *List[V]) Get(tx *core.Tx, key uint64) (V, bool) {
	tx.OpStart()
	r := s.search(tx, key)
	if r.found {
		tx.AddToReadSet(r.currW)
		return r.curr.val, true
	}
	tx.AddToReadSet(r.predW)
	var zero V
	return zero, false
}

// Contains reports presence with the same evidence as Get.
func (s *List[V]) Contains(tx *core.Tx, key uint64) bool {
	_, ok := s.Get(tx, key)
	return ok
}

// Put binds key to val, inserting or replacing; returns the prior value if
// any. One linearizing CAS on the level-0 list in either path.
func (s *List[V]) Put(tx *core.Tx, key uint64, val V) (V, bool) {
	tx.OpStart()
	n := &node[V]{key: key, val: val, level: randomLevel()}
	n.next = make([]core.CASObj[ref[V]], n.level)
	for {
		r := s.search(tx, key)
		if r.found {
			victim, next := r.curr, r.next
			n.next[0].Init(ref[V]{next, false})
			if victim.next[0].NbtcCAS(tx, ref[V]{next, false}, ref[V]{n, true}, true, true) {
				// victim is GC-reclaimed, not pooled: its tower may stay
				// index-linked past any grace period (see the node audit
				// note above).
				tx.Defer(func() { s.finishReplace(victim, n, key) })
				return victim.val, true
			}
		} else {
			n.next[0].Init(ref[V]{r.curr, false})
			if r.pred.next[0].NbtcCAS(tx, ref[V]{r.curr, false}, ref[V]{n, false}, true, true) {
				tx.Defer(func() { s.buildTower(n, key) })
				var zero V
				return zero, false
			}
		}
	}
}

// Insert adds key only if absent; a failed insert is a read-only outcome.
func (s *List[V]) Insert(tx *core.Tx, key uint64, val V) bool {
	tx.OpStart()
	n := &node[V]{key: key, val: val, level: randomLevel()}
	n.next = make([]core.CASObj[ref[V]], n.level)
	for {
		r := s.search(tx, key)
		if r.found {
			tx.AddToReadSet(r.currW)
			return false
		}
		n.next[0].Init(ref[V]{r.curr, false})
		if r.pred.next[0].NbtcCAS(tx, ref[V]{r.curr, false}, ref[V]{n, false}, true, true) {
			tx.Defer(func() { s.buildTower(n, key) })
			return true
		}
	}
}

// Remove deletes key; the linearization point is the marking CAS on the
// victim's level-0 link.
func (s *List[V]) Remove(tx *core.Tx, key uint64) (V, bool) {
	tx.OpStart()
	for {
		r := s.search(tx, key)
		if !r.found {
			tx.AddToReadSet(r.predW)
			var zero V
			return zero, false
		}
		victim, next := r.curr, r.next
		if victim.next[0].NbtcCAS(tx, ref[V]{next, false}, ref[V]{next, true}, true, true) {
			// victim is GC-reclaimed, not pooled (see the node audit note).
			tx.Defer(func() { s.finishRemove(victim, key) })
			return victim.val, true
		}
	}
}

// finishRemove is post-commit cleanup: flag the tower dead and repair the
// index and level-0 list by re-searching.
func (s *List[V]) finishRemove(victim *node[V], key uint64) {
	victim.dead.Store(true)
	s.search(nil, key)
}

// finishReplace is post-commit cleanup for the update path: retire the old
// tower and raise the replacement's.
func (s *List[V]) finishReplace(victim, n *node[V], key uint64) {
	victim.dead.Store(true)
	s.search(nil, key) // unlink victim at level 0 and in the index
	s.buildTower(n, key)
}

// buildTower links a committed node into index levels 1..level-1. Purely
// performance work: a failure at any level simply leaves a shorter tower.
func (s *List[V]) buildTower(n *node[V], key uint64) {
	for l := 1; l < n.level; l++ {
		for attempt := 0; attempt < 4; attempt++ {
			if n.dead.Load() {
				return
			}
			pred, succ := s.indexPosition(l, key, n)
			if pred == nil {
				return
			}
			n.next[l].Store(ref[V]{succ, false})
			if pred.next[l].CAS(ref[V]{succ, false}, ref[V]{n, false}) {
				break
			}
		}
	}
}

// indexPosition finds (pred, succ) for key at index level l, skipping dead
// towers and the node being linked. Returns pred == nil if the position is
// unavailable: the node is already linked, or a node with the SAME key
// occupies the position. The same-key refusal is load-bearing: it keeps
// every index link strictly key-increasing, so no cycle can ever form even
// when the tower builds of a replaced node and its replacement race (a
// same-key back-link between the two would otherwise wedge search forever).
func (s *List[V]) indexPosition(l int, key uint64, self *node[V]) (*node[V], *node[V]) {
	pred := s.head
	for lvl := MaxLevel - 1; lvl >= l; lvl-- {
		for {
			cr := pred.next[lvl].Load()
			curr := cr.node
			if curr == nil || curr == self || curr.key >= key {
				break
			}
			pred = curr
		}
	}
	cr := pred.next[l].Load()
	if cr.node == self {
		return nil, nil // already linked at this level
	}
	if cr.node != nil && cr.node.key == key {
		return nil, nil // a same-key replace chain holds this position
	}
	return pred, cr.node
}

// Len counts unmarked level-0 nodes; not linearizable, for tests.
func (s *List[V]) Len() int {
	n := 0
	cr := s.head.next[0].Load()
	for c := cr.node; c != nil; {
		nr := c.next[0].Load()
		if !nr.mark {
			n++
		}
		c = nr.node
	}
	return n
}

// Range iterates a non-linearizable ascending snapshot; for tests.
func (s *List[V]) Range(fn func(key uint64, val V) bool) {
	cr := s.head.next[0].Load()
	for c := cr.node; c != nil; {
		nr := c.next[0].Load()
		if !nr.mark {
			if !fn(c.key, c.val) {
				return
			}
		}
		c = nr.node
	}
}
