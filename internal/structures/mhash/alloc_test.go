package mhash

import (
	"testing"

	"medley/internal/core"
	"medley/internal/ebr"
)

// pooledMap builds a pooling-enabled map with one registered worker whose
// EBR grace periods are as short as possible, then churns it until the
// recycling economy is warm (cells and nodes for the working set have been
// minted, retired, and recycled at least once).
func pooledMap(t testing.TB) (*Map[uint64], *core.Tx, *ebr.Handle) {
	t.Helper()
	mgr := core.NewTxManager()
	mgr.EnablePooling()
	dom := ebr.New(1)
	m := NewMap[uint64](mgr, 1<<8)
	tx := mgr.Register()
	h := dom.Register()
	tx.SetSMR(h)
	for i := 0; i < 4000; i++ {
		k := uint64(i % 64)
		h.Enter()
		_ = tx.RunRetry(func() error {
			m.Put(tx, k, k)
			if i%3 == 0 {
				m.Remove(tx, k)
			}
			return nil
		})
		h.Exit()
	}
	return m, tx, h
}

// TestAllocsPerOpGet pins the steady-state allocation cost of the
// transactional Get hot path at zero: a read-only transaction reuses its
// read-set array, its publishedReads shell, and every witness is a plain
// struct — nothing escapes.
func TestAllocsPerOpGet(t *testing.T) {
	m, tx, h := pooledMap(t)
	allocs := testing.AllocsPerRun(500, func() {
		h.Enter()
		_ = tx.RunRetry(func() error {
			m.Get(tx, 7)
			m.Get(tx, 13)
			return nil
		})
		h.Exit()
	})
	if allocs > 0.1 {
		t.Fatalf("Get transaction allocates %.2f objects/run, want 0", allocs)
	}
}

// TestAllocsPerOpPut pins the steady-state cost of the update hot path:
// node, link cell, descriptor cell, commit cell and deferred unlink all
// come from the Tx's arenas once warm.
func TestAllocsPerOpPut(t *testing.T) {
	m, tx, h := pooledMap(t)
	i := uint64(0)
	allocs := testing.AllocsPerRun(500, func() {
		i++
		h.Enter()
		_ = tx.RunRetry(func() error {
			m.Put(tx, i%64, i)
			return nil
		})
		h.Exit()
	})
	// The EBR limbo population breathes with epoch parity, so an
	// occasional slice growth is tolerated; steady state must stay well
	// under one object per transaction.
	if allocs > 0.5 {
		t.Fatalf("Put transaction allocates %.2f objects/run, want ~0", allocs)
	}
}

// TestAllocsPerOpTransfer pins the composed read-modify-write transaction
// (the paper's bank transfer): two witnessed Gets plus two Puts.
func TestAllocsPerOpTransfer(t *testing.T) {
	m, tx, h := pooledMap(t)
	i := uint64(0)
	allocs := testing.AllocsPerRun(500, func() {
		i++
		from, to := i%64, (i+7)%64
		h.Enter()
		_ = tx.RunRetry(func() error {
			vf, _ := m.Get(tx, from)
			vt, _ := m.Get(tx, to)
			m.Put(tx, from, vf-1)
			m.Put(tx, to, vt+1)
			return nil
		})
		h.Exit()
	})
	if allocs > 1.0 {
		t.Fatalf("transfer transaction allocates %.2f objects/run, want ~0", allocs)
	}
}

// TestAllocsPerOpGetUnpooled pins the read-only hot path at zero
// allocations with pooling OFF: a read-only fast-path commit never
// publishes its read set, so the backing array is reused in place and no
// publishedReads shell is ever minted — the recycling arenas have nothing
// left to remove from this path.
func TestAllocsPerOpGetUnpooled(t *testing.T) {
	mgr := core.NewTxManager() // pooling off
	m := NewMap[uint64](mgr, 1<<8)
	tx := mgr.Register()
	for i := uint64(0); i < 64; i++ {
		m.Put(tx, i, i)
	}
	body := func() error {
		m.Get(tx, 7)
		m.Get(tx, 13)
		return nil
	}
	for i := 0; i < 8; i++ {
		if err := tx.RunRetry(body); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		_ = tx.RunRetry(body)
	})
	if allocs != 0 {
		t.Fatalf("warm unpooled Get transaction allocates %.2f objects/run, want 0", allocs)
	}
}

// TestAllocsBaselineNonZero keeps the comparison honest: the same Put
// workload without pooling allocates on every transaction, which is what
// the arenas remove.
func TestAllocsBaselineNonZero(t *testing.T) {
	mgr := core.NewTxManager() // pooling off
	m := NewMap[uint64](mgr, 1<<8)
	tx := mgr.Register()
	for i := uint64(0); i < 256; i++ {
		m.Put(tx, i%64, i)
	}
	i := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		i++
		_ = tx.RunRetry(func() error {
			m.Put(tx, i%64, i)
			return nil
		})
	})
	if allocs < 3 {
		t.Fatalf("unpooled Put allocates %.2f objects/run; expected the heap-allocating baseline (did pooling become the default?)", allocs)
	}
}
