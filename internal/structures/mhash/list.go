// Package mhash implements Michael's lock-free list-based set and chained
// hash table (SPAA 2002), NBTC-transformed per Figure 2 of the Medley paper
// so that operations compose into Medley transactions.
//
// Keys are uint64 (the paper's microbenchmarks use 8-byte integer keys and
// values); values are generic. A put on an existing key replaces the node —
// marking the victim's next pointer with the replacement spliced behind it
// in a single linearizing CAS, exactly as in the paper's Figure 2.
package mhash

import (
	"medley/internal/core"
)

// ref is the content of a list link: a successor pointer plus Michael's
// logical-deletion mark. Packing both into one CASObj value preserves the
// algorithm's key property that a marked node's link can no longer change
// (every CAS expects mark == false).
type ref[V any] struct {
	node *node[V]
	mark bool
}

// node is a list cell. key and val are immutable after insertion; updates
// replace the node.
//
// Nodes are pool-recycled under core pooling: a node is retired (into the
// unlinking Tx's NodePool) at its successful physical unlink — never at the
// logical delete — so a recycled node is unreachable from the list, and any
// thread still holding it from an earlier traversal is covered by the EBR
// grace period. resetNode runs post-grace and clears the value and the
// embedded link cell (generation-bumped) so stale witnesses can never
// validate against a reused node.
type node[V any] struct {
	key  uint64
	val  V
	next core.CASObj[ref[V]]
}

// ResetForReuse implements core.Resettable: runs post-grace when the node
// is recycled.
func (n *node[V]) ResetForReuse() {
	var zero V
	n.key = 0
	n.val = zero
	core.ResetSlot(&n.next)
}

// pool returns tx's node pool for this element type (nil when pooling is
// off; every NodePool method is nil-receiver safe).
func pool[V any](tx *core.Tx) *core.NodePool[node[V]] {
	return core.PoolOf[node[V]](tx)
}

// newNode sources a node, recycling when possible. The link cell is
// (re)initialized via InitTx, which reuses a resident recycled cell in
// place with a bumped generation.
func newNode[V any](tx *core.Tx, key uint64, val V, next ref[V]) *node[V] {
	n := pool[V](tx).Get()
	if n == nil {
		n = &node[V]{}
	}
	n.key = key
	n.val = val
	n.next.InitTx(tx, next)
	return n
}

// List is one NBTC-transformed Michael list (a sorted set keyed by uint64).
// It is the building block of Map and is usable on its own.
type List[V any] struct {
	head core.CASObj[ref[V]]
	mgr  *core.TxManager
}

// NewList creates an empty list attached to mgr.
func NewList[V any](mgr *core.TxManager) *List[V] {
	return &List[V]{mgr: mgr}
}

// Manager returns the TxManager this list participates in.
func (l *List[V]) Manager() *core.TxManager { return l.mgr }

// findResult carries the postcondition of find: prev is the link whose
// value is {curr, unmarked}; curr is the first node with key >= the search
// key (nil at end of list); next is curr's observed successor. prevWitness
// and currWitness are the read evidence for the loads of prev and
// curr.next respectively.
type findResult[V any] struct {
	prev        *core.CASObj[ref[V]]
	curr        *node[V]
	next        *node[V]
	found       bool
	prevWitness core.ReadWitness
	currWitness core.ReadWitness
}

// find locates key from the list head, unlinking marked nodes it passes
// (Michael's helping). Unlinks go through NbtcCAS with no lin/pub flags:
// outside a speculation interval they execute immediately as in the
// original algorithm; inside one (i.e., after this transaction has seen its
// own speculative value) they are treated as critical, which is the
// conservative instrumentation the paper describes.
func (l *List[V]) find(tx *core.Tx, key uint64) findResult[V] {
retry:
	for {
		prev := &l.head
		cr, prevW := prev.NbtcLoad(tx)
		curr := cr.node
		for {
			if curr == nil {
				return findResult[V]{prev: prev, prevWitness: prevW}
			}
			nr, currW := curr.next.NbtcLoad(tx)
			if nr.mark {
				// curr is logically deleted; unlink it. The successor nr.node
				// may be a replacement node carrying the same key. The
				// unlinking thread retires the node: commit-gated inside a
				// transaction (a critical unlink takes effect only then),
				// straight to EBR limbo outside one.
				if !prev.NbtcCAS(tx, ref[V]{curr, false}, ref[V]{nr.node, false}, false, false) {
					continue retry
				}
				pool[V](tx).Retire(curr)
				curr = nr.node
				continue
			}
			if curr.key >= key {
				return findResult[V]{
					prev: prev, curr: curr, next: nr.node,
					found:       curr.key == key,
					prevWitness: prevW, currWitness: currW,
				}
			}
			prev = &curr.next
			prevW = currW
			curr = nr.node
		}
	}
}

// Get returns the value bound to key. Its linearizing load is the load of
// curr.next when the key is present (the word a committed replace or remove
// must change) and the load of prev when absent (the word an insert into
// the gap must change); the corresponding witness joins the read set.
func (l *List[V]) Get(tx *core.Tx, key uint64) (V, bool) {
	tx.OpStart()
	r := l.find(tx, key)
	if r.found {
		tx.AddToReadSet(r.currWitness)
		return r.curr.val, true
	}
	tx.AddToReadSet(r.prevWitness)
	var zero V
	return zero, false
}

// Contains reports whether key is present, with the same read evidence as
// Get.
func (l *List[V]) Contains(tx *core.Tx, key uint64) bool {
	_, ok := l.Get(tx, key)
	return ok
}

// Put binds key to val, inserting or replacing. It returns the previous
// value, if any. The linearization point is a single CAS in both paths:
// marking the victim's next with the replacement spliced in (update), or
// linking the new node (insert).
func (l *List[V]) Put(tx *core.Tx, key uint64, val V) (V, bool) {
	tx.OpStart()
	var nn *node[V]
	for {
		r := l.find(tx, key)
		if r.found {
			curr, next, prev := r.curr, r.next, r.prev
			nn = reuseNode(tx, nn, key, val, ref[V]{next, false})
			if curr.next.NbtcCAS(tx, ref[V]{next, false}, ref[V]{nn, true}, true, true) {
				// Unlink (and retire) the replaced node post-commit; if the
				// unlink CAS fails, a later find unlinks and retires it on
				// our behalf.
				core.DeferCASRetire(tx, prev, ref[V]{curr, false}, ref[V]{nn, false}, pool[V](tx), curr)
				return curr.val, true
			}
		} else {
			nn = reuseNode(tx, nn, key, val, ref[V]{r.curr, false})
			if r.prev.NbtcCAS(tx, ref[V]{r.curr, false}, ref[V]{nn, false}, true, true) {
				var zero V
				return zero, false
			}
		}
	}
}

// reuseNode initializes (or re-targets, on a retried attempt) the
// operation's private not-yet-published node.
func reuseNode[V any](tx *core.Tx, n *node[V], key uint64, val V, next ref[V]) *node[V] {
	if n == nil {
		return newNode(tx, key, val, next)
	}
	n.next.InitTx(tx, next)
	return n
}

// Insert adds key only if absent, returning false when the key already
// exists. A failed insert is a read-only outcome whose evidence is the
// observation of the existing node.
func (l *List[V]) Insert(tx *core.Tx, key uint64, val V) bool {
	tx.OpStart()
	var nn *node[V]
	for {
		r := l.find(tx, key)
		if r.found {
			tx.AddToReadSet(r.currWitness)
			if nn != nil {
				pool[V](tx).Put(nn) // never published: immediate reuse
			}
			return false
		}
		nn = reuseNode(tx, nn, key, val, ref[V]{r.curr, false})
		if r.prev.NbtcCAS(tx, ref[V]{r.curr, false}, ref[V]{nn, false}, true, true) {
			return true
		}
	}
}

// Remove deletes key, returning the removed value. A failed remove (key
// absent) is a read-only outcome witnessed on prev. The linearization point
// of a successful remove is the marking CAS on curr.next.
func (l *List[V]) Remove(tx *core.Tx, key uint64) (V, bool) {
	tx.OpStart()
	for {
		r := l.find(tx, key)
		if !r.found {
			tx.AddToReadSet(r.prevWitness)
			var zero V
			return zero, false
		}
		curr, next, prev := r.curr, r.next, r.prev
		if curr.next.NbtcCAS(tx, ref[V]{next, false}, ref[V]{next, true}, true, true) {
			core.DeferCASRetire(tx, prev, ref[V]{curr, false}, ref[V]{next, false}, pool[V](tx), curr)
			return curr.val, true
		}
	}
}

// Len counts unmarked nodes; it is not linearizable and is intended for
// tests and diagnostics.
func (l *List[V]) Len() int {
	n := 0
	cr := l.head.Load()
	for c := cr.node; c != nil; {
		nr := c.next.Load()
		if !nr.mark {
			n++
		}
		c = nr.node
	}
	return n
}

// Range invokes fn over a non-linearizable snapshot of unmarked nodes in
// ascending key order, stopping if fn returns false. For tests and
// diagnostics.
func (l *List[V]) Range(fn func(key uint64, val V) bool) {
	cr := l.head.Load()
	for c := cr.node; c != nil; {
		nr := c.next.Load()
		if !nr.mark {
			if !fn(c.key, c.val) {
				return
			}
		}
		c = nr.node
	}
}
