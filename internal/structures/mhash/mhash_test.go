package mhash

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"medley/internal/core"
)

func TestListSequentialBasics(t *testing.T) {
	mgr := core.NewTxManager()
	l := NewList[string](mgr)
	if _, ok := l.Get(nil, 5); ok {
		t.Fatal("empty list Get found something")
	}
	if _, replaced := l.Put(nil, 5, "five"); replaced {
		t.Fatal("Put into empty list reported replace")
	}
	if v, ok := l.Get(nil, 5); !ok || v != "five" {
		t.Fatalf("Get(5) = %q,%v", v, ok)
	}
	if old, replaced := l.Put(nil, 5, "FIVE"); !replaced || old != "five" {
		t.Fatalf("replace = %q,%v", old, replaced)
	}
	if v, _ := l.Get(nil, 5); v != "FIVE" {
		t.Fatalf("Get after replace = %q", v)
	}
	if !l.Insert(nil, 3, "three") {
		t.Fatal("Insert(3) failed")
	}
	if l.Insert(nil, 3, "x") {
		t.Fatal("duplicate Insert succeeded")
	}
	if v, ok := l.Remove(nil, 3); !ok || v != "three" {
		t.Fatalf("Remove(3) = %q,%v", v, ok)
	}
	if _, ok := l.Remove(nil, 3); ok {
		t.Fatal("double Remove succeeded")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestListSortedOrder(t *testing.T) {
	mgr := core.NewTxManager()
	l := NewList[int](mgr)
	for _, k := range []uint64{9, 1, 7, 3, 5} {
		l.Put(nil, k, int(k))
	}
	var keys []uint64
	l.Range(func(k uint64, v int) bool { keys = append(keys, k); return true })
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order: %v", keys)
		}
	}
}

func TestMapSequentialVsReference(t *testing.T) {
	mgr := core.NewTxManager()
	m := NewMap[uint64](mgr, 64)
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(200))
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			_, repl := m.Put(nil, k, v)
			_, had := ref[k]
			if repl != had {
				t.Fatalf("Put(%d) replaced=%v want %v", k, repl, had)
			}
			ref[k] = v
		case 1:
			v, ok := m.Remove(nil, k)
			rv, had := ref[k]
			if ok != had || (ok && v != rv) {
				t.Fatalf("Remove(%d) = %d,%v want %d,%v", k, v, ok, rv, had)
			}
			delete(ref, k)
		default:
			v, ok := m.Get(nil, k)
			rv, had := ref[k]
			if ok != had || (ok && v != rv) {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", k, v, ok, rv, had)
			}
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
}

func TestQuickMapMatchesReference(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint16
	}
	f := func(ops []op) bool {
		mgr := core.NewTxManager()
		m := NewMap[uint16](mgr, 16)
		ref := map[uint64]uint16{}
		for _, o := range ops {
			k := uint64(o.Key % 32)
			switch o.Kind % 4 {
			case 0:
				m.Put(nil, k, o.Val)
				ref[k] = o.Val
			case 1:
				m.Remove(nil, k)
				delete(ref, k)
			case 2:
				if m.Insert(nil, k, o.Val) {
					if _, had := ref[k]; had {
						return false
					}
					ref[k] = o.Val
				} else if _, had := ref[k]; !had {
					return false
				}
			default:
				v, ok := m.Get(nil, k)
				rv, had := ref[k]
				if ok != had || (ok && v != rv) {
					return false
				}
			}
		}
		return m.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionalTransferAcrossTables(t *testing.T) {
	// The paper's Figure 3: move v from account a1 in ht1 to a2 in ht2.
	mgr := core.NewTxManager()
	ht1 := NewMap[int](mgr, 128)
	ht2 := NewMap[int](mgr, 128)
	tx := mgr.Register()
	ht1.Put(nil, 1, 100)

	transfer := func(v int, a1, a2 uint64) error {
		return tx.Run(func() error {
			v1, ok := ht1.Get(tx, a1)
			if !ok || v1 < v {
				tx.Abort()
			}
			v2, _ := ht2.Get(tx, a2)
			ht1.Put(tx, a1, v1-v)
			ht2.Put(tx, a2, v+v2)
			return nil
		})
	}
	if err := transfer(30, 1, 2); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if v, _ := ht1.Get(nil, 1); v != 70 {
		t.Fatalf("ht1[1] = %d, want 70", v)
	}
	if v, _ := ht2.Get(nil, 2); v != 30 {
		t.Fatalf("ht2[2] = %d, want 30", v)
	}
	// Insufficient funds must abort without any effect.
	err := transfer(1000, 1, 2)
	if !errors.Is(err, core.ErrTxAborted) {
		t.Fatalf("overdraft transfer = %v, want abort", err)
	}
	if v, _ := ht1.Get(nil, 1); v != 70 {
		t.Fatalf("ht1[1] after abort = %d, want 70", v)
	}
}

func TestTxGetPutSameKeySameTable(t *testing.T) {
	// get(k) then put(k) in one transaction: the read-then-write-same-slot
	// path of MCNS validation.
	mgr := core.NewTxManager()
	m := NewMap[int](mgr, 64)
	tx := mgr.Register()
	m.Put(nil, 7, 1)
	err := tx.Run(func() error {
		v, ok := m.Get(tx, 7)
		if !ok {
			t.Fatal("Get(7) missing")
		}
		m.Put(tx, 7, v+10)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v, _ := m.Get(nil, 7); v != 11 {
		t.Fatalf("m[7] = %d, want 11", v)
	}
}

func TestTxInsertThenGetOwnInsert(t *testing.T) {
	mgr := core.NewTxManager()
	m := NewMap[int](mgr, 64)
	tx := mgr.Register()
	err := tx.Run(func() error {
		if !m.Insert(tx, 4, 44) {
			t.Fatal("Insert failed")
		}
		v, ok := m.Get(tx, 4)
		if !ok || v != 44 {
			t.Fatalf("tx must see own insert: %d,%v", v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v, ok := m.Get(nil, 4); !ok || v != 44 {
		t.Fatalf("committed insert invisible: %d,%v", v, ok)
	}
}

func TestSpeculativeInsertInvisibleAndContentionManaged(t *testing.T) {
	// A non-transactional observer that touches a speculative insert never
	// sees the value; eager contention management aborts the InPrep
	// transaction instead.
	mgr := core.NewTxManager()
	m := NewMap[int](mgr, 64)
	tx := mgr.Register()
	err := tx.Run(func() error {
		if !m.Insert(tx, 4, 44) {
			t.Fatal("Insert failed")
		}
		if _, visible := m.Get(nil, 4); visible {
			t.Fatal("speculative insert returned to a non-transactional reader")
		}
		return nil
	})
	if !errors.Is(err, core.ErrTxAborted) {
		t.Fatalf("Run = %v, want ErrTxAborted (observer aborted us)", err)
	}
	if _, ok := m.Get(nil, 4); ok {
		t.Fatal("aborted speculative insert leaked")
	}
}

func TestTxRemoveThenInsertSameKey(t *testing.T) {
	mgr := core.NewTxManager()
	m := NewMap[int](mgr, 64)
	tx := mgr.Register()
	m.Put(nil, 9, 90)
	err := tx.Run(func() error {
		if _, ok := m.Remove(tx, 9); !ok {
			t.Fatal("Remove failed")
		}
		if _, ok := m.Get(tx, 9); ok {
			t.Fatal("tx sees key it removed")
		}
		if !m.Insert(tx, 9, 91) {
			t.Fatal("re-insert after own remove failed")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v, ok := m.Get(nil, 9); !ok || v != 91 {
		t.Fatalf("m[9] = %d,%v want 91,true", v, ok)
	}
}

func TestAbortedTxLeavesNoTrace(t *testing.T) {
	mgr := core.NewTxManager()
	m := NewMap[int](mgr, 64)
	tx := mgr.Register()
	m.Put(nil, 1, 10)
	m.Put(nil, 2, 20)
	_ = tx.Run(func() error {
		m.Put(tx, 1, 11)
		m.Remove(tx, 2)
		m.Insert(tx, 3, 30)
		tx.Abort()
		return nil
	})
	if v, _ := m.Get(nil, 1); v != 10 {
		t.Fatalf("m[1] = %d, want 10", v)
	}
	if v, ok := m.Get(nil, 2); !ok || v != 20 {
		t.Fatalf("m[2] = %d,%v want 20,true", v, ok)
	}
	if _, ok := m.Get(nil, 3); ok {
		t.Fatal("aborted insert leaked")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	mgr := core.NewTxManager()
	m := NewMap[uint64](mgr, 256)
	const goroutines = 6
	iters := 3000
	if testing.Short() {
		iters = 500
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := uint64(rng.Intn(128))
				switch rng.Intn(3) {
				case 0:
					m.Put(nil, k, k*2)
				case 1:
					m.Remove(nil, k)
				default:
					if v, ok := m.Get(nil, k); ok && v != k*2 {
						t.Errorf("Get(%d) = %d, want %d", k, v, k*2)
					}
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
}

func TestConcurrentTransactionalConservation(t *testing.T) {
	// Bank accounts in a hash table; concurrent transactional transfers
	// must conserve the total.
	mgr := core.NewTxManager()
	m := NewMap[int](mgr, 256)
	const nAccounts = 24
	const initial = 500
	for k := uint64(0); k < nAccounts; k++ {
		m.Put(nil, k, initial)
	}
	const goroutines = 6
	iters := 1000
	if testing.Short() {
		iters = 200
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				a := uint64(rng.Intn(nAccounts))
				b := uint64(rng.Intn(nAccounts))
				if a == b {
					continue
				}
				amt := rng.Intn(20) + 1
				_ = tx.RunRetry(func() error {
					va, ok := m.Get(tx, a)
					if !ok || va < amt {
						return errInsufficient
					}
					vb, _ := m.Get(tx, b)
					m.Put(tx, a, va-amt)
					m.Put(tx, b, vb+amt)
					return nil
				})
			}
		}(int64(g) * 31)
	}
	wg.Wait()
	total := 0
	for k := uint64(0); k < nAccounts; k++ {
		v, ok := m.Get(nil, k)
		if !ok {
			t.Fatalf("account %d disappeared", k)
		}
		if v < 0 {
			t.Fatalf("account %d negative: %d", k, v)
		}
		total += v
	}
	if total != nAccounts*initial {
		t.Fatalf("total = %d, want %d", total, nAccounts*initial)
	}
}

func TestConcurrentInsertRemoveDisjointTx(t *testing.T) {
	// Each goroutine owns a disjoint key range and repeatedly inserts and
	// removes transactionally; final state must be exactly the inserted
	// residue.
	mgr := core.NewTxManager()
	m := NewMap[int](mgr, 512)
	const goroutines = 4
	const keysPer = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			tx := mgr.Register()
			for k := base; k < base+keysPer; k++ {
				key := k
				_ = tx.RunRetry(func() error {
					m.Insert(tx, key, int(key))
					return nil
				})
				if key%2 == 0 {
					_ = tx.RunRetry(func() error {
						m.Remove(tx, key)
						return nil
					})
				}
			}
		}(uint64(g) * 1000)
	}
	wg.Wait()
	want := goroutines * keysPer / 2
	if m.Len() != want {
		t.Fatalf("Len = %d, want %d", m.Len(), want)
	}
	m.Range(func(k uint64, v int) bool {
		if k%2 == 0 {
			t.Errorf("even key %d survived", k)
		}
		return true
	})
}
