package mhash

import (
	"math/rand"
	"sync"
	"testing"

	"medley/internal/core"
	"medley/internal/ebr"
)

// TestRecycleStressMap hammers node and cell recycling through the full
// map API on a hot key range: inserts, replaces and removes churn every
// node through unlink → limbo → pool → reuse continuously. The value
// discipline (val == key+tag) turns any stale read or mis-recycled node
// into a detectable corruption, and -race catches reuse before grace.
func TestRecycleStressMap(t *testing.T) {
	const keys = 64
	const goroutines = 8
	const tag = uint64(1) << 32
	iters := 3000
	if testing.Short() {
		iters = 600
	}

	mgr := core.NewTxManager()
	mgr.EnablePooling()
	dom := ebr.New(4)
	m := NewMap[uint64](mgr, 1<<6) // few buckets: long chains, hot unlinks

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			h := dom.Register()
			tx.SetSMR(h)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := uint64(rng.Intn(keys))
				h.Enter()
				_ = tx.RunRetry(func() error {
					switch rng.Intn(4) {
					case 0:
						m.Put(tx, k, k|tag)
					case 1:
						m.Insert(tx, k, k|tag)
					case 2:
						m.Remove(tx, k)
					default:
						if v, ok := m.Get(tx, k); ok && v != k|tag {
							t.Errorf("key %d read corrupt value %#x", k, v)
						}
					}
					return nil
				})
				h.Exit()
			}
		}(int64(g)*104729 + 3)
	}
	wg.Wait()

	// Quiescent sweep: every surviving entry must carry its own tag.
	m.Range(func(k, v uint64) bool {
		if v != k|tag {
			t.Errorf("key %d holds corrupt value %#x after churn", k, v)
		}
		return true
	})
	st := mgr.Stats()
	if st.PoolRetires == 0 || st.PoolHits == 0 {
		t.Fatalf("recycling never engaged: %+v", st)
	}
}
