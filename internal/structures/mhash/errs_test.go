package mhash

import "errors"

// errInsufficient is a business-rule failure: returned from a transaction
// body so Run aborts the transaction but RunRetry does not retry it.
var errInsufficient = errors.New("insufficient funds")
