package mhash

import (
	"medley/internal/core"
)

// Map is Michael's chained hash table: a fixed array of NBTC-transformed
// lock-free lists. The paper's microbenchmark uses 1M buckets for a 1M key
// space; the bucket count is fixed at construction, as in the original.
type Map[V any] struct {
	buckets []List[V]
	mask    uint64
	mgr     *core.TxManager
}

// NewMap creates a table with at least nBuckets buckets (rounded up to a
// power of two), attached to mgr.
func NewMap[V any](mgr *core.TxManager, nBuckets int) *Map[V] {
	n := 1
	for n < nBuckets {
		n <<= 1
	}
	m := &Map[V]{buckets: make([]List[V], n), mask: uint64(n - 1), mgr: mgr}
	for i := range m.buckets {
		m.buckets[i].mgr = mgr
	}
	return m
}

// Manager returns the TxManager this map participates in.
func (m *Map[V]) Manager() *core.TxManager { return m.mgr }

// hash is Fibonacci hashing on the 64-bit key; keys in the benchmarks are
// dense small integers, which this spreads well across buckets.
func (m *Map[V]) hash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 32 & m.mask
}

func (m *Map[V]) bucket(key uint64) *List[V] {
	return &m.buckets[m.hash(key)]
}

// Get returns the value bound to key.
func (m *Map[V]) Get(tx *core.Tx, key uint64) (V, bool) {
	return m.bucket(key).Get(tx, key)
}

// Contains reports whether key is present.
func (m *Map[V]) Contains(tx *core.Tx, key uint64) bool {
	return m.bucket(key).Contains(tx, key)
}

// Put binds key to val, returning the previous value if the key existed.
func (m *Map[V]) Put(tx *core.Tx, key uint64, val V) (V, bool) {
	return m.bucket(key).Put(tx, key, val)
}

// Insert adds key only if absent.
func (m *Map[V]) Insert(tx *core.Tx, key uint64, val V) bool {
	return m.bucket(key).Insert(tx, key, val)
}

// Remove deletes key, returning the removed value.
func (m *Map[V]) Remove(tx *core.Tx, key uint64) (V, bool) {
	return m.bucket(key).Remove(tx, key)
}

// Len counts entries; not linearizable, for tests and diagnostics.
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.buckets {
		n += m.buckets[i].Len()
	}
	return n
}

// Range invokes fn over a non-linearizable snapshot of all entries (bucket
// order, then key order within a bucket), stopping if fn returns false.
func (m *Map[V]) Range(fn func(key uint64, val V) bool) {
	for i := range m.buckets {
		stop := false
		m.buckets[i].Range(func(k uint64, v V) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}
