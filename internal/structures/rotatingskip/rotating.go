// Package rotatingskip implements an NBTC-transformed variant of the
// rotating skiplist of Dick, Fekete and Gramoli (CCPE 2016).
//
// The defining property of the rotating skiplist — and the one that makes
// its NBTC transform trivial once the data level is transformed — is that
// no CAS is ever performed on index levels: all synchronization happens on
// the bottom-level linked list, while the index is maintained by background
// "rotation" work that readers treat purely as a hint. We preserve exactly
// that split: the data level is a Michael-style lock-free sorted list with
// the same immediately identifiable linearization points as mhash, and the
// index is an immutable sorted sample of the list, rebuilt off the critical
// path (amortized by update count, or by an optional background
// maintenance goroutine standing in for the original's wheel rotation).
// Searches binary-search the index for a starting hint and fall back to the
// list head whenever the hint has died.
package rotatingskip

import (
	"sort"
	"sync/atomic"
	"time"

	"medley/internal/core"
)

type ref[V any] struct {
	node *node[V]
	mark bool
}

// node reclamation audit (pooling): rotating-skiplist nodes are
// deliberately NOT pool-recycled. The index is an immutable snapshot
// rebuilt on a timer (or every N updates); between rebuilds it keeps raw
// pointers to nodes that may since have been removed and unlinked, with no
// bound tied to any EBR grace period. Recycling a node would let startFrom
// read a reused node through a stale snapshot entry. Nodes therefore stay
// GC-reclaimed; the *cells* inside node links still recycle safely: a node
// reached via a stale snapshot entry is valid (never-freed) memory, and
// any cell loaded from its link slot is currently installed and thus
// covered by the reader's EBR critical section. Background Maintain
// traversals must hold such a critical section too — see
// StartGuardedMaintenance.
type node[V any] struct {
	key  uint64
	val  V
	next core.CASObj[ref[V]]
}

// indexEntry samples one live node at rebuild time.
type indexEntry[V any] struct {
	key  uint64
	node *node[V]
}

// List is an NBTC-transformed rotating skiplist mapping uint64 keys to V.
type List[V any] struct {
	head core.CASObj[ref[V]]
	mgr  *core.TxManager

	index       atomic.Pointer[[]indexEntry[V]]
	updates     atomic.Uint64 // modifications since last rebuild
	rebuildMask uint64        // rebuild when updates & mask == 0
	sampleEvery int
}

// New creates an empty list attached to mgr. The index is resampled every
// 256 updates, taking every 8th node, mirroring the density of a two-level
// skiplist wheel.
func New[V any](mgr *core.TxManager) *List[V] {
	l := &List[V]{mgr: mgr, rebuildMask: 255, sampleEvery: 8}
	empty := make([]indexEntry[V], 0)
	l.index.Store(&empty)
	return l
}

// Manager returns the TxManager this list participates in.
func (l *List[V]) Manager() *core.TxManager { return l.mgr }

// StartMaintenance launches a background goroutine that rebuilds the index
// every interval, standing in for the rotating skiplist's background wheel
// rotation. The returned stop function terminates it.
func (l *List[V]) StartMaintenance(interval time.Duration) (stop func()) {
	return l.StartGuardedMaintenance(interval, nil)
}

// StartGuardedMaintenance is StartMaintenance with each index rebuild
// wrapped in guard. When the structure's TxManager has cell pooling
// enabled, the rebuild traverses link cells that concurrent transactions
// retire and recycle, so the maintenance goroutine must participate in the
// same EBR domain: pass a guard that brackets the call with an
// ebr.Handle's Enter/Exit (the harness does exactly this). A nil guard
// runs the rebuild bare, which is only safe without pooling — starting
// unguarded maintenance on a pooling-enabled manager panics rather than
// silently racing the recyclers.
func (l *List[V]) StartGuardedMaintenance(interval time.Duration, guard func(func())) (stop func()) {
	if guard == nil && l.mgr != nil && l.mgr.PoolingEnabled() {
		panic("rotatingskip: unguarded maintenance on a pooling-enabled TxManager; use StartGuardedMaintenance with an EBR critical-section guard")
	}
	done := make(chan struct{})
	maintain := l.Maintain
	if guard != nil {
		maintain = func() { guard(l.Maintain) }
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				maintain()
			}
		}
	}()
	return func() { close(done) }
}

// Maintain rebuilds the index snapshot immediately.
func (l *List[V]) Maintain() {
	var idx []indexEntry[V]
	i := 0
	cr := l.head.Load()
	for c := cr.node; c != nil; {
		nr := c.next.Load()
		if !nr.mark {
			if i%l.sampleEvery == 0 {
				idx = append(idx, indexEntry[V]{key: c.key, node: c})
			}
			i++
		}
		c = nr.node
	}
	l.index.Store(&idx)
}

// noteUpdate counts a modification and amortizes index rebuilds.
func (l *List[V]) noteUpdate() {
	if l.updates.Add(1)&l.rebuildMask == 0 {
		l.Maintain()
	}
}

// startFrom picks the index hint: the CASObj to begin the level-0 search
// at. It verifies liveness by loading the hint node's link (through
// NbtcLoad, so a transaction's own speculative links are read rather than
// finalized); a dead hint falls back toward earlier entries and finally the
// head.
func (l *List[V]) startFrom(tx *core.Tx, key uint64) *core.CASObj[ref[V]] {
	idx := *l.index.Load()
	// Largest sampled key strictly below key (strictly, so the hint node
	// itself may be unlinked without hiding key).
	i := sort.Search(len(idx), func(i int) bool { return idx[i].key >= key })
	for i--; i >= 0; i-- {
		n := idx[i].node
		if r, _ := n.next.NbtcLoad(tx); !r.mark {
			return &n.next
		}
	}
	return &l.head
}

type findResult[V any] struct {
	prev  *core.CASObj[ref[V]]
	curr  *node[V]
	next  *node[V]
	found bool
	prevW core.ReadWitness
	currW core.ReadWitness
}

// find runs the Michael-style mark-aware search from the index hint.
func (l *List[V]) find(tx *core.Tx, key uint64) findResult[V] {
	start := l.startFrom(tx, key)
retry:
	for {
		prev := start
		cr, prevW := prev.NbtcLoad(tx)
		if cr.mark {
			// The hint died between selection and load; restart from head.
			start = &l.head
			continue retry
		}
		curr := cr.node
		for {
			if curr == nil {
				return findResult[V]{prev: prev, prevW: prevW}
			}
			nr, currW := curr.next.NbtcLoad(tx)
			if nr.mark {
				if !prev.NbtcCAS(tx, ref[V]{curr, false}, ref[V]{nr.node, false}, false, false) {
					continue retry
				}
				curr = nr.node
				continue
			}
			if curr.key >= key {
				return findResult[V]{
					prev: prev, curr: curr, next: nr.node,
					found: curr.key == key,
					prevW: prevW, currW: currW,
				}
			}
			prev = &curr.next
			prevW = currW
			curr = nr.node
		}
	}
}

// Get returns the value bound to key (witness discipline as in mhash).
func (l *List[V]) Get(tx *core.Tx, key uint64) (V, bool) {
	tx.OpStart()
	r := l.find(tx, key)
	if r.found {
		tx.AddToReadSet(r.currW)
		return r.curr.val, true
	}
	tx.AddToReadSet(r.prevW)
	var zero V
	return zero, false
}

// Contains reports presence with the same evidence as Get.
func (l *List[V]) Contains(tx *core.Tx, key uint64) bool {
	_, ok := l.Get(tx, key)
	return ok
}

// Put binds key to val, inserting or replacing.
func (l *List[V]) Put(tx *core.Tx, key uint64, val V) (V, bool) {
	tx.OpStart()
	n := &node[V]{key: key, val: val}
	for {
		r := l.find(tx, key)
		if r.found {
			victim, next, prev := r.curr, r.next, r.prev
			n.next.Init(ref[V]{next, false})
			if victim.next.NbtcCAS(tx, ref[V]{next, false}, ref[V]{n, true}, true, true) {
				// victim is GC-reclaimed, not pooled: the index snapshot may
				// reference it past any grace period (see the node audit
				// note above).
				tx.Defer(func() {
					prev.CAS(ref[V]{victim, false}, ref[V]{n, false})
					l.noteUpdate()
				})
				return victim.val, true
			}
		} else {
			n.next.Init(ref[V]{r.curr, false})
			if r.prev.NbtcCAS(tx, ref[V]{r.curr, false}, ref[V]{n, false}, true, true) {
				tx.Defer(func() { l.noteUpdate() })
				var zero V
				return zero, false
			}
		}
	}
}

// Insert adds key only if absent.
func (l *List[V]) Insert(tx *core.Tx, key uint64, val V) bool {
	tx.OpStart()
	n := &node[V]{key: key, val: val}
	for {
		r := l.find(tx, key)
		if r.found {
			tx.AddToReadSet(r.currW)
			return false
		}
		n.next.Init(ref[V]{r.curr, false})
		if r.prev.NbtcCAS(tx, ref[V]{r.curr, false}, ref[V]{n, false}, true, true) {
			tx.Defer(func() { l.noteUpdate() })
			return true
		}
	}
}

// Remove deletes key.
func (l *List[V]) Remove(tx *core.Tx, key uint64) (V, bool) {
	tx.OpStart()
	for {
		r := l.find(tx, key)
		if !r.found {
			tx.AddToReadSet(r.prevW)
			var zero V
			return zero, false
		}
		victim, next, prev := r.curr, r.next, r.prev
		if victim.next.NbtcCAS(tx, ref[V]{next, false}, ref[V]{next, true}, true, true) {
			// victim is GC-reclaimed, not pooled (see the node audit note).
			tx.Defer(func() {
				prev.CAS(ref[V]{victim, false}, ref[V]{next, false})
				l.noteUpdate()
			})
			return victim.val, true
		}
	}
}

// Len counts unmarked nodes; not linearizable, for tests.
func (l *List[V]) Len() int {
	n := 0
	cr := l.head.Load()
	for c := cr.node; c != nil; {
		nr := c.next.Load()
		if !nr.mark {
			n++
		}
		c = nr.node
	}
	return n
}

// Range iterates a non-linearizable ascending snapshot; for tests.
func (l *List[V]) Range(fn func(key uint64, val V) bool) {
	cr := l.head.Load()
	for c := cr.node; c != nil; {
		nr := c.next.Load()
		if !nr.mark {
			if !fn(c.key, c.val) {
				return
			}
		}
		c = nr.node
	}
}
