package rotatingskip

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"medley/internal/core"
)

func TestSequentialBasics(t *testing.T) {
	mgr := core.NewTxManager()
	l := New[string](mgr)
	if _, ok := l.Get(nil, 5); ok {
		t.Fatal("empty Get found")
	}
	if _, repl := l.Put(nil, 5, "five"); repl {
		t.Fatal("fresh Put replaced")
	}
	if old, repl := l.Put(nil, 5, "FIVE"); !repl || old != "five" {
		t.Fatalf("replace = %q,%v", old, repl)
	}
	if !l.Insert(nil, 3, "three") || l.Insert(nil, 3, "x") {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := l.Remove(nil, 3); !ok || v != "three" {
		t.Fatalf("Remove = %q,%v", v, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestIndexAcceleratedLookups(t *testing.T) {
	mgr := core.NewTxManager()
	l := New[int](mgr)
	for k := uint64(0); k < 4096; k++ {
		l.Put(nil, k, int(k))
	}
	l.Maintain()
	if len(*l.index.Load()) == 0 {
		t.Fatal("index empty after Maintain on large list")
	}
	for k := uint64(0); k < 4096; k += 97 {
		if v, ok := l.Get(nil, k); !ok || v != int(k) {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := l.Get(nil, 5000); ok {
		t.Fatal("phantom key via index")
	}
}

func TestIndexStaysCorrectAfterRemovals(t *testing.T) {
	mgr := core.NewTxManager()
	l := New[int](mgr)
	for k := uint64(0); k < 2000; k++ {
		l.Put(nil, k, int(k))
	}
	l.Maintain()
	// Remove a band including sampled hints, without rebuilding.
	for k := uint64(500); k < 1500; k++ {
		l.Remove(nil, k)
	}
	for k := uint64(0); k < 2000; k++ {
		v, ok := l.Get(nil, k)
		wantOK := k < 500 || k >= 1500
		if ok != wantOK || (ok && v != int(k)) {
			t.Fatalf("Get(%d) = %d,%v want present=%v", k, v, ok, wantOK)
		}
	}
}

func TestBackgroundMaintenance(t *testing.T) {
	mgr := core.NewTxManager()
	l := New[int](mgr)
	stop := l.StartMaintenance(time.Millisecond)
	defer stop()
	for k := uint64(0); k < 3000; k++ {
		l.Put(nil, k, int(k))
	}
	time.Sleep(10 * time.Millisecond)
	if len(*l.index.Load()) == 0 {
		t.Fatal("background maintenance never built an index")
	}
	for k := uint64(0); k < 3000; k += 131 {
		if _, ok := l.Get(nil, k); !ok {
			t.Fatalf("Get(%d) missing with background maintenance", k)
		}
	}
}

func TestQuickVsReference(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint16
	}
	f := func(ops []op) bool {
		mgr := core.NewTxManager()
		l := New[uint16](mgr)
		ref := map[uint64]uint16{}
		for _, o := range ops {
			k := uint64(o.Key % 40)
			switch o.Kind % 4 {
			case 0:
				l.Put(nil, k, o.Val)
				ref[k] = o.Val
			case 1:
				l.Remove(nil, k)
				delete(ref, k)
			case 2:
				ins := l.Insert(nil, k, o.Val)
				if _, had := ref[k]; ins == had {
					return false
				} else if ins {
					ref[k] = o.Val
				}
			default:
				v, ok := l.Get(nil, k)
				rv, had := ref[k]
				if ok != had || (ok && v != rv) {
					return false
				}
			}
		}
		return l.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionalComposition(t *testing.T) {
	mgr := core.NewTxManager()
	l1 := New[int](mgr)
	l2 := New[int](mgr)
	tx := mgr.Register()
	l1.Put(nil, 1, 100)
	err := tx.Run(func() error {
		v, ok := l1.Get(tx, 1)
		if !ok || v < 25 {
			tx.Abort()
		}
		v2, _ := l2.Get(tx, 2)
		l1.Put(tx, 1, v-25)
		l2.Put(tx, 2, v2+25)
		return nil
	})
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if v, _ := l1.Get(nil, 1); v != 75 {
		t.Fatalf("l1[1] = %d", v)
	}
	if v, _ := l2.Get(nil, 2); v != 25 {
		t.Fatalf("l2[2] = %d", v)
	}
	// Abort path.
	_ = tx.Run(func() error {
		l1.Put(tx, 1, 0)
		l2.Remove(tx, 2)
		tx.Abort()
		return nil
	})
	if v, _ := l1.Get(nil, 1); v != 75 {
		t.Fatalf("abort leaked: l1[1] = %d", v)
	}
	if v, _ := l2.Get(nil, 2); v != 25 {
		t.Fatalf("abort leaked: l2[2] = %d", v)
	}
}

func TestStaleReadAborts(t *testing.T) {
	mgr := core.NewTxManager()
	l := New[int](mgr)
	tx := mgr.Register()
	l.Put(nil, 5, 50)
	err := tx.Run(func() error {
		if _, ok := l.Get(tx, 5); !ok {
			t.Fatal("Get missing")
		}
		l.Put(nil, 5, 51)
		return nil
	})
	if !errors.Is(err, core.ErrTxAborted) {
		t.Fatalf("stale read committed: %v", err)
	}
}

func TestConcurrentMixedWithMaintenance(t *testing.T) {
	mgr := core.NewTxManager()
	l := New[uint64](mgr)
	stop := l.StartMaintenance(500 * time.Microsecond)
	defer stop()
	const goroutines = 6
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := uint64(rng.Intn(300))
				switch rng.Intn(3) {
				case 0:
					l.Put(nil, k, k*5)
				case 1:
					l.Remove(nil, k)
				default:
					if v, ok := l.Get(nil, k); ok && v != k*5 {
						t.Errorf("Get(%d) = %d", k, v)
					}
				}
			}
		}(int64(g) + 41)
	}
	wg.Wait()
	var prev uint64
	first := true
	l.Range(func(k uint64, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("order violated after churn")
		}
		prev, first = k, false
		return true
	})
}

func TestConcurrentTransactionalConservation(t *testing.T) {
	mgr := core.NewTxManager()
	l := New[int](mgr)
	stop := l.StartMaintenance(time.Millisecond)
	defer stop()
	const nAccounts = 16
	const initial = 250
	for k := uint64(0); k < nAccounts; k++ {
		l.Put(nil, k, initial)
	}
	const goroutines = 4
	iters := 500
	if testing.Short() {
		iters = 100
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				a := uint64(rng.Intn(nAccounts))
				b := uint64(rng.Intn(nAccounts))
				if a == b {
					continue
				}
				amt := rng.Intn(5) + 1
				_ = tx.RunRetry(func() error {
					va, ok := l.Get(tx, a)
					if !ok || va < amt {
						return errInsufficient
					}
					vb, _ := l.Get(tx, b)
					l.Put(tx, a, va-amt)
					l.Put(tx, b, vb+amt)
					return nil
				})
			}
		}(int64(g)*29 + 11)
	}
	wg.Wait()
	total := 0
	for k := uint64(0); k < nAccounts; k++ {
		v, ok := l.Get(nil, k)
		if !ok || v < 0 {
			t.Fatalf("account %d = %d,%v", k, v, ok)
		}
		total += v
	}
	if total != nAccounts*initial {
		t.Fatalf("total = %d, want %d", total, nAccounts*initial)
	}
}
