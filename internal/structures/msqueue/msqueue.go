// Package msqueue implements the Michael & Scott nonblocking FIFO queue
// (PODC 1996), NBTC-transformed so enqueue and dequeue compose into Medley
// transactions. The queue is the paper's example of an abstraction beyond
// sets and mappings that transactional-transform methodologies (boosting,
// LFTT) cannot easily handle — a single-linked FIFO has no obvious inverse
// operation — but that NBTC supports mechanically.
package msqueue

import (
	"medley/internal/core"
)

type node[V any] struct {
	val  V
	next core.CASObj[*node[V]]
}

// Queue is an NBTC-transformed Michael & Scott queue.
type Queue[V any] struct {
	head core.CASObj[*node[V]] // points at the current dummy
	tail core.CASObj[*node[V]]
	mgr  *core.TxManager
}

// New creates an empty queue attached to mgr.
func New[V any](mgr *core.TxManager) *Queue[V] {
	q := &Queue[V]{mgr: mgr}
	dummy := &node[V]{}
	q.head.Init(dummy)
	q.tail.Init(dummy)
	return q
}

// Manager returns the TxManager this queue participates in.
func (q *Queue[V]) Manager() *core.TxManager { return q.mgr }

// Enqueue appends val. Its linearization point is the CAS that links the
// new node after the last node; the tail-advancing CAS is post-critical
// cleanup, deferred to commit inside a transaction exactly as the paper
// prescribes.
func (q *Queue[V]) Enqueue(tx *core.Tx, val V) {
	tx.OpStart()
	n := &node[V]{val: val}
	for {
		t, _ := q.tail.NbtcLoad(tx)
		next, _ := t.next.NbtcLoad(tx)
		if next != nil {
			// Tail is lagging; advance it. This is helping work: before our
			// speculation interval it executes immediately, and if next is
			// our own speculative node the interval has already begun and
			// the advance is (conservatively) critical.
			q.tail.NbtcCAS(tx, t, next, false, false)
			continue
		}
		if t.next.NbtcCAS(tx, nil, n, true, true) {
			tail := t
			tx.Defer(func() {
				q.tail.CAS(tail, n)
			})
			return
		}
	}
}

// Dequeue removes and returns the oldest value. An empty-queue outcome is
// read-only; its linearizing load is the observation that the dummy's next
// is nil, which joins the read set. A successful dequeue linearizes at the
// head-advancing CAS.
func (q *Queue[V]) Dequeue(tx *core.Tx) (V, bool) {
	tx.OpStart()
	var zero V
	for {
		h, hw := q.head.NbtcLoad(tx)
		next, nw := h.next.NbtcLoad(tx)
		if next == nil {
			// Empty. Witness both the head identity and its nil successor:
			// together they certify emptiness at a single instant.
			tx.AddToReadSet(hw)
			tx.AddToReadSet(nw)
			return zero, false
		}
		if q.head.NbtcCAS(tx, h, next, true, true) {
			old := h
			tx.Retire(func() { _ = old })
			// If the tail still points at the removed dummy (single-element
			// queue), help it forward after commit so non-transactional
			// peers never chase a retired node.
			tx.Defer(func() {
				q.tail.CAS(old, next)
			})
			return next.val, true
		}
	}
}

// Peek returns the oldest value without removing it (read-only).
func (q *Queue[V]) Peek(tx *core.Tx) (V, bool) {
	tx.OpStart()
	var zero V
	h, hw := q.head.NbtcLoad(tx)
	next, nw := h.next.NbtcLoad(tx)
	tx.AddToReadSet(hw)
	tx.AddToReadSet(nw)
	if next == nil {
		return zero, false
	}
	return next.val, true
}

// Len counts elements; not linearizable, for tests and diagnostics.
func (q *Queue[V]) Len() int {
	n := 0
	for c := q.head.Load().next.Load(); c != nil; c = c.next.Load() {
		n++
	}
	return n
}

// Drain pops every element non-transactionally and returns them in FIFO
// order; for tests and diagnostics.
func (q *Queue[V]) Drain() []V {
	var out []V
	for {
		v, ok := q.Dequeue(nil)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
