package msqueue

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"medley/internal/core"
)

func TestSequentialFIFO(t *testing.T) {
	mgr := core.NewTxManager()
	q := New[int](mgr)
	if _, ok := q.Dequeue(nil); ok {
		t.Fatal("empty dequeue succeeded")
	}
	for i := 0; i < 10; i++ {
		q.Enqueue(nil, i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	if v, ok := q.Peek(nil); !ok || v != 0 {
		t.Fatalf("Peek = %d,%v", v, ok)
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Dequeue(nil)
		if !ok || v != i {
			t.Fatalf("Dequeue = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(nil); ok {
		t.Fatal("drained queue still yields")
	}
}

func TestTxEnqueueDequeueAtomic(t *testing.T) {
	mgr := core.NewTxManager()
	q := New[int](mgr)
	tx := mgr.Register()
	err := tx.Run(func() error {
		q.Enqueue(tx, 1)
		q.Enqueue(tx, 2)
		q.Enqueue(tx, 3)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := q.Drain(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Drain = %v, want [1 2 3]", got)
	}
}

func TestTxAbortedEnqueueLeavesNothing(t *testing.T) {
	mgr := core.NewTxManager()
	q := New[int](mgr)
	tx := mgr.Register()
	_ = tx.Run(func() error {
		q.Enqueue(tx, 1)
		q.Enqueue(tx, 2)
		tx.Abort()
		return nil
	})
	if q.Len() != 0 {
		t.Fatalf("aborted enqueues leaked: Len = %d", q.Len())
	}
	q.Enqueue(nil, 9)
	if got := q.Drain(); len(got) != 1 || got[0] != 9 {
		t.Fatalf("queue unusable after abort: %v", got)
	}
}

func TestTxDequeueOwnEnqueue(t *testing.T) {
	// Second operation depends on the first within one transaction: the
	// complication of Section 2.2 in the paper.
	mgr := core.NewTxManager()
	q := New[int](mgr)
	tx := mgr.Register()
	err := tx.Run(func() error {
		q.Enqueue(tx, 42)
		v, ok := q.Dequeue(tx)
		if !ok || v != 42 {
			t.Fatalf("Dequeue own enqueue = %d,%v", v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after self-consuming tx: %d", q.Len())
	}
}

func TestTxMoveBetweenQueues(t *testing.T) {
	mgr := core.NewTxManager()
	q1 := New[int](mgr)
	q2 := New[int](mgr)
	tx := mgr.Register()
	q1.Enqueue(nil, 7)
	err := tx.RunRetry(func() error {
		v, ok := q1.Dequeue(tx)
		if !ok {
			tx.Abort()
		}
		q2.Enqueue(tx, v)
		return nil
	})
	if err != nil {
		t.Fatalf("move: %v", err)
	}
	if q1.Len() != 0 || q2.Len() != 1 {
		t.Fatalf("lens = %d,%d want 0,1", q1.Len(), q2.Len())
	}
	// Empty-source move must abort atomically.
	err = tx.Run(func() error {
		v, ok := q1.Dequeue(tx)
		if !ok {
			tx.Abort()
		}
		q2.Enqueue(tx, v)
		return nil
	})
	if !errors.Is(err, core.ErrTxAborted) {
		t.Fatalf("empty move = %v, want abort", err)
	}
	if q2.Len() != 1 {
		t.Fatalf("q2 polluted by aborted move: %d", q2.Len())
	}
}

func TestEmptyDequeueValidation(t *testing.T) {
	// A transaction that observed emptiness must abort if an enqueue
	// commits before it does.
	mgr := core.NewTxManager()
	q := New[int](mgr)
	tx := mgr.Register()
	err := tx.Run(func() error {
		if _, ok := q.Dequeue(tx); ok {
			t.Fatal("queue not empty")
		}
		q.Enqueue(nil, 5) // concurrent committed enqueue
		return nil
	})
	if !errors.Is(err, core.ErrTxAborted) {
		t.Fatalf("tx with stale emptiness = %v, want abort", err)
	}
}

func TestConcurrentEnqueueDequeue(t *testing.T) {
	mgr := core.NewTxManager()
	q := New[uint64](mgr)
	const producers = 3
	const consumers = 3
	perP := 2000
	if testing.Short() {
		perP = 300
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var got []uint64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				q.Enqueue(nil, base+uint64(i))
			}
		}(uint64(p) << 32)
	}
	var consumed sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < consumers; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			var local []uint64
			for {
				v, ok := q.Dequeue(nil)
				if ok {
					local = append(local, v)
					continue
				}
				select {
				case <-stop:
					for {
						v, ok := q.Dequeue(nil)
						if !ok {
							break
						}
						local = append(local, v)
					}
					mu.Lock()
					got = append(got, local...)
					mu.Unlock()
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	consumed.Wait()
	if len(got) != producers*perP {
		t.Fatalf("consumed %d, want %d", len(got), producers*perP)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for p := 0; p < producers; p++ {
		for i := 0; i < perP; i++ {
			want := uint64(p)<<32 + uint64(i)
			if got[p*perP+i] != want {
				t.Fatalf("missing or duplicated element near %d", want)
			}
		}
	}
}

func TestConcurrentTransactionalBatches(t *testing.T) {
	// Each transaction enqueues a pair (x, x+1); pairs must drain as
	// adjacent elements (transactional atomicity of composed enqueues).
	mgr := core.NewTxManager()
	q := New[uint64](mgr)
	const goroutines = 4
	perG := 300
	if testing.Short() {
		perG = 50
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			tx := mgr.Register()
			for i := 0; i < perG; i++ {
				x := base + uint64(i)*2
				_ = tx.RunRetry(func() error {
					q.Enqueue(tx, x)
					q.Enqueue(tx, x+1)
					return nil
				})
			}
		}(uint64(g) << 40)
	}
	wg.Wait()
	out := q.Drain()
	if len(out) != goroutines*perG*2 {
		t.Fatalf("drained %d, want %d", len(out), goroutines*perG*2)
	}
	for i := 0; i < len(out); i += 2 {
		if out[i+1] != out[i]+1 || out[i]%2 != 0 {
			t.Fatalf("pair torn at %d: %d then %d", i, out[i], out[i+1])
		}
	}
}

func TestQuickTxQueueSemantics(t *testing.T) {
	// Property: a sequence of committed transactions, each enqueueing and/or
	// dequeueing, behaves like the same script on a slice-backed queue.
	type step struct {
		Enq  bool
		Val  uint8
		Deq  bool
		Both bool
	}
	f := func(script []step) bool {
		mgr := core.NewTxManager()
		q := New[int](mgr)
		tx := mgr.Register()
		var ref []int
		for _, s := range script {
			err := tx.Run(func() error {
				if s.Enq || s.Both {
					q.Enqueue(tx, int(s.Val))
				}
				if s.Deq || s.Both {
					q.Dequeue(tx)
				}
				return nil
			})
			if err != nil {
				return false // single-threaded: must always commit
			}
			if s.Enq || s.Both {
				ref = append(ref, int(s.Val))
			}
			if (s.Deq || s.Both) && len(ref) > 0 {
				ref = ref[1:]
			}
		}
		got := q.Drain()
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStressMixedTxAndPlain(t *testing.T) {
	mgr := core.NewTxManager()
	q := New[int](mgr)
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				if rng.Intn(2) == 0 {
					q.Enqueue(nil, i)
					q.Dequeue(nil)
				} else {
					_ = tx.RunRetry(func() error {
						q.Enqueue(tx, i)
						q.Dequeue(tx)
						return nil
					})
				}
			}
		}(int64(g) + 5)
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("balanced ops left %d elements", q.Len())
	}
}
