// Package plainskip is Fraser's CAS-based lock-free skiplist WITHOUT the
// NBTC transform: the "Original" baseline of the paper's Figure 10 latency
// study. It shares the algorithmic skeleton of internal/structures/
// fraserskip but has no transactional instrumentation whatsoever — no
// witnesses, no speculation tracking, no Tx parameter — so the latency gap
// between the two isolates the cost of the transform itself.
//
// Note for readers comparing against the paper: in C++ the transform's raw
// cost is widening every CAS word to 128 bits; in this Go port both the
// plain and transformed structures use pointer-to-immutable-cell links
// (the idiomatic GC-safe design), so the measured gap isolates the
// NBTC bookkeeping and is expected to be smaller than the paper's 1.8x.
package plainskip

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
)

const maxLevel = 20

// ref is a link: successor plus logical-deletion mark, immutable.
type ref[V any] struct {
	node *node[V]
	mark bool
}

type node[V any] struct {
	key  uint64
	val  V
	lvl  int
	dead atomic.Bool
	next []atomic.Pointer[ref[V]]
}

func (n *node[V]) load(l int) ref[V] {
	p := n.next[l].Load()
	if p == nil {
		return ref[V]{}
	}
	return *p
}

func (n *node[V]) cas(l int, old, new ref[V]) bool {
	cur := n.next[l].Load()
	if cur == nil {
		var zero ref[V]
		if old != zero {
			return false
		}
		return n.next[l].CompareAndSwap(nil, &new)
	}
	if *cur != old {
		return false
	}
	return n.next[l].CompareAndSwap(cur, &new)
}

// List is a plain lock-free skiplist mapping uint64 keys to V.
type List[V any] struct {
	head *node[V]
}

// New creates an empty skiplist.
func New[V any]() *List[V] {
	return &List[V]{head: &node[V]{lvl: maxLevel, next: make([]atomic.Pointer[ref[V]], maxLevel)}}
}

func randomLevel() int {
	return bits.TrailingZeros64(rand.Uint64()|1<<(maxLevel-1)) + 1
}

type pos[V any] struct {
	pred, curr, next *node[V]
	found            bool
}

func (s *List[V]) search(key uint64) pos[V] {
	pred := s.head
	// Best-effort index descent (one repair attempt per dead tower; level 0
	// is authoritative).
	for l := maxLevel - 1; l >= 1; l-- {
		for {
			cr := pred.load(l)
			c := cr.node
			if c == nil {
				break
			}
			if c.dead.Load() || c.load(0).mark {
				sr := c.load(l)
				if pred.cas(l, ref[V]{c, false}, ref[V]{sr.node, false}) {
					continue
				}
			}
			if c.key < key {
				pred = c
				continue
			}
			break
		}
	}
	// Exact level-0 stage; stale anchors restart from the immortal head.
	for attempt := 0; ; attempt++ {
		prev := pred
		if attempt > 0 {
			prev = s.head
		}
		cr := prev.load(0)
		if cr.mark {
			continue
		}
		curr := cr.node
		ok := true
		for ok {
			if curr == nil {
				return pos[V]{pred: prev}
			}
			nr := curr.load(0)
			if nr.mark {
				if prev.cas(0, ref[V]{curr, false}, ref[V]{nr.node, false}) {
					curr = nr.node
					continue
				}
				ok = false
				break
			}
			if curr.key >= key {
				return pos[V]{pred: prev, curr: curr, next: nr.node, found: curr.key == key}
			}
			prev = curr
			curr = nr.node
		}
	}
}

// Get returns the value bound to key.
func (s *List[V]) Get(key uint64) (V, bool) {
	r := s.search(key)
	if r.found {
		return r.curr.val, true
	}
	var zero V
	return zero, false
}

// Put binds key to val, inserting or replacing.
func (s *List[V]) Put(key uint64, val V) (V, bool) {
	n := &node[V]{key: key, val: val, lvl: randomLevel()}
	n.next = make([]atomic.Pointer[ref[V]], n.lvl)
	for {
		r := s.search(key)
		if r.found {
			n.next[0].Store(&ref[V]{r.next, false})
			if r.curr.cas(0, ref[V]{r.next, false}, ref[V]{n, true}) {
				r.curr.dead.Store(true)
				s.search(key)
				s.buildTower(n, key)
				return r.curr.val, true
			}
		} else {
			n.next[0].Store(&ref[V]{r.curr, false})
			if r.pred.cas(0, ref[V]{r.curr, false}, ref[V]{n, false}) {
				s.buildTower(n, key)
				var zero V
				return zero, false
			}
		}
	}
}

// Insert adds key only if absent.
func (s *List[V]) Insert(key uint64, val V) bool {
	n := &node[V]{key: key, val: val, lvl: randomLevel()}
	n.next = make([]atomic.Pointer[ref[V]], n.lvl)
	for {
		r := s.search(key)
		if r.found {
			return false
		}
		n.next[0].Store(&ref[V]{r.curr, false})
		if r.pred.cas(0, ref[V]{r.curr, false}, ref[V]{n, false}) {
			s.buildTower(n, key)
			return true
		}
	}
}

// Remove deletes key.
func (s *List[V]) Remove(key uint64) (V, bool) {
	for {
		r := s.search(key)
		if !r.found {
			var zero V
			return zero, false
		}
		if r.curr.cas(0, ref[V]{r.next, false}, ref[V]{r.next, true}) {
			r.curr.dead.Store(true)
			s.search(key)
			return r.curr.val, true
		}
	}
}

func (s *List[V]) buildTower(n *node[V], key uint64) {
	for l := 1; l < n.lvl; l++ {
		for attempt := 0; attempt < 4; attempt++ {
			if n.dead.Load() {
				return
			}
			pred, succ := s.indexPosition(l, key, n)
			if pred == nil {
				break
			}
			n.next[l].Store(&ref[V]{succ, false})
			if pred.cas(l, ref[V]{succ, false}, ref[V]{n, false}) {
				break
			}
		}
	}
}

func (s *List[V]) indexPosition(l int, key uint64, self *node[V]) (*node[V], *node[V]) {
	pred := s.head
	for lvl := maxLevel - 1; lvl >= l; lvl-- {
		for {
			cr := pred.load(lvl)
			c := cr.node
			if c == nil || c == self || c.key >= key {
				break
			}
			pred = c
		}
	}
	cr := pred.load(l)
	if cr.node == self {
		return nil, nil
	}
	if cr.node != nil && cr.node.key == key {
		// Refuse same-key positions: keeps index links strictly
		// key-increasing so racing tower builds of a replace chain can
		// never form a cycle.
		return nil, nil
	}
	return pred, cr.node
}

// Len counts live entries; not linearizable, for tests.
func (s *List[V]) Len() int {
	n := 0
	cr := s.head.load(0)
	for c := cr.node; c != nil; {
		nr := c.load(0)
		if !nr.mark {
			n++
		}
		c = nr.node
	}
	return n
}

// Range iterates a non-linearizable ascending snapshot, stopping if fn
// returns false.
func (s *List[V]) Range(fn func(key uint64, val V) bool) {
	cr := s.head.load(0)
	for c := cr.node; c != nil; {
		nr := c.load(0)
		if !nr.mark {
			if !fn(c.key, c.val) {
				return
			}
		}
		c = nr.node
	}
}
