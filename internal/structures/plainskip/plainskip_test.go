package plainskip

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSequentialVsReference(t *testing.T) {
	s := New[uint64]()
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(300))
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			_, repl := s.Put(k, v)
			if _, had := ref[k]; repl != had {
				t.Fatalf("Put(%d) replace mismatch", k)
			}
			ref[k] = v
		case 1:
			v, ok := s.Remove(k)
			rv, had := ref[k]
			if ok != had || (ok && v != rv) {
				t.Fatalf("Remove(%d) mismatch", k)
			}
			delete(ref, k)
		default:
			v, ok := s.Get(k)
			rv, had := ref[k]
			if ok != had || (ok && v != rv) {
				t.Fatalf("Get(%d) mismatch", k)
			}
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ref))
	}
}

func TestQuickInsertSemantics(t *testing.T) {
	f := func(keys []uint8) bool {
		s := New[int]()
		seen := map[uint64]bool{}
		for _, k8 := range keys {
			k := uint64(k8 % 64)
			got := s.Insert(k, int(k))
			if got == seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentChurn(t *testing.T) {
	s := New[uint64]()
	var wg sync.WaitGroup
	iters := 3000
	if testing.Short() {
		iters = 400
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := uint64(rng.Intn(256))
				switch rng.Intn(3) {
				case 0:
					s.Put(k, k*11)
				case 1:
					s.Remove(k)
				default:
					if v, ok := s.Get(k); ok && v != k*11 {
						t.Errorf("Get(%d) = %d", k, v)
					}
				}
			}
		}(int64(g) + 31)
	}
	wg.Wait()
}

func TestConcurrentDisjointExact(t *testing.T) {
	s := New[uint64]()
	const goroutines = 4
	const per = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for k := base; k < base+per; k++ {
				s.Insert(k, k)
			}
			for k := base; k < base+per; k += 2 {
				s.Remove(k)
			}
		}(uint64(g) * 1000)
	}
	wg.Wait()
	if s.Len() != goroutines*per/2 {
		t.Fatalf("Len = %d, want %d", s.Len(), goroutines*per/2)
	}
}
