// Package ebr implements epoch-based reclamation (EBR), the safe-memory-
// reclamation scheme used by the paper's data structures (following Fraser's
// thesis and Hart et al., JPDC 2007).
//
// Under Go's garbage collector, reclamation of plain heap nodes is handled
// by the runtime, so retiring a node is *logically* sufficient for safety.
// This package nevertheless implements the full protocol — per-thread epoch
// announcement, three-generation limbo lists, and deferred reclamation
// callbacks — for two reasons: the protocol's bookkeeping cost is part of
// what the paper measures, and structures that hold resources other than
// memory (persistent payloads in txMontage) need a real deferred-free
// mechanism with grace-period semantics.
package ebr

import (
	"sync"
	"sync/atomic"
)

// generations is the classic three-epoch limbo depth: a block retired in
// epoch e may be freed once the global epoch reaches e+2, at which point no
// thread can still be in a critical section that began in epoch e.
const generations = 3

// Manager is a global EBR domain. All threads operating on structures that
// share retired blocks must use handles from the same Manager.
type Manager struct {
	globalEpoch atomic.Uint64

	mu      sync.Mutex // guards handles registry only
	handles []*Handle

	// Stats.
	retired   atomic.Uint64
	reclaimed atomic.Uint64
	advances  atomic.Uint64

	// advanceEvery triggers an epoch-advance attempt after this many
	// retires on a single handle.
	advanceEvery int
}

// New creates an EBR domain. advanceEvery controls how many retires a
// thread accumulates before attempting to advance the global epoch
// (a typical value is 64; 0 selects the default).
func New(advanceEvery int) *Manager {
	if advanceEvery <= 0 {
		advanceEvery = 64
	}
	m := &Manager{advanceEvery: advanceEvery}
	m.globalEpoch.Store(generations) // start above limbo depth
	return m
}

// Handle is a per-goroutine participant in the EBR protocol. A Handle must
// not be used from multiple goroutines simultaneously.
type Handle struct {
	mgr *Manager

	// localEpoch is the announced epoch; the low bit is the "active"
	// (in-critical-section) flag, as in Fraser's design.
	localEpoch atomic.Uint64

	limbo        [generations][]func()
	limboEpochs  [generations]uint64
	sinceAdvance int
}

// Register creates a handle for the calling goroutine.
func (m *Manager) Register() *Handle {
	h := &Handle{mgr: m}
	h.localEpoch.Store(m.globalEpoch.Load() << 1) // inactive
	m.mu.Lock()
	m.handles = append(m.handles, h)
	m.mu.Unlock()
	return h
}

// Enter begins a critical section: the handle announces the current global
// epoch and is counted as a potential holder of references retired since.
func (h *Handle) Enter() {
	e := h.mgr.globalEpoch.Load()
	h.localEpoch.Store(e<<1 | 1)
}

// Exit ends the critical section.
func (h *Handle) Exit() {
	h.localEpoch.Store(h.localEpoch.Load() &^ 1)
}

// Retire registers free to be invoked once two epoch advances guarantee no
// reader can still hold a reference obtained before the retire.
func (h *Handle) Retire(free func()) {
	m := h.mgr
	e := m.globalEpoch.Load()
	slot := int(e % generations)
	if h.limboEpochs[slot] != e {
		h.flushSlot(slot)
		h.limboEpochs[slot] = e
	}
	h.limbo[slot] = append(h.limbo[slot], free)
	m.retired.Add(1)
	h.sinceAdvance++
	if h.sinceAdvance >= m.advanceEvery {
		h.sinceAdvance = 0
		h.TryAdvance()
	}
}

// flushSlot frees everything in a limbo slot that belonged to an epoch now
// at least two advances old.
func (h *Handle) flushSlot(slot int) {
	if len(h.limbo[slot]) == 0 {
		return
	}
	for _, f := range h.limbo[slot] {
		f()
	}
	h.mgr.reclaimed.Add(uint64(len(h.limbo[slot])))
	h.limbo[slot] = h.limbo[slot][:0]
}

// TryAdvance attempts to advance the global epoch: it succeeds only if
// every active handle has announced the current epoch. On success, blocks
// retired two epochs ago become reclaimable and this handle frees its own
// expired limbo.
func (h *Handle) TryAdvance() bool {
	m := h.mgr
	e := m.globalEpoch.Load()
	m.mu.Lock()
	for _, other := range m.handles {
		le := other.localEpoch.Load()
		if le&1 == 1 && le>>1 != e {
			m.mu.Unlock()
			return false
		}
	}
	m.mu.Unlock()
	if m.globalEpoch.CompareAndSwap(e, e+1) {
		m.advances.Add(1)
	}
	// Whether we or a racer advanced, expired limbo can be flushed.
	ne := m.globalEpoch.Load()
	for s := 0; s < generations; s++ {
		if h.limboEpochs[s]+2 <= ne {
			h.flushSlot(s)
		}
	}
	return true
}

// Drain reclaims all limbo on this handle unconditionally. Only safe when
// the caller knows no other thread holds references (e.g., tests and
// shutdown).
func (h *Handle) Drain() {
	for s := 0; s < generations; s++ {
		h.flushSlot(s)
		h.limboEpochs[s] = 0
	}
}

// Stats is a snapshot of domain counters.
type Stats struct {
	Epoch     uint64
	Retired   uint64
	Reclaimed uint64
	Advances  uint64
}

// Stats returns a snapshot of the domain's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Epoch:     m.globalEpoch.Load(),
		Retired:   m.retired.Load(),
		Reclaimed: m.reclaimed.Load(),
		Advances:  m.advances.Load(),
	}
}
