// Package ebr implements epoch-based reclamation (EBR), the safe-memory-
// reclamation scheme used by the paper's data structures (following Fraser's
// thesis and Hart et al., JPDC 2007).
//
// Under Go's garbage collector, reclamation of plain heap nodes is handled
// by the runtime, so retiring a node is *logically* sufficient for safety.
// This package nevertheless implements the full protocol — per-thread epoch
// announcement, three-generation limbo lists, and deferred reclamation
// callbacks — for two reasons: the protocol's bookkeeping cost is part of
// what the paper measures, and structures that hold resources other than
// memory (persistent payloads in txMontage) need a real deferred-free
// mechanism with grace-period semantics.
package ebr

import (
	"sync"
	"sync/atomic"
)

// generations is the classic three-epoch limbo depth: a block retired in
// epoch e may be freed once the global epoch reaches e+2, at which point no
// thread can still be in a critical section that began in epoch e.
const generations = 3

// Manager is a global EBR domain. All threads operating on structures that
// share retired blocks must use handles from the same Manager.
type Manager struct {
	globalEpoch atomic.Uint64

	mu      sync.Mutex // guards handles registry only
	handles []*Handle

	// Stats. Retire/reclaim counts live in the handles (hot path, one
	// writer each); only the advance count is global.
	advances atomic.Uint64

	// advanceEvery triggers an epoch-advance attempt after this many
	// retires on a single handle.
	advanceEvery int
}

// New creates an EBR domain. advanceEvery controls how many retires a
// thread accumulates before attempting to advance the global epoch
// (a typical value is 64; 0 selects the default).
func New(advanceEvery int) *Manager {
	if advanceEvery <= 0 {
		advanceEvery = 64
	}
	m := &Manager{advanceEvery: advanceEvery}
	m.globalEpoch.Store(generations) // start above limbo depth
	return m
}

// Pool receives recycled objects once their grace period has elapsed.
// Recycle is always invoked on the goroutine that owns the retiring
// Handle, so single-owner pools need no internal synchronization.
type Pool interface {
	Recycle(obj any)
}

// limboEntry is one retired block: either a deferred-free callback (fn) or
// a pool-routed object (pool, obj). The obj form exists so hot paths can
// retire without allocating a closure per block: storing a pointer in an
// interface does not heap-allocate, and the limbo slices themselves are
// truncated and reused across epochs.
type limboEntry struct {
	fn   func()
	pool Pool
	obj  any
}

func (e *limboEntry) release() {
	if e.fn != nil {
		e.fn()
		return
	}
	e.pool.Recycle(e.obj)
}

// Handle is a per-goroutine participant in the EBR protocol. A Handle must
// not be used from multiple goroutines simultaneously.
type Handle struct {
	mgr *Manager

	// localEpoch is the announced epoch; the low bit is the "active"
	// (in-critical-section) flag, as in Fraser's design. Every TryAdvance
	// (any thread) reads it, so it gets a cache line to itself: without the
	// padding, the owner's writes to the retire-path fields below would
	// ping-pong the line against the advancers' scans.
	localEpoch atomic.Uint64
	_          [56]byte

	limbo        [generations][]limboEntry
	limboEpochs  [generations]uint64
	sinceAdvance int

	// Per-handle stat counters: written only by the owning goroutine on
	// the retire hot path (atomic, so Manager.Stats can fold them
	// cross-thread without a data race, but never contended).
	retired   atomic.Uint64
	reclaimed atomic.Uint64
}

// Register creates a handle for the calling goroutine.
func (m *Manager) Register() *Handle {
	h := &Handle{mgr: m}
	h.localEpoch.Store(m.globalEpoch.Load() << 1) // inactive
	m.mu.Lock()
	m.handles = append(m.handles, h)
	m.mu.Unlock()
	return h
}

// Enter begins a critical section: the handle announces the current global
// epoch and is counted as a potential holder of references retired since.
func (h *Handle) Enter() {
	e := h.mgr.globalEpoch.Load()
	h.localEpoch.Store(e<<1 | 1)
}

// Exit ends the critical section.
func (h *Handle) Exit() {
	h.localEpoch.Store(h.localEpoch.Load() &^ 1)
}

// Active reports whether the handle is inside a critical section.
func (h *Handle) Active() bool {
	return h.localEpoch.Load()&1 == 1
}

// Retire registers free to be invoked once two epoch advances guarantee no
// reader can still hold a reference obtained before the retire.
func (h *Handle) Retire(free func()) {
	h.retire(limboEntry{fn: free})
}

// RetireInto registers obj to be handed to pool.Recycle after the grace
// period. It is the allocation-free form of Retire: obj is typically a
// pointer (stored in the interface without boxing), and pool is a
// per-goroutine freelist owned by this handle's goroutine.
func (h *Handle) RetireInto(pool Pool, obj any) {
	h.retire(limboEntry{pool: pool, obj: obj})
}

func (h *Handle) retire(e limboEntry) {
	m := h.mgr
	ge := m.globalEpoch.Load()
	slot := int(ge % generations)
	if h.limboEpochs[slot] != ge {
		h.flushSlot(slot)
		h.limboEpochs[slot] = ge
	}
	h.limbo[slot] = append(h.limbo[slot], e)
	h.retired.Add(1)
	h.sinceAdvance++
	if h.sinceAdvance >= m.advanceEvery {
		h.sinceAdvance = 0
		h.TryAdvance()
	}
}

// flushSlot frees everything in a limbo slot that belonged to an epoch now
// at least two advances old. Entries are cleared as they release so the
// reused backing array does not retain the last epoch's objects.
func (h *Handle) flushSlot(slot int) {
	if len(h.limbo[slot]) == 0 {
		return
	}
	for i := range h.limbo[slot] {
		h.limbo[slot][i].release()
		h.limbo[slot][i] = limboEntry{}
	}
	h.reclaimed.Add(uint64(len(h.limbo[slot])))
	h.limbo[slot] = h.limbo[slot][:0]
}

// Flush frees every limbo entry whose grace period has elapsed, without
// attempting to advance the epoch. Owner-only, like Retire. Useful at
// full-stop barriers: steady-state retiring only revisits the slot of the
// current epoch, so entries parked in the other slots wait for the epoch
// to rotate back around — which under a starved advance (oversubscription
// parking readers mid-critical-section) can be never. A barrier that
// advances the epoch (see TryAdvance) and then flushes each handle
// reclaims everything at once.
func (h *Handle) Flush() {
	ne := h.mgr.globalEpoch.Load()
	for s := 0; s < generations; s++ {
		if h.limboEpochs[s]+2 <= ne {
			h.flushSlot(s)
		}
	}
}

// TryAdvance attempts to advance the global epoch: it succeeds only if
// every active handle has announced the current epoch. On success, blocks
// retired two epochs ago become reclaimable and this handle frees its own
// expired limbo.
func (h *Handle) TryAdvance() bool {
	m := h.mgr
	e := m.globalEpoch.Load()
	m.mu.Lock()
	for _, other := range m.handles {
		le := other.localEpoch.Load()
		if le&1 == 1 && le>>1 != e {
			m.mu.Unlock()
			return false
		}
	}
	m.mu.Unlock()
	if m.globalEpoch.CompareAndSwap(e, e+1) {
		m.advances.Add(1)
	}
	// Whether we or a racer advanced, expired limbo can be flushed.
	ne := m.globalEpoch.Load()
	for s := 0; s < generations; s++ {
		if h.limboEpochs[s]+2 <= ne {
			h.flushSlot(s)
		}
	}
	return true
}

// Drain reclaims all limbo on this handle unconditionally. Only safe when
// the caller knows no other thread holds references (e.g., tests and
// shutdown).
func (h *Handle) Drain() {
	for s := 0; s < generations; s++ {
		h.flushSlot(s)
		h.limboEpochs[s] = 0
	}
}

// Stats is a snapshot of domain counters.
type Stats struct {
	Epoch     uint64
	Retired   uint64
	Reclaimed uint64
	Advances  uint64
}

// Stats returns a snapshot of the domain's counters, folding the
// per-handle retire/reclaim counts.
func (m *Manager) Stats() Stats {
	s := Stats{
		Epoch:    m.globalEpoch.Load(),
		Advances: m.advances.Load(),
	}
	m.mu.Lock()
	handles := m.handles
	m.mu.Unlock()
	for _, h := range handles {
		s.Retired += h.retired.Load()
		s.Reclaimed += h.reclaimed.Load()
	}
	return s
}
