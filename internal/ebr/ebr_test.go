package ebr

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRetireNotFreedWhileReaderActive(t *testing.T) {
	m := New(1)
	reader := m.Register()
	writer := m.Register()

	reader.Enter() // reader pins current epoch

	freed := false
	writer.Retire(func() { freed = true })
	for i := 0; i < 10; i++ {
		writer.TryAdvance()
	}
	if freed {
		t.Fatal("block freed while a reader from its epoch is still active")
	}

	reader.Exit()
	for i := 0; i < 4; i++ {
		writer.TryAdvance()
		writer.Retire(func() {}) // churn slots
	}
	if !freed {
		t.Fatal("block never freed after reader exited and epochs advanced")
	}
}

func TestGracePeriodTwoEpochs(t *testing.T) {
	m := New(1000000) // no auto-advance
	h := m.Register()
	e0 := m.Stats().Epoch

	freed := false
	h.Retire(func() { freed = true })

	if !h.TryAdvance() {
		t.Fatal("advance 1 failed with no active readers")
	}
	if freed {
		t.Fatalf("freed after one advance (epoch %d -> %d)", e0, m.Stats().Epoch)
	}
	if !h.TryAdvance() {
		t.Fatal("advance 2 failed")
	}
	if !freed {
		t.Fatal("not freed after two advances")
	}
}

func TestAdvanceBlockedByLaggard(t *testing.T) {
	m := New(1)
	active := m.Register()
	other := m.Register()

	active.Enter()
	other.Enter()
	other.Exit()
	if !other.TryAdvance() {
		t.Fatal("advance should succeed while all active handles announce current epoch")
	}
	// Now 'active' is pinned at the old epoch and still active: no advance.
	if other.TryAdvance() {
		t.Fatal("advance should fail with an active laggard")
	}
	active.Exit()
	if !other.TryAdvance() {
		t.Fatal("advance should succeed after laggard exits")
	}
}

func TestDrain(t *testing.T) {
	m := New(1000000)
	h := m.Register()
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		h.Retire(func() { n.Add(1) })
	}
	h.Drain()
	if n.Load() != 100 {
		t.Fatalf("Drain freed %d, want 100", n.Load())
	}
	st := m.Stats()
	if st.Retired != 100 || st.Reclaimed != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentRetireReclaimAll(t *testing.T) {
	m := New(8)
	const goroutines = 6
	const perG = 500
	var freed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Register()
			for i := 0; i < perG; i++ {
				h.Enter()
				h.Retire(func() { freed.Add(1) })
				h.Exit()
			}
			h.Drain()
		}()
	}
	wg.Wait()
	if freed.Load() != goroutines*perG {
		t.Fatalf("freed %d, want %d", freed.Load(), goroutines*perG)
	}
}

func TestEpochMonotonic(t *testing.T) {
	m := New(1)
	h := m.Register()
	last := m.Stats().Epoch
	for i := 0; i < 50; i++ {
		h.Enter()
		h.Exit()
		h.TryAdvance()
		e := m.Stats().Epoch
		if e < last {
			t.Fatalf("epoch went backwards: %d -> %d", last, e)
		}
		last = e
	}
}

// recordPool collects recycled objects for assertions.
type recordPool struct{ got []any }

func (p *recordPool) Recycle(obj any) { p.got = append(p.got, obj) }

// TestRetireIntoRoutesThroughGracePeriod verifies the allocation-free
// retire path: objects retired with RetireInto reach their pool only after
// the same two-advance grace period as closure-based retires, and arrive
// on the retiring goroutine.
func TestRetireIntoRoutesThroughGracePeriod(t *testing.T) {
	m := New(1000) // no automatic advances: the test drives epochs
	h := m.Register()
	p := &recordPool{}

	x, y := new(int), new(int)
	h.RetireInto(p, x)
	h.RetireInto(p, y)
	if len(p.got) != 0 {
		t.Fatal("recycled before any epoch advance")
	}
	h.TryAdvance()
	if len(p.got) != 0 {
		t.Fatal("recycled after one advance (grace is two)")
	}
	h.TryAdvance()
	h.TryAdvance()
	// Flush happens on the handle's next retire/advance touching the slot.
	h.TryAdvance()
	if len(p.got) != 2 {
		t.Fatalf("got %d recycled objects, want 2", len(p.got))
	}
	if p.got[0] != x || p.got[1] != y {
		t.Fatal("objects recycled out of order or corrupted")
	}
	st := m.Stats()
	if st.Retired != 2 || st.Reclaimed != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRetireIntoBlockedByActiveReader pins the grace guarantee: an active
// handle announcing an old epoch blocks reclamation of objects retired
// since it entered.
func TestRetireIntoBlockedByActiveReader(t *testing.T) {
	m := New(1000)
	w := m.Register() // writer/retirer
	r := m.Register() // reader
	p := &recordPool{}

	r.Enter() // reader pins the current epoch
	w.RetireInto(p, new(int))
	for i := 0; i < 5; i++ {
		w.TryAdvance()
	}
	if len(p.got) != 0 {
		t.Fatal("object recycled while a reader from its epoch is still active")
	}
	r.Exit()
	for i := 0; i < 4; i++ {
		w.TryAdvance()
	}
	if len(p.got) != 1 {
		t.Fatalf("object not recycled after reader exit: %d", len(p.got))
	}
}
