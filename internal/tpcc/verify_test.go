package tpcc

import (
	"sync"
	"testing"
)

func classesOf(vs []Violation) map[string]int {
	m := map[string]int{}
	for _, v := range vs {
		m[v.Class]++
	}
	return m
}

func requireClean(t *testing.T, b Backend, sc Scale) {
	t.Helper()
	vs, err := Check(b, sc)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func TestDeliveryEffects(t *testing.T) {
	sc := smallScale()
	for _, b := range backends(t) {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			if err := Load(b, sc); err != nil {
				t.Fatalf("load: %v", err)
			}
			w := b.NewWorker()
			items := []OrderItem{{Item: 1, SupplyW: 1, Qty: 2}, {Item: 3, SupplyW: 1, Qty: 4}}
			if err := NewOrder(w, 1, 1, 7, items); err != nil {
				t.Fatalf("newOrder: %v", err)
			}
			n, err := Delivery(w, sc.Districts, 1, 5)
			if err != nil {
				t.Fatalf("delivery: %v", err)
			}
			if n != 1 {
				t.Fatalf("delivered %d districts, want 1", n)
			}
			err = w.Run(func(c Ctx) error {
				if _, ok := c.Get(TNewOrder, OrderKey(1, 1, 1)); ok {
					t.Error("new-order entry survived delivery")
				}
				oh, _ := c.Get(TOrder, OrderKey(1, 1, 1))
				if carrier := b.Arena().Get(oh)[3]; carrier != 5 {
					t.Errorf("carrier = %d, want 5", carrier)
				}
				ch, _ := c.Get(TCustomer, CustomerKey(1, 1, 7))
				crow := b.Arena().Get(ch)
				if crow[3] != 1 {
					t.Errorf("deliveryCnt = %d, want 1", crow[3])
				}
				if crow[0] == 0 {
					t.Error("balance not credited with order amount")
				}
				dh, _ := c.Get(TDistrict, DistrictKey(1, 1))
				if cursor := b.Arena().Get(dh)[3]; cursor != 2 {
					t.Errorf("delivery cursor = %d, want 2", cursor)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			// Re-delivering with nothing pending is a no-op.
			if n, err := Delivery(w, sc.Districts, 1, 6); err != nil || n != 0 {
				t.Fatalf("empty delivery = (%d, %v), want (0, nil)", n, err)
			}
			res, err := OrderStatus(w, 1, 1, 7)
			if err != nil {
				t.Fatalf("orderStatus: %v", err)
			}
			if res.LastOID != 1 || res.Lines != len(items) {
				t.Fatalf("orderStatus = %+v, want lastOID 1, %d lines", res, len(items))
			}
			if _, err := StockLevel(w, 1, 1, 1000); err != nil {
				t.Fatalf("stockLevel: %v", err)
			}
			requireClean(t, b, sc)
		})
	}
}

// TestFullMixConsistency runs the standard 45/43/4/4/4 mix concurrently on
// every backend and verifies all consistency classes afterwards.
func TestFullMixConsistency(t *testing.T) {
	sc := smallScale()
	iters := 120
	if testing.Short() {
		iters = 40
	}
	for _, b := range backends(t) {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			if err := Load(b, sc); err != nil {
				t.Fatalf("load: %v", err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					d := NewMixDriver(b, sc, seed, FullMix())
					for i := 0; i < iters; i++ {
						if _, err := d.Step(); err != nil {
							t.Errorf("step: %v", err)
							return
						}
					}
				}(int64(g) + 31)
			}
			wg.Wait()
			requireClean(t, b, sc)
		})
	}
}

// TestMixDistribution checks the driver honors FullMix weights and reports
// every kind.
func TestMixDistribution(t *testing.T) {
	sc := smallScale()
	b := NewMedleyBackend()
	if err := Load(b, sc); err != nil {
		t.Fatalf("load: %v", err)
	}
	d := NewMixDriver(b, sc, 1, FullMix())
	counts := map[TxKind]int{}
	steps := 2000
	if testing.Short() {
		steps = 500
	}
	for i := 0; i < steps; i++ {
		kind, err := d.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		counts[kind]++
	}
	for k := TxKind(0); k < NumTxKinds; k++ {
		if counts[k] == 0 {
			t.Errorf("kind %s never ran in %d steps", k, steps)
		}
	}
	noFrac := float64(counts[TxNewOrder]) / float64(steps)
	if noFrac < 0.35 || noFrac > 0.55 {
		t.Errorf("newOrder fraction = %.2f, want ~0.45", noFrac)
	}
}

// TestCheckDetectsDroppedDYTD injects the "dropped D_YTD update" fault: a
// payment that updates the warehouse and customer but skips the district.
// Only the money class may fire.
func TestCheckDetectsDroppedDYTD(t *testing.T) {
	sc := smallScale()
	b := NewMedleyBackend()
	if err := Load(b, sc); err != nil {
		t.Fatalf("load: %v", err)
	}
	w := b.NewWorker()
	if err := Payment(w, 1, 1, 1, 500); err != nil {
		t.Fatalf("payment: %v", err)
	}
	requireClean(t, b, sc)

	aw := w.Writer()
	const amount = 777
	err := w.Run(func(c Ctx) error {
		wk := WarehouseKey(1)
		wh, _ := c.Get(TWarehouse, wk)
		wrow := dRow(c, wh)
		c.Put(TWarehouse, wk, aw.Put(Row{wrow[0] + amount, wrow[1], 0, 0}))
		// Fault: the matching district Y-T-D update is dropped.
		ck := CustomerKey(1, 1, 1)
		ch, _ := c.Get(TCustomer, ck)
		crow := dRow(c, ch)
		c.Put(TCustomer, ck, aw.Put(Row{crow[0] - amount, crow[1] + amount, crow[2] + 1, crow[3]}))
		return nil
	})
	if err != nil {
		t.Fatalf("faulty payment: %v", err)
	}

	vs, err := Check(b, sc)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	classes := classesOf(vs)
	if classes[ClassMoney] == 0 {
		t.Fatalf("dropped D_YTD not detected; violations: %v", vs)
	}
	if len(classes) != 1 {
		t.Fatalf("expected only %q violations, got %v", ClassMoney, vs)
	}
}

// TestCheckDetectsDuplicatedDelivery injects the "duplicated delivery"
// fault: a delivered order's customer effects applied a second time. Only
// the delivery class may fire.
func TestCheckDetectsDuplicatedDelivery(t *testing.T) {
	sc := smallScale()
	b := NewMedleyBackend()
	if err := Load(b, sc); err != nil {
		t.Fatalf("load: %v", err)
	}
	w := b.NewWorker()
	items := []OrderItem{{Item: 2, SupplyW: 1, Qty: 3}}
	if err := NewOrder(w, 1, 1, 4, items); err != nil {
		t.Fatalf("newOrder: %v", err)
	}
	if _, err := Delivery(w, sc.Districts, 1, 2); err != nil {
		t.Fatalf("delivery: %v", err)
	}
	requireClean(t, b, sc)

	// Fault: re-apply the delivery's customer credit without moving the
	// district cursor — the order is delivered twice from the customer's
	// point of view.
	aw := w.Writer()
	err := w.Run(func(c Ctx) error {
		oh, _ := c.Get(TOrder, OrderKey(1, 1, 1))
		var total uint64
		olCnt := dRow(c, oh)[1]
		for ol := uint64(0); ol < olCnt; ol++ {
			lh, _ := c.Get(TOrderLine, OrderLineKey(1, 1, 1, ol))
			total += rowField(c, lh, 2)
		}
		ck := CustomerKey(1, 1, 4)
		ch, _ := c.Get(TCustomer, ck)
		crow := dRow(c, ch)
		c.Put(TCustomer, ck, aw.Put(Row{crow[0] + total, crow[1], crow[2], crow[3] + 1}))
		return nil
	})
	if err != nil {
		t.Fatalf("faulty delivery: %v", err)
	}

	vs, err := Check(b, sc)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	classes := classesOf(vs)
	if classes[ClassDelivery] == 0 {
		t.Fatalf("duplicated delivery not detected; violations: %v", vs)
	}
	if len(classes) != 1 {
		t.Fatalf("expected only %q violations, got %v", ClassDelivery, vs)
	}
}
