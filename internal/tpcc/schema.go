// Package tpcc implements TPC-C over the repository's transactional
// structures. The paper evaluates the subset of Section 6.1 — the newOrder
// and payment transactions in a 1:1 ratio, following Yu et al.'s DBx1000
// methodology — and that mix remains available (PaperMix). The full
// five-transaction set (delivery, orderStatus, stockLevel in addition) runs
// in the standard 45/43/4/4/4 ratio (FullMix) for the tpcc-full harness
// scenario, with Consistency-check identities from the TPC-C specification
// (clause 3.3.2) verifiable at any quiescent point via Check.
//
// Tables are ordered maps from packed uint64 keys to row handles. Rows are
// immutable [4]uint64 records in a lock-free append-only arena shared by
// all backends, so every backend (Medley, txMontage, OneFile, TDSL) pays
// the same indirection and the comparison isolates concurrency control, as
// in the paper's setup. Row updates replace the handle transactionally.
package tpcc

import "sync/atomic"

// Table indices.
const (
	TWarehouse = iota
	TDistrict
	TCustomer
	TItem
	TStock
	TOrder
	TNewOrder
	TOrderLine
	// TCustOrder maps a customer key to their most recent order id — the
	// index orderStatus needs (TPC-C finds a customer's last order; with
	// packed-key maps that lookup must be materialized at newOrder time).
	TCustOrder
	NumTables
)

// Key packing: fields are small per TPC-C scale rules.
// warehouse: w
// district:  w<<8 | d
// customer:  w<<24 | d<<16 | c
// item:      i
// stock:     w<<32 | i
// order:     w<<40 | d<<32 | o
// orderline: w<<48 | d<<40 | o<<8 | ol

// WarehouseKey packs a warehouse id.
func WarehouseKey(w uint64) uint64 { return w }

// DistrictKey packs (warehouse, district).
func DistrictKey(w, d uint64) uint64 { return w<<8 | d }

// CustomerKey packs (warehouse, district, customer).
func CustomerKey(w, d, c uint64) uint64 { return w<<24 | d<<16 | c }

// ItemKey packs an item id.
func ItemKey(i uint64) uint64 { return i }

// StockKey packs (warehouse, item).
func StockKey(w, i uint64) uint64 { return w<<32 | i }

// OrderKey packs (warehouse, district, order).
func OrderKey(w, d, o uint64) uint64 { return w<<40 | d<<32 | o }

// OrderLineKey packs (warehouse, district, order, line).
func OrderLineKey(w, d, o, ol uint64) uint64 { return w<<48 | d<<40 | o<<8 | ol }

// Row is a fixed-width immutable record; field meaning depends on table:
//
//	warehouse: [ytd, tax‰, 0, 0]
//	district:  [ytd, tax‰, nextOID, nextDeliveryOID]
//	customer:  [balance, ytdPayment, paymentCnt, deliveryCnt]
//	item:      [price, imID, 0, 0]
//	stock:     [quantity, ytd, orderCnt, remoteCnt]
//	order:     [customer, olCnt, entryDate, carrier]
//	neworder:  [0, 0, 0, 0]
//	orderline: [item, quantity, amount, supplyW]
//	custorder: [lastOID, 0, 0, 0]
//
// Monetary amounts are in cents. Customer balances wrap modulo 2^64
// (payments subtract, deliveries add); consistency checks compare them
// modulo 2^64 as well, matching unsigned arithmetic.
type Row [4]uint64

const (
	arenaMaxWorkers = 128
	arenaChunkBits  = 14
	arenaChunkSize  = 1 << arenaChunkBits
	arenaMaxChunks  = 1 << 12
)

type arenaChunk [arenaChunkSize]Row

// Arena is a lock-free append-only row store. Each worker appends only to
// its own lane; any worker may read any handle. Publication happens-before
// is provided by the transactional table stores that carry handles.
type Arena struct {
	lanes [arenaMaxWorkers][arenaMaxChunks]atomic.Pointer[arenaChunk]
	nextW atomic.Int64
}

// NewArena creates an empty arena.
func NewArena() *Arena { return &Arena{} }

// Writer returns an append lane for one worker goroutine.
func (a *Arena) Writer() *ArenaWriter {
	w := int(a.nextW.Add(1) - 1)
	if w >= arenaMaxWorkers {
		panic("tpcc: too many arena writers")
	}
	return &ArenaWriter{a: a, lane: w}
}

// Get resolves a handle to its row.
func (a *Arena) Get(h uint64) Row {
	lane := int(h >> 40)
	idx := h & (1<<40 - 1)
	chunk := a.lanes[lane][idx>>arenaChunkBits].Load()
	return chunk[idx&(arenaChunkSize-1)]
}

// ArenaWriter is a single goroutine's append lane.
type ArenaWriter struct {
	a    *Arena
	lane int
	n    uint64
}

// Put appends a row and returns its handle.
func (w *ArenaWriter) Put(r Row) uint64 {
	ci := w.n >> arenaChunkBits
	slot := &w.a.lanes[w.lane][ci]
	chunk := slot.Load()
	if chunk == nil {
		chunk = new(arenaChunk)
		slot.Store(chunk)
	}
	chunk[w.n&(arenaChunkSize-1)] = r
	h := uint64(w.lane)<<40 | w.n
	w.n++
	return h
}
