package tpcc

import (
	"sync"
	"testing"

	"medley/internal/montage"
	"medley/internal/onefile"
)

func smallScale() Scale {
	return Scale{Warehouses: 2, Districts: 2, Customers: 10, Items: 50}
}

func backends(t *testing.T) []Backend {
	t.Helper()
	mustKV := func(name, structure string, shards int) Backend {
		b, err := NewKVBackend(name, structure, shards)
		if err != nil {
			t.Fatalf("NewKVBackend(%s): %v", name, err)
		}
		return b
	}
	return []Backend{
		NewMedleyBackend(),
		mustKV("Medley-bst", "bst", 1),
		mustKV("Medley-hash-4shard", "hash", 4),
		NewMontageBackend(montage.NewSystem(montage.Config{RegionWords: 1 << 20})),
		NewOneFileBackend(onefile.New(), "OneFile"),
		NewTDSLBackend(),
	}
}

func TestLoadAllBackends(t *testing.T) {
	sc := smallScale()
	for _, b := range backends(t) {
		if err := Load(b, sc); err != nil {
			t.Fatalf("%s: load: %v", b.Name(), err)
		}
		w := b.NewWorker()
		err := w.Run(func(c Ctx) error {
			if _, ok := c.Get(TWarehouse, WarehouseKey(1)); !ok {
				t.Errorf("%s: warehouse 1 missing", b.Name())
			}
			if _, ok := c.Get(TDistrict, DistrictKey(2, 2)); !ok {
				t.Errorf("%s: district 2/2 missing", b.Name())
			}
			if _, ok := c.Get(TStock, StockKey(1, 50)); !ok {
				t.Errorf("%s: stock 1/50 missing", b.Name())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: verify: %v", b.Name(), err)
		}
	}
}

func TestNewOrderEffects(t *testing.T) {
	sc := smallScale()
	for _, b := range backends(t) {
		if err := Load(b, sc); err != nil {
			t.Fatalf("%s: load: %v", b.Name(), err)
		}
		w := b.NewWorker()
		items := []OrderItem{{Item: 1, SupplyW: 1, Qty: 3}, {Item: 2, SupplyW: 1, Qty: 5}}
		if err := NewOrder(w, 1, 1, 1, items); err != nil {
			t.Fatalf("%s: newOrder: %v", b.Name(), err)
		}
		err := w.Run(func(c Ctx) error {
			dh, _ := c.Get(TDistrict, DistrictKey(1, 1))
			if got := b.Arena().Get(dh)[2]; got != 2 {
				t.Errorf("%s: nextOID = %d, want 2", b.Name(), got)
			}
			if _, ok := c.Get(TOrder, OrderKey(1, 1, 1)); !ok {
				t.Errorf("%s: order row missing", b.Name())
			}
			if _, ok := c.Get(TNewOrder, OrderKey(1, 1, 1)); !ok {
				t.Errorf("%s: new-order row missing", b.Name())
			}
			if _, ok := c.Get(TOrderLine, OrderLineKey(1, 1, 1, 1)); !ok {
				t.Errorf("%s: order line missing", b.Name())
			}
			sh, _ := c.Get(TStock, StockKey(1, 1))
			if got := b.Arena().Get(sh)[2]; got != 1 {
				t.Errorf("%s: stock orderCnt = %d, want 1", b.Name(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: verify: %v", b.Name(), err)
		}
	}
}

func TestPaymentEffects(t *testing.T) {
	sc := smallScale()
	for _, b := range backends(t) {
		if err := Load(b, sc); err != nil {
			t.Fatalf("%s: load: %v", b.Name(), err)
		}
		w := b.NewWorker()
		if err := Payment(w, 1, 1, 1, 12345); err != nil {
			t.Fatalf("%s: payment: %v", b.Name(), err)
		}
		err := w.Run(func(c Ctx) error {
			wh, _ := c.Get(TWarehouse, WarehouseKey(1))
			if got := b.Arena().Get(wh)[0]; got != 30000000+12345 {
				t.Errorf("%s: warehouse ytd = %d", b.Name(), got)
			}
			ch, _ := c.Get(TCustomer, CustomerKey(1, 1, 1))
			crow := b.Arena().Get(ch)
			if crow[1] != 12345 || crow[2] != 1 {
				t.Errorf("%s: customer row = %v", b.Name(), crow)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: verify: %v", b.Name(), err)
		}
	}
}

// TestConcurrentMixConsistency runs the 1:1 mix concurrently on every
// backend and checks TPC-C's money/order-count invariants afterwards.
func TestConcurrentMixConsistency(t *testing.T) {
	sc := smallScale()
	iters := 150
	if testing.Short() {
		iters = 40
	}
	for _, b := range backends(t) {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			if err := Load(b, sc); err != nil {
				t.Fatalf("load: %v", err)
			}
			var wg sync.WaitGroup
			var mu sync.Mutex
			newOrders := 0
			payments := 0
			var paid uint64
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					d := NewDriver(b, sc, seed)
					localNO, localPay := 0, 0
					var localPaid uint64
					for i := 0; i < iters; i++ {
						kind, err := d.Step()
						if err != nil {
							t.Errorf("step: %v", err)
							return
						}
						if kind == TxNewOrder {
							localNO++
						} else {
							localPay++
						}
						_ = localPaid
					}
					mu.Lock()
					newOrders += localNO
					payments += localPay
					paid += localPaid
					mu.Unlock()
				}(int64(g) + 9)
			}
			wg.Wait()

			// Invariant 1: sum over districts of (nextOID - 1) == total
			// committed newOrder transactions.
			w := b.NewWorker()
			totalOrders := uint64(0)
			err := w.Run(func(c Ctx) error {
				totalOrders = 0
				for wh := 1; wh <= sc.Warehouses; wh++ {
					for d := 1; d <= sc.Districts; d++ {
						dh, ok := c.Get(TDistrict, DistrictKey(uint64(wh), uint64(d)))
						if !ok {
							t.Fatal("district missing")
						}
						totalOrders += b.Arena().Get(dh)[2] - 1
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if totalOrders != uint64(newOrders) {
				t.Fatalf("order ids allocated = %d, committed newOrders = %d", totalOrders, newOrders)
			}

			// Invariant 2: every allocated order id has order, new-order and
			// first order line rows.
			err = w.Run(func(c Ctx) error {
				for wh := 1; wh <= sc.Warehouses; wh++ {
					for d := 1; d <= sc.Districts; d++ {
						dh, _ := c.Get(TDistrict, DistrictKey(uint64(wh), uint64(d)))
						next := b.Arena().Get(dh)[2]
						for o := uint64(1); o < next; o++ {
							if _, ok := c.Get(TOrder, OrderKey(uint64(wh), uint64(d), o)); !ok {
								t.Fatalf("order %d/%d/%d missing", wh, d, o)
							}
							if _, ok := c.Get(TNewOrder, OrderKey(uint64(wh), uint64(d), o)); !ok {
								t.Fatalf("new-order %d/%d/%d missing", wh, d, o)
							}
							oh, _ := c.Get(TOrder, OrderKey(uint64(wh), uint64(d), o))
							olCnt := b.Arena().Get(oh)[1]
							for ol := uint64(0); ol < olCnt; ol++ {
								if _, ok := c.Get(TOrderLine, OrderLineKey(uint64(wh), uint64(d), o, ol)); !ok {
									t.Fatalf("order line %d/%d/%d/%d missing", wh, d, o, ol)
								}
							}
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("verify2: %v", err)
			}

			// Invariant 3: warehouse ytd - initial == sum of district ytd
			// deltas (payments applied atomically).
			err = w.Run(func(c Ctx) error {
				for wh := 1; wh <= sc.Warehouses; wh++ {
					whh, _ := c.Get(TWarehouse, WarehouseKey(uint64(wh)))
					wytd := b.Arena().Get(whh)[0] - 30000000
					var dsum uint64
					for d := 1; d <= sc.Districts; d++ {
						dhh, _ := c.Get(TDistrict, DistrictKey(uint64(wh), uint64(d)))
						dsum += b.Arena().Get(dhh)[0] - 3000000
					}
					if wytd != dsum {
						t.Fatalf("warehouse %d ytd delta %d != district sum %d", wh, wytd, dsum)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("verify3: %v", err)
			}
		})
	}
}

func TestMontageTPCCDurability(t *testing.T) {
	sc := Scale{Warehouses: 1, Districts: 2, Customers: 5, Items: 20}
	sys := montage.NewSystem(montage.Config{RegionWords: 1 << 20})
	b := NewMontageBackend(sys)
	if err := Load(b, sc); err != nil {
		t.Fatalf("load: %v", err)
	}
	w := b.NewWorker()
	if err := NewOrder(w, 1, 1, 1, []OrderItem{{Item: 1, SupplyW: 1, Qty: 2}}); err != nil {
		t.Fatalf("newOrder: %v", err)
	}
	sys.Sync()
	rec := sys.CrashAndRecover()
	// Count of live payloads: every table row that should exist.
	// 20 items + 1 warehouse + 2 districts + 10 customers + 20 stock +
	// 1 order + 1 neworder + 1 orderline + 1 custorder = 57.
	want := 20 + 1 + 2 + 10 + 20 + 1 + 1 + 1 + 1
	if len(rec) != want {
		t.Fatalf("recovered %d payloads, want %d", len(rec), want)
	}
}
