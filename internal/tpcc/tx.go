package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
)

// Scale holds the (scaled-down) TPC-C cardinalities.
type Scale struct {
	Warehouses int
	Districts  int // per warehouse (TPC-C: 10)
	Customers  int // per district (TPC-C: 3000)
	Items      int // (TPC-C: 100000)
}

// DefaultScale is a laptop-scale configuration preserving the TPC-C access
// skew structure (per-district sequences, per-warehouse stock).
func DefaultScale() Scale {
	return Scale{Warehouses: 4, Districts: 10, Customers: 100, Items: 1000}
}

// errRowMissing indicates a corrupted load; it aborts without retry.
var errRowMissing = errors.New("tpcc: row missing")

// Load populates the database per TPC-C's initial state.
func Load(b Backend, sc Scale) error {
	w := b.NewWorker()
	aw := w.Writer()
	// Items (shared, read-only).
	for i := 1; i <= sc.Items; i++ {
		h := aw.Put(Row{uint64(100 + i%9900), uint64(i), 0, 0}) // price cents
		key := ItemKey(uint64(i))
		if err := w.Run(func(c Ctx) error { c.Put(TItem, key, h); return nil }); err != nil {
			return err
		}
	}
	for wh := 1; wh <= sc.Warehouses; wh++ {
		whu := uint64(wh)
		h := aw.Put(Row{30000000, 100, 0, 0})
		if err := w.Run(func(c Ctx) error { c.Put(TWarehouse, WarehouseKey(whu), h); return nil }); err != nil {
			return err
		}
		for d := 1; d <= sc.Districts; d++ {
			du := uint64(d)
			dh := aw.Put(Row{3000000, 150, 1, 0}) // nextOID = 1
			if err := w.Run(func(c Ctx) error { c.Put(TDistrict, DistrictKey(whu, du), dh); return nil }); err != nil {
				return err
			}
			for cst := 1; cst <= sc.Customers; cst++ {
				cu := uint64(cst)
				ch := aw.Put(Row{0, 0, 0, 0})
				if err := w.Run(func(c Ctx) error {
					c.Put(TCustomer, CustomerKey(whu, du, cu), ch)
					return nil
				}); err != nil {
					return err
				}
			}
		}
		for i := 1; i <= sc.Items; i++ {
			iu := uint64(i)
			sh := aw.Put(Row{uint64(10 + i%91), 0, 0, 0})
			if err := w.Run(func(c Ctx) error { c.Put(TStock, StockKey(whu, iu), sh); return nil }); err != nil {
				return err
			}
		}
	}
	return nil
}

// OrderItem is one line of a newOrder request.
type OrderItem struct {
	Item    uint64
	SupplyW uint64
	Qty     uint64
}

// NewOrder executes the TPC-C newOrder transaction: allocate the district's
// next order id, create the order and its new-order entry, and for each
// line read the item, update the stock, and create the order line.
func NewOrder(w Worker, whID, dID, cID uint64, items []OrderItem) error {
	aw := w.Writer()
	return w.Run(func(c Ctx) error {
		dk := DistrictKey(whID, dID)
		dh, ok := c.Get(TDistrict, dk)
		if !ok {
			return fmt.Errorf("%w: district %d/%d", errRowMissing, whID, dID)
		}
		drow := dRow(c, dh)
		oid := drow[2]
		c.Put(TDistrict, dk, aw.Put(Row{drow[0], drow[1], oid + 1, 0}))

		if _, ok := c.Get(TWarehouse, WarehouseKey(whID)); !ok {
			return fmt.Errorf("%w: warehouse %d", errRowMissing, whID)
		}
		if _, ok := c.Get(TCustomer, CustomerKey(whID, dID, cID)); !ok {
			return fmt.Errorf("%w: customer %d", errRowMissing, cID)
		}

		c.Insert(TOrder, OrderKey(whID, dID, oid),
			aw.Put(Row{cID, uint64(len(items)), 0, 0}))
		c.Insert(TNewOrder, OrderKey(whID, dID, oid), aw.Put(Row{}))

		for ol, it := range items {
			ih, ok := c.Get(TItem, ItemKey(it.Item))
			if !ok {
				return fmt.Errorf("%w: item %d", errRowMissing, it.Item)
			}
			price := rowField(c, ih, 0)
			sk := StockKey(it.SupplyW, it.Item)
			sh, ok := c.Get(TStock, sk)
			if !ok {
				return fmt.Errorf("%w: stock %d/%d", errRowMissing, it.SupplyW, it.Item)
			}
			srow := dRow(c, sh)
			qty := srow[0]
			if qty >= it.Qty+10 {
				qty -= it.Qty
			} else {
				qty = qty + 91 - it.Qty
			}
			remote := srow[3]
			if it.SupplyW != whID {
				remote++
			}
			c.Put(TStock, sk, aw.Put(Row{qty, srow[1] + it.Qty, srow[2] + 1, remote}))
			amount := it.Qty * price
			c.Insert(TOrderLine, OrderLineKey(whID, dID, oid, uint64(ol)),
				aw.Put(Row{it.Item, it.Qty, amount, it.SupplyW}))
		}
		return nil
	})
}

// Payment executes the TPC-C payment transaction: update warehouse and
// district year-to-date totals and the customer's balance.
func Payment(w Worker, whID, dID, cID uint64, amount uint64) error {
	aw := w.Writer()
	return w.Run(func(c Ctx) error {
		wk := WarehouseKey(whID)
		wh, ok := c.Get(TWarehouse, wk)
		if !ok {
			return fmt.Errorf("%w: warehouse %d", errRowMissing, whID)
		}
		wrow := dRow(c, wh)
		c.Put(TWarehouse, wk, aw.Put(Row{wrow[0] + amount, wrow[1], 0, 0}))

		dk := DistrictKey(whID, dID)
		dh, ok := c.Get(TDistrict, dk)
		if !ok {
			return fmt.Errorf("%w: district %d/%d", errRowMissing, whID, dID)
		}
		drow := dRow(c, dh)
		c.Put(TDistrict, dk, aw.Put(Row{drow[0] + amount, drow[1], drow[2], 0}))

		ck := CustomerKey(whID, dID, cID)
		ch, ok := c.Get(TCustomer, ck)
		if !ok {
			return fmt.Errorf("%w: customer %d", errRowMissing, cID)
		}
		crow := dRow(c, ch)
		c.Put(TCustomer, ck, aw.Put(Row{crow[0] - amount, crow[1] + amount, crow[2] + 1, 0}))
		return nil
	})
}

// ctxArena recovers the arena through the worker-bound Ctx implementations;
// each Ctx here is also its Worker, so expose helpers instead.
func dRow(c Ctx, h uint64) Row { return arenaOf(c).Get(h) }

func rowField(c Ctx, h uint64, f int) uint64 { return arenaOf(c).Get(h)[f] }

func arenaOf(c Ctx) *Arena {
	switch w := c.(type) {
	case *kvTpccWorker:
		return w.arena
	case *montageWorker:
		return w.b.arena
	case *onefileWorker:
		return w.b.arena
	case *tdslWorker:
		return w.b.arena
	default:
		panic("tpcc: unknown ctx")
	}
}

// Driver generates the paper's transaction mix: newOrder and payment 1:1.
type Driver struct {
	sc  Scale
	rng *rand.Rand
	w   Worker
}

// NewDriver creates a per-goroutine driver.
func NewDriver(b Backend, sc Scale, seed int64) *Driver {
	return &Driver{sc: sc, rng: rand.New(rand.NewSource(seed)), w: b.NewWorker()}
}

// Step runs one transaction of the 1:1 mix and reports which kind ran.
func (d *Driver) Step() (isNewOrder bool, err error) {
	whID := uint64(d.rng.Intn(d.sc.Warehouses) + 1)
	dID := uint64(d.rng.Intn(d.sc.Districts) + 1)
	cID := uint64(d.rng.Intn(d.sc.Customers) + 1)
	if d.rng.Intn(2) == 0 {
		n := d.rng.Intn(11) + 5 // 5..15 lines per TPC-C
		items := make([]OrderItem, n)
		seen := map[uint64]bool{}
		for i := range items {
			it := uint64(d.rng.Intn(d.sc.Items) + 1)
			for seen[it] {
				it = uint64(d.rng.Intn(d.sc.Items) + 1)
			}
			seen[it] = true
			sw := whID
			if d.sc.Warehouses > 1 && d.rng.Intn(100) == 0 { // 1% remote
				for {
					sw = uint64(d.rng.Intn(d.sc.Warehouses) + 1)
					if sw != whID {
						break
					}
				}
			}
			items[i] = OrderItem{Item: it, SupplyW: sw, Qty: uint64(d.rng.Intn(10) + 1)}
		}
		return true, NewOrder(d.w, whID, dID, cID, items)
	}
	amount := uint64(d.rng.Intn(500000) + 100)
	return false, Payment(d.w, whID, dID, cID, amount)
}
