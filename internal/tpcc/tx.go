package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
)

// Scale holds the (scaled-down) TPC-C cardinalities.
type Scale struct {
	Warehouses int
	Districts  int // per warehouse (TPC-C: 10)
	Customers  int // per district (TPC-C: 3000)
	Items      int // (TPC-C: 100000)
}

// DefaultScale is a laptop-scale configuration preserving the TPC-C access
// skew structure (per-district sequences, per-warehouse stock).
func DefaultScale() Scale {
	return Scale{Warehouses: 4, Districts: 10, Customers: 100, Items: 1000}
}

// errRowMissing indicates a corrupted load; it aborts without retry.
var errRowMissing = errors.New("tpcc: row missing")

// Initial year-to-date totals loaded per TPC-C (cents). The consistency
// checks subtract these to recover the sum of committed payments.
const (
	InitWarehouseYTD = 30000000
	InitDistrictYTD  = 3000000
)

// Load populates the database per TPC-C's initial state.
func Load(b Backend, sc Scale) error {
	w := b.NewWorker()
	aw := w.Writer()
	// Items (shared, read-only).
	for i := 1; i <= sc.Items; i++ {
		h := aw.Put(Row{uint64(100 + i%9900), uint64(i), 0, 0}) // price cents
		key := ItemKey(uint64(i))
		if err := w.Run(func(c Ctx) error { c.Put(TItem, key, h); return nil }); err != nil {
			return err
		}
	}
	for wh := 1; wh <= sc.Warehouses; wh++ {
		whu := uint64(wh)
		h := aw.Put(Row{InitWarehouseYTD, 100, 0, 0})
		if err := w.Run(func(c Ctx) error { c.Put(TWarehouse, WarehouseKey(whu), h); return nil }); err != nil {
			return err
		}
		for d := 1; d <= sc.Districts; d++ {
			du := uint64(d)
			dh := aw.Put(Row{InitDistrictYTD, 150, 1, 1}) // nextOID = nextDeliveryOID = 1
			if err := w.Run(func(c Ctx) error { c.Put(TDistrict, DistrictKey(whu, du), dh); return nil }); err != nil {
				return err
			}
			for cst := 1; cst <= sc.Customers; cst++ {
				cu := uint64(cst)
				ch := aw.Put(Row{0, 0, 0, 0})
				if err := w.Run(func(c Ctx) error {
					c.Put(TCustomer, CustomerKey(whu, du, cu), ch)
					return nil
				}); err != nil {
					return err
				}
			}
		}
		for i := 1; i <= sc.Items; i++ {
			iu := uint64(i)
			sh := aw.Put(Row{uint64(10 + i%91), 0, 0, 0})
			if err := w.Run(func(c Ctx) error { c.Put(TStock, StockKey(whu, iu), sh); return nil }); err != nil {
				return err
			}
		}
	}
	return nil
}

// OrderItem is one line of a newOrder request.
type OrderItem struct {
	Item    uint64
	SupplyW uint64
	Qty     uint64
}

// NewOrder executes the TPC-C newOrder transaction: allocate the district's
// next order id, create the order and its new-order entry, and for each
// line read the item, update the stock, and create the order line.
func NewOrder(w Worker, whID, dID, cID uint64, items []OrderItem) error {
	aw := w.Writer()
	return w.Run(func(c Ctx) error {
		dk := DistrictKey(whID, dID)
		dh, ok := c.Get(TDistrict, dk)
		if !ok {
			return fmt.Errorf("%w: district %d/%d", errRowMissing, whID, dID)
		}
		drow := dRow(c, dh)
		oid := drow[2]
		c.Put(TDistrict, dk, aw.Put(Row{drow[0], drow[1], oid + 1, drow[3]}))

		if _, ok := c.Get(TWarehouse, WarehouseKey(whID)); !ok {
			return fmt.Errorf("%w: warehouse %d", errRowMissing, whID)
		}
		if _, ok := c.Get(TCustomer, CustomerKey(whID, dID, cID)); !ok {
			return fmt.Errorf("%w: customer %d", errRowMissing, cID)
		}

		c.Insert(TOrder, OrderKey(whID, dID, oid),
			aw.Put(Row{cID, uint64(len(items)), 0, 0}))
		c.Insert(TNewOrder, OrderKey(whID, dID, oid), aw.Put(Row{}))
		c.Put(TCustOrder, CustomerKey(whID, dID, cID), aw.Put(Row{oid, 0, 0, 0}))

		for ol, it := range items {
			ih, ok := c.Get(TItem, ItemKey(it.Item))
			if !ok {
				return fmt.Errorf("%w: item %d", errRowMissing, it.Item)
			}
			price := rowField(c, ih, 0)
			sk := StockKey(it.SupplyW, it.Item)
			sh, ok := c.Get(TStock, sk)
			if !ok {
				return fmt.Errorf("%w: stock %d/%d", errRowMissing, it.SupplyW, it.Item)
			}
			srow := dRow(c, sh)
			qty := srow[0]
			if qty >= it.Qty+10 {
				qty -= it.Qty
			} else {
				qty = qty + 91 - it.Qty
			}
			remote := srow[3]
			if it.SupplyW != whID {
				remote++
			}
			c.Put(TStock, sk, aw.Put(Row{qty, srow[1] + it.Qty, srow[2] + 1, remote}))
			amount := it.Qty * price
			c.Insert(TOrderLine, OrderLineKey(whID, dID, oid, uint64(ol)),
				aw.Put(Row{it.Item, it.Qty, amount, it.SupplyW}))
		}
		return nil
	})
}

// Payment executes the TPC-C payment transaction: update warehouse and
// district year-to-date totals and the customer's balance.
func Payment(w Worker, whID, dID, cID uint64, amount uint64) error {
	aw := w.Writer()
	return w.Run(func(c Ctx) error {
		wk := WarehouseKey(whID)
		wh, ok := c.Get(TWarehouse, wk)
		if !ok {
			return fmt.Errorf("%w: warehouse %d", errRowMissing, whID)
		}
		wrow := dRow(c, wh)
		c.Put(TWarehouse, wk, aw.Put(Row{wrow[0] + amount, wrow[1], 0, 0}))

		dk := DistrictKey(whID, dID)
		dh, ok := c.Get(TDistrict, dk)
		if !ok {
			return fmt.Errorf("%w: district %d/%d", errRowMissing, whID, dID)
		}
		drow := dRow(c, dh)
		c.Put(TDistrict, dk, aw.Put(Row{drow[0] + amount, drow[1], drow[2], drow[3]}))

		ck := CustomerKey(whID, dID, cID)
		ch, ok := c.Get(TCustomer, ck)
		if !ok {
			return fmt.Errorf("%w: customer %d", errRowMissing, cID)
		}
		crow := dRow(c, ch)
		c.Put(TCustomer, ck, aw.Put(Row{crow[0] - amount, crow[1] + amount, crow[2] + 1, crow[3]}))
		return nil
	})
}

// Delivery executes the TPC-C delivery transaction for one warehouse: in a
// single atomic transaction it delivers the oldest undelivered order in each
// of the warehouse's districts — removing its new-order entry, stamping the
// order with the carrier, crediting the order's total amount to the
// customer's balance, and advancing the district's delivery cursor. It
// returns how many districts had an order to deliver.
func Delivery(w Worker, districts int, whID, carrier uint64) (int, error) {
	aw := w.Writer()
	delivered := 0
	err := w.Run(func(c Ctx) error {
		delivered = 0
		for d := 1; d <= districts; d++ {
			dID := uint64(d)
			dk := DistrictKey(whID, dID)
			dh, ok := c.Get(TDistrict, dk)
			if !ok {
				return fmt.Errorf("%w: district %d/%d", errRowMissing, whID, dID)
			}
			drow := dRow(c, dh)
			oid := drow[3]
			if oid >= drow[2] { // nothing undelivered in this district
				continue
			}
			ok = c.Remove(TNewOrder, OrderKey(whID, dID, oid))
			if !ok {
				return fmt.Errorf("%w: new-order %d/%d/%d", errRowMissing, whID, dID, oid)
			}
			oh, ok := c.Get(TOrder, OrderKey(whID, dID, oid))
			if !ok {
				return fmt.Errorf("%w: order %d/%d/%d", errRowMissing, whID, dID, oid)
			}
			orow := dRow(c, oh)
			var total uint64
			for ol := uint64(0); ol < orow[1]; ol++ {
				lh, ok := c.Get(TOrderLine, OrderLineKey(whID, dID, oid, ol))
				if !ok {
					return fmt.Errorf("%w: order line %d/%d/%d/%d", errRowMissing, whID, dID, oid, ol)
				}
				total += rowField(c, lh, 2)
			}
			c.Put(TOrder, OrderKey(whID, dID, oid),
				aw.Put(Row{orow[0], orow[1], orow[2], carrier}))
			ck := CustomerKey(whID, dID, orow[0])
			ch, ok := c.Get(TCustomer, ck)
			if !ok {
				return fmt.Errorf("%w: customer %d/%d/%d", errRowMissing, whID, dID, orow[0])
			}
			crow := dRow(c, ch)
			c.Put(TCustomer, ck, aw.Put(Row{crow[0] + total, crow[1], crow[2], crow[3] + 1}))
			c.Put(TDistrict, dk, aw.Put(Row{drow[0], drow[1], drow[2], oid + 1}))
			delivered++
		}
		return nil
	})
	return delivered, err
}

// OrderStatusResult is what the orderStatus transaction read.
type OrderStatusResult struct {
	Balance uint64
	LastOID uint64 // 0 when the customer has never ordered
	Lines   int
}

// OrderStatus executes the read-only TPC-C orderStatus transaction: report
// a customer's balance and the line items of their most recent order.
func OrderStatus(w Worker, whID, dID, cID uint64) (OrderStatusResult, error) {
	var res OrderStatusResult
	err := w.Run(func(c Ctx) error {
		res = OrderStatusResult{}
		ch, ok := c.Get(TCustomer, CustomerKey(whID, dID, cID))
		if !ok {
			return fmt.Errorf("%w: customer %d/%d/%d", errRowMissing, whID, dID, cID)
		}
		res.Balance = dRow(c, ch)[0]
		loh, ok := c.Get(TCustOrder, CustomerKey(whID, dID, cID))
		if !ok {
			return nil // no order yet
		}
		oid := dRow(c, loh)[0]
		res.LastOID = oid
		oh, ok := c.Get(TOrder, OrderKey(whID, dID, oid))
		if !ok {
			return fmt.Errorf("%w: order %d/%d/%d", errRowMissing, whID, dID, oid)
		}
		olCnt := dRow(c, oh)[1]
		for ol := uint64(0); ol < olCnt; ol++ {
			if _, ok := c.Get(TOrderLine, OrderLineKey(whID, dID, oid, ol)); !ok {
				return fmt.Errorf("%w: order line %d/%d/%d/%d", errRowMissing, whID, dID, oid, ol)
			}
			res.Lines++
		}
		return nil
	})
	return res, err
}

// StockLevel executes the read-only TPC-C stockLevel transaction: over the
// district's most recent orders (up to the standard 20), count distinct
// items whose stock quantity is below threshold.
func StockLevel(w Worker, whID, dID, threshold uint64) (int, error) {
	low := 0
	err := w.Run(func(c Ctx) error {
		low = 0
		dh, ok := c.Get(TDistrict, DistrictKey(whID, dID))
		if !ok {
			return fmt.Errorf("%w: district %d/%d", errRowMissing, whID, dID)
		}
		next := dRow(c, dh)[2]
		first := uint64(1)
		if next > 21 {
			first = next - 20
		}
		seen := make(map[uint64]bool)
		for oid := first; oid < next; oid++ {
			oh, ok := c.Get(TOrder, OrderKey(whID, dID, oid))
			if !ok {
				return fmt.Errorf("%w: order %d/%d/%d", errRowMissing, whID, dID, oid)
			}
			olCnt := dRow(c, oh)[1]
			for ol := uint64(0); ol < olCnt; ol++ {
				lh, ok := c.Get(TOrderLine, OrderLineKey(whID, dID, oid, ol))
				if !ok {
					return fmt.Errorf("%w: order line %d/%d/%d/%d", errRowMissing, whID, dID, oid, ol)
				}
				item := rowField(c, lh, 0)
				if seen[item] {
					continue
				}
				seen[item] = true
				sh, ok := c.Get(TStock, StockKey(whID, item))
				if !ok {
					return fmt.Errorf("%w: stock %d/%d", errRowMissing, whID, item)
				}
				if rowField(c, sh, 0) < threshold {
					low++
				}
			}
		}
		return nil
	})
	return low, err
}

// ctxArena recovers the arena through the worker-bound Ctx implementations;
// each Ctx here is also its Worker, so expose helpers instead.
func dRow(c Ctx, h uint64) Row { return arenaOf(c).Get(h) }

func rowField(c Ctx, h uint64, f int) uint64 { return arenaOf(c).Get(h)[f] }

func arenaOf(c Ctx) *Arena {
	switch w := c.(type) {
	case *kvTpccWorker:
		return w.arena
	case *montageWorker:
		return w.b.arena
	case *onefileWorker:
		return w.b.arena
	case *tdslWorker:
		return w.b.arena
	default:
		panic("tpcc: unknown ctx")
	}
}

// TxKind identifies one of the five TPC-C transaction types.
type TxKind int

// The five TPC-C transaction kinds, in mix order.
const (
	TxNewOrder TxKind = iota
	TxPayment
	TxDelivery
	TxOrderStatus
	TxStockLevel
	NumTxKinds
)

var txKindNames = [NumTxKinds]string{
	"newOrder", "payment", "delivery", "orderStatus", "stockLevel",
}

// String returns the transaction's TPC-C name.
func (k TxKind) String() string {
	if k < 0 || k >= NumTxKinds {
		return "unknown"
	}
	return txKindNames[k]
}

// MixWeights is the relative frequency of each transaction kind.
type MixWeights [NumTxKinds]int

// PaperMix is the paper's Section 6.1 mix: newOrder and payment 1:1,
// following the DBx1000 methodology.
func PaperMix() MixWeights { return MixWeights{50, 50, 0, 0, 0} }

// FullMix is the standard TPC-C mix over all five transactions.
func FullMix() MixWeights { return MixWeights{45, 43, 4, 4, 4} }

// Driver generates a TPC-C transaction mix on one worker goroutine.
type Driver struct {
	sc    Scale
	rng   *rand.Rand
	w     Worker
	mix   MixWeights
	total int
}

// NewDriver creates a per-goroutine driver running the paper's 1:1 mix.
func NewDriver(b Backend, sc Scale, seed int64) *Driver {
	return NewMixDriver(b, sc, seed, PaperMix())
}

// NewMixDriver creates a per-goroutine driver with an explicit mix.
func NewMixDriver(b Backend, sc Scale, seed int64, mix MixWeights) *Driver {
	total := 0
	for _, w := range mix {
		if w < 0 {
			panic("tpcc: negative mix weight")
		}
		total += w
	}
	if total == 0 {
		panic("tpcc: empty mix")
	}
	return &Driver{sc: sc, rng: rand.New(rand.NewSource(seed)), w: b.NewWorker(), mix: mix, total: total}
}

// Worker exposes the driver's worker, e.g. for StatsWorker assertions.
func (d *Driver) Worker() Worker { return d.w }

func (d *Driver) pick() TxKind {
	n := d.rng.Intn(d.total)
	for k, w := range d.mix {
		if n < w {
			return TxKind(k)
		}
		n -= w
	}
	panic("unreachable")
}

// Step runs one transaction of the mix and reports which kind ran.
func (d *Driver) Step() (TxKind, error) {
	kind := d.pick()
	whID := uint64(d.rng.Intn(d.sc.Warehouses) + 1)
	dID := uint64(d.rng.Intn(d.sc.Districts) + 1)
	cID := uint64(d.rng.Intn(d.sc.Customers) + 1)
	switch kind {
	case TxNewOrder:
		n := d.rng.Intn(11) + 5 // 5..15 lines per TPC-C
		items := make([]OrderItem, n)
		seen := map[uint64]bool{}
		for i := range items {
			it := uint64(d.rng.Intn(d.sc.Items) + 1)
			for seen[it] {
				it = uint64(d.rng.Intn(d.sc.Items) + 1)
			}
			seen[it] = true
			sw := whID
			if d.sc.Warehouses > 1 && d.rng.Intn(100) == 0 { // 1% remote
				for {
					sw = uint64(d.rng.Intn(d.sc.Warehouses) + 1)
					if sw != whID {
						break
					}
				}
			}
			items[i] = OrderItem{Item: it, SupplyW: sw, Qty: uint64(d.rng.Intn(10) + 1)}
		}
		return TxNewOrder, NewOrder(d.w, whID, dID, cID, items)
	case TxPayment:
		amount := uint64(d.rng.Intn(500000) + 100)
		return TxPayment, Payment(d.w, whID, dID, cID, amount)
	case TxDelivery:
		carrier := uint64(d.rng.Intn(10) + 1)
		_, err := Delivery(d.w, d.sc.Districts, whID, carrier)
		return TxDelivery, err
	case TxOrderStatus:
		_, err := OrderStatus(d.w, whID, dID, cID)
		return TxOrderStatus, err
	default:
		threshold := uint64(d.rng.Intn(11) + 10) // 10..20 per TPC-C
		_, err := StockLevel(d.w, whID, dID, threshold)
		return TxStockLevel, err
	}
}
