package tpcc

import "fmt"

// Violation classes reported by Check, mirroring the TPC-C consistency
// conditions (clause 3.3.2) the harness verifies:
//
//	money:    W_YTD − init == Σ (D_YTD − init) over the warehouse's districts
//	          (conditions 1–2: payments apply atomically to both levels).
//	orders:   every allocated order id has an order row, exactly olCnt order
//	          lines, and a new-order entry iff it is not yet delivered
//	          (conditions 3–7: id sequences and row-count identities).
//	delivery: customer balance == Σ delivered order amounts − ytdPayment
//	          (mod 2^64), delivery counts match delivered orders, and
//	          carrier ids are set exactly on delivered orders
//	          (conditions 8–12 restricted to the fields this schema keeps).
const (
	ClassMoney    = "money"
	ClassOrders   = "orders"
	ClassDelivery = "delivery"
)

// Violation is one failed consistency condition.
type Violation struct {
	Class  string
	Detail string
}

func (v Violation) String() string { return v.Class + ": " + v.Detail }

// Check verifies the TPC-C consistency conditions over the whole database.
// It runs one read-dominant transaction per warehouse, so it is exact at any
// quiescent point (harness phase barriers) and still safe, if abort-prone,
// under concurrent load. The returned error reports a broken execution
// (e.g. an unreachable row), not a failed condition.
func Check(b Backend, sc Scale) ([]Violation, error) {
	w := b.NewWorker()
	var out []Violation
	for wh := 1; wh <= sc.Warehouses; wh++ {
		vs, err := checkWarehouse(w, sc, uint64(wh))
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

// custAgg accumulates delivered-order effects per customer key.
type custAgg struct {
	sum uint64
	cnt uint64
}

func checkWarehouse(w Worker, sc Scale, whu uint64) ([]Violation, error) {
	var vs []Violation
	err := w.Run(func(c Ctx) error {
		vs = vs[:0] // retry-safe: restart collection on concurrency aborts
		delivered := make(map[uint64]custAgg)

		whh, ok := c.Get(TWarehouse, WarehouseKey(whu))
		if !ok {
			return fmt.Errorf("%w: warehouse %d", errRowMissing, whu)
		}
		wytd := dRow(c, whh)[0] - InitWarehouseYTD
		var dsum uint64
		for d := 1; d <= sc.Districts; d++ {
			du := uint64(d)
			dh, ok := c.Get(TDistrict, DistrictKey(whu, du))
			if !ok {
				return fmt.Errorf("%w: district %d/%d", errRowMissing, whu, du)
			}
			drow := dRow(c, dh)
			dsum += drow[0] - InitDistrictYTD
			next, dnext := drow[2], drow[3]
			if dnext > next {
				vs = append(vs, Violation{ClassDelivery, fmt.Sprintf(
					"district %d/%d delivery cursor %d beyond nextOID %d", whu, du, dnext, next)})
			}
			for oid := uint64(1); oid < next; oid++ {
				oh, ok := c.Get(TOrder, OrderKey(whu, du, oid))
				if !ok {
					vs = append(vs, Violation{ClassOrders, fmt.Sprintf(
						"order %d/%d/%d missing", whu, du, oid)})
					continue
				}
				orow := dRow(c, oh)
				olCnt := orow[1]
				var total uint64
				for ol := uint64(0); ol < olCnt; ol++ {
					lh, ok := c.Get(TOrderLine, OrderLineKey(whu, du, oid, ol))
					if !ok {
						vs = append(vs, Violation{ClassOrders, fmt.Sprintf(
							"order line %d/%d/%d/%d missing", whu, du, oid, ol)})
						continue
					}
					total += rowField(c, lh, 2)
				}
				if _, ok := c.Get(TOrderLine, OrderLineKey(whu, du, oid, olCnt)); ok {
					vs = append(vs, Violation{ClassOrders, fmt.Sprintf(
						"order %d/%d/%d has surplus line %d", whu, du, oid, olCnt)})
				}
				_, hasNO := c.Get(TNewOrder, OrderKey(whu, du, oid))
				isDelivered := oid < dnext
				if hasNO == isDelivered {
					vs = append(vs, Violation{ClassOrders, fmt.Sprintf(
						"order %d/%d/%d delivered=%v but new-order present=%v",
						whu, du, oid, isDelivered, hasNO)})
				}
				if isDelivered {
					if orow[3] == 0 {
						vs = append(vs, Violation{ClassDelivery, fmt.Sprintf(
							"delivered order %d/%d/%d has no carrier", whu, du, oid)})
					}
					ck := CustomerKey(whu, du, orow[0])
					agg := delivered[ck]
					agg.sum += total
					agg.cnt++
					delivered[ck] = agg
				} else if orow[3] != 0 {
					vs = append(vs, Violation{ClassDelivery, fmt.Sprintf(
						"undelivered order %d/%d/%d has carrier %d", whu, du, oid, orow[3])})
				}
			}
		}
		if wytd != dsum {
			vs = append(vs, Violation{ClassMoney, fmt.Sprintf(
				"warehouse %d ytd delta %d != district sum %d", whu, wytd, dsum)})
		}

		for d := 1; d <= sc.Districts; d++ {
			du := uint64(d)
			for cst := 1; cst <= sc.Customers; cst++ {
				ck := CustomerKey(whu, du, uint64(cst))
				ch, ok := c.Get(TCustomer, ck)
				if !ok {
					return fmt.Errorf("%w: customer %d/%d/%d", errRowMissing, whu, du, cst)
				}
				crow := dRow(c, ch)
				agg := delivered[ck]
				// Unsigned arithmetic wraps; the identity holds mod 2^64.
				if crow[0] != agg.sum-crow[1] {
					vs = append(vs, Violation{ClassDelivery, fmt.Sprintf(
						"customer %d/%d/%d balance %d != delivered %d - payments %d",
						whu, du, cst, crow[0], agg.sum, crow[1])})
				}
				if crow[3] != agg.cnt {
					vs = append(vs, Violation{ClassDelivery, fmt.Sprintf(
						"customer %d/%d/%d deliveryCnt %d != delivered orders %d",
						whu, du, cst, crow[3], agg.cnt)})
				}
			}
		}
		return nil
	})
	return vs, err
}
