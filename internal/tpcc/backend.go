package tpcc

import (
	"time"

	"medley/internal/core"
	"medley/internal/kv"
	"medley/internal/montage"
	"medley/internal/onefile"
	"medley/internal/structures/fraserskip"
	"medley/internal/tdsl"
)

// Ctx is the per-transaction view of the database handed to transaction
// bodies: get/put/insert/remove of row handles on the numbered tables.
type Ctx interface {
	Get(table int, key uint64) (uint64, bool)
	Put(table int, key uint64, handle uint64)
	Insert(table int, key uint64, handle uint64) bool
	Remove(table int, key uint64) bool
}

// Worker is a per-goroutine execution context.
type Worker interface {
	// Run executes body atomically, retrying on concurrency-control
	// aborts. A non-nil error from body aborts without retry and is
	// returned.
	Run(body func(Ctx) error) error
	// Writer is this worker's arena lane.
	Writer() *ArenaWriter
}

// StatsWorker is implemented by workers whose backend can attribute
// transaction commits and aborts to this worker alone; consecutive
// snapshots can be differenced to charge retries to individual driver
// steps.
type StatsWorker interface {
	TxStats() core.Stats
}

// Backend is one concurrency-control system under test.
type Backend interface {
	Name() string
	NewWorker() Worker
	Arena() *Arena
}

// ------------------------------------------------- Medley (any kv.TxMap)

// KVBackend runs TPC-C on any registry structure: one kv.TxMap per table,
// all under a single TxManager, so every TPC-C transaction is one Medley
// transaction whatever the structure choice — including hash-partitioned
// tables, whose cross-shard reads and writes stay strictly serializable
// for free.
type KVBackend struct {
	name   string
	mgr    *core.TxManager
	tables [NumTables]kv.TxMap
	arena  *Arena
}

// NewKVBackend creates a backend whose tables are the named registry
// structure, partitioned over shards instances per table when shards > 1.
func NewKVBackend(name, structure string, shards int) (*KVBackend, error) {
	b := &KVBackend{name: name, mgr: core.NewTxManager(), arena: NewArena()}
	for i := range b.tables {
		s, err := kv.NewShardedNamed(structure, shards, kv.Options{Mgr: b.mgr, Buckets: 1 << 16})
		if err != nil {
			return nil, err
		}
		if s.ShardCount() == 1 {
			b.tables[i] = s.Shard(0)
		} else {
			b.tables[i] = s
		}
	}
	return b, nil
}

// NewMedleyBackend creates the paper's Figure 9 Medley configuration
// (NBTC-transformed Fraser skiplists), expressed through the registry.
func NewMedleyBackend() *KVBackend {
	b, err := NewKVBackend("Medley", "skip", 1)
	if err != nil {
		panic(err) // static registry name; cannot fail
	}
	return b
}

// Name implements Backend.
func (b *KVBackend) Name() string { return b.name }

// Arena implements Backend.
func (b *KVBackend) Arena() *Arena { return b.arena }

// Manager exposes the TxManager for statistics.
func (b *KVBackend) Manager() *core.TxManager { return b.mgr }

type kvTpccWorker struct {
	tx     *core.Tx
	tables [NumTables]kv.TxMap // bound per worker
	arena  *Arena
	aw     *ArenaWriter
}

// NewWorker implements Backend.
func (b *KVBackend) NewWorker() Worker {
	w := &kvTpccWorker{tx: b.mgr.Register(), arena: b.arena, aw: b.arena.Writer()}
	for i := range b.tables {
		w.tables[i] = kv.Bind(b.tables[i], w.tx)
	}
	return w
}

func (w *kvTpccWorker) Writer() *ArenaWriter { return w.aw }

func (w *kvTpccWorker) Run(body func(Ctx) error) error {
	return w.tx.RunRetry(func() error { return body(w) })
}

func (w *kvTpccWorker) Get(t int, key uint64) (uint64, bool) {
	return w.tables[t].Get(w.tx, key)
}
func (w *kvTpccWorker) Put(t int, key uint64, h uint64) {
	w.tables[t].Put(w.tx, key, h)
}
func (w *kvTpccWorker) Insert(t int, key uint64, h uint64) bool {
	return w.tables[t].Insert(w.tx, key, h)
}
func (w *kvTpccWorker) Remove(t int, key uint64) bool {
	_, ok := w.tables[t].Remove(w.tx, key)
	return ok
}

// TxStats implements StatsWorker.
func (w *kvTpccWorker) TxStats() core.Stats { return w.tx.ShardStats() }

// -------------------------------------------------------------- txMontage

// MontageBackend runs TPC-C on txMontage persistent stores over skiplist
// indices (Figure 9's txMontage line).
type MontageBackend struct {
	mgr    *core.TxManager
	sys    *montage.System
	tables [NumTables]*montage.PStore[uint64]
	arena  *Arena
}

// NewMontageBackend creates the txMontage configuration over the given
// montage system.
func NewMontageBackend(sys *montage.System) *MontageBackend {
	b := &MontageBackend{mgr: core.NewTxManager(), sys: sys, arena: NewArena()}
	for i := range b.tables {
		idx := fraserskip.New[montage.Entry[uint64]](b.mgr)
		b.tables[i] = montage.NewPStore[uint64](sys, idx, montage.U64Codec())
	}
	return b
}

// Name implements Backend.
func (b *MontageBackend) Name() string { return "txMontage" }

// Arena implements Backend.
func (b *MontageBackend) Arena() *Arena { return b.arena }

// Manager exposes the TxManager for statistics.
func (b *MontageBackend) Manager() *core.TxManager { return b.mgr }

// StartAdvancer launches the montage epoch advancer for the duration of a
// benchmark run; the returned function stops it.
func (b *MontageBackend) StartAdvancer(every time.Duration) (stop func()) {
	return b.sys.StartAdvancer(every)
}

type montageWorker struct {
	b  *MontageBackend
	h  *montage.Handle
	aw *ArenaWriter
}

// NewWorker implements Backend.
func (b *MontageBackend) NewWorker() Worker {
	tx := b.mgr.Register()
	return &montageWorker{b: b, h: b.sys.Wrap(tx), aw: b.arena.Writer()}
}

func (w *montageWorker) Writer() *ArenaWriter { return w.aw }

func (w *montageWorker) Run(body func(Ctx) error) error {
	return w.h.Tx().RunRetry(func() error { return body(w) })
}

func (w *montageWorker) Get(t int, key uint64) (uint64, bool) {
	return w.b.tables[t].Get(w.h, key)
}
func (w *montageWorker) Put(t int, key uint64, h uint64) {
	w.b.tables[t].Put(w.h, key, h)
}
func (w *montageWorker) Insert(t int, key uint64, h uint64) bool {
	return w.b.tables[t].Insert(w.h, key, h)
}
func (w *montageWorker) Remove(t int, key uint64) bool {
	_, ok := w.b.tables[t].Remove(w.h, key)
	return ok
}

// TxStats implements StatsWorker.
func (w *montageWorker) TxStats() core.Stats { return w.h.Tx().ShardStats() }

// ---------------------------------------------------------------- OneFile

// OneFileBackend runs TPC-C on OneFile STM skiplists (transient OneFile in
// Figure 9; pass onefile.NewPersistent(...).STM for POneFile).
type OneFileBackend struct {
	stm    *onefile.STM
	tables [NumTables]*onefile.Skiplist
	arena  *Arena
	name   string
}

// NewOneFileBackend creates the OneFile configuration.
func NewOneFileBackend(stm *onefile.STM, name string) *OneFileBackend {
	b := &OneFileBackend{stm: stm, arena: NewArena(), name: name}
	for i := range b.tables {
		b.tables[i] = onefile.NewSkiplist(stm)
	}
	return b
}

// Name implements Backend.
func (b *OneFileBackend) Name() string { return b.name }

// Arena implements Backend.
func (b *OneFileBackend) Arena() *Arena { return b.arena }

type onefileWorker struct {
	b  *OneFileBackend
	aw *ArenaWriter
	tx *onefile.Tx // valid during Run
}

// NewWorker implements Backend.
func (b *OneFileBackend) NewWorker() Worker {
	return &onefileWorker{b: b, aw: b.arena.Writer()}
}

func (w *onefileWorker) Writer() *ArenaWriter { return w.aw }

func (w *onefileWorker) Run(body func(Ctx) error) error {
	return w.b.stm.WriteTx(func(tx *onefile.Tx) error {
		w.tx = tx
		return body(w)
	})
}

func (w *onefileWorker) Get(t int, key uint64) (uint64, bool) {
	return w.b.tables[t].Get(w.tx, key)
}
func (w *onefileWorker) Put(t int, key uint64, h uint64) {
	w.b.tables[t].Put(w.tx, key, h)
}
func (w *onefileWorker) Insert(t int, key uint64, h uint64) bool {
	return w.b.tables[t].Insert(w.tx, key, h)
}
func (w *onefileWorker) Remove(t int, key uint64) bool {
	_, ok := w.b.tables[t].Remove(w.tx, key)
	return ok
}

// ------------------------------------------------------------------ TDSL

// TDSLBackend runs TPC-C on TDSL transactional skiplists (Figure 9's TDSL
// line).
type TDSLBackend struct {
	tables [NumTables]*tdsl.Skiplist
	arena  *Arena
}

// NewTDSLBackend creates the TDSL configuration.
func NewTDSLBackend() *TDSLBackend {
	b := &TDSLBackend{arena: NewArena()}
	for i := range b.tables {
		b.tables[i] = tdsl.New()
	}
	return b
}

// Name implements Backend.
func (b *TDSLBackend) Name() string { return "TDSL" }

// Arena implements Backend.
func (b *TDSLBackend) Arena() *Arena { return b.arena }

type tdslWorker struct {
	b  *TDSLBackend
	aw *ArenaWriter
	tx *tdsl.Tx
}

// NewWorker implements Backend.
func (b *TDSLBackend) NewWorker() Worker {
	return &tdslWorker{b: b, aw: b.arena.Writer()}
}

func (w *tdslWorker) Writer() *ArenaWriter { return w.aw }

func (w *tdslWorker) Run(body func(Ctx) error) error {
	return tdsl.RunRetry(func(tx *tdsl.Tx) error {
		w.tx = tx
		return body(w)
	})
}

func (w *tdslWorker) Get(t int, key uint64) (uint64, bool) {
	return w.tx.Get(w.b.tables[t], key)
}
func (w *tdslWorker) Put(t int, key uint64, h uint64) {
	w.tx.Put(w.b.tables[t], key, h)
}
func (w *tdslWorker) Insert(t int, key uint64, h uint64) bool {
	return w.tx.Insert(w.b.tables[t], key, h)
}
func (w *tdslWorker) Remove(t int, key uint64) bool {
	_, ok := w.tx.Remove(w.b.tables[t], key)
	return ok
}
