package onefile

// This file provides the two data structures the paper runs on OneFile: a
// sequential chained hash table (Section 6.1: "In OneFile, we use a
// sequential chained hash table parallelized using STM") and a sequential
// skiplist derived from Fraser's STM skiplist. All mutable fields are
// Words; the structures themselves contain no synchronization.

// HashMap is a sequential chained hash table over STM words.
type HashMap struct {
	stm     *STM
	buckets []Word[*hmNode]
	mask    uint64
}

type hmNode struct {
	key  uint64
	val  Word[uint64]
	next Word[*hmNode]
}

// NewHashMap creates a table with at least nBuckets buckets on the given
// STM (use PSTM.STM for the persistent flavor).
func NewHashMap(stm *STM, nBuckets int) *HashMap {
	n := 1
	for n < nBuckets {
		n <<= 1
	}
	return &HashMap{stm: stm, buckets: make([]Word[*hmNode], n), mask: uint64(n - 1)}
}

// STM returns the STM instance this map runs on.
func (m *HashMap) STM() *STM { return m.stm }

func (m *HashMap) bucket(key uint64) *Word[*hmNode] {
	return &m.buckets[(key*0x9E3779B97F4A7C15)>>32&m.mask]
}

// Get looks up key inside tx.
func (m *HashMap) Get(tx *Tx, key uint64) (uint64, bool) {
	for n := Read(tx, m.bucket(key)); n != nil; n = Read(tx, &n.next) {
		if n.key == key {
			return Read(tx, &n.val), true
		}
	}
	return 0, false
}

// Put inserts or replaces key inside tx, returning the prior value if any.
func (m *HashMap) Put(tx *Tx, key uint64, val uint64) (uint64, bool) {
	b := m.bucket(key)
	for n := Read(tx, b); n != nil; n = Read(tx, &n.next) {
		if n.key == key {
			old := Read(tx, &n.val)
			Write(tx, &n.val, val)
			return old, true
		}
	}
	nn := &hmNode{key: key}
	nn.val.Init(val)
	nn.next.Init(Read(tx, b))
	Write(tx, b, nn)
	return 0, false
}

// Insert adds key only if absent.
func (m *HashMap) Insert(tx *Tx, key uint64, val uint64) bool {
	b := m.bucket(key)
	for n := Read(tx, b); n != nil; n = Read(tx, &n.next) {
		if n.key == key {
			return false
		}
	}
	nn := &hmNode{key: key}
	nn.val.Init(val)
	nn.next.Init(Read(tx, b))
	Write(tx, b, nn)
	return true
}

// Remove deletes key inside tx.
func (m *HashMap) Remove(tx *Tx, key uint64) (uint64, bool) {
	b := m.bucket(key)
	var prev *hmNode
	for n := Read(tx, b); n != nil; n = Read(tx, &n.next) {
		if n.key == key {
			v := Read(tx, &n.val)
			succ := Read(tx, &n.next)
			if prev == nil {
				Write(tx, b, succ)
			} else {
				Write(tx, &prev.next, succ)
			}
			return v, true
		}
		prev = n
	}
	return 0, false
}

// Load inserts or replaces key without a transaction. It is for
// quiescent bulk population — post-crash recovery rebuilding a structure
// from the durable image — where paying the transactional (and, on a
// persistent STM, device) write path would be wrong: the data is already
// durable. Not safe concurrently with transactions.
func (m *HashMap) Load(key, val uint64) {
	b := m.bucket(key)
	for n := b.load().val; n != nil; n = n.next.load().val {
		if n.key == key {
			n.val.Init(val)
			return
		}
	}
	nn := &hmNode{key: key}
	nn.val.Init(val)
	nn.next.Init(b.load().val)
	b.Init(nn)
}

// Range iterates all entries in one read transaction. The body must be
// side-effect free on restart; fn returning false stops the iteration.
func (m *HashMap) Range(fn func(key, val uint64) bool) {
	type pair struct{ k, v uint64 }
	var out []pair
	_ = m.stm.ReadTx(func(tx *Tx) error {
		out = out[:0]
		for i := range m.buckets {
			for n := Read(tx, &m.buckets[i]); n != nil; n = Read(tx, &n.next) {
				out = append(out, pair{n.key, Read(tx, &n.val)})
			}
		}
		return nil
	})
	for _, p := range out {
		if !fn(p.k, p.v) {
			return
		}
	}
}

// Len counts entries in a read transaction.
func (m *HashMap) Len() int {
	total := 0
	_ = m.stm.ReadTx(func(tx *Tx) error {
		total = 0
		for i := range m.buckets {
			for n := Read(tx, &m.buckets[i]); n != nil; n = Read(tx, &n.next) {
				total++
			}
		}
		return nil
	})
	return total
}

// Skiplist is a sequential skiplist over STM words (Fraser's STM skiplist
// shape: per-level forward pointers, all accesses transactional).
type Skiplist struct {
	stm  *STM
	head *slNode
}

const slMaxLevel = 20

type slNode struct {
	key   uint64
	val   Word[uint64]
	level int
	next  []Word[*slNode]
}

// NewSkiplist creates an empty skiplist on the given STM.
func NewSkiplist(stm *STM) *Skiplist {
	h := &slNode{level: slMaxLevel, next: make([]Word[*slNode], slMaxLevel)}
	return &Skiplist{stm: stm, head: h}
}

// STM returns the STM instance this skiplist runs on.
func (s *Skiplist) STM() *STM { return s.stm }

// slRandomLevel derives a deterministic-ish geometric level from the key
// (sequential structure: no concurrency concerns, just distribution).
func slRandomLevel(key uint64) int {
	x := key*0x9E3779B97F4A7C15 + 0x7F4A7C15
	x ^= x >> 33
	l := 1
	for x&1 == 1 && l < slMaxLevel {
		l++
		x >>= 1
	}
	return l
}

// search fills preds/succs for key at every level.
func (s *Skiplist) search(tx *Tx, key uint64, preds, succs []*slNode) *slNode {
	p := s.head
	for l := slMaxLevel - 1; l >= 0; l-- {
		c := Read(tx, &p.next[l])
		for c != nil && c.key < key {
			p = c
			c = Read(tx, &p.next[l])
		}
		preds[l] = p
		succs[l] = c
	}
	if c := succs[0]; c != nil && c.key == key {
		return c
	}
	return nil
}

// Get looks up key inside tx.
func (s *Skiplist) Get(tx *Tx, key uint64) (uint64, bool) {
	p := s.head
	for l := slMaxLevel - 1; l >= 0; l-- {
		c := Read(tx, &p.next[l])
		for c != nil && c.key < key {
			p = c
			c = Read(tx, &p.next[l])
		}
		if c != nil && c.key == key {
			return Read(tx, &c.val), true
		}
	}
	return 0, false
}

// Put inserts or replaces key inside tx.
func (s *Skiplist) Put(tx *Tx, key uint64, val uint64) (uint64, bool) {
	var preds, succs [slMaxLevel]*slNode
	if n := s.search(tx, key, preds[:], succs[:]); n != nil {
		old := Read(tx, &n.val)
		Write(tx, &n.val, val)
		return old, true
	}
	s.insertAt(tx, key, val, preds[:], succs[:])
	return 0, false
}

// Insert adds key only if absent.
func (s *Skiplist) Insert(tx *Tx, key uint64, val uint64) bool {
	var preds, succs [slMaxLevel]*slNode
	if s.search(tx, key, preds[:], succs[:]) != nil {
		return false
	}
	s.insertAt(tx, key, val, preds[:], succs[:])
	return true
}

func (s *Skiplist) insertAt(tx *Tx, key, val uint64, preds, succs []*slNode) {
	lvl := slRandomLevel(key)
	n := &slNode{key: key, level: lvl, next: make([]Word[*slNode], lvl)}
	n.val.Init(val)
	for l := 0; l < lvl; l++ {
		n.next[l].Init(succs[l])
		Write(tx, &preds[l].next[l], n)
	}
}

// Remove deletes key inside tx.
func (s *Skiplist) Remove(tx *Tx, key uint64) (uint64, bool) {
	var preds, succs [slMaxLevel]*slNode
	n := s.search(tx, key, preds[:], succs[:])
	if n == nil {
		return 0, false
	}
	for l := 0; l < n.level; l++ {
		if succs[l] == n {
			Write(tx, &preds[l].next[l], Read(tx, &n.next[l]))
		}
	}
	return Read(tx, &n.val), true
}

// Load inserts or replaces key without a transaction; see HashMap.Load.
// Not safe concurrently with transactions.
func (s *Skiplist) Load(key, val uint64) {
	var preds [slMaxLevel]*slNode
	p := s.head
	var succ0 *slNode
	for l := slMaxLevel - 1; l >= 0; l-- {
		c := p.next[l].load().val
		for c != nil && c.key < key {
			p = c
			c = p.next[l].load().val
		}
		preds[l] = p
		if l == 0 {
			succ0 = c
		}
	}
	if succ0 != nil && succ0.key == key {
		succ0.val.Init(val)
		return
	}
	lvl := slRandomLevel(key)
	n := &slNode{key: key, level: lvl, next: make([]Word[*slNode], lvl)}
	n.val.Init(val)
	for l := 0; l < lvl; l++ {
		n.next[l].Init(preds[l].next[l].load().val)
		preds[l].next[l].Init(n)
	}
}

// Range iterates all entries in one read transaction. The body must be
// side-effect free on restart; fn returning false stops the iteration.
func (s *Skiplist) Range(fn func(key, val uint64) bool) {
	type pair struct{ k, v uint64 }
	var out []pair
	_ = s.stm.ReadTx(func(tx *Tx) error {
		out = out[:0]
		for c := Read(tx, &s.head.next[0]); c != nil; c = Read(tx, &c.next[0]) {
			out = append(out, pair{c.key, Read(tx, &c.val)})
		}
		return nil
	})
	for _, p := range out {
		if !fn(p.k, p.v) {
			return
		}
	}
}

// Len counts entries in a read transaction.
func (s *Skiplist) Len() int {
	total := 0
	_ = s.stm.ReadTx(func(tx *Tx) error {
		total = 0
		for c := Read(tx, &s.head.next[0]); c != nil; c = Read(tx, &c.next[0]) {
			total++
		}
		return nil
	})
	return total
}
