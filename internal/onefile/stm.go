// Package onefile implements a OneFile-style nonblocking software
// transactional memory (Ramalhete et al., DSN 2019), the STM baseline of
// the paper's Figures 7-9, in both transient and persistent flavors.
//
// The two properties of OneFile that the paper's analysis leans on are
// preserved exactly:
//
//   - Readers are invisible and keep NO read set: every transactional word
//     carries the global sequence number of the transaction that wrote it,
//     and a reader that began at sequence s restarts as soon as it meets a
//     word newer than s. A read-only transaction therefore costs almost
//     nothing — which is why OneFile wins at one or two threads on
//     read-mostly workloads (Fig. 7c/8c).
//   - Writers fully serialize on the global sequence: a write transaction
//     that loses the commit race re-executes its entire body. Throughput
//     cannot scale with threads, and large transactions (TPC-C, Fig. 9)
//     are punished by whole-body re-execution.
//
// Progress is lock-free via helping: the winning writer publishes its redo
// log before taking the sequence lock, so any thread can complete an
// in-flight commit. (The original is wait-free via per-thread announce
// arrays; lock-free helping preserves the performance shape at far less
// mechanism and is noted in DESIGN.md.)
package onefile

import (
	"errors"
	"sync/atomic"
)

// pair is an immutable (value, sequence) version of a word.
type pair[T any] struct {
	val T
	seq uint64
}

// word is the type-erased view of a Word used by the redo log.
type word interface {
	applyAny(v any, commitSeq uint64)
	seqOf() uint64
}

// Word is a transactional memory word holding a T. All mutable state of a
// OneFile data structure must live in Words.
type Word[T any] struct {
	p atomic.Pointer[pair[T]]
}

// NewWord returns a Word initialized to v (sequence 0).
func NewWord[T any](v T) *Word[T] {
	w := &Word[T]{}
	w.p.Store(&pair[T]{val: v})
	return w
}

// Init sets an initial value on a zero Word before publication.
func (w *Word[T]) Init(v T) { w.p.Store(&pair[T]{val: v}) }

func (w *Word[T]) load() *pair[T] {
	p := w.p.Load()
	if p == nil {
		// Zero-value word: lazily install the zero pair.
		np := &pair[T]{}
		if w.p.CompareAndSwap(nil, np) {
			return np
		}
		return w.p.Load()
	}
	return p
}

func (w *Word[T]) seqOf() uint64 { return w.load().seq }

// applyAny installs v at commitSeq unless a same-or-newer version is
// already present; idempotent so that helpers may race.
func (w *Word[T]) applyAny(v any, commitSeq uint64) {
	tv := v.(T)
	for {
		cur := w.load()
		if cur.seq >= commitSeq {
			return
		}
		if w.p.CompareAndSwap(cur, &pair[T]{val: tv, seq: commitSeq}) {
			return
		}
	}
}

// desc is a published write transaction: its redo log and sequence window.
type desc struct {
	start  uint64 // sequence observed by the body (even)
	commit uint64 // start + 2
	writes map[word]any
	// persist is non-nil for persistent STM instances; called by the
	// applier with the redo log and commit sequence while the sequence
	// lock is held. The sequence lets the persister order device writes:
	// a stale applier (helped past, then scheduled out mid-persist) must
	// not clobber a newer commit's durable image.
	persist func(writes map[word]any, commitSeq uint64)
}

// restartSignal unwinds a transaction body whose snapshot became stale.
type restartSignal struct{}

// ErrAborted is returned when a transaction body asks to abort.
var ErrAborted = errors.New("onefile: transaction aborted")

// STM is one OneFile instance: a global sequence and an announce slot.
type STM struct {
	seq atomic.Uint64 // even: stable; odd: commit in progress
	cur atomic.Pointer[desc]

	// stats
	commits  atomic.Uint64
	restarts atomic.Uint64

	// persistHook, when set (persistent flavor), is invoked under the
	// sequence lock with each committing redo log and its commit sequence.
	persistHook func(writes map[word]any, commitSeq uint64)
}

// New creates a transient OneFile STM.
func New() *STM { return &STM{} }

// Tx is the per-execution transaction context passed to bodies.
type Tx struct {
	stm     *STM
	start   uint64
	writes  map[word]any
	writing bool
}

// Read returns w's value in the transaction's snapshot, restarting the
// body if the snapshot is stale. Reads of words written by this
// transaction return the pending value.
func Read[T any](tx *Tx, w *Word[T]) T {
	if tx.writing {
		if v, ok := tx.writes[w]; ok {
			return v.(T)
		}
	}
	p := w.load()
	if p.seq > tx.start {
		panic(restartSignal{})
	}
	return p.val
}

// Write buffers v as w's new value; only write transactions may call it.
func Write[T any](tx *Tx, w *Word[T], v T) {
	if !tx.writing {
		panic("onefile: Write inside a read-only transaction")
	}
	tx.writes[w] = v
}

// stableSeq waits (helping) until the sequence is even and returns it.
func (s *STM) stableSeq() uint64 {
	for {
		q := s.seq.Load()
		if q&1 == 0 {
			return q
		}
		s.help()
	}
}

// help completes an in-flight commit, if any.
func (s *STM) help() {
	d := s.cur.Load()
	if d == nil {
		return
	}
	if s.seq.Load() != d.start+1 {
		return
	}
	s.apply(d)
}

// apply installs d's redo log and releases the sequence lock. Idempotent.
func (s *STM) apply(d *desc) {
	if d.persist != nil {
		d.persist(d.writes, d.commit)
	}
	for w, v := range d.writes {
		w.applyAny(v, d.commit)
	}
	s.seq.CompareAndSwap(d.start+1, d.commit)
	s.cur.CompareAndSwap(d, nil)
}

// ReadTx runs a read-only body against a consistent snapshot, retrying
// internally on staleness. The body must be side-effect free on restart.
func (s *STM) ReadTx(body func(tx *Tx) error) error {
	for {
		tx := &Tx{stm: s, start: s.stableSeq()}
		err, restarted := runBody(body, tx)
		if restarted {
			s.restarts.Add(1)
			continue
		}
		return err
	}
}

// WriteTx runs a write body and commits its redo log atomically. The whole
// body re-executes if another writer commits first (OneFile's serialized
// writers). A body returning a non-nil error aborts with that error.
func (s *STM) WriteTx(body func(tx *Tx) error) error {
	for {
		start := s.stableSeq()
		tx := &Tx{stm: s, start: start, writes: make(map[word]any, 8), writing: true}
		err, restarted := runBody(body, tx)
		if restarted {
			s.restarts.Add(1)
			continue
		}
		if err != nil {
			return err
		}
		if len(tx.writes) == 0 {
			return nil // read-only body in a write tx: snapshot already consistent
		}
		d := &desc{start: start, commit: start + 2, writes: tx.writes, persist: s.persistHook}
		if !s.cur.CompareAndSwap(nil, d) {
			s.help()
			s.restarts.Add(1)
			continue
		}
		if !s.seq.CompareAndSwap(start, start+1) {
			// Another writer slipped in between our body and announce.
			s.cur.CompareAndSwap(d, nil)
			s.restarts.Add(1)
			continue
		}
		s.apply(d)
		s.commits.Add(1)
		return nil
	}
}

// runBody executes body, converting restart panics into a flag.
func runBody(body func(tx *Tx) error, tx *Tx) (err error, restarted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(restartSignal); ok {
				restarted = true
				return
			}
			panic(r)
		}
	}()
	return body(tx), false
}

// Stats is a snapshot of STM counters.
type Stats struct {
	Seq      uint64
	Commits  uint64
	Restarts uint64
}

// Stats returns a snapshot of the STM's counters.
func (s *STM) Stats() Stats {
	return Stats{Seq: s.seq.Load(), Commits: s.commits.Load(), Restarts: s.restarts.Load()}
}
