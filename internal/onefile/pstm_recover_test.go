package onefile

import (
	"testing"

	"medley/internal/pmem"
)

func newTestPMap(t *testing.T) (*PSTM, *PMap) {
	t.Helper()
	p := NewPersistent(pmem.Config{Words: 1 << 16})
	return p, NewPMap(p, NewHashMap(p.STM, 1<<6))
}

func pmapPut(t *testing.T, p *PSTM, pm *PMap, k, v uint64) {
	t.Helper()
	if err := p.WriteTx(func(tx *Tx) error { pm.Put(tx, k, v); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestPMapRecoverKVRoundTrip commits puts, overwrites and removes, then
// crashes: RecoverKV must return exactly the committed map, with removed
// keys absent and overwritten keys at their last committed value.
func TestPMapRecoverKVRoundTrip(t *testing.T) {
	p, pm := newTestPMap(t)
	for k := uint64(0); k < 64; k++ {
		pmapPut(t, p, pm, k, k*2)
	}
	for k := uint64(0); k < 8; k++ {
		pmapPut(t, p, pm, k, k*5)
	}
	if err := p.WriteTx(func(tx *Tx) error {
		for k := uint64(56); k < 64; k++ {
			pm.Remove(tx, k)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	kv := pm.RecoverKV()
	if len(kv) != 56 {
		t.Fatalf("recovered %d entries, want 56", len(kv))
	}
	for k := uint64(0); k < 56; k++ {
		want := k * 2
		if k < 8 {
			want = k * 5
		}
		if kv[k] != want {
			t.Fatalf("key %d recovered as %d, want %d", k, kv[k], want)
		}
	}
	for k := uint64(56); k < 64; k++ {
		if _, ok := kv[k]; ok {
			t.Fatalf("removed key %d resurrected", k)
		}
	}
}

// TestPMapRecoverKVDropsAbortedWrites checks that a transaction whose body
// errors (aborts before commit) leaves no durable trace: its keys must not
// appear after a crash.
func TestPMapRecoverKVDropsAbortedWrites(t *testing.T) {
	p, pm := newTestPMap(t)
	pmapPut(t, p, pm, 1, 11)
	sentinel := ErrAborted
	if err := p.WriteTx(func(tx *Tx) error {
		pm.Put(tx, 2, 22)
		return sentinel
	}); err != sentinel {
		t.Fatalf("aborting tx returned %v", err)
	}
	kv := pm.RecoverKV()
	if len(kv) != 1 || kv[1] != 11 {
		t.Fatalf("recovered %v, want only {1:11}", kv)
	}
}

// TestPMapRecoverKVReplaysTornLog simulates a crash between redo-log
// persistence and home write-back: the log is durable but a home word
// still carries the old value. Recovery must replay the log and surface
// the logged value.
func TestPMapRecoverKVReplaysTornLog(t *testing.T) {
	p, pm := newTestPMap(t)
	pmapPut(t, p, pm, 5, 50)

	// The committed put assigned homes for key 5's directory words.
	mt := pm.metaFor(5)
	voff, ok := p.persistedHome(mt.val)
	if !ok {
		t.Fatal("value word has no persisted home")
	}

	// Hand-write a durable redo log installing 500 into the value home,
	// as an interrupted commit would have left it, without touching the
	// home itself.
	r := p.Region
	r.Store(p.logBase, uint64(voff))
	r.Store(p.logBase+1, 500)
	r.Store(0, 2) // log length header
	r.WriteBack(p.logBase, 2)
	r.WriteBack(0, 1)
	r.Fence()

	kv := pm.RecoverKV()
	if kv[5] != 500 {
		t.Fatalf("torn commit not replayed: key 5 = %d, want 500", kv[5])
	}
	// The log must be retired by recovery: a second crash replays nothing.
	if n := p.RecoverLog(); n != 0 {
		t.Fatalf("log not retired after recovery: %d entries replayed", n)
	}
}

// TestPMapRecoverRebuildsWithoutRepersisting rebuilds through Recover and
// checks (a) the fresh structure serves the committed contents, (b) the
// rebuild did not go through the persist path — no new home words, no log
// traffic — and (c) the recovered map keeps working transactionally.
func TestPMapRecoverRebuildsWithoutRepersisting(t *testing.T) {
	p, pm := newTestPMap(t)
	for k := uint64(0); k < 40; k++ {
		pmapPut(t, p, pm, k, k+7)
	}
	p.mu.Lock()
	homesBefore := len(p.homes)
	p.mu.Unlock()
	wbBefore := p.Region.Stats().WriteBackLines

	fresh := NewHashMap(p.STM, 1<<6)
	if n := pm.Recover(fresh); n != 40 {
		t.Fatalf("recovered %d entries, want 40", n)
	}
	p.mu.Lock()
	homesAfter := len(p.homes)
	p.mu.Unlock()
	if homesAfter != homesBefore {
		t.Fatalf("recovery allocated %d new home words", homesAfter-homesBefore)
	}
	// RecoverLog's replay of a retired log touches no lines beyond the
	// header reset; bulk-loading must add no data write-backs at all.
	if wb := p.Region.Stats().WriteBackLines - wbBefore; wb > 2 {
		t.Fatalf("recovery wrote %d lines back, want <= 2 (log header only)", wb)
	}
	got := make(map[uint64]uint64)
	pm.Range(func(k, v uint64) bool { got[k] = v; return true })
	if len(got) != 40 || got[3] != 10 {
		t.Fatalf("rebuilt contents wrong: %d entries, got[3]=%d", len(got), got[3])
	}
	pmapPut(t, p, pm, 100, 1000)
	if kv := pm.RecoverKV(); kv[100] != 1000 || len(kv) != 41 {
		t.Fatalf("post-recovery commit not durable: %v", kv[100])
	}
}

// TestSkiplistLoadMatchesTransactionalView checks the quiescent bulk
// loader produces a structure transactions can read and update.
func TestSkiplistLoadMatchesTransactionalView(t *testing.T) {
	stm := New()
	sl := NewSkiplist(stm)
	for _, k := range []uint64{5, 1, 9, 3, 7, 3} { // 3 twice: replace path
		sl.Load(k, k*10)
	}
	if err := stm.ReadTx(func(tx *Tx) error {
		for _, k := range []uint64{1, 3, 5, 7, 9} {
			if v, ok := sl.Get(tx, k); !ok || v != k*10 {
				t.Errorf("key %d = (%d, %v), want %d", k, v, ok, k*10)
			}
		}
		if _, ok := sl.Get(tx, 2); ok {
			t.Error("phantom key 2")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := stm.WriteTx(func(tx *Tx) error {
		sl.Put(tx, 4, 44)
		sl.Remove(tx, 9)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n := sl.Len(); n != 5 {
		t.Fatalf("len = %d, want 5", n)
	}
}

// TestStoreHomeIsMonotoneInCommitOrder is the regression test for the
// stale-applier clobbering the crash-recovery verifier caught under
// -race: a laggard persister from an older commit must not overwrite a
// home word a newer commit already persisted.
func TestStoreHomeIsMonotoneInCommitOrder(t *testing.T) {
	p := NewPersistent(pmem.Config{Words: 1 << 12})
	w := NewWord[uint64](0)
	p.storeHome(w, 111, 4) // commit 4 persists first
	p.storeHome(w, 222, 2) // stale applier from commit 2 arrives late
	off, ok := p.persistedHome(w)
	if !ok {
		t.Fatal("no home assigned")
	}
	if got := p.Region.PersistedLoad(off); got != 111 {
		t.Fatalf("stale commit clobbered home: %d, want 111", got)
	}
	p.storeHome(w, 333, 6)
	if got := p.Region.PersistedLoad(off); got != 333 {
		t.Fatalf("newer commit did not advance home: %d, want 333", got)
	}
}

// TestHashMapAndSkiplistRange covers the Range iteration hooks recovery
// rebuilding depends on.
func TestHashMapAndSkiplistRange(t *testing.T) {
	stm := New()
	for _, m := range []KV{NewHashMap(stm, 8), NewSkiplist(stm)} {
		if err := stm.WriteTx(func(tx *Tx) error {
			for k := uint64(0); k < 32; k++ {
				m.Put(tx, k, k+100)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		got := make(map[uint64]uint64)
		m.Range(func(k, v uint64) bool {
			got[k] = v
			return true
		})
		if len(got) != 32 {
			t.Fatalf("%T: Range saw %d entries, want 32", m, len(got))
		}
		for k, v := range got {
			if v != k+100 {
				t.Fatalf("%T: key %d = %d", m, k, v)
			}
		}
		// Early termination.
		n := 0
		m.Range(func(k, v uint64) bool {
			n++
			return n < 5
		})
		if n != 5 {
			t.Fatalf("%T: Range ignored early stop (saw %d)", m, n)
		}
	}
}
