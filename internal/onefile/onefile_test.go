package onefile

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"medley/internal/pmem"
)

func TestWordBasics(t *testing.T) {
	s := New()
	w := NewWord[uint64](7)
	err := s.ReadTx(func(tx *Tx) error {
		if Read(tx, w) != 7 {
			t.Fatal("read wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteTx(func(tx *Tx) error {
		Write(tx, w, uint64(9))
		if Read(tx, w) != 9 {
			t.Fatal("own write invisible")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	_ = s.ReadTx(func(tx *Tx) error {
		if Read(tx, w) != 9 {
			t.Fatal("committed write invisible")
		}
		return nil
	})
}

func TestWriteTxAtomic(t *testing.T) {
	s := New()
	a := NewWord[uint64](0)
	b := NewWord[uint64](0)
	var wg sync.WaitGroup
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = s.WriteTx(func(tx *Tx) error {
					va := Read(tx, a)
					vb := Read(tx, b)
					Write(tx, a, va+1)
					Write(tx, b, vb+1)
					return nil
				})
			}
		}()
	}
	stop := make(chan struct{})
	var torn int
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.ReadTx(func(tx *Tx) error {
				if Read(tx, a) != Read(tx, b) {
					torn++
				}
				return nil
			})
		}
	}()
	wg.Wait()
	close(stop)
	if torn != 0 {
		t.Fatalf("%d torn snapshots", torn)
	}
	_ = s.ReadTx(func(tx *Tx) error {
		if Read(tx, a) != uint64(4*iters) {
			t.Fatalf("a = %d, want %d", Read(tx, a), 4*iters)
		}
		return nil
	})
}

func TestUserAbortError(t *testing.T) {
	s := New()
	w := NewWord[uint64](1)
	myErr := errors.New("nope")
	err := s.WriteTx(func(tx *Tx) error {
		Write(tx, w, uint64(2))
		return myErr
	})
	if !errors.Is(err, myErr) {
		t.Fatalf("err = %v", err)
	}
	_ = s.ReadTx(func(tx *Tx) error {
		if Read(tx, w) != 1 {
			t.Fatal("aborted write leaked")
		}
		return nil
	})
}

func TestHashMapSequentialVsReference(t *testing.T) {
	s := New()
	m := NewHashMap(s, 64)
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(128))
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			_ = s.WriteTx(func(tx *Tx) error { m.Put(tx, k, v); return nil })
			ref[k] = v
		case 1:
			_ = s.WriteTx(func(tx *Tx) error { m.Remove(tx, k); return nil })
			delete(ref, k)
		default:
			var v uint64
			var ok bool
			_ = s.ReadTx(func(tx *Tx) error { v, ok = m.Get(tx, k); return nil })
			rv, had := ref[k]
			if ok != had || (ok && v != rv) {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", k, v, ok, rv, had)
			}
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
}

func TestSkiplistQuickVsReference(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint16
	}
	f := func(ops []op) bool {
		s := New()
		sl := NewSkiplist(s)
		ref := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o.Key % 48)
			switch o.Kind % 4 {
			case 0:
				_ = s.WriteTx(func(tx *Tx) error { sl.Put(tx, k, uint64(o.Val)); return nil })
				ref[k] = uint64(o.Val)
			case 1:
				_ = s.WriteTx(func(tx *Tx) error { sl.Remove(tx, k); return nil })
				delete(ref, k)
			case 2:
				var ins bool
				_ = s.WriteTx(func(tx *Tx) error { ins = sl.Insert(tx, k, uint64(o.Val)); return nil })
				if _, had := ref[k]; ins == had {
					return false
				} else if ins {
					ref[k] = uint64(o.Val)
				}
			default:
				var v uint64
				var ok bool
				_ = s.ReadTx(func(tx *Tx) error { v, ok = sl.Get(tx, k); return nil })
				rv, had := ref[k]
				if ok != had || (ok && v != rv) {
					return false
				}
			}
		}
		return sl.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTransfersConserve(t *testing.T) {
	s := New()
	m := NewHashMap(s, 64)
	const nAccounts = 16
	const initial = 500
	_ = s.WriteTx(func(tx *Tx) error {
		for k := uint64(0); k < nAccounts; k++ {
			m.Put(tx, k, initial)
		}
		return nil
	})
	var wg sync.WaitGroup
	iters := 800
	if testing.Short() {
		iters = 150
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				a := uint64(rng.Intn(nAccounts))
				b := uint64(rng.Intn(nAccounts))
				if a == b {
					continue
				}
				amt := uint64(rng.Intn(9) + 1)
				_ = s.WriteTx(func(tx *Tx) error {
					va, _ := m.Get(tx, a)
					if va < amt {
						return nil // skip, commit empty
					}
					vb, _ := m.Get(tx, b)
					m.Put(tx, a, va-amt)
					m.Put(tx, b, vb+amt)
					return nil
				})
			}
		}(int64(g) + 77)
	}
	wg.Wait()
	var total uint64
	_ = s.ReadTx(func(tx *Tx) error {
		total = 0
		for k := uint64(0); k < nAccounts; k++ {
			v, _ := m.Get(tx, k)
			total += v
		}
		return nil
	})
	if total != nAccounts*initial {
		t.Fatalf("total = %d, want %d", total, nAccounts*initial)
	}
}

func TestSkiplistTransactionalCompose(t *testing.T) {
	s := New()
	s1 := NewSkiplist(s)
	s2 := NewSkiplist(s)
	_ = s.WriteTx(func(tx *Tx) error { s1.Put(tx, 1, 100); return nil })
	err := s.WriteTx(func(tx *Tx) error {
		v, ok := s1.Get(tx, 1)
		if !ok || v < 30 {
			return errors.New("insufficient")
		}
		s1.Put(tx, 1, v-30)
		v2, _ := s2.Get(tx, 2)
		s2.Put(tx, 2, v2+30)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.ReadTx(func(tx *Tx) error {
		if v, _ := s1.Get(tx, 1); v != 70 {
			t.Fatalf("s1[1] = %d", v)
		}
		if v, _ := s2.Get(tx, 2); v != 30 {
			t.Fatalf("s2[2] = %d", v)
		}
		return nil
	})
}

func TestPersistentSTMTrafficAndRecovery(t *testing.T) {
	p := NewPersistent(pmem.Config{Words: 1 << 16})
	m := NewHashMap(p.STM, 64)
	_ = p.WriteTx(func(tx *Tx) error {
		m.Put(tx, 1, 11)
		m.Put(tx, 2, 22)
		return nil
	})
	st := p.Region.Stats()
	if st.WriteBackLines == 0 || st.Fences < 3 {
		t.Fatalf("no persistence traffic: %+v", st)
	}
	// Simulate a crash right after the log was made durable but before it
	// was retired: recovery must replay it idempotently.
	_ = p.WriteTx(func(tx *Tx) error { m.Put(tx, 3, 33); return nil })
	if n := p.RecoverLog(); n != 0 {
		t.Fatalf("retired log replayed %d entries, want 0", n)
	}
}

func TestPersistentLatencySlowsCommit(t *testing.T) {
	fast := NewPersistent(pmem.Config{Words: 1 << 14})
	slow := NewPersistent(pmem.Config{
		Words:            1 << 14,
		WriteBackLatency: 50 * time.Microsecond,
		FenceLatency:     20 * time.Microsecond,
	})
	run := func(p *PSTM) time.Duration {
		m := NewHashMap(p.STM, 16)
		start := time.Now()
		for i := 0; i < 50; i++ {
			k := uint64(i)
			_ = p.WriteTx(func(tx *Tx) error { m.Put(tx, k, k); return nil })
		}
		return time.Since(start)
	}
	tf, ts := run(fast), run(slow)
	if ts < 3*tf {
		t.Fatalf("latency injection ineffective: fast=%v slow=%v", tf, ts)
	}
}

func TestHelpCompletesStalledCommit(t *testing.T) {
	// Publish a descriptor and take the sequence lock as a "stalled" writer
	// would, then verify another thread's transaction completes it.
	s := New()
	w := NewWord[uint64](1)
	d := &desc{start: 0, commit: 2, writes: map[word]any{word(w): uint64(5)}}
	if !s.cur.CompareAndSwap(nil, d) || !s.seq.CompareAndSwap(0, 1) {
		t.Fatal("setup failed")
	}
	done := make(chan error, 1)
	go func() {
		done <- s.WriteTx(func(tx *Tx) error {
			Write(tx, w, Read(tx, w)+1)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("helper did not complete stalled commit (not lock-free)")
	}
	_ = s.ReadTx(func(tx *Tx) error {
		if Read(tx, w) != 6 {
			t.Fatalf("w = %d, want 6 (5 from stalled tx, +1)", Read(tx, w))
		}
		return nil
	})
}
