package onefile

import (
	"sync"

	"medley/internal/pmem"
)

// PSTM is the persistent flavor of the STM (POneFile in the paper's
// figures): every committing transaction eagerly writes its redo log to
// simulated NVM, fences, applies the data writes to their NVM homes with
// per-line write-back, and fences again — the strict, on-critical-path
// persistence whose cost Figures 7-9 contrast with txMontage's periodic
// persistence.
//
// As recorded in DESIGN.md, the object graph itself stays in DRAM; the NVM
// region carries the redo log and one home word per transactional word, so
// the device traffic (and injected latency) matches the original's
// write-ahead scheme without reimplementing its pointer-free heap.
type PSTM struct {
	*STM
	Region *pmem.Region

	mu      sync.Mutex
	homes   map[word]int
	nextOff int

	logBase int
	logCap  int
	dataEnd int
}

// NewPersistent creates a POneFile instance over a fresh region of the
// given size with the given injected latencies.
func NewPersistent(cfg pmem.Config) *PSTM {
	if cfg.Words == 0 {
		cfg.Words = 1 << 20
	}
	p := &PSTM{
		STM:    New(),
		Region: pmem.New(cfg),
		homes:  make(map[word]int),
	}
	// Region layout: [0] committed seq; log area (1/8th); data homes.
	p.logBase = pmem.WordsPerLine
	p.logCap = cfg.Words / 8
	p.nextOff = p.logBase + p.logCap
	p.dataEnd = cfg.Words
	p.STM.persistHook = p.persist
	return p
}

// homeOf assigns (once) an NVM home word for a transactional word.
func (p *PSTM) homeOf(w word) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if off, ok := p.homes[w]; ok {
		return off
	}
	if p.nextOff >= p.dataEnd {
		panic("onefile: persistent region exhausted")
	}
	off := p.nextOff
	p.nextOff++
	p.homes[w] = off
	return off
}

// valWord models the persisted image of a value: uint64s persist as
// themselves, anything else (pointers into the DRAM object graph) as a
// non-zero tag. Device traffic is identical either way.
func valWord(v any) uint64 {
	if u, ok := v.(uint64); ok {
		return u
	}
	if v == nil {
		return 0
	}
	return 1
}

// persist runs under the sequence lock (owner or helper): write-ahead the
// redo log, fence, write data homes, fence. Helpers may repeat it; all
// writes are idempotent.
func (p *PSTM) persist(writes map[word]any) {
	r := p.Region
	i := 0
	for w, v := range writes {
		if p.logBase+2*i+1 >= p.logBase+p.logCap {
			break // log truncation: traffic model only
		}
		r.Store(p.logBase+2*i, uint64(p.homeOf(w)))
		r.Store(p.logBase+2*i+1, valWord(v))
		i++
	}
	r.Store(0, uint64(2*i)) // log length header
	r.WriteBack(0, 1)
	if i > 0 {
		r.WriteBack(p.logBase, 2*i)
	}
	r.Fence()
	for w, v := range writes {
		off := p.homeOf(w)
		r.Store(off, valWord(v))
		r.WriteBack(off, 1)
	}
	r.Fence()
	r.Store(0, 0) // log retired
	r.WriteBack(0, 1)
	r.Fence()
}

// RecoverLog replays a crash-interrupted redo log into the data homes and
// returns the number of entries replayed (0 when the log was retired
// before the crash). POneFile's recovery is log-replay; the DRAM object
// graph is rebuilt by the application layer.
func (p *PSTM) RecoverLog() int {
	r := p.Region
	n := int(r.PersistedLoad(0))
	for i := 0; i+1 < n; i += 2 {
		off := int(r.PersistedLoad(p.logBase + i))
		val := r.PersistedLoad(p.logBase + i + 1)
		r.Store(off, val)
		r.WriteBack(off, 1)
	}
	r.Fence()
	r.Store(0, 0)
	r.WriteBack(0, 1)
	r.Fence()
	return n / 2
}
