package onefile

import (
	"sync"

	"medley/internal/pmem"
)

// PSTM is the persistent flavor of the STM (POneFile in the paper's
// figures): every committing transaction eagerly writes its redo log to
// simulated NVM, fences, applies the data writes to their NVM homes with
// per-line write-back, and fences again — the strict, on-critical-path
// persistence whose cost Figures 7-9 contrast with txMontage's periodic
// persistence.
//
// As recorded in DESIGN.md, the object graph itself stays in DRAM; the NVM
// region carries the redo log and one home word per transactional word, so
// the device traffic (and injected latency) matches the original's
// write-ahead scheme without reimplementing its pointer-free heap.
type PSTM struct {
	*STM
	Region *pmem.Region

	mu      sync.Mutex
	homes   map[word]int
	homeSeq map[int]uint64 // last commit sequence written to each home
	nextOff int

	// persistMu serializes persist: device writes apply in commit order,
	// and the redo log is always durable before the first home write.
	persistMu    sync.Mutex
	persistedSeq uint64 // newest commit fully persisted

	logBase int
	logCap  int
	dataEnd int
}

// NewPersistent creates a POneFile instance over a fresh region of the
// given size with the given injected latencies.
func NewPersistent(cfg pmem.Config) *PSTM {
	if cfg.Words == 0 {
		cfg.Words = 1 << 20
	}
	p := &PSTM{
		STM:     New(),
		Region:  pmem.New(cfg),
		homes:   make(map[word]int),
		homeSeq: make(map[int]uint64),
	}
	// Region layout: [0] committed seq; log area (1/8th); data homes.
	p.logBase = pmem.WordsPerLine
	p.logCap = cfg.Words / 8
	p.nextOff = p.logBase + p.logCap
	p.dataEnd = cfg.Words
	p.STM.persistHook = p.persist
	return p
}

// persistedHome returns w's NVM home offset, if one was ever assigned. A
// word that was never part of a committed persist has no durable image.
func (p *PSTM) persistedHome(w word) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	off, ok := p.homes[w]
	return off, ok
}

// homeOf assigns (once) an NVM home word for a transactional word.
func (p *PSTM) homeOf(w word) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.homeOfLocked(w)
}

// homeOfLocked is homeOf for callers already holding p.mu.
func (p *PSTM) homeOfLocked(w word) int {
	if off, ok := p.homes[w]; ok {
		return off
	}
	if p.nextOff >= p.dataEnd {
		panic("onefile: persistent region exhausted")
	}
	off := p.nextOff
	p.nextOff++
	p.homes[w] = off
	return off
}

// valWord models the persisted image of a value: uint64s persist as
// themselves, anything else (pointers into the DRAM object graph) as a
// non-zero tag. Device traffic is identical either way.
func valWord(v any) uint64 {
	if u, ok := v.(uint64); ok {
		return u
	}
	if v == nil {
		return 0
	}
	return 1
}

// persist runs from apply (owner or helper): write-ahead the redo log,
// fence, write data homes, fence, retire the log. Appliers may race: a
// helper can reach persist for the same commit as the owner, and a stale
// applier — helped past, then scheduled back in after newer commits
// already persisted — can reach it for an old one. Either would corrupt
// the durable image if device writes interleaved (the crash-recovery
// verifier in internal/harness caught a stale applier clobbering a newer
// commit's home words under -race), so persist is serialized and applies
// each commit exactly once, in commit order, with the log durably
// complete before the first home write. Only persistence serializes here
// — OneFile writers are globally serialized by the sequence lock anyway —
// standing in for the original's ordered wait-free log application at
// far less mechanism.
func (p *PSTM) persist(writes map[word]any, commitSeq uint64) {
	p.persistMu.Lock()
	defer p.persistMu.Unlock()
	if commitSeq <= p.persistedSeq {
		return // duplicate or stale applier: this commit is already durable
	}
	r := p.Region
	i := 0
	for w, v := range writes {
		if p.logBase+2*i+1 >= p.logBase+p.logCap {
			break // log truncation: traffic model only
		}
		r.Store(p.logBase+2*i, uint64(p.homeOf(w)))
		r.Store(p.logBase+2*i+1, valWord(v))
		i++
	}
	r.Store(0, uint64(2*i)) // log length header
	r.WriteBack(0, 1)
	if i > 0 {
		r.WriteBack(p.logBase, 2*i)
	}
	r.Fence()
	for w, v := range writes {
		p.storeHome(w, valWord(v), commitSeq)
	}
	r.Fence()
	r.Store(0, 0) // log retired
	r.WriteBack(0, 1)
	r.Fence()
	p.persistedSeq = commitSeq
}

// storeHome writes v to w's NVM home unless a newer commit already did:
// the per-home sequence makes home content monotone in commit order.
// persist's serialization already prevents interleaving; the guard is
// kept as defense in depth (and replay paths like RecoverLog bypass it
// deliberately). Store and write-back happen under the lock so the
// sequence check and the device write are atomic.
func (p *PSTM) storeHome(w word, v uint64, commitSeq uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	off := p.homeOfLocked(w)
	if p.homeSeq[off] >= commitSeq {
		return
	}
	p.homeSeq[off] = commitSeq
	p.Region.Store(off, v)
	p.Region.WriteBack(off, 1)
}

// KV is the key→value structure shape PMap wraps: HashMap and Skiplist
// both satisfy it.
type KV interface {
	Get(tx *Tx, key uint64) (uint64, bool)
	Put(tx *Tx, key uint64, val uint64) (uint64, bool)
	Remove(tx *Tx, key uint64) (uint64, bool)
	Load(key, val uint64) // quiescent non-transactional insert (recovery)
	Range(fn func(key, val uint64) bool)
}

// pmeta is one key's durable directory entry: a presence word (1 live,
// 0 removed) and a value word, both transactional so their NVM homes are
// written by the same eager per-commit persistence as the structure's own
// words.
type pmeta struct {
	present *Word[uint64]
	val     *Word[uint64]
}

// PMap makes a persistent OneFile structure crash-verifiable: alongside
// every write to the wrapped structure it writes a per-key durable
// directory entry in the same transaction, so the committed key→value map
// can be read back from the persisted image after a crash.
//
// In the original POneFile the whole object graph lives in the pointer-free
// NVM heap and recovery is just log replay. This simulation keeps the
// graph in DRAM and persists one home word per transactional word (see
// DESIGN.md), which preserves device traffic but erases pointer content —
// so the directory re-adds the key metadata the NVM heap would have
// carried. The directory's key→word layout survives the simulated crash in
// DRAM (standing in for the NVM heap's layout), but presence and value are
// decided strictly by the persisted image: an effect that was never part
// of a committed, persisted transaction cannot appear in RecoverKV.
type PMap struct {
	p    *PSTM
	m    KV
	meta sync.Map // uint64 key → *pmeta
}

// NewPMap wraps m, which must run on p's STM, in a durable directory.
func NewPMap(p *PSTM, m KV) *PMap {
	return &PMap{p: p, m: m}
}

// metaFor returns key's directory entry, creating it on first use.
// LoadOrStore keeps creation idempotent across transaction-body restarts.
func (pm *PMap) metaFor(key uint64) *pmeta {
	if v, ok := pm.meta.Load(key); ok {
		return v.(*pmeta)
	}
	mt := &pmeta{present: NewWord[uint64](0), val: NewWord[uint64](0)}
	actual, _ := pm.meta.LoadOrStore(key, mt)
	return actual.(*pmeta)
}

// Get looks up key inside tx.
func (pm *PMap) Get(tx *Tx, key uint64) (uint64, bool) { return pm.m.Get(tx, key) }

// Put inserts or replaces key inside tx, recording the effect in the
// durable directory.
func (pm *PMap) Put(tx *Tx, key uint64, val uint64) (uint64, bool) {
	old, replaced := pm.m.Put(tx, key, val)
	mt := pm.metaFor(key)
	Write(tx, mt.present, 1)
	Write(tx, mt.val, val)
	return old, replaced
}

// Remove deletes key inside tx, recording the removal in the durable
// directory.
func (pm *PMap) Remove(tx *Tx, key uint64) (uint64, bool) {
	old, ok := pm.m.Remove(tx, key)
	if ok {
		Write(tx, pm.metaFor(key).present, 0)
	}
	return old, ok
}

// Range iterates the wrapped structure.
func (pm *PMap) Range(fn func(key, val uint64) bool) { pm.m.Range(fn) }

// RecoverKV simulates a full-system crash and returns the durable
// key→value map: the region's volatile image is dropped, any
// crash-interrupted redo log is replayed, and each directory entry's
// presence and value are read from the persisted image. The caller
// rebuilds the DRAM structure from the result, as post-crash recovery
// does.
func (pm *PMap) RecoverKV() map[uint64]uint64 {
	r := pm.p.Region
	r.Crash()
	pm.p.RecoverLog()
	out := make(map[uint64]uint64)
	pm.meta.Range(func(k, v any) bool {
		mt := v.(*pmeta)
		poff, ok := pm.p.persistedHome(mt.present)
		if !ok || r.PersistedLoad(poff) != 1 {
			return true // never durably present, or durably removed
		}
		if voff, ok := pm.p.persistedHome(mt.val); ok {
			out[k.(uint64)] = r.PersistedLoad(voff)
		}
		return true
	})
	return out
}

// Recover simulates a crash and rebuilds the map from the durable image:
// RecoverKV reads the committed contents, fresh is bulk-loaded with them
// (non-transactionally — the data is already durable, so recovery must
// not pay the persist path or allocate a second generation of home
// words), and fresh replaces the wrapped structure. The directory itself
// is kept: its words, homes and persisted contents are exactly the
// committed state. Returns the number of recovered entries.
func (pm *PMap) Recover(fresh KV) int {
	kv := pm.RecoverKV()
	for k, v := range kv {
		fresh.Load(k, v)
	}
	pm.m = fresh
	return len(kv)
}

// RecoverLog replays a crash-interrupted redo log into the data homes and
// returns the number of entries replayed (0 when the log was retired
// before the crash). POneFile's recovery is log-replay; the DRAM object
// graph is rebuilt by the application layer.
func (p *PSTM) RecoverLog() int {
	r := p.Region
	n := int(r.PersistedLoad(0))
	for i := 0; i+1 < n; i += 2 {
		off := int(r.PersistedLoad(p.logBase + i))
		val := r.PersistedLoad(p.logBase + i + 1)
		r.Store(off, val)
		r.WriteBack(off, 1)
	}
	r.Fence()
	r.Store(0, 0)
	r.WriteBack(0, 1)
	r.Fence()
	return n / 2
}
