package harness

import "sort"

// This file defines the observability data types the capability
// interfaces in capabilities.go produce — counter/gauge snapshots,
// consistency digests, per-transaction-kind attribution — along with
// their diff/merge helpers. The engine differences cumulative snapshots
// around phases and reports the results as schema-gated blocks; the
// network service layer (internal/service) serves the same snapshots from
// /metrics, modeled on statsd-style counter/gauge export.

// Metric is one named cumulative counter. Values are monotonically
// non-decreasing; the engine reports per-phase deltas. The JSON shape
// matches the report's telemetry block (and medleyd's /metrics).
type Metric struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Gauge is one named derived ratio, computed by the engine from counter
// deltas (abort rate, fast-path share, pool hit rate).
type Gauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// TelemetryResult is one phase's telemetry block: counter deltas plus the
// gauges derived from them, both sorted by name for stable reports.
type TelemetryResult struct {
	Counters []Metric
	Gauges   []Gauge
}

// diffMetrics subtracts before from after by counter name, dropping
// counters absent from either snapshot, and returns the deltas sorted.
func diffMetrics(before, after []Metric) []Metric {
	prev := make(map[string]uint64, len(before))
	for _, m := range before {
		prev[m.Name] = m.Value
	}
	out := make([]Metric, 0, len(after))
	for _, m := range after {
		b, ok := prev[m.Name]
		if !ok {
			continue
		}
		out = append(out, Metric{Name: m.Name, Value: m.Value - b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// deriveGauges computes the standard ratios from well-known counter names,
// omitting any whose denominator is zero.
func deriveGauges(counters []Metric) []Gauge {
	v := make(map[string]uint64, len(counters))
	for _, m := range counters {
		v[m.Name] = m.Value
	}
	var out []Gauge
	add := func(name string, num, den uint64) {
		if den > 0 {
			out = append(out, Gauge{Name: name, Value: float64(num) / float64(den)})
		}
	}
	add("abort_rate", v["tx_aborts"], v["tx_commits"]+v["tx_aborts"])
	add("fastpath_share", v["tx_commits_fastpath"], v["tx_commits"])
	// Logical commits re-expand merged groups: each group commit is one
	// physical commit standing for tx_grouped_txns logical transactions.
	add("groupcommit_share", v["tx_grouped_txns"],
		v["tx_commits"]-v["tx_group_commits"]+v["tx_grouped_txns"])
	add("readonly_share", v["tx_commits_read_only"], v["tx_commits"])
	add("pool_hit_rate", v["pool_hits"], v["pool_gets"])
	add("ebr_reclaim_ratio", v["ebr_reclaimed"], v["ebr_retired"])
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// mergeTelemetry folds one measured phase's telemetry into an aggregate,
// summing counters by name; gauges are re-derived by the caller once all
// phases are folded.
func mergeTelemetry(agg *TelemetryResult, ph *TelemetryResult) {
	sum := make(map[string]uint64, len(agg.Counters))
	for _, m := range agg.Counters {
		sum[m.Name] = m.Value
	}
	for _, m := range ph.Counters {
		sum[m.Name] += m.Value
	}
	agg.Counters = agg.Counters[:0]
	for name, val := range sum {
		agg.Counters = append(agg.Counters, Metric{Name: name, Value: val})
	}
	sort.Slice(agg.Counters, func(i, j int) bool { return agg.Counters[i].Name < agg.Counters[j].Name })
}

// ConsistencyViolation is one failed domain invariant, tagged with its
// violation class (e.g. the TPC-C "money" / "orders" / "delivery" classes).
type ConsistencyViolation struct {
	Class  string
	Detail string
}

// ClassCount is one violation class's tally.
type ClassCount struct {
	Class string
	Count int
}

// ConsistencyResult is a phase's consistency digest.
type ConsistencyResult struct {
	Checked    bool
	Violations int
	Classes    []ClassCount
}

// consistencyResult tallies violations by class, sorted by class name.
func consistencyResult(vs []ConsistencyViolation) *ConsistencyResult {
	res := &ConsistencyResult{Checked: true, Violations: len(vs)}
	counts := map[string]int{}
	for _, v := range vs {
		counts[v.Class]++
	}
	for class, n := range counts {
		res.Classes = append(res.Classes, ClassCount{Class: class, Count: n})
	}
	sort.Slice(res.Classes, func(i, j int) bool { return res.Classes[i].Class < res.Classes[j].Class })
	return res
}

// mergeConsistency folds one phase's consistency digest into an aggregate.
func mergeConsistency(agg *ConsistencyResult, ph *ConsistencyResult) {
	agg.Checked = true
	agg.Violations += ph.Violations
	counts := map[string]int{}
	for _, c := range agg.Classes {
		counts[c.Class] = c.Count
	}
	for _, c := range ph.Classes {
		counts[c.Class] += c.Count
	}
	agg.Classes = agg.Classes[:0]
	for class, n := range counts {
		agg.Classes = append(agg.Classes, ClassCount{Class: class, Count: n})
	}
	sort.Slice(agg.Classes, func(i, j int) bool { return agg.Classes[i].Class < agg.Classes[j].Class })
}

// KindStat is one transaction kind's cumulative tally: committed
// transactions, aborted attempts, and total committed-transaction latency.
type KindStat struct {
	Kind    string
	Txns    uint64
	Aborts  uint64
	TotalNs uint64
}

// KindResult is one kind's per-phase attribution.
type KindResult struct {
	Kind   string
	Txns   uint64
	Aborts uint64
	AvgNs  float64
}

// diffKinds subtracts two kind snapshots, preserving after's kind order and
// dropping kinds that ran no transaction and suffered no abort.
func diffKinds(before, after []KindStat) []KindResult {
	prev := make(map[string]KindStat, len(before))
	for _, k := range before {
		prev[k.Kind] = k
	}
	var out []KindResult
	for _, k := range after {
		p := prev[k.Kind]
		d := KindResult{Kind: k.Kind, Txns: k.Txns - p.Txns, Aborts: k.Aborts - p.Aborts}
		if d.Txns > 0 {
			d.AvgNs = float64(k.TotalNs-p.TotalNs) / float64(d.Txns)
		}
		if d.Txns == 0 && d.Aborts == 0 {
			continue
		}
		out = append(out, d)
	}
	return out
}

// mergeKinds folds one phase's kind attribution into an aggregate by kind
// name, keeping first-seen order and recomputing the latency average as a
// transaction-weighted mean.
func mergeKinds(agg []KindResult, ph []KindResult) []KindResult {
	idx := make(map[string]int, len(agg))
	for i, k := range agg {
		idx[k.Kind] = i
	}
	for _, k := range ph {
		i, ok := idx[k.Kind]
		if !ok {
			agg = append(agg, k)
			idx[k.Kind] = len(agg) - 1
			continue
		}
		a := &agg[i]
		totalNs := a.AvgNs*float64(a.Txns) + k.AvgNs*float64(k.Txns)
		a.Txns += k.Txns
		a.Aborts += k.Aborts
		if a.Txns > 0 {
			a.AvgNs = totalNs / float64(a.Txns)
		}
	}
	return agg
}
