package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"medley/internal/tpcc"
)

// This file adapts the TPC-C backend to the workload engine. A TPCCSystem
// ignores the engine's generated key mixes: each Worker.Do call runs one
// transaction of the standard 45/43/4/4/4 TPC-C mix through a per-worker
// tpcc.Driver, so the engine's phase script, latency reservoirs, telemetry
// snapshots and consistency barriers all apply unchanged to a real
// composed-transaction workload. Tables are hash-partitioned over @N
// shards of the kv registry under one TxManager, so cross-shard TPC-C
// transactions (remote stock updates, whole-warehouse deliveries) stay
// strictly serializable.

// tpccStructures maps -systems specs onto registry structures for the
// TPC-C backend. The rotating skiplist is excluded: its background index
// maintenance needs the KVSystem start path, which the TPC-C backend does
// not run.
var tpccStructures = map[string]string{
	"medley-hash": "hash",
	"medley-skip": "skip",
	"medley-bst":  "bst",
}

// resolveTPCCSpec parses a TPC-C -systems spec (a tpccStructures name with
// an optional "@N" shard suffix) without building tables.
func resolveTPCCSpec(spec string, o SystemOpts) (structure string, shards int, err error) {
	name := spec
	shards = o.shards()
	if at := strings.LastIndexByte(spec, '@'); at >= 0 {
		n, err := strconv.Atoi(spec[at+1:])
		if err != nil || n < 1 {
			return "", 0, fmt.Errorf("bad shard suffix in system spec %q", spec)
		}
		name = spec[:at]
		shards = n
	}
	structure, ok := tpccStructures[name]
	if !ok {
		known := make([]string, 0, len(tpccStructures))
		for n := range tpccStructures {
			known = append(known, n)
		}
		sort.Strings(known)
		return "", 0, fmt.Errorf("TPC-C scenarios support systems %s (optionally @N), not %q",
			strings.Join(known, ", "), spec)
	}
	return structure, shards, nil
}

// NewTPCCSystem resolves a -systems spec into a TPC-C benchmark system at
// the given scale.
func NewTPCCSystem(spec string, sc tpcc.Scale, o SystemOpts) (System, error) {
	structure, shards, err := resolveTPCCSpec(spec, o)
	if err != nil {
		return nil, err
	}
	kvb, err := tpcc.NewKVBackend(shardedName("Medley-"+structure, shards), structure, shards)
	if err != nil {
		return nil, err
	}
	return &TPCCSystem{backend: kvb, kvb: kvb, sc: sc, mix: tpcc.FullMix(), shards: shards}, nil
}

// TPCCSystem runs the TPC-C workload on a tpcc.Backend under the engine.
type TPCCSystem struct {
	backend tpcc.Backend
	kvb     *tpcc.KVBackend // non-nil for Medley backends (stats source)
	sc      tpcc.Scale
	mix     tpcc.MixWeights
	shards  int

	mu      sync.Mutex
	seq     int64
	workers []*tpccWorker
}

// Name implements System.
func (s *TPCCSystem) Name() string { return s.backend.Name() }

// ShardCount implements ShardCounter.
func (s *TPCCSystem) ShardCount() int { return s.shards }

// Scale exposes the configured TPC-C cardinalities.
func (s *TPCCSystem) Scale() tpcc.Scale { return s.sc }

// Backend exposes the underlying TPC-C backend, for tests.
func (s *TPCCSystem) Backend() tpcc.Backend { return s.backend }

// Preload implements System: the engine's generated keys are ignored — the
// TPC-C initial population (clause 4.3) is the preload.
func (s *TPCCSystem) Preload([]uint64) {
	if err := tpcc.Load(s.backend, s.sc); err != nil {
		panic("harness: tpcc load: " + err.Error())
	}
}

// Start implements System.
func (s *TPCCSystem) Start() (stop func()) { return func() {} }

// NewWorker implements System: one tpcc.Driver per worker, deterministic
// in registration order.
func (s *TPCCSystem) NewWorker() Worker {
	s.mu.Lock()
	defer s.mu.Unlock()
	seed := int64(0x7C3C) + s.seq*7919
	s.seq++
	w := &tpccWorker{d: tpcc.NewMixDriver(s.backend, s.sc, seed, s.mix)}
	w.sw, _ = w.d.Worker().(tpcc.StatsWorker)
	s.workers = append(s.workers, w)
	return w
}

// TxStats implements TxStatser.
func (s *TPCCSystem) TxStats() (commits, aborts uint64) {
	if s.kvb == nil {
		return 0, 0
	}
	st := s.kvb.Manager().Stats()
	return st.Commits, st.Aborts
}

// FastPathStats implements FastPathStatser: the read-only TPC-C
// transactions (orderStatus, stockLevel) commit through the read-only
// elision, so the fast-path block is meaningful here.
func (s *TPCCSystem) FastPathStats() (readOnly, fastpath, commits uint64, ok bool) {
	if s.kvb == nil {
		return 0, 0, 0, false
	}
	st := s.kvb.Manager().Stats()
	return st.ReadOnlyCommits, st.FastPathCommits, st.Commits, true
}

// MetricsSnapshot implements MetricsSnapshotter.
func (s *TPCCSystem) MetricsSnapshot() []Metric {
	if s.kvb == nil {
		return nil
	}
	st := s.kvb.Manager().Stats()
	return []Metric{
		{Name: "tx_begins", Value: st.Begins},
		{Name: "tx_commits", Value: st.Commits},
		{Name: "tx_commits_read_only", Value: st.ReadOnlyCommits},
		{Name: "tx_commits_fastpath", Value: st.FastPathCommits},
		{Name: "tx_aborts", Value: st.Aborts},
		{Name: "tx_aborts_by_others", Value: st.AbortsByOthers},
		{Name: "tx_help_events", Value: st.HelpEvents},
		{Name: "pool_gets", Value: st.PoolGets},
		{Name: "pool_hits", Value: st.PoolHits},
		{Name: "pool_retires", Value: st.PoolRetires},
	}
}

// TxKindStats implements TxKindStatser by summing the per-worker kind
// cells. Worker cells are written only by their owning goroutine; the
// engine calls this at phase barriers, where workers are quiescent.
func (s *TPCCSystem) TxKindStats() []KindStat {
	s.mu.Lock()
	ws := append([]*tpccWorker(nil), s.workers...)
	s.mu.Unlock()
	out := make([]KindStat, tpcc.NumTxKinds)
	for k := range out {
		out[k].Kind = tpcc.TxKind(k).String()
	}
	for _, w := range ws {
		for k := range w.kinds {
			out[k].Txns += w.kinds[k].txns
			out[k].Aborts += w.kinds[k].aborts
			out[k].TotalNs += w.kinds[k].totalNs
		}
	}
	return out
}

// ConsistencyCheck implements ConsistencyChecker: the TPC-C clause 3.3.2
// conditions over the whole database, plus an "execution" violation for
// any transaction body that failed outright (a row missing mid-run means
// atomicity broke long before the check).
func (s *TPCCSystem) ConsistencyCheck() []ConsistencyViolation {
	vs, err := tpcc.Check(s.backend, s.sc)
	out := make([]ConsistencyViolation, 0, len(vs)+1)
	for _, v := range vs {
		out = append(out, ConsistencyViolation{Class: v.Class, Detail: v.Detail})
	}
	if err != nil {
		out = append(out, ConsistencyViolation{Class: "execution", Detail: err.Error()})
	}
	s.mu.Lock()
	for _, w := range s.workers {
		if w.lastErr != nil {
			out = append(out, ConsistencyViolation{
				Class:  "execution",
				Detail: fmt.Sprintf("%d failed transactions, first: %v", w.errs, w.lastErr),
			})
			break
		}
	}
	s.mu.Unlock()
	return out
}

// tpccKindCell is one transaction kind's tally on one worker.
type tpccKindCell struct {
	txns    uint64
	aborts  uint64
	totalNs uint64
}

// tpccWorker runs one TPC-C driver; Do ignores the generated ops and runs
// exactly one transaction of the mix.
type tpccWorker struct {
	d       *tpcc.Driver
	sw      tpcc.StatsWorker // nil when the backend cannot attribute aborts
	kinds   [tpcc.NumTxKinds]tpccKindCell
	errs    uint64
	lastErr error
	_       [32]byte
}

// Do implements Worker.
func (w *tpccWorker) Do([]Op) {
	var aborts0 uint64
	if w.sw != nil {
		aborts0 = w.sw.TxStats().Aborts
	}
	t0 := time.Now()
	kind, err := w.d.Step()
	dt := time.Since(t0)
	cell := &w.kinds[kind]
	if w.sw != nil {
		cell.aborts += w.sw.TxStats().Aborts - aborts0
	}
	if err != nil {
		w.errs++
		if w.lastErr == nil {
			w.lastErr = err
		}
		return
	}
	cell.txns++
	cell.totalNs += uint64(dt)
}

// NewScenarioSystem resolves a -systems spec for the given scenario: TPC-C
// scenarios construct through NewTPCCSystem at the given scale, everything
// else through the ordinary system registry.
func NewScenarioSystem(sc Scenario, spec string, scale tpcc.Scale, o SystemOpts) (System, error) {
	if sc.TPCC {
		return NewTPCCSystem(spec, scale, o)
	}
	return NewSystem(spec, o)
}

// ValidateScenarioSystemSpec checks a spec for the scenario without
// constructing tables or regions.
func ValidateScenarioSystemSpec(sc Scenario, spec string, o SystemOpts) error {
	if sc.TPCC {
		_, _, err := resolveTPCCSpec(spec, o)
		return err
	}
	return ValidateSystemSpec(spec, o)
}
