package harness

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file defines the scenario layer of the workload engine: what a
// transaction looks like (Mix), how the workload evolves over a run
// (Phase), and the named combinations the benchmark driver exposes
// (Scenario, Scenarios). The engine in engine.go executes them; the
// generators in generator.go supply the keys.

// Mix describes the transaction population of one phase. Three transaction
// shapes are drawn by weight:
//
//   - Mixed: TxMin..TxMax independent single-key operations in the
//     get:insert:remove proportions of Ratio — the paper's microbenchmark
//     transaction.
//   - Transfer: the bank-transfer composition from the package example:
//     read two keys, write two keys, all-or-nothing.
//   - Order: a TPC-C-mini new-order composition: one customer read, three
//     item read-update pairs, and one order-line insert into a disjoint
//     key region.
//
// A zero Mix (all weights zero) defaults to Mixed only.
type Mix struct {
	Ratio        Ratio // single-key op proportions within a Mixed transaction
	TxMin, TxMax int   // Mixed transaction length bounds (paper: 1..10)

	Mixed    int // weight of Mixed transactions
	Transfer int // weight of Transfer transactions
	Order    int // weight of Order transactions
	Scan     int // weight of Scan transactions (one bounded range scan)
	ScanLen  int // entries per scan (default 64)
}

// shapeWeights returns the normalized weights, applying the Mixed default.
func (m Mix) shapeWeights() (mixed, transfer, order, scan int) {
	mixed, transfer, order, scan = m.Mixed, m.Transfer, m.Order, m.Scan
	if mixed+transfer+order+scan == 0 {
		mixed = 1
	}
	return
}

// PhaseKind selects what a phase does.
type PhaseKind uint8

// Phase kinds of the workload engine.
const (
	// PhaseRun generates and executes transactions for the phase's
	// duration slice — the ordinary measurement phase.
	PhaseRun PhaseKind = iota
	// PhaseCrash takes no duration slice: the engine flushes committed
	// state, simulates a full-system crash, times recovery, and verifies
	// the recovered state against the ground-truth model of committed
	// operations (see verify.go). On systems without durable state it
	// records recoverable: false and leaves the system running.
	PhaseCrash
)

// Phase is one stage of a scenario. Weights slice the run's total duration
// across the PhaseRun phases, so a scenario's wall-clock cost is
// independent of its phase count; PhaseCrash phases take no slice (their
// elapsed time is the measured recovery latency).
type Phase struct {
	Name    string
	Kind    PhaseKind
	Weight  float64 // share of total duration (normalized across run phases)
	Mix     Mix
	Measure bool // include in the scenario's headline aggregate

	// Dist, when non-nil, overrides the scenario's key distribution for
	// this phase, so one scenario can measure the same mix under several
	// distributions (read-mostly runs uniform and zipfian phases
	// back-to-back).
	Dist *Dist
}

// Scenario is a named, self-contained workload: a key distribution plus a
// phase script. Scenarios are pure data — the engine owns execution — so
// adding a scenario never touches the engine or the systems under test.
type Scenario struct {
	Name        string
	Description string
	Dist        Dist
	Phases      []Phase

	// TPCC marks scenarios whose systems run the TPC-C driver instead of
	// the generated key mixes; the driver resolves system specs through
	// NewTPCCSystem and the engine's generated ops are ignored by the
	// workers (each Do call runs one TPC-C transaction).
	TPCC bool

	// WorkersPerThread, when > 1, multiplies the worker goroutines per
	// configured thread — the oversubscription chaos knob (workers ≫
	// GOMAXPROCS stresses help-based progress under preemption).
	WorkersPerThread int

	// GroupSize, when > 1, hands each worker's generated transactions to
	// DoGroup in runs of this size (see GroupWorker), modeling a client
	// that submits pipelined independent requests — the group-commit
	// workload shape. Each transaction keeps its own journal entry and
	// txns count; one latency sample covers a whole run.
	GroupSize int

	// VerifyFinal makes every run phase partition writes and journal
	// committed effects on all systems, then diffs the live end-of-run
	// state against the model (see verify.go) — chaos runs are checked,
	// not just timed.
	VerifyFinal bool

	// ServiceChaos marks scenarios that run the service-layer chaos
	// harness instead of the closed-loop engine: medleyd hosted over a
	// durable backend behind a fault-injecting proxy, killed and
	// restarted mid-run, with wire-level journal verification against
	// the recovered state (internal/service RunChaos). The scenario's
	// Dist and first phase's Mix shape the workload; the fault plan and
	// kill schedule are keyed by scenario name in the bench driver.
	ServiceChaos bool

	// ReplicaChaos marks scenarios that run the replication chaos
	// harness (internal/service RunReplicaChaos): a leader and a
	// follower replaying its commit-ordered feed, with either leader
	// kill + promotion cycles or replication-path partitions mid-run,
	// and a divergence check classifying every replica/model difference.
	// The fault plan (cycle count, staleness bounds, rates) is keyed by
	// scenario name in the bench driver, like ServiceChaos.
	ReplicaChaos bool
}

// HasCrash reports whether the scenario contains a crash phase. Crash
// scenarios run with partitioned writes (see verify.go) on every system so
// that all systems see the same workload whether or not they can recover.
func (sc Scenario) HasCrash() bool {
	for _, ph := range sc.Phases {
		if ph.Kind == PhaseCrash {
			return true
		}
	}
	return false
}

// orderLineBit tags the keys that Order transactions insert order lines
// under, keeping them disjoint from the item/customer key space without a
// second structure.
const orderLineBit = uint64(1) << 62

// TxGen generates the transactions of one phase for one worker. It is
// deterministic in its seed and, like KeyGen, single-goroutine by design.
type TxGen struct {
	r        *rand.Rand
	kg       KeyGen
	mix      Mix
	keyRange uint64
	buf      []Op
}

// NewTxGen builds a per-worker transaction generator: keys from dist over
// keyRange, shapes and lengths from mix, everything derived from seed.
func NewTxGen(dist Dist, keyRange uint64, mix Mix, seed int64) *TxGen {
	if mix.TxMin <= 0 {
		mix.TxMin = 1
	}
	if mix.TxMax < mix.TxMin {
		mix.TxMax = mix.TxMin
	}
	if mix.Ratio.Get+mix.Ratio.Insert+mix.Ratio.Remove == 0 {
		mix.Ratio = Ratio{Get: 2, Insert: 1, Remove: 1}
	}
	if keyRange == 0 {
		keyRange = 1
	}
	r := rand.New(rand.NewSource(seed))
	return &TxGen{r: r, kg: NewKeyGen(dist, keyRange, r), mix: mix, keyRange: keyRange,
		buf: make([]Op, 0, 16)}
}

// Next returns the next transaction's operations. The slice is reused by
// the following call; workers consume it before generating again.
func (g *TxGen) Next() []Op {
	mixed, transfer, order, scan := g.mix.shapeWeights()
	g.buf = g.buf[:0]
	x := g.r.Intn(mixed + transfer + order + scan)
	switch {
	case x >= mixed+transfer+order:
		n := g.mix.ScanLen
		if n <= 0 {
			n = 64
		}
		g.buf = append(g.buf, Op{Kind: OpRange, Val: uint64(n)})
	case x < mixed:
		n := g.mix.TxMin + g.r.Intn(g.mix.TxMax-g.mix.TxMin+1)
		for i := 0; i < n; i++ {
			g.buf = append(g.buf, Op{
				Kind: pickKind(g.r, g.mix.Ratio),
				Key:  g.kg.Next(),
				Val:  g.r.Uint64(),
			})
		}
	case x < mixed+transfer:
		from := g.kg.Next()
		to := g.kg.Next()
		if to == from {
			to = (from + 1) % g.keyRange
		}
		amount := g.r.Uint64() % 128
		g.buf = append(g.buf,
			Op{Kind: OpGet, Key: from},
			Op{Kind: OpGet, Key: to},
			Op{Kind: OpInsert, Key: from, Val: amount},
			Op{Kind: OpInsert, Key: to, Val: amount},
		)
	default:
		customer := g.kg.Next()
		g.buf = append(g.buf, Op{Kind: OpGet, Key: customer})
		for i := 0; i < 3; i++ {
			item := g.kg.Next()
			g.buf = append(g.buf,
				Op{Kind: OpGet, Key: item},
				Op{Kind: OpInsert, Key: item, Val: g.r.Uint64()},
			)
		}
		g.buf = append(g.buf, Op{
			Kind: OpInsert,
			Key:  orderLineBit | (g.r.Uint64() &^ orderLineBit),
			Val:  customer,
		})
	}
	return g.buf
}

// ---------------------------------------------------------------- registry

// paperMix is the paper's microbenchmark transaction shape at the given
// single-key ratio.
func paperMix(r Ratio) Mix { return Mix{Ratio: r, TxMin: 1, TxMax: 10, Mixed: 1} }

// readMostlyMix is the 95/5 point-lookup traffic of the read-mostly
// scenario: 95% gets, the 5% writes split evenly between inserts and
// removes so the working set stays size-stable, in short 1-4 op
// transactions so most transactions are entirely read-only (the fast-path
// population) and most of the rest carry exactly one write.
func readMostlyMix() Mix {
	return Mix{Ratio: Ratio{Get: 38, Insert: 1, Remove: 1}, TxMin: 1, TxMax: 4, Mixed: 1}
}

// onePhase wraps a mix as a single measured phase.
func onePhase(m Mix) []Phase {
	return []Phase{{Name: "mixed", Weight: 1, Mix: m, Measure: true}}
}

// crashPhases is the crash-recover phase script: populate, run the paper's
// steady state, crash and verify, then keep running on the recovered
// state. The crash phase both recovers and verifies; the post-crash mixed
// phase shows whether the system is healthy (not just correct) afterwards.
func crashPhases(ratio Ratio) []Phase {
	return []Phase{
		{Name: "load", Weight: 0.2,
			Mix: Mix{Ratio: Ratio{Get: 0, Insert: 1, Remove: 0}, TxMin: 1, TxMax: 10, Mixed: 1}},
		{Name: "mixed", Weight: 0.5, Mix: paperMix(ratio), Measure: true},
		{Name: "crash", Kind: PhaseCrash},
		{Name: "post-mixed", Weight: 0.3, Mix: paperMix(ratio), Measure: true},
	}
}

// builtin is the scenario registry. Keys are the -scenario names of
// cmd/medley-bench; EXPERIMENTS.md documents how they map to the paper's
// figures and beyond.
var builtin = map[string]Scenario{
	"uniform-mixed": {
		Description: "paper microbenchmark: uniform keys, 2:1:1 get:insert:remove, 1-10 ops/txn",
		Dist:        Dist{Kind: DistUniform},
		Phases:      onePhase(paperMix(Ratio{Get: 2, Insert: 1, Remove: 1})),
	},
	"uniform-readmostly": {
		Description: "paper microbenchmark: uniform keys, 18:1:1",
		Dist:        Dist{Kind: DistUniform},
		Phases:      onePhase(paperMix(Ratio{Get: 18, Insert: 1, Remove: 1})),
	},
	"uniform-writeheavy": {
		Description: "paper microbenchmark: uniform keys, 0:1:1",
		Dist:        Dist{Kind: DistUniform},
		Phases:      onePhase(paperMix(Ratio{Get: 0, Insert: 1, Remove: 1})),
	},
	"zipfian-mixed": {
		Description: "skewed contention: Zipf(1.2) scrambled keys, 2:1:1",
		Dist:        Dist{Kind: DistZipfian, Theta: 1.2},
		Phases:      onePhase(paperMix(Ratio{Get: 2, Insert: 1, Remove: 1})),
	},
	"zipfian-readmostly": {
		Description: "skewed read-mostly: Zipf(1.2) scrambled keys, 18:1:1",
		Dist:        Dist{Kind: DistZipfian, Theta: 1.2},
		Phases:      onePhase(paperMix(Ratio{Get: 18, Insert: 1, Remove: 1})),
	},
	"latest-mixed": {
		Description: "recency skew: Zipf head at the newest keys, 2:1:1",
		Dist:        Dist{Kind: DistLatest, Theta: 1.2},
		Phases:      onePhase(paperMix(Ratio{Get: 2, Insert: 1, Remove: 1})),
	},
	"hotspot-readmostly": {
		Description: "90% of ops on 10% of keys, 18:1:1",
		Dist:        Dist{Kind: DistHotspot, HotFrac: 0.1, HotOpFrac: 0.9},
		Phases:      onePhase(paperMix(Ratio{Get: 18, Insert: 1, Remove: 1})),
	},
	"transfer": {
		Description: "bank transfers: 2-key read-modify-write compositions, uniform keys",
		Dist:        Dist{Kind: DistUniform},
		Phases:      onePhase(Mix{Transfer: 1}),
	},
	"tpcc-mini": {
		Description: "order entry: 8-op new-order-style compositions, Zipf item popularity",
		Dist:        Dist{Kind: DistZipfian, Theta: 1.2},
		Phases:      onePhase(Mix{Order: 1}),
	},
	"composed-mixed": {
		Description: "mixed population: microbenchmark, transfer and order txns 2:1:1",
		Dist:        Dist{Kind: DistZipfian, Theta: 1.2},
		Phases: onePhase(Mix{
			Ratio: Ratio{Get: 2, Insert: 1, Remove: 1}, TxMin: 1, TxMax: 10,
			Mixed: 2, Transfer: 1, Order: 1,
		}),
	},
	"crash-recover-uniform": {
		Description: "durability: load, 2:1:1 steady state, crash + verified recovery, post-crash steady state; uniform keys",
		Dist:        Dist{Kind: DistUniform},
		Phases:      crashPhases(Ratio{Get: 2, Insert: 1, Remove: 1}),
	},
	"crash-recover-zipfian": {
		Description: "durability under skew: crash + verified recovery with Zipf(1.2) keys, 2:1:1",
		Dist:        Dist{Kind: DistZipfian, Theta: 1.2},
		Phases:      crashPhases(Ratio{Get: 2, Insert: 1, Remove: 1}),
	},
	"crash-recover-writeheavy": {
		Description: "durability under churn: crash + verified recovery at 0:1:1 (stresses payload retirement and block reuse)",
		Dist:        Dist{Kind: DistUniform},
		Phases:      crashPhases(Ratio{Get: 0, Insert: 1, Remove: 1}),
	},
	"alloc-pressure": {
		Description: "GC pressure: the mixed-zipfian microbenchmark instrumented for allocs/op — compares recycling arenas (Medley-hash) against the unpooled baseline (Medley-hash-nopool) in one report",
		Dist:        Dist{Kind: DistZipfian, Theta: 1.2},
		Phases:      onePhase(paperMix(Ratio{Get: 2, Insert: 1, Remove: 1})),
	},
	"read-mostly": {
		Description: "commit fast-path showcase: 95/5 point mix (2.5% inserts, 2.5% removes), short 1-4 op transactions, uniform and Zipf(1.2) phases measured separately",
		Dist:        Dist{Kind: DistUniform},
		Phases: []Phase{
			{Name: "uniform", Weight: 0.5, Mix: readMostlyMix(), Measure: true},
			{Name: "zipfian", Weight: 0.5, Mix: readMostlyMix(), Measure: true,
				Dist: &Dist{Kind: DistZipfian, Theta: 1.2}},
		},
	},
	"scan-heavy": {
		Description: "read-only range scans interleaved 1:2 with 95/5 point transactions: scans commit through the read-only fast path, point writes through the single-write fold",
		Dist:        Dist{Kind: DistUniform},
		Phases: onePhase(Mix{
			Ratio: Ratio{Get: 38, Insert: 1, Remove: 1}, TxMin: 1, TxMax: 4,
			Mixed: 2, Scan: 1, ScanLen: 128,
		}),
	},
	"range-scan": {
		Description: "scan-heavy mix: 2:1:1 point ops with 64-entry range scans interleaved 3:1",
		Dist:        Dist{Kind: DistUniform},
		Phases: onePhase(Mix{
			Ratio: Ratio{Get: 2, Insert: 1, Remove: 1}, TxMin: 1, TxMax: 10,
			Mixed: 3, Scan: 1, ScanLen: 64,
		}),
	},
	"sharded-uniform": {
		Description: "partitioned scaling: paper 2:1:1 mix for sharded stores vs single instances (-shards / name@N)",
		Dist:        Dist{Kind: DistUniform},
		Phases:      onePhase(paperMix(Ratio{Get: 2, Insert: 1, Remove: 1})),
	},
	"sharded-zipfian": {
		Description: "partitioned scaling under write-heavy skew: Zipf(1.2) keys, 0:1:1",
		Dist:        Dist{Kind: DistZipfian, Theta: 1.2},
		Phases:      onePhase(paperMix(Ratio{Get: 0, Insert: 1, Remove: 1})),
	},
	"sharded-transfer": {
		Description: "cross-shard atomicity under load: 2-key transfers that straddle shard boundaries",
		Dist:        Dist{Kind: DistUniform},
		Phases:      onePhase(Mix{Transfer: 1}),
	},
	"tpcc-full": {
		Description: "full TPC-C: the standard 45/43/4/4/4 five-transaction mix over hash-partitioned warehouses, with the clause 3.3.2 consistency conditions verified after the measured phases and after a crash phase",
		TPCC:        true,
		Phases: []Phase{
			{Name: "mixed", Weight: 0.7, Measure: true},
			{Name: "crash", Kind: PhaseCrash},
			{Name: "post-mixed", Weight: 0.3, Measure: true},
		},
	},
	"chaos-crash-in-recovery": {
		Description: "chaos: a second crash lands immediately after recovery completes, before any post-crash work — recovery must be idempotent and the twice-recovered state still match the committed model",
		Dist:        Dist{Kind: DistUniform},
		Phases: []Phase{
			{Name: "load", Weight: 0.2,
				Mix: Mix{Ratio: Ratio{Get: 0, Insert: 1, Remove: 0}, TxMin: 1, TxMax: 10, Mixed: 1}},
			{Name: "mixed", Weight: 0.4,
				Mix: paperMix(Ratio{Get: 2, Insert: 1, Remove: 1}), Measure: true},
			{Name: "crash", Kind: PhaseCrash},
			{Name: "re-crash", Kind: PhaseCrash},
			{Name: "post-mixed", Weight: 0.4,
				Mix: paperMix(Ratio{Get: 2, Insert: 1, Remove: 1}), Measure: true},
		},
	},
	"chaos-hot-key": {
		Description: "chaos: pathological contention — 90% of ops hit a single key (hotspot with a one-key hot set), 2:1:1, final state verified against the committed model",
		Dist:        Dist{Kind: DistHotspot, HotFrac: 1e-9, HotOpFrac: 0.9},
		VerifyFinal: true,
		Phases:      onePhase(paperMix(Ratio{Get: 2, Insert: 1, Remove: 1})),
	},
	"chaos-oversubscribe": {
		Description:      "chaos: 8 worker goroutines per configured thread (workers ≫ GOMAXPROCS) — helping must carry preempted commits; final state verified against the committed model",
		Dist:             Dist{Kind: DistUniform},
		WorkersPerThread: 8,
		VerifyFinal:      true,
		Phases:           onePhase(paperMix(Ratio{Get: 2, Insert: 1, Remove: 1})),
	},
	"chaos-shard-skew": {
		Description: "chaos: write-heavy Zipf(1.4) skew that concentrates traffic on a few shards of a partitioned store; final state verified against the committed model",
		Dist:        Dist{Kind: DistZipfian, Theta: 1.4},
		VerifyFinal: true,
		Phases:      onePhase(paperMix(Ratio{Get: 0, Insert: 1, Remove: 1})),
	},
	"chaos-scan-race": {
		Description: "chaos: long range scans (4096 entries) racing write-heavy bursts 1:2; scan validation vs. churn, final state verified against the committed model",
		Dist:        Dist{Kind: DistUniform},
		VerifyFinal: true,
		Phases: onePhase(Mix{
			Ratio: Ratio{Get: 0, Insert: 1, Remove: 1}, TxMin: 1, TxMax: 10,
			Mixed: 2, Scan: 1, ScanLen: 4096,
		}),
	},
	"groupcommit": {
		Description: "group-commit showcase: workers submit pipelined runs of 8 independent 2:1:1 transactions (see GroupSize), measured under Zipf(1.2) skew and under a 90/10 hotspot after an unmeasured warm phase (recycling arenas at steady state) — compares merged group commits (Medley-hash) against the -groupcommit=off ablation (Medley-hash-nogroup)",
		Dist:        Dist{Kind: DistZipfian, Theta: 1.2},
		GroupSize:   8,
		Phases: []Phase{
			{Name: "warm", Weight: 0.34, Mix: paperMix(Ratio{Get: 2, Insert: 1, Remove: 1})},
			{Name: "zipfian", Weight: 0.33, Mix: paperMix(Ratio{Get: 2, Insert: 1, Remove: 1}), Measure: true},
			{Name: "hot-key", Weight: 0.33, Mix: paperMix(Ratio{Get: 2, Insert: 1, Remove: 1}), Measure: true,
				Dist: &Dist{Kind: DistHotspot, HotFrac: 0.1, HotOpFrac: 0.9}},
		},
	},
	"chaos-group-commit": {
		Description: "chaos: group commit racing helper aborts — pipelined runs of 8 transactions over a 90/10 hotspot force merged commits to conflict and fall back mid-run; final state verified against the committed model",
		Dist:        Dist{Kind: DistHotspot, HotFrac: 0.1, HotOpFrac: 0.9},
		GroupSize:   8,
		VerifyFinal: true,
		Phases:      onePhase(paperMix(Ratio{Get: 2, Insert: 1, Remove: 1})),
	},
	"service-mixed": {
		Description: "network service traffic: 90/10 point mixes in short transactions with transfers interleaved 4:1, Zipf(1.2) keys — the open-loop SLO workload for medleyd and the in-process driver",
		Dist:        Dist{Kind: DistZipfian, Theta: 1.2},
		Phases: onePhase(Mix{
			Ratio: Ratio{Get: 18, Insert: 1, Remove: 1}, TxMin: 1, TxMax: 8,
			Mixed: 4, Transfer: 1,
		}),
	},
	"chaos-service-restart": {
		Description:  "service chaos: medleyd over a durable backend is killed and restarted 3 times mid-traffic on a clean network; client journals of definitively acked put/delete batches must match the recovered state exactly (zero wire-level durability violations)",
		Dist:         Dist{Kind: DistUniform},
		ServiceChaos: true,
		Phases: onePhase(Mix{
			Ratio: Ratio{Get: 2, Insert: 1, Remove: 1}, TxMin: 1, TxMax: 8, Mixed: 1,
		}),
	},
	"chaos-net-flaky": {
		Description:  "service chaos: 3 restarts under a flaky network — per-chunk latency and jitter, every 7th connection reset after its request is delivered — exercising retry backoff, the circuit breaker and the dedup window together; wire-level verification on the recovered state",
		Dist:         Dist{Kind: DistUniform},
		ServiceChaos: true,
		Phases: onePhase(Mix{
			Ratio: Ratio{Get: 2, Insert: 1, Remove: 1}, TxMin: 1, TxMax: 8, Mixed: 1,
		}),
	},
	"chaos-slow-client": {
		Description:  "service chaos: a slow, lossy edge — heavy per-chunk latency and slow half-open closes — with tight request deadlines, so expired dispositions and deadline culls dominate; one restart, wire-level verification on the recovered state",
		Dist:         Dist{Kind: DistUniform},
		ServiceChaos: true,
		Phases: onePhase(Mix{
			Ratio: Ratio{Get: 4, Insert: 1, Remove: 1}, TxMin: 1, TxMax: 6, Mixed: 1,
		}),
	},
	"chaos-replica-failover": {
		Description:  "replica chaos: 3 leader kill + follower promotion cycles mid-traffic, each dead address rebound by a fresh snapshot-bootstrapped follower; acked writes lost at promotion are enumerated from the dead feed and tainted, everything else must match the final replica exactly (zero divergence), availability budgeted at 0.99",
		Dist:         Dist{Kind: DistUniform},
		ReplicaChaos: true,
		Phases: onePhase(Mix{
			Ratio: Ratio{Get: 8, Insert: 2, Remove: 1}, TxMin: 1, TxMax: 4, Mixed: 1,
		}),
	},
	"chaos-replica-lag": {
		Description:  "replica chaos: the replication path is partitioned twice mid-run; replay lag must build past the staleness bound, lagging follower reads must be rejected (409, driver falls back to the leader), and post-heal catch-up must converge with zero lost writes and zero divergence",
		Dist:         Dist{Kind: DistUniform},
		ReplicaChaos: true,
		Phases: onePhase(Mix{
			Ratio: Ratio{Get: 12, Insert: 2, Remove: 1}, TxMin: 1, TxMax: 4, Mixed: 1,
		}),
	},
	"load-mixed-drain": {
		Description: "working-set lifecycle: insert-only load, 2:1:1 steady state, remove-heavy drain",
		Dist:        Dist{Kind: DistUniform},
		Phases: []Phase{
			{Name: "load", Weight: 0.25,
				Mix: Mix{Ratio: Ratio{Get: 0, Insert: 1, Remove: 0}, TxMin: 1, TxMax: 10, Mixed: 1}},
			{Name: "mixed", Weight: 0.5,
				Mix: paperMix(Ratio{Get: 2, Insert: 1, Remove: 1}), Measure: true},
			{Name: "drain", Weight: 0.25,
				Mix: Mix{Ratio: Ratio{Get: 1, Insert: 0, Remove: 4}, TxMin: 1, TxMax: 10, Mixed: 1}},
		},
	},
}

// LookupScenario returns the named built-in scenario.
func LookupScenario(name string) (Scenario, error) {
	sc, ok := builtin[name]
	if !ok {
		return Scenario{}, fmt.Errorf("unknown scenario %q (known: %v)", name, ScenarioNames())
	}
	sc.Name = name
	return sc, nil
}

// ScenarioNames lists the built-in scenarios in stable order.
func ScenarioNames() []string {
	names := make([]string, 0, len(builtin))
	for n := range builtin {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
