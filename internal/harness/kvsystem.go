package harness

// This file is the registry-driven generic system: KVSystem drives any
// kv.TxMap (a registry structure, a ShardedStore, a non-transactional
// baseline) through one worker loop, and that same loop (kvWorker) also
// carries MontageSystem's workers. The per-structure adapter zoo this
// replaces lived in systems.go.

import (
	"sync"
	"time"

	"medley/internal/cdc"
	"medley/internal/core"
	"medley/internal/ebr"
	"medley/internal/kv"
)

// --------------------------------------------------- Medley (via registry)

// KVSystem benchmarks any kv.TxMap — a registry-built structure, a
// hash-partitioned ShardedStore of them, or a non-transactional baseline —
// under one worker loop. The seven hand-rolled adapters this file once
// carried for Medley, Original and TxOff are all configurations of this
// one type.
type KVSystem struct {
	name  string
	mgr   *core.TxManager // nil for untransformed baselines
	m     kv.TxMap
	smr   *ebr.Manager
	notx  bool // run operations outside any transaction (Original/TxOff)
	shard int

	// idle holds workers released at phase barriers for reuse (see
	// WorkerReleaser in capabilities.go): a worker's recycling arenas and
	// EBR handle stay warm across phases instead of starting cold — and
	// leaking their limbo — every phase. pump is the handle Quiesce uses
	// to advance the EBR epoch at barriers; it never enters a critical
	// section or retires anything.
	mu   sync.Mutex
	idle []*kvWorker
	pump *ebr.Handle
}

// newKVSystem builds a system over the named registry structure,
// hash-partitioned over shards instances when shards > 1. pooling enables
// the core's cell/node recycling arenas (sound here because every worker
// holds its EBR handle's critical section across each transaction — see
// kvWorker.Do — and background maintenance is guarded the same way);
// fastpaths keeps the core's commit fast paths on (the default — false is
// the -fastpaths=off ablation baseline that forces every commit through
// the full descriptor handshake); groupcommit keeps the core's merged
// group-commit path on (the default — false is the -groupcommit=off
// ablation baseline that runs every RunGroup member as its own commit).
func newKVSystem(name, structure string, shards, buckets int, notx, pooling, fastpaths, groupcommit bool) *KVSystem {
	var mgr *core.TxManager
	if kv.Composable(structure) {
		mgr = core.NewTxManager()
	}
	store, err := kv.NewShardedNamed(structure, shards, kv.Options{Mgr: mgr, Buckets: buckets})
	if err != nil {
		panic(err) // registry names here are static; a failure is a bug
	}
	s := &KVSystem{name: shardedName(name, store.ShardCount()), mgr: mgr,
		notx: notx, shard: store.ShardCount()}
	if store.ShardCount() == 1 {
		s.m = store.Shard(0) // no dispatch layer for single instances
	} else {
		s.m = store
	}
	if !notx && mgr != nil {
		s.smr = ebr.New(256)
		if pooling {
			mgr.EnablePooling()
		}
		if !fastpaths {
			mgr.DisableFastPaths()
		}
		if !groupcommit {
			mgr.DisableGroupCommit()
		}
	}
	return s
}

// NewMedleyHash is the Figure 7 Medley configuration (Michael's hash
// table, 1M buckets in the paper).
func NewMedleyHash(buckets int) *KVSystem {
	return newKVSystem("Medley-hash", "hash", 1, buckets, false, true, true, true)
}

// NewMedleySkip is the Figure 8 Medley configuration (Fraser's skiplist).
func NewMedleySkip() *KVSystem {
	return newKVSystem("Medley-skip", "skip", 1, 0, false, true, true, true)
}

// NewMedleySharded is Medley over a ShardedStore of the named registry
// structure ("hash", "skip", "bst", "rotating"): N instances under one
// TxManager, so cross-shard transactions stay strictly serializable.
func NewMedleySharded(structure string, shards, buckets int) *KVSystem {
	return NewMedleyShardedPooling(structure, shards, buckets, true)
}

// NewMedleyShardedPooling is NewMedleySharded with recycling arenas
// toggleable: pooling=false is the unpooled baseline of the alloc-pressure
// comparison (every displaced cell and unlinked node goes to the GC, the
// pre-recycling behavior), named with a "-nopool" suffix so both
// configurations are distinguishable in one report.
func NewMedleyShardedPooling(structure string, shards, buckets int, pooling bool) *KVSystem {
	return NewMedleyKV(structure, shards, buckets, pooling, true, true)
}

// NewMedleyKV is the fully-parameterized Medley constructor: recycling
// arenas (pooling), commit fast paths (fastpaths) and merged group
// commits (groupcommit) are independently ablatable, and each disabled
// axis suffixes the system name ("-nopool", "-nofast", "-nogroup") so
// every configuration stays distinguishable when several appear in one
// report.
func NewMedleyKV(structure string, shards, buckets int, pooling, fastpaths, groupcommit bool) *KVSystem {
	name := "Medley-" + structure
	if !pooling {
		name += "-nopool"
	}
	if !fastpaths {
		name += "-nofast"
	}
	if !groupcommit {
		name += "-nogroup"
	}
	return newKVSystem(name, structure, shards, buckets, false, pooling, fastpaths, groupcommit)
}

// NewOriginalSkip is Fraser's untransformed skiplist ("Original" in
// Figure 10): operations execute directly, one group of 1-10 counted as a
// "transaction" for latency comparability.
func NewOriginalSkip() *KVSystem {
	return newKVSystem("Original-skip", "plain-skip", 1, 0, true, false, true, true)
}

// NewTxOffSkip is the NBTC-transformed skiplist with transactions off
// ("TxOff" in Figure 10): the transformed code paths run, but outside any
// transaction, so all instrumentation is dynamically elided.
func NewTxOffSkip() *KVSystem {
	return newKVSystem("TxOff-skip", "skip", 1, 0, true, false, true, true)
}

// Name implements System.
func (s *KVSystem) Name() string { return s.name }

// ShardCount implements ShardCounter.
func (s *KVSystem) ShardCount() int { return s.shard }

// Manager exposes the TxManager for statistics (nil for baselines).
func (s *KVSystem) Manager() *core.TxManager { return s.mgr }

// Map exposes the underlying store, for tests.
func (s *KVSystem) Map() kv.TxMap { return s.m }

// TxStats implements TxStatser from the manager's sharded counters.
// Baselines without a manager (Original) report zeros, matching their
// nothing-can-abort semantics.
func (s *KVSystem) TxStats() (commits, aborts uint64) {
	if s.mgr == nil {
		return 0, 0
	}
	st := s.mgr.Stats()
	return st.Commits, st.Aborts
}

// PoolStats implements PoolStatser: cumulative recycling-arena counters
// aggregated over all workers (zeros for baselines and unpooled runs).
func (s *KVSystem) PoolStats() (gets, hits, retires uint64) {
	if s.mgr == nil {
		return 0, 0, 0
	}
	st := s.mgr.Stats()
	return st.PoolGets, st.PoolHits, st.PoolRetires
}

// FastPathStats implements FastPathStatser: cumulative commit fast-path
// counters aggregated over all workers. ok is false for systems that run
// no commit protocol at all (Original/TxOff execute outside transactions),
// so their reports carry no fastpath block; a -fastpaths=off Medley run
// reports ok with zero fast-path counts — the ablation is a measurement,
// not an absence.
func (s *KVSystem) FastPathStats() (readOnly, fastpath, commits uint64, ok bool) {
	if s.notx || s.mgr == nil {
		return 0, 0, 0, false
	}
	st := s.mgr.Stats()
	return st.ReadOnlyCommits, st.FastPathCommits, st.Commits, true
}

// GroupStats implements GroupStatser: cumulative group-commit counters
// aggregated over all workers, plus the physical commit count the share
// derivation needs. ok mirrors FastPathStats: false for systems running
// no commit protocol, true with zero merges for a -groupcommit=off run.
func (s *KVSystem) GroupStats() (groups, grouped, commits uint64, ok bool) {
	if s.notx || s.mgr == nil {
		return 0, 0, 0, false
	}
	st := s.mgr.Stats()
	return st.GroupCommits, st.GroupedTxns, st.Commits, true
}

// MetricsSnapshot implements MetricsSnapshotter: cumulative transaction,
// pool and EBR counters under stable statsd-style names. Baselines without
// a manager export nothing (no block is reported).
func (s *KVSystem) MetricsSnapshot() []Metric {
	if s.mgr == nil {
		return nil
	}
	st := s.mgr.Stats()
	out := []Metric{
		{Name: "tx_begins", Value: st.Begins},
		{Name: "tx_commits", Value: st.Commits},
		{Name: "tx_commits_read_only", Value: st.ReadOnlyCommits},
		{Name: "tx_commits_fastpath", Value: st.FastPathCommits},
		{Name: "tx_group_commits", Value: st.GroupCommits},
		{Name: "tx_grouped_txns", Value: st.GroupedTxns},
		{Name: "tx_aborts", Value: st.Aborts},
		{Name: "tx_aborts_by_others", Value: st.AbortsByOthers},
		{Name: "tx_help_events", Value: st.HelpEvents},
		{Name: "pool_gets", Value: st.PoolGets},
		{Name: "pool_hits", Value: st.PoolHits},
		{Name: "pool_retires", Value: st.PoolRetires},
	}
	if s.smr != nil {
		es := s.smr.Stats()
		out = append(out,
			Metric{Name: "ebr_retired", Value: es.Retired},
			Metric{Name: "ebr_reclaimed", Value: es.Reclaimed},
			Metric{Name: "ebr_advances", Value: es.Advances},
		)
	}
	return out
}

// StateSnapshot implements Snapshotter for VerifyFinal scenarios: iterate
// the live store. Called only at phase barriers, where it is exact.
func (s *KVSystem) StateSnapshot(fn func(key, val uint64) bool) {
	s.m.Range(fn)
}

// guardedMaintainer is the capability of structures whose background
// maintenance must run inside an EBR critical section under pooling
// (rotating skiplist index rebuilds traverse recyclable cells).
type guardedMaintainer interface {
	StartGuardedMaintenance(interval time.Duration, guard func(func())) (stop func())
}

// Start implements System: it starts per-shard maintenance where the
// structure has any (rotating skiplist). Under pooling the maintenance
// goroutine gets its own EBR handle and brackets every rebuild with it, so
// index traversals never observe a recycled cell.
func (s *KVSystem) Start() (stop func()) {
	var stops []func()
	start := func(m kv.TxMap) {
		if s.smr != nil && s.mgr != nil && s.mgr.PoolingEnabled() {
			if gm, ok := m.(guardedMaintainer); ok {
				h := s.smr.Register()
				stops = append(stops, gm.StartGuardedMaintenance(25*time.Millisecond, func(f func()) {
					h.Enter()
					f()
					h.Exit()
				}))
				return
			}
		}
		if mt, ok := m.(maintainer); ok {
			stops = append(stops, mt.StartMaintenance(25*time.Millisecond))
		}
	}
	if sh, ok := s.m.(*kv.ShardedStore); ok {
		for i := 0; i < sh.ShardCount(); i++ {
			start(sh.Shard(i))
		}
	} else {
		start(s.m)
	}
	return func() {
		for _, f := range stops {
			f()
		}
	}
}

// Preload implements System.
func (s *KVSystem) Preload(keys []uint64) {
	for _, k := range keys {
		s.m.Put(nil, k, k)
	}
}

// kvWorker drives a bound TxMap; it is the worker of KVSystem and
// MontageSystem both, and doubles as the kv.Executor behind NewExecutor.
// Harness ops are translated into the kv batch request API and executed
// through kv.Apply — the same shard-grouped routing path the network
// service's tick executor uses.
type kvWorker struct {
	m  kv.TxMap
	tx *core.Tx // nil: execute outside transactions
	h  *ebr.Handle

	kops []kv.Op // translation scratch, reused across transactions

	// Change-feed tap (SetChangeFeed): committed batches publish their
	// writes under the transaction's commit ticket. pub and feedRes are
	// publication scratch (feedRes captures OpAdd post-values when the
	// caller discards results).
	feed    *cdc.Feed
	pub     []cdc.Write
	feedRes []kv.Result

	// Group scratch, reused across DoGroup/ExecGroup calls: per-member
	// translated op slices, the Batch headers over them, and the
	// ApplyGroup flatten buffers.
	gtrans   [][]kv.Op
	gbatches []kv.Batch
	gsc      kv.GroupScratch
}

// groupMaxMembers and groupMaxOps bound one merged commit: more members
// amortize better but widen the abort blast radius, and groupMaxOps keeps
// the flattened group within one shard-grouped routing pass
// (kv.ApplyGroup's bitset bound).
const (
	groupMaxMembers = 16
	groupMaxOps     = 64
)

// NewWorker implements System: a worker released at an earlier phase
// barrier when one is available (warm arenas and handle), a fresh one
// otherwise.
func (s *KVSystem) NewWorker() Worker {
	s.mu.Lock()
	if n := len(s.idle); n > 0 {
		w := s.idle[n-1]
		s.idle[n-1] = nil
		s.idle = s.idle[:n-1]
		s.mu.Unlock()
		return w
	}
	s.mu.Unlock()
	return s.newWorker()
}

// ReleaseWorker implements WorkerReleaser: the engine returns each
// phase's workers at the barrier for the next phase to reuse. The engine
// quiesces first, so the handle flush here — run with barrier-exclusive
// ownership of the worker — reclaims the whole phase's retired garbage
// into the worker's freelists before the next phase starts.
func (s *KVSystem) ReleaseWorker(w Worker) {
	kw, ok := w.(*kvWorker)
	if !ok {
		return
	}
	if kw.h != nil {
		kw.h.Flush()
	}
	s.mu.Lock()
	s.idle = append(s.idle, kw)
	s.mu.Unlock()
}

// Quiesce implements Quiescer: with every worker parked at the barrier,
// pump the EBR epoch far enough (the three-epoch grace) that everything
// retired during the phase becomes reclaimable — the released workers
// then refill their freelists from it early in the next phase. Under
// load this advance starves: an oversubscribed phase always has some
// worker parked mid-transaction, holding a stale active epoch. Best
// effort — a guarded maintenance goroutine mid-rebuild just stops the
// pump early.
func (s *KVSystem) Quiesce() {
	if s.smr == nil {
		return
	}
	if s.pump == nil {
		s.pump = s.smr.Register()
	}
	for i := 0; i < 3; i++ {
		if !s.pump.TryAdvance() {
			break
		}
	}
}

// SupportsChangeFeed reports whether this system's executors can publish
// a commit-ordered change feed: the store must run real transactions
// (baselines executing outside any commit protocol have no commit order
// to tap).
func (s *KVSystem) SupportsChangeFeed() bool { return !s.notx && s.mgr != nil }

// NewExecutor implements the backend seam of the network service layer
// (internal/service): a per-goroutine kv.Executor running batch requests
// as atomic transactions over the same store, transaction registration and
// EBR guard as the benchmark workers. Call it on the goroutine that will
// execute (the Tx and handle are goroutine-bound).
func (s *KVSystem) NewExecutor() kv.Executor {
	return s.newWorker()
}

func (s *KVSystem) newWorker() *kvWorker {
	if s.notx {
		return &kvWorker{m: kv.Bind(s.m, nil)}
	}
	tx := s.mgr.Register()
	w := &kvWorker{tx: tx}
	if s.smr != nil {
		w.h = s.smr.Register()
		tx.SetSMR(w.h)
	}
	w.m = kv.Bind(s.m, tx)
	return w
}

func (w *kvWorker) Do(ops []Op) {
	w.kops = w.kops[:0]
	for _, op := range ops {
		w.kops = append(w.kops, kv.Op{Kind: kvKind(op.Kind), Key: op.Key, Val: op.Val})
	}
	_ = w.ExecBatch(w.kops, nil)
}

// DoGroup implements GroupWorker: each op list is one generated logical
// transaction; the group commits through ExecGroup so compatible members
// merge into group commits (or run individually under the -groupcommit
// ablation — same loop, different commit protocol).
func (w *kvWorker) DoGroup(opss [][]Op) {
	if cap(w.gbatches) < len(opss) {
		w.gbatches = make([]kv.Batch, len(opss))
		w.gtrans = make([][]kv.Op, len(opss))
	}
	batches := w.gbatches[:len(opss)]
	for i, ops := range opss {
		t := w.gtrans[i][:0]
		for _, op := range ops {
			t = append(t, kv.Op{Kind: kvKind(op.Kind), Key: op.Key, Val: op.Val})
		}
		w.gtrans[i] = t
		batches[i] = kv.Batch{Ops: t}
	}
	w.ExecGroup(batches, nil)
}

// SetChangeFeed attaches a change feed to this executor: every committed
// batch with writes draws a commit ticket (core ticket.go) and publishes
// its writes' absolute post-states to f. It reports false — and attaches
// nothing — for workers executing outside transactions (no commit order
// exists to tap). The service layer attaches feeds through this seam on
// each worker executor.
func (w *kvWorker) SetChangeFeed(f *cdc.Feed) bool {
	if w.tx == nil {
		return false
	}
	w.feed = f
	w.tx.SetCommitTicketer(f)
	return true
}

// publishBatch publishes a just-committed batch's writes under its
// commit ticket, in op order. No ticket means no descriptor cell was
// installed (every write was a no-op, e.g. deletes of absent keys):
// nothing visible changed, nothing to replicate.
func (w *kvWorker) publishBatch(ops []kv.Op, res []kv.Result) {
	t, ok := w.tx.CommittedTicket()
	if !ok {
		return
	}
	w.pub = w.pub[:0]
	for i := range ops {
		switch ops[i].Kind {
		case kv.OpPut:
			w.pub = append(w.pub, cdc.Write{Key: ops[i].Key, Val: ops[i].Val})
		case kv.OpDelete:
			w.pub = append(w.pub, cdc.Write{Key: ops[i].Key, Del: true})
		case kv.OpAdd:
			// Absolute post-value, not the delta: replay must be
			// idempotent (see package cdc).
			w.pub = append(w.pub, cdc.Write{Key: ops[i].Key, Val: res[i].Val})
		}
	}
	w.feed.Publish(t, w.pub)
}

// scanIn reports whether ops carries an OpScan (which must execute alone:
// scans are hoisted out of the transaction, see ExecBatch).
func scanIn(ops []kv.Op) bool {
	for i := range ops {
		if ops[i].Kind == kv.OpScan {
			return true
		}
	}
	return false
}

// ExecGroup implements kv.GroupExecutor: batches are carved into greedy
// runs of scan-free members within the merge bounds, and each run commits
// through core's group-commit path — the merged attempt sweeping the whole
// run through one flattened shard-grouped routing pass (kv.ApplyGroup),
// the fallback re-running each member as its own transaction. Scan-
// carrying and oversized batches execute alone via ExecBatch, exactly as
// before grouping existed. It never fails; errs (when non-nil) is zeroed.
func (w *kvWorker) ExecGroup(batches []kv.Batch, errs []error) {
	if errs != nil {
		for i := range errs {
			errs[i] = nil
		}
	}
	if w.tx == nil || w.feed != nil {
		// No transaction: nothing to merge. With a change feed attached,
		// merging is skipped too: a merged group commits under ONE ticket,
		// but the merged attempt's individual fallback would re-commit each
		// member under its own ticket with no way to tell afterwards which
		// happened — and an unpublished committed ticket stalls the feed's
		// contiguity drain forever. Leaders trade group-commit batching for
		// a sound feed; DESIGN.md documents the trade.
		for i := range batches {
			_ = w.ExecBatch(batches[i].Ops, batches[i].Res)
		}
		return
	}
	i := 0
	for i < len(batches) {
		j, ops := i, 0
		for j < len(batches) && j-i < groupMaxMembers && ops+len(batches[j].Ops) <= groupMaxOps {
			if scanIn(batches[j].Ops) {
				break
			}
			ops += len(batches[j].Ops)
			j++
		}
		if j-i <= 1 {
			// A scan-carrying or oversized batch (j == i), or a run of one:
			// the solo path.
			_ = w.ExecBatch(batches[i].Ops, batches[i].Res)
			i++
			continue
		}
		run := batches[i:j]
		if w.h != nil {
			w.h.Enter()
		}
		_ = w.tx.RunGroupFused(len(run),
			func() error {
				kv.ApplyGroup(w.tx, w.m, run, &w.gsc)
				return nil
			},
			func(k int) error {
				kv.Apply(w.tx, w.m, run[k].Ops, run[k].Res)
				return nil
			})
		if w.h != nil {
			w.h.Exit()
		}
		i = j
	}
}

// ExecBatch implements kv.Executor: one atomic transaction around the
// keyed operations of the batch, conflict aborts retried internally
// (baselines without a transaction execute directly). It never fails.
//
// Scans are hoisted out of the transaction and run after it commits: Range
// is non-linearizable by contract, and its raw loads finalize any pending
// descriptor they meet — a scan inside the transaction that installed the
// descriptor would abort its own speculation on every retry and livelock.
func (w *kvWorker) ExecBatch(ops []kv.Op, res []kv.Result) error {
	if w.tx == nil {
		kv.Apply(nil, w.m, ops, res)
		return nil
	}
	keyed, scans, writes := false, false, false
	for i := range ops {
		switch ops[i].Kind {
		case kv.OpScan:
			scans = true
		case kv.OpGet:
			keyed = true
		default:
			keyed, writes = true, true
		}
	}
	if keyed {
		tap := w.feed != nil && writes
		if tap && res == nil {
			// The feed needs OpAdd post-values even when the caller
			// discards results; capture into worker-owned scratch.
			if cap(w.feedRes) < len(ops) {
				w.feedRes = make([]kv.Result, len(ops))
			}
			res = w.feedRes[:len(ops)]
		}
		if w.h != nil {
			w.h.Enter()
		}
		_ = w.tx.RunRetry(func() error {
			if !scans {
				kv.Apply(w.tx, w.m, ops, res)
				return nil
			}
			for i := range ops {
				if ops[i].Kind == kv.OpScan {
					continue
				}
				r := kv.ApplyOne(w.tx, w.m, ops[i])
				if res != nil {
					res[i] = r
				}
			}
			return nil
		})
		if tap {
			w.publishBatch(ops, res)
		}
		if w.h != nil {
			w.h.Exit()
		}
	}
	if scans {
		for i := range ops {
			if ops[i].Kind != kv.OpScan {
				continue
			}
			r := kv.ApplyOne(nil, w.m, ops[i])
			if res != nil {
				res[i] = r
			}
		}
	}
	return nil
}

// kvKind maps a harness op kind onto the kv batch request API.
func kvKind(k OpKind) kv.OpKind {
	switch k {
	case OpGet:
		return kv.OpGet
	case OpInsert:
		return kv.OpPut
	case OpRemove:
		return kv.OpDelete
	case OpRange:
		return kv.OpScan
	}
	return kv.OpGet
}
