package harness

// This file is the registry-driven generic system: KVSystem drives any
// kv.TxMap (a registry structure, a ShardedStore, a non-transactional
// baseline) through one worker loop, and that same loop (kvWorker) also
// carries MontageSystem's workers. The per-structure adapter zoo this
// replaces lived in systems.go.

import (
	"time"

	"medley/internal/core"
	"medley/internal/ebr"
	"medley/internal/kv"
)

// --------------------------------------------------- Medley (via registry)

// KVSystem benchmarks any kv.TxMap — a registry-built structure, a
// hash-partitioned ShardedStore of them, or a non-transactional baseline —
// under one worker loop. The seven hand-rolled adapters this file once
// carried for Medley, Original and TxOff are all configurations of this
// one type.
type KVSystem struct {
	name  string
	mgr   *core.TxManager // nil for untransformed baselines
	m     kv.TxMap
	smr   *ebr.Manager
	notx  bool // run operations outside any transaction (Original/TxOff)
	shard int
}

// newKVSystem builds a system over the named registry structure,
// hash-partitioned over shards instances when shards > 1. pooling enables
// the core's cell/node recycling arenas (sound here because every worker
// holds its EBR handle's critical section across each transaction — see
// kvWorker.Do — and background maintenance is guarded the same way);
// fastpaths keeps the core's commit fast paths on (the default — false is
// the -fastpaths=off ablation baseline that forces every commit through
// the full descriptor handshake).
func newKVSystem(name, structure string, shards, buckets int, notx, pooling, fastpaths bool) *KVSystem {
	var mgr *core.TxManager
	if kv.Composable(structure) {
		mgr = core.NewTxManager()
	}
	store, err := kv.NewShardedNamed(structure, shards, kv.Options{Mgr: mgr, Buckets: buckets})
	if err != nil {
		panic(err) // registry names here are static; a failure is a bug
	}
	s := &KVSystem{name: shardedName(name, store.ShardCount()), mgr: mgr,
		notx: notx, shard: store.ShardCount()}
	if store.ShardCount() == 1 {
		s.m = store.Shard(0) // no dispatch layer for single instances
	} else {
		s.m = store
	}
	if !notx && mgr != nil {
		s.smr = ebr.New(256)
		if pooling {
			mgr.EnablePooling()
		}
		if !fastpaths {
			mgr.DisableFastPaths()
		}
	}
	return s
}

// NewMedleyHash is the Figure 7 Medley configuration (Michael's hash
// table, 1M buckets in the paper).
func NewMedleyHash(buckets int) *KVSystem {
	return newKVSystem("Medley-hash", "hash", 1, buckets, false, true, true)
}

// NewMedleySkip is the Figure 8 Medley configuration (Fraser's skiplist).
func NewMedleySkip() *KVSystem {
	return newKVSystem("Medley-skip", "skip", 1, 0, false, true, true)
}

// NewMedleySharded is Medley over a ShardedStore of the named registry
// structure ("hash", "skip", "bst", "rotating"): N instances under one
// TxManager, so cross-shard transactions stay strictly serializable.
func NewMedleySharded(structure string, shards, buckets int) *KVSystem {
	return NewMedleyShardedPooling(structure, shards, buckets, true)
}

// NewMedleyShardedPooling is NewMedleySharded with recycling arenas
// toggleable: pooling=false is the unpooled baseline of the alloc-pressure
// comparison (every displaced cell and unlinked node goes to the GC, the
// pre-recycling behavior), named with a "-nopool" suffix so both
// configurations are distinguishable in one report.
func NewMedleyShardedPooling(structure string, shards, buckets int, pooling bool) *KVSystem {
	return NewMedleyKV(structure, shards, buckets, pooling, true)
}

// NewMedleyKV is the fully-parameterized Medley constructor: recycling
// arenas (pooling) and commit fast paths (fastpaths) are independently
// ablatable, and each disabled axis suffixes the system name ("-nopool",
// "-nofast") so every configuration stays distinguishable when several
// appear in one report.
func NewMedleyKV(structure string, shards, buckets int, pooling, fastpaths bool) *KVSystem {
	name := "Medley-" + structure
	if !pooling {
		name += "-nopool"
	}
	if !fastpaths {
		name += "-nofast"
	}
	return newKVSystem(name, structure, shards, buckets, false, pooling, fastpaths)
}

// NewOriginalSkip is Fraser's untransformed skiplist ("Original" in
// Figure 10): operations execute directly, one group of 1-10 counted as a
// "transaction" for latency comparability.
func NewOriginalSkip() *KVSystem {
	return newKVSystem("Original-skip", "plain-skip", 1, 0, true, false, true)
}

// NewTxOffSkip is the NBTC-transformed skiplist with transactions off
// ("TxOff" in Figure 10): the transformed code paths run, but outside any
// transaction, so all instrumentation is dynamically elided.
func NewTxOffSkip() *KVSystem { return newKVSystem("TxOff-skip", "skip", 1, 0, true, false, true) }

// Name implements System.
func (s *KVSystem) Name() string { return s.name }

// ShardCount implements ShardCounter.
func (s *KVSystem) ShardCount() int { return s.shard }

// Manager exposes the TxManager for statistics (nil for baselines).
func (s *KVSystem) Manager() *core.TxManager { return s.mgr }

// Map exposes the underlying store, for tests.
func (s *KVSystem) Map() kv.TxMap { return s.m }

// TxStats implements TxStatser from the manager's sharded counters.
// Baselines without a manager (Original) report zeros, matching their
// nothing-can-abort semantics.
func (s *KVSystem) TxStats() (commits, aborts uint64) {
	if s.mgr == nil {
		return 0, 0
	}
	st := s.mgr.Stats()
	return st.Commits, st.Aborts
}

// PoolStats implements PoolStatser: cumulative recycling-arena counters
// aggregated over all workers (zeros for baselines and unpooled runs).
func (s *KVSystem) PoolStats() (gets, hits, retires uint64) {
	if s.mgr == nil {
		return 0, 0, 0
	}
	st := s.mgr.Stats()
	return st.PoolGets, st.PoolHits, st.PoolRetires
}

// FastPathStats implements FastPathStatser: cumulative commit fast-path
// counters aggregated over all workers. ok is false for systems that run
// no commit protocol at all (Original/TxOff execute outside transactions),
// so their reports carry no fastpath block; a -fastpaths=off Medley run
// reports ok with zero fast-path counts — the ablation is a measurement,
// not an absence.
func (s *KVSystem) FastPathStats() (readOnly, fastpath, commits uint64, ok bool) {
	if s.notx || s.mgr == nil {
		return 0, 0, 0, false
	}
	st := s.mgr.Stats()
	return st.ReadOnlyCommits, st.FastPathCommits, st.Commits, true
}

// MetricsSnapshot implements MetricsSnapshotter: cumulative transaction,
// pool and EBR counters under stable statsd-style names. Baselines without
// a manager export nothing (no block is reported).
func (s *KVSystem) MetricsSnapshot() []Metric {
	if s.mgr == nil {
		return nil
	}
	st := s.mgr.Stats()
	out := []Metric{
		{Name: "tx_begins", Value: st.Begins},
		{Name: "tx_commits", Value: st.Commits},
		{Name: "tx_commits_read_only", Value: st.ReadOnlyCommits},
		{Name: "tx_commits_fastpath", Value: st.FastPathCommits},
		{Name: "tx_aborts", Value: st.Aborts},
		{Name: "tx_aborts_by_others", Value: st.AbortsByOthers},
		{Name: "tx_help_events", Value: st.HelpEvents},
		{Name: "pool_gets", Value: st.PoolGets},
		{Name: "pool_hits", Value: st.PoolHits},
		{Name: "pool_retires", Value: st.PoolRetires},
	}
	if s.smr != nil {
		es := s.smr.Stats()
		out = append(out,
			Metric{Name: "ebr_retired", Value: es.Retired},
			Metric{Name: "ebr_reclaimed", Value: es.Reclaimed},
			Metric{Name: "ebr_advances", Value: es.Advances},
		)
	}
	return out
}

// StateSnapshot implements Snapshotter for VerifyFinal scenarios: iterate
// the live store. Called only at phase barriers, where it is exact.
func (s *KVSystem) StateSnapshot(fn func(key, val uint64) bool) {
	s.m.Range(fn)
}

// guardedMaintainer is the capability of structures whose background
// maintenance must run inside an EBR critical section under pooling
// (rotating skiplist index rebuilds traverse recyclable cells).
type guardedMaintainer interface {
	StartGuardedMaintenance(interval time.Duration, guard func(func())) (stop func())
}

// Start implements System: it starts per-shard maintenance where the
// structure has any (rotating skiplist). Under pooling the maintenance
// goroutine gets its own EBR handle and brackets every rebuild with it, so
// index traversals never observe a recycled cell.
func (s *KVSystem) Start() (stop func()) {
	var stops []func()
	start := func(m kv.TxMap) {
		if s.smr != nil && s.mgr != nil && s.mgr.PoolingEnabled() {
			if gm, ok := m.(guardedMaintainer); ok {
				h := s.smr.Register()
				stops = append(stops, gm.StartGuardedMaintenance(25*time.Millisecond, func(f func()) {
					h.Enter()
					f()
					h.Exit()
				}))
				return
			}
		}
		if mt, ok := m.(maintainer); ok {
			stops = append(stops, mt.StartMaintenance(25*time.Millisecond))
		}
	}
	if sh, ok := s.m.(*kv.ShardedStore); ok {
		for i := 0; i < sh.ShardCount(); i++ {
			start(sh.Shard(i))
		}
	} else {
		start(s.m)
	}
	return func() {
		for _, f := range stops {
			f()
		}
	}
}

// Preload implements System.
func (s *KVSystem) Preload(keys []uint64) {
	for _, k := range keys {
		s.m.Put(nil, k, k)
	}
}

// kvWorker drives a bound TxMap; it is the worker of KVSystem and
// MontageSystem both, and doubles as the kv.Executor behind NewExecutor.
// Harness ops are translated into the kv batch request API and executed
// through kv.Apply — the same shard-grouped routing path the network
// service's tick executor uses.
type kvWorker struct {
	m  kv.TxMap
	tx *core.Tx // nil: execute outside transactions
	h  *ebr.Handle

	kops []kv.Op // translation scratch, reused across transactions
}

// NewWorker implements System.
func (s *KVSystem) NewWorker() Worker {
	return s.newWorker()
}

// NewExecutor implements the backend seam of the network service layer
// (internal/service): a per-goroutine kv.Executor running batch requests
// as atomic transactions over the same store, transaction registration and
// EBR guard as the benchmark workers. Call it on the goroutine that will
// execute (the Tx and handle are goroutine-bound).
func (s *KVSystem) NewExecutor() kv.Executor {
	return s.newWorker()
}

func (s *KVSystem) newWorker() *kvWorker {
	if s.notx {
		return &kvWorker{m: kv.Bind(s.m, nil)}
	}
	tx := s.mgr.Register()
	w := &kvWorker{tx: tx}
	if s.smr != nil {
		w.h = s.smr.Register()
		tx.SetSMR(w.h)
	}
	w.m = kv.Bind(s.m, tx)
	return w
}

func (w *kvWorker) Do(ops []Op) {
	w.kops = w.kops[:0]
	for _, op := range ops {
		w.kops = append(w.kops, kv.Op{Kind: kvKind(op.Kind), Key: op.Key, Val: op.Val})
	}
	_ = w.ExecBatch(w.kops, nil)
}

// ExecBatch implements kv.Executor: one atomic transaction around the
// keyed operations of the batch, conflict aborts retried internally
// (baselines without a transaction execute directly). It never fails.
//
// Scans are hoisted out of the transaction and run after it commits: Range
// is non-linearizable by contract, and its raw loads finalize any pending
// descriptor they meet — a scan inside the transaction that installed the
// descriptor would abort its own speculation on every retry and livelock.
func (w *kvWorker) ExecBatch(ops []kv.Op, res []kv.Result) error {
	if w.tx == nil {
		kv.Apply(nil, w.m, ops, res)
		return nil
	}
	keyed, scans := false, false
	for i := range ops {
		if ops[i].Kind == kv.OpScan {
			scans = true
		} else {
			keyed = true
		}
	}
	if keyed {
		if w.h != nil {
			w.h.Enter()
		}
		_ = w.tx.RunRetry(func() error {
			if !scans {
				kv.Apply(w.tx, w.m, ops, res)
				return nil
			}
			for i := range ops {
				if ops[i].Kind == kv.OpScan {
					continue
				}
				r := kv.ApplyOne(w.tx, w.m, ops[i])
				if res != nil {
					res[i] = r
				}
			}
			return nil
		})
		if w.h != nil {
			w.h.Exit()
		}
	}
	if scans {
		for i := range ops {
			if ops[i].Kind != kv.OpScan {
				continue
			}
			r := kv.ApplyOne(nil, w.m, ops[i])
			if res != nil {
				res[i] = r
			}
		}
	}
	return nil
}

// kvKind maps a harness op kind onto the kv batch request API.
func kvKind(k OpKind) kv.OpKind {
	switch k {
	case OpGet:
		return kv.OpGet
	case OpInsert:
		return kv.OpPut
	case OpRemove:
		return kv.OpDelete
	case OpRange:
		return kv.OpScan
	}
	return kv.OpGet
}
