package harness

import (
	"math/rand"
	"runtime"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the execution half of the workload engine: it runs a
// Scenario's phase script against a System, with every per-transaction
// counter and latency sample kept in a per-worker shard so that the
// harness adds no shared-memory traffic of its own to the measurement.

// FastpathResult is the commit-protocol digest of one phase: how many
// commits took the read-only elision, how many took any fast path
// (read-only + single-write), how many were merged group commits and how
// many logical transactions rode in them, and the derived shares.
type FastpathResult struct {
	ReadOnlyCommits uint64  // commits via the read-only elision
	FastPathCommits uint64  // commits via any fast path
	Commits         uint64  // all physical commits in the phase
	FastpathShare   float64 // FastPathCommits / Commits, 0 when no commits
	GroupCommits    uint64  // merged group commits (each counted once in Commits)
	GroupedTxns     uint64  // logical transactions committed inside merged groups
	GroupShare      float64 // GroupedTxns / logical commits, 0 when no commits
}

// logicalCommits re-expands merged groups: each group commit is one
// physical commit standing for GroupedTxns logical transactions.
func (f *FastpathResult) logicalCommits() uint64 {
	return f.Commits - f.GroupCommits + f.GroupedTxns
}

// deriveShares fills the ratio fields from the counter fields.
func (f *FastpathResult) deriveShares() {
	if f.Commits > 0 {
		f.FastpathShare = float64(f.FastPathCommits) / float64(f.Commits)
	}
	if lc := f.logicalCommits(); lc > 0 {
		f.GroupShare = float64(f.GroupedTxns) / float64(lc)
	}
}

// MemoryResult is the memory-pressure digest of one phase: allocation
// deltas (runtime/metrics), GC pause deltas (runtime.ReadMemStats), and
// recycling-arena counters. Process-wide, so it is meaningful because the
// engine runs one system at a time.
type MemoryResult struct {
	TotalAllocs uint64  // heap objects allocated during the phase
	TotalBytes  uint64  // heap bytes allocated during the phase
	AllocsPerOp float64 // TotalAllocs / executed ops
	BytesPerOp  float64 // TotalBytes / executed ops
	GCPauseNs   int64   // total stop-the-world pause during the phase
	NumGC       uint32  // GC cycles during the phase
	PoolGets    uint64  // arena requests (cells + nodes)
	PoolHits    uint64  // arena requests served from a freelist
	PoolRetires uint64  // blocks retired into arenas
	PoolHitRate float64 // PoolHits / PoolGets, 0 when no requests
}

// memSample is one point-in-time memory reading; phases report the delta
// of two samples.
type memSample struct {
	allocObjs  uint64
	allocBytes uint64
	pauseNs    uint64
	numGC      uint32
}

// readMemSample samples the allocator via runtime/metrics (cheap,
// no stop-the-world) and GC pauses via runtime.ReadMemStats; it runs only
// at phase boundaries.
func readMemSample() memSample {
	samples := []metrics.Sample{
		{Name: "/gc/heap/allocs:objects"},
		{Name: "/gc/heap/allocs:bytes"},
	}
	metrics.Read(samples)
	var s memSample
	if samples[0].Value.Kind() == metrics.KindUint64 {
		s.allocObjs = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		s.allocBytes = samples[1].Value.Uint64()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.pauseNs = ms.PauseTotalNs
	s.numGC = ms.NumGC
	return s
}

// memoryResult folds two samples and the phase's pool counter deltas into
// the reported block.
func memoryResult(before, after memSample, ops uint64, poolGets, poolHits, poolRetires uint64) *MemoryResult {
	m := &MemoryResult{
		TotalAllocs: after.allocObjs - before.allocObjs,
		TotalBytes:  after.allocBytes - before.allocBytes,
		GCPauseNs:   int64(after.pauseNs - before.pauseNs),
		NumGC:       after.numGC - before.numGC,
		PoolGets:    poolGets,
		PoolHits:    poolHits,
		PoolRetires: poolRetires,
	}
	if ops > 0 {
		m.AllocsPerOp = float64(m.TotalAllocs) / float64(ops)
		m.BytesPerOp = float64(m.TotalBytes) / float64(ops)
	}
	if poolGets > 0 {
		m.PoolHitRate = float64(poolHits) / float64(poolGets)
	}
	return m
}

// EngineConfig parameterizes one scenario run.
type EngineConfig struct {
	Threads  int
	Duration time.Duration // total, sliced across phases by weight
	KeyRange uint64
	Preload  int
	Seed     int64

	// MaxLatencySamples bounds each worker's latency reservoir
	// (default 4096). Reservoir sampling keeps the samples uniform over
	// the phase regardless of its length.
	MaxLatencySamples int

	// LatencyEvery times every Nth transaction (default 4): clock reads
	// cost tens of nanoseconds, so timing every transaction would tax the
	// fastest systems most and compress cross-system ratios.
	LatencyEvery int
}

// PhaseResult is the measurement of one phase (or the aggregate of the
// measured phases).
type PhaseResult struct {
	Phase      string
	Crash      bool // crash phase: Elapsed is the recovery latency
	Txns       uint64
	Ops        uint64
	Aborts     uint64
	Elapsed    time.Duration
	Throughput float64 // committed txn/s
	AbortRate  float64 // aborted attempts / total attempts, 0 if unknown

	AvgLatencyNs float64
	P50LatencyNs float64
	P99LatencyNs float64

	// Memory is the phase's memory-pressure digest; nil on crash phases.
	Memory *MemoryResult

	// Fastpath is the commit fast-path digest; nil on crash phases and on
	// systems without the tiered commit protocol.
	Fastpath *FastpathResult

	// Telemetry is the phase's counter/gauge snapshot deltas; nil on crash
	// phases and on systems without MetricsSnapshotter.
	Telemetry *TelemetryResult

	// Kinds attributes the phase's transactions per kind; nil on systems
	// without TxKindStatser.
	Kinds []KindResult

	// Consistency is the domain-invariant check run at the phase barrier;
	// nil unless the system implements ConsistencyChecker and the phase is
	// measured or a crash phase.
	Consistency *ConsistencyResult
}

// ScenarioResult is one (system, scenario, thread count) measurement.
type ScenarioResult struct {
	Scenario string
	System   string
	Threads  int
	// Shards is the store partition count (1 for single-instance systems,
	// including the competitors that cannot shard — see internal/kv).
	Shards int
	Phases []PhaseResult
	// Measured aggregates the phases marked Measure (all phases when none
	// are marked) and is the headline number of the run.
	Measured PhaseResult
	// Recovery is set by crash scenarios: recovery metrics and durability
	// verification for recoverable systems, Recoverable: false otherwise.
	Recovery *RecoveryResult
	// FinalCheck is set by VerifyFinal scenarios: the live end-of-run state
	// diffed against the journaled model of committed effects.
	FinalCheck *FinalCheckResult
}

// workerShard is one worker's slice of the harness's own statistics,
// padded so that concurrently running workers never write the same cache
// line. Counters are plain: only the owning worker writes them, and the
// engine reads them after the phase barrier.
type workerShard struct {
	txns    uint64
	ops     uint64
	samples []int64 // latency reservoir, ns
	seen    int64   // transactions offered to the reservoir
	r       *rand.Rand
	_       [40]byte
}

func (w *workerShard) record(d time.Duration, max int) {
	w.seen++
	if len(w.samples) < max {
		w.samples = append(w.samples, int64(d))
		return
	}
	if j := w.r.Int63n(w.seen); j < int64(max) {
		w.samples[j] = int64(d)
	}
}

// RunScenario executes sc against sys: preload once, then each phase in
// order, workers created fresh per phase. It is deterministic in
// cfg.Seed up to scheduling (the generators are; the interleaving is not).
func RunScenario(sys System, sc Scenario, cfg EngineConfig) ScenarioResult {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.MaxLatencySamples <= 0 {
		cfg.MaxLatencySamples = 4096
	}
	if cfg.KeyRange == 0 {
		cfg.KeyRange = 1
	}
	// Oversubscription scenarios run several worker goroutines per
	// configured thread; everything per-worker (seeds, partitions, shards)
	// scales with the worker count, while reports keep the configured
	// thread count.
	workers := cfg.Threads
	if sc.WorkersPerThread > 1 {
		workers = cfg.Threads * sc.WorkersPerThread
	}
	// Every optional capability is probed once, here; the phase loop and
	// the verifier branch on the fields (see capabilities.go).
	caps := Capabilities(sys)
	// Crash scenarios verify recovered state against a ground-truth model
	// of committed operations; see verify.go for the partitioning that
	// makes the model exact. VerifyFinal scenarios journal on every system
	// and diff the live end-of-run state instead of a recovered one.
	var vs *verifyState
	if sc.HasCrash() || sc.VerifyFinal {
		if cfg.KeyRange < uint64(workers) {
			cfg.KeyRange = uint64(workers)
		}
		vs = &verifyState{partition: true}
		if sc.VerifyFinal || caps.CanRecover() {
			vs.journal = true
			vs.model = make(map[uint64]modelVal, cfg.Preload)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	keys := make([]uint64, cfg.Preload)
	for i := range keys {
		keys[i] = uint64(rng.Int63n(int64(cfg.KeyRange)))
	}
	sys.Preload(keys)
	if vs != nil && vs.journal {
		for _, k := range keys {
			vs.model[k] = modelVal{val: k, present: true}
		}
	}
	stop := sys.Start()
	defer stop()

	totalWeight := 0.0
	for _, ph := range sc.Phases {
		if ph.Kind == PhaseCrash {
			continue
		}
		if ph.Weight > 0 {
			totalWeight += ph.Weight
		} else {
			totalWeight += 1
		}
	}
	if totalWeight == 0 {
		totalWeight = 1
	}

	res := ScenarioResult{Scenario: sc.Name, System: sys.Name(), Threads: cfg.Threads, Shards: caps.ShardCount()}
	var agg PhaseResult
	agg.Phase = "measured"
	var parts []phaseSamples
	anyMeasured := false
	for _, ph := range sc.Phases {
		if ph.Measure {
			anyMeasured = true
		}
	}

	for pi, ph := range sc.Phases {
		if ph.Kind == PhaseCrash {
			pr, rr := runCrashPhase(caps.Recovery, vs, ph)
			if caps.Consistency != nil {
				pr.Consistency = consistencyResult(caps.Consistency.ConsistencyCheck())
			}
			res.Phases = append(res.Phases, pr)
			if res.Recovery == nil {
				res.Recovery = &rr
			} else {
				res.Recovery.merge(rr)
			}
			continue
		}
		w := ph.Weight
		if w <= 0 {
			w = 1
		}
		d := time.Duration(float64(cfg.Duration) * w / totalWeight)
		pr, samples := runPhase(sys, caps, sc, ph, pi, cfg, workers, d, vs)
		if caps.Consistency != nil && ph.Measure {
			pr.Consistency = consistencyResult(caps.Consistency.ConsistencyCheck())
		}
		res.Phases = append(res.Phases, pr)
		if ph.Measure || !anyMeasured {
			agg.Txns += pr.Txns
			agg.Ops += pr.Ops
			agg.Aborts += pr.Aborts
			agg.Elapsed += pr.Elapsed
			parts = append(parts, phaseSamples{samples: samples, txns: pr.Txns})
			if pr.Memory != nil {
				if agg.Memory == nil {
					agg.Memory = &MemoryResult{}
				}
				agg.Memory.TotalAllocs += pr.Memory.TotalAllocs
				agg.Memory.TotalBytes += pr.Memory.TotalBytes
				agg.Memory.GCPauseNs += pr.Memory.GCPauseNs
				agg.Memory.NumGC += pr.Memory.NumGC
				agg.Memory.PoolGets += pr.Memory.PoolGets
				agg.Memory.PoolHits += pr.Memory.PoolHits
				agg.Memory.PoolRetires += pr.Memory.PoolRetires
			}
			if pr.Fastpath != nil {
				if agg.Fastpath == nil {
					agg.Fastpath = &FastpathResult{}
				}
				agg.Fastpath.ReadOnlyCommits += pr.Fastpath.ReadOnlyCommits
				agg.Fastpath.FastPathCommits += pr.Fastpath.FastPathCommits
				agg.Fastpath.Commits += pr.Fastpath.Commits
				agg.Fastpath.GroupCommits += pr.Fastpath.GroupCommits
				agg.Fastpath.GroupedTxns += pr.Fastpath.GroupedTxns
			}
			if pr.Telemetry != nil {
				if agg.Telemetry == nil {
					agg.Telemetry = &TelemetryResult{}
				}
				mergeTelemetry(agg.Telemetry, pr.Telemetry)
			}
			if len(pr.Kinds) > 0 {
				agg.Kinds = mergeKinds(agg.Kinds, pr.Kinds)
			}
			if pr.Consistency != nil {
				if agg.Consistency == nil {
					agg.Consistency = &ConsistencyResult{}
				}
				mergeConsistency(agg.Consistency, pr.Consistency)
			}
		}
	}
	if agg.Memory != nil {
		if agg.Ops > 0 {
			agg.Memory.AllocsPerOp = float64(agg.Memory.TotalAllocs) / float64(agg.Ops)
			agg.Memory.BytesPerOp = float64(agg.Memory.TotalBytes) / float64(agg.Ops)
		}
		if agg.Memory.PoolGets > 0 {
			agg.Memory.PoolHitRate = float64(agg.Memory.PoolHits) / float64(agg.Memory.PoolGets)
		}
	}
	if agg.Fastpath != nil {
		agg.Fastpath.deriveShares()
	}
	if agg.Telemetry != nil {
		agg.Telemetry.Gauges = deriveGauges(agg.Telemetry.Counters)
	}
	finishAggregate(&agg, parts)
	res.Measured = agg
	if sc.VerifyFinal {
		res.FinalCheck = runFinalCheck(caps, vs)
	}
	return res
}

// runGroupedWorker is the GroupSize > 1 worker loop: it buffers size
// generated transactions — each copied out of the generator's reused
// buffer — and submits the run through DoGroup. Every member remains its
// own logical transaction (journaled and counted individually); one
// latency sample covers a whole run, so grouped latencies are
// per-group, comparable across systems at equal GroupSize.
func runGroupedWorker(gw GroupWorker, gen *TxGen, size int, shard *workerShard, jm map[uint64]modelVal, vs *verifyState, tid, workers int, cfg EngineConfig, every int, stopFlag *atomic.Bool) {
	bufs := make([][]Op, size)
	group := make([][]Op, size)
	tick := 0
	for !stopFlag.Load() {
		total := 0
		for n := 0; n < size; n++ {
			ops := gen.Next()
			if vs != nil && vs.partition {
				for i := range ops {
					if ops[i].Kind == OpInsert || ops[i].Kind == OpRemove {
						ops[i].Key = partitionKey(ops[i].Key, tid, workers, cfg.KeyRange)
					}
				}
			}
			bufs[n] = append(bufs[n][:0], ops...)
			group[n] = bufs[n]
			total += len(ops)
		}
		if tick++; tick >= every {
			tick = 0
			t0 := time.Now()
			gw.DoGroup(group)
			shard.record(time.Since(t0), cfg.MaxLatencySamples)
		} else {
			gw.DoGroup(group)
		}
		if jm != nil {
			for _, ops := range group {
				applyOps(jm, ops)
			}
		}
		shard.txns += uint64(size)
		shard.ops += uint64(total)
	}
}

// runPhase spawns the phase's workers (cfg.Threads, multiplied by the
// scenario's WorkersPerThread) and collects their shards. The returned
// samples back the scenario-level aggregate. In crash and VerifyFinal
// scenarios (vs non-nil) write keys are partitioned per worker and, when
// journaling, committed effects are merged into the ground-truth model at
// the phase barrier.
func runPhase(sys System, caps Caps, sc Scenario, ph Phase, phaseIdx int, cfg EngineConfig, workers int, d time.Duration, vs *verifyState) (PhaseResult, []int64) {
	var aborts0 uint64
	if caps.TxStats != nil {
		_, aborts0 = caps.TxStats.TxStats()
	}
	var pg0, ph0, pr0 uint64
	if caps.PoolStats != nil {
		pg0, ph0, pr0 = caps.PoolStats.PoolStats()
	}
	var ro0, fp0, cm0 uint64
	hasFast := false
	if caps.FastPaths != nil {
		ro0, fp0, cm0, hasFast = caps.FastPaths.FastPathStats()
	}
	var gc0, gt0 uint64
	hasGroups := false
	if caps.Groups != nil {
		gc0, gt0, _, hasGroups = caps.Groups.GroupStats()
	}
	var met0 []Metric
	if caps.Metrics != nil {
		met0 = caps.Metrics.MetricsSnapshot()
	}
	var kin0 []KindStat
	if caps.Kinds != nil {
		kin0 = caps.Kinds.TxKindStats()
	}
	mem0 := readMemSample()

	every := cfg.LatencyEvery
	if every <= 0 {
		every = 4
	}
	dist := sc.Dist
	if ph.Dist != nil {
		dist = *ph.Dist
	}
	shards := make([]*workerShard, workers)
	var journals []map[uint64]modelVal
	if vs != nil && vs.journal {
		journals = make([]map[uint64]modelVal, workers)
	}
	var stopFlag atomic.Bool
	var wg sync.WaitGroup
	start := make(chan struct{})
	ws := make([]Worker, workers)
	for t := 0; t < workers; t++ {
		seed := cfg.Seed + int64(phaseIdx)*104729 + int64(t)*7919
		shard := &workerShard{r: rand.New(rand.NewSource(seed ^ 0x5DEECE66D))}
		shards[t] = shard
		var jm map[uint64]modelVal
		if journals != nil {
			jm = make(map[uint64]modelVal)
			journals[t] = jm
		}
		tid := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := sys.NewWorker()
			ws[tid] = w
			gen := NewTxGen(dist, cfg.KeyRange, ph.Mix, seed)
			if sc.GroupSize > 1 {
				if gw, ok := w.(GroupWorker); ok {
					<-start
					runGroupedWorker(gw, gen, sc.GroupSize, shard, jm, vs, tid, workers, cfg, every, &stopFlag)
					return
				}
			}
			tick := 0
			<-start
			for !stopFlag.Load() {
				ops := gen.Next()
				if vs != nil && vs.partition {
					for i := range ops {
						if ops[i].Kind == OpInsert || ops[i].Kind == OpRemove {
							ops[i].Key = partitionKey(ops[i].Key, tid, workers, cfg.KeyRange)
						}
					}
				}
				if tick++; tick >= every {
					tick = 0
					t0 := time.Now()
					w.Do(ops)
					shard.record(time.Since(t0), cfg.MaxLatencySamples)
				} else {
					w.Do(ops)
				}
				if jm != nil {
					applyOps(jm, ops)
				}
				shard.txns++
				shard.ops += uint64(len(ops))
			}
		}()
	}
	begin := time.Now()
	close(start)
	time.Sleep(d)
	stopFlag.Store(true)
	wg.Wait()
	elapsed := time.Since(begin)
	// Phase barrier: workers are quiescent. Hand them back for the next
	// phase (warm arenas and SMR handles; see WorkerReleaser) and let the
	// system run barrier-only maintenance — for EBR systems, pumping the
	// epoch past the phase's retired garbage so the returned workers'
	// freelists refill at the start of the next phase instead of starving
	// all the way through it.
	if caps.Quiescent != nil {
		caps.Quiescent.Quiesce()
	}
	if caps.Release != nil {
		for _, w := range ws {
			if w != nil {
				caps.Release.ReleaseWorker(w)
			}
		}
	}
	mem1 := readMemSample()

	pr := PhaseResult{Phase: ph.Name, Elapsed: elapsed}
	var samples []int64
	for _, s := range shards {
		pr.Txns += s.txns
		pr.Ops += s.ops
		samples = append(samples, s.samples...)
	}
	var pg, phits, pret uint64
	if caps.PoolStats != nil {
		pg1, ph1, pr1 := caps.PoolStats.PoolStats()
		pg, phits, pret = pg1-pg0, ph1-ph0, pr1-pr0
	}
	pr.Memory = memoryResult(mem0, mem1, pr.Ops, pg, phits, pret)
	if hasFast {
		ro1, fp1, cm1, _ := caps.FastPaths.FastPathStats()
		fp := &FastpathResult{
			ReadOnlyCommits: ro1 - ro0,
			FastPathCommits: fp1 - fp0,
			Commits:         cm1 - cm0,
		}
		if hasGroups {
			gc1, gt1, _, _ := caps.Groups.GroupStats()
			fp.GroupCommits = gc1 - gc0
			fp.GroupedTxns = gt1 - gt0
		}
		fp.deriveShares()
		pr.Fastpath = fp
	}
	// Worker write domains are disjoint (residue classes), so merging the
	// journals is conflict-free.
	for _, jm := range journals {
		for k, v := range jm {
			vs.model[k] = v
		}
	}
	if caps.TxStats != nil {
		_, aborts1 := caps.TxStats.TxStats()
		pr.Aborts = aborts1 - aborts0
	}
	if caps.Metrics != nil {
		counters := diffMetrics(met0, caps.Metrics.MetricsSnapshot())
		pr.Telemetry = &TelemetryResult{Counters: counters, Gauges: deriveGauges(counters)}
	}
	if caps.Kinds != nil {
		pr.Kinds = diffKinds(kin0, caps.Kinds.TxKindStats())
	}
	finishPhaseResult(&pr, samples)
	return pr, samples
}

// runCrashPhase executes a PhaseCrash phase: flush committed state, crash,
// time recovery, and verify the recovered contents against the model. All
// workers are stopped at this point (phases are barriers), so the model is
// exactly the committed history and the snapshot is quiescent.
func runCrashPhase(rec Recoverable, vs *verifyState, ph Phase) (PhaseResult, RecoveryResult) {
	pr := PhaseResult{Phase: ph.Name, Crash: true}
	if rec == nil || !rec.CanRecover() {
		return pr, RecoveryResult{}
	}
	rec.Persist()
	t0 := time.Now()
	entries := rec.CrashAndRecover()
	pr.Elapsed = time.Since(t0)
	rr := RecoveryResult{
		Recoverable: true,
		RecoveryNs:  int64(pr.Elapsed),
		Recovered:   entries,
	}
	got := make(map[uint64]uint64, entries)
	rec.Snapshot(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	diffModel(&rr, vs.model, got)
	return pr, rr
}

// finishPhaseResult derives rates and percentiles; samples is consumed
// (sorted in place).
func finishPhaseResult(pr *PhaseResult, samples []int64) {
	if pr.Elapsed > 0 {
		pr.Throughput = float64(pr.Txns) / pr.Elapsed.Seconds()
	}
	if total := pr.Txns + pr.Aborts; total > 0 {
		pr.AbortRate = float64(pr.Aborts) / float64(total)
	}
	if len(samples) == 0 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum int64
	for _, s := range samples {
		sum += s
	}
	pr.AvgLatencyNs = float64(sum) / float64(len(samples))
	pr.P50LatencyNs = float64(percentile(samples, 50))
	pr.P99LatencyNs = float64(percentile(samples, 99))
}

// percentile is nearest-rank over a sorted slice.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// phaseSamples pairs one measured phase's latency reservoir with the
// transaction count it represents.
type phaseSamples struct {
	samples []int64
	txns    uint64
}

type weightedSample struct {
	ns int64
	w  float64
}

// finishAggregate derives the scenario-level aggregate. Each phase's
// reservoir is capped at the same size regardless of how many
// transactions the phase ran, so samples are weighted by the transaction
// count they stand for — otherwise a slow, low-throughput phase would
// dominate the headline percentiles far beyond its share of the run.
func finishAggregate(pr *PhaseResult, parts []phaseSamples) {
	if pr.Elapsed > 0 {
		pr.Throughput = float64(pr.Txns) / pr.Elapsed.Seconds()
	}
	if total := pr.Txns + pr.Aborts; total > 0 {
		pr.AbortRate = float64(pr.Aborts) / float64(total)
	}
	var all []weightedSample
	var totalW, weightedSum float64
	for _, p := range parts {
		if len(p.samples) == 0 || p.txns == 0 {
			continue
		}
		w := float64(p.txns) / float64(len(p.samples))
		for _, s := range p.samples {
			all = append(all, weightedSample{ns: s, w: w})
			weightedSum += float64(s) * w
		}
		totalW += float64(p.txns)
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ns < all[j].ns })
	pr.AvgLatencyNs = weightedSum / totalW
	pr.P50LatencyNs = float64(weightedPercentile(all, totalW, 0.50))
	pr.P99LatencyNs = float64(weightedPercentile(all, totalW, 0.99))
}

// weightedPercentile returns the smallest sample whose cumulative weight
// reaches p of totalW; all must be sorted by ns.
func weightedPercentile(all []weightedSample, totalW, p float64) int64 {
	target := p * totalW
	var cum float64
	for _, s := range all {
		cum += s.w
		if cum >= target {
			return s.ns
		}
	}
	return all[len(all)-1].ns
}
