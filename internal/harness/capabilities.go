package harness

// This file is the single home of the optional capabilities a System may
// implement beyond the core Preload/Start/NewWorker contract. The engine,
// verifier and report writer never type-assert on systems directly; they
// probe once with Capabilities and branch on the resulting Caps. Keeping
// every capability here (instead of scattered next to each consumer) makes
// the System surface auditable at a glance: a new system implements some
// subset of these and gets the corresponding report blocks for free.
//
// Data types produced by the capabilities (Metric, KindStat,
// ConsistencyViolation, ...) live with their diff/merge helpers in
// telemetry.go; this file holds only the contracts.

// TxStatser is implemented by systems that can report cumulative
// commit/abort counters; the engine differences snapshots around each
// phase to compute abort rates. Systems that cannot abort simply don't
// implement it.
type TxStatser interface {
	TxStats() (commits, aborts uint64)
}

// PoolStatser is implemented by systems with recycling arenas (the
// Medley KVSystem under pooling); the engine differences snapshots around
// each phase to report pool hit rates in the memory block.
type PoolStatser interface {
	PoolStats() (gets, hits, retires uint64)
}

// FastPathStatser is implemented by systems whose commit protocol has the
// tiered fast paths (the Medley KVSystem); the engine differences
// snapshots around each phase to report what share of commits skipped the
// descriptor handshake. ok must be false when the system runs no commit
// protocol (a baseline executing outside transactions), in which case no
// fastpath block is reported.
type FastPathStatser interface {
	FastPathStats() (readOnly, fastpath, commits uint64, ok bool)
}

// GroupStatser is implemented by systems whose commit protocol can merge
// a batch of logical transactions into one group commit (the Medley
// KVSystem); the engine differences snapshots around each phase to report
// how many commits merged and how many logical transactions rode in them.
// ok follows the FastPathStatser convention: false when the system runs
// no commit protocol, true with zero merges under the -groupcommit=off
// ablation.
type GroupStatser interface {
	GroupStats() (groups, grouped, commits uint64, ok bool)
}

// MetricsSnapshotter is implemented by systems that can export their
// engine-level counters (commits by path, aborts by cause, pool traffic,
// EBR reclamation) as a point-in-time snapshot. Snapshots are cumulative
// since system construction; the engine differences two snapshots to
// produce a phase's telemetry block, and the network service layer
// (internal/service) serves the same snapshot from its /metrics endpoint.
type MetricsSnapshotter interface {
	MetricsSnapshot() []Metric
}

// ConsistencyChecker is implemented by systems whose workload maintains
// domain invariants the engine can verify at quiescent points (the TPC-C
// system checks the clause 3.3.2 conditions). The engine runs it after
// each measured phase and after every crash phase.
type ConsistencyChecker interface {
	ConsistencyCheck() []ConsistencyViolation
}

// TxKindStatser is implemented by systems whose workers run a closed set of
// transaction kinds (the TPC-C system's five transactions); the engine
// differences snapshots around each phase to attribute throughput, aborts
// and latency per kind. Snapshots are only read at phase barriers, where
// workers are quiescent.
type TxKindStatser interface {
	TxKindStats() []KindStat
}

// Snapshotter is implemented by systems that can iterate their live
// key→value state at a quiescent point. Scenarios with VerifyFinal set use
// it to diff the final state against the journaled ground-truth model —
// the transient-system counterpart of Recoverable.Snapshot.
type Snapshotter interface {
	StateSnapshot(fn func(key, val uint64) bool)
}

// Recoverable is the capability interface of systems whose committed
// state survives a simulated power failure. The engine's crash phase
// (engine.go) drives it: Persist, then CrashAndRecover under a timer, then
// Snapshot for verification against the ground-truth model. Systems
// without durable state simply don't implement it (Medley, TDSL, LFTT,
// the plain structures) and the crash phase reports recoverable: false.
type Recoverable interface {
	// CanRecover reports whether this configuration actually persists
	// (e.g. txMontage with persistence off implements the interface but
	// cannot recover).
	CanRecover() bool
	// Persist makes every effect committed so far durable: an epoch sync
	// for periodic persistence, a no-op for eager per-commit persistence.
	Persist()
	// CrashAndRecover simulates a full-system crash (volatile state lost,
	// durable media kept) and rebuilds the system from the durable image,
	// returning the number of recovered entries. Workers created before
	// the crash are invalid afterwards; the engine creates workers fresh
	// per phase.
	CrashAndRecover() int
	// Snapshot iterates the live key→value state. The engine calls it
	// only at phase barriers, where it is exact.
	Snapshot(fn func(key, val uint64) bool)
}

// WorkerReleaser is implemented by systems that can take a phase's
// workers back at the phase barrier and hand them out again from
// NewWorker. Per-worker state that is expensive to rebuild — recycling
// arenas, SMR handles — then stays warm across a scenario's phases
// instead of being abandoned cold at every barrier (abandoned handles
// also orphan their limbo: the EBR flush runs on the owning goroutine,
// so retired blocks behind a dead handle are never recycled). Ownership
// transfers at the barrier: the engine releases a worker only after its
// phase goroutine has exited, and hands it to at most one goroutine at a
// time afterwards.
type WorkerReleaser interface {
	ReleaseWorker(w Worker)
}

// Quiescer is implemented by systems that can use a full-stop barrier to
// run maintenance that cannot make progress under load. The Medley
// KVSystem pumps the EBR epoch here: an oversubscribed phase parks
// workers mid-transaction, each a critical section blocking epoch
// advance, so in-phase reclamation starves — the barrier, where every
// worker is quiescent, is the one reliable point to advance past the
// phase's garbage and make it reclaimable.
type Quiescer interface {
	Quiesce()
}

// ShardCounter is the capability interface of systems whose store is
// hash-partitioned; the engine reports the shard count per record.
// Systems that don't implement it are single-instance (shard count 1).
type ShardCounter interface {
	ShardCount() int
}

// Caps is the result of probing a System for its optional capabilities:
// each field is the system viewed through one capability interface, nil
// when unimplemented. Probe once with Capabilities and branch on fields.
type Caps struct {
	TxStats     TxStatser
	PoolStats   PoolStatser
	FastPaths   FastPathStatser
	Groups      GroupStatser
	Metrics     MetricsSnapshotter
	Consistency ConsistencyChecker
	Kinds       TxKindStatser
	Snapshot    Snapshotter
	Recovery    Recoverable
	Shards      ShardCounter
	Release     WorkerReleaser
	Quiescent   Quiescer
}

// Capabilities probes sys for every optional capability in one place.
func Capabilities(sys System) Caps {
	var c Caps
	c.TxStats, _ = sys.(TxStatser)
	c.PoolStats, _ = sys.(PoolStatser)
	c.FastPaths, _ = sys.(FastPathStatser)
	c.Groups, _ = sys.(GroupStatser)
	c.Metrics, _ = sys.(MetricsSnapshotter)
	c.Consistency, _ = sys.(ConsistencyChecker)
	c.Kinds, _ = sys.(TxKindStatser)
	c.Snapshot, _ = sys.(Snapshotter)
	c.Recovery, _ = sys.(Recoverable)
	c.Shards, _ = sys.(ShardCounter)
	c.Release, _ = sys.(WorkerReleaser)
	c.Quiescent, _ = sys.(Quiescer)
	return c
}

// ShardCount reports the store partition count: the ShardCounter value
// when present, 1 otherwise (single-instance systems, including the
// competitors that cannot shard — see internal/kv).
func (c Caps) ShardCount() int {
	if c.Shards != nil {
		return c.Shards.ShardCount()
	}
	return 1
}

// CanRecover reports whether the system both implements Recoverable and
// is configured to actually persist.
func (c Caps) CanRecover() bool {
	return c.Recovery != nil && c.Recovery.CanRecover()
}
