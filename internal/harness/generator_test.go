package harness

import (
	"math/rand"
	"testing"
)

const genKeyRange = 1 << 16

func draw(t *testing.T, d Dist, seed int64, n int) []uint64 {
	t.Helper()
	g := NewKeyGen(d, genKeyRange, rand.New(rand.NewSource(seed)))
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.Next()
		if out[i] >= genKeyRange {
			t.Fatalf("%v: key %d out of range", d, out[i])
		}
	}
	return out
}

func allDists() []Dist {
	return []Dist{
		{Kind: DistUniform},
		{Kind: DistZipfian, Theta: 1.2},
		{Kind: DistLatest, Theta: 1.2},
		{Kind: DistHotspot, HotFrac: 0.1, HotOpFrac: 0.9},
	}
}

func TestKeyGenDeterministicSeeding(t *testing.T) {
	for _, d := range allDists() {
		a := draw(t, d, 7, 10_000)
		b := draw(t, d, 7, 10_000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at %d: %d vs %d", d.Kind, i, a[i], b[i])
			}
		}
		c := draw(t, d, 8, 10_000)
		same := 0
		for i := range a {
			if a[i] == c[i] {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%s: different seeds produced identical sequences", d.Kind)
		}
	}
}

// topShare returns the fraction of draws taken by the most frequent key.
func topShare(keys []uint64) float64 {
	freq := map[uint64]int{}
	max := 0
	for _, k := range keys {
		freq[k]++
		if freq[k] > max {
			max = freq[k]
		}
	}
	return float64(max) / float64(len(keys))
}

func TestUniformHasNoHotKey(t *testing.T) {
	keys := draw(t, Dist{Kind: DistUniform}, 1, 100_000)
	if s := topShare(keys); s > 0.005 {
		t.Fatalf("uniform hottest key takes %.3f of draws", s)
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	keys := draw(t, Dist{Kind: DistZipfian, Theta: 1.2}, 1, 100_000)
	if s := topShare(keys); s < 0.02 {
		t.Fatalf("zipfian hottest key takes only %.4f of draws, want noticeable skew", s)
	}
	// The scramble must spread hot ranks: the hottest key should not be 0.
	freq := map[uint64]int{}
	for _, k := range keys {
		freq[k]++
	}
	distinct := len(freq)
	if distinct < 100 {
		t.Fatalf("zipfian produced only %d distinct keys", distinct)
	}
}

func TestLatestFavorsHighKeys(t *testing.T) {
	keys := draw(t, Dist{Kind: DistLatest, Theta: 1.2}, 1, 100_000)
	high := 0
	for _, k := range keys {
		if k >= genKeyRange/2 {
			high++
		}
	}
	if frac := float64(high) / float64(len(keys)); frac < 0.9 {
		t.Fatalf("latest put only %.2f of draws in the top half", frac)
	}
}

func TestHotspotHitsHotRange(t *testing.T) {
	d := Dist{Kind: DistHotspot, HotFrac: 0.1, HotOpFrac: 0.9}
	keys := draw(t, d, 1, 100_000)
	hotLimit := uint64(float64(genKeyRange) * d.HotFrac)
	hot := 0
	for _, k := range keys {
		if k < hotLimit {
			hot++
		}
	}
	frac := float64(hot) / float64(len(keys))
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hotspot hit rate %.3f, want ~%.2f", frac, d.HotOpFrac)
	}
}

func TestKeyGenDegenerateRanges(t *testing.T) {
	for _, d := range allDists() {
		g := NewKeyGen(d, 1, rand.New(rand.NewSource(3)))
		for i := 0; i < 100; i++ {
			if k := g.Next(); k != 0 {
				t.Fatalf("%s over 1 key produced %d", d.Kind, k)
			}
		}
	}
}

// TestHotspotSingleKeyClamp pins the pathological configuration the
// chaos-hot-key scenario depends on: a vanishingly small HotFrac clamps
// the hot region to exactly one key, so HotOpFrac of all draws land on
// key 0 rather than the hot region silently rounding to empty.
func TestHotspotSingleKeyClamp(t *testing.T) {
	d := Dist{Kind: DistHotspot, HotFrac: 1e-9, HotOpFrac: 0.9}
	keys := draw(t, d, 1, 100_000)
	zero := 0
	for _, k := range keys {
		if k == 0 {
			zero++
		}
	}
	frac := float64(zero) / float64(len(keys))
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("single-hot-key rate %.3f, want ~%.2f on key 0", frac, d.HotOpFrac)
	}
}

// TestZipfianThetaAboveOnePasses pins that the chaos-shard-skew theta (1.4)
// reaches the generator rather than being clamped to the default: heavier
// theta must concentrate strictly more mass on the hottest key.
func TestZipfianThetaAboveOnePasses(t *testing.T) {
	light := topShare(draw(t, Dist{Kind: DistZipfian, Theta: 1.1}, 1, 100_000))
	heavy := topShare(draw(t, Dist{Kind: DistZipfian, Theta: 1.4}, 1, 100_000))
	if heavy <= light {
		t.Fatalf("theta 1.4 hottest share %.4f not above theta 1.1's %.4f", heavy, light)
	}
}
