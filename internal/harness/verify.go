package harness

import "medley/internal/kv"

// This file is the crash–recovery verification layer of the workload
// engine. The paper's headline property is nonblocking persistence: after
// a crash, every committed transaction's effects are recoverable and no
// aborted transaction's effects survive. The engine checks it end to end:
// while a crash scenario runs, each worker journals the key→value effects
// of its committed transactions; at the crash phase the journals are
// merged into a ground-truth model, the system is flushed, crashed and
// recovered, and the recovered state is compared against the model.
//
// Exactness of the model depends on write partitioning. Concurrent
// workers racing on one key would leave the final committed value
// schedule-dependent, so in crash scenarios the engine rewrites every
// write's key into the worker's residue class (key ≡ worker id mod
// threads). Each worker is then the sole writer of its keys, its journal
// is authoritative for them, and the merged model is exact: a missing,
// mismatched or resurrected key after recovery is a durability violation,
// never scheduling noise. Reads are left unpartitioned so cross-worker
// contention on the read path is preserved.

// modelVal is one key's expected post-recovery state: a value, or
// known-absent (present == false) when the last committed effect was a
// remove.
type modelVal struct {
	val     uint64
	present bool
}

// verifyState carries the crash-scenario machinery through a run: whether
// writes are partitioned, whether workers journal, and the merged model.
type verifyState struct {
	partition bool // rewrite write keys into per-worker residue classes
	journal   bool // record committed effects (recoverable systems only)
	model     map[uint64]modelVal
}

// partitionKey maps k into worker tid's residue class modulo threads,
// staying inside [0, keyRange). RunScenario guarantees keyRange >= threads
// for crash scenarios, so the wrap below never underflows.
func partitionKey(k uint64, tid, threads int, keyRange uint64) uint64 {
	t := uint64(threads)
	p := k - k%t + uint64(tid)
	if p >= keyRange {
		p -= t
	}
	return p
}

// applyOps folds one committed transaction's effects into a journal, in
// operation order (a later op on the same key overrides an earlier one,
// matching transactional semantics).
func applyOps(j map[uint64]modelVal, ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			j[op.Key] = modelVal{val: op.Val, present: true}
		case OpRemove:
			j[op.Key] = modelVal{}
		}
	}
}

// RecoveryResult is the outcome of one crash phase: how recovery went and
// whether the recovered state matches the ground-truth model.
type RecoveryResult struct {
	// Recoverable is false for systems that keep no durable state (or run
	// with persistence off); all other fields are then zero.
	Recoverable bool

	// RecoveryNs is the wall time of crash + recovery (device reset, log
	// replay or payload scan, index rebuild).
	RecoveryNs int64

	// Recovered counts the entries the system reported rebuilding;
	// ModelEntries counts the keys the ground-truth model expects present.
	Recovered    int
	ModelEntries int

	// Durability violations by kind: a committed write absent after
	// recovery (Missing), present with the wrong value (Mismatched), or a
	// key visible that the model says was never committed or was removed
	// (Leaked — an aborted or unborn write surviving the crash).
	Missing    uint64
	Mismatched uint64
	Leaked     uint64
}

// Violations is the total durability-violation count.
func (r RecoveryResult) Violations() uint64 {
	return r.Missing + r.Mismatched + r.Leaked
}

// merge folds a second crash phase's outcome into r (scenarios may crash
// more than once; counts accumulate, entry counts track the last crash).
func (r *RecoveryResult) merge(o RecoveryResult) {
	r.Recoverable = r.Recoverable || o.Recoverable
	r.RecoveryNs += o.RecoveryNs
	r.Recovered = o.Recovered
	r.ModelEntries = o.ModelEntries
	r.Missing += o.Missing
	r.Mismatched += o.Mismatched
	r.Leaked += o.Leaked
}

// diffModel compares the recovered state against the ground-truth model
// and fills r's violation counters.
func diffModel(r *RecoveryResult, model map[uint64]modelVal, got map[uint64]uint64) {
	r.ModelEntries, r.Missing, r.Mismatched, r.Leaked = diffCounts(model, got)
}

// diffCounts compares a live or recovered key→value state against the
// ground-truth model. It is shared between crash recovery verification
// (diffModel) and the VerifyFinal live-state check (FinalCheckResult).
func diffCounts(model map[uint64]modelVal, got map[uint64]uint64) (entries int, missing, mismatched, leaked uint64) {
	for k, e := range model {
		if !e.present {
			continue
		}
		entries++
		gv, ok := got[k]
		switch {
		case !ok:
			missing++
		case gv != e.val:
			mismatched++
		}
	}
	for k := range got {
		if e, ok := model[k]; !ok || !e.present {
			leaked++
		}
	}
	return
}

// FinalCheckResult is the outcome of a VerifyFinal scenario's end-of-run
// state check: the system's live contents diffed against the journaled
// model of committed effects. Unlike RecoveryResult this involves no crash
// — it proves the system under chaos conditions (hot keys, oversubscription,
// skew, scan races) neither lost nor invented committed writes.
type FinalCheckResult struct {
	// Checked is false when the system cannot iterate its state (no
	// Snapshotter) or the scenario did not request the check.
	Checked      bool
	ModelEntries int
	Missing      uint64
	Mismatched   uint64
	Leaked       uint64
}

// Violations is the total final-state violation count.
func (f FinalCheckResult) Violations() uint64 {
	return f.Missing + f.Mismatched + f.Leaked
}

// --------------------------------------------------- wire-level verification
//
// The journal verifier above lives inside the engine: workers journal
// in-process, so "committed" is unambiguous. Behind a wire it is not — a
// client whose connection dies mid-request cannot know whether the
// server executed it. The wire verifier extends the same model-diff
// machinery across that gap: each sender journals only definitively
// acknowledged batches, marks the write keys of in-doubt outcomes as
// tainted, and VerifyWire excludes tainted keys from both the model and
// the server snapshot before diffing. Everything that remains is a key
// the client knows the committed value of, so a post-restart difference
// there is a real durability (or duplicated-execution) violation, never
// retry ambiguity. Exactness still requires partitioned writes
// (PartitionKey): one sender per residue class, sole writer of its keys.

// PartitionKey is the exported form of partitionKey for wire-level
// verifiers whose senders journal outside the engine: it maps k into
// sender tid's residue class modulo senders, staying inside
// [0, keyRange) (callers ensure keyRange >= senders).
func PartitionKey(k uint64, tid, senders int, keyRange uint64) uint64 {
	return partitionKey(k, tid, senders, keyRange)
}

// WireJournal is one sender's client-side record of what it knows about
// the server's state: the last committed value of every key it wrote
// with a definitive acknowledgement, and the set of keys whose state is
// unknowable (touched by an in-doubt request). Single-goroutine, like
// the engine's per-worker journals.
type WireJournal struct {
	model map[uint64]modelVal
	hist  map[uint64][]uint64 // every acked put value per key, in order
	taint map[uint64]struct{}
}

// NewWireJournal creates an empty journal.
func NewWireJournal() *WireJournal {
	return &WireJournal{
		model: make(map[uint64]modelVal),
		hist:  make(map[uint64][]uint64),
		taint: make(map[uint64]struct{}),
	}
}

// Commit folds a definitively acknowledged batch's effects into the
// journal, in operation order. Only idempotent writes (put, delete) are
// modelable from the client side; an acked OpAdd is tainted instead —
// its final value depends on how many times it ran, which is exactly
// what a client cannot count (chaos workloads avoid adds for this
// reason). Put values are additionally kept as a per-key history, which
// is what lets the replica verifier tell a stale value (an older acked
// write — replication lost the suffix) from a mismatched one (a value
// no client ever acked — corruption).
func (j *WireJournal) Commit(ops []kv.Op) {
	for _, op := range ops {
		switch op.Kind {
		case kv.OpPut:
			j.model[op.Key] = modelVal{val: op.Val, present: true}
			j.hist[op.Key] = append(j.hist[op.Key], op.Val)
		case kv.OpDelete:
			j.model[op.Key] = modelVal{}
		case kv.OpAdd:
			j.taint[op.Key] = struct{}{}
		}
	}
}

// Taint marks every write key of an in-doubt batch as unknowable: the
// request may or may not have executed, so nothing about these keys can
// be asserted afterwards.
func (j *WireJournal) Taint(ops []kv.Op) {
	for _, op := range ops {
		switch op.Kind {
		case kv.OpPut, kv.OpDelete, kv.OpAdd:
			j.taint[op.Key] = struct{}{}
		}
	}
}

// VerifyWire merges the senders' journals and diffs them against a
// server state snapshot (quiesced — typically just recovered), after
// removing tainted keys from both sides. It returns the diff and the
// number of keys excluded as tainted, so reports can show how much
// coverage ambiguity cost.
func VerifyWire(journals []*WireJournal, snap func(fn func(key, val uint64) bool)) (FinalCheckResult, int) {
	model := make(map[uint64]modelVal)
	taint := make(map[uint64]struct{})
	for _, j := range journals {
		// Partitioned writes make per-key overrides impossible across
		// journals; plain merge is exact.
		for k, v := range j.model {
			model[k] = v
		}
		for k := range j.taint {
			taint[k] = struct{}{}
		}
	}
	for k := range taint {
		delete(model, k)
	}
	got := make(map[uint64]uint64, len(model))
	snap(func(k, v uint64) bool {
		if _, bad := taint[k]; !bad {
			got[k] = v
		}
		return true
	})
	fc := FinalCheckResult{Checked: true}
	fc.ModelEntries, fc.Missing, fc.Mismatched, fc.Leaked = diffCounts(model, got)
	return fc, len(taint)
}

// ----------------------------------------------- replica divergence check
//
// The replica verifier is VerifyWire pointed at a follower instead of a
// recovered leader, with one refinement: per-key acked-value histories
// let it CLASSIFY a divergence instead of just counting it. A replica
// holding an older acked value lost a replay suffix (stale); a value no
// client ever acked is corruption (mismatched); a key the model has that
// the replica lacks vanished in flight (missing); a key the replica has
// that the model deleted — or never wrote — leaked. Reordered delivery
// is not distinguishable from staleness by state alone, so the follower's
// own seq-regression counter rides along in the result (filled by the
// caller from replica.Stats).

// ReplicaCheckResult is the outcome of one replica divergence check.
type ReplicaCheckResult struct {
	Checked      bool
	ModelEntries int
	Missing      uint64 // model has the key, replica does not
	Stale        uint64 // replica holds an older acked value
	Mismatched   uint64 // replica holds a value no client acked
	Leaked       uint64 // replica holds a key deleted or never written
	Reordered    uint64 // follower-observed seq regressions (from replica.Stats)
}

// Violations is the total divergence count. Reordered entries are not
// added — every reordered entry that mattered already shows up as a
// stale or missing key, and one skipped during transient mangling that
// later re-converged is not a divergence.
func (r ReplicaCheckResult) Violations() uint64 {
	return r.Missing + r.Stale + r.Mismatched + r.Leaked
}

// VerifyReplicaWire merges the senders' journals and diffs a quiesced,
// caught-up replica snapshot against them, classifying each divergent
// key. Tainted keys (in-doubt outcomes, lost-at-promotion suffixes) are
// excluded from both sides; the count of exclusions is returned so
// reports show what ambiguity cost.
func VerifyReplicaWire(journals []*WireJournal, snap func(fn func(key, val uint64) bool)) (ReplicaCheckResult, int) {
	model := make(map[uint64]modelVal)
	hist := make(map[uint64][]uint64)
	taint := make(map[uint64]struct{})
	for _, j := range journals {
		// Partitioned writes: per key exactly one SENDER journal wrote, so
		// plain assignment merges the models exactly. Histories append: a
		// preload journal and the key's sender both hold acked values, and
		// staleness classification needs every one of them.
		for k, v := range j.model {
			model[k] = v
		}
		for k, h := range j.hist {
			hist[k] = append(hist[k], h...)
		}
		for k := range j.taint {
			taint[k] = struct{}{}
		}
	}
	for k := range taint {
		delete(model, k)
		delete(hist, k)
	}
	got := make(map[uint64]uint64, len(model))
	snap(func(k, v uint64) bool {
		if _, bad := taint[k]; !bad {
			got[k] = v
		}
		return true
	})

	acked := func(k, v uint64) bool {
		for _, h := range hist[k] {
			if h == v {
				return true
			}
		}
		return false
	}
	rc := ReplicaCheckResult{Checked: true}
	for k, e := range model {
		gv, ok := got[k]
		if e.present {
			rc.ModelEntries++
			switch {
			case !ok:
				rc.Missing++
			case gv == e.val:
			case acked(k, gv):
				rc.Stale++
			default:
				rc.Mismatched++
			}
			continue
		}
		// Deleted on the leader: a surviving older acked value means the
		// delete has not replicated (stale); anything else leaked.
		if ok {
			if acked(k, gv) {
				rc.Stale++
			} else {
				rc.Leaked++
			}
		}
	}
	for k := range got {
		if _, ok := model[k]; !ok {
			rc.Leaked++
		}
	}
	return rc, len(taint)
}

// runFinalCheck diffs the live state against the model at the end of a
// VerifyFinal scenario; all workers have stopped, so the snapshot is exact.
func runFinalCheck(caps Caps, vs *verifyState) *FinalCheckResult {
	if caps.Snapshot == nil || vs == nil || !vs.journal {
		return &FinalCheckResult{}
	}
	got := make(map[uint64]uint64, len(vs.model))
	caps.Snapshot.StateSnapshot(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	fc := &FinalCheckResult{Checked: true}
	fc.ModelEntries, fc.Missing, fc.Mismatched, fc.Leaked = diffCounts(vs.model, got)
	return fc
}
