package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"medley/internal/kv"
)

// This file is the open-loop half of the workload engine. The closed-loop
// engine (engine.go) measures capacity: N workers issue back-to-back
// transactions and throughput is whatever the system sustains. A service
// answers a different question — what latency do clients see at a given
// *offered* load — and a closed loop cannot ask it: when the system slows
// down, closed-loop clients slow down with it, silently shrinking the
// offered load and hiding the queueing delay real arrivals would have
// seen (coordinated omission). Here arrivals are a Poisson process at a
// configured rate, independent of completions, and every latency is
// measured from the transaction's *scheduled arrival time*, so time spent
// queueing behind a slow system is charged to the system, not forgiven.

// OpenLoopConfig parameterizes one open-loop run: a sweep of offered
// rates over one driver.
type OpenLoopConfig struct {
	// Rates is the offered-load sweep, in transactions per second; each
	// rate runs for Duration and becomes one phase of the result.
	Rates    []float64
	Duration time.Duration

	// MaxInFlight bounds concurrent outstanding requests (sender
	// sessions); default 64. Together with QueueDepth it is the client's
	// own admission bound: arrivals that find the dispatch queue full are
	// counted as Dropped rather than stalling the arrival process.
	MaxInFlight int
	// QueueDepth is the dispatch queue between the arrival process and
	// the senders; default 2 * MaxInFlight.
	QueueDepth int

	KeyRange uint64
	Preload  int
	Seed     int64
	Mix      Mix
	Dist     Dist

	// MaxLatencySamples bounds each sender's latency reservoir per rate
	// step (default 4096).
	MaxLatencySamples int
}

// OpenLoopPhase is the measurement of one offered-rate step.
type OpenLoopPhase struct {
	TargetRate  float64 // configured arrival rate, txn/s
	OfferedRate float64 // arrivals actually generated / elapsed
	Offered     uint64  // arrivals generated (dispatched + dropped)
	Completed   uint64  // transactions executed and acknowledged
	Shed        uint64  // rejected by the service's admission control
	Errors      uint64  // transport or server failures
	Expired     uint64  // deadline passed before execution (never ran)
	Dropped     uint64  // arrivals dropped at the full client queue
	Ops         uint64  // operations inside completed transactions
	Elapsed     time.Duration
	Goodput     float64 // Completed / Elapsed, txn/s

	// Latency percentiles over completed transactions, measured from the
	// scheduled arrival time (coordinated-omission-free).
	AvgNs  float64
	P50Ns  float64
	P99Ns  float64
	P999Ns float64

	// Memory is the step's memory digest. It samples this process — the
	// client side when the driver targets a remote server.
	Memory *MemoryResult
}

// OpenLoopResult is one driver's sweep.
type OpenLoopResult struct {
	Driver string // driver kind: "inproc" or "http"
	System string // system under test
	Shards int    // store partitions, 1 when the driver cannot tell
	Phases []OpenLoopPhase
}

// RunOpenLoop executes the configured rate sweep against d: start,
// preload once, then one step per rate. Steps reuse the driver's backend,
// so later steps see the working set earlier steps left behind — exactly
// like phases of a closed-loop scenario.
func RunOpenLoop(d Driver, cfg OpenLoopConfig) (OpenLoopResult, error) {
	if len(cfg.Rates) == 0 {
		return OpenLoopResult{}, fmt.Errorf("open-loop: no rates configured")
	}
	for _, r := range cfg.Rates {
		if r <= 0 {
			return OpenLoopResult{}, fmt.Errorf("open-loop: non-positive rate %v", r)
		}
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.MaxInFlight
	}
	if cfg.MaxLatencySamples <= 0 {
		cfg.MaxLatencySamples = 4096
	}
	if cfg.KeyRange == 0 {
		cfg.KeyRange = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if err := d.Start(); err != nil {
		return OpenLoopResult{}, fmt.Errorf("open-loop: start: %w", err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	keys := make([]uint64, cfg.Preload)
	for i := range keys {
		keys[i] = uint64(rng.Int63n(int64(cfg.KeyRange)))
	}
	if err := d.Preload(keys); err != nil {
		return OpenLoopResult{}, fmt.Errorf("open-loop: preload: %w", err)
	}

	res := OpenLoopResult{Driver: d.Kind(), System: d.System(), Shards: 1}
	if sc, ok := d.(ShardCounter); ok {
		res.Shards = sc.ShardCount()
	}
	for i, rate := range cfg.Rates {
		ph, err := runOpenLoopStep(d, cfg, rate, i)
		if err != nil {
			return res, err
		}
		res.Phases = append(res.Phases, ph)
	}
	return res, nil
}

// olReq is one scheduled transaction: its operations and the arrival time
// the Poisson process assigned it. Latency is measured from sched.
type olReq struct {
	ops   []kv.Op
	sched time.Time
}

// olSender is one sender goroutine's counters and latency reservoir,
// padded like workerShard so concurrent senders never share a line.
type olSender struct {
	completed uint64
	shed      uint64
	errors    uint64
	expired   uint64
	ops       uint64
	samples   []int64
	seen      int64
	r         *rand.Rand
	_         [40]byte
}

func (s *olSender) record(d time.Duration, max int) {
	s.seen++
	if len(s.samples) < max {
		s.samples = append(s.samples, int64(d))
		return
	}
	if j := s.r.Int63n(s.seen); j < int64(max) {
		s.samples[j] = int64(d)
	}
}

// runOpenLoopStep runs one offered-rate step: a dispatcher goroutine
// generates Poisson arrivals into a bounded queue; MaxInFlight senders
// drain it, one driver session each.
func runOpenLoopStep(d Driver, cfg OpenLoopConfig, rate float64, step int) (OpenLoopPhase, error) {
	work := make(chan olReq, cfg.QueueDepth)
	senders := make([]*olSender, cfg.MaxInFlight)
	var wg sync.WaitGroup
	var sessErr error
	var sessErrOnce sync.Once
	for i := 0; i < cfg.MaxInFlight; i++ {
		seed := cfg.Seed + int64(step)*104729 + int64(i)*7919
		s := &olSender{r: rand.New(rand.NewSource(seed ^ 0x5DEECE66D))}
		senders[i] = s
		sess, err := d.NewSession()
		if err != nil {
			close(work)
			return OpenLoopPhase{}, fmt.Errorf("open-loop: session: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sess.Close()
			for req := range work {
				err := sess.Do(req.ops, nil)
				lat := time.Since(req.sched)
				// errors.Is, not ==: a fault-tolerant driver may wrap the
				// sentinel (e.g. in an in-doubt marker) after retries.
				switch {
				case err == nil:
					s.completed++
					s.ops += uint64(len(req.ops))
					s.record(lat, cfg.MaxLatencySamples)
				case errors.Is(err, ErrOverload):
					s.shed++
				case errors.Is(err, ErrExpired):
					s.expired++
				default:
					s.errors++
					sessErrOnce.Do(func() { sessErr = err })
				}
			}
		}()
	}

	mem0 := readMemSample()
	gen := NewTxGen(cfg.Dist, cfg.KeyRange, cfg.Mix, cfg.Seed+int64(step)*15485863)
	arr := rand.New(rand.NewSource(cfg.Seed + int64(step)*32452843))
	var offered, dropped uint64
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	next := start
	for {
		// Poisson arrivals: exponential interarrival at the target rate.
		// When the dispatcher falls behind (sleep overshoot, queue
		// contention) it does not re-derive the schedule from "now" —
		// catching up preserves the arrival count an open loop owes.
		next = next.Add(time.Duration(arr.ExpFloat64() / rate * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		ops := KvOps(nil, gen.Next())
		offered++
		select {
		case work <- olReq{ops: ops, sched: next}:
		default:
			dropped++
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	mem1 := readMemSample()

	ph := OpenLoopPhase{
		TargetRate: rate,
		Offered:    offered,
		Dropped:    dropped,
		Elapsed:    elapsed,
	}
	var samples []int64
	for _, s := range senders {
		ph.Completed += s.completed
		ph.Shed += s.shed
		ph.Errors += s.errors
		ph.Expired += s.expired
		ph.Ops += s.ops
		samples = append(samples, s.samples...)
	}
	if elapsed > 0 {
		ph.OfferedRate = float64(offered) / elapsed.Seconds()
		ph.Goodput = float64(ph.Completed) / elapsed.Seconds()
	}
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		var sum int64
		for _, s := range samples {
			sum += s
		}
		ph.AvgNs = float64(sum) / float64(len(samples))
		ph.P50Ns = float64(permille(samples, 500))
		ph.P99Ns = float64(permille(samples, 990))
		ph.P999Ns = float64(permille(samples, 999))
	}
	ph.Memory = memoryResult(mem0, mem1, ph.Ops, 0, 0, 0)
	if ph.Completed == 0 && sessErr != nil {
		return ph, fmt.Errorf("open-loop: no transaction completed at rate %v: %w", rate, sessErr)
	}
	return ph, nil
}

// permille is nearest-rank over a sorted slice, in tenths of a percent —
// the open-loop tail needs p99.9, which the percent-grained percentile
// helper cannot express.
func permille(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 999) / 1000
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
