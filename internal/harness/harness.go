// Package harness drives the paper's evaluation (Section 6): the
// microbenchmark of Figures 7, 8 and 10 (1M key space, 0.5M preload,
// transactions of 1-10 uniform-random operations with a configurable
// get:insert:remove ratio) and the TPC-C subset of Figure 9, over every
// system under test.
package harness

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// OpKind enumerates microbenchmark operations.
type OpKind uint8

// Operation kinds in the paper's get:insert:remove mixes.
const (
	OpGet OpKind = iota
	OpInsert
	OpRemove
)

// Op is one operation of a generated transaction.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  uint64
}

// Worker executes transactions for one goroutine.
type Worker interface {
	// Do executes ops as one atomic transaction, retrying conflict aborts
	// internally until commit.
	Do(ops []Op)
}

// System is one concurrency-control system under the microbenchmark.
type System interface {
	Name() string
	// Preload inserts the initial key-value pairs (non-transactionally or
	// in bulk transactions, system's choice).
	Preload(keys []uint64)
	NewWorker() Worker
	// Start launches any background machinery (epoch advancers, index
	// maintenance) and returns a stop function.
	Start() (stop func())
}

// Ratio is a get:insert:remove mix. The paper uses 0:1:1, 2:1:1 and 18:1:1.
type Ratio struct {
	Get, Insert, Remove int
}

func (r Ratio) String() string {
	return itoa(r.Get) + ":" + itoa(r.Insert) + ":" + itoa(r.Remove)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// PaperRatios are the three workload mixes of Figures 7, 8 and 10.
var PaperRatios = []Ratio{{0, 1, 1}, {2, 1, 1}, {18, 1, 1}}

// Config parameterizes one microbenchmark run.
type Config struct {
	Threads  int
	Duration time.Duration
	KeyRange uint64 // paper: 1M
	Preload  int    // paper: 0.5M
	TxMin    int    // paper: 1
	TxMax    int    // paper: 10
	Ratio    Ratio
	Seed     int64
}

// PaperConfig returns the paper's microbenchmark parameters at the given
// thread count and duration.
func PaperConfig(threads int, d time.Duration, ratio Ratio) Config {
	return Config{
		Threads: threads, Duration: d,
		KeyRange: 1 << 20, Preload: 1 << 19,
		TxMin: 1, TxMax: 10,
		Ratio: ratio, Seed: 42,
	}
}

// Result is one measured point.
type Result struct {
	System     string
	Ratio      string
	Threads    int
	Txns       uint64
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // txn/s
	LatencyNs  float64 // avg per-transaction latency per thread
}

// Run measures sys under cfg.
func Run(sys System, cfg Config) Result {
	if cfg.TxMin <= 0 {
		cfg.TxMin = 1
	}
	if cfg.TxMax < cfg.TxMin {
		cfg.TxMax = cfg.TxMin
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	keys := make([]uint64, cfg.Preload)
	for i := range keys {
		keys[i] = uint64(rng.Int63n(int64(cfg.KeyRange)))
	}
	sys.Preload(keys)
	stop := sys.Start()
	defer stop()

	var txns, opsDone atomic.Uint64
	var stopFlag atomic.Bool
	var wg sync.WaitGroup
	start := make(chan struct{})
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			w := sys.NewWorker()
			r := rand.New(rand.NewSource(seed))
			ops := make([]Op, 0, cfg.TxMax)
			var localTx, localOps uint64
			<-start
			for !stopFlag.Load() {
				n := cfg.TxMin + r.Intn(cfg.TxMax-cfg.TxMin+1)
				ops = ops[:0]
				for i := 0; i < n; i++ {
					ops = append(ops, Op{
						Kind: pickKind(r, cfg.Ratio),
						Key:  uint64(r.Int63n(int64(cfg.KeyRange))),
						Val:  r.Uint64(),
					})
				}
				w.Do(ops)
				localTx++
				localOps += uint64(n)
			}
			txns.Add(localTx)
			opsDone.Add(localOps)
		}(cfg.Seed + int64(t)*7919)
	}
	begin := time.Now()
	close(start)
	time.Sleep(cfg.Duration)
	stopFlag.Store(true)
	wg.Wait()
	elapsed := time.Since(begin)

	res := Result{
		System: sys.Name(), Ratio: cfg.Ratio.String(), Threads: cfg.Threads,
		Txns: txns.Load(), Ops: opsDone.Load(), Elapsed: elapsed,
	}
	if elapsed > 0 && res.Txns > 0 {
		res.Throughput = float64(res.Txns) / elapsed.Seconds()
		res.LatencyNs = float64(cfg.Threads) * float64(elapsed.Nanoseconds()) / float64(res.Txns)
	}
	return res
}

func pickKind(r *rand.Rand, ratio Ratio) OpKind {
	total := ratio.Get + ratio.Insert + ratio.Remove
	x := r.Intn(total)
	if x < ratio.Get {
		return OpGet
	}
	if x < ratio.Get+ratio.Insert {
		return OpInsert
	}
	return OpRemove
}
