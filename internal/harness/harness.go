// Package harness is the workload engine behind cmd/medley-bench. It
// drives the paper's evaluation (Section 6) — the microbenchmark of
// Figures 7, 8 and 10 (1M key space, 0.5M preload, transactions of 1-10
// uniform-random operations with a configurable get:insert:remove ratio)
// and the TPC-C subset of Figure 9 — and generalizes it into pluggable
// scenarios: key-distribution generators (generator.go), transaction
// mixes with multi-key compositions and working-set phases (scenario.go),
// a phase-scripted measurement engine with per-worker statistics shards
// and latency reservoirs (engine.go), crash–recovery verification of the
// paper's durability claim (verify.go, the Recoverable capability in
// systems.go), and machine-readable reports with a CI-pinned schema
// (report.go, schema.go), over every system under test (systems.go).
package harness

import (
	"math/rand"
	"time"
)

// OpKind enumerates microbenchmark operations.
type OpKind uint8

// Operation kinds: the paper's get:insert:remove mixes plus bounded
// range scans (the range-scan scenario).
const (
	OpGet OpKind = iota
	OpInsert
	OpRemove
	// OpRange scans up to Val entries through the structure's native
	// (non-linearizable) Range iteration; Key is unused. Scans ride along
	// inside transactions but are not part of the read set.
	OpRange
)

// Op is one operation of a generated transaction.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  uint64
}

// Worker executes transactions for one goroutine.
type Worker interface {
	// Do executes ops as one atomic transaction, retrying conflict aborts
	// internally until commit.
	Do(ops []Op)
}

// GroupWorker is the optional worker capability behind group-commit
// scenarios (Scenario.GroupSize > 1): DoGroup executes each op list as
// its own logical transaction — outcomes identical to calling Do once
// per list, in order — but the worker may merge compatible neighbors
// into one physical group commit. Workers without the capability run
// group scenarios through the plain Do loop.
type GroupWorker interface {
	DoGroup(opss [][]Op)
}

// System is one concurrency-control system under the microbenchmark.
type System interface {
	Name() string
	// Preload inserts the initial key-value pairs (non-transactionally or
	// in bulk transactions, system's choice).
	Preload(keys []uint64)
	NewWorker() Worker
	// Start launches any background machinery (epoch advancers, index
	// maintenance) and returns a stop function.
	Start() (stop func())
}

// Ratio is a get:insert:remove mix. The paper uses 0:1:1, 2:1:1 and 18:1:1.
type Ratio struct {
	Get, Insert, Remove int
}

func (r Ratio) String() string {
	return itoa(r.Get) + ":" + itoa(r.Insert) + ":" + itoa(r.Remove)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// PaperRatios are the three workload mixes of Figures 7, 8 and 10.
var PaperRatios = []Ratio{{0, 1, 1}, {2, 1, 1}, {18, 1, 1}}

// Config parameterizes one microbenchmark run.
type Config struct {
	Threads  int
	Duration time.Duration
	KeyRange uint64 // paper: 1M
	Preload  int    // paper: 0.5M
	TxMin    int    // paper: 1
	TxMax    int    // paper: 10
	Ratio    Ratio
	Seed     int64
}

// PaperConfig returns the paper's microbenchmark parameters at the given
// thread count and duration.
func PaperConfig(threads int, d time.Duration, ratio Ratio) Config {
	return Config{
		Threads: threads, Duration: d,
		KeyRange: 1 << 20, Preload: 1 << 19,
		TxMin: 1, TxMax: 10,
		Ratio: ratio, Seed: 42,
	}
}

// Result is one measured point.
type Result struct {
	System     string
	Ratio      string
	Threads    int
	Txns       uint64
	Ops        uint64
	Aborts     uint64
	Elapsed    time.Duration
	Throughput float64 // committed txn/s
	AbortRate  float64 // aborted attempts / total attempts, 0 if unknown
	LatencyNs  float64 // avg per-transaction latency (sampled)
	P50Ns      float64
	P99Ns      float64
}

// Run measures sys under cfg: the paper's microbenchmark loop, expressed
// as a single-phase uniform scenario on the workload engine. RunScenario
// is the general entry point.
func Run(sys System, cfg Config) Result {
	sc := Scenario{
		Name: "uniform-" + cfg.Ratio.String(),
		Dist: Dist{Kind: DistUniform},
		Phases: []Phase{{
			Name: "mixed", Weight: 1, Measure: true,
			Mix: Mix{Ratio: cfg.Ratio, TxMin: cfg.TxMin, TxMax: cfg.TxMax, Mixed: 1},
		}},
	}
	r := RunScenario(sys, sc, EngineConfig{
		Threads: cfg.Threads, Duration: cfg.Duration,
		KeyRange: cfg.KeyRange, Preload: cfg.Preload, Seed: cfg.Seed,
	})
	m := r.Measured
	return Result{
		System: r.System, Ratio: cfg.Ratio.String(), Threads: cfg.Threads,
		Txns: m.Txns, Ops: m.Ops, Aborts: m.Aborts, Elapsed: m.Elapsed,
		Throughput: m.Throughput, AbortRate: m.AbortRate,
		LatencyNs: m.AvgLatencyNs, P50Ns: m.P50LatencyNs, P99Ns: m.P99LatencyNs,
	}
}

func pickKind(r *rand.Rand, ratio Ratio) OpKind {
	total := ratio.Get + ratio.Insert + ratio.Remove
	x := r.Intn(total)
	if x < ratio.Get {
		return OpGet
	}
	if x < ratio.Get+ratio.Insert {
		return OpInsert
	}
	return OpRemove
}
