package harness

import (
	"testing"
	"time"
)

// tinyConfig keeps harness tests fast: small key space, short duration.
func tinyConfig(threads int, ratio Ratio) Config {
	return Config{
		Threads: threads, Duration: 50 * time.Millisecond,
		KeyRange: 1 << 10, Preload: 1 << 9,
		TxMin: 1, TxMax: 10, Ratio: ratio, Seed: 7,
	}
}

func allSystems() []System {
	return []System{
		NewMedleyHash(1 << 10),
		NewMedleySkip(),
		NewMontage(MontageOpts{Skiplist: false, Buckets: 1 << 10, RegionWords: 1 << 20}),
		NewMontage(MontageOpts{Skiplist: true, RegionWords: 1 << 20}),
		NewMontage(MontageOpts{Skiplist: true, RegionWords: 1 << 20, PersistOff: true}),
		NewOneFile(OneFileOpts{Skiplist: false, Buckets: 1 << 10}),
		NewOneFile(OneFileOpts{Skiplist: true}),
		NewOneFile(OneFileOpts{Skiplist: true, Persistent: true, RegionWords: 1 << 20}),
		NewTDSL(),
		NewLFTT(),
		NewOriginalSkip(),
		NewTxOffSkip(),
	}
}

func TestEverySystemRunsEveryRatio(t *testing.T) {
	for _, sys := range allSystems() {
		for _, ratio := range PaperRatios {
			res := Run(sys, tinyConfig(2, ratio))
			if res.Txns == 0 {
				t.Errorf("%s @ %s: zero transactions completed", sys.Name(), ratio)
			}
			if res.Throughput <= 0 || res.LatencyNs <= 0 {
				t.Errorf("%s @ %s: bad metrics %+v", sys.Name(), ratio, res)
			}
		}
	}
}

func TestThreadSweepMonotoneAccounting(t *testing.T) {
	sys := NewMedleyHash(1 << 10)
	for _, th := range []int{1, 2, 4} {
		res := Run(sys, tinyConfig(th, Ratio{2, 1, 1}))
		if res.Threads != th || res.Txns == 0 {
			t.Fatalf("bad result at %d threads: %+v", th, res)
		}
		if res.Ops < res.Txns {
			t.Fatalf("ops < txns: %+v", res)
		}
	}
}

func TestRatioStringsMatchPaper(t *testing.T) {
	want := []string{"0:1:1", "2:1:1", "18:1:1"}
	for i, r := range PaperRatios {
		if r.String() != want[i] {
			t.Fatalf("ratio %d = %s, want %s", i, r.String(), want[i])
		}
	}
}
