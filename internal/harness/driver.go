package harness

import (
	"errors"

	"medley/internal/kv"
)

// This file is the driver seam of the open-loop benchmark path: a Driver
// abstracts how generated load reaches the system under test, so the same
// scenario runs unchanged against an in-process store (NewInProcDriver)
// and against a medleyd server over the wire (the HTTP client driver in
// internal/service). The open-loop engine (openloop.go) only ever talks to
// this interface.

// ErrOverload is the sentinel a DriverSession returns when the service
// shed the request at admission (bounded txpool full; HTTP 429 on the
// wire). The open-loop engine counts shed requests separately from
// errors: shedding under overload is the admission control working, not a
// failure.
var ErrOverload = errors.New("harness: request shed by admission control")

// ErrExpired is the sentinel a DriverSession returns when the request's
// deadline passed before the service executed it (HTTP 504 on the wire,
// or the client giving up before sending). The server guarantees an
// expired request never ran, so the open-loop engine counts it as its
// own disposition — a latency casualty, not a failure and not a shed.
var ErrExpired = errors.New("harness: request deadline expired before execution")

// Driver provisions the system under test and hands out sessions. Start,
// Preload and Close are called once per run, from one goroutine;
// NewSession is called once per sender goroutine.
type Driver interface {
	// Kind names the transport for reports: "inproc" or "http".
	Kind() string
	// System names the system under test for reports (e.g.
	// "medley-hash-8shard"); valid after Start.
	System() string
	// Start brings the backend up (starts maintenance for an in-process
	// system; verifies connectivity for a remote one).
	Start() error
	// Preload installs the initial keys (key == value), exactly like
	// System.Preload.
	Preload(keys []uint64) error
	// NewSession creates one sender's session. Sessions are goroutine-
	// bound: only the goroutine that first calls Do may keep calling it.
	NewSession() (DriverSession, error)
	// Close tears down whatever Start brought up.
	Close() error
}

// DriverSession executes batch requests for one sender goroutine.
type DriverSession interface {
	// Do executes ops as one atomic transaction, filling res[i] per op
	// when res is non-nil (len(res) must equal len(ops) then). It returns
	// ErrOverload when the service shed the request, any other non-nil
	// error for transport or server failures.
	Do(ops []kv.Op, res []kv.Result) error
	// Close releases the session.
	Close() error
}

// ExecutorSystem is the capability a System needs for in-process driving:
// handing out per-goroutine batch executors (KVSystem implements it).
type ExecutorSystem interface {
	System
	NewExecutor() kv.Executor
}

// InProcDriver drives an ExecutorSystem directly: no pool, no tick loop,
// no wire — one kv.Executor per session. It is the zero-transport
// baseline that isolates what the service layer (queueing, coalescing,
// HTTP) adds on top of raw store latency.
type InProcDriver struct {
	sys  ExecutorSystem
	stop func()
}

// NewInProcDriver wraps sys; Start/Close manage its lifecycle.
func NewInProcDriver(sys ExecutorSystem) *InProcDriver {
	return &InProcDriver{sys: sys}
}

// Kind implements Driver.
func (d *InProcDriver) Kind() string { return "inproc" }

// System implements Driver.
func (d *InProcDriver) System() string { return d.sys.Name() }

// Start implements Driver.
func (d *InProcDriver) Start() error {
	d.stop = d.sys.Start()
	return nil
}

// Preload implements Driver.
func (d *InProcDriver) Preload(keys []uint64) error {
	d.sys.Preload(keys)
	return nil
}

// NewSession implements Driver. The executor is created lazily on the
// session's first Do, because executors are bound to the goroutine that
// creates them and NewSession runs on the engine's goroutine.
func (d *InProcDriver) NewSession() (DriverSession, error) {
	return &inprocSession{sys: d.sys}, nil
}

// ShardCount implements ShardCounter when the underlying system does.
func (d *InProcDriver) ShardCount() int {
	return Capabilities(d.sys).ShardCount()
}

// Close implements Driver.
func (d *InProcDriver) Close() error {
	if d.stop != nil {
		d.stop()
		d.stop = nil
	}
	return nil
}

type inprocSession struct {
	sys ExecutorSystem
	ex  kv.Executor
}

func (s *inprocSession) Do(ops []kv.Op, res []kv.Result) error {
	if s.ex == nil {
		s.ex = s.sys.NewExecutor()
	}
	return s.ex.ExecBatch(ops, res)
}

func (s *inprocSession) Close() error { return nil }

// KvOps translates harness ops into the kv batch request API — the
// adapter between the scenario generators (which speak harness Op) and
// the Driver seam (which speaks kv.Op). dst is reused; the returned slice
// aliases it.
func KvOps(dst []kv.Op, ops []Op) []kv.Op {
	dst = dst[:0]
	for _, op := range ops {
		dst = append(dst, kv.Op{Kind: kvKind(op.Kind), Key: op.Key, Val: op.Val})
	}
	return dst
}
