package harness

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func tinyEngineConfig(threads int) EngineConfig {
	return EngineConfig{
		Threads: threads, Duration: 60 * time.Millisecond,
		KeyRange: 1 << 10, Preload: 1 << 9, Seed: 7,
	}
}

func TestRunScenarioAllBuiltinsOnMedley(t *testing.T) {
	for _, name := range ScenarioNames() {
		sc, err := LookupScenario(name)
		if err != nil {
			t.Fatal(err)
		}
		res := RunScenario(NewMedleyHash(1<<10), sc, tinyEngineConfig(2))
		if res.Scenario != name || res.System != "Medley-hash" {
			t.Fatalf("%s: bad labels %+v", name, res)
		}
		if len(res.Phases) != len(sc.Phases) {
			t.Fatalf("%s: %d phase results for %d phases", name, len(res.Phases), len(sc.Phases))
		}
		m := res.Measured
		if m.Txns == 0 || m.Throughput <= 0 {
			t.Errorf("%s: no progress: %+v", name, m)
		}
		if m.P50LatencyNs <= 0 || m.P99LatencyNs < m.P50LatencyNs {
			t.Errorf("%s: bad percentiles p50=%f p99=%f", name, m.P50LatencyNs, m.P99LatencyNs)
		}
		if m.AvgLatencyNs <= 0 {
			t.Errorf("%s: no average latency", name)
		}
	}
}

func TestRunScenarioCompetitorsReportAborts(t *testing.T) {
	sc, err := LookupScenario("zipfian-mixed")
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{
		NewOneFile(OneFileOpts{Buckets: 1 << 10}),
		NewTDSL(),
		NewLFTT(),
	} {
		if _, ok := sys.(TxStatser); !ok {
			t.Fatalf("%s does not implement TxStatser", sys.Name())
		}
		res := RunScenario(sys, sc, tinyEngineConfig(2))
		if res.Measured.Txns == 0 {
			t.Fatalf("%s: no transactions", sys.Name())
		}
		if res.Measured.AbortRate < 0 || res.Measured.AbortRate >= 1 {
			t.Fatalf("%s: abort rate %f out of range", sys.Name(), res.Measured.AbortRate)
		}
	}
}

func TestRunScenarioPhaseIsolation(t *testing.T) {
	sc, err := LookupScenario("load-mixed-drain")
	if err != nil {
		t.Fatal(err)
	}
	res := RunScenario(NewMedleyHash(1<<10), sc, tinyEngineConfig(2))
	names := []string{"load", "mixed", "drain"}
	for i, ph := range res.Phases {
		if ph.Phase != names[i] {
			t.Fatalf("phase %d = %q, want %q", i, ph.Phase, names[i])
		}
		if ph.Txns == 0 {
			t.Fatalf("phase %q made no progress", ph.Phase)
		}
	}
	// The aggregate covers exactly the measured phase.
	if res.Measured.Txns != res.Phases[1].Txns {
		t.Fatalf("aggregate %d txns, measured phase %d", res.Measured.Txns, res.Phases[1].Txns)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := make([]int64, 100)
	for i := range sorted {
		sorted[i] = int64(i + 1)
	}
	cases := []struct {
		p    int
		want int64
	}{{50, 50}, {99, 99}, {100, 100}, {1, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Fatalf("p%d of 1..100 = %d, want %d", c.p, got, c.want)
		}
	}
	if got := percentile([]int64{7}, 99); got != 7 {
		t.Fatalf("p99 of singleton = %d", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("p50 of empty = %d", got)
	}
}

func TestWeightedPercentileWeighsByTxns(t *testing.T) {
	// Slow phase: 4 samples of 1000ns standing for 4 txns. Fast phase:
	// 4 samples of 10ns standing for 996 txns. Unweighted concatenation
	// would put p50 at 1000ns; weighting must keep it at 10ns.
	var pr PhaseResult
	pr.Txns = 1000
	pr.Elapsed = time.Second
	finishAggregate(&pr, []phaseSamples{
		{samples: []int64{1000, 1000, 1000, 1000}, txns: 4},
		{samples: []int64{10, 10, 10, 10}, txns: 996},
	})
	if pr.P50LatencyNs != 10 {
		t.Fatalf("weighted p50 = %f, want 10", pr.P50LatencyNs)
	}
	if pr.P99LatencyNs != 10 {
		t.Fatalf("weighted p99 = %f, want 10 (slow phase is only 0.4%% of txns)", pr.P99LatencyNs)
	}
	if pr.AvgLatencyNs >= 100 {
		t.Fatalf("weighted avg = %f, want ~14", pr.AvgLatencyNs)
	}
}

func TestWorkerShardReservoirBounded(t *testing.T) {
	sc := Scenario{
		Name: "bounded", Dist: Dist{Kind: DistUniform},
		Phases: []Phase{{Name: "m", Weight: 1, Measure: true,
			Mix: Mix{Ratio: Ratio{Get: 1}, TxMin: 1, TxMax: 1, Mixed: 1}}},
	}
	cfg := tinyEngineConfig(2)
	cfg.MaxLatencySamples = 64
	res := RunScenario(NewOriginalSkip(), sc, cfg)
	if res.Measured.Txns < 64 {
		t.Skip("machine too slow to fill the reservoir")
	}
	if res.Measured.P50LatencyNs <= 0 {
		t.Fatal("reservoir produced no percentile")
	}
}

// TestZeroWeightPhaseDefaultsToEqualShare pins the engine's weight
// defaulting: a phase with Weight 0 is not skipped or starved — it takes
// an equal share of the budget, exactly as if every unweighted phase had
// Weight 1. A scenario author omitting weights gets even phases, never a
// zero-duration phase with meaningless statistics.
func TestZeroWeightPhaseDefaultsToEqualShare(t *testing.T) {
	sc := Scenario{
		Name: "zero-weight", Dist: Dist{Kind: DistUniform},
		Phases: []Phase{
			{Name: "unweighted", Weight: 0,
				Mix: Mix{Ratio: Ratio{Insert: 1}, TxMin: 1, TxMax: 1, Mixed: 1}},
			{Name: "mixed", Weight: 1, Measure: true,
				Mix: Mix{Ratio: Ratio{Get: 1, Insert: 1}, TxMin: 1, TxMax: 4, Mixed: 1}},
		},
	}
	cfg := tinyEngineConfig(2)
	res := RunScenario(NewMedleyHash(1<<10), sc, cfg)
	if len(res.Phases) != 2 {
		t.Fatalf("%d phase results, want 2", len(res.Phases))
	}
	for _, ph := range res.Phases {
		if ph.Txns == 0 {
			t.Fatalf("phase %q made no progress", ph.Phase)
		}
		// Equal split of the budget: each phase gets about half, never the
		// whole duration and never nothing.
		if ph.Elapsed < cfg.Duration/4 || ph.Elapsed > cfg.Duration {
			t.Fatalf("phase %q ran %v of a %v budget, want ~half", ph.Phase, ph.Elapsed, cfg.Duration)
		}
	}
	if res.Measured.Txns != res.Phases[1].Txns {
		t.Fatalf("measured aggregate %d txns, phase %d", res.Measured.Txns, res.Phases[1].Txns)
	}
}

// TestReservoirQuantilesMatchSortedReference feeds a known population
// through the worker latency reservoir and compares its percentiles with
// the exact ones from the full sorted population: below capacity they are
// identical, above it within a sampling tolerance.
func TestReservoirQuantilesMatchSortedReference(t *testing.T) {
	exactPercentile := func(population []int64, p int) int64 {
		sorted := append([]int64(nil), population...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return percentile(sorted, p)
	}
	quantiles := func(w *workerShard) (p50, p99 int64) {
		sorted := append([]int64(nil), w.samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return percentile(sorted, 50), percentile(sorted, 99)
	}

	// Below capacity: the reservoir holds everything, quantiles are exact.
	small := &workerShard{r: rand.New(rand.NewSource(1))}
	var population []int64
	for i := int64(1); i <= 100; i++ {
		small.record(time.Duration(i), 4096)
		population = append(population, i)
	}
	p50, p99 := quantiles(small)
	if p50 != exactPercentile(population, 50) || p99 != exactPercentile(population, 99) {
		t.Fatalf("sub-capacity reservoir inexact: p50=%d p99=%d", p50, p99)
	}

	// Above capacity: uniform reservoir sampling keeps quantiles close to
	// the reference. Population 1..100_000 with a 2048 reservoir.
	big := &workerShard{r: rand.New(rand.NewSource(2))}
	population = population[:0]
	const n, cap = 100_000, 2048
	for i := int64(1); i <= n; i++ {
		big.record(time.Duration(i), cap)
		population = append(population, i)
	}
	if len(big.samples) != cap || big.seen != n {
		t.Fatalf("reservoir holds %d of %d seen, want %d", len(big.samples), big.seen, cap)
	}
	p50, p99 = quantiles(big)
	if ref := exactPercentile(population, 50); absInt64(p50-ref) > n/20 {
		t.Fatalf("sampled p50=%d, reference %d", p50, ref)
	}
	if ref := exactPercentile(population, 99); absInt64(p99-ref) > n/20 {
		t.Fatalf("sampled p99=%d, reference %d", p99, ref)
	}
}

func absInt64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestFastpathBlockReported checks that the engine reports the commit
// fast-path digest for Medley systems: on a read-mostly workload the
// fast-path share must dominate, and the -fastpaths=off ablation must
// report a present-but-zero block.
func TestFastpathBlockReported(t *testing.T) {
	sc, err := LookupScenario("read-mostly")
	if err != nil {
		t.Fatal(err)
	}
	res := RunScenario(NewMedleyHash(1<<10), sc, tinyEngineConfig(2))
	fp := res.Measured.Fastpath
	if fp == nil {
		t.Fatal("Medley system reported no fastpath block")
	}
	if fp.Commits == 0 || fp.FastPathCommits == 0 || fp.ReadOnlyCommits == 0 {
		t.Fatalf("fastpath block empty: %+v", fp)
	}
	if fp.FastpathShare < 0.5 {
		t.Fatalf("fastpath share %.2f on a 95/5 mix, want > 0.5", fp.FastpathShare)
	}
	if fp.ReadOnlyCommits > fp.FastPathCommits || fp.FastPathCommits > fp.Commits {
		t.Fatalf("fastpath counters inconsistent: %+v", fp)
	}

	off := RunScenario(NewMedleyKV("hash", 1, 1<<10, true, false, true), sc, tinyEngineConfig(2))
	fp = off.Measured.Fastpath
	if fp == nil || fp.Commits == 0 {
		t.Fatalf("nofast system reported no commits: %+v", fp)
	}
	if fp.FastPathCommits != 0 || fp.FastpathShare != 0 {
		t.Fatalf("nofast system took fast paths: %+v", fp)
	}
}

// TestGroupCommitBlockReported checks that the engine reports the
// group-commit digest for Medley systems on a grouped scenario: merged
// commits must dominate (each merge carries >= 2 members), the
// -groupcommit=off ablation must report a present-but-zero block, and
// the VerifyFinal chaos variant must find the grouped execution
// serializable (no state-vs-model violations).
func TestGroupCommitBlockReported(t *testing.T) {
	sc, err := LookupScenario("groupcommit")
	if err != nil {
		t.Fatal(err)
	}
	res := RunScenario(NewMedleyHash(1<<10), sc, tinyEngineConfig(2))
	fp := res.Measured.Fastpath
	if fp == nil {
		t.Fatal("Medley system reported no fastpath block")
	}
	if fp.GroupCommits == 0 || fp.GroupedTxns == 0 {
		t.Fatalf("no group commits on a grouped scenario: %+v", fp)
	}
	if fp.GroupedTxns < 2*fp.GroupCommits {
		t.Fatalf("merges carry < 2 members on average: %+v", fp)
	}
	if fp.GroupShare < 0.5 {
		t.Fatalf("group share %.2f on a GroupSize-8 scenario, want > 0.5", fp.GroupShare)
	}

	off := RunScenario(NewMedleyKV("hash", 1, 1<<10, true, true, false), sc, tinyEngineConfig(2))
	fp = off.Measured.Fastpath
	if fp == nil || fp.Commits == 0 {
		t.Fatalf("nogroup system reported no commits: %+v", fp)
	}
	if fp.GroupCommits != 0 || fp.GroupedTxns != 0 || fp.GroupShare != 0 {
		t.Fatalf("nogroup system merged commits: %+v", fp)
	}

	chaos, err := LookupScenario("chaos-group-commit")
	if err != nil {
		t.Fatal(err)
	}
	cres := RunScenario(NewMedleyHash(1<<10), chaos, tinyEngineConfig(4))
	fc := cres.FinalCheck
	if fc == nil || !fc.Checked {
		t.Fatalf("chaos-group-commit skipped the final check: %+v", fc)
	}
	if v := fc.Violations(); v != 0 {
		t.Fatalf("grouped execution diverged from the serial model: %d violations (%+v)", v, fc)
	}
	if cfp := cres.Measured.Fastpath; cfp == nil || cfp.GroupCommits == 0 {
		t.Fatalf("chaos-group-commit took no merged commits: %+v", cfp)
	}
}

// TestPhaseDistOverride checks that a phase-level Dist overrides the
// scenario's: the read-mostly scenario declares a zipfian second phase,
// and the override must reach the generators (observable as the two
// phases sharing a mix but still both making progress, and the scenario
// registry carrying the override).
func TestPhaseDistOverride(t *testing.T) {
	sc, err := LookupScenario("read-mostly")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Phases) != 2 {
		t.Fatalf("read-mostly has %d phases, want 2", len(sc.Phases))
	}
	if sc.Phases[0].Dist != nil {
		t.Fatal("uniform phase should inherit the scenario distribution")
	}
	z := sc.Phases[1].Dist
	if z == nil || z.Kind != DistZipfian {
		t.Fatalf("zipfian phase override = %+v, want DistZipfian", z)
	}
	// The override changes the generated key stream.
	mix := sc.Phases[1].Mix
	a := NewTxGen(sc.Dist, 1<<12, mix, 99)
	b := NewTxGen(*z, 1<<12, mix, 99)
	differ := false
	for i := 0; i < 100 && !differ; i++ {
		opsA, opsB := a.Next(), b.Next()
		if len(opsA) != len(opsB) {
			differ = true
			break
		}
		for j := range opsA {
			if opsA[j].Key != opsB[j].Key {
				differ = true
				break
			}
		}
	}
	if !differ {
		t.Fatal("zipfian override generated the uniform key stream")
	}
}
