package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// schemaReport builds a report exercising the full JSON surface: an
// ordinary phase record plus, when full, every optional block — a crash
// record with the recovery block, the fastpath, telemetry, kind,
// consistency and final-check blocks on the run records, a chaos
// record carrying the service fault-disposition fields, and a
// replica-chaos record carrying the replication block.
func schemaReport(full bool) *Report {
	rep := NewReport("crash-recover-uniform", []int{2}, time.Second, 1<<10, 1<<8, 42)
	res := sampleResult()
	if full {
		fp := &FastpathResult{ReadOnlyCommits: 700, FastPathCommits: 900, Commits: 1000, FastpathShare: 0.9}
		res.Phases[0].Fastpath = fp
		res.Measured.Fastpath = fp
		tel := &TelemetryResult{
			Counters: []Metric{{Name: "tx_commits", Value: 1000}},
			Gauges:   []Gauge{{Name: "abort_rate", Value: 0.01}},
		}
		res.Phases[0].Telemetry = tel
		res.Measured.Telemetry = tel
		kinds := []KindResult{{Kind: "newOrder", Txns: 450, Aborts: 3, AvgNs: 1500}}
		res.Phases[0].Kinds = kinds
		res.Measured.Kinds = kinds
		cons := &ConsistencyResult{Checked: true, Violations: 1,
			Classes: []ClassCount{{Class: "money", Count: 1}}}
		res.Phases[0].Consistency = cons
		res.Measured.Consistency = cons
		res.Phases = append(res.Phases, PhaseResult{Phase: "crash", Crash: true, Elapsed: time.Millisecond})
		res.Recovery = &RecoveryResult{Recoverable: true, RecoveryNs: int64(time.Millisecond),
			Recovered: 10, ModelEntries: 10}
		res.FinalCheck = &FinalCheckResult{Checked: true, ModelEntries: 10}
	}
	rep.Add(res)
	if full {
		rep.AddOpenLoop(OpenLoopResult{
			Driver: "inproc", System: "medley-hash", Shards: 8,
			Phases: []OpenLoopPhase{{
				TargetRate: 1000, OfferedRate: 990, Offered: 990,
				Completed: 980, Shed: 5, Errors: 1, Dropped: 4,
				Ops: 4900, Elapsed: time.Second, Goodput: 980,
				AvgNs: 1000, P50Ns: 900, P99Ns: 5000, P999Ns: 9000,
				Memory: &MemoryResult{TotalAllocs: 100, TotalBytes: 1 << 16},
			}},
		}, "service-mixed", 64)
		rep.Results = append(rep.Results, Record{
			System: "medley-hash", Scenario: "chaos-net-flaky", Phase: "chaos",
			Threads: 8, Shards: 1, Txns: 900, Ops: 4500,
			ElapsedNs: int64(time.Second), TxnPerSec: 900,
			Latency: LatencySummary{AvgNs: 1000, P50Ns: 900, P99Ns: 5000},
			Service: &ServiceRecord{
				Driver: "http", OfferedTxns: 1000, CompletedTxns: 900,
				ShedTxns: 50, ErrorTxns: 20, DroppedTxns: 5,
				ExpiredTxns: 20, InDoubtTxns: 5, RetriedTxns: 30,
				BreakerOpens: 1, Restarts: 3,
				DowntimeNs:   int64(100 * time.Millisecond),
				Availability: 0.97, TaintedKeys: 4,
				Goodput: 900, P999Ns: 9000,
			},
			Recovery: &RecoveryRecord{Recoverable: true,
				RecoveryNs: int64(time.Millisecond), RecoveredEntries: 10, ModelEntries: 10},
		})
		rep.Results = append(rep.Results, Record{
			System: "medley-hash@2", Scenario: "chaos-replica-failover", Phase: "replica-chaos",
			Threads: 8, Shards: 1, Txns: 900,
			ElapsedNs: int64(time.Second), TxnPerSec: 900,
			Service: &ServiceRecord{
				Driver: "http", OfferedTxns: 1000, CompletedTxns: 900,
				ErrorTxns: 20, ExpiredTxns: 20, InDoubtTxns: 5, RetriedTxns: 30,
				DowntimeNs:   int64(100 * time.Millisecond),
				Availability: 0.97, TaintedKeys: 4, Goodput: 900,
			},
			Replica: &ReplicaRecord{
				Failovers: 3, Partitions: 2,
				DriverFailovers: 3, DriverRecoveries: 1, StaleRejections: 7,
				LostWrites: 4, MaxReplayLag: 20, ModelEntries: 100,
				MissingKeys: 1, StaleKeys: 1, MismatchedKeys: 1, LeakedKeys: 1,
				Violations: 4,
			},
		})
	}
	return rep
}

// TestBenchSchemaPinsReportShape is the in-repo half of the CI schema
// gate: the committed schema's required paths must be exactly the shape
// of a plain report, and required+optional exactly the shape with the
// recovery block present. Changing report.go without regenerating
// testdata/bench_schema.json fails here before it fails in CI.
func TestBenchSchemaPinsReportShape(t *testing.T) {
	schema, err := LoadSchema("../../testdata/bench_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(schema.Required) == 0 || len(schema.Optional) == 0 {
		t.Fatalf("schema incomplete: %+v", schema)
	}

	pathsOf := func(rep *Report) []string {
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		paths, err := CanonicalPaths(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return paths
	}

	plain := pathsOf(schemaReport(false))
	if drift := schema.Diff(plain); drift != nil {
		t.Fatalf("plain report drifts from schema: %v", drift)
	}
	// A plain report's shape is exactly the required paths plus the
	// memory block. Memory is optional document-wide — chaos records
	// carry no memory stats, and the schema gate checks presence across
	// the whole document — but every plain run-phase record still emits
	// it, so anything else beyond required is drift.
	req := make(map[string]bool, len(schema.Required))
	for _, p := range schema.Required {
		req[p] = true
	}
	for _, p := range plain {
		if !req[p] && !strings.HasPrefix(p, ".results[].memory.") {
			t.Errorf("plain report emits %s, neither required nor a memory path", p)
		}
	}

	full := pathsOf(schemaReport(true))
	if got, want := len(full), len(schema.Required)+len(schema.Optional); got != want {
		t.Errorf("crash report emits %d paths, schema knows %d", got, want)
	}
	if drift := schema.Diff(full); drift != nil {
		t.Fatalf("crash report drifts from schema: %v", drift)
	}
}

func TestSchemaDiffDetectsDrift(t *testing.T) {
	s := Schema{Required: []string{".a", ".b"}, Optional: []string{".c"}}
	if drift := s.Diff([]string{".a", ".b", ".c"}); drift != nil {
		t.Fatalf("clean document flagged: %v", drift)
	}
	if drift := s.Diff([]string{".a", ".b", ".d"}); len(drift) != 1 {
		t.Fatalf("unknown path not flagged exactly once: %v", drift)
	}
	if drift := s.Diff([]string{".a"}); len(drift) != 1 {
		t.Fatalf("missing required path not flagged exactly once: %v", drift)
	}
}

func TestCanonicalPathsShapeInvariance(t *testing.T) {
	a, err := CanonicalPaths([]byte(`{"x": [{"y": 1}, {"y": 2}], "z": "s"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalPaths([]byte(`{"x": [{"y": 9}], "z": "t"}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("same shape, different paths: %v vs %v", a, b)
	}
}
