package harness

import "testing"

// bareSystem implements only the System interface — no optional
// capabilities at all.
type bareSystem struct{}

func (bareSystem) Name() string          { return "bare" }
func (bareSystem) Preload(keys []uint64) {}
func (bareSystem) NewWorker() Worker     { return nil }
func (bareSystem) Start() func()         { return func() {} }

// TestCapabilitiesProbe pins the one-stop capability probe: a full-featured
// registry system surfaces its optional interfaces through Caps, a bare
// system yields the all-nil Caps with safe helper defaults.
func TestCapabilitiesProbe(t *testing.T) {
	sys, err := NewSystem("medley-hash@2", SystemOpts{Buckets: 1 << 8, KeyRange: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	caps := Capabilities(sys)
	if caps.TxStats == nil {
		t.Error("medley-hash@2: TxStats capability missing")
	}
	if caps.Metrics == nil {
		t.Error("medley-hash@2: Metrics capability missing")
	}
	if caps.Snapshot == nil {
		t.Error("medley-hash@2: Snapshot capability missing")
	}
	if got := caps.ShardCount(); got != 2 {
		t.Errorf("ShardCount() = %d, want 2", got)
	}
	if caps.CanRecover() {
		t.Error("transient system reports CanRecover")
	}

	bare := Capabilities(bareSystem{})
	if bare.TxStats != nil || bare.Metrics != nil || bare.Snapshot != nil ||
		bare.Consistency != nil || bare.Recovery != nil || bare.Shards != nil {
		t.Errorf("bare system grew capabilities: %+v", bare)
	}
	if got := bare.ShardCount(); got != 1 {
		t.Errorf("bare ShardCount() = %d, want 1", got)
	}
	if bare.CanRecover() {
		t.Error("bare system reports CanRecover")
	}
}
