package harness

import (
	"strings"
	"testing"
	"time"

	"medley/internal/tpcc"
)

func tinyTPCCScale() tpcc.Scale {
	return tpcc.Scale{Warehouses: 2, Districts: 2, Customers: 10, Items: 50}
}

func tpccEngineConfig(threads int) EngineConfig {
	return EngineConfig{
		Threads: threads, Duration: 150 * time.Millisecond,
		KeyRange: 1 << 10, Preload: 1 << 6, Seed: 7,
	}
}

// TestTPCCFullScenario drives the complete five-transaction TPC-C mix
// through the engine and checks the whole reporting surface: every kind
// ran and is attributed, the consistency verifier passes after the
// measured phases and after the crash phase, and the telemetry block
// carries the engine counters.
func TestTPCCFullScenario(t *testing.T) {
	sc, err := LookupScenario("tpcc-full")
	if err != nil {
		t.Fatal(err)
	}
	if !sc.TPCC || !sc.HasCrash() {
		t.Fatalf("tpcc-full misdeclared: %+v", sc)
	}
	sys, err := NewTPCCSystem("medley-hash", tinyTPCCScale(), SystemOpts{})
	if err != nil {
		t.Fatal(err)
	}
	res := RunScenario(sys, sc, tpccEngineConfig(2))
	if res.Measured.Txns == 0 {
		t.Fatal("no transactions")
	}

	kinds := map[string]KindResult{}
	var kindTxns uint64
	for _, k := range res.Measured.Kinds {
		kinds[k.Kind] = k
		kindTxns += k.Txns
	}
	for _, name := range []string{"newOrder", "payment", "delivery", "orderStatus", "stockLevel"} {
		k, ok := kinds[name]
		if !ok || k.Txns == 0 {
			t.Errorf("kind %s not attributed: %+v", name, res.Measured.Kinds)
			continue
		}
		if k.AvgNs <= 0 {
			t.Errorf("kind %s has no latency", name)
		}
	}
	// Every committed step is attributed to exactly one kind.
	if kindTxns != res.Measured.Txns {
		t.Errorf("kinds sum to %d txns, measured %d", kindTxns, res.Measured.Txns)
	}

	if c := res.Measured.Consistency; c == nil || !c.Checked {
		t.Fatal("no consistency check on the measured aggregate")
	} else if c.Violations != 0 {
		t.Fatalf("consistency violations: %+v", c.Classes)
	}
	crashChecked := false
	for _, ph := range res.Phases {
		if !ph.Crash {
			continue
		}
		crashChecked = true
		if c := ph.Consistency; c == nil || !c.Checked {
			t.Fatal("no consistency check after the crash phase")
		} else if c.Violations != 0 {
			t.Fatalf("post-crash consistency violations: %+v", c.Classes)
		}
	}
	if !crashChecked {
		t.Fatal("tpcc-full ran no crash phase")
	}

	tel := res.Measured.Telemetry
	if tel == nil {
		t.Fatal("no telemetry block")
	}
	counters := map[string]uint64{}
	for _, c := range tel.Counters {
		counters[c.Name] = c.Value
	}
	if counters["tx_commits"] == 0 {
		t.Fatalf("telemetry reports no commits: %+v", tel.Counters)
	}
	// The read-only TPC-C transactions must be visible as fast-path gauges.
	gauges := map[string]float64{}
	for _, g := range tel.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["readonly_share"] <= 0 {
		t.Errorf("readonly_share gauge missing with orderStatus/stockLevel in the mix: %+v", tel.Gauges)
	}
}

// TestTPCCSystemSpecs pins the TPC-C spec grammar: shard suffixes resolve,
// and names outside the supported set fail validation before construction.
func TestTPCCSystemSpecs(t *testing.T) {
	sys, err := NewTPCCSystem("medley-hash@4", tinyTPCCScale(), SystemOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "Medley-hash-4shard" {
		t.Fatalf("sharded name = %q", sys.Name())
	}
	if sc, ok := sys.(ShardCounter); !ok || sc.ShardCount() != 4 {
		t.Fatalf("shard count not 4")
	}
	tsc := Scenario{TPCC: true}
	for _, bad := range []string{"medley-rotating", "medley-hash@0", "medley-hash@x", "onefile-hash", "tdsl", ""} {
		if _, err := NewTPCCSystem(bad, tinyTPCCScale(), SystemOpts{}); err == nil {
			t.Errorf("spec %q did not error", bad)
		}
		if err := ValidateScenarioSystemSpec(tsc, bad, SystemOpts{}); err == nil {
			t.Errorf("ValidateScenarioSystemSpec(tpcc, %q) did not error", bad)
		}
	}
	// Non-TPC-C scenarios keep routing through the ordinary registry.
	if err := ValidateScenarioSystemSpec(Scenario{}, "onefile-hash", SystemOpts{}); err != nil {
		t.Fatalf("registry delegation broken: %v", err)
	}
}

// TestEveryScenarioDefaultSystemsSmoke is the registry-driven smoke: every
// builtin scenario runs briefly on each of its -systems auto defaults
// (resolved the same way cmd/medley-bench does) and must make progress.
func TestEveryScenarioDefaultSystemsSmoke(t *testing.T) {
	opts := SystemOpts{Buckets: 1 << 10, KeyRange: 1 << 10}
	for _, scName := range ScenarioNames() {
		sc, err := LookupScenario(scName)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range DefaultSystems(sc) {
			if err := ValidateScenarioSystemSpec(sc, spec, opts); err != nil {
				t.Fatalf("%s: default system %q invalid: %v", scName, spec, err)
			}
			sys, err := NewScenarioSystem(sc, spec, tinyTPCCScale(), opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", scName, spec, err)
			}
			res := RunScenario(sys, sc, EngineConfig{
				Threads: 2, Duration: 30 * time.Millisecond,
				KeyRange: 1 << 10, Preload: 1 << 7, Seed: 5,
			})
			if res.Measured.Txns == 0 {
				t.Errorf("%s/%s: no progress", scName, sys.Name())
			}
			if sc.VerifyFinal {
				fc := res.FinalCheck
				if fc == nil {
					t.Errorf("%s/%s: no final check", scName, sys.Name())
				} else if fc.Checked && fc.Violations() != 0 {
					t.Errorf("%s/%s: %d final-state violations (missing=%d mismatched=%d leaked=%d)",
						scName, sys.Name(), fc.Violations(), fc.Missing, fc.Mismatched, fc.Leaked)
				}
			}
			if sc.TPCC {
				if c := res.Measured.Consistency; c == nil || !c.Checked || c.Violations != 0 {
					t.Errorf("%s/%s: consistency check missing or failed: %+v", scName, sys.Name(), c)
				}
			}
			if strings.Contains(spec, "@") && res.Shards < 2 {
				t.Errorf("%s/%s: sharded spec reports %d shards", scName, spec, res.Shards)
			}
		}
	}
}
