package harness

import (
	"strings"
	"testing"
	"time"
)

func TestNewSystemShardSuffix(t *testing.T) {
	sys, err := NewSystem("medley-hash@8", SystemOpts{Buckets: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "Medley-hash-8shard" {
		t.Fatalf("name = %q", sys.Name())
	}
	if sc, ok := sys.(ShardCounter); !ok || sc.ShardCount() != 8 {
		t.Fatalf("shard count not 8: %v", sys)
	}
	// Without a suffix the name and shard count are the historical ones.
	sys, err = NewSystem("medley-hash", SystemOpts{Buckets: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "Medley-hash" || sys.(ShardCounter).ShardCount() != 1 {
		t.Fatalf("single instance changed: %q/%d", sys.Name(), sys.(ShardCounter).ShardCount())
	}
	for _, bad := range []string{"medley-hash@", "medley-hash@0", "medley-hash@x", "nope", "nope@4"} {
		if _, err := NewSystem(bad, SystemOpts{}); err == nil {
			t.Fatalf("spec %q did not error", bad)
		}
	}
	// Competitors cannot shard; an explicit @N is refused instead of lied
	// about — and cheaply, before construction.
	for _, spec := range []string{"onefile-hash@8", "tdsl@2", "lftt@2", "plain-skip@2"} {
		if _, err := NewSystem(spec, SystemOpts{}); err == nil ||
			!strings.Contains(err.Error(), "cannot shard") {
			t.Fatalf("spec %q: want cannot-shard error, got %v", spec, err)
		}
		if err := ValidateSystemSpec(spec, SystemOpts{}); err == nil {
			t.Fatalf("ValidateSystemSpec(%q) did not error", spec)
		}
	}
	// The global Shards default, by contrast, is ignored by
	// single-instance systems so "-shards 8" composes with mixed sets.
	sys, err = NewSystem("tdsl", SystemOpts{Shards: 8})
	if err != nil || sys.Name() != "TDSL-skip" {
		t.Fatalf("global shards on competitor: %v, %v", sys, err)
	}
	// Non-power-of-two counts round up everywhere, including txMontage
	// (whose recovery routing assumes power-of-two).
	for _, spec := range []string{"medley-hash@3", "txmontage-hash@3"} {
		sys, err := NewSystem(spec, SystemOpts{Buckets: 1 << 8, KeyRange: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasSuffix(sys.Name(), "-4shard") || sys.(ShardCounter).ShardCount() != 4 {
			t.Fatalf("%s: got %q with %d shards, want rounding to 4",
				spec, sys.Name(), sys.(ShardCounter).ShardCount())
		}
		// The rounded system must actually work (workers route 0..3).
		sys.Preload([]uint64{1, 2, 3, 4, 5})
		sys.NewWorker().Do([]Op{{Kind: OpInsert, Key: 9, Val: 9}, {Kind: OpGet, Key: 1}})
	}
}

// TestRegistryNamesUnchanged pins the reported system names: benchmark
// history across PRs depends on them.
func TestRegistryNamesUnchanged(t *testing.T) {
	want := map[string]string{
		"medley-hash":         "Medley-hash",
		"medley-hash-nopool":  "Medley-hash-nopool",
		"medley-hash-nofast":  "Medley-hash-nofast",
		"medley-hash-nogroup": "Medley-hash-nogroup",
		"medley-skip":         "Medley-skip",
		"medley-bst":          "Medley-bst",
		"medley-rotating":     "Medley-rotating",
		"txmontage-hash":      "txMontage-hash",
		"txmontage-skip":      "txMontage-skip",
		"onefile-hash":        "OneFile-hash",
		"onefile-skip":        "OneFile-skip",
		"ponefile-hash":       "POneFile-hash",
		"ponefile-skip":       "POneFile-skip",
		"tdsl":                "TDSL-skip",
		"lftt":                "LFTT-skip",
		"plain-skip":          "Original-skip",
		"txoff-skip":          "TxOff-skip",
	}
	names := SystemNames()
	if len(names) != len(want) {
		t.Fatalf("registry has %d systems, want %d: %v", len(names), len(want), names)
	}
	for cli, reported := range want {
		sys, err := NewSystem(cli, SystemOpts{Buckets: 1 << 8, KeyRange: 1 << 10})
		if err != nil {
			t.Fatalf("%s: %v", cli, err)
		}
		if sys.Name() != reported {
			t.Fatalf("%s reports %q, want %q", cli, sys.Name(), reported)
		}
	}
}

// TestRangeScanEverySystem proves every registered system executes the
// range-scan mix (OpRange) and makes progress.
func TestRangeScanEverySystem(t *testing.T) {
	sc, err := LookupScenario("range-scan")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range SystemNames() {
		sys, err := NewSystem(name, SystemOpts{Buckets: 1 << 10, KeyRange: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		res := RunScenario(sys, sc, EngineConfig{
			Threads: 2, Duration: 40 * time.Millisecond,
			KeyRange: 1 << 10, Preload: 1 << 8, Seed: 3,
		})
		if res.Measured.Txns == 0 {
			t.Errorf("%s: no progress under range-scan", sys.Name())
		}
	}
}

// TestShardedSystemsRunShardedScenarios drives the sharded default set —
// including the 8-shard stores — through each sharded scenario.
func TestShardedSystemsRunShardedScenarios(t *testing.T) {
	for _, scName := range []string{"sharded-uniform", "sharded-zipfian", "sharded-transfer"} {
		sc, err := LookupScenario(scName)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range DefaultSystems(sc) {
			sys, err := NewSystem(name, SystemOpts{Buckets: 1 << 10, KeyRange: 1 << 10})
			if err != nil {
				t.Fatal(err)
			}
			res := RunScenario(sys, sc, EngineConfig{
				Threads: 2, Duration: 30 * time.Millisecond,
				KeyRange: 1 << 10, Preload: 1 << 8, Seed: 3,
			})
			if res.Measured.Txns == 0 {
				t.Errorf("%s/%s: no progress", scName, sys.Name())
			}
			wantShards := 1
			if strings.Contains(name, "@8") {
				wantShards = 8
			}
			if res.Shards != wantShards {
				t.Errorf("%s/%s: result reports %d shards, want %d", scName, name, res.Shards, wantShards)
			}
		}
	}
}

// TestShardedMontageCrashRecovery extends the durability verification to
// the partitioned txMontage configuration: payloads recovered after a
// crash must be routed back to the right shards with zero violations.
func TestShardedMontageCrashRecovery(t *testing.T) {
	requireCleanRecovery(t, NewMontage(MontageOpts{
		Buckets: 1 << 10, Shards: 4, RegionWords: 1 << 22,
		AdvanceEvery: 5 * time.Millisecond,
	}), "crash-recover-uniform")
}

// TestMedleyShardedMatchesSingleSemantics runs the same deterministic
// workload against 1-shard and 8-shard Medley systems and compares the
// surviving key sets: partitioning must not change what a workload does.
func TestMedleyShardedMatchesSingleSemantics(t *testing.T) {
	snapshot := func(sys *KVSystem) map[uint64]uint64 {
		got := map[uint64]uint64{}
		sys.Map().Range(func(k, v uint64) bool {
			got[k] = v
			return true
		})
		return got
	}
	run := func(shards int) map[uint64]uint64 {
		sys := NewMedleySharded("hash", shards, 1<<10)
		w := sys.NewWorker()
		gen := NewTxGen(Dist{Kind: DistUniform}, 1<<10, Mix{
			Ratio: Ratio{Get: 1, Insert: 2, Remove: 1}, TxMin: 1, TxMax: 8, Mixed: 1,
		}, 99)
		for i := 0; i < 5000; i++ {
			w.Do(gen.Next())
		}
		return snapshot(sys)
	}
	single, sharded := run(1), run(8)
	if len(single) == 0 {
		t.Fatal("workload left no keys")
	}
	if len(single) != len(sharded) {
		t.Fatalf("single leaves %d keys, sharded %d", len(single), len(sharded))
	}
	for k, v := range single {
		if sv, ok := sharded[k]; !ok || sv != v {
			t.Fatalf("key %d: single (%d), sharded (%d,%v)", k, v, sv, ok)
		}
	}
}
