package harness

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func sampleResult() ScenarioResult {
	mixed := PhaseResult{
		Phase: "mixed", Txns: 1000, Ops: 5000, Aborts: 10,
		Elapsed: time.Second, Throughput: 1000, AbortRate: 10.0 / 1010,
		AvgLatencyNs: 900, P50LatencyNs: 800, P99LatencyNs: 4000,
		Memory: &MemoryResult{
			TotalAllocs: 25000, TotalBytes: 800000,
			AllocsPerOp: 5, BytesPerOp: 160, GCPauseNs: 120000, NumGC: 2,
			PoolGets: 9000, PoolHits: 8500, PoolRetires: 8800, PoolHitRate: 8500.0 / 9000,
		},
	}
	measured := mixed
	measured.Phase = "measured"
	return ScenarioResult{
		Scenario: "zipfian-mixed", System: "Medley-hash", Threads: 4,
		Phases: []PhaseResult{mixed}, Measured: measured,
	}
}

// TestReportJSONSchema pins the BENCH_*.json contract: field names and
// structure that downstream tooling (and future PRs' trend tracking)
// depend on.
func TestReportJSONSchema(t *testing.T) {
	rep := NewReport("zipfian-mixed", []int{1, 4}, 2*time.Second, 1<<20, 1<<19, 42)
	rep.Add(sampleResult())
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if doc["benchmark"] != "medley-bench" || doc["scenario"] != "zipfian-mixed" {
		t.Fatalf("bad report header: %v", doc)
	}
	cfg, ok := doc["config"].(map[string]any)
	if !ok {
		t.Fatal("missing config object")
	}
	for _, k := range []string{"threads", "duration_ns", "key_range", "preload", "seed", "gomaxprocs"} {
		if _, ok := cfg[k]; !ok {
			t.Fatalf("config missing %q", k)
		}
	}
	// Single-phase scenarios still emit the measured aggregate so that
	// phase == "measured" selects the headline record for every scenario.
	results, ok := doc["results"].([]any)
	if !ok || len(results) != 2 {
		t.Fatalf("want phase record + measured aggregate, got %v", doc["results"])
	}
	if ph := results[1].(map[string]any)["phase"]; ph != "measured" {
		t.Fatalf("second record phase = %v, want measured", ph)
	}
	rec := results[0].(map[string]any)
	for _, k := range []string{
		"system", "scenario", "phase", "threads", "txns", "ops", "aborts",
		"elapsed_ns", "throughput_txn_per_sec", "abort_rate", "latency",
	} {
		if _, ok := rec[k]; !ok {
			t.Fatalf("record missing %q: %v", k, rec)
		}
	}
	lat := rec["latency"].(map[string]any)
	for _, k := range []string{"avg_ns", "p50_ns", "p99_ns"} {
		if _, ok := lat[k]; !ok {
			t.Fatalf("latency missing %q", k)
		}
	}
	if rec["throughput_txn_per_sec"].(float64) != 1000 {
		t.Fatalf("throughput mangled: %v", rec["throughput_txn_per_sec"])
	}
}

// TestReportAddMultiPhase checks that multi-phase results also emit the
// measured aggregate record.
func TestReportAddMultiPhase(t *testing.T) {
	res := sampleResult()
	res.Phases = append(res.Phases, PhaseResult{Phase: "drain", Txns: 1, Elapsed: time.Second})
	res.Measured.Phase = "measured"
	rep := NewReport("load-mixed-drain", []int{2}, time.Second, 1<<10, 1<<9, 1)
	rep.Add(res)
	if len(rep.Results) != 3 {
		t.Fatalf("want 2 phase records + aggregate, got %d", len(rep.Results))
	}
	if rep.Results[2].Phase != "measured" {
		t.Fatalf("aggregate record missing: %+v", rep.Results)
	}
}
