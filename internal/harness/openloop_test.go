package harness

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"medley/internal/kv"
)

// fakeOLDriver is an instant in-memory driver: Do succeeds immediately,
// or follows a per-request script. It isolates the open-loop engine's
// arrival process and accounting from any real system.
type fakeOLDriver struct {
	started atomic.Bool
	n       atomic.Uint64
	do      func(seq uint64) error
}

func (d *fakeOLDriver) Kind() string   { return "fake" }
func (d *fakeOLDriver) System() string { return "fake-system" }
func (d *fakeOLDriver) Start() error   { d.started.Store(true); return nil }
func (d *fakeOLDriver) Preload(keys []uint64) error {
	if !d.started.Load() {
		return errors.New("preload before start")
	}
	return nil
}
func (d *fakeOLDriver) NewSession() (DriverSession, error) { return &fakeOLSession{d: d}, nil }
func (d *fakeOLDriver) Close() error                       { return nil }

type fakeOLSession struct{ d *fakeOLDriver }

func (s *fakeOLSession) Do(ops []kv.Op, res []kv.Result) error {
	seq := s.d.n.Add(1)
	if s.d.do != nil {
		return s.d.do(seq)
	}
	return nil
}
func (s *fakeOLSession) Close() error { return nil }

// TestOpenLoopArrivalRateAccuracy pins the Poisson arrival process to its
// configured rate: with an instant backend, the offered rate must land
// within 10% of the target (the dispatcher catches up after sleep
// overshoot instead of re-deriving its schedule, so systematic drift
// means the open loop is not open).
func TestOpenLoopArrivalRateAccuracy(t *testing.T) {
	const rate = 4000.0
	d := &fakeOLDriver{}
	res, err := RunOpenLoop(d, OpenLoopConfig{
		Rates:       []float64{rate},
		Duration:    500 * time.Millisecond,
		MaxInFlight: 8,
		KeyRange:    1 << 10,
		Preload:     64,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(res.Phases))
	}
	ph := res.Phases[0]
	if ratio := ph.OfferedRate / rate; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("offered rate %.0f is off target %.0f by more than 10%%", ph.OfferedRate, rate)
	}
	if ph.Completed+ph.Dropped != ph.Offered {
		t.Errorf("disposition leak: offered=%d completed=%d dropped=%d",
			ph.Offered, ph.Completed, ph.Dropped)
	}
	if ph.Shed != 0 || ph.Errors != 0 {
		t.Errorf("instant backend shed=%d errors=%d, want 0/0", ph.Shed, ph.Errors)
	}
	if ph.Completed > 0 && (ph.P50Ns <= 0 || ph.P99Ns < ph.P50Ns || ph.P999Ns < ph.P99Ns) {
		t.Errorf("percentiles not ordered: p50=%.0f p99=%.0f p99.9=%.0f",
			ph.P50Ns, ph.P99Ns, ph.P999Ns)
	}
	if res.Driver != "fake" || res.System != "fake-system" {
		t.Errorf("identity = %s/%s", res.Driver, res.System)
	}
}

// TestOpenLoopClassifiesShedSeparately pins the disposition taxonomy:
// ErrOverload counts as shed (admission control working), any other
// error as a failure.
func TestOpenLoopClassifiesShedSeparately(t *testing.T) {
	boom := errors.New("boom")
	d := &fakeOLDriver{do: func(seq uint64) error {
		switch seq % 3 {
		case 0:
			return ErrOverload
		case 1:
			return boom
		}
		return nil
	}}
	res, err := RunOpenLoop(d, OpenLoopConfig{
		Rates: []float64{2000}, Duration: 200 * time.Millisecond,
		MaxInFlight: 4, KeyRange: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases[0]
	if ph.Shed == 0 || ph.Errors == 0 || ph.Completed == 0 {
		t.Errorf("expected all three dispositions, got completed=%d shed=%d errors=%d",
			ph.Completed, ph.Shed, ph.Errors)
	}
	if ph.Completed+ph.Shed+ph.Errors+ph.Dropped != ph.Offered {
		t.Errorf("disposition leak: offered=%d completed=%d shed=%d errors=%d dropped=%d",
			ph.Offered, ph.Completed, ph.Shed, ph.Errors, ph.Dropped)
	}
}

// TestOpenLoopFailsWhenNothingCompletes pins the error contract: a sweep
// where every request fails must return the underlying error instead of
// an all-zero phase.
func TestOpenLoopFailsWhenNothingCompletes(t *testing.T) {
	boom := errors.New("backend down")
	d := &fakeOLDriver{do: func(uint64) error { return boom }}
	_, err := RunOpenLoop(d, OpenLoopConfig{
		Rates: []float64{1000}, Duration: 100 * time.Millisecond,
		MaxInFlight: 2, KeyRange: 64, Seed: 3,
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
}

func TestPermilleNearestRank(t *testing.T) {
	s := make([]int64, 1000)
	for i := range s {
		s[i] = int64(i + 1)
	}
	for _, tc := range []struct {
		p    int
		want int64
	}{
		{500, 500}, {990, 990}, {999, 999}, {1000, 1000},
	} {
		if got := permille(s, tc.p); got != tc.want {
			t.Errorf("permille(1..1000, %d) = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := permille([]int64{7}, 999); got != 7 {
		t.Errorf("singleton permille = %d, want 7", got)
	}
	if got := permille(nil, 500); got != 0 {
		t.Errorf("empty permille = %d, want 0", got)
	}
}
