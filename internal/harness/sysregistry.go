package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file is the named-constructor registry for benchmark systems: the
// -systems flag of cmd/medley-bench resolves here, and every system under
// test is registered exactly once. A spec may carry a shard suffix,
// "medley-hash@8", overriding SystemOpts.Shards for that system — which
// is how one report compares a single instance against its 8-shard
// ShardedStore configuration side by side.

// SystemOpts carries the shared sizing knobs every constructor may read.
// Zero values mean "benchmark default".
type SystemOpts struct {
	Buckets int // hash structures (default 1<<20)
	Shards  int // store partitions for shardable systems (default 1)
	// NoPooling disables the core's cell/node recycling arenas for Medley
	// systems (the -pooling=off baseline); the zero value keeps pooling on.
	NoPooling bool
	// NoFastPaths disables the core's commit fast paths for Medley systems
	// (the -fastpaths=off ablation baseline); the zero value keeps them on.
	NoFastPaths bool
	// NoGroupCommit disables the core's merged group commits for Medley
	// systems (the -groupcommit=off ablation baseline); the zero value
	// keeps them on.
	NoGroupCommit bool
	// KeyRange sizes the simulated NVM regions: region size never changes
	// measured latencies, only footprint, so smoke runs with small key
	// spaces stop allocating paper-scale half-gigabyte regions.
	KeyRange uint64

	WriteBackLatency time.Duration // injected NVM write-back, per line
	FenceLatency     time.Duration // injected NVM fence
	StoreLatency     time.Duration // injected NVM store, per payload word
	AdvanceEvery     time.Duration // txMontage epoch length
}

func (o SystemOpts) buckets() int {
	if o.Buckets <= 0 {
		return 1 << 20
	}
	return o.Buckets
}

func (o SystemOpts) shards() int {
	if o.Shards <= 0 {
		return 1
	}
	return o.Shards
}

// montageRegionWords sizes the simulated NVM with the key space.
func (o SystemOpts) montageRegionWords() int {
	words := 1 << 22
	if need := int(o.KeyRange) << 6; need > words {
		words = need
	}
	return words
}

// ponefileRegionWords sizes POneFile's region: home words for the object
// graph plus the per-key durable directory, with room for the post-crash
// rebuild to allocate a second generation of words.
func (o SystemOpts) ponefileRegionWords() int {
	words := 1 << 20
	if need := int(o.KeyRange) << 5; need > words {
		words = need
	}
	return words
}

func (o SystemOpts) montageOpts(skiplist bool) MontageOpts {
	return MontageOpts{
		Skiplist: skiplist, Buckets: o.buckets(), Shards: o.shards(),
		RegionWords:      o.montageRegionWords(),
		WriteBackLatency: o.WriteBackLatency, FenceLatency: o.FenceLatency,
		StoreLatency: o.StoreLatency, AdvanceEvery: o.AdvanceEvery,
	}
}

// SystemCtor builds one benchmark system from the shared options.
type SystemCtor func(SystemOpts) (System, error)

type sysEntry struct {
	ctor SystemCtor
	// shardable systems honor SystemOpts.Shards; the rest are built
	// single-instance (their transactions live in their own STMs, so
	// shards could not join one transaction — the gap documented in
	// internal/kv).
	shardable bool
}

var systemRegistry = map[string]sysEntry{}

// RegisterSystem adds a named system constructor; duplicate names panic
// (names are CLI API).
func RegisterSystem(name string, shardable bool, c SystemCtor) {
	if _, dup := systemRegistry[name]; dup {
		panic("harness: duplicate system registration of " + name)
	}
	systemRegistry[name] = sysEntry{ctor: c, shardable: shardable}
}

func init() {
	// Medley-family: any registry structure, shardable.
	for _, c := range []struct{ cli, structure string }{
		{"medley-hash", "hash"},
		{"medley-skip", "skip"},
		{"medley-bst", "bst"},
		{"medley-rotating", "rotating"},
	} {
		c := c
		RegisterSystem(c.cli, true, func(o SystemOpts) (System, error) {
			return NewMedleyKV(c.structure, o.shards(), o.buckets(), !o.NoPooling, !o.NoFastPaths, !o.NoGroupCommit), nil
		})
	}
	// Unpooled baseline for the alloc-pressure comparison: identical to
	// medley-hash but with recycling arenas off regardless of -pooling.
	RegisterSystem("medley-hash-nopool", true, func(o SystemOpts) (System, error) {
		return NewMedleyKV("hash", o.shards(), o.buckets(), false, !o.NoFastPaths, !o.NoGroupCommit), nil
	})
	// Full-handshake baseline for the commit fast-path comparison:
	// identical to medley-hash but with the fast paths off regardless of
	// -fastpaths, so one report carries the ablation side by side.
	RegisterSystem("medley-hash-nofast", true, func(o SystemOpts) (System, error) {
		return NewMedleyKV("hash", o.shards(), o.buckets(), !o.NoPooling, false, !o.NoGroupCommit), nil
	})
	// Ungrouped baseline for the group-commit comparison: identical to
	// medley-hash but with merged group commits off regardless of
	// -groupcommit, so one report carries the ablation side by side.
	RegisterSystem("medley-hash-nogroup", true, func(o SystemOpts) (System, error) {
		return NewMedleyKV("hash", o.shards(), o.buckets(), !o.NoPooling, !o.NoFastPaths, false), nil
	})
	// txMontage: shardable (N PStores over one System + one TxManager).
	RegisterSystem("txmontage-hash", true, func(o SystemOpts) (System, error) {
		return NewMontage(o.montageOpts(false)), nil
	})
	RegisterSystem("txmontage-skip", true, func(o SystemOpts) (System, error) {
		return NewMontage(o.montageOpts(true)), nil
	})
	// Competitors and baselines: single-instance only.
	RegisterSystem("onefile-hash", false, func(o SystemOpts) (System, error) {
		return NewOneFile(OneFileOpts{Buckets: o.buckets()}), nil
	})
	RegisterSystem("onefile-skip", false, func(SystemOpts) (System, error) {
		return NewOneFile(OneFileOpts{Skiplist: true}), nil
	})
	RegisterSystem("ponefile-hash", false, func(o SystemOpts) (System, error) {
		return NewOneFile(OneFileOpts{
			Buckets: o.buckets(), Persistent: true, RegionWords: o.ponefileRegionWords(),
			WriteBackLatency: o.WriteBackLatency, FenceLatency: o.FenceLatency,
		}), nil
	})
	RegisterSystem("ponefile-skip", false, func(o SystemOpts) (System, error) {
		return NewOneFile(OneFileOpts{
			Skiplist: true, Persistent: true, RegionWords: o.ponefileRegionWords(),
			WriteBackLatency: o.WriteBackLatency, FenceLatency: o.FenceLatency,
		}), nil
	})
	RegisterSystem("tdsl", false, func(SystemOpts) (System, error) { return NewTDSL(), nil })
	RegisterSystem("lftt", false, func(SystemOpts) (System, error) { return NewLFTT(), nil })
	RegisterSystem("plain-skip", false, func(SystemOpts) (System, error) {
		return NewOriginalSkip(), nil
	})
	RegisterSystem("txoff-skip", false, func(SystemOpts) (System, error) {
		return NewTxOffSkip(), nil
	})
}

// resolveSpec parses a -systems spec — a registered name, optionally
// with an "@N" shard-count suffix — and applies the shardability rules:
// an explicit "@N" on a single-instance system is an error (a "sharded"
// competitor would silently lose cross-key atomicity), while the global
// Shards default is simply ignored by single-instance systems so that
// "-shards 8" composes with mixed system sets.
func resolveSpec(spec string, o SystemOpts) (sysEntry, SystemOpts, error) {
	name := spec
	explicit := 0
	if at := strings.LastIndexByte(spec, '@'); at >= 0 {
		n, err := strconv.Atoi(spec[at+1:])
		if err != nil || n < 1 {
			return sysEntry{}, o, fmt.Errorf("bad shard suffix in system spec %q", spec)
		}
		name = spec[:at]
		explicit = n
	}
	e, ok := systemRegistry[name]
	if !ok {
		return sysEntry{}, o, fmt.Errorf("unknown system %q (known: %s)", name, strings.Join(SystemNames(), ", "))
	}
	switch {
	case explicit > 1 && !e.shardable:
		return sysEntry{}, o, fmt.Errorf(
			"system %q cannot shard: its transactions live in its own STM, not the shared TxManager (see internal/kv)", name)
	case explicit > 0:
		o.Shards = explicit
	case !e.shardable:
		o.Shards = 1
	}
	return e, o, nil
}

// ValidateSystemSpec checks a -systems spec without constructing the
// system (construction allocates paper-scale tables and regions).
func ValidateSystemSpec(spec string, o SystemOpts) error {
	_, _, err := resolveSpec(spec, o)
	return err
}

// NewSystem resolves a -systems spec into a system.
func NewSystem(spec string, o SystemOpts) (System, error) {
	e, o, err := resolveSpec(spec, o)
	if err != nil {
		return nil, err
	}
	return e.ctor(o)
}

// SystemNames lists registered systems in stable order.
func SystemNames() []string {
	names := make([]string, 0, len(systemRegistry))
	for n := range systemRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultSystems is the -systems 'auto' set for a scenario: persistent
// systems for crash scenarios, the single-vs-sharded comparison for
// sharded scenarios, and the full transient set (every registry
// structure plus the competitors) otherwise.
func DefaultSystems(sc Scenario) []string {
	switch {
	case sc.TPCC:
		// TPC-C scenarios run only on the Medley registry backends; the
		// sharded variant exercises cross-shard deliveries and payments.
		return []string{"medley-hash", "medley-hash@4"}
	case sc.ServiceChaos:
		// Crash-restart over the wire needs a durable, snapshot-capable
		// backend; POneFile persists eagerly at every commit, so an acked
		// batch is durable by construction — the strongest gate.
		return []string{"ponefile-hash"}
	case sc.ReplicaChaos:
		// Replication chaos needs a snapshot-capable backend (follower
		// bootstrap and the divergence diff); durability is the replica's
		// job here, not the store's, so the transient flagship serves.
		return []string{"medley-hash@2"}
	case sc.HasCrash():
		return []string{"txmontage-hash", "ponefile-hash", "medley-hash"}
	case sc.Name == "chaos-hot-key":
		return []string{"medley-hash", "medley-skip"}
	case sc.Name == "chaos-oversubscribe":
		return []string{"medley-hash"}
	case sc.Name == "chaos-shard-skew":
		return []string{"medley-hash", "medley-hash@8"}
	case sc.Name == "chaos-scan-race":
		return []string{"medley-hash", "medley-skip"}
	case sc.Name == "alloc-pressure":
		return []string{"medley-hash", "medley-hash-nopool"}
	case sc.Name == "service-mixed":
		// The service path runs on the sharded flagship configuration; the
		// open-loop sweep compares drivers, not store variants.
		return []string{"medley-hash@8"}
	case sc.Name == "read-mostly" || sc.Name == "scan-heavy":
		return []string{"medley-hash", "medley-hash-nofast"}
	case sc.Name == "groupcommit":
		return []string{"medley-hash", "medley-hash-nogroup", "onefile-hash", "tdsl"}
	case sc.Name == "chaos-group-commit":
		return []string{"medley-hash", "medley-hash-nogroup"}
	case strings.HasPrefix(sc.Name, "sharded-"):
		return []string{"medley-hash", "medley-hash@8", "medley-skip@8", "onefile-hash"}
	default:
		return []string{
			"medley-hash", "medley-skip", "medley-bst", "medley-rotating",
			"onefile-hash", "tdsl", "lftt",
		}
	}
}
