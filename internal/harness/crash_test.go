package harness

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func crashEngineConfig(threads int) EngineConfig {
	return EngineConfig{
		Threads: threads, Duration: 120 * time.Millisecond,
		KeyRange: 1 << 10, Preload: 1 << 8, Seed: 11,
	}
}

func crashScenario(t *testing.T, name string) Scenario {
	t.Helper()
	sc, err := LookupScenario(name)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// requireCleanRecovery runs sys through a crash scenario and asserts the
// recovered state matched the committed-operation model exactly.
func requireCleanRecovery(t *testing.T, sys System, scenario string) {
	t.Helper()
	res := RunScenario(sys, crashScenario(t, scenario), crashEngineConfig(2))
	r := res.Recovery
	if r == nil {
		t.Fatalf("%s: crash scenario produced no recovery result", sys.Name())
	}
	if !r.Recoverable {
		t.Fatalf("%s: expected recoverable system", sys.Name())
	}
	if v := r.Violations(); v != 0 {
		t.Fatalf("%s: %d durability violations (missing=%d mismatched=%d leaked=%d)",
			sys.Name(), v, r.Missing, r.Mismatched, r.Leaked)
	}
	if r.RecoveryNs <= 0 {
		t.Fatalf("%s: no recovery latency measured", sys.Name())
	}
	if r.Recovered != r.ModelEntries {
		t.Fatalf("%s: recovered %d entries, model has %d", sys.Name(), r.Recovered, r.ModelEntries)
	}
	// The system must be healthy after recovery, not just correct.
	post := res.Phases[len(res.Phases)-1]
	if post.Phase != "post-mixed" || post.Txns == 0 {
		t.Fatalf("%s: no post-crash progress: %+v", sys.Name(), post)
	}
}

func TestMontageCrashRecoverNoViolations(t *testing.T) {
	for _, scenario := range []string{
		"crash-recover-uniform", "crash-recover-zipfian", "crash-recover-writeheavy",
	} {
		requireCleanRecovery(t, NewMontage(MontageOpts{
			Buckets: 1 << 10, RegionWords: 1 << 22, AdvanceEvery: 5 * time.Millisecond,
		}), scenario)
	}
}

func TestMontageSkipCrashRecoverNoViolations(t *testing.T) {
	requireCleanRecovery(t, NewMontage(MontageOpts{
		Skiplist: true, RegionWords: 1 << 22, AdvanceEvery: 5 * time.Millisecond,
	}), "crash-recover-zipfian")
}

func TestOneFileCrashRecoverNoViolations(t *testing.T) {
	for _, scenario := range []string{"crash-recover-uniform", "crash-recover-zipfian"} {
		requireCleanRecovery(t, NewOneFile(OneFileOpts{
			Buckets: 1 << 10, Persistent: true, RegionWords: 1 << 20,
		}), scenario)
	}
}

func TestOneFileSkipCrashRecoverNoViolations(t *testing.T) {
	requireCleanRecovery(t, NewOneFile(OneFileOpts{
		Skiplist: true, Persistent: true, RegionWords: 1 << 20,
	}), "crash-recover-uniform")
}

// TestNonPersistentReportsNotRecoverable covers both not-recoverable
// shapes: a system without the capability interface (TDSL) and one that
// implements it but runs with persistence off (txMontage persistOff).
func TestNonPersistentReportsNotRecoverable(t *testing.T) {
	for _, sys := range []System{
		NewTDSL(),
		NewMontage(MontageOpts{Buckets: 1 << 10, RegionWords: 1 << 22, PersistOff: true}),
	} {
		res := RunScenario(sys, crashScenario(t, "crash-recover-uniform"), crashEngineConfig(2))
		r := res.Recovery
		if r == nil {
			t.Fatalf("%s: crash scenario produced no recovery result", sys.Name())
		}
		if r.Recoverable || r.Violations() != 0 || r.RecoveryNs != 0 {
			t.Fatalf("%s: want clean recoverable=false result, got %+v", sys.Name(), r)
		}
		// The system keeps running: the scenario completes all phases.
		if len(res.Phases) != 4 || res.Phases[3].Txns == 0 {
			t.Fatalf("%s: scenario did not complete around the skipped crash: %+v", sys.Name(), res.Phases)
		}
	}
}

// ------------------------------------------------------- fault injection

// faultyMapSystem is a locked-map System + Recoverable test double whose
// recovery can be sabotaged: dropping a committed write, corrupting a
// value, or leaking a key that was never committed. It proves the
// verifier detects each class of durability violation rather than
// vacuously reporting zero.
type faultyMapSystem struct {
	mu   sync.Mutex
	m    map[uint64]uint64
	seed int64

	dropCommitted   bool // recovery loses one committed write
	corruptValue    bool // recovery mangles one committed value
	leakUncommitted bool // recovery resurrects a never-committed key
}

func newFaultyMapSystem(seed int64) *faultyMapSystem {
	return &faultyMapSystem{m: make(map[uint64]uint64), seed: seed}
}

func (s *faultyMapSystem) Name() string { return "faulty-map" }
func (s *faultyMapSystem) Preload(keys []uint64) {
	for _, k := range keys {
		s.m[k] = k
	}
}
func (s *faultyMapSystem) Start() (stop func()) { return func() {} }

type faultyWorker struct{ s *faultyMapSystem }

func (s *faultyMapSystem) NewWorker() Worker { return &faultyWorker{s} }

func (w *faultyWorker) Do(ops []Op) {
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			w.s.m[op.Key] = op.Val
		case OpRemove:
			delete(w.s.m, op.Key)
		}
	}
}

func (s *faultyMapSystem) CanRecover() bool { return true }
func (s *faultyMapSystem) Persist()         {}

func (s *faultyMapSystem) CrashAndRecover() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	rng := rand.New(rand.NewSource(s.seed))
	if s.dropCommitted || s.corruptValue {
		keys := make([]uint64, 0, len(s.m))
		for k := range s.m {
			keys = append(keys, k)
		}
		if len(keys) > 0 {
			victim := keys[rng.Intn(len(keys))]
			if s.dropCommitted {
				delete(s.m, victim)
			} else {
				s.m[victim] ^= 0xDEAD
			}
		}
	}
	if s.leakUncommitted {
		// Keys >= KeyRange are never generated, so this key was never
		// committed by any worker or preload.
		s.m[1<<40|rng.Uint64()>>24] = 99
	}
	return len(s.m)
}

func (s *faultyMapSystem) Snapshot(fn func(key, val uint64) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.m {
		if !fn(k, v) {
			return
		}
	}
}

// TestVerifierDetectsInjectedFaults seeds one fault of each class and
// checks the matching violation counter fires — the acceptance proof that
// a deliberately dropped committed write cannot slip past the verifier.
func TestVerifierDetectsInjectedFaults(t *testing.T) {
	cases := []struct {
		name  string
		mk    func() *faultyMapSystem
		check func(t *testing.T, r *RecoveryResult)
	}{
		{"dropped committed write", func() *faultyMapSystem {
			s := newFaultyMapSystem(42)
			s.dropCommitted = true
			return s
		}, func(t *testing.T, r *RecoveryResult) {
			if r.Missing == 0 {
				t.Fatalf("dropped committed write not detected: %+v", r)
			}
		}},
		{"corrupted committed value", func() *faultyMapSystem {
			s := newFaultyMapSystem(43)
			s.corruptValue = true
			return s
		}, func(t *testing.T, r *RecoveryResult) {
			if r.Mismatched == 0 {
				t.Fatalf("corrupted committed value not detected: %+v", r)
			}
		}},
		{"leaked uncommitted write", func() *faultyMapSystem {
			s := newFaultyMapSystem(44)
			s.leakUncommitted = true
			return s
		}, func(t *testing.T, r *RecoveryResult) {
			if r.Leaked == 0 {
				t.Fatalf("leaked uncommitted write not detected: %+v", r)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := RunScenario(c.mk(), crashScenario(t, "crash-recover-uniform"), crashEngineConfig(2))
			if res.Recovery == nil || !res.Recovery.Recoverable {
				t.Fatalf("no recovery result: %+v", res.Recovery)
			}
			if res.Recovery.Violations() == 0 {
				t.Fatalf("verifier reported zero violations despite injected fault")
			}
			c.check(t, res.Recovery)
		})
	}
}

// TestVerifierCleanOnHonestSystem is the control for the fault-injection
// tests: the same double with no fault injected verifies clean.
func TestVerifierCleanOnHonestSystem(t *testing.T) {
	res := RunScenario(newFaultyMapSystem(45), crashScenario(t, "crash-recover-uniform"), crashEngineConfig(4))
	r := res.Recovery
	if r == nil || !r.Recoverable {
		t.Fatalf("no recovery result: %+v", r)
	}
	if v := r.Violations(); v != 0 {
		t.Fatalf("honest system reported %d violations: %+v", v, r)
	}
	if r.ModelEntries == 0 || r.Recovered != r.ModelEntries {
		t.Fatalf("model/recovered mismatch: %+v", r)
	}
}

// ------------------------------------------------------------ partitioning

func TestPartitionKeyOwnership(t *testing.T) {
	const keyRange = 1 << 10
	for _, threads := range []int{1, 2, 3, 4, 7, 8} {
		for tid := 0; tid < threads; tid++ {
			for k := uint64(0); k < keyRange; k += 13 {
				p := partitionKey(k, tid, threads, keyRange)
				if p >= keyRange {
					t.Fatalf("threads=%d tid=%d k=%d: partitioned key %d out of range", threads, tid, k, p)
				}
				if p%uint64(threads) != uint64(tid) {
					t.Fatalf("threads=%d tid=%d k=%d: key %d not in owner class", threads, tid, k, p)
				}
			}
		}
	}
	// Degenerate range equal to thread count still stays in bounds.
	if p := partitionKey(3, 3, 4, 4); p != 3 {
		t.Fatalf("tight range: got %d", p)
	}
}

// --------------------------------------------------------------- drain

// TestDrainPhaseShrinksState drives a remove-heavy drain mix against a
// live map and checks it actually empties state, covering the drain phase
// of load-mixed-drain functionally rather than just structurally.
func TestDrainPhaseShrinksState(t *testing.T) {
	sys := newFaultyMapSystem(7) // honest double: a plain locked map
	sc := Scenario{
		Name: "drain-only",
		Dist: Dist{Kind: DistUniform},
		Phases: []Phase{{
			Name: "drain", Weight: 1, Measure: true,
			Mix: Mix{Ratio: Ratio{Get: 1, Insert: 0, Remove: 4}, TxMin: 1, TxMax: 10, Mixed: 1},
		}},
	}
	cfg := crashEngineConfig(2)
	res := RunScenario(sys, sc, cfg)
	if res.Measured.Txns == 0 {
		t.Fatal("drain phase made no progress")
	}
	sys.mu.Lock()
	left := len(sys.m)
	sys.mu.Unlock()
	if left >= cfg.Preload/2 {
		t.Fatalf("drain left %d of %d preloaded entries", left, cfg.Preload)
	}
}
