package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// This file defines the schema-drift check for BENCH_*.json reports. The
// committed schema (testdata/bench_schema.json at the repository root)
// lists every JSON key path a report may contain; CI regenerates reports
// and fails when the emitted paths drift from the schema, so the report
// contract of report.go cannot change silently under downstream tooling.

// Schema is the committed bench report schema: required paths must appear
// in every report, optional paths may (e.g. the recovery block, present
// only on crash-phase records).
type Schema struct {
	Required []string `json:"required"`
	Optional []string `json:"optional"`
}

// LoadSchema reads a Schema from path.
func LoadSchema(path string) (Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Schema{}, err
	}
	var s Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return Schema{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// CanonicalPaths returns the sorted set of leaf key paths in a JSON
// document: objects contribute ".key" segments, arrays a "[]" segment, and
// only scalar leaves are recorded. Two reports with the same shape yield
// the same path set regardless of record count or values.
func CanonicalPaths(data []byte) ([]string, error) {
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	set := make(map[string]struct{})
	walkPaths("", doc, set)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

func walkPaths(prefix string, v any, set map[string]struct{}) {
	switch t := v.(type) {
	case map[string]any:
		for k, c := range t {
			walkPaths(prefix+"."+k, c, set)
		}
	case []any:
		for _, c := range t {
			walkPaths(prefix+"[]", c, set)
		}
	default:
		set[prefix] = struct{}{}
	}
}

// Diff compares a document's canonical paths against the schema and
// returns drift messages: paths the schema does not know, and required
// paths the document lacks. An empty result means no drift.
func (s Schema) Diff(paths []string) []string {
	allowed := make(map[string]struct{}, len(s.Required)+len(s.Optional))
	for _, p := range s.Required {
		allowed[p] = struct{}{}
	}
	for _, p := range s.Optional {
		allowed[p] = struct{}{}
	}
	seen := make(map[string]struct{}, len(paths))
	var drift []string
	for _, p := range paths {
		seen[p] = struct{}{}
		if _, ok := allowed[p]; !ok {
			drift = append(drift, "unknown path "+p)
		}
	}
	for _, p := range s.Required {
		if _, ok := seen[p]; !ok {
			drift = append(drift, "missing required path "+p)
		}
	}
	return drift
}
