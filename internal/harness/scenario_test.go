package harness

import (
	"testing"
)

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 8 {
		t.Fatalf("only %d scenarios registered", len(names))
	}
	for _, required := range []string{
		"uniform-mixed", "zipfian-mixed", "hotspot-readmostly",
		"transfer", "tpcc-mini", "load-mixed-drain",
	} {
		sc, err := LookupScenario(required)
		if err != nil {
			t.Fatalf("required scenario missing: %v", err)
		}
		if sc.Name != required || sc.Description == "" || len(sc.Phases) == 0 {
			t.Fatalf("scenario %q incomplete: %+v", required, sc)
		}
	}
	if _, err := LookupScenario("no-such-scenario"); err == nil {
		t.Fatal("lookup of unknown scenario succeeded")
	}
}

func TestTxGenDeterministic(t *testing.T) {
	mix := Mix{Ratio: Ratio{Get: 2, Insert: 1, Remove: 1}, TxMin: 1, TxMax: 10,
		Mixed: 2, Transfer: 1, Order: 1}
	a := NewTxGen(Dist{Kind: DistZipfian}, 1<<12, mix, 99)
	b := NewTxGen(Dist{Kind: DistZipfian}, 1<<12, mix, 99)
	for i := 0; i < 1000; i++ {
		opsA, opsB := a.Next(), b.Next()
		if len(opsA) != len(opsB) {
			t.Fatalf("txn %d: lengths differ", i)
		}
		for j := range opsA {
			if opsA[j] != opsB[j] {
				t.Fatalf("txn %d op %d: %+v vs %+v", i, j, opsA[j], opsB[j])
			}
		}
	}
}

func TestTxGenMixedBounds(t *testing.T) {
	mix := Mix{Ratio: Ratio{Get: 2, Insert: 1, Remove: 1}, TxMin: 3, TxMax: 7, Mixed: 1}
	g := NewTxGen(Dist{Kind: DistUniform}, 1<<12, mix, 5)
	for i := 0; i < 1000; i++ {
		ops := g.Next()
		if len(ops) < 3 || len(ops) > 7 {
			t.Fatalf("txn %d has %d ops, want 3..7", i, len(ops))
		}
	}
}

func TestTxGenTransferShape(t *testing.T) {
	g := NewTxGen(Dist{Kind: DistUniform}, 1<<12, Mix{Transfer: 1}, 5)
	for i := 0; i < 1000; i++ {
		ops := g.Next()
		if len(ops) != 4 {
			t.Fatalf("transfer txn %d has %d ops", i, len(ops))
		}
		if ops[0].Kind != OpGet || ops[1].Kind != OpGet ||
			ops[2].Kind != OpInsert || ops[3].Kind != OpInsert {
			t.Fatalf("transfer txn %d shape wrong: %+v", i, ops)
		}
		if ops[0].Key != ops[2].Key || ops[1].Key != ops[3].Key {
			t.Fatalf("transfer txn %d reads and writes different keys: %+v", i, ops)
		}
		if ops[0].Key == ops[1].Key {
			t.Fatalf("transfer txn %d transfers to itself", i)
		}
		for _, op := range ops {
			if op.Key >= 1<<12 {
				t.Fatalf("transfer txn %d key %d escapes the key space", i, op.Key)
			}
		}
	}
}

func TestTxGenOrderShape(t *testing.T) {
	g := NewTxGen(Dist{Kind: DistZipfian}, 1<<12, Mix{Order: 1}, 5)
	for i := 0; i < 1000; i++ {
		ops := g.Next()
		if len(ops) != 8 {
			t.Fatalf("order txn %d has %d ops, want 8", i, len(ops))
		}
		if ops[0].Kind != OpGet {
			t.Fatalf("order txn %d missing customer read", i)
		}
		for j := 1; j < 7; j += 2 {
			if ops[j].Kind != OpGet || ops[j+1].Kind != OpInsert || ops[j].Key != ops[j+1].Key {
				t.Fatalf("order txn %d item %d not a read-update pair: %+v", i, j, ops)
			}
		}
		last := ops[7]
		if last.Kind != OpInsert || last.Key&orderLineBit == 0 {
			t.Fatalf("order txn %d order line not in the disjoint region: %+v", i, last)
		}
	}
}

func TestScenarioPhaseWeightsAndMeasure(t *testing.T) {
	sc, err := LookupScenario("load-mixed-drain")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Phases) != 3 {
		t.Fatalf("load-mixed-drain has %d phases", len(sc.Phases))
	}
	measured := 0
	for _, ph := range sc.Phases {
		if ph.Weight <= 0 {
			t.Fatalf("phase %q has no weight", ph.Name)
		}
		if ph.Measure {
			measured++
		}
	}
	if measured != 1 {
		t.Fatalf("want exactly the steady-state phase measured, got %d", measured)
	}
}
