package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// This file defines the machine-readable benchmark report emitted by
// cmd/medley-bench -json. The schema is the contract that makes the
// repository's performance trajectory trackable across PRs: drivers write
// one Report per run (conventionally to BENCH_<scenario>.json), and each
// record carries throughput, abort rate and latency percentiles.

// LatencySummary is the latency digest of one record, in nanoseconds.
type LatencySummary struct {
	AvgNs float64 `json:"avg_ns"`
	P50Ns float64 `json:"p50_ns"`
	P99Ns float64 `json:"p99_ns"`
}

// MemoryRecord is the memory-pressure digest of one record: allocation and
// GC-pause deltas over the phase (sampled via runtime/metrics and
// runtime.ReadMemStats at the phase barriers) plus recycling-arena
// counters. Present on every run-phase record; absent on crash phases.
type MemoryRecord struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	TotalAllocs uint64  `json:"total_allocs"`
	TotalBytes  uint64  `json:"total_bytes"`
	GCPauseNs   int64   `json:"gc_pause_total_ns"`
	NumGC       uint32  `json:"num_gc"`
	PoolGets    uint64  `json:"pool_gets"`
	PoolHits    uint64  `json:"pool_hits"`
	PoolRetires uint64  `json:"pool_retires"`
	PoolHitRate float64 `json:"pool_hit_rate"`
}

// FastpathRecord is the commit-protocol digest of one record: how many
// commits skipped the descriptor handshake (read-only elision and the
// single-write fold), how many merged a group of logical transactions
// into one physical commit, and the derived shares. group_share is
// grouped_txns over logical commits (commits − group_commits +
// grouped_txns). Present on run-phase records of systems with the tiered
// commit protocol (the Medley family); absent on crash phases and on
// competitors.
type FastpathRecord struct {
	ReadOnlyCommits uint64  `json:"read_only_commits"`
	FastPathCommits uint64  `json:"fastpath_commits"`
	Commits         uint64  `json:"commits"`
	FastpathShare   float64 `json:"fastpath_share"`
	GroupCommits    uint64  `json:"group_commits"`
	GroupedTxns     uint64  `json:"grouped_txns"`
	GroupShare      float64 `json:"group_share"`
}

// RecoveryRecord is the recovery digest of a crash-phase record: how long
// recovery took, how much came back, and whether the recovered state
// matched the ground-truth model of committed operations (see verify.go).
type RecoveryRecord struct {
	Recoverable      bool   `json:"recoverable"`
	RecoveryNs       int64  `json:"recovery_ns"`
	RecoveredEntries int    `json:"recovered_entries"`
	ModelEntries     int    `json:"model_entries"`
	MissingWrites    uint64 `json:"missing_writes"`
	MismatchedWrites uint64 `json:"mismatched_writes"`
	LeakedWrites     uint64 `json:"leaked_writes"`
	Violations       uint64 `json:"durability_violations"`
}

// CounterRecord is one named counter delta in the telemetry block.
// Counters are emitted as an array, not a JSON map, so new counter names
// extend the report without shifting the schema's canonical path set.
type CounterRecord struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeRecord is one named derived ratio in the telemetry block.
type GaugeRecord struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// TelemetryRecord is the engine-counter digest of one record: per-phase
// counter deltas from the system's MetricsSnapshot plus the standard
// gauges derived from them. Present on run-phase records of systems
// exporting metrics.
type TelemetryRecord struct {
	Counters []CounterRecord `json:"counters"`
	Gauges   []GaugeRecord   `json:"gauges"`
}

// KindRecord attributes one transaction kind's share of a record: how many
// committed, how many attempts aborted, and the mean committed latency.
// Present on records of systems running a closed transaction mix (TPC-C).
type KindRecord struct {
	Kind   string  `json:"kind"`
	Txns   uint64  `json:"txns"`
	Aborts uint64  `json:"aborts"`
	AvgNs  float64 `json:"avg_latency_ns"`
}

// ClassCountRecord is one violation class's tally in a consistency block.
type ClassCountRecord struct {
	Class string `json:"class"`
	Count int    `json:"count"`
}

// ConsistencyRecord is the domain-invariant digest of one record: whether
// the system's consistency check ran at this phase's barrier and what it
// found, tallied by violation class. Present on measured and crash-phase
// records of systems with a ConsistencyCheck (the TPC-C clause 3.3.2
// conditions).
type ConsistencyRecord struct {
	Checked    bool               `json:"checked"`
	Violations int                `json:"violations"`
	Classes    []ClassCountRecord `json:"classes,omitempty"`
}

// FinalCheckRecord is the end-of-run state-vs-model digest of a VerifyFinal
// scenario: the live state diffed against the journaled ground-truth model
// of committed operations, the transient-system counterpart of the
// recovery digest. Present only on the measured aggregate record.
type FinalCheckRecord struct {
	Checked          bool   `json:"checked"`
	ModelEntries     int    `json:"model_entries"`
	MissingWrites    uint64 `json:"missing_writes"`
	MismatchedWrites uint64 `json:"mismatched_writes"`
	LeakedWrites     uint64 `json:"leaked_writes"`
	Violations       uint64 `json:"state_violations"`
}

// ServiceRecord is the open-loop service digest of one record: how the
// offered load was disposed of (completed, shed by admission control,
// failed, dropped at the client queue) and the tail the completions saw.
// Latencies in the parent record are measured from each transaction's
// scheduled arrival time, so queueing delay under overload is charged to
// the system (no coordinated omission). Present on records produced by
// the open-loop driver path (AddOpenLoop).
type ServiceRecord struct {
	Driver        string  `json:"driver"` // "inproc" or "http"
	TargetRate    float64 `json:"target_rate_txn_per_sec"`
	OfferedRate   float64 `json:"offered_rate_txn_per_sec"`
	OfferedTxns   uint64  `json:"offered_txns"`
	CompletedTxns uint64  `json:"completed_txns"`
	ShedTxns      uint64  `json:"shed_txns"`
	ErrorTxns     uint64  `json:"error_txns"`
	DroppedTxns   uint64  `json:"dropped_txns"`
	Goodput       float64 `json:"goodput_txn_per_sec"`
	P999Ns        float64 `json:"p999_ns"`

	// Fault-tolerance fields, present on runs with deadlines, retries or
	// chaos (zero-valued and omitted otherwise). Availability is
	// completed / (completed + errors + expired + in-doubt): the share
	// of requests that wanted an answer and got one — sheds and client-
	// queue drops are excluded (backpressure is the system working), and
	// an in-doubt outcome counts against availability because the client
	// cannot act on it.
	ExpiredTxns  uint64  `json:"expired_txns,omitempty"`
	InDoubtTxns  uint64  `json:"in_doubt_txns,omitempty"`
	RetriedTxns  uint64  `json:"retried_txns,omitempty"`
	BreakerOpens uint64  `json:"breaker_opens,omitempty"`
	Restarts     int     `json:"restarts,omitempty"`
	DowntimeNs   int64   `json:"downtime_ns,omitempty"`
	Availability float64 `json:"availability,omitempty"`
	TaintedKeys  int     `json:"tainted_keys,omitempty"`
}

// ReplicaRecord is the replication digest of a replica-chaos record: the
// fault schedule that ran (kill+promote cycles or partition episodes),
// how the driver followed the leadership, what asynchronous replication
// lost at promotion (enumerated, not hidden), and the classified
// divergence diff of the final caught-up replica against the journaled
// model. Present only on records produced by the replica chaos runner.
type ReplicaRecord struct {
	Failovers        int    `json:"failovers,omitempty"`
	Partitions       int    `json:"partitions,omitempty"`
	DriverFailovers  uint64 `json:"driver_failovers,omitempty"`
	DriverRecoveries uint64 `json:"driver_recoveries,omitempty"`
	StaleRejections  uint64 `json:"stale_rejections,omitempty"`
	LostWrites       int    `json:"lost_writes"`
	MaxReplayLag     uint64 `json:"max_replay_lag"`
	ModelEntries     int    `json:"model_entries"`
	MissingKeys      uint64 `json:"missing_keys"`
	StaleKeys        uint64 `json:"stale_keys"`
	MismatchedKeys   uint64 `json:"mismatched_keys"`
	LeakedKeys       uint64 `json:"leaked_keys"`
	Violations       uint64 `json:"divergence_violations"`
}

// Record is one (system, scenario, phase, thread count) measurement.
type Record struct {
	System    string         `json:"system"`
	Scenario  string         `json:"scenario"`
	Phase     string         `json:"phase"`
	Threads   int            `json:"threads"`
	Shards    int            `json:"shards"`
	Txns      uint64         `json:"txns"`
	Ops       uint64         `json:"ops"`
	Aborts    uint64         `json:"aborts"`
	ElapsedNs int64          `json:"elapsed_ns"`
	TxnPerSec float64        `json:"throughput_txn_per_sec"`
	AbortRate float64        `json:"abort_rate"`
	Latency   LatencySummary `json:"latency"`
	// Memory is present on run-phase records (absent on crash phases).
	Memory *MemoryRecord `json:"memory,omitempty"`
	// Fastpath is present on run-phase records of systems with the tiered
	// commit protocol.
	Fastpath *FastpathRecord `json:"fastpath,omitempty"`
	// Recovery is present only on crash-phase records of crash scenarios.
	Recovery *RecoveryRecord `json:"recovery,omitempty"`
	// Telemetry is present on run-phase records of metrics-exporting systems.
	Telemetry *TelemetryRecord `json:"telemetry,omitempty"`
	// Kinds is present on records of systems running a closed transaction mix.
	Kinds []KindRecord `json:"kinds,omitempty"`
	// Consistency is present on measured and crash-phase records of systems
	// with a domain consistency check.
	Consistency *ConsistencyRecord `json:"consistency,omitempty"`
	// FinalCheck is present only on the measured aggregate record of
	// VerifyFinal scenarios.
	FinalCheck *FinalCheckRecord `json:"final_check,omitempty"`
	// Service is present on open-loop records (AddOpenLoop).
	Service *ServiceRecord `json:"service,omitempty"`
	// Replica is present only on replica-chaos records.
	Replica *ReplicaRecord `json:"replica,omitempty"`
}

// ReportConfig echoes the run parameters into the report so a stored
// BENCH_*.json is self-describing.
type ReportConfig struct {
	Threads    []int  `json:"threads"`
	DurationNs int64  `json:"duration_ns"`
	KeyRange   uint64 `json:"key_range"`
	Preload    int    `json:"preload"`
	Seed       int64  `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
}

// Report is the top-level JSON document.
type Report struct {
	Benchmark string       `json:"benchmark"` // always "medley-bench"
	Scenario  string       `json:"scenario"`
	Config    ReportConfig `json:"config"`
	Results   []Record     `json:"results"`
}

// NewReport seeds a report for one scenario run.
func NewReport(scenario string, threads []int, duration time.Duration, keyRange uint64, preload int, seed int64) *Report {
	return &Report{
		Benchmark: "medley-bench",
		Scenario:  scenario,
		Config: ReportConfig{
			Threads: threads, DurationNs: int64(duration),
			KeyRange: keyRange, Preload: preload, Seed: seed,
			GoMaxProcs: runtime.GOMAXPROCS(0),
		},
	}
}

// Add converts a ScenarioResult into records: one per phase plus the
// measured aggregate, so phase == "measured" is a stable cross-scenario
// selector for the headline number regardless of phase count. Crash-phase
// records carry the recovery digest.
func (rep *Report) Add(res ScenarioResult) {
	for _, ph := range res.Phases {
		rec := recordOf(res, ph)
		if ph.Crash && res.Recovery != nil {
			rec.Recovery = recoveryRecordOf(*res.Recovery)
		}
		rep.Results = append(rep.Results, rec)
	}
	rec := recordOf(res, res.Measured)
	if res.FinalCheck != nil {
		rec.FinalCheck = &FinalCheckRecord{
			Checked:          res.FinalCheck.Checked,
			ModelEntries:     res.FinalCheck.ModelEntries,
			MissingWrites:    res.FinalCheck.Missing,
			MismatchedWrites: res.FinalCheck.Mismatched,
			LeakedWrites:     res.FinalCheck.Leaked,
			Violations:       res.FinalCheck.Violations(),
		}
	}
	rep.Results = append(rep.Results, rec)
}

// AddOpenLoop converts an open-loop sweep into records: one per rate
// step, phase "rate-<target>", with the service block carrying the
// open-loop disposition. The shared fields keep their closed-loop
// meaning where one exists (txns = completed transactions,
// throughput = goodput); threads reports the in-flight bound, the
// open-loop analogue of the worker count.
func (rep *Report) AddOpenLoop(res OpenLoopResult, scenario string, inFlight int) {
	shards := res.Shards
	if shards == 0 {
		shards = 1
	}
	for _, ph := range res.Phases {
		var mem *MemoryRecord
		if ph.Memory != nil {
			mem = &MemoryRecord{
				AllocsPerOp: ph.Memory.AllocsPerOp, BytesPerOp: ph.Memory.BytesPerOp,
				TotalAllocs: ph.Memory.TotalAllocs, TotalBytes: ph.Memory.TotalBytes,
				GCPauseNs: ph.Memory.GCPauseNs, NumGC: ph.Memory.NumGC,
			}
		}
		rep.Results = append(rep.Results, Record{
			System: res.System, Scenario: scenario,
			Phase:   fmt.Sprintf("rate-%.0f", ph.TargetRate),
			Threads: inFlight, Shards: shards,
			Txns: ph.Completed, Ops: ph.Ops,
			ElapsedNs: int64(ph.Elapsed), TxnPerSec: ph.Goodput,
			Latency: LatencySummary{AvgNs: ph.AvgNs, P50Ns: ph.P50Ns, P99Ns: ph.P99Ns},
			Memory:  mem,
			Service: &ServiceRecord{
				Driver:      res.Driver,
				TargetRate:  ph.TargetRate,
				OfferedRate: ph.OfferedRate,
				OfferedTxns: ph.Offered, CompletedTxns: ph.Completed,
				ShedTxns: ph.Shed, ErrorTxns: ph.Errors, DroppedTxns: ph.Dropped,
				ExpiredTxns: ph.Expired,
				Goodput:     ph.Goodput, P999Ns: ph.P999Ns,
			},
		})
	}
}

func recoveryRecordOf(r RecoveryResult) *RecoveryRecord {
	return &RecoveryRecord{
		Recoverable:      r.Recoverable,
		RecoveryNs:       r.RecoveryNs,
		RecoveredEntries: r.Recovered,
		ModelEntries:     r.ModelEntries,
		MissingWrites:    r.Missing,
		MismatchedWrites: r.Mismatched,
		LeakedWrites:     r.Leaked,
		Violations:       r.Violations(),
	}
}

func recordOf(res ScenarioResult, ph PhaseResult) Record {
	shards := res.Shards
	if shards == 0 {
		shards = 1
	}
	var mem *MemoryRecord
	if ph.Memory != nil {
		mem = &MemoryRecord{
			AllocsPerOp: ph.Memory.AllocsPerOp, BytesPerOp: ph.Memory.BytesPerOp,
			TotalAllocs: ph.Memory.TotalAllocs, TotalBytes: ph.Memory.TotalBytes,
			GCPauseNs: ph.Memory.GCPauseNs, NumGC: ph.Memory.NumGC,
			PoolGets: ph.Memory.PoolGets, PoolHits: ph.Memory.PoolHits,
			PoolRetires: ph.Memory.PoolRetires, PoolHitRate: ph.Memory.PoolHitRate,
		}
	}
	var fp *FastpathRecord
	if ph.Fastpath != nil {
		fp = &FastpathRecord{
			ReadOnlyCommits: ph.Fastpath.ReadOnlyCommits,
			FastPathCommits: ph.Fastpath.FastPathCommits,
			Commits:         ph.Fastpath.Commits,
			FastpathShare:   ph.Fastpath.FastpathShare,
			GroupCommits:    ph.Fastpath.GroupCommits,
			GroupedTxns:     ph.Fastpath.GroupedTxns,
			GroupShare:      ph.Fastpath.GroupShare,
		}
	}
	var tel *TelemetryRecord
	if ph.Telemetry != nil {
		tel = &TelemetryRecord{
			Counters: make([]CounterRecord, 0, len(ph.Telemetry.Counters)),
			Gauges:   make([]GaugeRecord, 0, len(ph.Telemetry.Gauges)),
		}
		for _, m := range ph.Telemetry.Counters {
			tel.Counters = append(tel.Counters, CounterRecord{Name: m.Name, Value: m.Value})
		}
		for _, g := range ph.Telemetry.Gauges {
			tel.Gauges = append(tel.Gauges, GaugeRecord{Name: g.Name, Value: g.Value})
		}
	}
	var kinds []KindRecord
	for _, k := range ph.Kinds {
		kinds = append(kinds, KindRecord{Kind: k.Kind, Txns: k.Txns, Aborts: k.Aborts, AvgNs: k.AvgNs})
	}
	var cons *ConsistencyRecord
	if ph.Consistency != nil {
		cons = &ConsistencyRecord{Checked: ph.Consistency.Checked, Violations: ph.Consistency.Violations}
		for _, c := range ph.Consistency.Classes {
			cons.Classes = append(cons.Classes, ClassCountRecord{Class: c.Class, Count: c.Count})
		}
	}
	return Record{
		Memory: mem, Fastpath: fp,
		Telemetry: tel, Kinds: kinds, Consistency: cons,
		System: res.System, Scenario: res.Scenario, Phase: ph.Phase,
		Threads: res.Threads, Shards: shards,
		Txns: ph.Txns, Ops: ph.Ops, Aborts: ph.Aborts,
		ElapsedNs: int64(ph.Elapsed), TxnPerSec: ph.Throughput,
		AbortRate: ph.AbortRate,
		Latency: LatencySummary{
			AvgNs: ph.AvgLatencyNs, P50Ns: ph.P50LatencyNs, P99Ns: ph.P99LatencyNs,
		},
	}
}

// WriteJSON emits the report, indented, to w.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
