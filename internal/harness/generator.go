package harness

import "math/rand"

// This file holds the key-distribution generators of the workload engine.
// A KeyGen produces the keys a worker touches; which distribution it draws
// from determines where contention concentrates, which is what separates
// the systems under test once raw throughput is equal (eager contention
// management vs. serialized writers vs. lock-based commit all degrade
// differently under skew).

// KeyGen produces keys in [0, KeyRange). Implementations are per-worker:
// they own their *rand.Rand and are not safe for concurrent use, which is
// exactly what keeps generation off the coherence bus during measurement.
type KeyGen interface {
	Next() uint64
}

// Dist is a declarative key-distribution spec, the serializable half of a
// KeyGen. The zero value is uniform.
type Dist struct {
	Kind DistKind

	// Theta is the Zipf exponent for DistZipfian and DistLatest
	// (s in math/rand.Zipf terms; must be > 1, default 1.2).
	Theta float64

	// HotFrac and HotOpFrac parameterize DistHotspot: HotOpFrac of
	// operations land uniformly in the first HotFrac of the key space
	// (defaults 0.1 and 0.9 — a 90/10 hotspot).
	HotFrac, HotOpFrac float64
}

// DistKind enumerates the built-in key distributions.
type DistKind uint8

// Key distributions of the workload engine.
const (
	DistUniform DistKind = iota // uniform over the key space
	DistZipfian                 // Zipf ranks scattered over the key space
	DistLatest                  // Zipf ranks anchored at the top of the key space
	DistHotspot                 // two-tier uniform: hot range vs. the rest
)

func (k DistKind) String() string {
	switch k {
	case DistZipfian:
		return "zipfian"
	case DistLatest:
		return "latest"
	case DistHotspot:
		return "hotspot"
	default:
		return "uniform"
	}
}

// NewKeyGen builds the generator described by d over keyRange keys, drawing
// from r. The same (d, keyRange, seed) always yields the same key sequence.
func NewKeyGen(d Dist, keyRange uint64, r *rand.Rand) KeyGen {
	if keyRange == 0 {
		keyRange = 1
	}
	switch d.Kind {
	case DistZipfian, DistLatest:
		theta := d.Theta
		if theta <= 1 {
			theta = 1.2
		}
		z := rand.NewZipf(r, theta, 1, keyRange-1)
		if d.Kind == DistLatest {
			return &latestGen{z: z, keyRange: keyRange}
		}
		return &zipfGen{z: z, keyRange: keyRange}
	case DistHotspot:
		hf, hof := d.HotFrac, d.HotOpFrac
		if hf <= 0 || hf >= 1 {
			hf = 0.1
		}
		if hof <= 0 || hof >= 1 {
			hof = 0.9
		}
		hot := uint64(float64(keyRange) * hf)
		if hot == 0 {
			hot = 1
		}
		return &hotspotGen{r: r, keyRange: keyRange, hot: hot, hotOp: hof}
	default:
		return &uniformGen{r: r, keyRange: keyRange}
	}
}

type uniformGen struct {
	r        *rand.Rand
	keyRange uint64
}

func (g *uniformGen) Next() uint64 { return uint64(g.r.Int63n(int64(g.keyRange))) }

// zipfGen scatters Zipf ranks across the key space with a Fibonacci-hash
// scramble (YCSB's trick), so the handful of hot keys are not neighbours —
// adjacent hot keys would privilege ordered structures (skiplists, BSTs)
// with shared search paths and distort the comparison against hash tables.
type zipfGen struct {
	z        *rand.Zipf
	keyRange uint64
}

func scramble(rank, keyRange uint64) uint64 {
	return (rank * 0x9E3779B97F4A7C15) % keyRange
}

func (g *zipfGen) Next() uint64 { return scramble(g.z.Uint64(), g.keyRange) }

// latestGen anchors the Zipf head at the highest keys, approximating
// YCSB's "latest" distribution over this harness's fixed key space: the
// top of the range plays the role of the most recently inserted records.
type latestGen struct {
	z        *rand.Zipf
	keyRange uint64
}

func (g *latestGen) Next() uint64 { return g.keyRange - 1 - g.z.Uint64() }

type hotspotGen struct {
	r        *rand.Rand
	keyRange uint64
	hot      uint64  // size of the hot prefix
	hotOp    float64 // fraction of draws landing in it
}

func (g *hotspotGen) Next() uint64 {
	if g.r.Float64() < g.hotOp {
		return uint64(g.r.Int63n(int64(g.hot)))
	}
	if g.hot == g.keyRange {
		return uint64(g.r.Int63n(int64(g.keyRange)))
	}
	return g.hot + uint64(g.r.Int63n(int64(g.keyRange-g.hot)))
}
