package harness

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/core"
	"medley/internal/kv"
	"medley/internal/lftt"
	"medley/internal/montage"
	"medley/internal/onefile"
	"medley/internal/pmem"
	"medley/internal/structures/fraserskip"
	"medley/internal/structures/mhash"
	"medley/internal/tdsl"
)

// maintainer is implemented by structures with background maintenance
// (the rotating skiplist); KVSystem.Start drives it per shard.
type maintainer interface {
	StartMaintenance(time.Duration) func()
}

// shardedName appends the shard suffix benchmark reports use for
// partitioned configurations; single-instance names are unchanged.
func shardedName(base string, shards int) string {
	if shards <= 1 {
		return base
	}
	return fmt.Sprintf("%s-%dshard", base, shards)
}

// -------------------------------------------------------------- txMontage

// MontageSystem benchmarks txMontage (or its persistence-off NVM variant)
// over any registry index structure, optionally hash-partitioned into
// several PStores sharing one montage System and one TxManager (so
// cross-shard transactions remain strictly serializable and epoch
// validation is paid once per transaction).
type MontageSystem struct {
	name       string
	mgr        *core.TxManager
	sys        *montage.System
	stores     []*montage.PStore[uint64]
	persistOff bool
	advEvery   time.Duration
	skiplist   bool // index kind, needed to rebuild after a crash
	buckets    int
}

// MontageOpts selects the txMontage benchmark variant.
type MontageOpts struct {
	Skiplist         bool // index: skiplist (Fig. 8) vs hash (Fig. 7)
	Buckets          int
	Shards           int // PStore shards over one System (default 1)
	RegionWords      int
	WriteBackLatency time.Duration // per line, models clwb on Optane
	FenceLatency     time.Duration
	StoreLatency     time.Duration // per payload word store (NVM media)
	PersistOff       bool          // Figure 10b: payloads on NVM, no epochs
	AdvanceEvery     time.Duration // epoch length (paper: ~10-100ms)
}

// NewMontage creates a txMontage benchmark system.
func NewMontage(o MontageOpts) *MontageSystem {
	if o.RegionWords == 0 {
		o.RegionWords = 1 << 26
	}
	if o.AdvanceEvery == 0 {
		o.AdvanceEvery = 20 * time.Millisecond
	}
	// The worker-side kv.NewSharded and the recovery-side kv.ShardOf
	// both assume power-of-two counts; stores are sized here, before
	// the workers exist, so round the same way.
	o.Shards = kv.RoundShards(o.Shards)
	mgr := core.NewTxManager()
	sys := montage.NewSystem(montage.Config{
		RegionWords:      o.RegionWords,
		WriteBackLatency: o.WriteBackLatency,
		FenceLatency:     o.FenceLatency,
		StoreLatency:     o.StoreLatency,
	})
	name := "txMontage-hash"
	if o.Skiplist {
		name = "txMontage-skip"
	} else if o.Buckets == 0 {
		o.Buckets = 1 << 20
	}
	if o.PersistOff {
		name += "-persistOff"
	}
	s := &MontageSystem{
		name: name, mgr: mgr, sys: sys,
		persistOff: o.PersistOff,
		advEvery:   o.AdvanceEvery,
		skiplist:   o.Skiplist,
		buckets:    o.Buckets,
	}
	s.stores = s.newStores(o.Shards)
	s.name = shardedName(s.name, o.Shards)
	return s
}

// newIndex builds one fresh transient index. The montage index holds
// Entry values, not bare uint64s, so it comes from the structure packages
// directly rather than the uint64 registry.
func (s *MontageSystem) newIndex(buckets int) montage.Index[montage.Entry[uint64]] {
	if s.skiplist {
		return fraserskip.New[montage.Entry[uint64]](s.mgr)
	}
	return mhash.NewMap[montage.Entry[uint64]](s.mgr, buckets)
}

// newStores builds n fresh persistent stores over fresh indices (used at
// construction and again after a crash). Like kv.NewShardedNamed, each
// shard's index is provisioned like a full instance.
func (s *MontageSystem) newStores(n int) []*montage.PStore[uint64] {
	stores := make([]*montage.PStore[uint64], n)
	for i := range stores {
		stores[i] = montage.NewPStore[uint64](s.sys, s.newIndex(s.buckets), montage.U64Codec())
	}
	return stores
}

// ShardCount implements ShardCounter.
func (s *MontageSystem) ShardCount() int { return len(s.stores) }

// CanRecover implements Recoverable: the persistence-off variant keeps its
// payloads on NVM but never epoch-tags or writes them back, so nothing
// survives a crash.
func (s *MontageSystem) CanRecover() bool { return !s.persistOff }

// Persist implements Recoverable: one epoch sync makes everything
// committed so far durable.
func (s *MontageSystem) Persist() {
	if !s.persistOff {
		s.sys.Sync()
	}
}

// CrashAndRecover implements Recoverable: crash the region, scan the
// persisted payloads, and rebuild the transient indices from them —
// exactly the post-restart recovery path of nbMontage. With shards, each
// payload is routed to its shard by the same hash live traffic uses.
func (s *MontageSystem) CrashAndRecover() int {
	if s.persistOff {
		return 0
	}
	payloads := s.sys.CrashAndRecover()
	n := len(s.stores)
	parts := make([][]montage.Recovered, n)
	for _, r := range payloads {
		i := kv.ShardOf(r.Key, n)
		parts[i] = append(parts[i], r)
	}
	for i := range s.stores {
		s.stores[i] = montage.RebuildPStore(s.sys, s.newIndex(s.buckets), montage.U64Codec(), parts[i])
	}
	return len(payloads)
}

// Snapshot implements Recoverable.
func (s *MontageSystem) Snapshot(fn func(key, val uint64) bool) {
	for _, st := range s.stores {
		stop := false
		st.Range(func(k, v uint64) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Name implements System.
func (s *MontageSystem) Name() string { return s.name }

// Manager exposes the TxManager for statistics.
func (s *MontageSystem) Manager() *core.TxManager { return s.mgr }

// TxStats implements TxStatser from the manager's sharded counters.
func (s *MontageSystem) TxStats() (commits, aborts uint64) {
	st := s.mgr.Stats()
	return st.Commits, st.Aborts
}

// StateSnapshot implements Snapshotter (same quiescent iteration the crash
// verifier uses), so VerifyFinal chaos scenarios can check txMontage too.
func (s *MontageSystem) StateSnapshot(fn func(key, val uint64) bool) { s.Snapshot(fn) }

// MetricsSnapshot implements MetricsSnapshotter from the shared manager's
// counters.
func (s *MontageSystem) MetricsSnapshot() []Metric {
	st := s.mgr.Stats()
	return []Metric{
		{Name: "tx_begins", Value: st.Begins},
		{Name: "tx_commits", Value: st.Commits},
		{Name: "tx_commits_read_only", Value: st.ReadOnlyCommits},
		{Name: "tx_commits_fastpath", Value: st.FastPathCommits},
		{Name: "tx_aborts", Value: st.Aborts},
		{Name: "tx_aborts_by_others", Value: st.AbortsByOthers},
		{Name: "tx_help_events", Value: st.HelpEvents},
	}
}

// Start implements System.
func (s *MontageSystem) Start() (stop func()) {
	if s.persistOff {
		return func() {}
	}
	return s.sys.StartAdvancer(s.advEvery)
}

// Preload implements System.
func (s *MontageSystem) Preload(keys []uint64) {
	w := s.NewWorker().(*kvWorker)
	for _, k := range keys {
		key := k
		_ = w.tx.RunRetry(func() error {
			w.m.Put(w.tx, key, key)
			return nil
		})
	}
	if !s.persistOff {
		s.sys.Sync()
	}
}

// NewWorker implements System: one epoch handle per worker serves every
// shard, bound through the same kvWorker loop KVSystem uses.
func (s *MontageSystem) NewWorker() Worker {
	tx := s.mgr.Register()
	var h *montage.Handle
	if s.persistOff {
		h = s.sys.WrapTransient(tx)
	} else {
		h = s.sys.Wrap(tx)
	}
	var m kv.TxMap
	if len(s.stores) == 1 {
		m = kv.NewMontageMap(s.sys, s.stores[0]).BindHandle(h)
	} else {
		m = kv.NewSharded(len(s.stores), func(i int) kv.TxMap {
			return kv.NewMontageMap(s.sys, s.stores[i]).BindHandle(h)
		})
	}
	return &kvWorker{m: m, tx: tx}
}

// NewExecutor implements the service layer's backend seam: Montage
// workers are kvWorkers already, so medleyd's per-goroutine executors
// run the same epoch-wrapped transactional path as benchmark workers —
// which is what lets medleyd serve a durable, crash-recoverable store.
func (s *MontageSystem) NewExecutor() kv.Executor {
	return s.NewWorker().(*kvWorker)
}

// ---------------------------------------------------------------- OneFile

// ofMap is the shape shared by OneFile's structures and the persistent
// PMap wrapper.
type ofMap interface {
	Get(tx *onefile.Tx, key uint64) (uint64, bool)
	Put(tx *onefile.Tx, key uint64, val uint64) (uint64, bool)
	Remove(tx *onefile.Tx, key uint64) (uint64, bool)
	Range(fn func(key, val uint64) bool)
}

// OneFileSystem benchmarks transient or persistent OneFile over either
// structure. The persistent flavor wraps the structure in an
// onefile.PMap, whose per-key durable directory is what makes post-crash
// contents verifiable (see internal/onefile/pstm.go).
type OneFileSystem struct {
	name     string
	stm      *onefile.STM
	m        ofMap
	pstm     *onefile.PSTM // nil for the transient flavor
	pmap     *onefile.PMap // nil for the transient flavor
	skiplist bool
	buckets  int
}

// OneFileOpts selects the OneFile benchmark variant.
type OneFileOpts struct {
	Skiplist         bool
	Buckets          int
	Persistent       bool // POneFile: eager per-commit persistence
	RegionWords      int
	WriteBackLatency time.Duration
	FenceLatency     time.Duration
}

// NewOneFile creates a OneFile benchmark system.
func NewOneFile(o OneFileOpts) *OneFileSystem {
	var stm *onefile.STM
	var pstm *onefile.PSTM
	name := "OneFile"
	if o.Persistent {
		if o.RegionWords == 0 {
			o.RegionWords = 1 << 24
		}
		pstm = onefile.NewPersistent(pmem.Config{
			Words:            o.RegionWords,
			WriteBackLatency: o.WriteBackLatency,
			FenceLatency:     o.FenceLatency,
		})
		stm = pstm.STM
		name = "POneFile"
	} else {
		stm = onefile.New()
	}
	var inner onefile.KV
	if o.Skiplist {
		inner = onefile.NewSkiplist(stm)
		name += "-skip"
	} else {
		if o.Buckets == 0 {
			o.Buckets = 1 << 20
		}
		inner = onefile.NewHashMap(stm, o.Buckets)
		name += "-hash"
	}
	s := &OneFileSystem{name: name, stm: stm, pstm: pstm,
		skiplist: o.Skiplist, buckets: o.Buckets}
	if pstm != nil {
		s.pmap = onefile.NewPMap(pstm, inner)
		s.m = s.pmap
	} else {
		s.m = inner.(ofMap)
	}
	return s
}

// CanRecover implements Recoverable: only the persistent flavor has a
// durable image.
func (s *OneFileSystem) CanRecover() bool { return s.pstm != nil }

// Persist implements Recoverable: POneFile persists eagerly at every
// commit, so there is nothing pending at a barrier.
func (s *OneFileSystem) Persist() {}

// CrashAndRecover implements Recoverable: crash the region, replay any
// crash-interrupted redo log, read the committed key→value map from the
// persisted directory, and bulk-load a fresh structure from it. The
// rebuild is non-transactional: the recovered data is already durable,
// so recovery pays directory reads and DRAM construction, not a second
// pass through the persist path.
func (s *OneFileSystem) CrashAndRecover() int {
	if s.pmap == nil {
		return 0
	}
	var inner onefile.KV
	if s.skiplist {
		inner = onefile.NewSkiplist(s.stm)
	} else {
		inner = onefile.NewHashMap(s.stm, s.buckets)
	}
	return s.pmap.Recover(inner)
}

// Snapshot implements Recoverable.
func (s *OneFileSystem) Snapshot(fn func(key, val uint64) bool) {
	if s.pmap != nil {
		s.pmap.Range(fn)
	}
}

// StateSnapshot implements Snapshotter: walk live contents through the
// structure's own Range (the PMap for the persistent flavor). Callers
// must be quiesced, like every StateSnapshot.
func (s *OneFileSystem) StateSnapshot(fn func(key, val uint64) bool) {
	s.m.Range(fn)
}

// Name implements System.
func (s *OneFileSystem) Name() string { return s.name }

// TxStats implements TxStatser; OneFile restarts play the role of aborts.
func (s *OneFileSystem) TxStats() (commits, aborts uint64) {
	st := s.stm.Stats()
	return st.Commits, st.Restarts
}

// Start implements System.
func (s *OneFileSystem) Start() (stop func()) { return func() {} }

// Preload implements System.
func (s *OneFileSystem) Preload(keys []uint64) {
	const batch = 128
	for i := 0; i < len(keys); i += batch {
		part := keys[i:min(i+batch, len(keys))]
		_ = s.stm.WriteTx(func(tx *onefile.Tx) error {
			for _, k := range part {
				s.m.Put(tx, k, k)
			}
			return nil
		})
	}
}

type onefileWorker struct{ s *OneFileSystem }

// NewWorker implements System.
func (s *OneFileSystem) NewWorker() Worker { return &onefileWorker{s} }

// NewExecutor implements the service layer's backend seam, so medleyd
// can serve OneFile — in the persistent flavor, a store whose every
// acked commit is already durable, the property the crash-restart chaos
// scenarios gate on.
func (s *OneFileSystem) NewExecutor() kv.Executor { return &onefileExecutor{s} }

// onefileExecutor adapts OneFile to the kv batch request API with the
// same discipline as onefileWorker.Do: scans hoisted out of the
// transaction through the structure's own Range, keyed ops in one
// read-only or write transaction. OpAdd is read-modify-write inside the
// transaction — OneFile's opacity makes the fetch-and-add atomic.
type onefileExecutor struct{ s *OneFileSystem }

func (e *onefileExecutor) ExecBatch(ops []kv.Op, res []kv.Result) error {
	readOnly, keyed := true, false
	for i := range ops {
		switch ops[i].Kind {
		case kv.OpScan:
		case kv.OpGet:
			keyed = true
		default:
			keyed = true
			readOnly = false
		}
	}
	for i := range ops {
		if ops[i].Kind != kv.OpScan {
			continue
		}
		n := int(ops[i].Val)
		var visited uint64
		e.s.m.Range(func(_, _ uint64) bool { visited++; n--; return n > 0 })
		if res != nil {
			res[i] = kv.Result{Val: visited, Ok: true}
		}
	}
	if !keyed {
		return nil
	}
	body := func(tx *onefile.Tx) error {
		for i := range ops {
			op := &ops[i]
			var r kv.Result
			switch op.Kind {
			case kv.OpGet:
				r.Val, r.Ok = e.s.m.Get(tx, op.Key)
			case kv.OpPut:
				r.Val, r.Ok = e.s.m.Put(tx, op.Key, op.Val)
			case kv.OpDelete:
				r.Val, r.Ok = e.s.m.Remove(tx, op.Key)
			case kv.OpAdd:
				v, ok := e.s.m.Get(tx, op.Key)
				v += op.Val
				e.s.m.Put(tx, op.Key, v)
				r = kv.Result{Val: v, Ok: ok}
			default:
				continue
			}
			if res != nil {
				res[i] = r
			}
		}
		return nil
	}
	if readOnly {
		return e.s.stm.ReadTx(body)
	}
	return e.s.stm.WriteTx(body)
}

func (w *onefileWorker) Do(ops []Op) {
	readOnly := true
	hasWork := false
	for _, op := range ops {
		switch op.Kind {
		case OpRange:
			// Scans run through the structure's own Range (its own read
			// transaction); they must not nest inside the write tx below.
			continue
		case OpGet:
			hasWork = true
		default:
			hasWork = true
			readOnly = false
		}
	}
	for _, op := range ops {
		if op.Kind == OpRange {
			n := int(op.Val)
			w.s.m.Range(func(_, _ uint64) bool { n--; return n > 0 })
		}
	}
	if !hasWork {
		return
	}
	body := func(tx *onefile.Tx) error {
		for _, op := range ops {
			switch op.Kind {
			case OpGet:
				w.s.m.Get(tx, op.Key)
			case OpInsert:
				w.s.m.Put(tx, op.Key, op.Val)
			case OpRemove:
				w.s.m.Remove(tx, op.Key)
			}
		}
		return nil
	}
	if readOnly {
		_ = w.s.stm.ReadTx(body)
	} else {
		_ = w.s.stm.WriteTx(body)
	}
}

// ------------------------------------------------------------------ TDSL

// TDSLSystem benchmarks the TDSL skiplist. The library itself keeps no
// counters, so each worker counts commits and aborts in its own padded
// shard and TxStats folds them — the same no-shared-hot-word discipline as
// core.TxManager.
type TDSLSystem struct {
	sl      *tdsl.Skiplist
	mu      sync.Mutex
	workers []*tdslWorker
}

// NewTDSL creates the TDSL benchmark system.
func NewTDSL() *TDSLSystem { return &TDSLSystem{sl: tdsl.New()} }

// Name implements System.
func (s *TDSLSystem) Name() string { return "TDSL-skip" }

// TxStats implements TxStatser by summing the per-worker shards.
func (s *TDSLSystem) TxStats() (commits, aborts uint64) {
	s.mu.Lock()
	workers := s.workers
	s.mu.Unlock()
	for _, w := range workers {
		commits += w.commits.Load()
		aborts += w.aborts.Load()
	}
	return commits, aborts
}

// Start implements System.
func (s *TDSLSystem) Start() (stop func()) { return func() {} }

// Preload implements System.
func (s *TDSLSystem) Preload(keys []uint64) {
	for i := 0; i < len(keys); i += 64 {
		part := keys[i:min(i+64, len(keys))]
		_ = tdsl.RunRetry(func(tx *tdsl.Tx) error {
			for _, k := range part {
				tx.Put(s.sl, k, k)
			}
			return nil
		})
	}
}

type tdslWorker struct {
	s               *TDSLSystem
	tx              *tdsl.Tx
	commits, aborts atomic.Uint64
	_               [112]byte // keep worker shards on distinct cache lines
}

// NewWorker implements System.
func (s *TDSLSystem) NewWorker() Worker {
	w := &tdslWorker{s: s, tx: tdsl.NewTx()}
	s.mu.Lock()
	s.workers = append(s.workers, w)
	s.mu.Unlock()
	return w
}

func (w *tdslWorker) Do(ops []Op) {
	for {
		w.tx.Reset()
		for _, op := range ops {
			switch op.Kind {
			case OpGet:
				w.tx.Get(w.s.sl, op.Key)
			case OpInsert:
				w.tx.Put(w.s.sl, op.Key, op.Val)
			case OpRemove:
				w.tx.Remove(w.s.sl, op.Key)
			case OpRange:
				// TDSL has no transactional scan; the structure's
				// non-transactional Range stands in, like Len.
				n := int(op.Val)
				w.s.sl.Range(func(_, _ uint64) bool { n--; return n > 0 })
			}
		}
		err := w.tx.Commit()
		if err == nil {
			w.commits.Add(1)
			return
		}
		if !errors.Is(err, tdsl.ErrAborted) {
			return
		}
		w.aborts.Add(1)
	}
}

// ------------------------------------------------------------------ LFTT

// LFTTSystem benchmarks the LFTT skiplist (static transactions).
type LFTTSystem struct{ sl *lftt.Skiplist }

// NewLFTT creates the LFTT benchmark system.
func NewLFTT() *LFTTSystem { return &LFTTSystem{sl: lftt.New()} }

// Name implements System.
func (s *LFTTSystem) Name() string { return "LFTT-skip" }

// TxStats implements TxStatser from the skiplist's counters.
func (s *LFTTSystem) TxStats() (commits, aborts uint64) { return s.sl.Stats() }

// Start implements System.
func (s *LFTTSystem) Start() (stop func()) { return func() {} }

// Preload implements System.
func (s *LFTTSystem) Preload(keys []uint64) {
	for _, k := range keys {
		s.sl.Insert(k, k)
	}
}

type lfttWorker struct {
	s   *LFTTSystem
	buf []lftt.Op
}

// NewWorker implements System.
func (s *LFTTSystem) NewWorker() Worker { return &lfttWorker{s: s} }

func (w *lfttWorker) Do(ops []Op) {
	w.buf = w.buf[:0]
	for _, op := range ops {
		k := lftt.OpGet
		switch op.Kind {
		case OpInsert:
			k = lftt.OpInsert
		case OpRemove:
			k = lftt.OpRemove
		case OpRange:
			// Static transactions cannot express scans; run the
			// structure's non-transactional Range alongside.
			n := int(op.Val)
			w.s.sl.Range(func(_, _ uint64) bool { n--; return n > 0 })
			continue
		}
		w.buf = append(w.buf, lftt.Op{Kind: k, Key: op.Key, Val: op.Val})
	}
	if len(w.buf) > 0 {
		w.s.sl.Execute(w.buf)
	}
}
