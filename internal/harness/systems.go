package harness

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/core"
	"medley/internal/ebr"
	"medley/internal/lftt"
	"medley/internal/montage"
	"medley/internal/onefile"
	"medley/internal/pmem"
	"medley/internal/structures/fraserskip"
	"medley/internal/structures/mhash"
	"medley/internal/structures/plainskip"
	"medley/internal/tdsl"
)

// Recoverable is the capability interface of systems whose committed
// state survives a simulated power failure. The engine's crash phase
// (engine.go) drives it: Persist, then CrashAndRecover under a timer, then
// Snapshot for verification against the ground-truth model. Systems
// without durable state simply don't implement it (Medley, TDSL, LFTT,
// the plain structures) and the crash phase reports recoverable: false.
type Recoverable interface {
	// CanRecover reports whether this configuration actually persists
	// (e.g. txMontage with persistence off implements the interface but
	// cannot recover).
	CanRecover() bool
	// Persist makes every effect committed so far durable: an epoch sync
	// for periodic persistence, a no-op for eager per-commit persistence.
	Persist()
	// CrashAndRecover simulates a full-system crash (volatile state lost,
	// durable media kept) and rebuilds the system from the durable image,
	// returning the number of recovered entries. Workers created before
	// the crash are invalid afterwards; the engine creates workers fresh
	// per phase.
	CrashAndRecover() int
	// Snapshot iterates the live key→value state. The engine calls it
	// only at phase barriers, where it is exact.
	Snapshot(fn func(key, val uint64) bool)
}

// kv64 is the shape shared by all Medley maps with uint64 values.
type kv64 interface {
	Get(tx *core.Tx, key uint64) (uint64, bool)
	Put(tx *core.Tx, key uint64, val uint64) (uint64, bool)
	Insert(tx *core.Tx, key uint64, val uint64) bool
	Remove(tx *core.Tx, key uint64) (uint64, bool)
}

// ---------------------------------------------------------------- Medley

// MedleySystem benchmarks Medley over either structure.
type MedleySystem struct {
	name string
	mgr  *core.TxManager
	m    kv64
	smr  *ebr.Manager
}

// NewMedleyHash is the Figure 7 Medley configuration (Michael's hash
// table, 1M buckets in the paper).
func NewMedleyHash(buckets int) *MedleySystem {
	mgr := core.NewTxManager()
	return &MedleySystem{name: "Medley-hash", mgr: mgr,
		m: mhash.NewMap[uint64](mgr, buckets), smr: ebr.New(256)}
}

// NewMedleySkip is the Figure 8 Medley configuration (Fraser's skiplist).
func NewMedleySkip() *MedleySystem {
	mgr := core.NewTxManager()
	return &MedleySystem{name: "Medley-skip", mgr: mgr,
		m: fraserskip.New[uint64](mgr), smr: ebr.New(256)}
}

// Name implements System.
func (s *MedleySystem) Name() string { return s.name }

// Manager exposes the TxManager for statistics.
func (s *MedleySystem) Manager() *core.TxManager { return s.mgr }

// TxStats implements TxStatser from the manager's sharded counters.
func (s *MedleySystem) TxStats() (commits, aborts uint64) {
	st := s.mgr.Stats()
	return st.Commits, st.Aborts
}

// Start implements System.
func (s *MedleySystem) Start() (stop func()) { return func() {} }

// Preload implements System.
func (s *MedleySystem) Preload(keys []uint64) {
	for _, k := range keys {
		s.m.Put(nil, k, k)
	}
}

type medleyWorker struct {
	s  *MedleySystem
	tx *core.Tx
	h  *ebr.Handle
}

// NewWorker implements System.
func (s *MedleySystem) NewWorker() Worker {
	tx := s.mgr.Register()
	h := s.smr.Register()
	tx.SetSMR(h)
	return &medleyWorker{s: s, tx: tx, h: h}
}

func (w *medleyWorker) Do(ops []Op) {
	w.h.Enter()
	_ = w.tx.RunRetry(func() error {
		for _, op := range ops {
			switch op.Kind {
			case OpGet:
				w.s.m.Get(w.tx, op.Key)
			case OpInsert:
				w.s.m.Put(w.tx, op.Key, op.Val)
			case OpRemove:
				w.s.m.Remove(w.tx, op.Key)
			}
		}
		return nil
	})
	w.h.Exit()
}

// -------------------------------------------------------------- txMontage

// MontageSystem benchmarks txMontage (or its persistence-off NVM variant)
// over either index structure.
type MontageSystem struct {
	name       string
	mgr        *core.TxManager
	sys        *montage.System
	store      *montage.PStore[uint64]
	persistOff bool
	advEvery   time.Duration
	skiplist   bool // index kind, needed to rebuild after a crash
	buckets    int
}

// MontageOpts selects the txMontage benchmark variant.
type MontageOpts struct {
	Skiplist         bool // index: skiplist (Fig. 8) vs hash (Fig. 7)
	Buckets          int
	RegionWords      int
	WriteBackLatency time.Duration // per line, models clwb on Optane
	FenceLatency     time.Duration
	StoreLatency     time.Duration // per payload word store (NVM media)
	PersistOff       bool          // Figure 10b: payloads on NVM, no epochs
	AdvanceEvery     time.Duration // epoch length (paper: ~10-100ms)
}

// NewMontage creates a txMontage benchmark system.
func NewMontage(o MontageOpts) *MontageSystem {
	if o.RegionWords == 0 {
		o.RegionWords = 1 << 26
	}
	if o.AdvanceEvery == 0 {
		o.AdvanceEvery = 20 * time.Millisecond
	}
	mgr := core.NewTxManager()
	sys := montage.NewSystem(montage.Config{
		RegionWords:      o.RegionWords,
		WriteBackLatency: o.WriteBackLatency,
		FenceLatency:     o.FenceLatency,
		StoreLatency:     o.StoreLatency,
	})
	var idx montage.Index[montage.Entry[uint64]]
	name := "txMontage-hash"
	if o.Skiplist {
		idx = fraserskip.New[montage.Entry[uint64]](mgr)
		name = "txMontage-skip"
	} else {
		if o.Buckets == 0 {
			o.Buckets = 1 << 20
		}
		idx = mhash.NewMap[montage.Entry[uint64]](mgr, o.Buckets)
	}
	if o.PersistOff {
		name += "-persistOff"
	}
	return &MontageSystem{
		name: name, mgr: mgr, sys: sys,
		store:      montage.NewPStore[uint64](sys, idx, montage.U64Codec()),
		persistOff: o.PersistOff,
		advEvery:   o.AdvanceEvery,
		skiplist:   o.Skiplist,
		buckets:    o.Buckets,
	}
}

// CanRecover implements Recoverable: the persistence-off variant keeps its
// payloads on NVM but never epoch-tags or writes them back, so nothing
// survives a crash.
func (s *MontageSystem) CanRecover() bool { return !s.persistOff }

// Persist implements Recoverable: one epoch sync makes everything
// committed so far durable.
func (s *MontageSystem) Persist() {
	if !s.persistOff {
		s.sys.Sync()
	}
}

// CrashAndRecover implements Recoverable: crash the region, scan the
// persisted payloads, and rebuild the transient index from them — exactly
// the post-restart recovery path of nbMontage.
func (s *MontageSystem) CrashAndRecover() int {
	if s.persistOff {
		return 0
	}
	payloads := s.sys.CrashAndRecover()
	var idx montage.Index[montage.Entry[uint64]]
	if s.skiplist {
		idx = fraserskip.New[montage.Entry[uint64]](s.mgr)
	} else {
		idx = mhash.NewMap[montage.Entry[uint64]](s.mgr, s.buckets)
	}
	s.store = montage.RebuildPStore(s.sys, idx, montage.U64Codec(), payloads)
	return len(payloads)
}

// Snapshot implements Recoverable.
func (s *MontageSystem) Snapshot(fn func(key, val uint64) bool) {
	s.store.Range(fn)
}

// Name implements System.
func (s *MontageSystem) Name() string { return s.name }

// Manager exposes the TxManager for statistics.
func (s *MontageSystem) Manager() *core.TxManager { return s.mgr }

// TxStats implements TxStatser from the manager's sharded counters.
func (s *MontageSystem) TxStats() (commits, aborts uint64) {
	st := s.mgr.Stats()
	return st.Commits, st.Aborts
}

// Start implements System.
func (s *MontageSystem) Start() (stop func()) {
	if s.persistOff {
		return func() {}
	}
	return s.sys.StartAdvancer(s.advEvery)
}

// Preload implements System.
func (s *MontageSystem) Preload(keys []uint64) {
	w := s.NewWorker().(*montageWorker)
	for _, k := range keys {
		key := k
		_ = w.h.Tx().RunRetry(func() error {
			s.store.Put(w.h, key, key)
			return nil
		})
	}
	if !s.persistOff {
		s.sys.Sync()
	}
}

type montageWorker struct {
	s *MontageSystem
	h *montage.Handle
}

// NewWorker implements System.
func (s *MontageSystem) NewWorker() Worker {
	tx := s.mgr.Register()
	var h *montage.Handle
	if s.persistOff {
		h = s.sys.WrapTransient(tx)
	} else {
		h = s.sys.Wrap(tx)
	}
	return &montageWorker{s: s, h: h}
}

func (w *montageWorker) Do(ops []Op) {
	_ = w.h.Tx().RunRetry(func() error {
		for _, op := range ops {
			switch op.Kind {
			case OpGet:
				w.s.store.Get(w.h, op.Key)
			case OpInsert:
				w.s.store.Put(w.h, op.Key, op.Val)
			case OpRemove:
				w.s.store.Remove(w.h, op.Key)
			}
		}
		return nil
	})
}

// ---------------------------------------------------------------- OneFile

type ofMap interface {
	Get(tx *onefile.Tx, key uint64) (uint64, bool)
	Put(tx *onefile.Tx, key uint64, val uint64) (uint64, bool)
	Remove(tx *onefile.Tx, key uint64) (uint64, bool)
}

// OneFileSystem benchmarks transient or persistent OneFile over either
// structure. The persistent flavor wraps the structure in an
// onefile.PMap, whose per-key durable directory is what makes post-crash
// contents verifiable (see internal/onefile/pstm.go).
type OneFileSystem struct {
	name     string
	stm      *onefile.STM
	m        ofMap
	pstm     *onefile.PSTM // nil for the transient flavor
	pmap     *onefile.PMap // nil for the transient flavor
	skiplist bool
	buckets  int
}

// OneFileOpts selects the OneFile benchmark variant.
type OneFileOpts struct {
	Skiplist         bool
	Buckets          int
	Persistent       bool // POneFile: eager per-commit persistence
	RegionWords      int
	WriteBackLatency time.Duration
	FenceLatency     time.Duration
}

// NewOneFile creates a OneFile benchmark system.
func NewOneFile(o OneFileOpts) *OneFileSystem {
	var stm *onefile.STM
	var pstm *onefile.PSTM
	name := "OneFile"
	if o.Persistent {
		if o.RegionWords == 0 {
			o.RegionWords = 1 << 24
		}
		pstm = onefile.NewPersistent(pmem.Config{
			Words:            o.RegionWords,
			WriteBackLatency: o.WriteBackLatency,
			FenceLatency:     o.FenceLatency,
		})
		stm = pstm.STM
		name = "POneFile"
	} else {
		stm = onefile.New()
	}
	var inner onefile.KV
	if o.Skiplist {
		inner = onefile.NewSkiplist(stm)
		name += "-skip"
	} else {
		if o.Buckets == 0 {
			o.Buckets = 1 << 20
		}
		inner = onefile.NewHashMap(stm, o.Buckets)
		name += "-hash"
	}
	s := &OneFileSystem{name: name, stm: stm, pstm: pstm,
		skiplist: o.Skiplist, buckets: o.Buckets}
	if pstm != nil {
		s.pmap = onefile.NewPMap(pstm, inner)
		s.m = s.pmap
	} else {
		s.m = inner
	}
	return s
}

// CanRecover implements Recoverable: only the persistent flavor has a
// durable image.
func (s *OneFileSystem) CanRecover() bool { return s.pstm != nil }

// Persist implements Recoverable: POneFile persists eagerly at every
// commit, so there is nothing pending at a barrier.
func (s *OneFileSystem) Persist() {}

// CrashAndRecover implements Recoverable: crash the region, replay any
// crash-interrupted redo log, read the committed key→value map from the
// persisted directory, and bulk-load a fresh structure from it. The
// rebuild is non-transactional: the recovered data is already durable,
// so recovery pays directory reads and DRAM construction, not a second
// pass through the persist path.
func (s *OneFileSystem) CrashAndRecover() int {
	if s.pmap == nil {
		return 0
	}
	var inner onefile.KV
	if s.skiplist {
		inner = onefile.NewSkiplist(s.stm)
	} else {
		inner = onefile.NewHashMap(s.stm, s.buckets)
	}
	return s.pmap.Recover(inner)
}

// Snapshot implements Recoverable.
func (s *OneFileSystem) Snapshot(fn func(key, val uint64) bool) {
	if s.pmap != nil {
		s.pmap.Range(fn)
	}
}

// Name implements System.
func (s *OneFileSystem) Name() string { return s.name }

// TxStats implements TxStatser; OneFile restarts play the role of aborts.
func (s *OneFileSystem) TxStats() (commits, aborts uint64) {
	st := s.stm.Stats()
	return st.Commits, st.Restarts
}

// Start implements System.
func (s *OneFileSystem) Start() (stop func()) { return func() {} }

// Preload implements System.
func (s *OneFileSystem) Preload(keys []uint64) {
	const batch = 128
	for i := 0; i < len(keys); i += batch {
		end := i + batch
		if end > len(keys) {
			end = len(keys)
		}
		part := keys[i:end]
		_ = s.stm.WriteTx(func(tx *onefile.Tx) error {
			for _, k := range part {
				s.m.Put(tx, k, k)
			}
			return nil
		})
	}
}

type onefileWorker struct{ s *OneFileSystem }

// NewWorker implements System.
func (s *OneFileSystem) NewWorker() Worker { return &onefileWorker{s} }

func (w *onefileWorker) Do(ops []Op) {
	readOnly := true
	for _, op := range ops {
		if op.Kind != OpGet {
			readOnly = false
			break
		}
	}
	body := func(tx *onefile.Tx) error {
		for _, op := range ops {
			switch op.Kind {
			case OpGet:
				w.s.m.Get(tx, op.Key)
			case OpInsert:
				w.s.m.Put(tx, op.Key, op.Val)
			case OpRemove:
				w.s.m.Remove(tx, op.Key)
			}
		}
		return nil
	}
	if readOnly {
		_ = w.s.stm.ReadTx(body)
	} else {
		_ = w.s.stm.WriteTx(body)
	}
}

// ------------------------------------------------------------------ TDSL

// TDSLSystem benchmarks the TDSL skiplist. The library itself keeps no
// counters, so each worker counts commits and aborts in its own padded
// shard and TxStats folds them — the same no-shared-hot-word discipline as
// core.TxManager.
type TDSLSystem struct {
	sl      *tdsl.Skiplist
	mu      sync.Mutex
	workers []*tdslWorker
}

// NewTDSL creates the TDSL benchmark system.
func NewTDSL() *TDSLSystem { return &TDSLSystem{sl: tdsl.New()} }

// Name implements System.
func (s *TDSLSystem) Name() string { return "TDSL-skip" }

// TxStats implements TxStatser by summing the per-worker shards.
func (s *TDSLSystem) TxStats() (commits, aborts uint64) {
	s.mu.Lock()
	workers := s.workers
	s.mu.Unlock()
	for _, w := range workers {
		commits += w.commits.Load()
		aborts += w.aborts.Load()
	}
	return commits, aborts
}

// Start implements System.
func (s *TDSLSystem) Start() (stop func()) { return func() {} }

// Preload implements System.
func (s *TDSLSystem) Preload(keys []uint64) {
	for i := 0; i < len(keys); i += 64 {
		end := min(i+64, len(keys))
		part := keys[i:end]
		_ = tdsl.RunRetry(func(tx *tdsl.Tx) error {
			for _, k := range part {
				tx.Put(s.sl, k, k)
			}
			return nil
		})
	}
}

type tdslWorker struct {
	s               *TDSLSystem
	tx              *tdsl.Tx
	commits, aborts atomic.Uint64
	_               [112]byte // keep worker shards on distinct cache lines
}

// NewWorker implements System.
func (s *TDSLSystem) NewWorker() Worker {
	w := &tdslWorker{s: s, tx: tdsl.NewTx()}
	s.mu.Lock()
	s.workers = append(s.workers, w)
	s.mu.Unlock()
	return w
}

func (w *tdslWorker) Do(ops []Op) {
	for {
		w.tx.Reset()
		for _, op := range ops {
			switch op.Kind {
			case OpGet:
				w.tx.Get(w.s.sl, op.Key)
			case OpInsert:
				w.tx.Put(w.s.sl, op.Key, op.Val)
			case OpRemove:
				w.tx.Remove(w.s.sl, op.Key)
			}
		}
		err := w.tx.Commit()
		if err == nil {
			w.commits.Add(1)
			return
		}
		if !errors.Is(err, tdsl.ErrAborted) {
			return
		}
		w.aborts.Add(1)
	}
}

// ------------------------------------------------------------------ LFTT

// LFTTSystem benchmarks the LFTT skiplist (static transactions).
type LFTTSystem struct{ sl *lftt.Skiplist }

// NewLFTT creates the LFTT benchmark system.
func NewLFTT() *LFTTSystem { return &LFTTSystem{sl: lftt.New()} }

// Name implements System.
func (s *LFTTSystem) Name() string { return "LFTT-skip" }

// TxStats implements TxStatser from the skiplist's counters.
func (s *LFTTSystem) TxStats() (commits, aborts uint64) { return s.sl.Stats() }

// Start implements System.
func (s *LFTTSystem) Start() (stop func()) { return func() {} }

// Preload implements System.
func (s *LFTTSystem) Preload(keys []uint64) {
	for _, k := range keys {
		s.sl.Insert(k, k)
	}
}

type lfttWorker struct {
	s   *LFTTSystem
	buf []lftt.Op
}

// NewWorker implements System.
func (s *LFTTSystem) NewWorker() Worker { return &lfttWorker{s: s} }

func (w *lfttWorker) Do(ops []Op) {
	w.buf = w.buf[:0]
	for _, op := range ops {
		k := lftt.OpGet
		switch op.Kind {
		case OpInsert:
			k = lftt.OpInsert
		case OpRemove:
			k = lftt.OpRemove
		}
		w.buf = append(w.buf, lftt.Op{Kind: k, Key: op.Key, Val: op.Val})
	}
	w.s.sl.Execute(w.buf)
}

// --------------------------------------------- Figure 10 latency variants

// OriginalSkipSystem is Fraser's untransformed skiplist ("Original" in
// Figure 10): operations execute directly, one group of 1-10 counted as a
// "transaction" for latency comparability.
type OriginalSkipSystem struct{ sl *plainskip.List[uint64] }

// NewOriginalSkip creates the Figure 10 Original configuration.
func NewOriginalSkip() *OriginalSkipSystem {
	return &OriginalSkipSystem{sl: plainskip.New[uint64]()}
}

// Name implements System.
func (s *OriginalSkipSystem) Name() string { return "Original-skip" }

// Start implements System.
func (s *OriginalSkipSystem) Start() (stop func()) { return func() {} }

// Preload implements System.
func (s *OriginalSkipSystem) Preload(keys []uint64) {
	for _, k := range keys {
		s.sl.Put(k, k)
	}
}

type originalWorker struct{ s *OriginalSkipSystem }

// NewWorker implements System.
func (s *OriginalSkipSystem) NewWorker() Worker { return &originalWorker{s} }

func (w *originalWorker) Do(ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case OpGet:
			w.s.sl.Get(op.Key)
		case OpInsert:
			w.s.sl.Put(op.Key, op.Val)
		case OpRemove:
			w.s.sl.Remove(op.Key)
		}
	}
}

// TxOffSkipSystem is the NBTC-transformed skiplist with transactions off
// ("TxOff" in Figure 10): the transformed code paths run, but outside any
// transaction, so all instrumentation is dynamically elided.
type TxOffSkipSystem struct {
	mgr *core.TxManager
	sl  *fraserskip.List[uint64]
}

// NewTxOffSkip creates the Figure 10 TxOff configuration.
func NewTxOffSkip() *TxOffSkipSystem {
	mgr := core.NewTxManager()
	return &TxOffSkipSystem{mgr: mgr, sl: fraserskip.New[uint64](mgr)}
}

// Name implements System.
func (s *TxOffSkipSystem) Name() string { return "TxOff-skip" }

// Start implements System.
func (s *TxOffSkipSystem) Start() (stop func()) { return func() {} }

// Preload implements System.
func (s *TxOffSkipSystem) Preload(keys []uint64) {
	for _, k := range keys {
		s.sl.Put(nil, k, k)
	}
}

type txoffWorker struct{ s *TxOffSkipSystem }

// NewWorker implements System.
func (s *TxOffSkipSystem) NewWorker() Worker { return &txoffWorker{s} }

func (w *txoffWorker) Do(ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case OpGet:
			w.s.sl.Get(nil, op.Key)
		case OpInsert:
			w.s.sl.Put(nil, op.Key, op.Val)
		case OpRemove:
			w.s.sl.Remove(nil, op.Key)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
