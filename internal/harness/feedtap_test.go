package harness

import (
	"testing"

	"medley/internal/cdc"
	"medley/internal/kv"
)

// feedSystem builds a transactional KVSystem with a change feed attached to
// one executor, returning both plus the executor.
func feedSystem(t *testing.T) (*KVSystem, *cdc.Feed, kv.Executor) {
	t.Helper()
	sys, err := NewSystem("medley-hash@2", SystemOpts{Buckets: 1 << 8, KeyRange: 1 << 12})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	ks, ok := sys.(*KVSystem)
	if !ok || !ks.SupportsChangeFeed() {
		t.Fatalf("medley-hash does not support change feeds")
	}
	f := cdc.New(2, 1<<10, nil)
	ex := ks.NewExecutor()
	if !ex.(interface{ SetChangeFeed(*cdc.Feed) bool }).SetChangeFeed(f) {
		t.Fatal("SetChangeFeed refused on transactional executor")
	}
	return ks, f, ex
}

func feedEntries(t *testing.T, f *cdc.Feed) []cdc.Entry {
	t.Helper()
	var out []cdc.Entry
	buf := make([]cdc.Entry, 64)
	for s := 0; s < f.ShardCount(); s++ {
		from := uint64(1)
		for {
			got, err := f.ReadFrom(s, from, buf)
			if err != nil {
				t.Fatalf("ReadFrom: %v", err)
			}
			if len(got) == 0 {
				break
			}
			out = append(out, got...)
			from = got[len(got)-1].Seq + 1
		}
	}
	return out
}

func TestFeedTapPublishesCommittedBatches(t *testing.T) {
	_, f, ex := feedSystem(t)
	ops := []kv.Op{
		{Kind: kv.OpPut, Key: 1, Val: 10},
		{Kind: kv.OpPut, Key: 2, Val: 20},
	}
	if err := ex.ExecBatch(ops, nil); err != nil {
		t.Fatalf("ExecBatch: %v", err)
	}
	entries := feedEntries(t, f)
	if len(entries) != 2 {
		t.Fatalf("entries = %v, want 2", entries)
	}
	vals := map[uint64]uint64{}
	var txid uint64
	for _, e := range entries {
		vals[e.Key] = e.Val
		if txid == 0 {
			txid = e.TxID
		} else if e.TxID != txid {
			t.Fatalf("one batch split across tickets: %v", entries)
		}
	}
	if vals[1] != 10 || vals[2] != 20 {
		t.Fatalf("feed values = %v", vals)
	}
}

func TestFeedTapAddPublishesAbsoluteValue(t *testing.T) {
	_, f, ex := feedSystem(t)
	if err := ex.ExecBatch([]kv.Op{{Kind: kv.OpPut, Key: 9, Val: 100}}, nil); err != nil {
		t.Fatalf("put: %v", err)
	}
	// res == nil: the executor must still capture the post-value for the feed.
	if err := ex.ExecBatch([]kv.Op{{Kind: kv.OpAdd, Key: 9, Val: 5}}, nil); err != nil {
		t.Fatalf("add: %v", err)
	}
	entries := feedEntries(t, f)
	last := entries[len(entries)-1]
	if last.Key != 9 || last.Val != 105 {
		t.Fatalf("add entry = %+v, want absolute post-value 105", last)
	}
}

func TestFeedTapDeleteTombstone(t *testing.T) {
	_, f, ex := feedSystem(t)
	_ = ex.ExecBatch([]kv.Op{{Kind: kv.OpPut, Key: 3, Val: 30}}, nil)
	_ = ex.ExecBatch([]kv.Op{{Kind: kv.OpDelete, Key: 3}}, nil)
	entries := feedEntries(t, f)
	last := entries[len(entries)-1]
	if last.Key != 3 || !last.Del {
		t.Fatalf("delete entry = %+v, want tombstone", last)
	}
}

func TestFeedTapReadOnlyPublishesNothing(t *testing.T) {
	_, f, ex := feedSystem(t)
	res := make([]kv.Result, 1)
	if err := ex.ExecBatch([]kv.Op{{Kind: kv.OpGet, Key: 42}}, res); err != nil {
		t.Fatalf("get: %v", err)
	}
	if st := f.Stats(); st.Drawn != 0 || st.Entries != 0 {
		t.Fatalf("read-only batch touched feed: %+v", st)
	}
}

func TestFeedTapGroupFallsBackToPerMember(t *testing.T) {
	ks, f, ex := feedSystem(t)
	_ = ks
	gx, ok := ex.(kv.GroupExecutor)
	if !ok {
		t.Fatal("executor not a GroupExecutor")
	}
	batches := []kv.Batch{
		{Ops: []kv.Op{{Kind: kv.OpPut, Key: 11, Val: 1}}},
		{Ops: []kv.Op{{Kind: kv.OpPut, Key: 12, Val: 2}}},
		{Ops: []kv.Op{{Kind: kv.OpPut, Key: 13, Val: 3}}},
	}
	gx.ExecGroup(batches, nil)
	entries := feedEntries(t, f)
	if len(entries) != 3 {
		t.Fatalf("entries = %v, want all 3 group members", entries)
	}
	// Each member committed under its own ticket (per-member fallback).
	seen := map[uint64]bool{}
	for _, e := range entries {
		seen[e.TxID] = true
	}
	if len(seen) != 3 {
		t.Fatalf("group members shared tickets: %v", entries)
	}
	if st := f.Stats(); st.Pending != 0 {
		t.Fatalf("feed stalled with pending tickets: %+v", st)
	}
}

// TestFeedTapReplayConvergence is the end-to-end correctness claim: replay
// a fuzzy snapshot + feed suffix into a fresh map and diff against the
// store's final state.
func TestFeedTapReplayConvergence(t *testing.T) {
	ks, f, ex := feedSystem(t)
	// A write mix with overwrites, deletes and adds.
	for i := 0; i < 400; i++ {
		k := uint64(i % 64)
		var op kv.Op
		switch i % 5 {
		case 0, 1:
			op = kv.Op{Kind: kv.OpPut, Key: k, Val: uint64(i)}
		case 2:
			op = kv.Op{Kind: kv.OpAdd, Key: k, Val: 3}
		case 3:
			op = kv.Op{Kind: kv.OpDelete, Key: k}
		case 4:
			op = kv.Op{Kind: kv.OpPut, Key: k + 1000, Val: uint64(i)}
		}
		if err := ex.ExecBatch([]kv.Op{op}, nil); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}

	// Fuzzy-snapshot protocol: record heads BEFORE scanning state.
	heads := f.Heads()
	replica := map[uint64]uint64{}
	ks.StateSnapshot(func(key, val uint64) bool {
		replica[key] = val
		return true
	})
	// Replay each shard from head+1 (last-writer-wins; absolute values).
	buf := make([]cdc.Entry, 64)
	for s := 0; s < f.ShardCount(); s++ {
		from := heads[s] + 1
		for {
			got, err := f.ReadFrom(s, from, buf)
			if err != nil {
				t.Fatalf("replay shard %d: %v", s, err)
			}
			if len(got) == 0 {
				break
			}
			for _, e := range got {
				if e.Del {
					delete(replica, e.Key)
				} else {
					replica[e.Key] = e.Val
				}
			}
			from = got[len(got)-1].Seq + 1
		}
	}

	leader := map[uint64]uint64{}
	ks.StateSnapshot(func(key, val uint64) bool {
		leader[key] = val
		return true
	})
	for k, v := range leader {
		if rv, ok := replica[k]; !ok || rv != v {
			t.Fatalf("replica diverges at key %d: leader %d, replica %d (present=%v)", k, v, rv, ok)
		}
	}
	for k := range replica {
		if _, ok := leader[k]; !ok {
			t.Fatalf("replica leaked key %d", k)
		}
	}
}
