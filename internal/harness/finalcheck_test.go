package harness

import (
	"sync"
	"testing"
	"time"
)

// tornMapSystem is a locked-map System + Snapshotter test double whose
// workers can tear transfer transactions: the second leg (the last insert
// of the two-key read-read-write-write shape) is silently dropped, so the
// money leaves one account without arriving at the other. It proves the
// final-state verifier catches torn cross-shard transfers rather than
// vacuously reporting zero.
type tornMapSystem struct {
	mu   sync.Mutex
	m    map[uint64]uint64
	torn bool
}

func newTornMapSystem(torn bool) *tornMapSystem {
	return &tornMapSystem{m: make(map[uint64]uint64), torn: torn}
}

func (s *tornMapSystem) Name() string { return "torn-map" }
func (s *tornMapSystem) Preload(keys []uint64) {
	for _, k := range keys {
		s.m[k] = k
	}
}
func (s *tornMapSystem) Start() (stop func()) { return func() {} }

func (s *tornMapSystem) StateSnapshot(fn func(key, val uint64) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.m {
		if !fn(k, v) {
			return
		}
	}
}

type tornMapWorker struct{ s *tornMapSystem }

func (s *tornMapSystem) NewWorker() Worker { return &tornMapWorker{s} }

func (w *tornMapWorker) Do(ops []Op) {
	// The transfer shape is get A, get B, insert A, insert B; tearing drops
	// the final insert.
	if w.s.torn && len(ops) == 4 && ops[2].Kind == OpInsert && ops[3].Kind == OpInsert {
		ops = ops[:3]
	}
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			w.s.m[op.Key] = op.Val
		case OpRemove:
			delete(w.s.m, op.Key)
		}
	}
}

func tornTransferScenario() Scenario {
	return Scenario{
		Name: "torn-transfer", Dist: Dist{Kind: DistUniform}, VerifyFinal: true,
		Phases: []Phase{{Name: "transfer", Weight: 1, Measure: true, Mix: Mix{Transfer: 1}}},
	}
}

// TestFinalCheckDetectsTornTransfer seeds the torn-transfer fault and
// checks the VerifyFinal machinery reports it as state divergence: the
// second leg's account still carries its old value (mismatched) or never
// appeared (missing).
func TestFinalCheckDetectsTornTransfer(t *testing.T) {
	res := RunScenario(newTornMapSystem(true), tornTransferScenario(), EngineConfig{
		Threads: 2, Duration: 60 * time.Millisecond,
		KeyRange: 1 << 10, Preload: 1 << 8, Seed: 13,
	})
	fc := res.FinalCheck
	if fc == nil || !fc.Checked {
		t.Fatalf("no final check: %+v", fc)
	}
	if fc.Violations() == 0 {
		t.Fatal("torn transfers verified clean")
	}
	if fc.Missing+fc.Mismatched == 0 {
		t.Fatalf("torn second leg not reported as missing/mismatched: %+v", fc)
	}
}

// TestFinalCheckCleanOnHonestTransfers is the control: the same double
// applying every op verifies clean under the identical workload.
func TestFinalCheckCleanOnHonestTransfers(t *testing.T) {
	res := RunScenario(newTornMapSystem(false), tornTransferScenario(), EngineConfig{
		Threads: 2, Duration: 60 * time.Millisecond,
		KeyRange: 1 << 10, Preload: 1 << 8, Seed: 13,
	})
	fc := res.FinalCheck
	if fc == nil || !fc.Checked {
		t.Fatalf("no final check: %+v", fc)
	}
	if v := fc.Violations(); v != 0 {
		t.Fatalf("honest transfers reported %d violations (missing=%d mismatched=%d leaked=%d)",
			v, fc.Missing, fc.Mismatched, fc.Leaked)
	}
	if fc.ModelEntries == 0 {
		t.Fatal("model is empty")
	}
}
