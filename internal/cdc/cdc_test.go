package cdc

import (
	"sync"
	"testing"
)

func readAll(t *testing.T, f *Feed, shard int, from uint64) []Entry {
	t.Helper()
	var out []Entry
	buf := make([]Entry, 4)
	for {
		got, err := f.ReadFrom(shard, from, buf)
		if err != nil {
			t.Fatalf("ReadFrom(%d, %d): %v", shard, from, err)
		}
		if len(got) == 0 {
			return out
		}
		out = append(out, got...)
		from = got[len(got)-1].Seq + 1
	}
}

func TestFeedOrderAndSeqs(t *testing.T) {
	f := New(2, 8, nil)
	t1 := f.DrawTicket()
	t2 := f.DrawTicket()
	if t1 != 1 || t2 != 2 {
		t.Fatalf("tickets = %d, %d, want 1, 2", t1, t2)
	}

	// Publish out of order: t2 first must park until t1 settles.
	f.Publish(t2, []Write{{Key: 2, Val: 20}, {Key: 4, Val: 40}})
	if got := readAll(t, f, 0, 1); len(got) != 0 {
		t.Fatalf("shard 0 admitted %v before ticket 1 settled", got)
	}
	f.Publish(t1, []Write{{Key: 0, Val: 10}, {Key: 3, Val: 30}})

	s0 := readAll(t, f, 0, 1)
	if len(s0) != 3 {
		t.Fatalf("shard 0 entries = %v, want 3", s0)
	}
	// Ticket order on the shard: t1's keys 0 then t2's keys 2, 4.
	wantKeys := []uint64{0, 2, 4}
	wantTx := []uint64{1, 2, 2}
	for i, e := range s0 {
		if e.Seq != uint64(i+1) {
			t.Errorf("entry %d seq = %d, want dense %d", i, e.Seq, i+1)
		}
		if e.Key != wantKeys[i] || e.TxID != wantTx[i] {
			t.Errorf("entry %d = %+v, want key %d txid %d", i, e, wantKeys[i], wantTx[i])
		}
	}
	s1 := readAll(t, f, 1, 1)
	if len(s1) != 1 || s1[0].Key != 3 || s1[0].Seq != 1 {
		t.Fatalf("shard 1 entries = %v, want key 3 at seq 1", s1)
	}
}

func TestFeedCancelFillsHole(t *testing.T) {
	f := New(1, 8, nil)
	t1 := f.DrawTicket()
	t2 := f.DrawTicket()
	f.Publish(t2, []Write{{Key: 7, Val: 70}})
	if got := readAll(t, f, 0, 1); len(got) != 0 {
		t.Fatalf("admitted %v across unsettled hole", got)
	}
	f.CancelTicket(t1)
	got := readAll(t, f, 0, 1)
	if len(got) != 1 || got[0].Key != 7 || got[0].TxID != t2 {
		t.Fatalf("after cancel got %v, want key 7 from ticket %d", got, t2)
	}
	st := f.Stats()
	if st.Cancelled != 1 || st.Published != 1 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFeedTombstoneAndAbsoluteValues(t *testing.T) {
	f := New(1, 8, nil)
	ta := f.DrawTicket()
	f.Publish(ta, []Write{{Key: 5, Val: 50}, {Key: 5, Del: true}})
	got := readAll(t, f, 0, 1)
	if len(got) != 2 {
		t.Fatalf("entries = %v", got)
	}
	if got[0].Del || got[0].Val != 50 {
		t.Fatalf("first entry = %+v, want val 50", got[0])
	}
	if !got[1].Del {
		t.Fatalf("second entry = %+v, want tombstone", got[1])
	}
}

func TestFeedCompaction(t *testing.T) {
	const cap = 4
	f := New(1, cap, nil)
	for i := 0; i < 10; i++ {
		tk := f.DrawTicket()
		f.Publish(tk, []Write{{Key: uint64(i), Val: uint64(i)}})
	}
	if head := f.Head(0); head != 10 {
		t.Fatalf("head = %d, want 10", head)
	}
	// Oldest retained is 10-4+1 = 7; reading from 1 must demand a snapshot.
	if _, err := f.ReadFrom(0, 1, make([]Entry, 4)); err != ErrCompacted {
		t.Fatalf("ReadFrom(1) err = %v, want ErrCompacted", err)
	}
	if _, err := f.ReadFrom(0, 6, make([]Entry, 4)); err != ErrCompacted {
		t.Fatalf("ReadFrom(6) err = %v, want ErrCompacted", err)
	}
	got, err := f.ReadFrom(0, 7, make([]Entry, 8))
	if err != nil || len(got) != 4 {
		t.Fatalf("ReadFrom(7) = %v, %v, want 4 entries", got, err)
	}
	for i, e := range got {
		if e.Seq != uint64(7+i) || e.Key != uint64(6+i) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	// Beyond head: caught up, empty, no error.
	got, err = f.ReadFrom(0, 11, make([]Entry, 4))
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadFrom(11) = %v, %v, want empty", got, err)
	}
	if st := f.Stats(); st.Compacted != 6 {
		t.Fatalf("compacted = %d, want 6", st.Compacted)
	}
}

func TestFeedNotify(t *testing.T) {
	f := New(1, 8, nil)
	ch := f.Notify()
	select {
	case <-ch:
		t.Fatal("notify fired with no admission")
	default:
	}
	tk := f.DrawTicket()
	f.Publish(tk, []Write{{Key: 1, Val: 1}})
	select {
	case <-ch:
	default:
		t.Fatal("notify did not fire on admission")
	}
	// Cancel-only settling admits nothing and must not wake readers.
	ch = f.Notify()
	f.CancelTicket(f.DrawTicket())
	select {
	case <-ch:
		t.Fatal("notify fired on cancel-only drain")
	default:
	}
}

func TestFeedConcurrent(t *testing.T) {
	const (
		writers = 8
		perW    = 500
	)
	f := New(4, writers*perW+1, nil)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				tk := f.DrawTicket()
				if i%5 == 4 {
					f.CancelTicket(tk)
					continue
				}
				f.Publish(tk, []Write{{Key: tk, Val: tk * 10}})
			}
		}(w)
	}
	wg.Wait()

	st := f.Stats()
	if st.Pending != 0 {
		t.Fatalf("pending = %d after all settled", st.Pending)
	}
	wantPub := uint64(writers * perW * 4 / 5)
	if st.Published != wantPub || st.Entries != wantPub {
		t.Fatalf("published = %d entries = %d, want %d", st.Published, st.Entries, wantPub)
	}
	total := 0
	for s := 0; s < f.ShardCount(); s++ {
		entries := readAll(t, f, s, 1)
		var lastTx uint64
		for _, e := range entries {
			if e.TxID <= lastTx {
				t.Fatalf("shard %d ticket order violated: %d after %d", s, e.TxID, lastTx)
			}
			lastTx = e.TxID
			if e.Val != e.Key*10 {
				t.Fatalf("shard %d entry %+v corrupt", s, e)
			}
		}
		total += len(entries)
	}
	if uint64(total) != wantPub {
		t.Fatalf("total entries read = %d, want %d", total, wantPub)
	}
}

func TestFeedReadFromNilBuf(t *testing.T) {
	// A nil (zero-capacity) buffer must not read as a permanently empty
	// feed — ReadFrom allocates a default-sized batch instead. Regression:
	// callers passing nil silently saw zero entries forever.
	f := New(1, 8, nil)
	t1 := f.DrawTicket()
	f.Publish(t1, []Write{{Key: 1, Val: 10}, {Key: 2, Val: 20}})
	got, err := f.ReadFrom(0, 1, nil)
	if err != nil {
		t.Fatalf("ReadFrom(nil buf): %v", err)
	}
	if len(got) != 2 || got[0].Key != 1 || got[1].Key != 2 {
		t.Fatalf("ReadFrom(nil buf) = %v, want keys 1, 2", got)
	}
}
