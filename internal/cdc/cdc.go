// Package cdc is the commit-ordered change feed of the replication
// subsystem: a per-shard, sequence-numbered stream of committed writes,
// tapped at the store's commit path through the core's ticket hook
// (core.CommitTicketer) and consumed by followers (internal/replica) and
// the service layer's watch endpoint (GET /v1/watch).
//
// Ordering. Writing transactions draw dense tickets strictly before
// their commit point (see internal/core ticket.go for the argument that
// ticket order is a legal serialization order). Owners publish each
// committed ticket's writes; aborted draws are cancelled. The feed admits
// tickets in strictly contiguous order — a reorder buffer holds
// early-arriving publications until every lower ticket has been
// published or cancelled — so entries reach the per-shard rings in a
// global order that respects every write-write and write-read
// dependency. Within a shard, entries get dense per-shard sequence
// numbers starting at 1; per-key order is preserved exactly (a key
// always maps to the same shard), which is what replay correctness needs.
//
// Values are absolute. An entry carries the post-state of its key (the
// value written, or a tombstone), never a delta: replay is idempotent
// and last-writer-wins, so a follower can bootstrap from a fuzzy
// snapshot taken at shard head S and replay from S+1 — entries replayed
// twice, or already folded into the snapshot, converge to the same state.
//
// Bounded memory. Each shard keeps the last ringCap entries. A reader
// whose cursor has fallen off the ring gets ErrCompacted and must
// re-bootstrap from a snapshot — the overflow-to-snapshot contract the
// service layer maps to HTTP 410.
package cdc

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Entry is one committed write in a shard's feed: dense per-shard
// sequence number, the key's absolute post-state (Val, or Del for a
// tombstone), and the commit ticket of the transaction that wrote it
// (TxID — shared by all writes of one transaction, globally ordered).
type Entry struct {
	Seq  uint64 `json:"seq"`
	Key  uint64 `json:"key"`
	Val  uint64 `json:"val"`
	Del  bool   `json:"del,omitempty"`
	TxID uint64 `json:"txid"`
}

// Write is one key's post-state in a transaction's publication, before
// shard routing and sequence assignment.
type Write struct {
	Key uint64
	Val uint64
	Del bool
}

// ErrCompacted is returned by ReadFrom when the requested sequence has
// been overwritten in the bounded ring: the reader is too far behind and
// must re-bootstrap from a snapshot, then resume from the snapshot's
// head (overflow-to-snapshot semantics).
var ErrCompacted = errors.New("cdc: sequence compacted, re-bootstrap from snapshot")

// Stats is a snapshot of the feed's counters.
type Stats struct {
	Drawn     uint64 // tickets drawn
	Published uint64 // tickets published with writes
	Cancelled uint64 // tickets cancelled (aborted draws)
	Entries   uint64 // entries admitted across all shards
	Compacted uint64 // entries dropped off ring tails
	Pending   int    // publications parked in the reorder buffer
}

// pendingTx is one settled-but-not-yet-admitted ticket in the reorder
// buffer: its writes, or a cancellation marker.
type pendingTx struct {
	writes    []Write
	cancelled bool
}

// ring is one shard's bounded entry buffer. Entries seq s lives at
// buf[(s-1) % cap] while head-s < len: head is the last assigned seq,
// and the oldest retained seq is head-count+1.
type ring struct {
	buf   []Entry
	head  uint64 // last assigned seq (0 = none yet)
	count int    // live entries, <= cap(buf)
}

func (r *ring) push(e Entry) (compacted bool) {
	r.head++
	e.Seq = r.head
	r.buf[(r.head-1)%uint64(cap(r.buf))] = e
	if r.count < cap(r.buf) {
		r.count++
		return false
	}
	return true // overwrote the oldest retained entry
}

// oldest returns the lowest retained seq (head+1 when empty: nothing
// retained, but nothing missed either).
func (r *ring) oldest() uint64 { return r.head - uint64(r.count) + 1 }

// Feed is the commit-ordered change feed over one store: it implements
// core.CommitTicketer (attach with Tx.SetCommitTicketer, typically via
// the executor's AttachFeed seam), collects each committed transaction's
// writes through Publish, and serves them per shard through ReadFrom.
// All methods are safe for concurrent use.
type Feed struct {
	shardOf func(key uint64) int
	next    atomic.Uint64 // last ticket drawn

	mu        sync.Mutex
	watermark uint64 // all tickets <= watermark admitted or skipped
	pending   map[uint64]pendingTx
	shards    []ring
	notify    chan struct{} // closed and replaced on every admission
	closed    bool

	published atomic.Uint64
	cancelled atomic.Uint64
	entries   atomic.Uint64
	compacted atomic.Uint64
}

// New creates a feed over nshards per-shard streams of ringCap retained
// entries each. shardOf routes keys to streams; it must be deterministic
// (per-key order is only preserved within a stream). nil shardOf routes
// key % nshards.
func New(nshards, ringCap int, shardOf func(key uint64) int) *Feed {
	if nshards <= 0 {
		nshards = 1
	}
	if ringCap <= 0 {
		ringCap = 1 << 14
	}
	if shardOf == nil {
		n := uint64(nshards)
		shardOf = func(key uint64) int { return int(key % n) }
	}
	f := &Feed{
		shardOf: shardOf,
		pending: make(map[uint64]pendingTx),
		shards:  make([]ring, nshards),
		notify:  make(chan struct{}),
	}
	for i := range f.shards {
		f.shards[i].buf = make([]Entry, ringCap)
	}
	return f
}

// ShardCount is the number of per-shard streams.
func (f *Feed) ShardCount() int { return len(f.shards) }

// ShardOf is the feed's key→stream routing, exported so snapshot
// producers can filter state by the same partition the feed uses.
func (f *Feed) ShardOf(key uint64) int { return f.shardOf(key) }

// DrawTicket implements core.CommitTicketer: one atomic increment, the
// whole pre-visibility commit-path cost of the feed.
func (f *Feed) DrawTicket() uint64 { return f.next.Add(1) }

// CancelTicket implements core.CommitTicketer: the ticket's transaction
// aborted after drawing; mark the hole so the contiguity drain can pass.
func (f *Feed) CancelTicket(t uint64) {
	f.cancelled.Add(1)
	f.mu.Lock()
	f.pending[t] = pendingTx{cancelled: true}
	f.drainLocked()
	f.mu.Unlock()
}

// Publish hands a committed ticket's writes to the feed, in transaction
// (op) order. writes is copied; the caller's slice is reusable on
// return. Publishing admits the ticket once every lower ticket has
// settled — until then it parks in the reorder buffer.
func (f *Feed) Publish(ticket uint64, writes []Write) {
	f.published.Add(1)
	cp := make([]Write, len(writes))
	copy(cp, writes)
	f.mu.Lock()
	f.pending[ticket] = pendingTx{writes: cp}
	f.drainLocked()
	f.mu.Unlock()
}

// drainLocked advances the watermark over every contiguously settled
// ticket, appending published writes to their shards' rings and skipping
// cancelled holes, then wakes waiting readers if anything was admitted.
func (f *Feed) drainLocked() {
	admitted := false
	for {
		p, ok := f.pending[f.watermark+1]
		if !ok {
			break
		}
		f.watermark++
		delete(f.pending, f.watermark)
		if p.cancelled {
			continue
		}
		for _, w := range p.writes {
			r := &f.shards[f.shardOf(w.Key)]
			if r.push(Entry{Key: w.Key, Val: w.Val, Del: w.Del, TxID: f.watermark}) {
				f.compacted.Add(1)
			}
			f.entries.Add(1)
		}
		admitted = true
	}
	if admitted {
		close(f.notify)
		f.notify = make(chan struct{})
	}
}

// Head returns the last assigned sequence of shard (0 when none).
func (f *Feed) Head(shard int) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shards[shard].head
}

// Heads returns every shard's head sequence, index-aligned with shard
// numbers — the fuzzy-snapshot anchor: read Heads, then scan state, and
// a follower replaying each shard from heads[i]+1 converges.
func (f *Feed) Heads() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]uint64, len(f.shards))
	for i := range f.shards {
		out[i] = f.shards[i].head
	}
	return out
}

// readChunkDefault sizes the batch when ReadFrom is handed a zero-capacity
// buffer.
const readChunkDefault = 256

// ReadFrom copies into buf up to cap(buf) entries of shard with
// Seq >= from, in sequence order, returning the filled prefix (a
// zero-capacity buf gets a fresh readChunkDefault-sized one — a caller
// passing nil must still see entries, not a permanently empty result).
// An empty result means the reader is caught up (wait on Notify).
// ErrCompacted means from has fallen off the ring: re-bootstrap from a
// snapshot.
func (f *Feed) ReadFrom(shard int, from uint64, buf []Entry) ([]Entry, error) {
	if from == 0 {
		from = 1
	}
	if cap(buf) == 0 {
		buf = make([]Entry, 0, readChunkDefault)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r := &f.shards[shard]
	if from > r.head {
		return buf[:0], nil
	}
	if from < r.oldest() {
		return nil, ErrCompacted
	}
	n := 0
	for s := from; s <= r.head && n < cap(buf); s++ {
		buf = buf[:n+1]
		buf[n] = r.buf[(s-1)%uint64(cap(r.buf))]
		n++
	}
	return buf[:n], nil
}

// Notify returns a channel closed at the next admission (any shard); a
// caught-up reader selects on it alongside its own cancellation. Each
// admission replaces the channel, so re-arm by calling again after every
// wake.
func (f *Feed) Notify() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.notify
}

// Close wakes all waiting readers; the feed remains readable (drained
// rings still serve) but Closed reports true so streamers can finish.
func (f *Feed) Close() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		close(f.notify)
		f.notify = make(chan struct{})
	}
	f.mu.Unlock()
}

// Closed reports whether Close was called.
func (f *Feed) Closed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// Stats snapshots the feed's counters.
func (f *Feed) Stats() Stats {
	f.mu.Lock()
	pending := len(f.pending)
	f.mu.Unlock()
	return Stats{
		Drawn:     f.next.Load(),
		Published: f.published.Load(),
		Cancelled: f.cancelled.Load(),
		Entries:   f.entries.Load(),
		Compacted: f.compacted.Load(),
		Pending:   pending,
	}
}
