// Package service is medleyd's engine: a network service layer that turns
// the NBTC transactional store into a multi-key request/response system.
//
// The pipeline is txpool → tick → workers. Requests land in a bounded
// transaction pool (one channel: the bound is the admission control, the
// channel order is the FIFO fairness guarantee). A tick loop drains the
// pool in batches — coalescing whatever arrived during the tick into one
// scheduling decision — and splits each batch into contiguous chunks
// executed by persistent worker goroutines, each request as its own
// atomic transaction with a per-request promise carrying the result back
// to the submitting handler. When execution falls behind the arrival
// rate the pool fills and Submit sheds instead of queueing without bound:
// overload surfaces as fast 429s, not as collapse.
//
// The layer deliberately adds no second concurrency control: atomicity
// and strict serializability come entirely from the store's transactions
// (internal/core); the service only decides when work runs and how much
// of it is admitted.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/cdc"
	"medley/internal/harness"
	"medley/internal/kv"
)

// Backend is the store seam: what the service needs from a system under
// it. *harness.KVSystem satisfies it structurally — medleyd is the
// benchmark registry's systems behind a listener.
type Backend interface {
	Name() string
	Preload(keys []uint64)
	// Start launches background maintenance and returns its stop.
	Start() func()
	// NewExecutor hands out a per-goroutine batch executor; the service
	// calls it on each worker goroutine (executors are goroutine-bound).
	NewExecutor() kv.Executor
}

// ErrShed is returned by Submit when the txpool is full: the request was
// refused at admission, nothing executed. HTTP maps it to 429.
var ErrShed = errors.New("service: overloaded, request shed")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: closed")

// ErrExpired is returned by Submit when the request's deadline passed
// before execution began: the request was dropped at admission, in the
// tick loop, or by the worker — never executed, so it is always safe to
// retry. HTTP maps it to 504.
var ErrExpired = errors.New("service: deadline expired before execution")

// Config sizes the pipeline. Zero values take defaults.
type Config struct {
	// PoolSize bounds the txpool; arrivals beyond it are shed (default
	// 4096).
	PoolSize int
	// Tick is the batch period: how long arrivals coalesce before a
	// drain (default 1ms). Shorter ticks trade batching efficiency for
	// lower queueing latency.
	Tick time.Duration
	// MaxBatch caps how many requests one tick drains (default
	// PoolSize). A tick that overruns simply delays the next: ticks
	// never overlap.
	MaxBatch int
	// Workers is the number of executor goroutines a tick's batch is
	// split across (default GOMAXPROCS).
	Workers int
	// DedupWindow bounds the completed-request window that answers
	// idempotent retries (requests carrying an ID): the outcomes of the
	// last DedupWindow ID-carrying requests are remembered, so a retry
	// inside the window returns the original results instead of
	// re-executing. 0 disables deduplication (retries re-execute).
	DedupWindow int
	// Feed, when non-nil, is attached to every worker executor: each
	// committed write batch publishes its absolute post-states to the
	// feed in commit-ticket order, and the HTTP layer serves it through
	// GET /v1/watch and GET /v1/snapshot. Attaching a feed disables
	// group-commit merging at the executor (per-member commits keep the
	// ticket space dense; see kvWorker.ExecGroup). nil = no replication.
	Feed *cdc.Feed
}

// feedAttacher is the executor seam a feed attaches through;
// *harness.kvWorker implements it.
type feedAttacher interface {
	SetChangeFeed(*cdc.Feed) bool
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 4096
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = c.PoolSize
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// request is one admitted transaction: its operations, the caller's
// result slice, and the promise the executing worker fulfills. deadline
// (when non-zero) is checked at admission, at tick drain, and once more
// by the worker just before execution; ent (when non-nil) is the
// request's claim in the dedup window, settled with the outcome.
type request struct {
	ops      []kv.Op
	res      []kv.Result
	done     chan error
	deadline time.Time
	ent      *dedupEntry
}

// expired reports whether the request's deadline passed as of now.
func (r *request) expired(now time.Time) bool {
	return !r.deadline.IsZero() && now.After(r.deadline)
}

// chunk is one worker's contiguous slice of a tick's batch.
type chunk struct {
	reqs []*request
	wg   *sync.WaitGroup
}

// Service is the running pipeline. Create with New, stop with Close.
type Service struct {
	be  Backend
	cfg Config

	pool    chan *request
	workers []chan chunk
	stopCh  chan struct{}
	loopWG  sync.WaitGroup
	workWG  sync.WaitGroup
	stopBE  func()
	window  *dedupWindow // nil when deduplication is disabled

	// mu gates admission against Close: Submit holds the read side across
	// the closed check and the pool send, Close takes the write side to
	// flip closed. After Close's critical section, no Submit can still be
	// between its check and its send, so the tick loop's final drains see
	// every admitted request — no promise is left unresolved.
	mu     sync.RWMutex
	closed bool

	accepted  atomic.Uint64 // requests admitted to the pool
	shed      atomic.Uint64 // requests refused at admission
	executed  atomic.Uint64 // requests executed successfully
	errored   atomic.Uint64 // requests whose execution failed
	expired   atomic.Uint64 // requests dropped, unexecuted, at their deadline
	dedupHits atomic.Uint64 // retries answered from the dedup window
	ticks     atomic.Uint64 // ticks that drained at least one request
	batches   atomic.Uint64 // batches dispatched (== non-empty ticks)
	batched   atomic.Uint64 // requests dispatched inside batches
	grouped   atomic.Uint64 // requests handed to the group-commit path
}

// New builds and starts the pipeline over be: backend maintenance, the
// worker executors, and the tick loop.
func New(be Backend, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		be:     be,
		cfg:    cfg,
		pool:   make(chan *request, cfg.PoolSize),
		stopCh: make(chan struct{}),
		window: newDedupWindow(cfg.DedupWindow),
	}
	s.stopBE = be.Start()
	s.workers = make([]chan chunk, cfg.Workers)
	for i := range s.workers {
		ch := make(chan chunk, 1)
		s.workers[i] = ch
		s.workWG.Add(1)
		go s.worker(ch)
	}
	s.loopWG.Add(1)
	go s.tickLoop()
	return s
}

// Backend returns the system under the service.
func (s *Service) Backend() Backend { return s.be }

// Config returns the resolved (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

// Submit runs ops as one atomic transaction through the pipeline,
// filling res when non-nil (len(res) must equal len(ops) then), and
// blocks until the transaction executed or was refused. It is safe for
// concurrent use. Admission is instantaneous: a full pool sheds
// immediately with ErrShed rather than queueing the caller.
func (s *Service) Submit(ops []kv.Op, res []kv.Result) error {
	return s.SubmitCtx(context.Background(), "", ops, res)
}

// SubmitCtx is Submit with the fault-tolerance contract attached.
//
// ctx's deadline, when set, bounds the request end to end: a request
// whose deadline passes before execution begins is dropped — at
// admission, at tick drain, or by the worker immediately before the
// transaction would start — and answered with ErrExpired. Expired
// requests are never executed, so retrying one is always safe. A request
// whose execution has already started runs to completion regardless
// (the store's transactions are not cancellable mid-flight).
//
// id, when non-empty, makes the request idempotent across retries: the
// outcome is remembered in the dedup window (Config.DedupWindow), and a
// second SubmitCtx with the same id inside the window returns the
// original results without re-executing — including when the retry races
// the original in flight, in which case it parks until the original
// settles. With id == "" or the window disabled, every call executes.
func (s *Service) SubmitCtx(ctx context.Context, id string, ops []kv.Op, res []kv.Result) error {
	deadline, _ := ctx.Deadline()
	now := time.Now()
	if !deadline.IsZero() && now.After(deadline) {
		s.expired.Add(1)
		return ErrExpired
	}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	var ent *dedupEntry
	if id != "" && s.window != nil {
		mine, prior := s.window.claim(id)
		if prior != nil {
			stop := s.stopCh
			s.mu.RUnlock()
			hit, err := prior.await(res, stop, deadline)
			if hit {
				s.dedupHits.Add(1)
			} else if errors.Is(err, ErrExpired) {
				s.expired.Add(1)
			}
			return err
		}
		ent = mine
	}
	req := &request{ops: ops, res: res, done: make(chan error, 1), deadline: deadline, ent: ent}
	select {
	case s.pool <- req:
		s.accepted.Add(1)
	default:
		s.shed.Add(1)
		if ent != nil {
			s.window.abandon(ent, ErrShed)
		}
		s.mu.RUnlock()
		return ErrShed
	}
	s.mu.RUnlock()
	return <-req.done
}

// finishExecuted settles a request that ran: counters, dedup window,
// promise.
func (s *Service) finishExecuted(r *request, err error) {
	if err != nil {
		s.errored.Add(1)
	} else {
		s.executed.Add(1)
	}
	if r.ent != nil {
		s.window.complete(r.ent, r.res, err)
	}
	r.done <- err
}

// finishExpired settles a request dropped, unexecuted, at its deadline.
// The dedup claim is abandoned — nothing executed, so a retry with the
// same ID must claim fresh and actually run.
func (s *Service) finishExpired(r *request) {
	s.expired.Add(1)
	if r.ent != nil {
		s.window.abandon(r.ent, ErrExpired)
	}
	r.done <- ErrExpired
}

// tickLoop drains the pool once per tick. Dispatch is synchronous — the
// loop waits for the batch to finish before the next drain — so a tick's
// batch is bounded and execution backpressure propagates to the pool
// (and from there to admission) instead of to an unbounded work queue.
func (s *Service) tickLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(s.cfg.Tick)
	defer t.Stop()
	batch := make([]*request, 0, s.cfg.MaxBatch)
	for {
		select {
		case <-s.stopCh:
			// Final drains: closed is already set, so no new request can
			// be admitted; loop until the pool is empty so every admitted
			// request is answered.
			for s.drainTick(batch[:0]) > 0 {
			}
			for _, ch := range s.workers {
				close(ch)
			}
			return
		case <-t.C:
			s.drainTick(batch[:0])
		}
	}
}

// drainTick drains up to MaxBatch pooled requests and executes them,
// returning how many it disposed of (dispatched or expired).
func (s *Service) drainTick(batch []*request) int {
drain:
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r := <-s.pool:
			batch = append(batch, r)
		default:
			break drain
		}
	}
	if len(batch) == 0 {
		return 0
	}
	drained := len(batch)
	// Deadline cull: requests that expired while pooled are answered here
	// and never reach a worker, so a backlogged pool sheds dead work
	// before spending execution capacity on it.
	now := time.Now()
	live := batch[:0]
	for _, r := range batch {
		if r.expired(now) {
			s.finishExpired(r)
			continue
		}
		live = append(live, r)
	}
	batch = live
	if len(batch) == 0 {
		return drained
	}
	s.ticks.Add(1)
	s.batches.Add(1)
	s.batched.Add(uint64(len(batch)))
	// Contiguous chunks, round-robin over workers: request order within a
	// chunk is pool (FIFO) order, so single-worker configurations preserve
	// submission order end to end.
	var wg sync.WaitGroup
	n := len(s.workers)
	per := (len(batch) + n - 1) / n
	for i := 0; i < len(batch); i += per {
		end := i + per
		if end > len(batch) {
			end = len(batch)
		}
		wg.Add(1)
		s.workers[(i/per)%n] <- chunk{reqs: batch[i:end], wg: &wg}
	}
	wg.Wait()
	return drained
}

// worker executes chunks: one executor, created on this goroutine
// (executors are goroutine-bound), each request its own logical
// transaction. When the executor can group-commit (kv.GroupExecutor, the
// Medley store path), a multi-request chunk is handed over as one group
// so compatible neighbors merge into a single physical commit; outcomes
// are exactly those of the per-request loop.
func (s *Service) worker(ch chan chunk) {
	defer s.workWG.Done()
	ex := s.be.NewExecutor()
	if s.cfg.Feed != nil {
		if fa, ok := ex.(feedAttacher); ok {
			fa.SetChangeFeed(s.cfg.Feed)
		}
	}
	gx, canGroup := ex.(kv.GroupExecutor)
	var batches []kv.Batch
	var errs []error
	var live []*request
	for c := range ch {
		// Last deadline check, immediately before execution: a request can
		// expire between the tick drain and its worker slot, and once the
		// transaction starts it is not cancellable — this is the final
		// point where "expired" can still mean "never executed".
		now := time.Now()
		live = live[:0]
		for _, r := range c.reqs {
			if r.expired(now) {
				s.finishExpired(r)
				continue
			}
			live = append(live, r)
		}
		if len(live) == 0 {
			c.wg.Done()
			continue
		}
		if canGroup && len(live) > 1 {
			batches = batches[:0]
			for _, r := range live {
				batches = append(batches, kv.Batch{Ops: r.ops, Res: r.res})
			}
			if cap(errs) < len(live) {
				errs = make([]error, len(live))
			}
			errs = errs[:len(live)]
			gx.ExecGroup(batches, errs)
			s.grouped.Add(uint64(len(live)))
			for i, r := range live {
				s.finishExecuted(r, errs[i])
			}
			c.wg.Done()
			continue
		}
		for _, r := range live {
			s.finishExecuted(r, ex.ExecBatch(r.ops, r.res))
		}
		c.wg.Done()
	}
}

// RetryAfter estimates how long an overloaded client should wait before
// retrying: the time to drain the current pool occupancy at one MaxBatch
// per tick, clamped to [Tick, 1s]. The HTTP layer sends it with every
// 429 so clients back off proportionally to the actual backlog instead
// of guessing.
func (s *Service) RetryAfter() time.Duration {
	ticks := (len(s.pool) + s.cfg.MaxBatch - 1) / s.cfg.MaxBatch
	if ticks < 1 {
		ticks = 1
	}
	d := time.Duration(ticks) * s.cfg.Tick
	if d > time.Second {
		d = time.Second
	}
	return d
}

// Close drains the pipeline and stops the backend. The drain is
// deterministic: every request admitted before Close executes and gets
// an answer (or ErrExpired at its deadline), and every Submit after it
// gets ErrClosed — the mu write lock below cannot be taken while any
// Submit sits between its closed check and its pool send, so once it is
// held the pool holds the complete set of outstanding requests and the
// tick loop's final drains answer all of them.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopCh)
	s.loopWG.Wait()
	s.workWG.Wait()
	if s.stopBE != nil {
		s.stopBE()
	}
	if s.cfg.Feed != nil {
		// Wake watch streamers so their handlers can return.
		s.cfg.Feed.Close()
	}
}

// MetricsSnapshot exports the pipeline counters, prefixed svc_, merged
// with the backend's own snapshot when it exports one — one endpoint
// serves the whole stack's counters.
func (s *Service) MetricsSnapshot() []harness.Metric {
	out := []harness.Metric{
		{Name: "svc_accepted", Value: s.accepted.Load()},
		{Name: "svc_shed", Value: s.shed.Load()},
		{Name: "svc_executed", Value: s.executed.Load()},
		{Name: "svc_errors", Value: s.errored.Load()},
		{Name: "svc_expired", Value: s.expired.Load()},
		{Name: "svc_dedup_hits", Value: s.dedupHits.Load()},
		{Name: "svc_ticks", Value: s.ticks.Load()},
		{Name: "svc_batches", Value: s.batches.Load()},
		{Name: "svc_batched_txns", Value: s.batched.Load()},
		{Name: "svc_grouped_txns", Value: s.grouped.Load()},
	}
	if w := s.window; w != nil {
		out = append(out,
			harness.Metric{Name: "svc_dedup_claims", Value: w.claims.Load()},
			harness.Metric{Name: "svc_dedup_window_hits", Value: w.hits.Load()},
			harness.Metric{Name: "svc_dedup_abandons", Value: w.abandons.Load()},
			harness.Metric{Name: "svc_dedup_evictions", Value: w.evictions.Load()},
			harness.Metric{Name: "svc_dedup_completes", Value: w.completes.Load()},
		)
	}
	if ms, ok := s.be.(harness.MetricsSnapshotter); ok {
		out = append(out, ms.MetricsSnapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Gauges derives the service-level ratios from the current counters.
func (s *Service) Gauges() []harness.Gauge {
	var out []harness.Gauge
	add := func(name string, num, den uint64) {
		if den > 0 {
			out = append(out, harness.Gauge{Name: name, Value: float64(num) / float64(den)})
		}
	}
	accepted, shed := s.accepted.Load(), s.shed.Load()
	add("svc_shed_rate", shed, accepted+shed)
	add("svc_batch_coalesce", s.batched.Load(), s.batches.Load())
	add("svc_group_share", s.grouped.Load(), s.executed.Load()+s.errored.Load())
	add("svc_expired_share", s.expired.Load(),
		s.executed.Load()+s.errored.Load()+s.expired.Load())
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// validateOps rejects batches the executor cannot run: empty, oversized,
// or containing unknown kinds. Validation happens before admission so a
// malformed request never occupies pool capacity.
func validateOps(ops []kv.Op) error {
	if len(ops) == 0 {
		return fmt.Errorf("empty batch")
	}
	if len(ops) > MaxOpsPerBatch {
		return fmt.Errorf("batch of %d ops exceeds limit %d", len(ops), MaxOpsPerBatch)
	}
	for i, op := range ops {
		switch op.Kind {
		case kv.OpGet, kv.OpPut, kv.OpDelete, kv.OpScan, kv.OpAdd:
		default:
			return fmt.Errorf("op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

// MaxOpsPerBatch bounds one request's operation count (after transfer
// expansion). Transactions are meant to be short (the paper's
// microbenchmarks run 1-10 ops); the bound keeps one request from
// monopolizing a tick.
const MaxOpsPerBatch = 1024
