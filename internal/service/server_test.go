package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"medley/internal/harness"
	"medley/internal/kv"
)

// kvBackend builds a real registry system as a service backend.
func kvBackend(t *testing.T, spec string) Backend {
	t.Helper()
	sys, err := harness.NewSystem(spec, harness.SystemOpts{Buckets: 1 << 10, KeyRange: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	be, ok := sys.(Backend)
	if !ok {
		t.Fatalf("system %q is not a service backend", spec)
	}
	return be
}

func postBatch(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestHTTPTransferAtomicity is the wire-level torn-transfer check: writer
// clients move money between two accounts with the transfer verb while
// reader clients fetch both balances in one transaction through the HTTP
// driver. Every observed sum must equal the initial total — a single
// deviation means a reader saw a half-applied transfer through the full
// network path (JSON decode, txpool, tick batch, executor).
func TestHTTPTransferAtomicity(t *testing.T) {
	svc := New(kvBackend(t, "medley-hash@2"), Config{Tick: 200 * time.Microsecond, Workers: 4})
	defer svc.Close()
	ts := httptest.NewServer(Handler(svc))
	defer ts.Close()

	const keyA, keyB, initial = 100, 200, 10000
	resp, body := postBatch(t, ts.URL,
		`{"ops":[{"op":"put","key":100,"val":10000},{"op":"put","key":200,"val":10000}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preload: status %d: %s", resp.StatusCode, body)
	}

	const writers, transfers = 4, 200
	var writerWG, readerWG sync.WaitGroup
	errCh := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < transfers; i++ {
				req := `{"ops":[{"op":"transfer","from":100,"to":200,"val":3}]}`
				if (w+i)%2 == 1 {
					req = `{"ops":[{"op":"transfer","from":200,"to":100,"val":3}]}`
				}
				resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(req))
				if err != nil {
					errCh <- err
					return
				}
				var br BatchResponse
				err = json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || err != nil {
					continue // shed under load is fine; atomicity is the readers' claim
				}
				if len(br.Results) != 1 || !br.Results[0].Ok {
					t.Errorf("transfer on existing keys not ok: %+v", br.Results)
					return
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	d := NewHTTPDriver(ts.URL)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			sess, err := d.NewSession()
			if err != nil {
				errCh <- err
				return
			}
			defer sess.Close()
			ops := []kv.Op{{Kind: kv.OpGet, Key: keyA}, {Kind: kv.OpGet, Key: keyB}}
			res := make([]kv.Result, 2)
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch err := sess.Do(ops, res); err {
				case nil:
					if sum := res[0].Val + res[1].Val; sum != 2*initial {
						t.Errorf("torn transfer observed: %d + %d = %d, want %d",
							res[0].Val, res[1].Val, sum, 2*initial)
						return
					}
				case harness.ErrOverload:
					// shed read: retry
				default:
					errCh <- err
					return
				}
			}
		}()
	}

	// Readers observe throughout the writer run, then stop.
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("transport failure: %v", err)
	}
}

// TestHTTPShedMapsTo429AndErrOverload pins the overload path across the
// wire: a full txpool answers 429, and the HTTP driver maps 429 back to
// harness.ErrOverload so open-loop accounting classifies it as shed.
func TestHTTPShedMapsTo429AndErrOverload(t *testing.T) {
	be := &fakeBackend{}
	s := New(be, Config{PoolSize: 1, Tick: time.Hour, Workers: 1})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	// Occupy the only pool slot directly (white-box) so the next wire
	// request must shed.
	blocker := &request{ops: oneOp(1), done: make(chan error, 1)}
	s.pool <- blocker

	resp, body := postBatch(t, ts.URL, `{"ops":[{"op":"get","key":7}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("429 body not an ErrorResponse: %q", body)
	}

	d := NewHTTPDriver(ts.URL)
	sess, err := d.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Do([]kv.Op{{Kind: kv.OpGet, Key: 7}}, nil); err != harness.ErrOverload {
		t.Fatalf("driver err = %v, want harness.ErrOverload", err)
	}
	s.Close() // drains the blocker
	if err := <-blocker.done; err != nil {
		t.Fatalf("blocker lost: %v", err)
	}
}

// TestShedCarriesRetryAfter pins the server half of the backoff hint:
// every 429 carries a Retry-After header derived from the pool backlog —
// fractional seconds, at least one tick, at most a second.
func TestShedCarriesRetryAfter(t *testing.T) {
	s := New(&fakeBackend{}, Config{PoolSize: 1, Tick: time.Hour, Workers: 1})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	blocker := &request{ops: oneOp(1), done: make(chan error, 1)}
	s.pool <- blocker

	resp, body := postBatch(t, ts.URL, `{"ops":[{"op":"get","key":7}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	h := resp.Header.Get("Retry-After")
	if h == "" {
		t.Fatal("429 without Retry-After header")
	}
	secs, err := strconv.ParseFloat(h, 64)
	if err != nil {
		t.Fatalf("Retry-After %q not fractional seconds: %v", h, err)
	}
	if secs <= 0 || secs > 1 {
		t.Errorf("Retry-After = %vs, want in (0, 1]", secs)
	}
	s.Close()
	<-blocker.done
}

// TestHTTPDriverHonorsRetryAfter pins the client half: a 429 with a
// Retry-After hint is retried after the advertised wait, a persistent
// 429 keeps getting honored until the cumulative waits exhaust
// RetryAfterBudget and then classifies as harness.ErrOverload, and a
// 429 without the hint sheds immediately.
func TestHTTPDriverHonorsRetryAfter(t *testing.T) {
	var attempts atomic.Int64
	shed := func(w http.ResponseWriter, hint string) {
		if hint != "" {
			w.Header().Set("Retry-After", hint)
		}
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"overloaded"}`))
	}
	mode := "recover" // recover | always | bare
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		switch {
		case mode == "recover" && n > 1:
			_, _ = w.Write([]byte(`{"results":[{"val":7,"ok":true}]}`))
		case mode == "bare":
			shed(w, "")
		default:
			shed(w, "0.01")
		}
	}))
	defer ts.Close()

	// Budget of 25ms with 10ms hints: two honored waits fit, the third
	// (cumulative 30ms) would not.
	sess := &httpSession{d: NewHTTPDriverConfig(ts.URL, HTTPDriverConfig{
		RetryAfterBudget: 25 * time.Millisecond,
	})}
	ops := []kv.Op{{Kind: kv.OpGet, Key: 7}}

	res := make([]kv.Result, 1)
	start := time.Now()
	if err := sess.Do(ops, res); err != nil {
		t.Fatalf("recovering server: err = %v, want nil after one retry", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("recovering server: %d attempts, want 2", got)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("retried after %v, want >= the 10ms Retry-After hint", elapsed)
	}
	if res[0].Val != 7 || !res[0].Ok {
		t.Errorf("retried result = %+v, want {7 true}", res[0])
	}

	mode, _ = "always", attempts.Swap(0)
	start = time.Now()
	if err := sess.Do(ops, nil); err != harness.ErrOverload {
		t.Fatalf("persistent 429: err = %v, want harness.ErrOverload", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("persistent 429: %d attempts, want 3 (two 10ms waits fit the 25ms budget)", got)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("persistent 429 shed after %v, want >= 20ms of honored waits", elapsed)
	}
	if got := sess.d.Stats().RetryAfterWaits; got != 3 {
		t.Errorf("RetryAfterWaits = %d, want 3 (one recovery + two storm waits)", got)
	}

	mode, _ = "bare", attempts.Swap(0)
	if err := sess.Do(ops, nil); err != harness.ErrOverload {
		t.Fatalf("bare 429: err = %v, want harness.ErrOverload", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("bare 429: %d attempts, want 1 (no hint, no retry)", got)
	}
}

// TestHTTPValidation pins the 400 surface: malformed JSON, empty batches,
// unknown verbs, self-transfers and oversized batches are all refused
// before admission.
func TestHTTPValidation(t *testing.T) {
	svc := New(&fakeBackend{}, Config{Tick: 200 * time.Microsecond})
	defer svc.Close()
	ts := httptest.NewServer(Handler(svc))
	defer ts.Close()

	var big strings.Builder
	big.WriteString(`{"ops":[`)
	for i := 0; i <= MaxOpsPerBatch/2; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		big.WriteString(`{"op":"transfer","from":1,"to":2,"val":1}`)
	}
	big.WriteString(`]}`)

	cases := []struct {
		name, body string
	}{
		{"malformed", `{"ops":`},
		{"empty", `{"ops":[]}`},
		{"unknown-verb", `{"ops":[{"op":"increment","key":1}]}`},
		{"self-transfer", `{"ops":[{"op":"transfer","from":5,"to":5,"val":1}]}`},
		{"oversized", big.String()},
	}
	for _, tc := range cases {
		resp, body := postBatch(t, ts.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
	}
	if got := svc.accepted.Load(); got != 0 {
		t.Errorf("invalid requests reached the pool: accepted = %d", got)
	}
}

// TestMetricsAndHealthz pins the observability surface's shape.
func TestMetricsAndHealthz(t *testing.T) {
	svc := New(kvBackend(t, "medley-hash@2"), Config{Tick: 200 * time.Microsecond})
	defer svc.Close()
	ts := httptest.NewServer(Handler(svc))
	defer ts.Close()

	if resp, body := postBatch(t, ts.URL, `{"ops":[{"op":"put","key":1,"val":9}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("put: status %d: %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.System == "" || h.Shards != 2 {
		t.Errorf("healthz = %+v, want system name and 2 shards", h)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	counters := map[string]uint64{}
	for _, c := range m.Counters {
		counters[c.Name] = c.Value
	}
	if counters["svc_executed"] != 1 {
		t.Errorf("svc_executed = %d, want 1 (counters %v)", counters["svc_executed"], counters)
	}
	if _, ok := counters["tx_commits"]; !ok {
		t.Error("backend counters not merged into /metrics (no tx_commits)")
	}
}
