package service

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"medley/internal/cdc"
	"medley/internal/harness"
	"medley/internal/kv"
	"medley/internal/replica"
)

// Node is one replicated medleyd process: a Service with a change feed
// attached, plus (in follower mode) a replica.Follower replaying a
// leader. The same transaction pipeline serves both roles:
//
//   - A leader executes client batches; every committed write publishes
//     to the node's feed, which /v1/watch and /v1/snapshot serve.
//   - A follower rejects writes (503 "not leader" — retryable against
//     the real leader), serves bounded-staleness reads (replay lag above
//     MaxLag answers 409 with Retry-After), and replays the leader's
//     feed through its own pipeline — so the follower's feed is
//     populated too, and a promoted follower is immediately followable.
//
// Promotion (POST /v1/promote, Node.Promote, or automatically once
// PromoteAfter consecutive leader round trips fail) stops the replay
// loops and flips the role; acked-but-unreplicated leader writes are
// lost, which the divergence harness measures rather than hides (see
// RunReplicaChaos).
type Node struct {
	svc        *Service
	feed       *cdc.Feed
	fol        *replica.Follower // nil on a born-leader node
	maxLag     uint64
	maxSilence time.Duration

	leader   atomic.Bool
	promoted atomic.Bool
	stopCh   chan struct{}
}

// NodeConfig assembles a Node. Backend and Service mean what they do for
// New; the rest is replication.
type NodeConfig struct {
	Backend Backend
	Service Config

	// FeedShards is the change feed's stream count (default 4). Leader
	// and follower must agree; the follower validates at bootstrap.
	FeedShards int
	// FeedRing bounds each stream's retained entries (default cdc's).
	FeedRing int
	// Follow, when non-empty, starts the node as a follower of the
	// leader at this base URL.
	Follow string
	// MaxLag is the follower's staleness bound: reads are rejected with
	// 409 while replay lag exceeds it (default 4096 entries).
	MaxLag uint64
	// MaxSilence is the staleness bound a partition cannot fool: a
	// follower whose feed is cut stops seeing the leader's heads advance,
	// so its lag reads as zero exactly when it is most stale. Reads are
	// rejected with 409 once the follower has heard nothing (no chunk, no
	// heartbeat) from the leader for this long (default 1s; negative
	// disables).
	MaxSilence time.Duration
	// PromoteAfter is how many consecutive failed leader round trips
	// auto-promote the follower (0 disables; promotion is then manual
	// via POST /v1/promote).
	PromoteAfter int
	// Client issues the follower's HTTP requests (default fresh client).
	Client *http.Client
	// Mangle is the replication fault-injection seam, passed through to
	// the follower (tests only).
	Mangle func(shard int, entries []cdc.Entry) []cdc.Entry
}

// Role strings reported by /healthz and PromoteResponse.
const (
	RoleLeader   = "leader"
	RoleFollower = "follower"
)

// ErrNotLeader answers writes sent to a follower: nothing executed;
// retry against the leader (or whoever /healthz now says leads).
var ErrNotLeader = fmt.Errorf("service: not leader")

// NewNode builds and starts a node. A follower starts replaying
// immediately (retrying until its leader is reachable).
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.FeedShards <= 0 {
		cfg.FeedShards = 4
	}
	if cfg.MaxLag == 0 {
		cfg.MaxLag = 4096
	}
	if cfg.MaxSilence == 0 {
		cfg.MaxSilence = time.Second
	}
	feed := cdc.New(cfg.FeedShards, cfg.FeedRing, nil)
	cfg.Service.Feed = feed
	n := &Node{
		svc:        New(cfg.Backend, cfg.Service),
		feed:       feed,
		maxLag:     cfg.MaxLag,
		maxSilence: cfg.MaxSilence,
		stopCh:     make(chan struct{}),
	}
	if cfg.Follow == "" {
		n.leader.Store(true)
		return n, nil
	}

	var scan func(shard int, fn func(key, val uint64))
	if snap, ok := cfg.Backend.(harness.Snapshotter); ok {
		scan = func(shard int, fn func(key, val uint64)) {
			snap.StateSnapshot(func(key, val uint64) bool {
				if feed.ShardOf(key) == shard {
					fn(key, val)
				}
				return true
			})
		}
	}
	fol, err := replica.Start(replica.Config{
		Leader: cfg.Follow,
		Shards: cfg.FeedShards,
		Apply:  n.applyReplay,
		Scan:   scan,
		Client: cfg.Client,
		// Auto-promotion reuses the follower's failure threshold; with
		// auto-promotion off, keep the default detection threshold so
		// repl_leader_down still reports.
		ProbeFails: cfg.PromoteAfter,
		Mangle:     cfg.Mangle,
	})
	if err != nil {
		n.svc.Close()
		return nil, err
	}
	n.fol = fol
	if cfg.PromoteAfter > 0 {
		go func() {
			select {
			case <-n.stopCh:
			case <-fol.LeaderDown():
				n.Promote()
			}
		}()
	}
	return n, nil
}

// applyReplay runs one replay batch through the node's own pipeline —
// the same admission, execution, and feed publication path client writes
// take. Shed means the pool is momentarily full of reads; replay retries
// rather than dropping entries.
func (n *Node) applyReplay(ops []kv.Op) error {
	for {
		err := n.svc.Submit(ops, nil)
		if err != ErrShed {
			return err
		}
		select {
		case <-n.stopCh:
			return err
		case <-time.After(n.svc.RetryAfter()):
		}
	}
}

// Service returns the node's transaction pipeline.
func (n *Node) Service() *Service { return n.svc }

// Feed returns the node's change feed.
func (n *Node) Feed() *cdc.Feed { return n.feed }

// Role reports "leader" or "follower".
func (n *Node) Role() string {
	if n.leader.Load() {
		return RoleLeader
	}
	return RoleFollower
}

// Promoted reports whether this node became leader by promotion.
func (n *Node) Promoted() bool { return n.promoted.Load() }

// Follower exposes the replica (nil on a born leader); its Stats keep
// reporting after promotion.
func (n *Node) Follower() *replica.Follower { return n.fol }

// Promote flips a follower into a leader: stop replaying, start
// accepting writes. It reports whether this call performed the flip.
// Replay entries already in flight finish first (Stop waits), so the
// promoted store is exactly the replayed prefix plus whatever clients
// write next.
func (n *Node) Promote() bool {
	if n.leader.Load() {
		return false
	}
	if n.fol != nil {
		n.fol.Stop()
	}
	if n.leader.CompareAndSwap(false, true) {
		n.promoted.Store(true)
		return true
	}
	return false
}

// Handler serves the node's HTTP surface: the standalone API plus
// role gating, /v1/promote, and repl_* metrics.
func (n *Node) Handler() http.Handler { return handler(n.svc, n) }

// Close stops replication and drains the pipeline.
func (n *Node) Close() {
	select {
	case <-n.stopCh:
	default:
		close(n.stopCh)
	}
	if n.fol != nil {
		n.fol.Stop()
	}
	n.svc.Close()
}

// gateBatch is the follower-mode admission gate, applied after
// validation and before Submit. Leaders pass everything through.
func (n *Node) gateBatch(ops []kv.Op) (code int, msg string, retry time.Duration) {
	if n.leader.Load() {
		return 0, "", 0
	}
	for i := range ops {
		switch ops[i].Kind {
		case kv.OpGet, kv.OpScan:
		default:
			return http.StatusServiceUnavailable, ErrNotLeader.Error(), 0
		}
	}
	if !n.fol.Ready() {
		return http.StatusConflict, "replica bootstrapping", 50 * time.Millisecond
	}
	if lag := n.fol.Lag(); lag > n.maxLag {
		return http.StatusConflict,
			fmt.Sprintf("replica lag %d exceeds max_lag %d", lag, n.maxLag),
			50 * time.Millisecond
	}
	if quiet := n.fol.SinceContact(); n.maxSilence > 0 && quiet > n.maxSilence {
		return http.StatusConflict,
			fmt.Sprintf("replica silent for %v exceeds max_silence %v", quiet.Round(time.Millisecond), n.maxSilence),
			50 * time.Millisecond
	}
	return 0, "", 0
}

// replMetrics exports the replication counters merged into GET /metrics.
func (n *Node) replMetrics() []harness.Metric {
	role := uint64(0)
	if n.leader.Load() {
		role = 1
	}
	out := []harness.Metric{
		{Name: "repl_is_leader", Value: role},
	}
	if n.promoted.Load() {
		out = append(out, harness.Metric{Name: "repl_promoted", Value: 1})
	}
	if n.fol != nil {
		st := n.fol.Stats()
		down := uint64(0)
		if st.LeaderDown {
			down = 1
		}
		ready := uint64(0)
		if st.Ready {
			ready = 1
		}
		out = append(out,
			harness.Metric{Name: "repl_applied", Value: st.Applied},
			harness.Metric{Name: "repl_gaps", Value: st.Gaps},
			harness.Metric{Name: "repl_reordered", Value: st.Reordered},
			harness.Metric{Name: "repl_resyncs", Value: st.Resyncs},
			harness.Metric{Name: "repl_reconnects", Value: st.Reconnects},
			harness.Metric{Name: "repl_failures", Value: st.Failures},
			harness.Metric{Name: "repl_lag", Value: st.Lag},
			harness.Metric{Name: "repl_ready", Value: ready},
			harness.Metric{Name: "repl_leader_down", Value: down},
		)
	}
	return out
}
