package service

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"medley/internal/faultnet"
	"medley/internal/harness"
	"medley/internal/kv"
)

// This file is the crash-restart chaos runner: medleyd hosted in-process
// over a durable registry backend, a faultnet proxy in front of it, a
// fleet of journaling HTTP senders behind that, and a kill schedule that
// takes the daemon down mid-traffic. "SIGKILL" here is the in-process
// equivalent of the real thing: the HTTP server is torn down hard
// (every connection reset mid-request, exactly what clients of a killed
// process see), the service drains, and the store then goes through the
// PR 2 crash machinery — Persist barrier, simulated device crash, timed
// recovery — before a fresh daemon rebinds the same address. The reason
// the store cannot literally be killed as a subprocess is that the
// simulated pmem device lives in this process's DRAM; the wire-visible
// failure (connection resets, downtime, an empty dedup window
// afterwards) is identical, and the durable image crossing the crash is
// the same one a real restart would reload. CI separately smoke-tests a
// real medleyd process under kill -9 for the process-level half.
//
// Verification is the wire extension of the PR 2 journal verifier
// (harness.VerifyWire): senders write only put/delete on partitioned
// keys, journal definitive acks, taint in-doubt outcomes, and the final
// recovered state must match the merged journals exactly on every
// untainted key.

// ChaosConfig parameterizes one chaos run.
type ChaosConfig struct {
	// System is a benchmark-registry spec; it must resolve to a durable,
	// snapshot-capable backend (e.g. "ponefile-hash", "txmontage-hash").
	System string
	// SystemOpts passes through registry sizing knobs.
	SystemOpts harness.SystemOpts

	// Service is the daemon's pipeline config (DedupWindow included).
	Service Config

	// Client tunes the HTTPDriver's retry policy; Deadline also bounds
	// each request.
	Client HTTPDriverConfig

	// Faults is the standing fault plan installed on the proxy for the
	// whole run.
	Faults faultnet.Faults

	// Restarts is how many kill/recover/restart cycles land mid-run,
	// spread evenly across Duration.
	Restarts int

	// Senders, Rate, Duration shape the workload: Senders goroutines
	// offering Rate transactions/second in total for Duration.
	Senders  int
	Rate     float64
	Duration time.Duration

	KeyRange uint64
	Preload  int
	Seed     int64
	Mix      harness.Mix
	Dist     harness.Dist
}

// ChaosResult is the outcome of one chaos run: dispositions, tail
// latency, downtime, recovery, and the wire-level verification diff.
type ChaosResult struct {
	System  string
	Senders int
	Elapsed time.Duration

	Completed uint64
	Shed      uint64
	Errors    uint64
	Expired   uint64
	InDoubt   uint64

	Retries      uint64
	BreakerOpens uint64

	Restarts   int
	DowntimeNs int64 // total wall time from each kill to serving again
	RecoveryNs int64 // portion of downtime spent in CrashAndRecover

	Goodput      float64 // completed / elapsed, txn/s
	Availability float64 // completed / (completed + errors + expired + in-doubt)

	AvgNs, P50Ns, P99Ns, P999Ns float64

	// Verification: merged sender journals vs. the recovered state.
	Verify  harness.FinalCheckResult
	Tainted int // keys excluded from the diff as in-doubt
}

// Violations is the wire-level durability violation total.
func (r ChaosResult) Violations() uint64 { return r.Verify.Violations() }

// chaosDaemon hosts one incarnation of medleyd: a Service over the
// shared durable backend behind a real TCP listener. Kill tears the
// incarnation down; the backend (and its durable image) survives to the
// next start.
type chaosDaemon struct {
	be   Backend
	cfg  Config
	addr string
	ln   net.Listener
	srv  *http.Server
	svc  *Service
}

// start binds the daemon's address and serves. The first call may use
// ":0"; later calls rebind the same port (retrying briefly — the old
// listener's close races the rebind).
func (d *chaosDaemon) start() error {
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", d.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("chaos: rebind %s: %w", d.addr, err)
	}
	d.ln = ln
	d.addr = ln.Addr().String()
	d.svc = New(d.be, d.cfg)
	d.srv = &http.Server{Handler: Handler(d.svc)}
	go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(d.srv, ln)
	return nil
}

// kill tears the incarnation down the way a SIGKILL looks from outside:
// srv.Close resets every live connection mid-request (in-flight clients
// get no answer), then the service drains so the store is quiescent for
// the crash that follows. The dedup window dies with the service, as it
// would with a process.
func (d *chaosDaemon) kill() {
	_ = d.srv.Close()
	d.svc.Close()
}

// chaosSender is one journaling sender's counters, padded like the
// engine's worker shards.
type chaosSender struct {
	completed uint64
	shed      uint64
	errors    uint64
	expired   uint64
	indoubt   uint64
	samples   []int64
	seen      int64
	r         *rand.Rand
	journal   *harness.WireJournal
	_         [40]byte
}

func (s *chaosSender) record(d time.Duration) {
	const maxSamples = 8192
	s.seen++
	if len(s.samples) < maxSamples {
		s.samples = append(s.samples, int64(d))
		return
	}
	if j := s.r.Int63n(s.seen); j < maxSamples {
		s.samples[j] = int64(d)
	}
}

// RunChaos executes one chaos run. See the file comment for the
// architecture; the sequence is: build backend → start daemon → start
// proxy → preload (journaled) → senders offer load while the kill
// schedule cycles the daemon → stop → one final kill + crash + recovery
// → VerifyWire against the recovered snapshot.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	if cfg.Senders <= 0 {
		cfg.Senders = 8
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 2000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.KeyRange == 0 {
		cfg.KeyRange = 1 << 16
	}
	if cfg.KeyRange < uint64(cfg.Senders) {
		return ChaosResult{}, fmt.Errorf("chaos: key range %d < %d senders", cfg.KeyRange, cfg.Senders)
	}

	sys, err := harness.NewSystem(cfg.System, cfg.SystemOpts)
	if err != nil {
		return ChaosResult{}, fmt.Errorf("chaos: %w", err)
	}
	be, ok := sys.(Backend)
	if !ok {
		return ChaosResult{}, fmt.Errorf("chaos: system %q has no batch executor", cfg.System)
	}
	caps := harness.Capabilities(sys)
	if !caps.CanRecover() {
		return ChaosResult{}, fmt.Errorf("chaos: system %q is not durable (crash-restart needs a recoverable backend)", cfg.System)
	}
	if caps.Snapshot == nil {
		return ChaosResult{}, fmt.Errorf("chaos: system %q cannot snapshot state for verification", cfg.System)
	}

	d := &chaosDaemon{be: be, cfg: cfg.Service, addr: "127.0.0.1:0"}
	if err := d.start(); err != nil {
		return ChaosResult{}, err
	}
	proxy, err := faultnet.New("127.0.0.1:0", d.addr)
	if err != nil {
		d.kill()
		return ChaosResult{}, err
	}
	defer proxy.Close()

	driver := NewHTTPDriverConfig("http://"+proxy.Addr(), cfg.Client)
	if err := driver.Start(); err != nil {
		d.kill()
		return ChaosResult{}, fmt.Errorf("chaos: %w", err)
	}
	defer driver.Close()

	// Preload through the wire, journaled: the preload puts seed the
	// model, so untouched keys verify too. Keys are partitioned round-
	// robin so each lands in some sender's residue class — the journal
	// merge stays exact. Preload bypasses the proxy and the client's
	// deadline (it is setup, not chaos): the fault plan is installed
	// only once the store is loaded.
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := harness.NewWireJournal()
	if cfg.Preload > 0 {
		pre := NewHTTPDriverConfig("http://"+d.addr, HTTPDriverConfig{})
		if err := pre.Start(); err != nil {
			d.kill()
			return ChaosResult{}, fmt.Errorf("chaos: %w", err)
		}
		sess, err := pre.NewSession()
		if err != nil {
			d.kill()
			return ChaosResult{}, err
		}
		ops := make([]kv.Op, 0, preloadChunk)
		flush := func() error {
			if len(ops) == 0 {
				return nil
			}
			for {
				err := sess.Do(ops, nil)
				if err == nil {
					base.Commit(ops)
					ops = ops[:0]
					return nil
				}
				if IsInDoubt(err) {
					base.Taint(ops)
					ops = ops[:0]
					return nil
				}
				if err == harness.ErrOverload {
					time.Sleep(time.Millisecond)
					continue
				}
				return err
			}
		}
		for i := 0; i < cfg.Preload; i++ {
			k := uint64(rng.Int63n(int64(cfg.KeyRange)))
			k = harness.PartitionKey(k, i%cfg.Senders, cfg.Senders, cfg.KeyRange)
			ops = append(ops, kv.Op{Kind: kv.OpPut, Key: k, Val: k})
			if len(ops) == preloadChunk {
				if err := flush(); err != nil {
					d.kill()
					return ChaosResult{}, fmt.Errorf("chaos: preload: %w", err)
				}
			}
		}
		if err := flush(); err != nil {
			d.kill()
			return ChaosResult{}, fmt.Errorf("chaos: preload: %w", err)
		}
		_ = sess.Close()
		_ = pre.Close()
	}
	proxy.Set(cfg.Faults)

	// Sender fleet: each sender paces itself at Rate/Senders with
	// exponential interarrivals, writes only inside its residue class,
	// and journals what it definitively knows.
	stop := make(chan struct{})
	senders := make([]*chaosSender, cfg.Senders)
	var wg sync.WaitGroup
	interval := float64(time.Second) * float64(cfg.Senders) / cfg.Rate
	for i := 0; i < cfg.Senders; i++ {
		seed := cfg.Seed + int64(i)*7919 + 1
		s := &chaosSender{
			r:       rand.New(rand.NewSource(seed)),
			journal: harness.NewWireJournal(),
		}
		senders[i] = s
		sess, err := driver.NewSession()
		if err != nil {
			close(stop)
			d.kill()
			return ChaosResult{}, err
		}
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer sess.Close()
			gen := harness.NewTxGen(cfg.Dist, cfg.KeyRange, cfg.Mix, seed^0x5DEECE66D)
			var kops []kv.Op
			next := time.Now()
			for {
				select {
				case <-stop:
					return
				default:
				}
				next = next.Add(time.Duration(s.r.ExpFloat64() * interval))
				if wait := time.Until(next); wait > 0 {
					time.Sleep(wait)
				}
				ops := gen.Next()
				for j := range ops {
					if ops[j].Kind != harness.OpGet {
						ops[j].Key = harness.PartitionKey(ops[j].Key, tid, cfg.Senders, cfg.KeyRange)
					}
				}
				kops = harness.KvOps(kops, ops)
				startReq := time.Now()
				err := sess.Do(kops, nil)
				switch {
				case err == nil:
					s.completed++
					s.journal.Commit(kops)
					s.record(time.Since(startReq))
				case IsInDoubt(err):
					s.indoubt++
					s.journal.Taint(kops)
				case err == harness.ErrOverload:
					s.shed++
				case err == harness.ErrExpired:
					s.expired++
				default:
					s.errors++
				}
			}
		}(i)
	}

	// Kill schedule: Restarts kills spread evenly across the run, each
	// followed by Persist → CrashAndRecover → rebind. The dedup window
	// and pool die with each incarnation; only the durable image and
	// the store's DRAM state cross, exactly as PR 2's crash phases
	// define it.
	res := ChaosResult{System: sys.Name(), Senders: cfg.Senders, Restarts: cfg.Restarts}
	start := time.Now()
	runErr := func() error {
		for i := 0; i < cfg.Restarts; i++ {
			at := start.Add(cfg.Duration * time.Duration(i+1) / time.Duration(cfg.Restarts+1))
			if wait := time.Until(at); wait > 0 {
				time.Sleep(wait)
			}
			killStart := time.Now()
			proxy.CutConnections()
			d.kill()
			caps.Recovery.Persist()
			recStart := time.Now()
			caps.Recovery.CrashAndRecover()
			res.RecoveryNs += int64(time.Since(recStart))
			if err := d.start(); err != nil {
				return err
			}
			res.DowntimeNs += int64(time.Since(killStart))
		}
		if wait := time.Until(start.Add(cfg.Duration)); wait > 0 {
			time.Sleep(wait)
		}
		return nil
	}()
	close(stop)
	wg.Wait()
	res.Elapsed = time.Since(start)
	if runErr != nil {
		d.kill()
		return res, runErr
	}

	// Final crash: the verification target is the RECOVERED state, so
	// the last incarnation goes down the same way the mid-run ones did.
	d.kill()
	caps.Recovery.Persist()
	recStart := time.Now()
	caps.Recovery.CrashAndRecover()
	res.RecoveryNs += int64(time.Since(recStart))

	journals := make([]*harness.WireJournal, 0, cfg.Senders+1)
	journals = append(journals, base)
	var samples []int64
	for _, s := range senders {
		res.Completed += s.completed
		res.Shed += s.shed
		res.Errors += s.errors
		res.Expired += s.expired
		res.InDoubt += s.indoubt
		journals = append(journals, s.journal)
		samples = append(samples, s.samples...)
	}
	st := driver.Stats()
	res.Retries, res.BreakerOpens = st.Retries, st.BreakerOpens

	res.Verify, res.Tainted = harness.VerifyWire(journals, caps.Snapshot.StateSnapshot)

	if res.Elapsed > 0 {
		res.Goodput = float64(res.Completed) / res.Elapsed.Seconds()
	}
	if answered := res.Completed + res.Errors + res.Expired + res.InDoubt; answered > 0 {
		res.Availability = float64(res.Completed) / float64(answered)
	}
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		var sum int64
		for _, v := range samples {
			sum += v
		}
		res.AvgNs = float64(sum) / float64(len(samples))
		res.P50Ns = float64(chaosPermille(samples, 500))
		res.P99Ns = float64(chaosPermille(samples, 990))
		res.P999Ns = float64(chaosPermille(samples, 999))
	}
	return res, nil
}

// chaosPermille is nearest-rank over a sorted slice in tenths of a
// percent (the harness keeps its own unexported copy).
func chaosPermille(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 999) / 1000
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
