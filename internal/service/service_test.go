package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"medley/internal/kv"
)

// fakeBackend records execution order; its executors complete instantly.
type fakeBackend struct {
	mu    sync.Mutex
	order []uint64
}

func (b *fakeBackend) Name() string          { return "fake" }
func (b *fakeBackend) Preload(keys []uint64) {}
func (b *fakeBackend) Start() func()         { return func() {} }
func (b *fakeBackend) NewExecutor() kv.Executor {
	return &fakeExec{b: b}
}

func (b *fakeBackend) executed() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]uint64(nil), b.order...)
}

type fakeExec struct{ b *fakeBackend }

func (e *fakeExec) ExecBatch(ops []kv.Op, res []kv.Result) error {
	e.b.mu.Lock()
	for _, op := range ops {
		e.b.order = append(e.b.order, op.Key)
	}
	e.b.mu.Unlock()
	for i := range res {
		res[i] = kv.Result{Val: ops[i].Val, Ok: true}
	}
	return nil
}

func oneOp(key uint64) []kv.Op {
	return []kv.Op{{Kind: kv.OpPut, Key: key, Val: key}}
}

// TestTickCoalescesAndPreservesFIFO pins the pipeline's scheduling
// contract: everything pooled when a tick fires drains as ONE batch (one
// scheduling decision), and with a single worker the execution order is
// exactly pool (FIFO) order. White-box: the pool is filled directly and
// the tick forced by hand, so the test is deterministic.
func TestTickCoalescesAndPreservesFIFO(t *testing.T) {
	be := &fakeBackend{}
	s := New(be, Config{Workers: 1, Tick: time.Hour, PoolSize: 64})
	defer s.Close()

	const n = 10
	var reqs []*request
	for i := uint64(0); i < n; i++ {
		r := &request{ops: oneOp(i), done: make(chan error, 1)}
		s.pool <- r
		reqs = append(reqs, r)
	}
	if got := s.drainTick(make([]*request, 0, 64)); got != n {
		t.Fatalf("drainTick dispatched %d, want %d", got, n)
	}
	for i, r := range reqs {
		if err := <-r.done; err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := s.batches.Load(); got != 1 {
		t.Errorf("batches = %d, want 1 (no coalescing)", got)
	}
	if got := s.batched.Load(); got != n {
		t.Errorf("batched = %d, want %d", got, n)
	}
	order := be.executed()
	if len(order) != n {
		t.Fatalf("executed %d ops, want %d", len(order), n)
	}
	for i, k := range order {
		if k != uint64(i) {
			t.Fatalf("FIFO violated: position %d executed key %d (order %v)", i, k, order)
		}
	}
}

// TestSubmitRoundTrip drives the public path end to end: concurrent
// Submits through a running tick loop, results filled per request.
func TestSubmitRoundTrip(t *testing.T) {
	be := &fakeBackend{}
	s := New(be, Config{Tick: 200 * time.Microsecond, Workers: 2})
	defer s.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := make([]kv.Result, 1)
			errs[i] = s.Submit(oneOp(uint64(i)), res)
			if errs[i] == nil && (res[0].Val != uint64(i) || !res[0].Ok) {
				errs[i] = fmt.Errorf("request %d: result %+v", i, res[0])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if got := s.executed.Load(); got != n {
		t.Errorf("executed = %d, want %d", got, n)
	}
}

// TestShedOnOverflow pins admission control: a full pool refuses
// instantly with ErrShed, already-admitted requests still complete (Close
// drains them), and a closed service answers ErrClosed.
func TestShedOnOverflow(t *testing.T) {
	be := &fakeBackend{}
	s := New(be, Config{PoolSize: 1, Tick: time.Hour, Workers: 1})

	admitted := make(chan error, 1)
	go func() { admitted <- s.Submit(oneOp(1), nil) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.pool) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the pool")
		}
		time.Sleep(100 * time.Microsecond)
	}

	if err := s.Submit(oneOp(2), nil); err != ErrShed {
		t.Fatalf("overflow submit: err = %v, want ErrShed", err)
	}
	if got := s.shed.Load(); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}

	s.Close()
	if err := <-admitted; err != nil {
		t.Fatalf("admitted request lost at close: %v", err)
	}
	if got := be.executed(); len(got) != 1 || got[0] != 1 {
		t.Errorf("executed = %v, want [1]", got)
	}
	if err := s.Submit(oneOp(3), nil); err != ErrClosed {
		t.Fatalf("post-close submit: err = %v, want ErrClosed", err)
	}
}

// TestValidateOps pins the admission-side batch validation.
func TestValidateOps(t *testing.T) {
	if err := validateOps(nil); err == nil {
		t.Error("empty batch admitted")
	}
	big := make([]kv.Op, MaxOpsPerBatch+1)
	if err := validateOps(big); err == nil {
		t.Error("oversized batch admitted")
	}
	if err := validateOps([]kv.Op{{Kind: kv.OpKind(99)}}); err == nil {
		t.Error("unknown kind admitted")
	}
	if err := validateOps(oneOp(1)); err != nil {
		t.Errorf("valid batch refused: %v", err)
	}
}

// groupBackend's executors implement kv.GroupExecutor: ExecGroup runs
// each batch through the ordinary fake execution, failing any batch that
// leads with groupFailKey, so the worker's group path and its per-request
// error routing are observable.
type groupBackend struct {
	fakeBackend
	groupCalls atomic.Uint64
}

const groupFailKey = 666

var errGroupFail = errors.New("member failed")

func (b *groupBackend) NewExecutor() kv.Executor { return &groupExec{b: b} }

type groupExec struct{ b *groupBackend }

func (e *groupExec) ExecBatch(ops []kv.Op, res []kv.Result) error {
	fe := fakeExec{b: &e.b.fakeBackend}
	if err := fe.ExecBatch(ops, res); err != nil {
		return err
	}
	if ops[0].Key == groupFailKey {
		return errGroupFail
	}
	return nil
}

func (e *groupExec) ExecGroup(batches []kv.Batch, errs []error) {
	e.b.groupCalls.Add(1)
	for i := range batches {
		err := e.ExecBatch(batches[i].Ops, batches[i].Res)
		if errs != nil {
			errs[i] = err
		}
	}
}

// TestWorkerUsesGroupExecutor pins the service's group-commit seam: a
// multi-request chunk reaches a group-capable executor as ONE ExecGroup
// call, every submitter still gets its own per-request outcome (including
// a member's own error), and the svc_grouped_txns counter records the
// requests that took the group path.
func TestWorkerUsesGroupExecutor(t *testing.T) {
	be := &groupBackend{}
	s := New(be, Config{Workers: 1, Tick: time.Hour, PoolSize: 64})
	defer s.Close()

	keys := []uint64{1, groupFailKey, 3}
	var reqs []*request
	for _, k := range keys {
		r := &request{ops: oneOp(k), res: make([]kv.Result, 1), done: make(chan error, 1)}
		s.pool <- r
		reqs = append(reqs, r)
	}
	if got := s.drainTick(make([]*request, 0, 64)); got != len(keys) {
		t.Fatalf("drainTick dispatched %d, want %d", got, len(keys))
	}
	for i, r := range reqs {
		err := <-r.done
		if keys[i] == groupFailKey {
			if !errors.Is(err, errGroupFail) {
				t.Errorf("failing member got err %v, want errGroupFail", err)
			}
			continue
		}
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
		if r.res[0].Val != keys[i] || !r.res[0].Ok {
			t.Errorf("request %d: result %+v not scattered back", i, r.res[0])
		}
	}
	if got := be.groupCalls.Load(); got != 1 {
		t.Errorf("ExecGroup calls = %d, want 1 (chunk not grouped)", got)
	}
	if got := s.grouped.Load(); got != uint64(len(keys)) {
		t.Errorf("grouped = %d, want %d", got, len(keys))
	}
	if ex, er := s.executed.Load(), s.errored.Load(); ex != 2 || er != 1 {
		t.Errorf("executed/errored = %d/%d, want 2/1", ex, er)
	}
}

// TestFreshServiceGaugesFinite pins the zero-denominator guard: a service
// that has executed nothing must export no NaN/Inf gauge — ratios whose
// denominator is zero are omitted, not divided — and the /metrics JSON
// shape must stay encodable (encoding/json rejects NaN, so one bad gauge
// would break the endpoint, silently with json.Encoder).
func TestFreshServiceGaugesFinite(t *testing.T) {
	s := New(&fakeBackend{}, Config{Tick: time.Hour})
	defer s.Close()
	for _, g := range s.Gauges() {
		if math.IsNaN(g.Value) || math.IsInf(g.Value, 0) {
			t.Errorf("gauge %s = %v on a fresh service", g.Name, g.Value)
		}
		switch g.Name {
		case "svc_shed_rate", "svc_batch_coalesce", "svc_group_share":
			t.Errorf("gauge %s exported with zero denominator", g.Name)
		}
	}
	if _, err := json.Marshal(struct {
		Counters any `json:"counters"`
		Gauges   any `json:"gauges"`
	}{s.MetricsSnapshot(), s.Gauges()}); err != nil {
		t.Fatalf("fresh /metrics shape not encodable: %v", err)
	}
}

// TestGaugesDeriveRatios pins the derived-gauge math against the
// counters.
func TestGaugesDeriveRatios(t *testing.T) {
	be := &fakeBackend{}
	s := New(be, Config{Tick: 200 * time.Microsecond})
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Submit(oneOp(uint64(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	var coalesce, shedRate float64 = -1, -1
	for _, g := range s.Gauges() {
		switch g.Name {
		case "svc_batch_coalesce":
			coalesce = g.Value
		case "svc_shed_rate":
			shedRate = g.Value
		}
	}
	if coalesce < 1 {
		t.Errorf("svc_batch_coalesce = %v, want >= 1", coalesce)
	}
	if shedRate != 0 {
		t.Errorf("svc_shed_rate = %v, want 0", shedRate)
	}
	found := false
	for _, m := range s.MetricsSnapshot() {
		if m.Name == "svc_executed" && m.Value == 8 {
			found = true
		}
	}
	if !found {
		t.Error("svc_executed counter missing or wrong")
	}
}

// TestMetricsMergeDedupCounters pins the dedup window's lifecycle
// counters in the merged /metrics export: claims, window hits, abandons,
// evictions and completes ride alongside the existing svc_* counters,
// and the merged list stays name-sorted (the wire contract since the
// backend merge landed).
func TestMetricsMergeDedupCounters(t *testing.T) {
	s := New(&fakeBackend{}, Config{Tick: 200 * time.Microsecond, DedupWindow: 1})
	defer s.Close()

	// claim+complete, then a same-ID retry (window hit).
	ctx := context.Background()
	if err := s.SubmitCtx(ctx, "rq-1", oneOp(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitCtx(ctx, "rq-1", oneOp(1), nil); err != nil {
		t.Fatal(err)
	}
	// A second ID evicts the first from the size-1 window.
	if err := s.SubmitCtx(ctx, "rq-2", oneOp(2), nil); err != nil {
		t.Fatal(err)
	}
	// Abandon: a claim released without executing (the shed path).
	mine, prior := s.window.claim("rq-3")
	if mine == nil || prior != nil {
		t.Fatalf("claim rq-3: mine=%v prior=%v", mine, prior)
	}
	s.window.abandon(mine, ErrShed)

	want := map[string]uint64{
		"svc_dedup_claims":      3, // rq-1, rq-2, rq-3
		"svc_dedup_window_hits": 1, // the rq-1 retry
		"svc_dedup_completes":   2, // rq-1, rq-2 executed
		"svc_dedup_abandons":    1, // rq-3
		"svc_dedup_evictions":   2, // rq-1 pushed out by rq-2, rq-2 by rq-3
	}
	got := map[string]uint64{}
	ms := s.MetricsSnapshot()
	for _, m := range ms {
		got[m.Name] = m.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
	// The service-level hit counter (retries answered) agrees.
	if got["svc_dedup_hits"] != 1 {
		t.Errorf("svc_dedup_hits = %d, want 1", got["svc_dedup_hits"])
	}
	if !sort.SliceIsSorted(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name }) {
		t.Error("merged metrics not name-sorted")
	}
}

// TestDriverMetricsSnapshotExportsBreakerState pins the client-side
// export: breaker state and fault counters, previously reachable only
// through HTTPDriverStats, surface through the same Metric shape the
// server merges.
func TestDriverMetricsSnapshotExportsBreakerState(t *testing.T) {
	d := NewHTTPDriver("http://127.0.0.1:0")
	got := map[string]uint64{}
	for _, m := range d.MetricsSnapshot() {
		got[m.Name] = m.Value
	}
	for _, name := range []string{
		"drv_breaker_open", "drv_breaker_opens", "drv_retries",
		"drv_in_doubt", "drv_expired", "drv_retry_after_waits",
		"drv_stale_reads", "drv_failovers",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("driver metric %s missing", name)
		}
	}
	if got["drv_breaker_open"] != 0 {
		t.Error("fresh driver reports an open breaker")
	}
	// Trip the breaker against a dead endpoint and watch the state flip.
	d.breaker.threshold = 2
	sess := &httpSession{d: d}
	_ = sess.Do(oneOp(1), nil)
	for _, m := range d.MetricsSnapshot() {
		if m.Name == "drv_breaker_open" && m.Value != 1 {
			t.Error("breaker state not exported after consecutive transport failures")
		}
	}
}
