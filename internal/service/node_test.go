package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"medley/internal/cdc"
	"medley/internal/kv"
)

// startNode builds a node over a fresh in-memory medley system and serves
// it; cleanup closes both.
func startNode(t *testing.T, cfg NodeConfig) (*Node, *httptest.Server) {
	t.Helper()
	cfg.Backend = kvBackend(t, "medley-hash@2")
	if cfg.Service.Tick == 0 {
		cfg.Service.Tick = 200 * time.Microsecond
	}
	if cfg.Service.Workers == 0 {
		cfg.Service.Workers = 2
	}
	if cfg.FeedShards == 0 {
		cfg.FeedShards = 2
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	ts := httptest.NewServer(n.Handler())
	// Node before server: closing the service closes the feed, ending any
	// watch streams the graceful server Close would otherwise wait on.
	t.Cleanup(func() { n.Close(); ts.Close() })
	return n, ts
}

func postNodeBatch(t *testing.T, url string, req BatchRequest) (*http.Response, BatchResponse, ErrorResponse) {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	var ok BatchResponse
	var bad ErrorResponse
	if resp.StatusCode == http.StatusOK {
		_ = json.NewDecoder(resp.Body).Decode(&ok)
	} else {
		_ = json.NewDecoder(resp.Body).Decode(&bad)
	}
	return resp, ok, bad
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNodeFollowerReplaysAndServesReads(t *testing.T) {
	leader, lts := startNode(t, NodeConfig{})
	_ = leader

	// Preload some writes before the follower exists: bootstrap coverage.
	for i := 0; i < 50; i++ {
		resp, _, _ := postNodeBatch(t, lts.URL, BatchRequest{Ops: []WireOp{
			{Op: "put", Key: uint64(i), Val: uint64(i * 10)},
		}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("preload write %d: status %d", i, resp.StatusCode)
		}
	}

	follower, fts := startNode(t, NodeConfig{Follow: lts.URL, FeedShards: 2})
	waitFor(t, 5*time.Second, "follower ready", func() bool {
		return follower.Follower().Ready()
	})

	// Live writes after bootstrap: stream coverage.
	for i := 50; i < 80; i++ {
		postNodeBatch(t, lts.URL, BatchRequest{Ops: []WireOp{
			{Op: "put", Key: uint64(i), Val: uint64(i * 10)},
		}})
	}
	postNodeBatch(t, lts.URL, BatchRequest{Ops: []WireOp{{Op: "delete", Key: 7}}})

	waitFor(t, 5*time.Second, "follower caught up", func() bool {
		return follower.Follower().Lag() == 0 && follower.Follower().Stats().Applied >= 30
	})
	// One more settle beat: lag counts feed entries, the last apply may
	// still be completing its Submit.
	time.Sleep(20 * time.Millisecond)

	// Reads on the follower observe the replayed state.
	resp, ok, _ := postNodeBatch(t, fts.URL, BatchRequest{Ops: []WireOp{
		{Op: "get", Key: 60},
		{Op: "get", Key: 7},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower read status %d", resp.StatusCode)
	}
	if len(ok.Results) != 2 || !ok.Results[0].Ok || ok.Results[0].Val != 600 {
		t.Fatalf("follower read key 60 = %+v, want 600", ok.Results)
	}
	if ok.Results[1].Ok {
		t.Fatalf("follower still has deleted key 7: %+v", ok.Results[1])
	}

	// Writes on the follower are refused with a retryable not-leader error.
	resp, _, bad := postNodeBatch(t, fts.URL, BatchRequest{Ops: []WireOp{
		{Op: "put", Key: 1, Val: 1},
	}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower write status = %d, want 503", resp.StatusCode)
	}
	if bad.Error == "" {
		t.Fatal("follower write rejection carried no error body")
	}

	// Roles over healthz.
	var h healthResponse
	hr, err := http.Get(fts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	_ = json.NewDecoder(hr.Body).Decode(&h)
	hr.Body.Close()
	if h.Role != RoleFollower || h.FeedShards != 2 {
		t.Fatalf("follower healthz = %+v", h)
	}
}

func TestNodePromoteServesWrites(t *testing.T) {
	leader, lts := startNode(t, NodeConfig{})
	for i := 0; i < 20; i++ {
		postNodeBatch(t, lts.URL, BatchRequest{Ops: []WireOp{
			{Op: "put", Key: uint64(i), Val: uint64(i + 1)},
		}})
	}
	follower, fts := startNode(t, NodeConfig{Follow: lts.URL})
	waitFor(t, 5*time.Second, "follower caught up", func() bool {
		return follower.Follower().Ready() && follower.Follower().Lag() == 0
	})
	time.Sleep(20 * time.Millisecond)

	// Kill the leader, promote over HTTP. Node first: closing the
	// service closes the feed, which terminates the follower's watch
	// stream — httptest's graceful Close waits on active connections.
	leader.Close()
	lts.Close()
	resp, err := http.Post(fts.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	var pr struct {
		Role     string `json:"role"`
		Promoted bool   `json:"promoted"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&pr)
	resp.Body.Close()
	if pr.Role != RoleLeader || !pr.Promoted {
		t.Fatalf("promote response = %+v", pr)
	}
	if !follower.Promoted() {
		t.Fatal("node does not report promoted")
	}

	// The promoted node serves writes and retains the replayed state.
	wresp, ok, _ := postNodeBatch(t, fts.URL, BatchRequest{Ops: []WireOp{
		{Op: "put", Key: 100, Val: 1000},
		{Op: "get", Key: 5},
	}})
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("promoted write status %d", wresp.StatusCode)
	}
	if !ok.Results[1].Ok || ok.Results[1].Val != 6 {
		t.Fatalf("promoted node lost replayed key 5: %+v", ok.Results[1])
	}

	// Its own feed carries both the replayed and the new writes — a
	// promoted leader is followable.
	heads := follower.Feed().Heads()
	var total uint64
	for _, h := range heads {
		total += h
	}
	if total < 21 {
		t.Fatalf("promoted feed heads %v, want replayed+new entries", heads)
	}

	// Second promote is a no-op.
	resp2, err := http.Post(fts.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatalf("promote 2: %v", err)
	}
	_ = json.NewDecoder(resp2.Body).Decode(&pr)
	resp2.Body.Close()
	if pr.Promoted {
		t.Fatal("second promote reported a flip")
	}
}

func TestNodeStaleReadsRejected(t *testing.T) {
	// MaxLag 1 and a mangle hook that swallows every entry: lag grows,
	// reads must 409 with Retry-After.
	leader, lts := startNode(t, NodeConfig{})
	_ = leader
	follower, fts := startNode(t, NodeConfig{
		Follow: lts.URL,
		MaxLag: 1,
		Mangle: func(shard int, entries []cdc.Entry) []cdc.Entry { return nil },
	})
	waitFor(t, 5*time.Second, "follower ready", func() bool {
		return follower.Follower().Ready()
	})
	for i := 0; i < 30; i++ {
		postNodeBatch(t, lts.URL, BatchRequest{Ops: []WireOp{
			{Op: "put", Key: uint64(i), Val: 1},
		}})
	}
	waitFor(t, 5*time.Second, "lag to build", func() bool {
		return follower.Follower().Lag() > 1
	})
	resp, _, bad := postNodeBatch(t, fts.URL, BatchRequest{Ops: []WireOp{{Op: "get", Key: 1}}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale read status = %d, want 409", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("stale rejection carried no Retry-After")
	}
	if bad.Error == "" {
		t.Fatal("stale rejection carried no error body")
	}
}

func TestNodeWatchCompactedGone(t *testing.T) {
	// A cursor below the ring floor answers 410 at connect time.
	n, ts := startNode(t, NodeConfig{FeedRing: 4, FeedShards: 1})
	for i := 0; i < 40; i++ {
		postNodeBatch(t, ts.URL, BatchRequest{Ops: []WireOp{
			{Op: "put", Key: uint64(i), Val: 1},
		}})
	}
	waitFor(t, 2*time.Second, "feed entries", func() bool { return n.Feed().Head(0) > 8 })
	resp, err := http.Get(ts.URL + "/v1/watch?shard=0&from=1")
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("compacted watch status = %d, want 410", resp.StatusCode)
	}
}

func TestNodeFollowerResyncsAfterCompaction(t *testing.T) {
	// Tiny ring + follower that cannot keep up bootstraps again and still
	// converges (overflow-to-snapshot end to end).
	leader, lts := startNode(t, NodeConfig{FeedRing: 8, FeedShards: 1})
	_ = leader
	follower, _ := startNode(t, NodeConfig{Follow: lts.URL, FeedShards: 1, FeedRing: 8})
	waitFor(t, 5*time.Second, "follower ready", func() bool {
		return follower.Follower().Ready()
	})
	// Outrun the ring: submit one big burst as separate one-op batches.
	for i := 0; i < 400; i++ {
		postNodeBatch(t, lts.URL, BatchRequest{Ops: []WireOp{
			{Op: "put", Key: uint64(i % 32), Val: uint64(i)},
		}})
	}
	waitFor(t, 10*time.Second, "follower converged", func() bool {
		return follower.Follower().Ready() && follower.Follower().Lag() == 0
	})
	time.Sleep(30 * time.Millisecond)
	// Spot-check convergence through the service pipelines.
	lres := make([]kv.Result, 1)
	fres := make([]kv.Result, 1)
	for k := uint64(0); k < 32; k++ {
		ops := []kv.Op{{Kind: kv.OpGet, Key: k}}
		if err := leader.Service().Submit(ops, lres); err != nil {
			t.Fatalf("leader get: %v", err)
		}
		if err := follower.Service().Submit(ops, fres); err != nil {
			t.Fatalf("follower get: %v", err)
		}
		if lres[0] != fres[0] {
			t.Fatalf("key %d diverged: leader %+v follower %+v", k, lres[0], fres[0])
		}
	}
}
