package service

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"medley/internal/faultnet"
	"medley/internal/harness"
	"medley/internal/kv"
)

// hijackKill yanks the connection under a response and closes it with
// RST: the client sees a transport error with no server answer — the
// "executed but the answer died" shape the retry machinery exists for.
func hijackKill(w http.ResponseWriter, r *http.Request) {
	_, _ = io.Copy(io.Discard, r.Body)
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("test server not hijackable")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	conn.Close()
}

// TestHTTPDriverRetriesTransportWithSameID pins the retry loop: transport
// errors are retried under MaxRetries with the SAME request ID on every
// attempt (the ID is what makes the server-side dedup window able to
// answer the retry), and the eventual success returns decoded results.
func TestHTTPDriverRetriesTransportWithSameID(t *testing.T) {
	var attempts atomic.Int64
	var mu sync.Mutex
	var ids []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if err := readBatch(r, &req); err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		mu.Lock()
		ids = append(ids, req.ID)
		mu.Unlock()
		if attempts.Add(1) <= 2 {
			hijackKill(w, r)
			return
		}
		_, _ = w.Write([]byte(`{"results":[{"val":7,"ok":true}]}`))
	}))
	defer ts.Close()

	d := NewHTTPDriverConfig(ts.URL, HTTPDriverConfig{
		MaxRetries: 3, BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond,
		BreakerThreshold: -1,
	})
	sess, err := d.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	res := make([]kv.Result, 1)
	if err := sess.Do([]kv.Op{{Kind: kv.OpGet, Key: 7}}, res); err != nil {
		t.Fatalf("err = %v, want nil after retries", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3", got)
	}
	if got := d.Stats().Retries; got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if res[0].Val != 7 || !res[0].Ok {
		t.Errorf("result = %+v, want {7 true}", res[0])
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 3 || ids[0] == "" || len(ids[0]) > MaxRequestID {
		t.Fatalf("ids = %q, want 3 non-empty bounded ids", ids)
	}
	if ids[1] != ids[0] || ids[2] != ids[0] {
		t.Errorf("retries changed the request ID: %q", ids)
	}
}

func readBatch(r *http.Request, req *BatchRequest) error {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, req)
}

// TestHTTPDriverInDoubtAfterTransportExhaustion pins the in-doubt
// classification: when every attempt dies on the wire, the final error
// must say so — the request may have executed, and verifiers need to
// taint its keys rather than assume either outcome.
func TestHTTPDriverInDoubtAfterTransportExhaustion(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(hijackKill))
	defer ts.Close()

	d := NewHTTPDriverConfig(ts.URL, HTTPDriverConfig{
		MaxRetries: 1, BackoffBase: time.Millisecond, BreakerThreshold: -1,
	})
	sess, _ := d.NewSession()
	err := sess.Do([]kv.Op{{Kind: kv.OpPut, Key: 1, Val: 1}}, nil)
	if err == nil {
		t.Fatal("want error from a server that never answers")
	}
	if !IsInDoubt(err) {
		t.Fatalf("err = %v, want in-doubt", err)
	}
	if !errors.Is(err, errTransport) {
		t.Fatalf("err = %v, want wrapped transport cause", err)
	}
	st := d.Stats()
	if st.InDoubt != 1 || st.Retries != 1 {
		t.Errorf("stats = %+v, want 1 in-doubt, 1 retry", st)
	}
}

// TestHTTPDriverDeadlineStopsRetrying pins the client-side deadline: a
// generous retry allowance still stops at the configured deadline with
// harness.ErrExpired, and the outcome stays in doubt (attempts did reach
// the network).
func TestHTTPDriverDeadlineStopsRetrying(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(hijackKill))
	defer ts.Close()

	d := NewHTTPDriverConfig(ts.URL, HTTPDriverConfig{
		Deadline: 50 * time.Millisecond, MaxRetries: 1000, RetryBudget: -1,
		BackoffBase: 8 * time.Millisecond, BackoffCap: 8 * time.Millisecond,
		BreakerThreshold: -1,
	})
	sess, _ := d.NewSession()
	start := time.Now()
	err := sess.Do([]kv.Op{{Kind: kv.OpGet, Key: 1}}, nil)
	if !errors.Is(err, harness.ErrExpired) {
		t.Fatalf("err = %v, want harness.ErrExpired", err)
	}
	if !IsInDoubt(err) {
		t.Fatalf("err = %v, want in-doubt (attempts reached the wire)", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline honored after %v, want ~50ms", elapsed)
	}
	if got := d.Stats().Expired; got != 1 {
		t.Errorf("expired = %d, want 1", got)
	}
}

// TestHTTPDriverBreakerOpensAndRecovers pins the breaker state machine:
// consecutive transport errors open it, an open breaker fails fast
// without touching the network, and after the cooldown a healthz probe
// on a recovered server closes it again.
func TestHTTPDriverBreakerOpensAndRecovers(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	var batchAttempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			hijackKill(w, r)
			return
		}
		switch r.URL.Path {
		case "/healthz":
			_, _ = w.Write([]byte(`{"system":"fake","shards":1}`))
		default:
			batchAttempts.Add(1)
			_, _ = w.Write([]byte(`{"results":[{"val":1,"ok":true}]}`))
		}
	}))
	defer ts.Close()

	d := NewHTTPDriverConfig(ts.URL, HTTPDriverConfig{
		MaxRetries: -1, BackoffBase: time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond,
	})
	sess, _ := d.NewSession()
	ops := []kv.Op{{Kind: kv.OpGet, Key: 1}}

	for i := 0; i < 3; i++ {
		if err := sess.Do(ops, nil); err == nil || errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("attempt %d: err = %v, want a transport error before the breaker opens", i, err)
		}
	}
	if got := d.Stats().BreakerOpens; got != 1 {
		t.Fatalf("breaker opens = %d, want 1 after threshold", got)
	}

	if err := sess.Do(ops, nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker: err = %v, want ErrCircuitOpen", err)
	}

	down.Store(false)
	time.Sleep(60 * time.Millisecond) // past the cooldown: next attempt probes
	res := make([]kv.Result, 1)
	if err := sess.Do(ops, res); err != nil {
		t.Fatalf("recovered server: err = %v, want nil (probe should close the breaker)", err)
	}
	if got := batchAttempts.Load(); got != 1 {
		t.Errorf("batch attempts while open/recovered = %d, want 1 (open breaker must not touch the network)", got)
	}
	if got := d.Stats().BreakerOpens; got != 1 {
		t.Errorf("breaker opens = %d, want still 1", got)
	}
}

// TestHTTPDriverStartBounded pins the satellite contract: Start against
// a dead address fails within StartTimeout with an error that names the
// unreachable base URL instead of polling forever.
func TestHTTPDriverStartBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	d := NewHTTPDriverConfig("http://"+addr, HTTPDriverConfig{StartTimeout: 200 * time.Millisecond})
	start := time.Now()
	err = d.Start()
	if err == nil {
		t.Fatal("Start succeeded against a dead address")
	}
	if !strings.Contains(err.Error(), "unreachable") || !strings.Contains(err.Error(), addr) {
		t.Errorf("err = %v, want the unreachable address named", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("Start took %v, want bounded by the 200ms StartTimeout", elapsed)
	}
}

// transferThroughFault runs the seeded-fault scenario once: a real store
// behind the HTTP server, reached through a faultnet proxy armed to eat
// exactly one response — the canonical "transfer executed, answer died"
// fault. The client retries; the returned balances show whether the
// retry re-executed the transfer (duplication) or was answered from the
// dedup window (exactly-once).
func transferThroughFault(t *testing.T, window int) (bal1, bal2 uint64, st HTTPDriverStats) {
	t.Helper()
	svc := New(kvBackend(t, "medley-hash@2"), Config{
		Tick: 200 * time.Microsecond, Workers: 2, DedupWindow: window,
	})
	defer svc.Close()
	ts := httptest.NewServer(Handler(svc))
	defer ts.Close()

	proxy, err := faultnet.New("127.0.0.1:0", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Seed and final reads bypass the proxy: only the transfer is faulted.
	direct := NewHTTPDriver(ts.URL)
	dsess, err := direct.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	seed := []kv.Op{
		{Kind: kv.OpPut, Key: 1, Val: 1000},
		{Kind: kv.OpPut, Key: 2, Val: 1000},
	}
	if err := dsess.Do(seed, nil); err != nil {
		t.Fatal(err)
	}

	d := NewHTTPDriverConfig("http://"+proxy.Addr(), HTTPDriverConfig{
		MaxRetries: 4, BackoffBase: time.Millisecond, BackoffCap: 5 * time.Millisecond,
		BreakerThreshold: -1,
	})
	sess, err := d.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	proxy.ResetNextResponses(1) // the transfer's first answer dies on the wire

	amt := uint64(100)
	transfer := []kv.Op{
		{Kind: kv.OpAdd, Key: 1, Val: -amt},
		{Kind: kv.OpAdd, Key: 2, Val: amt},
	}
	if err := sess.Do(transfer, nil); err != nil {
		t.Fatalf("transfer through fault: %v", err)
	}

	res := make([]kv.Result, 2)
	if err := dsess.Do([]kv.Op{{Kind: kv.OpGet, Key: 1}, {Kind: kv.OpGet, Key: 2}}, res); err != nil {
		t.Fatal(err)
	}
	return res[0].Val, res[1].Val, d.Stats()
}

// TestRetryDuplicatesWithoutDedupWindow is the seeded-fault half the
// dedup window exists to fix: with the window disabled, the retry of a
// transfer whose answer was eaten re-executes it — the money moves
// twice. This test documents the failure mode; its sibling below proves
// the window removes it under the identical fault.
func TestRetryDuplicatesWithoutDedupWindow(t *testing.T) {
	bal1, bal2, st := transferThroughFault(t, 0)
	if st.Retries == 0 {
		t.Fatal("injected fault never fired: no retry happened")
	}
	if bal1 != 800 || bal2 != 1200 {
		t.Fatalf("balances = %d/%d, want 800/1200 (the documented duplication: both attempts executed)", bal1, bal2)
	}
}

// TestRetryExactlyOnceWithDedupWindow is the acceptance half: same
// seeded fault, dedup window enabled — the retry is answered from the
// window, the transfer lands exactly once.
func TestRetryExactlyOnceWithDedupWindow(t *testing.T) {
	bal1, bal2, st := transferThroughFault(t, 4096)
	if st.Retries == 0 {
		t.Fatal("injected fault never fired: no retry happened")
	}
	if bal1 != 900 || bal2 != 1100 {
		t.Fatalf("balances = %d/%d, want 900/1100 (exactly-once across the retry)", bal1, bal2)
	}
}
