package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"medley/internal/harness"
	"medley/internal/kv"
)

// This file is medleyd's HTTP surface:
//
//	POST /v1/batch — execute one atomic transaction (wire.go)
//	GET  /metrics  — counter/gauge snapshot of the whole stack
//	GET  /healthz  — liveness + system identity
//
// Handlers are thin: decode, Submit, encode. Admission control lives in
// the Service (Submit sheds with ErrShed → 429), not in the handler, so
// in-process and HTTP callers are throttled identically.

// maxBodyBytes bounds a request body; a batch of MaxOpsPerBatch ops fits
// comfortably.
const maxBodyBytes = 1 << 20

// healthResponse is the body of GET /healthz.
type healthResponse struct {
	System string `json:"system"`
	Shards int    `json:"shards"`
}

// metricsResponse is the body of GET /metrics: cumulative counters since
// process start plus derived gauges, the same shape reports embed.
type metricsResponse struct {
	Counters []harness.Metric `json:"counters"`
	Gauges   []harness.Gauge  `json:"gauges"`
}

// Handler serves the service API.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if req.DeadlineMs < 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("negative deadline_ms %d", req.DeadlineMs))
			return
		}
		if len(req.ID) > MaxRequestID {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("request id of %d bytes exceeds limit %d", len(req.ID), MaxRequestID))
			return
		}
		d, err := decodeBatch(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := validateOps(d.ops); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		ctx := r.Context()
		if req.DeadlineMs > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMs)*time.Millisecond)
			defer cancel()
		}
		rres := make([]kv.Result, len(d.ops))
		switch err := s.SubmitCtx(ctx, req.ID, d.ops, rres); {
		case err == nil:
			writeJSON(w, http.StatusOK, BatchResponse{Results: encodeResults(d, rres)})
		case errors.Is(err, ErrShed):
			// Tell the client when capacity should free up: the time to
			// drain the current pool backlog, in (possibly fractional)
			// seconds. Clients that honor it retry once instead of
			// immediately reporting the shed.
			w.Header().Set("Retry-After",
				strconv.FormatFloat(s.RetryAfter().Seconds(), 'f', 3, 64))
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrExpired):
			// The deadline passed before execution began; nothing ran, so
			// the client may retry (a fresh deadline, the same ID).
			writeError(w, http.StatusGatewayTimeout, err.Error())
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, metricsResponse{
			Counters: s.MetricsSnapshot(),
			Gauges:   s.Gauges(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		shards := 1
		if sc, ok := s.Backend().(harness.ShardCounter); ok {
			shards = sc.ShardCount()
		}
		writeJSON(w, http.StatusOK, healthResponse{System: s.Backend().Name(), Shards: shards})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}
