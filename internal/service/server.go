package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"medley/internal/cdc"
	"medley/internal/harness"
	"medley/internal/kv"
	"medley/internal/replica"
)

// This file is medleyd's HTTP surface:
//
//	POST /v1/batch    — execute one atomic transaction (wire.go)
//	GET  /metrics     — counter/gauge snapshot of the whole stack
//	GET  /healthz     — liveness + system identity + replication role
//	GET  /v1/watch    — chunked change-feed stream (replication enabled)
//	GET  /v1/snapshot — fuzzy state snapshot of one feed shard
//	POST /v1/promote  — flip a follower node into a leader (Node only)
//
// Handlers are thin: decode, Submit, encode. Admission control lives in
// the Service (Submit sheds with ErrShed → 429), not in the handler, so
// in-process and HTTP callers are throttled identically. Replication
// gating (follower nodes rejecting writes and over-lag reads) lives in
// Node, threaded through here the same way.

// maxBodyBytes bounds a request body; a batch of MaxOpsPerBatch ops fits
// comfortably.
const maxBodyBytes = 1 << 20

// watchChunkCap bounds one watch stream chunk; it stays under the
// follower's apply-batch limit so a chunk replays as one transaction.
const watchChunkCap = 256

// watchHeartbeat paces heartbeat lines on an idle watch stream: often
// enough that followers track the leader head (and liveness) closely.
const watchHeartbeat = 100 * time.Millisecond

// healthResponse is the body of GET /healthz.
type healthResponse struct {
	System     string `json:"system"`
	Shards     int    `json:"shards"`
	Role       string `json:"role,omitempty"`
	FeedShards int    `json:"feed_shards,omitempty"`
}

// metricsResponse is the body of GET /metrics: cumulative counters since
// process start plus derived gauges, the same shape reports embed.
type metricsResponse struct {
	Counters []harness.Metric `json:"counters"`
	Gauges   []harness.Gauge  `json:"gauges"`
}

// Handler serves the service API of a standalone (always-leader) node.
// Replicated deployments serve Node.Handler instead, which adds the
// follower gating and the promote endpoint on top of the same mux.
func Handler(s *Service) http.Handler { return handler(s, nil) }

// handler builds the mux; n is nil for standalone services.
func handler(s *Service, n *Node) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if req.DeadlineMs < 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("negative deadline_ms %d", req.DeadlineMs))
			return
		}
		if len(req.ID) > MaxRequestID {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("request id of %d bytes exceeds limit %d", len(req.ID), MaxRequestID))
			return
		}
		d, err := decodeBatch(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := validateOps(d.ops); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if n != nil {
			if code, msg, retry := n.gateBatch(d.ops); code != 0 {
				if retry > 0 {
					w.Header().Set("Retry-After",
						strconv.FormatFloat(retry.Seconds(), 'f', 3, 64))
				}
				writeError(w, code, msg)
				return
			}
		}
		ctx := r.Context()
		if req.DeadlineMs > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMs)*time.Millisecond)
			defer cancel()
		}
		rres := make([]kv.Result, len(d.ops))
		switch err := s.SubmitCtx(ctx, req.ID, d.ops, rres); {
		case err == nil:
			writeJSON(w, http.StatusOK, BatchResponse{Results: encodeResults(d, rres)})
		case errors.Is(err, ErrShed):
			// Tell the client when capacity should free up: the time to
			// drain the current pool backlog, in (possibly fractional)
			// seconds. Clients that honor it retry once instead of
			// immediately reporting the shed.
			w.Header().Set("Retry-After",
				strconv.FormatFloat(s.RetryAfter().Seconds(), 'f', 3, 64))
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrExpired):
			// The deadline passed before execution began; nothing ran, so
			// the client may retry (a fresh deadline, the same ID).
			writeError(w, http.StatusGatewayTimeout, err.Error())
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		counters := s.MetricsSnapshot()
		if n != nil {
			counters = append(counters, n.replMetrics()...)
			sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
		}
		writeJSON(w, http.StatusOK, metricsResponse{
			Counters: counters,
			Gauges:   s.Gauges(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		shards := 1
		if sc, ok := s.Backend().(harness.ShardCounter); ok {
			shards = sc.ShardCount()
		}
		h := healthResponse{System: s.Backend().Name(), Shards: shards, Role: RoleLeader}
		if n != nil {
			h.Role = n.Role()
		}
		if s.cfg.Feed != nil {
			h.FeedShards = s.cfg.Feed.ShardCount()
		}
		writeJSON(w, http.StatusOK, h)
	})
	if s.cfg.Feed != nil {
		mux.HandleFunc("GET /v1/watch", func(w http.ResponseWriter, r *http.Request) {
			serveWatch(s.cfg.Feed, w, r)
		})
		mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
			serveSnapshot(s, w, r)
		})
	}
	if n != nil {
		mux.HandleFunc("POST /v1/promote", func(w http.ResponseWriter, r *http.Request) {
			promoted := n.Promote()
			writeJSON(w, http.StatusOK, replica.PromoteResponse{Role: n.Role(), Promoted: promoted})
		})
	}
	return mux
}

// feedShard parses and bounds the shard query parameter.
func feedShard(feed *cdc.Feed, r *http.Request) (int, error) {
	shard, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		return 0, fmt.Errorf("bad shard: %v", err)
	}
	if shard < 0 || shard >= feed.ShardCount() {
		return 0, fmt.Errorf("shard %d out of range [0,%d)", shard, feed.ShardCount())
	}
	return shard, nil
}

// serveWatch streams one feed shard from a cursor as chunked ndjson:
// entry chunks while behind, heartbeats while caught up, a compacted
// marker (or 410 upfront) when the cursor fell off the ring.
func serveWatch(feed *cdc.Feed, w http.ResponseWriter, r *http.Request) {
	shard, err := feedShard(feed, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	buf := make([]cdc.Entry, watchChunkCap)
	enc := json.NewEncoder(w)
	started := false
	hb := time.NewTicker(watchHeartbeat)
	defer hb.Stop()
	for {
		got, rerr := feed.ReadFrom(shard, from, buf)
		if rerr != nil { // ErrCompacted
			if !started {
				writeError(w, http.StatusGone, rerr.Error())
				return
			}
			_ = enc.Encode(replica.WatchChunk{Compacted: true, Head: feed.Head(shard)})
			fl.Flush()
			return
		}
		if !started {
			started = true
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		if len(got) > 0 {
			if err := enc.Encode(replica.WatchChunk{Entries: got, Head: feed.Head(shard)}); err != nil {
				return
			}
			fl.Flush()
			from = got[len(got)-1].Seq + 1
			continue
		}
		// Caught up: heartbeat, then wait for an admission, the heartbeat
		// tick, client departure, or feed close.
		if err := enc.Encode(replica.WatchChunk{Hb: true, Head: feed.Head(shard)}); err != nil {
			return
		}
		fl.Flush()
		if feed.Closed() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-feed.Notify():
		case <-hb.C:
		}
	}
}

// serveSnapshot answers one shard's fuzzy snapshot. The feed head is
// read BEFORE the state scan: every committed write the scan might miss
// has a feed seq above the returned anchor, so snapshot + replay from
// from_seq converges (feed values are absolute).
func serveSnapshot(s *Service, w http.ResponseWriter, r *http.Request) {
	feed := s.cfg.Feed
	snap, ok := s.be.(harness.Snapshotter)
	if !ok {
		writeError(w, http.StatusNotImplemented, "backend cannot snapshot state")
		return
	}
	shard, err := feedShard(feed, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := replica.SnapshotResponse{
		Shard:   shard,
		Shards:  feed.ShardCount(),
		FromSeq: feed.Head(shard) + 1,
		Entries: []replica.SnapshotKV{},
	}
	snap.StateSnapshot(func(key, val uint64) bool {
		if feed.ShardOf(key) == shard {
			resp.Entries = append(resp.Entries, replica.SnapshotKV{Key: key, Val: val})
		}
		return true
	})
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}
