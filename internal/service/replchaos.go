package service

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"medley/internal/cdc"
	"medley/internal/faultnet"
	"medley/internal/harness"
	"medley/internal/kv"
)

// This file is the replication chaos runner, the measured half of the
// replication claim. Two in-process medleyd nodes — a leader and a
// follower replaying its feed — sit behind real TCP listeners; a fleet
// of journaling senders drives them through an HTTPDriver configured
// with replica read routing and leader failover. Two fault modes:
//
//   - Failover (Failovers > 0): the leader is killed mid-traffic the way
//     a SIGKILL looks from outside (every connection reset, watch
//     streams included), the follower is promoted, and a FRESH follower
//     (empty backend, snapshot bootstrap) starts on the dead leader's
//     address following the new leader. Acked writes the follower had
//     not replayed at promotion are lost by design in an asynchronous
//     protocol; the runner enumerates them from the dead leader's feed
//     suffix and taints those keys in the journal model, so the final
//     divergence check measures the loss instead of hiding it — and
//     everything OUTSIDE the taint set must still match exactly.
//
//   - Lag (Partitions > 0): a faultnet proxy sits on the follower's
//     replication path. Partition episodes stall the feed, replay lag
//     builds past MaxLag, and follower reads must be rejected as stale
//     (the driver falls back to the leader and counts the rejection);
//     each Heal cuts the stalled stream and the follower reconnects and
//     catches up. No data is ever lost in this mode — the final check
//     demands zero divergence with zero tainted keys.
//
// Verification extends the PR 2/PR 9 journal machinery: senders journal
// definitive write acks per partitioned key class, in-doubt outcomes
// taint, and harness.VerifyReplicaWire diffs the FOLLOWER's state
// against the merged committed model, classifying missing/stale/
// mismatched/leaked keys.

// ReplicaChaosConfig parameterizes one replication chaos run. Exactly
// one of Failovers or Partitions must be positive.
type ReplicaChaosConfig struct {
	// System is a benchmark-registry spec; it must resolve to a
	// snapshot-capable backend (snapshots serve both the follower
	// bootstrap and the final divergence check).
	System     string
	SystemOpts harness.SystemOpts

	// Service is each node's pipeline config (applied to every
	// incarnation; the dedup window dies with an incarnation).
	Service Config

	// Client tunes the sender-side HTTPDriver. Replicas is filled in by
	// the runner with both node addresses.
	Client HTTPDriverConfig

	// FeedShards/FeedRing/MaxLag/MaxSilence are the nodes' replication
	// knobs (see NodeConfig). The failover mode needs FeedRing to cover
	// the run's write volume so promotion-time loss stays enumerable; the
	// lag mode needs MaxSilence below PartitionDur or the partition is
	// invisible to the read gate (a cut feed freezes the follower's lag).
	FeedShards int
	FeedRing   int
	MaxLag     uint64
	MaxSilence time.Duration

	// Failovers is how many leader kill + promote + fresh-follower
	// cycles land mid-run, spread evenly across Duration.
	Failovers int

	// Partitions is how many feed-partition episodes land mid-run, each
	// holding PartitionDur before healing.
	Partitions   int
	PartitionDur time.Duration

	// Senders, Rate, Duration shape the open-loop workload.
	Senders  int
	Rate     float64
	Duration time.Duration

	KeyRange uint64
	Preload  int
	Seed     int64
	Mix      harness.Mix
	Dist     harness.Dist
}

// ReplicaChaosResult is the outcome of one replication chaos run.
type ReplicaChaosResult struct {
	System  string
	Senders int
	Elapsed time.Duration

	Completed uint64
	Shed      uint64
	Errors    uint64
	Expired   uint64
	InDoubt   uint64

	Retries         uint64
	DriverFailovers uint64 // leader base swaps the driver performed
	// DriverRecoveries counts failover sweeps resolved by the current
	// base answering as leader again — what a kill looks like to the
	// driver when the promoted node rebinds the dead leader's address
	// before the sweep runs. Swaps + recoveries together measure how
	// often the driver had to re-confirm the leadership.
	DriverRecoveries uint64
	StaleRejections  uint64 // follower reads refused for lag, fell back

	Failovers  int // kill+promote cycles performed
	Partitions int // partition episodes performed

	// LostWrites counts feed entries acked by a killed leader that its
	// follower had not replayed at promotion — the asynchronous
	// replication loss, enumerated and tainted rather than hidden.
	LostWrites int

	MaxReplayLag uint64 // highest true replay lag sampled (leader head − follower cursor)
	DowntimeNs   int64  // wall time from each kill to the fresh follower serving

	Goodput      float64 // completed / elapsed, txn/s
	Availability float64 // completed / (completed + errors + expired + in-doubt)

	// Verify diffs the final follower's caught-up state against the
	// merged journal model (lost-suffix keys tainted out).
	Verify  harness.ReplicaCheckResult
	Tainted int
}

// Violations is the replica divergence total (reordered excluded; see
// ReplicaCheckResult.Violations).
func (r ReplicaChaosResult) Violations() uint64 { return r.Verify.Violations() }

// replNode hosts one node incarnation behind a real listener. The
// backend is fresh per incarnation — a killed leader's state dies with
// it, and its replacement bootstraps over the wire like any follower.
type replNode struct {
	cfg  *ReplicaChaosConfig
	addr string
	ln   net.Listener
	srv  *http.Server
	node *Node
}

// url is the node's client-facing base.
func (rn *replNode) url() string { return "http://" + rn.addr }

// startReplNode builds a fresh system + node and serves it on addr
// (":0" for first bind; rebinding a dead node's address retries
// briefly). follow "" starts a leader.
func startReplNode(cfg *ReplicaChaosConfig, addr, follow string) (*replNode, error) {
	sys, err := harness.NewSystem(cfg.System, cfg.SystemOpts)
	if err != nil {
		return nil, fmt.Errorf("replchaos: %w", err)
	}
	be, ok := sys.(Backend)
	if !ok {
		return nil, fmt.Errorf("replchaos: system %q has no batch executor", cfg.System)
	}
	if _, ok := be.(harness.Snapshotter); !ok {
		return nil, fmt.Errorf("replchaos: system %q cannot snapshot (needed for bootstrap and verification)", cfg.System)
	}
	n, err := NewNode(NodeConfig{
		Backend:    be,
		Service:    cfg.Service,
		FeedShards: cfg.FeedShards,
		FeedRing:   cfg.FeedRing,
		Follow:     follow,
		MaxLag:     cfg.MaxLag,
		MaxSilence: cfg.MaxSilence,
	})
	if err != nil {
		return nil, fmt.Errorf("replchaos: %w", err)
	}
	rn := &replNode{cfg: cfg, addr: addr, node: n}
	var ln net.Listener
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		n.Close()
		return nil, fmt.Errorf("replchaos: bind %s: %w", addr, err)
	}
	rn.ln = ln
	rn.addr = ln.Addr().String()
	rn.srv = &http.Server{Handler: n.Handler()}
	go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(rn.srv, ln)
	return rn, nil
}

// kill tears the incarnation down hard: srv.Close resets every live
// connection (clients and watch streams alike), then the node drains —
// every write it acked reaches its feed before the feed is read for the
// lost-suffix accounting.
func (rn *replNode) kill() {
	_ = rn.srv.Close()
	rn.node.Close()
}

// lostSuffix enumerates the feed entries of a killed-and-drained leader
// that follower fol never applied: per shard, everything past the
// follower's replay cursor up to the leader's head. The feed's rings
// stay readable after Close precisely for this accounting.
func lostSuffix(dead *Node, fol *Node) ([]kv.Op, int, error) {
	var ops []kv.Op
	lost := 0
	buf := make([]cdc.Entry, 0, 512)
	feed := dead.Feed()
	for shard := 0; shard < feed.ShardCount(); shard++ {
		from := fol.Follower().Applied(shard) + 1
		head := feed.Head(shard)
		for from <= head {
			var err error
			buf, err = feed.ReadFrom(shard, from, buf[:0])
			if err != nil {
				return nil, 0, fmt.Errorf("replchaos: lost-suffix shard %d from %d: %w (FeedRing too small for the run's write volume)", shard, from, err)
			}
			if len(buf) == 0 {
				break
			}
			for _, e := range buf {
				ops = append(ops, kv.Op{Kind: kv.OpPut, Key: e.Key})
				lost++
			}
			from = buf[len(buf)-1].Seq + 1
		}
	}
	return ops, lost, nil
}

// RunReplicaChaos executes one replication chaos run. Sequence: leader +
// follower up → preload (journaled) → senders offer load while the
// fault schedule runs → stop → wait for the follower to catch up →
// VerifyReplicaWire against the follower's state.
func RunReplicaChaos(cfg ReplicaChaosConfig) (ReplicaChaosResult, error) {
	if (cfg.Failovers > 0) == (cfg.Partitions > 0) {
		return ReplicaChaosResult{}, fmt.Errorf("replchaos: exactly one of Failovers (%d) or Partitions (%d) must be positive", cfg.Failovers, cfg.Partitions)
	}
	if cfg.Senders <= 0 {
		cfg.Senders = 8
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 2000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.KeyRange == 0 {
		cfg.KeyRange = 1 << 16
	}
	if cfg.KeyRange < uint64(cfg.Senders) {
		return ReplicaChaosResult{}, fmt.Errorf("replchaos: key range %d < %d senders", cfg.KeyRange, cfg.Senders)
	}
	if cfg.PartitionDur <= 0 {
		cfg.PartitionDur = 300 * time.Millisecond
	}

	leader, err := startReplNode(&cfg, "127.0.0.1:0", "")
	if err != nil {
		return ReplicaChaosResult{}, err
	}
	// In lag mode the follower replays through a fault proxy; in
	// failover mode it connects directly.
	var proxy *faultnet.Proxy
	followPath := leader.url()
	if cfg.Partitions > 0 {
		proxy, err = faultnet.New("127.0.0.1:0", leader.addr)
		if err != nil {
			leader.kill()
			return ReplicaChaosResult{}, err
		}
		defer proxy.Close()
		followPath = "http://" + proxy.Addr()
	}
	follower, err := startReplNode(&cfg, "127.0.0.1:0", followPath)
	if err != nil {
		leader.kill()
		return ReplicaChaosResult{}, err
	}

	// topo tracks the live pair across failovers for the senders' driver
	// (static: the two ADDRESSES are stable, roles rotate between them)
	// and the lag sampler (dynamic: which node is currently follower).
	var topoMu sync.Mutex
	curLeader, curFollower := leader, follower

	cfg.Client.Replicas = []string{leader.url(), follower.url()}
	driver := NewHTTPDriverConfig(leader.url(), cfg.Client)
	if err := driver.Start(); err != nil {
		leader.kill()
		follower.kill()
		return ReplicaChaosResult{}, fmt.Errorf("replchaos: %w", err)
	}
	defer driver.Close()

	killBoth := func() {
		topoMu.Lock()
		a, b := curLeader, curFollower
		topoMu.Unlock()
		a.kill()
		b.kill()
	}

	// Wait for the follower's bootstrap before offering load, bounded.
	bootDeadline := time.Now().Add(10 * time.Second)
	for !follower.node.Follower().Ready() {
		if time.Now().After(bootDeadline) {
			killBoth()
			return ReplicaChaosResult{}, fmt.Errorf("replchaos: follower never bootstrapped")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Preload through the wire, journaled, keys partitioned round-robin
	// into sender residue classes (the journal merge stays exact).
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := harness.NewWireJournal()
	taint := harness.NewWireJournal() // promotion-time lost keys land here
	if cfg.Preload > 0 {
		sess, err := driver.NewSession()
		if err != nil {
			killBoth()
			return ReplicaChaosResult{}, err
		}
		ops := make([]kv.Op, 0, preloadChunk)
		flush := func() error {
			if len(ops) == 0 {
				return nil
			}
			for {
				err := sess.Do(ops, nil)
				switch {
				case err == nil:
					base.Commit(ops)
				case IsInDoubt(err):
					base.Taint(ops)
				case err == harness.ErrOverload:
					time.Sleep(time.Millisecond)
					continue
				default:
					return err
				}
				ops = ops[:0]
				return nil
			}
		}
		for i := 0; i < cfg.Preload; i++ {
			k := uint64(rng.Int63n(int64(cfg.KeyRange)))
			k = harness.PartitionKey(k, i%cfg.Senders, cfg.Senders, cfg.KeyRange)
			ops = append(ops, kv.Op{Kind: kv.OpPut, Key: k, Val: k})
			if len(ops) == preloadChunk {
				if err := flush(); err != nil {
					killBoth()
					return ReplicaChaosResult{}, fmt.Errorf("replchaos: preload: %w", err)
				}
			}
		}
		if err := flush(); err != nil {
			killBoth()
			return ReplicaChaosResult{}, fmt.Errorf("replchaos: preload: %w", err)
		}
		_ = sess.Close()
	}

	// Lag sampler: tracks the highest TRUE replay lag — the live leader's
	// feed heads minus the live follower's cursors. The follower's own
	// Lag() cannot see a partition (its known heads freeze with the
	// feed), but the runner holds both nodes, so it measures what an
	// outside observer would. Skipped while the follower bootstraps (its
	// cursors are not yet anchored in the leader's sequence space).
	var maxLagSeen uint64
	var lagMu sync.Mutex
	samplerStop := make(chan struct{})
	go func() {
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case <-t.C:
				topoMu.Lock()
				l, f := curLeader, curFollower
				topoMu.Unlock()
				fol := f.node.Follower()
				if fol == nil || !fol.Ready() {
					continue
				}
				feed := l.node.Feed()
				var lag uint64
				for s := 0; s < feed.ShardCount(); s++ {
					if h, a := feed.Head(s), fol.Applied(s); h > a && h-a > lag {
						lag = h - a
					}
				}
				lagMu.Lock()
				if lag > maxLagSeen {
					maxLagSeen = lag
				}
				lagMu.Unlock()
			}
		}
	}()

	// Sender fleet, identical discipline to RunChaos: paced open-loop,
	// writes partitioned per sender, definitive acks journaled, in-doubt
	// outcomes tainted.
	stop := make(chan struct{})
	senders := make([]*chaosSender, cfg.Senders)
	var wg sync.WaitGroup
	interval := float64(time.Second) * float64(cfg.Senders) / cfg.Rate
	for i := 0; i < cfg.Senders; i++ {
		seed := cfg.Seed + int64(i)*7919 + 1
		s := &chaosSender{
			r:       rand.New(rand.NewSource(seed)),
			journal: harness.NewWireJournal(),
		}
		senders[i] = s
		sess, err := driver.NewSession()
		if err != nil {
			close(stop)
			close(samplerStop)
			killBoth()
			return ReplicaChaosResult{}, err
		}
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer sess.Close()
			gen := harness.NewTxGen(cfg.Dist, cfg.KeyRange, cfg.Mix, seed^0x5DEECE66D)
			var kops []kv.Op
			next := time.Now()
			for {
				select {
				case <-stop:
					return
				default:
				}
				next = next.Add(time.Duration(s.r.ExpFloat64() * interval))
				if wait := time.Until(next); wait > 0 {
					time.Sleep(wait)
				}
				ops := gen.Next()
				for j := range ops {
					if ops[j].Kind != harness.OpGet {
						ops[j].Key = harness.PartitionKey(ops[j].Key, tid, cfg.Senders, cfg.KeyRange)
					}
				}
				kops = harness.KvOps(kops, ops)
				startReq := time.Now()
				err := sess.Do(kops, nil)
				switch {
				case err == nil:
					s.completed++
					s.journal.Commit(kops)
					s.record(time.Since(startReq))
				case IsInDoubt(err):
					s.indoubt++
					s.journal.Taint(kops)
				case err == harness.ErrOverload:
					s.shed++
				case err == harness.ErrExpired:
					s.expired++
				default:
					s.errors++
				}
			}
		}(i)
	}

	res := ReplicaChaosResult{System: cfg.System, Senders: cfg.Senders}
	start := time.Now()
	events := cfg.Failovers + cfg.Partitions
	runErr := func() error {
		for i := 0; i < events; i++ {
			at := start.Add(cfg.Duration * time.Duration(i+1) / time.Duration(events+1))
			if wait := time.Until(at); wait > 0 {
				time.Sleep(wait)
			}
			if cfg.Partitions > 0 {
				// Lag episode: stall the replication path, hold, heal.
				// The follower's stalled stream is cut by Heal and it
				// reconnects from its cursor.
				proxy.Set(faultnet.Faults{Partition: true})
				time.Sleep(cfg.PartitionDur)
				proxy.Heal()
				res.Partitions++
				continue
			}
			// Failover cycle: kill the leader, promote the follower,
			// account the unreplicated suffix, start a fresh follower on
			// the dead address following the new leader. Promotion happens
			// the instant the connections die — a real SIGKILL does not
			// wait for the victim to drain; the drain here only exists so
			// the dead feed holds every acked write for the lost-suffix
			// accounting, and it must not stretch the unavailability
			// window.
			killStart := time.Now()
			topoMu.Lock()
			dead, heir := curLeader, curFollower
			topoMu.Unlock()
			_ = dead.srv.Close()
			heir.node.Promote()
			dead.node.Close()
			lostOps, lost, err := lostSuffix(dead.node, heir.node)
			if err != nil {
				return err
			}
			if lost > 0 {
				taint.Taint(lostOps)
				res.LostWrites += lost
			}
			fresh, err := startReplNode(&cfg, dead.addr, heir.url())
			if err != nil {
				return err
			}
			topoMu.Lock()
			curLeader, curFollower = heir, fresh
			topoMu.Unlock()
			res.DowntimeNs += int64(time.Since(killStart))
			res.Failovers++
		}
		if wait := time.Until(start.Add(cfg.Duration)); wait > 0 {
			time.Sleep(wait)
		}
		return nil
	}()
	close(stop)
	wg.Wait()
	res.Elapsed = time.Since(start)
	if runErr != nil {
		close(samplerStop)
		killBoth()
		return res, runErr
	}

	// Let the final follower catch up (replication is asynchronous; the
	// divergence check targets the caught-up replica). The check compares
	// the LEADER's true feed heads against the follower's cursors — the
	// follower's own Lag() reads zero whenever its known head is stale
	// (e.g. between the last admission and the next heartbeat), which
	// would hand the verifier a replica missing the run's final writes.
	// Applied cursors advance only after the batch is applied locally, so
	// cursor == head means the state is complete.
	topoMu.Lock()
	finalLeader, finalFollower := curLeader, curFollower
	topoMu.Unlock()
	caughtUp := func() bool {
		fol := finalFollower.node.Follower()
		if !fol.Ready() {
			return false
		}
		feed := finalLeader.node.Feed()
		for s := 0; s < feed.ShardCount(); s++ {
			if fol.Applied(s) < feed.Head(s) {
				return false
			}
		}
		return true
	}
	catchDeadline := time.Now().Add(15 * time.Second)
	for !caughtUp() {
		if time.Now().After(catchDeadline) {
			close(samplerStop)
			killBoth()
			return res, fmt.Errorf("replchaos: follower never caught up (lag %d)",
				finalFollower.node.Follower().Lag())
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(samplerStop)

	journals := make([]*harness.WireJournal, 0, cfg.Senders+2)
	journals = append(journals, base, taint)
	for _, s := range senders {
		res.Completed += s.completed
		res.Shed += s.shed
		res.Errors += s.errors
		res.Expired += s.expired
		res.InDoubt += s.indoubt
		journals = append(journals, s.journal)
	}
	st := driver.Stats()
	res.Retries = st.Retries
	res.DriverFailovers = st.Failovers
	res.DriverRecoveries = st.Recoveries
	res.StaleRejections = st.StaleReads
	lagMu.Lock()
	res.MaxReplayLag = maxLagSeen
	lagMu.Unlock()

	snap := finalFollower.node.Service().Backend().(harness.Snapshotter)
	res.Verify, res.Tainted = harness.VerifyReplicaWire(journals, snap.StateSnapshot)
	res.Verify.Reordered = finalFollower.node.Follower().Stats().Reordered

	if res.Elapsed > 0 {
		res.Goodput = float64(res.Completed) / res.Elapsed.Seconds()
	}
	if answered := res.Completed + res.Errors + res.Expired + res.InDoubt; answered > 0 {
		res.Availability = float64(res.Completed) / float64(answered)
	}

	finalLeader.kill()
	finalFollower.kill()
	return res, nil
}

// replicaSystemName trims a registry spec to its system family for
// report labeling (e.g. "medley-hash@4" → "medley-hash").
func replicaSystemName(spec string) string {
	if i := strings.IndexByte(spec, '@'); i >= 0 {
		return spec[:i]
	}
	return spec
}
