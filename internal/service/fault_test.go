package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"medley/internal/kv"
)

// gatedBackend's executors block inside ExecBatch until released, so a
// test can hold a request "in execution" while racing a retry against it.
type gatedBackend struct {
	fakeBackend
	started chan struct{} // signaled when an execution begins
	release chan struct{} // closed to let executions finish
}

func (b *gatedBackend) NewExecutor() kv.Executor { return &gatedExec{b: b} }

type gatedExec struct{ b *gatedBackend }

func (e *gatedExec) ExecBatch(ops []kv.Op, res []kv.Result) error {
	select {
	case e.b.started <- struct{}{}:
	default:
	}
	<-e.b.release
	fe := fakeExec{b: &e.b.fakeBackend}
	return fe.ExecBatch(ops, res)
}

// TestExpiredRequestsNeverExecute pins the deadline contract at its two
// observable choke points: a context already past its deadline is
// refused at admission, and a pooled request whose deadline passes
// before the tick drain is answered ErrExpired without its ops ever
// reaching the backend — while a live neighbor in the same batch still
// executes.
func TestExpiredRequestsNeverExecute(t *testing.T) {
	be := &fakeBackend{}
	s := New(be, Config{Workers: 1, Tick: time.Hour, PoolSize: 64})
	defer s.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if err := s.SubmitCtx(ctx, "", oneOp(1), nil); !errors.Is(err, ErrExpired) {
		t.Fatalf("pre-expired admission: err = %v, want ErrExpired", err)
	}

	dead := &request{ops: oneOp(2), done: make(chan error, 1),
		deadline: time.Now().Add(-time.Millisecond)}
	live := &request{ops: oneOp(3), done: make(chan error, 1)}
	s.pool <- dead
	s.pool <- live
	if got := s.drainTick(make([]*request, 0, 64)); got != 2 {
		t.Fatalf("drainTick disposed of %d, want 2", got)
	}
	if err := <-dead.done; !errors.Is(err, ErrExpired) {
		t.Fatalf("expired request: err = %v, want ErrExpired", err)
	}
	if err := <-live.done; err != nil {
		t.Fatalf("live request: %v", err)
	}
	if got := be.executed(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("executed = %v, want [3] (expired op ran)", got)
	}
	if got := s.expired.Load(); got != 2 {
		t.Errorf("expired counter = %d, want 2", got)
	}
}

// TestExpiredClaimAbandonedForRetry pins the dedup interaction of an
// expiry: a request dropped at its deadline abandons its window claim,
// so a retry with the same ID claims fresh and actually executes instead
// of being answered "already done" by a request that never ran.
func TestExpiredClaimAbandonedForRetry(t *testing.T) {
	be := &fakeBackend{}
	s := New(be, Config{Workers: 1, Tick: time.Hour, PoolSize: 64, DedupWindow: 8})
	defer s.Close()

	mine, prior := s.window.claim("retry-me")
	if prior != nil {
		t.Fatal("fresh ID already claimed")
	}
	dead := &request{ops: oneOp(5), done: make(chan error, 1),
		deadline: time.Now().Add(-time.Millisecond), ent: mine}
	s.pool <- dead
	s.drainTick(make([]*request, 0, 64))
	if err := <-dead.done; !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
	s.window.mu.Lock()
	_, still := s.window.m["retry-me"]
	s.window.mu.Unlock()
	if still {
		t.Fatal("expired request's claim not abandoned")
	}

	// The retry must execute for real.
	done := make(chan error, 1)
	go func() { done <- s.SubmitCtx(context.Background(), "retry-me", oneOp(5), nil) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.pool) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retry never admitted")
		}
		time.Sleep(100 * time.Microsecond)
	}
	s.drainTick(make([]*request, 0, 64))
	if err := <-done; err != nil {
		t.Fatalf("retry after expiry: %v", err)
	}
	if got := be.executed(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("executed = %v, want [5]", got)
	}
	if got := s.dedupHits.Load(); got != 0 {
		t.Errorf("dedupHits = %d, want 0 (retry must not be answered from an abandoned claim)", got)
	}
}

// TestDedupWindowHitAndEviction pins the window's core promise and its
// documented bound: a retry inside the window returns the original
// results without re-executing; once newer IDs evict the original, the
// same retry re-executes.
func TestDedupWindowHitAndEviction(t *testing.T) {
	be := &fakeBackend{}
	s := New(be, Config{Tick: 200 * time.Microsecond, DedupWindow: 2})
	defer s.Close()
	ctx := context.Background()

	res1 := make([]kv.Result, 1)
	if err := s.SubmitCtx(ctx, "a", oneOp(1), res1); err != nil {
		t.Fatal(err)
	}
	res2 := make([]kv.Result, 1)
	if err := s.SubmitCtx(ctx, "a", oneOp(1), res2); err != nil {
		t.Fatal(err)
	}
	if got := len(be.executed()); got != 1 {
		t.Fatalf("retry re-executed: %d executions, want 1", got)
	}
	if got := s.dedupHits.Load(); got != 1 {
		t.Errorf("dedupHits = %d, want 1", got)
	}
	if res2[0] != res1[0] {
		t.Errorf("retry results %+v != original %+v", res2[0], res1[0])
	}

	// Two fresh IDs through a window of 2 evict "a"; the next "a" retry
	// is outside the window and must execute again.
	if err := s.SubmitCtx(ctx, "b", oneOp(2), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitCtx(ctx, "c", oneOp(3), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitCtx(ctx, "a", oneOp(1), nil); err != nil {
		t.Fatal(err)
	}
	if got := len(be.executed()); got != 4 {
		t.Fatalf("%d executions, want 4 (evicted retry must re-execute)", got)
	}
	if got := s.dedupHits.Load(); got != 1 {
		t.Errorf("dedupHits = %d, want still 1 (eviction means re-execution, not a hit)", got)
	}
}

// TestDedupRetryParksOnInflight pins the in-flight race: a retry that
// arrives while its original is still executing parks on the claim and
// wakes with the original's results — one execution, two identical
// answers.
func TestDedupRetryParksOnInflight(t *testing.T) {
	be := &gatedBackend{started: make(chan struct{}, 1), release: make(chan struct{})}
	s := New(be, Config{Tick: 200 * time.Microsecond, Workers: 1, DedupWindow: 8})
	defer s.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	res1, res2 := make([]kv.Result, 1), make([]kv.Result, 1)
	var err1, err2 error
	wg.Add(1)
	go func() { defer wg.Done(); err1 = s.SubmitCtx(ctx, "dup", oneOp(9), res1) }()
	<-be.started // the original is inside ExecBatch now

	wg.Add(1)
	go func() { defer wg.Done(); err2 = s.SubmitCtx(ctx, "dup", oneOp(9), res2) }()
	time.Sleep(2 * time.Millisecond) // let the retry reach the claim and park
	close(be.release)
	wg.Wait()

	if err1 != nil || err2 != nil {
		t.Fatalf("errs = %v, %v", err1, err2)
	}
	if got := len(be.executed()); got != 1 {
		t.Fatalf("%d executions, want 1 (in-flight retry executed)", got)
	}
	if got := s.dedupHits.Load(); got != 1 {
		t.Errorf("dedupHits = %d, want 1", got)
	}
	if res2[0] != res1[0] {
		t.Errorf("parked retry results %+v != original %+v", res2[0], res1[0])
	}
}

// TestDedupClaimAbandonedOnShed pins the shed interaction: a request
// shed at admission leaves no claim behind, so the client's retry (the
// whole point of the ID) executes fresh instead of finding a ghost entry.
func TestDedupClaimAbandonedOnShed(t *testing.T) {
	be := &fakeBackend{}
	s := New(be, Config{PoolSize: 1, Tick: time.Hour, Workers: 1, DedupWindow: 8})

	blocker := &request{ops: oneOp(1), done: make(chan error, 1)}
	s.pool <- blocker
	if err := s.SubmitCtx(context.Background(), "shed-me", oneOp(2), nil); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	s.window.mu.Lock()
	_, still := s.window.m["shed-me"]
	s.window.mu.Unlock()
	if still {
		t.Fatal("shed request left its claim in the dedup window")
	}
	s.Close()
	<-blocker.done
}

// TestCloseDrainsDeterministically pins the shutdown contract under
// race: with Submits racing Close, every caller gets exactly one of
// {nil, ErrShed, ErrClosed}, and the number of nil answers equals the
// number of backend executions — no request is half-admitted, lost, or
// answered twice. Run under -race this also pins the mu-gated admission.
func TestCloseDrainsDeterministically(t *testing.T) {
	be := &fakeBackend{}
	s := New(be, Config{Tick: 50 * time.Microsecond, Workers: 2, PoolSize: 8})

	const n = 64
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Submit(oneOp(uint64(i)), nil)
		}(i)
	}
	time.Sleep(500 * time.Microsecond)
	s.Close()
	wg.Wait()

	completed := 0
	for i, err := range errs {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, ErrShed), errors.Is(err, ErrClosed):
		default:
			t.Fatalf("submit %d: unexpected disposition %v", i, err)
		}
	}
	if got := len(be.executed()); got != completed {
		t.Errorf("%d executions for %d completed submits", got, completed)
	}
	if err := s.Submit(oneOp(99), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close submit: err = %v, want ErrClosed", err)
	}
}
