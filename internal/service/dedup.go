package service

import (
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/kv"
)

// This file is the idempotency layer of the service: a bounded window of
// request outcomes keyed by client-chosen request ID. A client that loses
// a connection mid-request cannot tell whether the server executed it; the
// window lets it retry with the same ID and receive the original results
// instead of executing twice — turning a non-idempotent batch (a transfer
// is two fetch-and-adds) into an exactly-once operation across retries,
// for as long as the original outcome stays inside the window.
//
// The window is a ring + map: the map answers lookups, the ring is the
// FIFO eviction order that bounds memory. Entries are published in two
// steps — claimed at admission (in-flight), settled at completion — so a
// retry that races the original in flight parks on the entry and wakes
// with the original's outcome rather than re-executing. Requests that
// were never executed (shed, expired, closed) abandon their claim: the
// entry leaves the map so a later retry registers fresh, and any parked
// waiters get the disposition error (they will retry and re-register).

// dedupEntry is one request ID's slot in the window.
type dedupEntry struct {
	id   string
	done chan struct{} // closed when the outcome is published

	// Written once before done is closed; read only after.
	res      []kv.Result
	err      error
	executed bool // false when the claim was abandoned without executing
}

// dedupWindow remembers the outcomes of the last cap requests that
// carried an ID.
type dedupWindow struct {
	mu   sync.Mutex
	cap  int
	m    map[string]*dedupEntry
	ring []*dedupEntry
	head int // next eviction slot once the ring is full

	// Lifecycle counters, exported as svc_dedup_* in GET /metrics.
	claims    atomic.Uint64 // fresh IDs that entered the window
	hits      atomic.Uint64 // claims answered by a prior entry (settled or in flight)
	abandons  atomic.Uint64 // claims released unexecuted (shed/expired/closed)
	evictions atomic.Uint64 // entries pushed out by the FIFO bound
	completes atomic.Uint64 // claims settled with an executed outcome
}

func newDedupWindow(n int) *dedupWindow {
	if n <= 0 {
		return nil
	}
	return &dedupWindow{cap: n, m: make(map[string]*dedupEntry, n)}
}

// claim registers id as in-flight. It returns (entry, nil) when this call
// owns the execution, or (nil, prior) when the ID is already known —
// settled or still in flight — and the caller must await prior instead of
// executing. Registering may evict the window's oldest entry, settled or
// not: a retry arriving after its original was evicted re-executes, which
// is the documented bound of the window (size it above the product of
// retry horizon and throughput).
func (w *dedupWindow) claim(id string) (mine, prior *dedupEntry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e, ok := w.m[id]; ok {
		w.hits.Add(1)
		return nil, e
	}
	e := &dedupEntry{id: id, done: make(chan struct{})}
	if len(w.ring) < w.cap {
		w.ring = append(w.ring, e)
	} else {
		old := w.ring[w.head]
		// The slot's id may already be gone (abandoned); only remove the
		// mapping if it still points at the evicted entry.
		if cur, ok := w.m[old.id]; ok && cur == old {
			delete(w.m, old.id)
			w.evictions.Add(1)
		}
		w.ring[w.head] = e
		w.head = (w.head + 1) % w.cap
	}
	w.m[id] = e
	w.claims.Add(1)
	return e, nil
}

// complete settles e with an executed request's outcome. res is copied:
// the caller's slice is reused by its owner after Submit returns.
func (w *dedupWindow) complete(e *dedupEntry, res []kv.Result, err error) {
	if len(res) > 0 {
		e.res = make([]kv.Result, len(res))
		copy(e.res, res)
	}
	e.err = err
	e.executed = true
	close(e.done)
	w.completes.Add(1)
}

// abandon settles e for a request that was never executed (shed, expired,
// service closed): the ID leaves the map so a later retry claims fresh,
// and parked waiters wake with the disposition error.
func (w *dedupWindow) abandon(e *dedupEntry, err error) {
	w.mu.Lock()
	if cur, ok := w.m[e.id]; ok && cur == e {
		delete(w.m, e.id)
	}
	w.mu.Unlock()
	e.err = err
	close(e.done)
	w.abandons.Add(1)
}

// await parks on a prior claim of the same ID and returns its outcome,
// copying the original results into res when the prior executed (hit
// true). stop aborts the wait (service shutdown); a non-zero deadline
// aborts it at the retry's own deadline with ErrExpired.
func (e *dedupEntry) await(res []kv.Result, stop <-chan struct{}, deadline time.Time) (hit bool, err error) {
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-e.done:
	case <-stop:
		return false, ErrClosed
	case <-timeout:
		return false, ErrExpired
	}
	if !e.executed {
		return false, e.err
	}
	if res != nil {
		copy(res, e.res)
	}
	return true, e.err
}
