package service

import (
	"sync"
	"testing"
	"time"

	"medley/internal/cdc"
	"medley/internal/harness"
	"medley/internal/kv"
)

// This file is the seeded-fault proof of the divergence verifier: one
// feed entry is dropped and one is delivered out of order on the way to
// the follower, and the verifier must detect BOTH and class them
// correctly — the dropped overwrite as a stale key (the replica kept the
// older acked value), the reordered fresh insert as a missing key (the
// skipped entry never applied) — while the follower's own counters
// localize the faults (gaps, reordered).

const (
	dropKey    = 111 // second write to this key is dropped in flight
	reorderKey = 222 // this key's only write is delivered late (seq regression)
)

// seededMangler drops dropKey's second write and delays reorderKey's
// write by one chunk (so it arrives below the replay cursor).
type seededMangler struct {
	mu       sync.Mutex
	dropSeen int
	held     []cdc.Entry
	dropped  bool
	reorderd bool
}

func (m *seededMangler) mangle(shard int, entries []cdc.Entry) []cdc.Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]cdc.Entry, 0, len(entries)+len(m.held))
	for _, e := range entries {
		switch {
		case e.Key == dropKey:
			m.dropSeen++
			if m.dropSeen == 2 {
				m.dropped = true
				continue // the seeded drop
			}
			out = append(out, e)
		case e.Key == reorderKey && !m.reorderd:
			m.held = append(m.held, e) // hold for a later chunk
		default:
			out = append(out, e)
		}
	}
	// Release held entries once newer ones have passed: they now sit
	// below the follower's cursor — a reordered delivery.
	if len(m.held) > 0 && len(out) > 0 {
		m.reorderd = true
		out = append(out, m.held...)
		m.held = nil
	}
	return out
}

func TestSeededFaultDivergenceDetectedAndClassed(t *testing.T) {
	leader, lts := startNode(t, NodeConfig{FeedShards: 1})
	_ = leader
	mangler := &seededMangler{}
	follower, _ := startNode(t, NodeConfig{
		Follow:     lts.URL,
		FeedShards: 1,
		Mangle:     mangler.mangle,
	})
	waitFor(t, 5*time.Second, "follower ready", func() bool {
		return follower.Follower().Ready()
	})

	journal := harness.NewWireJournal()
	put := func(key, val uint64) {
		ops := []kv.Op{{Kind: kv.OpPut, Key: key, Val: val}}
		resp, _, _ := postNodeBatch(t, lts.URL, BatchRequest{Ops: []WireOp{
			{Op: "put", Key: key, Val: val},
		}})
		if resp.StatusCode != 200 {
			t.Fatalf("put %d: status %d", key, resp.StatusCode)
		}
		journal.Commit(ops)
	}

	// Prior value for dropKey replicates cleanly; its overwrite is the
	// entry the mangler drops.
	put(dropKey, 1000)
	waitFor(t, 5*time.Second, "prior value replicated", func() bool {
		return follower.Follower().Lag() == 0 && follower.Follower().Stats().Applied >= 1
	})
	put(dropKey, 2000) // dropped in flight → replica keeps 1000 (stale)
	put(reorderKey, 3000)
	// Filler traffic so the held reorderKey entry is released behind
	// newer seqs and the drop produces an observable gap.
	for i := uint64(0); i < 40; i++ {
		put(500+i, i)
	}

	waitFor(t, 10*time.Second, "seeded faults delivered", func() bool {
		st := follower.Follower().Stats()
		return mangler.dropped && mangler.reorderd && st.Lag == 0 &&
			st.Gaps >= 1 && st.Reordered >= 1
	})
	time.Sleep(30 * time.Millisecond)

	// The follower's counters localize both faults.
	st := follower.Follower().Stats()
	if st.Gaps < 1 {
		t.Fatalf("dropped entry not detected: gaps = %d", st.Gaps)
	}
	if st.Reordered < 1 {
		t.Fatalf("reordered entry not detected: reordered = %d", st.Reordered)
	}

	// The verifier diffs replica state against the journaled model and
	// classes each fault.
	snap, ok := follower.Service().Backend().(harness.Snapshotter)
	if !ok {
		t.Fatal("backend not snapshottable")
	}
	rc, tainted := harness.VerifyReplicaWire([]*harness.WireJournal{journal}, snap.StateSnapshot)
	rc.Reordered = st.Reordered
	if tainted != 0 {
		t.Fatalf("tainted = %d, want 0 (no in-doubt outcomes)", tainted)
	}
	if rc.Stale != 1 {
		t.Fatalf("dropped overwrite classed as %+v, want exactly 1 stale key", rc)
	}
	if rc.Missing != 1 {
		t.Fatalf("reordered insert classed as %+v, want exactly 1 missing key", rc)
	}
	if rc.Mismatched != 0 || rc.Leaked != 0 {
		t.Fatalf("phantom divergence classes: %+v", rc)
	}
	if rc.Violations() != 2 {
		t.Fatalf("violations = %d, want 2", rc.Violations())
	}
}

// TestCleanReplicationZeroDivergence is the negative control: without
// mangling the same pipeline verifies clean.
func TestCleanReplicationZeroDivergence(t *testing.T) {
	leader, lts := startNode(t, NodeConfig{FeedShards: 2})
	_ = leader
	follower, _ := startNode(t, NodeConfig{Follow: lts.URL, FeedShards: 2})
	journal := harness.NewWireJournal()
	for i := uint64(0); i < 200; i++ {
		k, v := i%50, i
		ops := []kv.Op{{Kind: kv.OpPut, Key: k, Val: v}}
		if i%7 == 6 {
			ops = []kv.Op{{Kind: kv.OpDelete, Key: k}}
			postNodeBatch(t, lts.URL, BatchRequest{Ops: []WireOp{{Op: "delete", Key: k}}})
		} else {
			postNodeBatch(t, lts.URL, BatchRequest{Ops: []WireOp{{Op: "put", Key: k, Val: v}}})
		}
		journal.Commit(ops)
	}
	waitFor(t, 10*time.Second, "follower caught up", func() bool {
		st := follower.Follower().Stats()
		// Fewer entries than ops: deletes of absent keys are no-op
		// commits and publish nothing.
		return st.Ready && st.Lag == 0 && st.Applied >= 150
	})
	time.Sleep(30 * time.Millisecond)
	snap := follower.Service().Backend().(harness.Snapshotter)
	rc, tainted := harness.VerifyReplicaWire([]*harness.WireJournal{journal}, snap.StateSnapshot)
	if rc.Violations() != 0 || tainted != 0 {
		t.Fatalf("clean replication diverged: %+v (tainted %d)", rc, tainted)
	}
	st := follower.Follower().Stats()
	if st.Gaps != 0 || st.Reordered != 0 {
		t.Fatalf("clean replication counted faults: %+v", st)
	}
}
