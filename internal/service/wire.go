package service

import (
	"fmt"

	"medley/internal/kv"
)

// This file is the wire protocol of POST /v1/batch: a JSON batch of
// operations executed as one atomic transaction, one result per wire
// operation. Point operations map 1:1 onto the kv request API
// (internal/kv ops.go); "transfer" is the one compound verb — it expands
// to a debit/credit pair of fetch-and-adds inside the same transaction,
// so a wire client gets cross-key atomic transfers without a
// read-modify-write round trip.

// WireOp is one operation of a wire batch. Fields beyond Op are
// per-verb:
//
//	{"op":"get","key":K}                 → result: value, ok=present
//	{"op":"put","key":K,"val":V}         → result: previous value, ok=existed
//	{"op":"delete","key":K}              → result: removed value, ok=existed
//	{"op":"add","key":K,"val":D}         → result: new value, ok=existed (missing keys read as 0; D wraps uint64, so a debit is the two's complement)
//	{"op":"scan","n":N}                  → result: entries visited, ok=true
//	{"op":"transfer","from":F,"to":T,"val":A} → result: sender's new balance, ok=both keys existed
type WireOp struct {
	Op   string `json:"op"`
	Key  uint64 `json:"key,omitempty"`
	Val  uint64 `json:"val,omitempty"`
	From uint64 `json:"from,omitempty"`
	To   uint64 `json:"to,omitempty"`
	N    uint64 `json:"n,omitempty"`
}

// BatchRequest is the body of POST /v1/batch. The whole batch is one
// atomic transaction.
//
// ID, when non-empty, is the client's idempotency key: a retried request
// carrying the same ID inside the server's dedup window returns the
// original results instead of re-executing, making non-idempotent
// batches (transfer) exactly-once across retries. IDs longer than
// MaxRequestID are rejected with 400.
//
// DeadlineMs, when positive, bounds the request relative to its receipt:
// a request still queued when the deadline passes is dropped without
// executing and answered with 504. Deadlines are relative, not absolute,
// so client and server clocks never need to agree. Negative values are
// rejected with 400.
type BatchRequest struct {
	ID         string   `json:"id,omitempty"`
	DeadlineMs int64    `json:"deadline_ms,omitempty"`
	Ops        []WireOp `json:"ops"`
}

// MaxRequestID bounds the idempotency key length: IDs index the server's
// dedup window, so their size is server memory.
const MaxRequestID = 128

// WireResult is one wire operation's outcome.
type WireResult struct {
	Val uint64 `json:"val"`
	Ok  bool   `json:"ok"`
}

// BatchResponse is the success body: results[i] answers ops[i].
type BatchResponse struct {
	Results []WireResult `json:"results"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// decoded is a wire batch lowered onto the kv request API: the flat op
// list the executor runs, plus each wire op's span in it (transfers
// occupy two kv ops; everything else one).
type decoded struct {
	ops   []kv.Op
	spans []int // spans[i] = kv ops consumed by wire op i
}

// decodeBatch lowers wire ops onto kv ops. Transfer expands to
// Add(from, -amount) then Add(to, +amount): both legs in one transaction
// is exactly the atomic cross-key composition the store provides.
func decodeBatch(req BatchRequest) (decoded, error) {
	d := decoded{
		ops:   make([]kv.Op, 0, len(req.Ops)),
		spans: make([]int, len(req.Ops)),
	}
	for i, w := range req.Ops {
		switch w.Op {
		case "get":
			d.ops = append(d.ops, kv.Op{Kind: kv.OpGet, Key: w.Key})
			d.spans[i] = 1
		case "put":
			d.ops = append(d.ops, kv.Op{Kind: kv.OpPut, Key: w.Key, Val: w.Val})
			d.spans[i] = 1
		case "delete":
			d.ops = append(d.ops, kv.Op{Kind: kv.OpDelete, Key: w.Key})
			d.spans[i] = 1
		case "add":
			d.ops = append(d.ops, kv.Op{Kind: kv.OpAdd, Key: w.Key, Val: w.Val})
			d.spans[i] = 1
		case "scan":
			d.ops = append(d.ops, kv.Op{Kind: kv.OpScan, Val: w.N})
			d.spans[i] = 1
		case "transfer":
			if w.From == w.To {
				return decoded{}, fmt.Errorf("op %d: transfer from == to (%d)", i, w.From)
			}
			d.ops = append(d.ops,
				kv.Op{Kind: kv.OpAdd, Key: w.From, Val: -w.Val},
				kv.Op{Kind: kv.OpAdd, Key: w.To, Val: w.Val},
			)
			d.spans[i] = 2
		default:
			return decoded{}, fmt.Errorf("op %d: unknown op %q", i, w.Op)
		}
	}
	return d, nil
}

// encodeResults folds executor results back onto wire spans. A
// transfer's result is the sender's post-debit balance, ok when both
// keys existed before the transfer.
func encodeResults(d decoded, res []kv.Result) []WireResult {
	out := make([]WireResult, len(d.spans))
	at := 0
	for i, n := range d.spans {
		if n == 2 {
			out[i] = WireResult{Val: res[at].Val, Ok: res[at].Ok && res[at+1].Ok}
		} else {
			out[i] = WireResult{Val: res[at].Val, Ok: res[at].Ok}
		}
		at += n
	}
	return out
}

// encodeOps is the client-side inverse of decodeBatch for the 1:1 verbs
// — the HTTP driver speaks raw kv ops, so its batches never need the
// transfer expansion (a transfer arrives as its two Adds).
func encodeOps(ops []kv.Op) ([]WireOp, error) {
	out := make([]WireOp, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case kv.OpGet:
			out[i] = WireOp{Op: "get", Key: op.Key}
		case kv.OpPut:
			out[i] = WireOp{Op: "put", Key: op.Key, Val: op.Val}
		case kv.OpDelete:
			out[i] = WireOp{Op: "delete", Key: op.Key}
		case kv.OpAdd:
			out[i] = WireOp{Op: "add", Key: op.Key, Val: op.Val}
		case kv.OpScan:
			out[i] = WireOp{Op: "scan", N: op.Val}
		default:
			return nil, fmt.Errorf("op %d: unencodable kind %d", i, op.Kind)
		}
	}
	return out, nil
}
