package service

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"medley/internal/harness"
)

// TestDriverParityEmitsSchemaValidReports is the acceptance check of the
// driver seam: the SAME open-loop sweep definition runs through the
// in-process driver and the HTTP driver (against a medleyd-equivalent
// httptest server over the same system spec), and both reports validate
// against testdata/bench_schema.json — one scenario body, two transports,
// one report shape.
func TestDriverParityEmitsSchemaValidReports(t *testing.T) {
	if testing.Short() {
		t.Skip("two open-loop sweeps")
	}
	schema, err := harness.LoadSchema("../../testdata/bench_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness.OpenLoopConfig{
		Rates:       []float64{2000},
		Duration:    250 * time.Millisecond,
		MaxInFlight: 8,
		KeyRange:    1 << 10,
		Preload:     256,
		Seed:        42,
		Mix:         harness.Mix{Ratio: harness.Ratio{Get: 18, Insert: 1, Remove: 1}, TxMin: 1, TxMax: 4, Mixed: 4, Transfer: 1},
		Dist:        harness.Dist{Kind: harness.DistZipfian, Theta: 1.2},
	}

	drivers := map[string]func(t *testing.T) (harness.Driver, func()){
		"inproc": func(t *testing.T) (harness.Driver, func()) {
			sys, err := harness.NewSystem("medley-hash@2", harness.SystemOpts{Buckets: 1 << 10, KeyRange: cfg.KeyRange})
			if err != nil {
				t.Fatal(err)
			}
			return harness.NewInProcDriver(sys.(harness.ExecutorSystem)), func() {}
		},
		"http": func(t *testing.T) (harness.Driver, func()) {
			svc := New(kvBackend(t, "medley-hash@2"), Config{Tick: 200 * time.Microsecond, Workers: 4})
			ts := httptest.NewServer(Handler(svc))
			return NewHTTPDriver(ts.URL), func() {
				ts.Close()
				svc.Close()
			}
		},
	}

	for kind, mk := range drivers {
		t.Run(kind, func(t *testing.T) {
			d, cleanup := mk(t)
			defer cleanup()
			res, err := harness.RunOpenLoop(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Driver != kind {
				t.Errorf("driver kind = %q, want %q", res.Driver, kind)
			}
			if res.Shards != 2 {
				t.Errorf("shards = %d, want 2", res.Shards)
			}
			ph := res.Phases[0]
			if ph.Completed == 0 {
				t.Fatal("no transaction completed")
			}
			if ph.Errors > 0 {
				t.Errorf("errors = %d, want 0", ph.Errors)
			}

			rep := harness.NewReport("service-mixed", []int{cfg.MaxInFlight}, cfg.Duration,
				cfg.KeyRange, cfg.Preload, cfg.Seed)
			rep.AddOpenLoop(res, "service-mixed", cfg.MaxInFlight)
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			paths, err := harness.CanonicalPaths(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if drift := schema.Diff(paths); drift != nil {
				t.Fatalf("%s report drifts from schema: %v", kind, drift)
			}
		})
	}
}
