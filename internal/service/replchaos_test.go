package service

import (
	"testing"
	"time"

	"medley/internal/harness"
)

// Scaled-down replica chaos runs: the committed BENCH_replica.json runs
// the full scenarios; these pin that the runner's machinery works at
// test scale.

func TestRunReplicaChaosFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	res, err := RunReplicaChaos(ReplicaChaosConfig{
		System: "medley-hash@2",
		// Size the backend to the test: the default 1<<20 buckets make the
		// bootstrap snapshot scans too slow for the race detector on small
		// runners.
		SystemOpts: harness.SystemOpts{Buckets: 1 << 12, KeyRange: 1 << 12},
		Service:    Config{Tick: 200 * time.Microsecond, Workers: 2, DedupWindow: 4096},
		Client:     HTTPDriverConfig{Deadline: 2 * time.Second, RetryBudget: -1},
		FeedShards: 2,
		Failovers:  2,
		Senders:    4,
		Rate:       600,
		Duration:   1500 * time.Millisecond,
		KeyRange:   1 << 12,
		Preload:    256,
		Seed:       1,
		Mix:        harness.Mix{Ratio: harness.Ratio{Get: 8, Insert: 2, Remove: 1}, TxMin: 1, TxMax: 4, Mixed: 1},
	})
	if err != nil {
		t.Fatalf("RunReplicaChaos: %v", err)
	}
	if res.Failovers != 2 {
		t.Errorf("failovers = %d, want 2", res.Failovers)
	}
	if res.Completed == 0 {
		t.Fatal("no transactions completed")
	}
	// The driver must have followed the leadership: at least one failover
	// sweep per run confirmed a live leader — usually by swapping the
	// base to the promoted node, but a sweep that runs after the NEXT
	// promotion rebinds the dead address finds its existing base leading
	// again and rightly swaps nothing (a recovery, not a swap).
	if res.DriverFailovers+res.DriverRecoveries == 0 {
		t.Error("driver never re-confirmed leadership after a kill")
	}
	if v := res.Violations(); v != 0 {
		t.Errorf("divergence violations = %d (%+v), want 0", v, res.Verify)
	}
	// Low bar at test scale; the committed scenario budgets 0.99.
	if res.Availability < 0.5 {
		t.Errorf("availability = %.3f, suspiciously low", res.Availability)
	}
	t.Logf("failover: completed=%d avail=%.4f lost=%d tainted=%d driverFO=%d recov=%d downtime=%v",
		res.Completed, res.Availability, res.LostWrites, res.Tainted,
		res.DriverFailovers, res.DriverRecoveries, time.Duration(res.DowntimeNs))
}

func TestRunReplicaChaosLag(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	res, err := RunReplicaChaos(ReplicaChaosConfig{
		System:       "medley-hash@2",
		SystemOpts:   harness.SystemOpts{Buckets: 1 << 12, KeyRange: 1 << 12},
		Service:      Config{Tick: 200 * time.Microsecond, Workers: 2, DedupWindow: 4096},
		Client:       HTTPDriverConfig{Deadline: 2 * time.Second, RetryBudget: -1},
		FeedShards:   2,
		MaxLag:       8,
		MaxSilence:   120 * time.Millisecond,
		Partitions:   2,
		PartitionDur: 400 * time.Millisecond,
		Senders:      4,
		Rate:         800,
		Duration:     1800 * time.Millisecond,
		KeyRange:     1 << 12,
		Preload:      256,
		Seed:         2,
		Mix:          harness.Mix{Ratio: harness.Ratio{Get: 12, Insert: 2, Remove: 1}, TxMin: 1, TxMax: 4, Mixed: 1},
	})
	if err != nil {
		t.Fatalf("RunReplicaChaos: %v", err)
	}
	if res.Partitions != 2 {
		t.Errorf("partitions = %d, want 2", res.Partitions)
	}
	// The partition must have built observable lag past the bound, and
	// lagging reads must have been refused and redirected.
	if res.MaxReplayLag <= 8 {
		t.Errorf("max replay lag = %d, want > MaxLag (partition never bit)", res.MaxReplayLag)
	}
	if res.StaleRejections == 0 {
		t.Error("no stale read was rejected during the partition")
	}
	// Lag mode loses nothing: catch-up after heal must converge exactly.
	if res.LostWrites != 0 {
		t.Errorf("lost writes = %d in lag mode, want 0", res.LostWrites)
	}
	if v := res.Violations(); v != 0 {
		t.Errorf("divergence violations = %d (%+v), want 0", v, res.Verify)
	}
	t.Logf("lag: completed=%d avail=%.4f maxLag=%d stale=%d tainted=%d",
		res.Completed, res.Availability, res.MaxReplayLag, res.StaleRejections, res.Tainted)
}
