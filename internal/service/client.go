package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/harness"
	"medley/internal/kv"
)

// HTTPDriver implements harness.Driver over the wire: the open-loop
// engine drives a medleyd server exactly as it drives an in-process
// store, so one report compares raw store latency against the full
// network pipeline. The server owns the backend's lifecycle; Start only
// verifies reachability and learns the system's identity from /healthz.
//
// The driver is fault-tolerant: every batch carries a request ID (the
// server's dedup window makes retries exactly-once), transport errors
// and 503s are retried with capped exponential backoff under a
// per-session retry budget, and a circuit breaker shared by all
// sessions opens after consecutive transport errors — failing fast
// until a healthz probe confirms the server is back.
type HTTPDriver struct {
	base   string
	cfg    HTTPDriverConfig
	client *http.Client
	system string
	shards int

	breaker *breaker
	idBase  string        // per-driver prefix making request IDs unique
	idSeq   atomic.Uint64 // per-driver counter completing each ID

	retries atomic.Uint64 // attempts beyond the first, all sessions
	inDoubt atomic.Uint64 // requests whose execution is unknown
	expired atomic.Uint64 // requests that expired client- or server-side
}

// HTTPDriverConfig tunes the driver's fault-tolerance machinery. The
// zero value means: no deadline, 3 retries per request, 2ms..250ms
// backoff, a 256-retry session budget, breaker opening after 8
// consecutive transport errors with a 200ms cooldown, and a 5s Start
// bound.
type HTTPDriverConfig struct {
	// Deadline, when positive, bounds each request end to end: the wire
	// request carries the remaining budget as deadline_ms, and the
	// client stops retrying (harness.ErrExpired) once it is spent.
	Deadline time.Duration
	// MaxRetries caps attempts beyond the first per request. Negative
	// disables retries entirely.
	MaxRetries int
	// BackoffBase and BackoffCap shape the retry backoff: the nth retry
	// waits ~BackoffBase·2ⁿ (full jitter), capped at BackoffCap.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// RetryBudget caps total retries per session across all requests, so
	// a dying server cannot multiply offered load. Negative is unlimited.
	RetryBudget int
	// BreakerThreshold opens the circuit after that many consecutive
	// transport errors. Negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// half-opening with a healthz probe.
	BreakerCooldown time.Duration
	// StartTimeout bounds Start's healthz polling.
	StartTimeout time.Duration
}

func (c HTTPDriverConfig) withDefaults() HTTPDriverConfig {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 250 * time.Millisecond
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 256
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 200 * time.Millisecond
	}
	if c.StartTimeout <= 0 {
		c.StartTimeout = 5 * time.Second
	}
	return c
}

// HTTPDriverStats is a snapshot of the driver's fault counters.
type HTTPDriverStats struct {
	Retries      uint64 // attempts beyond the first
	InDoubt      uint64 // requests whose execution is unknown
	Expired      uint64 // requests that ran out of deadline
	BreakerOpens uint64 // closed→open transitions
}

// NewHTTPDriver targets a running medleyd at base (e.g.
// "http://127.0.0.1:7654") with default fault tolerance.
func NewHTTPDriver(base string) *HTTPDriver {
	return NewHTTPDriverConfig(base, HTTPDriverConfig{})
}

// NewHTTPDriverConfig is NewHTTPDriver with explicit tuning.
func NewHTTPDriverConfig(base string, cfg HTTPDriverConfig) *HTTPDriver {
	cfg = cfg.withDefaults()
	d := &HTTPDriver{
		base: base,
		cfg:  cfg,
		client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				// Open-loop senders each hold one connection; the defaults
				// (2 idle conns per host) would thrash the pool.
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
			},
		},
		idBase: fmt.Sprintf("%08x", rand.Uint32()),
	}
	if cfg.BreakerThreshold > 0 {
		d.breaker = &breaker{
			threshold: cfg.BreakerThreshold,
			cooldown:  cfg.BreakerCooldown,
			probe:     d.healthz,
		}
	}
	return d
}

// Kind implements harness.Driver.
func (d *HTTPDriver) Kind() string { return "http" }

// System implements harness.Driver; valid after Start.
func (d *HTTPDriver) System() string { return d.system }

// ShardCount implements harness.ShardCounter with the server's answer.
func (d *HTTPDriver) ShardCount() int {
	if d.shards > 0 {
		return d.shards
	}
	return 1
}

// Stats snapshots the driver's fault counters across all sessions.
func (d *HTTPDriver) Stats() HTTPDriverStats {
	s := HTTPDriverStats{
		Retries: d.retries.Load(),
		InDoubt: d.inDoubt.Load(),
		Expired: d.expired.Load(),
	}
	if d.breaker != nil {
		s.BreakerOpens = d.breaker.opens.Load()
	}
	return s
}

// healthz runs one liveness probe, recording the server identity on
// success.
func (d *HTTPDriver) healthz() bool {
	resp, err := d.client.Get(d.base + "/healthz")
	if err != nil {
		return false
	}
	var h healthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return false
	}
	d.system, d.shards = h.System, h.Shards
	return true
}

// Start implements harness.Driver: polls /healthz until the server
// answers (it may still be starting), failing with the last probe error
// once cfg.StartTimeout is spent — a server that never comes up is a
// configuration mistake to report, not a condition to poll forever.
func (d *HTTPDriver) Start() error {
	deadline := time.Now().Add(d.cfg.StartTimeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if time.Now().After(deadline) {
				return fmt.Errorf("service: %s unreachable after %v: %w",
					d.base, d.cfg.StartTimeout, lastErr)
			}
			time.Sleep(100 * time.Millisecond)
		}
		resp, err := d.client.Get(d.base + "/healthz")
		if err != nil {
			lastErr = err
			continue
		}
		var h healthResponse
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("healthz: status %d, %v", resp.StatusCode, err)
			continue
		}
		d.system, d.shards = h.System, h.Shards
		return nil
	}
}

// preloadChunk bounds one preload batch to the server's op limit.
const preloadChunk = 512

// Preload implements harness.Driver: installs keys (key == value) with
// put batches through the ordinary wire path.
func (d *HTTPDriver) Preload(keys []uint64) error {
	sess := &httpSession{d: d} // zero retryBudget: preload is setup, unlimited
	ops := make([]kv.Op, 0, preloadChunk)
	for len(keys) > 0 {
		n := len(keys)
		if n > preloadChunk {
			n = preloadChunk
		}
		ops = ops[:0]
		for _, k := range keys[:n] {
			ops = append(ops, kv.Op{Kind: kv.OpPut, Key: k, Val: k})
		}
		keys = keys[n:]
		// A shed during preload is not overload to report — retry until
		// the batch lands.
		for {
			err := sess.Do(ops, nil)
			if err == nil {
				break
			}
			if errors.Is(err, harness.ErrOverload) {
				time.Sleep(time.Millisecond)
				continue
			}
			return err
		}
	}
	return nil
}

// NewSession implements harness.Driver. The http.Client is shared
// (connection pooling is per-transport); the session carries only its
// encode buffer and retry budget.
func (d *HTTPDriver) NewSession() (harness.DriverSession, error) {
	return &httpSession{d: d, retryBudget: d.cfg.RetryBudget}, nil
}

// Close implements harness.Driver.
func (d *HTTPDriver) Close() error {
	d.client.CloseIdleConnections()
	return nil
}

// ErrCircuitOpen is returned without touching the network while the
// driver's circuit breaker is open: the server was unreachable on
// consecutive recent attempts and the cooldown's healthz probe has not
// yet confirmed recovery. The request was never sent.
var ErrCircuitOpen = errors.New("service: circuit breaker open")

// inDoubtError marks an outcome where the request may or may not have
// executed: some attempt reached into the network and died without a
// definitive server answer. Unwrap keeps sentinel classification
// (errors.Is on the underlying cause) working.
type inDoubtError struct{ err error }

func (e *inDoubtError) Error() string { return "in doubt: " + e.err.Error() }
func (e *inDoubtError) Unwrap() error { return e.err }

// IsInDoubt reports whether err leaves the request's execution unknown —
// a transport failure after the request may have reached the server,
// never resolved by a later definitive answer. Verifiers must treat the
// request's effects as neither committed nor absent.
func IsInDoubt(err error) bool {
	var ide *inDoubtError
	return errors.As(err, &ide)
}

type httpSession struct {
	d   *HTTPDriver
	buf bytes.Buffer
	// retryBudget caps retries across the session's lifetime when
	// positive; zero or negative is unlimited.
	retryBudget int
	retryUsed   int
	rng         rand.PCG
	rngSet      bool
}

// jitter returns a uniform duration in [0, max) from a session-local
// generator (the global one would serialize senders).
func (s *httpSession) jitter(max time.Duration) time.Duration {
	if !s.rngSet {
		s.rng = *rand.NewPCG(rand.Uint64(), rand.Uint64())
		s.rngSet = true
	}
	if max <= 0 {
		return 0
	}
	return time.Duration(s.rng.Uint64() % uint64(max))
}

// backoff returns the full-jitter backoff before retry n (0-based):
// uniform in (0, min(base·2ⁿ, cap)].
func (s *httpSession) backoff(n int) time.Duration {
	c := s.d.cfg
	d := c.BackoffBase << uint(n)
	if d <= 0 || d > c.BackoffCap {
		d = c.BackoffCap
	}
	return s.jitter(d) + time.Millisecond/4
}

// Do implements harness.DriverSession: one POST /v1/batch per
// transaction, retried under the driver's fault policy. Every request
// carries a fresh ID, and every retry reuses it, so a server with a
// dedup window executes the batch at most once no matter how many
// attempts the network eats.
//
// Outcome classification, in the order the loop settles it:
//
//   - 200 → nil (definitive; a dedup replay is indistinguishable by design)
//   - 429 → harness.ErrOverload after honoring Retry-After once
//   - 504 → harness.ErrExpired (server never executed it)
//   - client-side deadline spent → harness.ErrExpired
//   - 4xx → permanent error, no retry
//   - transport error, 503 → retry with backoff while attempts and budget
//     last, then the last error
//
// Any terminal error after a transport-errored attempt is wrapped so
// IsInDoubt reports true: the dead attempt may have executed. Only a
// 200 clears the doubt — success means the batch's effects are in
// (directly, or replayed out of the dedup window). Non-200 answers
// speak for their own attempt only: after a server restart the dedup
// window is empty, so a 429/503/504 on a retry cannot prove the dead
// original never ran.
func (s *httpSession) Do(ops []kv.Op, res []kv.Result) error {
	wire, err := encodeOps(ops)
	if err != nil {
		return err
	}
	req := BatchRequest{Ops: wire}
	req.ID = s.d.idBase + "-" + strconv.FormatUint(s.d.idSeq.Add(1), 36)

	var deadline time.Time
	if s.d.cfg.Deadline > 0 {
		deadline = time.Now().Add(s.d.cfg.Deadline)
	}

	inDoubt := false // a dead attempt may have executed
	fail := func(err error) error {
		if inDoubt {
			s.d.inDoubt.Add(1)
			return &inDoubtError{err: err}
		}
		return err
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > s.d.cfg.MaxRetries ||
				(s.retryBudget > 0 && s.retryUsed >= s.retryBudget) {
				return fail(lastErr)
			}
			s.retryUsed++
			s.d.retries.Add(1)
			time.Sleep(s.backoff(attempt - 1))
		}
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				s.d.expired.Add(1)
				return fail(harness.ErrExpired)
			}
			req.DeadlineMs = int64(remaining / time.Millisecond)
			if req.DeadlineMs == 0 {
				req.DeadlineMs = 1
			}
		}
		if b := s.d.breaker; b != nil && !b.allow() {
			lastErr = ErrCircuitOpen
			continue
		}
		s.buf.Reset()
		if err := json.NewEncoder(&s.buf).Encode(req); err != nil {
			return err
		}
		wait, err := s.post(s.buf.Bytes(), res)
		switch {
		case err == nil:
			// Definitive: executed (a dedup replay of a dead attempt is
			// indistinguishable from first execution by design).
			return nil
		case errors.Is(err, errTransport):
			// The request may have executed and the answer died on the
			// wire; only a later definitive server answer can tell.
			inDoubt = true
			lastErr = err
			continue
		case errors.Is(err, harness.ErrOverload):
			// The server shed this attempt at admission. Honor the drain
			// hint once (pre-existing 429 behavior), then report the shed
			// rather than burning the retry budget: sheds are backpressure
			// working, not faults. Doubt from an earlier dead attempt is
			// NOT cleared: a shed answers for this attempt only (after a
			// restart the dedup window is empty, so it says nothing about
			// whether the original executed).
			if wait > 0 && attempt == 0 {
				time.Sleep(wait)
				lastErr = err
				continue
			}
			return fail(err)
		case errors.Is(err, harness.ErrExpired):
			// 504: the server guarantees this attempt never executed.
			s.d.expired.Add(1)
			return fail(err)
		case errors.Is(err, errRetryable):
			// 503: the service is draining for shutdown/restart — this
			// attempt was not executed, worth retrying into the restart.
			lastErr = err
			continue
		default:
			// Server rejection (4xx, decode mismatch) — definitive for
			// this attempt; still in doubt if an earlier attempt died.
			return fail(err)
		}
	}
}

// errTransport tags errors where no server answer arrived; errRetryable
// tags definitive not-executed answers worth retrying (503).
var (
	errTransport = errors.New("service: transport error")
	errRetryable = errors.New("service: transient server error")
)

// post runs one POST /v1/batch attempt. A 429 returns harness.ErrOverload
// along with the server's Retry-After hint (0 when absent or unusable).
func (s *httpSession) post(payload []byte, res []kv.Result) (time.Duration, error) {
	resp, err := s.d.client.Post(s.d.base+"/v1/batch", "application/json", bytes.NewReader(payload))
	if b := s.d.breaker; b != nil {
		b.observe(err == nil)
	}
	if err != nil {
		return 0, fmt.Errorf("%w: %w", errTransport, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		_, _ = io.Copy(io.Discard, resp.Body)
		return retryAfterDelay(resp.Header.Get("Retry-After")), harness.ErrOverload
	case http.StatusGatewayTimeout:
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, harness.ErrExpired
	case http.StatusServiceUnavailable:
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("%w: status 503", errRetryable)
	default:
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return 0, fmt.Errorf("service: batch failed: status %d: %s", resp.StatusCode, e.Error)
	}
	if res == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, nil
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		// The transaction committed server-side; only the answer died.
		return 0, fmt.Errorf("%w: reading response: %w", errTransport, err)
	}
	if len(br.Results) != len(res) {
		return 0, fmt.Errorf("service: %d results for %d ops", len(br.Results), len(res))
	}
	for i, r := range br.Results {
		res[i] = kv.Result{Val: r.Val, Ok: r.Ok}
	}
	return 0, nil
}

// retryAfterDelay parses a Retry-After header as (possibly fractional)
// seconds, clamped to at most a second so a confused server cannot stall
// a sender. 0 means absent or unusable: classify the shed immediately.
func retryAfterDelay(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.ParseFloat(h, 64)
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs * float64(time.Second))
	if d > time.Second {
		d = time.Second
	}
	return d
}

func (s *httpSession) Close() error { return nil }

// breaker is the driver-wide circuit breaker. Closed, it only counts
// consecutive transport failures; at threshold it opens and every
// session fails fast (no network) for cooldown, after which exactly one
// caller per cooldown half-opens the circuit by probing healthz —
// success closes it, failure re-arms the cooldown. Sharing one breaker
// across sessions means one recovered probe re-admits the whole fleet
// at once instead of each sender rediscovering the server.
type breaker struct {
	threshold int
	cooldown  time.Duration
	probe     func() bool

	mu         sync.Mutex
	open       bool
	downconsec int
	until      time.Time // while open: next probe time

	opens atomic.Uint64
}

// allow reports whether a request may go to the network now, running the
// half-open probe when the cooldown has elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	if !b.open {
		b.mu.Unlock()
		return true
	}
	if time.Now().Before(b.until) {
		b.mu.Unlock()
		return false
	}
	// Claim the probe slot before unlocking so concurrent callers fail
	// fast instead of stampeding healthz.
	b.until = time.Now().Add(b.cooldown)
	b.mu.Unlock()
	if b.probe() {
		b.mu.Lock()
		b.open = false
		b.downconsec = 0
		b.mu.Unlock()
		return true
	}
	return false
}

// observe records one network attempt's fate (ok = any HTTP answer
// arrived; status codes are the server being alive).
func (b *breaker) observe(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.downconsec = 0
		b.open = false
		return
	}
	b.downconsec++
	if !b.open && b.downconsec >= b.threshold {
		b.open = true
		b.until = time.Now().Add(b.cooldown)
		b.opens.Add(1)
	}
}
