package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/harness"
	"medley/internal/kv"
)

// HTTPDriver implements harness.Driver over the wire: the open-loop
// engine drives a medleyd server exactly as it drives an in-process
// store, so one report compares raw store latency against the full
// network pipeline. The server owns the backend's lifecycle; Start only
// verifies reachability and learns the system's identity from /healthz.
//
// The driver is fault-tolerant: every batch carries a request ID (the
// server's dedup window makes retries exactly-once), transport errors
// and 503s are retried with capped exponential backoff under a
// per-session retry budget, and a circuit breaker shared by all
// sessions opens after consecutive transport errors — failing fast
// until a healthz probe confirms the server is back.
type HTTPDriver struct {
	baseV  atomic.Value // string: current leader base URL (failover swaps it)
	cfg    HTTPDriverConfig
	client *http.Client
	system string
	shards int

	breaker *breaker
	idBase  string        // per-driver prefix making request IDs unique
	idSeq   atomic.Uint64 // per-driver counter completing each ID

	foMu  sync.Mutex    // serializes failover probing
	rrSeq atomic.Uint64 // round-robins read requests over replicas

	retries    atomic.Uint64 // attempts beyond the first, all sessions
	inDoubt    atomic.Uint64 // requests whose execution is unknown
	expired    atomic.Uint64 // requests that expired client- or server-side
	raWaits    atomic.Uint64 // Retry-After drain hints honored
	staleReads atomic.Uint64 // replica reads refused as stale (fell back to leader)
	failovers  atomic.Uint64 // leader base swaps after failover probes
	recoveries atomic.Uint64 // failover sweeps resolved by the current base leading again
}

// baseURL is the current leader base (failover may have swapped it).
func (d *HTTPDriver) baseURL() string { return d.baseV.Load().(string) }

// HTTPDriverConfig tunes the driver's fault-tolerance machinery. The
// zero value means: no deadline, 3 retries per request, 2ms..250ms
// backoff, a 256-retry session budget, breaker opening after 8
// consecutive transport errors with a 200ms cooldown, and a 5s Start
// bound.
type HTTPDriverConfig struct {
	// Deadline, when positive, bounds each request end to end: the wire
	// request carries the remaining budget as deadline_ms, and the
	// client stops retrying (harness.ErrExpired) once it is spent.
	Deadline time.Duration
	// MaxRetries caps attempts beyond the first per request. Negative
	// disables retries entirely.
	MaxRetries int
	// BackoffBase and BackoffCap shape the retry backoff: the nth retry
	// waits ~BackoffBase·2ⁿ (full jitter), capped at BackoffCap.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// RetryBudget caps total retries per session across all requests, so
	// a dying server cannot multiply offered load. Negative is unlimited.
	RetryBudget int
	// BreakerThreshold opens the circuit after that many consecutive
	// transport errors. Negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// half-opening with a healthz probe.
	BreakerCooldown time.Duration
	// StartTimeout bounds Start's healthz polling.
	StartTimeout time.Duration
	// RetryAfterBudget caps the cumulative Retry-After wait honored per
	// request (default 1s). Under a sustained 429 storm the client keeps
	// pacing itself by the server's drain hints until the budget is
	// spent, then reports the shed — graceful degradation instead of
	// giving up on the second hint. Negative disables honoring hints.
	RetryAfterBudget time.Duration
	// Replicas lists follower base URLs. Read-only batches route to
	// replicas round-robin; a replica that answers 409 (stale), 503 (not
	// leader), or dies on the wire falls the same request back to the
	// leader. Replicas are also failover candidates: once the leader is
	// unreachable through all retries, the driver probes every known
	// endpoint's /healthz and adopts whichever now reports itself
	// leader.
	Replicas []string
}

func (c HTTPDriverConfig) withDefaults() HTTPDriverConfig {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 250 * time.Millisecond
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 256
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 200 * time.Millisecond
	}
	if c.StartTimeout <= 0 {
		c.StartTimeout = 5 * time.Second
	}
	if c.RetryAfterBudget == 0 {
		c.RetryAfterBudget = time.Second
	}
	return c
}

// HTTPDriverStats is a snapshot of the driver's fault counters.
type HTTPDriverStats struct {
	Retries         uint64 // attempts beyond the first
	InDoubt         uint64 // requests whose execution is unknown
	Expired         uint64 // requests that ran out of deadline
	BreakerOpens    uint64 // closed→open transitions
	BreakerOpen     bool   // circuit currently open (failing fast)
	RetryAfterWaits uint64 // 429 drain hints honored
	StaleReads      uint64 // replica reads refused, fell back to leader
	Failovers       uint64 // leader base swaps after failover probes
	Recoveries      uint64 // sweeps resolved by the current base leading again
}

// NewHTTPDriver targets a running medleyd at base (e.g.
// "http://127.0.0.1:7654") with default fault tolerance.
func NewHTTPDriver(base string) *HTTPDriver {
	return NewHTTPDriverConfig(base, HTTPDriverConfig{})
}

// NewHTTPDriverConfig is NewHTTPDriver with explicit tuning.
func NewHTTPDriverConfig(base string, cfg HTTPDriverConfig) *HTTPDriver {
	cfg = cfg.withDefaults()
	d := &HTTPDriver{
		cfg: cfg,
		client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				// Open-loop senders each hold one connection; the defaults
				// (2 idle conns per host) would thrash the pool.
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
			},
		},
		idBase: fmt.Sprintf("%08x", rand.Uint32()),
	}
	d.baseV.Store(base)
	if cfg.BreakerThreshold > 0 {
		d.breaker = &breaker{
			threshold: cfg.BreakerThreshold,
			cooldown:  cfg.BreakerCooldown,
			probe:     d.healthz,
		}
	}
	return d
}

// Kind implements harness.Driver.
func (d *HTTPDriver) Kind() string { return "http" }

// System implements harness.Driver; valid after Start.
func (d *HTTPDriver) System() string { return d.system }

// ShardCount implements harness.ShardCounter with the server's answer.
func (d *HTTPDriver) ShardCount() int {
	if d.shards > 0 {
		return d.shards
	}
	return 1
}

// Stats snapshots the driver's fault counters across all sessions.
func (d *HTTPDriver) Stats() HTTPDriverStats {
	s := HTTPDriverStats{
		Retries:         d.retries.Load(),
		InDoubt:         d.inDoubt.Load(),
		Expired:         d.expired.Load(),
		RetryAfterWaits: d.raWaits.Load(),
		StaleReads:      d.staleReads.Load(),
		Failovers:       d.failovers.Load(),
		Recoveries:      d.recoveries.Load(),
	}
	if d.breaker != nil {
		s.BreakerOpens = d.breaker.opens.Load()
		s.BreakerOpen = d.breaker.isOpen()
	}
	return s
}

// MetricsSnapshot implements harness.MetricsSnapshotter so reports and
// tooling can merge the client-side fault counters (previously internal)
// alongside the server's svc_* set, drv_-prefixed.
func (d *HTTPDriver) MetricsSnapshot() []harness.Metric {
	st := d.Stats()
	open := uint64(0)
	if st.BreakerOpen {
		open = 1
	}
	return []harness.Metric{
		{Name: "drv_breaker_open", Value: open},
		{Name: "drv_breaker_opens", Value: st.BreakerOpens},
		{Name: "drv_expired", Value: st.Expired},
		{Name: "drv_failover_recoveries", Value: st.Recoveries},
		{Name: "drv_failovers", Value: st.Failovers},
		{Name: "drv_in_doubt", Value: st.InDoubt},
		{Name: "drv_retries", Value: st.Retries},
		{Name: "drv_retry_after_waits", Value: st.RetryAfterWaits},
		{Name: "drv_stale_reads", Value: st.StaleReads},
	}
}

// healthz runs one liveness probe against the current leader, recording
// the server identity on success.
func (d *HTTPDriver) healthz() bool {
	resp, err := d.client.Get(d.baseURL() + "/healthz")
	if err != nil {
		return false
	}
	var h healthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return false
	}
	d.system, d.shards = h.System, h.Shards
	return true
}

// failover sweeps every known endpoint's /healthz for one now claiming
// leadership and swaps the driver's base to it. It reports whether a
// live leader was confirmed (current base recovering counts; only an
// actual swap increments the failover counter). Serialized so
// concurrent sessions discovering a dead leader share one sweep.
func (d *HTTPDriver) failover() bool {
	if len(d.cfg.Replicas) == 0 {
		return false
	}
	d.foMu.Lock()
	defer d.foMu.Unlock()
	cur := d.baseURL()
	eps := make([]string, 0, 1+len(d.cfg.Replicas))
	eps = append(eps, cur)
	eps = append(eps, d.cfg.Replicas...)
	for _, ep := range eps {
		resp, err := d.client.Get(ep + "/healthz")
		if err != nil {
			continue
		}
		var h healthResponse
		derr := json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		// A role-less answer is a standalone (pre-replication) server:
		// it leads by definition. Followers are skipped — they may be
		// promoted any moment, but routing writes at them now would only
		// bounce off the not-leader gate.
		if h.Role != "" && h.Role != RoleLeader {
			continue
		}
		d.system, d.shards = h.System, h.Shards
		if ep != cur {
			d.baseV.Store(ep)
			d.failovers.Add(1)
		} else {
			// The current base answers as leader again — either it
			// recovered, or a promoted node rebound its address before
			// this sweep ran. Leadership is confirmed without a swap.
			d.recoveries.Add(1)
		}
		if b := d.breaker; b != nil {
			b.reset()
		}
		return true
	}
	return false
}

// Start implements harness.Driver: polls /healthz until the server
// answers (it may still be starting), failing with the last probe error
// once cfg.StartTimeout is spent — a server that never comes up is a
// configuration mistake to report, not a condition to poll forever.
func (d *HTTPDriver) Start() error {
	deadline := time.Now().Add(d.cfg.StartTimeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if time.Now().After(deadline) {
				return fmt.Errorf("service: %s unreachable after %v: %w",
					d.baseURL(), d.cfg.StartTimeout, lastErr)
			}
			time.Sleep(100 * time.Millisecond)
		}
		resp, err := d.client.Get(d.baseURL() + "/healthz")
		if err != nil {
			lastErr = err
			continue
		}
		var h healthResponse
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("healthz: status %d, %v", resp.StatusCode, err)
			continue
		}
		d.system, d.shards = h.System, h.Shards
		return nil
	}
}

// preloadChunk bounds one preload batch to the server's op limit.
const preloadChunk = 512

// Preload implements harness.Driver: installs keys (key == value) with
// put batches through the ordinary wire path.
func (d *HTTPDriver) Preload(keys []uint64) error {
	sess := &httpSession{d: d} // zero retryBudget: preload is setup, unlimited
	ops := make([]kv.Op, 0, preloadChunk)
	for len(keys) > 0 {
		n := len(keys)
		if n > preloadChunk {
			n = preloadChunk
		}
		ops = ops[:0]
		for _, k := range keys[:n] {
			ops = append(ops, kv.Op{Kind: kv.OpPut, Key: k, Val: k})
		}
		keys = keys[n:]
		// A shed during preload is not overload to report — retry until
		// the batch lands.
		for {
			err := sess.Do(ops, nil)
			if err == nil {
				break
			}
			if errors.Is(err, harness.ErrOverload) {
				time.Sleep(time.Millisecond)
				continue
			}
			return err
		}
	}
	return nil
}

// NewSession implements harness.Driver. The http.Client is shared
// (connection pooling is per-transport); the session carries only its
// encode buffer and retry budget.
func (d *HTTPDriver) NewSession() (harness.DriverSession, error) {
	return &httpSession{d: d, retryBudget: d.cfg.RetryBudget}, nil
}

// Close implements harness.Driver.
func (d *HTTPDriver) Close() error {
	d.client.CloseIdleConnections()
	return nil
}

// ErrCircuitOpen is returned without touching the network while the
// driver's circuit breaker is open: the server was unreachable on
// consecutive recent attempts and the cooldown's healthz probe has not
// yet confirmed recovery. The request was never sent.
var ErrCircuitOpen = errors.New("service: circuit breaker open")

// inDoubtError marks an outcome where the request may or may not have
// executed: some attempt reached into the network and died without a
// definitive server answer. Unwrap keeps sentinel classification
// (errors.Is on the underlying cause) working.
type inDoubtError struct{ err error }

func (e *inDoubtError) Error() string { return "in doubt: " + e.err.Error() }
func (e *inDoubtError) Unwrap() error { return e.err }

// IsInDoubt reports whether err leaves the request's execution unknown —
// a transport failure after the request may have reached the server,
// never resolved by a later definitive answer. Verifiers must treat the
// request's effects as neither committed nor absent.
func IsInDoubt(err error) bool {
	var ide *inDoubtError
	return errors.As(err, &ide)
}

type httpSession struct {
	d   *HTTPDriver
	buf bytes.Buffer
	// retryBudget caps retries across the session's lifetime when
	// positive; zero or negative is unlimited.
	retryBudget int
	retryUsed   int
	rng         rand.PCG
	rngSet      bool
}

// jitter returns a uniform duration in [0, max) from a session-local
// generator (the global one would serialize senders).
func (s *httpSession) jitter(max time.Duration) time.Duration {
	if !s.rngSet {
		s.rng = *rand.NewPCG(rand.Uint64(), rand.Uint64())
		s.rngSet = true
	}
	if max <= 0 {
		return 0
	}
	return time.Duration(s.rng.Uint64() % uint64(max))
}

// backoff returns the full-jitter backoff before retry n (0-based):
// uniform in (0, min(base·2ⁿ, cap)].
func (s *httpSession) backoff(n int) time.Duration {
	c := s.d.cfg
	d := c.BackoffBase << uint(n)
	if d <= 0 || d > c.BackoffCap {
		d = c.BackoffCap
	}
	return s.jitter(d) + time.Millisecond/4
}

// Do implements harness.DriverSession: one POST /v1/batch per
// transaction, retried under the driver's fault policy. Every request
// carries a fresh ID, and every retry reuses it, so a server with a
// dedup window executes the batch at most once no matter how many
// attempts the network eats.
//
// Outcome classification, in the order the loop settles it:
//
//   - 200 → nil (definitive; a dedup replay is indistinguishable by design)
//   - 429 → harness.ErrOverload once cumulative honored Retry-After waits
//     exceed RetryAfterBudget (hints pace the sender, they are not retries)
//   - 504 → harness.ErrExpired (server never executed it)
//   - client-side deadline spent → harness.ErrExpired
//   - 4xx → permanent error, no retry (except 409 staleness, retryable)
//   - transport error, 503 → retry with backoff while attempts and budget
//     last; if the leader stays transport-dead and Replicas are known, one
//     failover probe may swap the base and restart the attempt allowance
//
// Read-only batches route to a configured replica first; any replica
// failure (staleness 409, not-leader 503, transport) falls the same
// request back to the leader without burning a retry.
//
// Any terminal error after a transport-errored attempt is wrapped so
// IsInDoubt reports true: the dead attempt may have executed. Only a
// 200 clears the doubt — success means the batch's effects are in
// (directly, or replayed out of the dedup window). Non-200 answers
// speak for their own attempt only: after a server restart the dedup
// window is empty, so a 429/503/504 on a retry cannot prove the dead
// original never ran.
func (s *httpSession) Do(ops []kv.Op, res []kv.Result) error {
	wire, err := encodeOps(ops)
	if err != nil {
		return err
	}
	req := BatchRequest{Ops: wire}
	req.ID = s.d.idBase + "-" + strconv.FormatUint(s.d.idSeq.Add(1), 36)

	var deadline time.Time
	if s.d.cfg.Deadline > 0 {
		deadline = time.Now().Add(s.d.cfg.Deadline)
	}

	inDoubt := false // a dead attempt may have executed
	fail := func(err error) error {
		if inDoubt {
			s.d.inDoubt.Add(1)
			return &inDoubtError{err: err}
		}
		return err
	}

	// Read-only batches may route to a replica; target "" means the
	// current leader (resolved per attempt, so failover swaps apply).
	target := ""
	if reps := s.d.cfg.Replicas; len(reps) > 0 {
		readOnly := true
		for i := range ops {
			if ops[i].Kind != kv.OpGet && ops[i].Kind != kv.OpScan {
				readOnly = false
				break
			}
		}
		if readOnly {
			target = reps[int(s.d.rrSeq.Add(1)%uint64(len(reps)))]
		}
	}

	var raUsed time.Duration // cumulative honored Retry-After waits
	failedOver := false
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > s.d.cfg.MaxRetries ||
				(s.retryBudget > 0 && s.retryUsed >= s.retryBudget) {
				// Out of attempts against this leader. If it looks gone —
				// transport-dead, breaker open, or answering 503 (which is
				// what a follower REBOUND ON THE OLD LEADER'S ADDRESS says
				// to writes) — and other endpoints are known, one failover
				// sweep may find a promoted leader; adopting it restarts
				// the attempt allowance — at most once per request.
				if !failedOver &&
					(errors.Is(lastErr, errTransport) || errors.Is(lastErr, ErrCircuitOpen) ||
						errors.Is(lastErr, errRetryable)) &&
					s.d.failover() {
					failedOver = true
					attempt = 0
				} else {
					return fail(lastErr)
				}
			} else {
				s.retryUsed++
				s.d.retries.Add(1)
				time.Sleep(s.backoff(attempt - 1))
			}
		}
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				s.d.expired.Add(1)
				return fail(harness.ErrExpired)
			}
			req.DeadlineMs = int64(remaining / time.Millisecond)
			if req.DeadlineMs == 0 {
				req.DeadlineMs = 1
			}
		}
		// The breaker tracks the leader only; replica attempts bypass it.
		if b := s.d.breaker; b != nil && target == "" && !b.allow() {
			lastErr = ErrCircuitOpen
			continue
		}
		s.buf.Reset()
		if err := json.NewEncoder(&s.buf).Encode(req); err != nil {
			return err
		}
		wait, err := s.post(target, s.buf.Bytes(), res)
		if target != "" && err != nil {
			// The replica refused (stale, not leader) or died: fall the
			// same request back to the leader without burning a retry.
			// Reads have no effects, so a dead replica attempt raises no
			// doubt.
			if errors.Is(err, errStale) || errors.Is(err, errRetryable) {
				s.d.staleReads.Add(1)
			}
			target = ""
			lastErr = err
			attempt--
			continue
		}
		switch {
		case err == nil:
			// Definitive: executed (a dedup replay of a dead attempt is
			// indistinguishable from first execution by design).
			return nil
		case errors.Is(err, errTransport):
			// The request may have executed and the answer died on the
			// wire; only a later definitive server answer can tell.
			inDoubt = true
			lastErr = err
			continue
		case errors.Is(err, harness.ErrOverload):
			// The server shed this attempt at admission. Honor drain
			// hints until their cumulative wait exhausts RetryAfterBudget,
			// then report the shed: sheds are backpressure working, not
			// faults, so honored waits pace the sender without counting
			// as retries. The budget cap means a sustained storm degrades
			// into reported sheds rather than stalling the sender
			// forever. Doubt from an earlier dead attempt is NOT cleared:
			// a shed answers for this attempt only (after a restart the
			// dedup window is empty, so it says nothing about whether the
			// original executed).
			if wait > 0 && s.d.cfg.RetryAfterBudget > 0 &&
				raUsed+wait <= s.d.cfg.RetryAfterBudget {
				raUsed += wait
				s.d.raWaits.Add(1)
				time.Sleep(wait)
				lastErr = err
				attempt-- // server-paced waits are not retries
				continue
			}
			return fail(err)
		case errors.Is(err, errStale):
			// 409 from the leader itself (a freshly promoted follower
			// still settling): definitive not-executed, worth retrying.
			lastErr = err
			continue
		case errors.Is(err, harness.ErrExpired):
			// 504: the server guarantees this attempt never executed.
			s.d.expired.Add(1)
			return fail(err)
		case errors.Is(err, errRetryable):
			// 503: the service is draining for shutdown/restart — this
			// attempt was not executed, worth retrying into the restart.
			lastErr = err
			continue
		default:
			// Server rejection (4xx, decode mismatch) — definitive for
			// this attempt; still in doubt if an earlier attempt died.
			return fail(err)
		}
	}
}

// errTransport tags errors where no server answer arrived; errRetryable
// tags definitive not-executed answers worth retrying (503); errStale
// tags 409 answers (a replica behind its staleness bound, or a node
// still settling a role change).
var (
	errTransport = errors.New("service: transport error")
	errRetryable = errors.New("service: transient server error")
	errStale     = errors.New("service: replica not fresh")
)

// post runs one POST /v1/batch attempt against target ("" = current
// leader). A 429 returns harness.ErrOverload along with the server's
// Retry-After hint (0 when absent or unusable). Only leader attempts
// feed the circuit breaker — a dead replica must not fail-fast writes.
func (s *httpSession) post(target string, payload []byte, res []kv.Result) (time.Duration, error) {
	leaderward := target == ""
	if leaderward {
		target = s.d.baseURL()
	}
	resp, err := s.d.client.Post(target+"/v1/batch", "application/json", bytes.NewReader(payload))
	if b := s.d.breaker; b != nil && leaderward {
		b.observe(err == nil)
	}
	if err != nil {
		return 0, fmt.Errorf("%w: %w", errTransport, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		_, _ = io.Copy(io.Discard, resp.Body)
		return retryAfterDelay(resp.Header.Get("Retry-After")), harness.ErrOverload
	case http.StatusConflict:
		_, _ = io.Copy(io.Discard, resp.Body)
		return retryAfterDelay(resp.Header.Get("Retry-After")), errStale
	case http.StatusGatewayTimeout:
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, harness.ErrExpired
	case http.StatusServiceUnavailable:
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("%w: status 503", errRetryable)
	default:
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return 0, fmt.Errorf("service: batch failed: status %d: %s", resp.StatusCode, e.Error)
	}
	if res == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, nil
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		// The transaction committed server-side; only the answer died.
		return 0, fmt.Errorf("%w: reading response: %w", errTransport, err)
	}
	if len(br.Results) != len(res) {
		return 0, fmt.Errorf("service: %d results for %d ops", len(br.Results), len(res))
	}
	for i, r := range br.Results {
		res[i] = kv.Result{Val: r.Val, Ok: r.Ok}
	}
	return 0, nil
}

// retryAfterDelay parses a Retry-After header as (possibly fractional)
// seconds, clamped to at most a second so a confused server cannot stall
// a sender. 0 means absent or unusable: classify the shed immediately.
func retryAfterDelay(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.ParseFloat(h, 64)
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs * float64(time.Second))
	if d > time.Second {
		d = time.Second
	}
	return d
}

func (s *httpSession) Close() error { return nil }

// breaker is the driver-wide circuit breaker. Closed, it only counts
// consecutive transport failures; at threshold it opens and every
// session fails fast (no network) for cooldown, after which exactly one
// caller per cooldown half-opens the circuit by probing healthz —
// success closes it, failure re-arms the cooldown. Sharing one breaker
// across sessions means one recovered probe re-admits the whole fleet
// at once instead of each sender rediscovering the server.
type breaker struct {
	threshold int
	cooldown  time.Duration
	probe     func() bool

	mu         sync.Mutex
	open       bool
	downconsec int
	until      time.Time // while open: next probe time

	opens atomic.Uint64
}

// allow reports whether a request may go to the network now, running the
// half-open probe when the cooldown has elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	if !b.open {
		b.mu.Unlock()
		return true
	}
	if time.Now().Before(b.until) {
		b.mu.Unlock()
		return false
	}
	// Claim the probe slot before unlocking so concurrent callers fail
	// fast instead of stampeding healthz.
	b.until = time.Now().Add(b.cooldown)
	b.mu.Unlock()
	if b.probe() {
		b.mu.Lock()
		b.open = false
		b.downconsec = 0
		b.mu.Unlock()
		return true
	}
	return false
}

// isOpen reports whether the circuit is currently failing fast.
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// reset force-closes the breaker — failover adopted a new leader, so
// the consecutive-failure history belongs to the dead one.
func (b *breaker) reset() {
	b.mu.Lock()
	b.open = false
	b.downconsec = 0
	b.mu.Unlock()
}

// observe records one network attempt's fate (ok = any HTTP answer
// arrived; status codes are the server being alive).
func (b *breaker) observe(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.downconsec = 0
		b.open = false
		return
	}
	b.downconsec++
	if !b.open && b.downconsec >= b.threshold {
		b.open = true
		b.until = time.Now().Add(b.cooldown)
		b.opens.Add(1)
	}
}
