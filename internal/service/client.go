package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"medley/internal/harness"
	"medley/internal/kv"
)

// HTTPDriver implements harness.Driver over the wire: the open-loop
// engine drives a medleyd server exactly as it drives an in-process
// store, so one report compares raw store latency against the full
// network pipeline. The server owns the backend's lifecycle; Start only
// verifies reachability and learns the system's identity from /healthz.
type HTTPDriver struct {
	base   string
	client *http.Client
	system string
	shards int
}

// NewHTTPDriver targets a running medleyd at base (e.g.
// "http://127.0.0.1:7654").
func NewHTTPDriver(base string) *HTTPDriver {
	return &HTTPDriver{
		base: base,
		client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				// Open-loop senders each hold one connection; the defaults
				// (2 idle conns per host) would thrash the pool.
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
			},
		},
	}
}

// Kind implements harness.Driver.
func (d *HTTPDriver) Kind() string { return "http" }

// System implements harness.Driver; valid after Start.
func (d *HTTPDriver) System() string { return d.system }

// ShardCount implements harness.ShardCounter with the server's answer.
func (d *HTTPDriver) ShardCount() int {
	if d.shards > 0 {
		return d.shards
	}
	return 1
}

// Start implements harness.Driver: polls /healthz until the server
// answers (it may still be starting), then records its identity.
func (d *HTTPDriver) Start() error {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		if attempt > 0 {
			time.Sleep(100 * time.Millisecond)
		}
		resp, err := d.client.Get(d.base + "/healthz")
		if err != nil {
			lastErr = err
			continue
		}
		var h healthResponse
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("healthz: status %d, %v", resp.StatusCode, err)
			continue
		}
		d.system, d.shards = h.System, h.Shards
		return nil
	}
	return fmt.Errorf("service: %s unreachable: %w", d.base, lastErr)
}

// preloadChunk bounds one preload batch to the server's op limit.
const preloadChunk = 512

// Preload implements harness.Driver: installs keys (key == value) with
// put batches through the ordinary wire path.
func (d *HTTPDriver) Preload(keys []uint64) error {
	sess := &httpSession{d: d}
	ops := make([]kv.Op, 0, preloadChunk)
	for len(keys) > 0 {
		n := len(keys)
		if n > preloadChunk {
			n = preloadChunk
		}
		ops = ops[:0]
		for _, k := range keys[:n] {
			ops = append(ops, kv.Op{Kind: kv.OpPut, Key: k, Val: k})
		}
		keys = keys[n:]
		// A shed during preload is not overload to report — retry until
		// the batch lands.
		for {
			err := sess.Do(ops, nil)
			if err == nil {
				break
			}
			if err == harness.ErrOverload {
				time.Sleep(time.Millisecond)
				continue
			}
			return err
		}
	}
	return nil
}

// NewSession implements harness.Driver. The http.Client is shared
// (connection pooling is per-transport); the session carries only its
// encode buffer.
func (d *HTTPDriver) NewSession() (harness.DriverSession, error) {
	return &httpSession{d: d}, nil
}

// Close implements harness.Driver.
func (d *HTTPDriver) Close() error {
	d.client.CloseIdleConnections()
	return nil
}

type httpSession struct {
	d   *HTTPDriver
	buf bytes.Buffer
}

// Do implements harness.DriverSession: one POST /v1/batch per
// transaction. A 429 carrying a Retry-After hint is honored once — the
// session waits out the server's drain estimate and retries — before
// mapping to harness.ErrOverload, so the open-loop engine only counts a
// shed when the server is persistently full, not when one tick's backlog
// was about to clear.
func (s *httpSession) Do(ops []kv.Op, res []kv.Result) error {
	wire, err := encodeOps(ops)
	if err != nil {
		return err
	}
	s.buf.Reset()
	if err := json.NewEncoder(&s.buf).Encode(BatchRequest{Ops: wire}); err != nil {
		return err
	}
	payload := s.buf.Bytes()
	for attempt := 0; ; attempt++ {
		wait, err := s.post(payload, res)
		if !errors.Is(err, harness.ErrOverload) || attempt > 0 || wait <= 0 {
			return err
		}
		time.Sleep(wait)
	}
}

// post runs one POST /v1/batch attempt. A 429 returns harness.ErrOverload
// along with the server's Retry-After hint (0 when absent or unusable).
func (s *httpSession) post(payload []byte, res []kv.Result) (time.Duration, error) {
	resp, err := s.d.client.Post(s.d.base+"/v1/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		_, _ = io.Copy(io.Discard, resp.Body)
		return retryAfterDelay(resp.Header.Get("Retry-After")), harness.ErrOverload
	default:
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return 0, fmt.Errorf("service: batch failed: status %d: %s", resp.StatusCode, e.Error)
	}
	if res == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, nil
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return 0, err
	}
	if len(br.Results) != len(res) {
		return 0, fmt.Errorf("service: %d results for %d ops", len(br.Results), len(res))
	}
	for i, r := range br.Results {
		res[i] = kv.Result{Val: r.Val, Ok: r.Ok}
	}
	return 0, nil
}

// retryAfterDelay parses a Retry-After header as (possibly fractional)
// seconds, clamped to at most a second so a confused server cannot stall
// a sender. 0 means absent or unusable: classify the shed immediately.
func retryAfterDelay(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.ParseFloat(h, 64)
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs * float64(time.Second))
	if d > time.Second {
		d = time.Second
	}
	return d
}

func (s *httpSession) Close() error { return nil }
