package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHTTPFaultFieldValidation pins the 400 surface of the two
// fault-tolerance wire fields: negative deadlines and oversized request
// IDs are refused before admission, while boundary-legal values pass.
func TestHTTPFaultFieldValidation(t *testing.T) {
	svc := New(&fakeBackend{}, Config{Tick: 200 * time.Microsecond, DedupWindow: 8})
	defer svc.Close()
	ts := httptest.NewServer(Handler(svc))
	defer ts.Close()

	cases := []struct {
		name, body string
		want       int
	}{
		{"negative-deadline", `{"deadline_ms":-5,"ops":[{"op":"get","key":1}]}`, http.StatusBadRequest},
		{"oversized-id", `{"id":"` + strings.Repeat("x", MaxRequestID+1) + `","ops":[{"op":"get","key":1}]}`, http.StatusBadRequest},
		{"id-at-cap", `{"id":"` + strings.Repeat("x", MaxRequestID) + `","ops":[{"op":"get","key":1}]}`, http.StatusOK},
		{"generous-deadline", `{"deadline_ms":60000,"ops":[{"op":"get","key":1}]}`, http.StatusOK},
	}
	for _, tc := range cases {
		resp, body := postBatch(t, ts.URL, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
	}
}

// FuzzBatchHandler throws arbitrary bodies at POST /v1/batch: whatever
// the bytes decode to, the handler must answer with one of the
// protocol's status codes and never panic. The seeds cover every verb,
// the fault-tolerance fields, and the malformed shapes the table tests
// pin individually.
func FuzzBatchHandler(f *testing.F) {
	svc := New(&fakeBackend{}, Config{Tick: 200 * time.Microsecond, DedupWindow: 8})
	f.Cleanup(svc.Close)
	h := Handler(svc)

	seeds := []string{
		`{"ops":[{"op":"put","key":1,"val":2}]}`,
		`{"ops":[{"op":"get","key":1},{"op":"delete","key":2},{"op":"add","key":3,"val":4}]}`,
		`{"ops":[{"op":"scan","n":5}]}`,
		`{"ops":[{"op":"transfer","from":1,"to":2,"val":3}]}`,
		`{"ops":[{"op":"transfer","from":7,"to":7,"val":3}]}`,
		`{"id":"abc","deadline_ms":250,"ops":[{"op":"get","key":1}]}`,
		`{"deadline_ms":-1,"ops":[{"op":"get","key":1}]}`,
		`{"ops":[{"op":"increment","key":1}]}`,
		`{"ops":[]}`,
		`{"ops":`,
		`[]`,
		`{"ops":[{"op":"get","key":-1}]}`,
		`{"id":` + `"` + strings.Repeat("z", 200) + `","ops":[{"op":"get","key":1}]}`,
		"\x00\xff\xfe not json at all",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/batch", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req) // a panic here fails the fuzz run
		switch w.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusTooManyRequests,
			http.StatusGatewayTimeout, http.StatusServiceUnavailable:
		default:
			t.Errorf("status %d for body %q", w.Code, body)
		}
	})
}
