package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"medley/internal/kv"
)

// These tests pin the driver's replica awareness with scripted
// endpoints: read routing, fallback-to-leader, and leader failover.
// (End-to-end routing against real nodes is exercised by the replica
// chaos harness.)

// scriptedEndpoint is a minimal medleyd stand-in: /healthz reports a
// settable role, /v1/batch runs the supplied handler and counts calls.
type scriptedEndpoint struct {
	ts      *httptest.Server
	role    atomic.Value // string
	batches atomic.Int64
}

func newScriptedEndpoint(t *testing.T, role string, batch http.HandlerFunc) *scriptedEndpoint {
	t.Helper()
	e := &scriptedEndpoint{}
	e.role.Store(role)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthResponse{
			System: "scripted", Shards: 1, Role: e.role.Load().(string),
		})
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		e.batches.Add(1)
		batch(w, r)
	})
	e.ts = httptest.NewServer(mux)
	t.Cleanup(e.ts.Close)
	return e
}

func okBatch(results string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"results":` + results + `}`))
	}
}

func TestHTTPDriverRoutesReadsToReplica(t *testing.T) {
	leader := newScriptedEndpoint(t, RoleLeader, okBatch(`[{"val":0,"ok":true}]`))
	rep := newScriptedEndpoint(t, RoleFollower, okBatch(`[{"val":42,"ok":true}]`))
	d := NewHTTPDriverConfig(leader.ts.URL, HTTPDriverConfig{Replicas: []string{rep.ts.URL}})
	sess := &httpSession{d: d}

	// A read-only batch lands on the replica.
	res := make([]kv.Result, 1)
	if err := sess.Do([]kv.Op{{Kind: kv.OpGet, Key: 1}}, res); err != nil {
		t.Fatalf("replica read: %v", err)
	}
	if res[0].Val != 42 {
		t.Fatalf("read answered by wrong endpoint: %+v", res[0])
	}
	if got := rep.batches.Load(); got != 1 {
		t.Fatalf("replica batches = %d, want 1", got)
	}
	if got := leader.batches.Load(); got != 0 {
		t.Fatalf("leader batches = %d, want 0 (read should route to replica)", got)
	}

	// A batch with any write goes to the leader.
	if err := sess.Do([]kv.Op{{Kind: kv.OpPut, Key: 1, Val: 2}}, res); err != nil {
		t.Fatalf("leader write: %v", err)
	}
	if got := leader.batches.Load(); got != 1 {
		t.Fatalf("leader batches = %d, want 1 after a write", got)
	}
	if got := rep.batches.Load(); got != 1 {
		t.Fatalf("replica batches = %d, want 1 (writes never route to replicas)", got)
	}
}

func TestHTTPDriverReplicaStaleFallsBackToLeader(t *testing.T) {
	leader := newScriptedEndpoint(t, RoleLeader, okBatch(`[{"val":7,"ok":true}]`))
	rep := newScriptedEndpoint(t, RoleFollower, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0.05")
		w.WriteHeader(http.StatusConflict)
		_, _ = w.Write([]byte(`{"error":"replica lag 9 exceeds max_lag 1"}`))
	})
	d := NewHTTPDriverConfig(leader.ts.URL, HTTPDriverConfig{Replicas: []string{rep.ts.URL}})
	sess := &httpSession{d: d}

	res := make([]kv.Result, 1)
	if err := sess.Do([]kv.Op{{Kind: kv.OpGet, Key: 1}}, res); err != nil {
		t.Fatalf("stale fallback: %v", err)
	}
	if res[0].Val != 7 {
		t.Fatalf("fallback answered %+v, want the leader's 7", res[0])
	}
	if got := d.Stats().StaleReads; got != 1 {
		t.Fatalf("StaleReads = %d, want 1", got)
	}
	// The fallback is free: no retry was burned.
	if got := d.Stats().Retries; got != 0 {
		t.Fatalf("Retries = %d, want 0 (fallback must not burn the budget)", got)
	}
}

func TestHTTPDriverReplicaDeadFallsBackToLeader(t *testing.T) {
	leader := newScriptedEndpoint(t, RoleLeader, okBatch(`[{"val":7,"ok":true}]`))
	rep := newScriptedEndpoint(t, RoleFollower, okBatch(`[]`))
	rep.ts.Close() // transport-dead replica
	d := NewHTTPDriverConfig(leader.ts.URL, HTTPDriverConfig{Replicas: []string{rep.ts.URL}})
	sess := &httpSession{d: d}

	res := make([]kv.Result, 1)
	if err := sess.Do([]kv.Op{{Kind: kv.OpGet, Key: 1}}, res); err != nil {
		t.Fatalf("dead-replica fallback: %v", err)
	}
	if res[0].Val != 7 {
		t.Fatalf("fallback answered %+v, want the leader's 7", res[0])
	}
	// A dead replica read raises no doubt and must not trip the
	// (leader-scoped) breaker.
	if st := d.Stats(); st.InDoubt != 0 || st.BreakerOpens != 0 {
		t.Fatalf("dead replica polluted leader fault state: %+v", st)
	}
}

func TestHTTPDriverFailsOverToPromotedReplica(t *testing.T) {
	leader := newScriptedEndpoint(t, RoleLeader, okBatch(`[{"val":0,"ok":true}]`))
	rep := newScriptedEndpoint(t, RoleFollower, okBatch(`[{"val":0,"ok":true}]`))
	d := NewHTTPDriverConfig(leader.ts.URL, HTTPDriverConfig{
		Replicas:         []string{rep.ts.URL},
		MaxRetries:       2,
		BackoffBase:      time.Millisecond,
		BackoffCap:       2 * time.Millisecond,
		BreakerThreshold: -1, // isolate failover from breaker behavior
	})
	sess := &httpSession{d: d}

	ops := []kv.Op{{Kind: kv.OpPut, Key: 1, Val: 1}}
	if err := sess.Do(ops, nil); err != nil {
		t.Fatalf("pre-failover write: %v", err)
	}

	// Kill the leader; promote the replica (as /v1/promote would).
	leader.ts.Close()
	rep.role.Store(RoleLeader)

	// The same session's next write exhausts its retries against the dead
	// leader, sweeps /healthz, adopts the promoted replica, and lands.
	if err := sess.Do(ops, nil); err != nil {
		t.Fatalf("failover write: %v", err)
	}
	if got := rep.batches.Load(); got != 1 {
		t.Fatalf("promoted endpoint batches = %d, want 1", got)
	}
	if got := d.Stats().Failovers; got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	if d.baseURL() != rep.ts.URL {
		t.Fatalf("base = %s, want swapped to %s", d.baseURL(), rep.ts.URL)
	}

	// Later requests go straight to the new leader, no probing.
	if err := sess.Do(ops, nil); err != nil {
		t.Fatalf("post-failover write: %v", err)
	}
	if got := d.Stats().Failovers; got != 1 {
		t.Fatalf("Failovers grew to %d on a healthy leader", got)
	}
}

func TestHTTPDriverFailoverSkipsUnpromotedFollower(t *testing.T) {
	leader := newScriptedEndpoint(t, RoleLeader, okBatch(`[]`))
	rep := newScriptedEndpoint(t, RoleFollower, okBatch(`[]`))
	d := NewHTTPDriverConfig(leader.ts.URL, HTTPDriverConfig{
		Replicas:         []string{rep.ts.URL},
		MaxRetries:       1,
		BackoffBase:      time.Millisecond,
		BackoffCap:       2 * time.Millisecond,
		BreakerThreshold: -1,
	})
	sess := &httpSession{d: d}
	leader.ts.Close()

	// Nobody claims leadership: the write must fail rather than bounce
	// writes off a follower's not-leader gate.
	err := sess.Do([]kv.Op{{Kind: kv.OpPut, Key: 1, Val: 1}}, nil)
	if err == nil {
		t.Fatal("write succeeded with no leader anywhere")
	}
	if !IsInDoubt(err) {
		t.Fatalf("dead-leader write err = %v, want in-doubt transport error", err)
	}
	if got := d.Stats().Failovers; got != 0 {
		t.Fatalf("Failovers = %d, want 0 (no leader to adopt)", got)
	}
	if got := rep.batches.Load(); got != 0 {
		t.Fatalf("follower got %d writes, want 0", got)
	}
}

// encode check: the routing decision must consult decoded op kinds, not
// the wire form — a transfer expands to two OpAdds (writes).
func TestHTTPDriverTransferRoutesToLeader(t *testing.T) {
	leader := newScriptedEndpoint(t, RoleLeader, okBatch(`[{"ok":true},{"ok":true}]`))
	rep := newScriptedEndpoint(t, RoleFollower, okBatch(`[]`))
	d := NewHTTPDriverConfig(leader.ts.URL, HTTPDriverConfig{Replicas: []string{rep.ts.URL}})
	sess := &httpSession{d: d}
	ops := []kv.Op{
		{Kind: kv.OpAdd, Key: 1, Val: ^uint64(0)},
		{Kind: kv.OpAdd, Key: 2, Val: 1},
	}
	if err := sess.Do(ops, make([]kv.Result, 2)); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if got := rep.batches.Load(); got != 0 {
		t.Fatalf("replica got %d transfer batches, want 0", got)
	}
}

// sanity: healthz decodes the role field the failover sweep depends on.
func TestHealthResponseCarriesRole(t *testing.T) {
	e := newScriptedEndpoint(t, RoleFollower, okBatch(`[]`))
	resp, err := http.Get(e.ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Role != RoleFollower {
		t.Fatalf("role = %q, want follower", h.Role)
	}
}
