package pmem

import (
	"sync"
	"testing"
	"time"
)

func TestStoreNotDurableWithoutWriteBack(t *testing.T) {
	r := New(Config{Words: 64})
	r.Store(3, 42)
	if r.Load(3) != 42 {
		t.Fatal("volatile store lost")
	}
	r.Crash()
	if r.Load(3) != 0 {
		t.Fatal("un-written-back store survived a crash")
	}
}

func TestWriteBackMakesDurable(t *testing.T) {
	r := New(Config{Words: 64})
	r.Store(3, 42)
	r.Store(10, 7)
	r.WriteBack(3, 1)
	r.Fence()
	r.Crash()
	if r.Load(3) != 42 {
		t.Fatal("written-back store lost")
	}
	if r.Load(10) != 0 {
		t.Fatal("unrelated store survived")
	}
}

func TestRangeWriteBack(t *testing.T) {
	r := New(Config{Words: 128})
	for i := 16; i < 32; i++ {
		r.Store(i, uint64(i))
	}
	r.WriteBack(16, 16)
	r.Fence()
	r.Crash()
	for i := 16; i < 32; i++ {
		if r.Load(i) != uint64(i) {
			t.Fatalf("word %d lost", i)
		}
	}
}

func TestCrashIdempotent(t *testing.T) {
	r := New(Config{Words: 16})
	r.Store(1, 9)
	r.WriteBack(1, 1)
	r.Crash()
	r.Crash()
	if r.Load(1) != 9 {
		t.Fatal("double crash corrupted persisted state")
	}
	if r.Stats().Crashes != 2 {
		t.Fatal("crash counter wrong")
	}
}

func TestPersistedLoadMatchesPostCrash(t *testing.T) {
	r := New(Config{Words: 16})
	r.Store(5, 11)
	r.WriteBack(5, 1)
	r.Store(5, 99) // newer volatile value, not persisted
	if r.PersistedLoad(5) != 11 {
		t.Fatal("PersistedLoad disagrees with media")
	}
	if r.Load(5) != 99 {
		t.Fatal("volatile view clobbered by PersistedLoad")
	}
}

func TestConcurrentDisjointStores(t *testing.T) {
	r := New(Config{Words: 1024})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 128; i++ {
				r.Store(base*128+i, uint64(base))
				r.WriteBack(base*128+i, 1)
			}
		}(g)
	}
	wg.Wait()
	r.Crash()
	for g := 0; g < 8; g++ {
		for i := 0; i < 128; i++ {
			if r.Load(g*128+i) != uint64(g) {
				t.Fatalf("word %d wrong after concurrent flush", g*128+i)
			}
		}
	}
}

func TestCASOnVolatile(t *testing.T) {
	r := New(Config{Words: 8})
	if !r.CAS(0, 0, 5) || r.CAS(0, 0, 6) {
		t.Fatal("CAS semantics wrong")
	}
	if r.Load(0) != 5 {
		t.Fatal("CAS result wrong")
	}
}

func TestLatencyInjection(t *testing.T) {
	r := New(Config{Words: 64, WriteBackLatency: 200 * time.Microsecond, FenceLatency: 100 * time.Microsecond})
	start := time.Now()
	r.WriteBack(0, 8) // one line
	r.Fence()
	if elapsed := time.Since(start); elapsed < 250*time.Microsecond {
		t.Fatalf("latency not injected: %v", elapsed)
	}
	st := r.Stats()
	if st.WriteBackLines != 1 || st.Fences != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
