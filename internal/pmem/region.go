// Package pmem simulates byte-addressable persistent memory with volatile
// caches, the substrate the paper evaluates on (Intel Optane DC DIMMs in
// DAX mode).
//
// A Region holds two images of the same address space:
//
//   - a volatile image (the "caches + NVM write queue" view) that all
//     normal loads and stores touch, word-granular and atomic so that
//     concurrent threads and the flusher never race;
//   - a persisted image (the "media" view) that only WriteBack copies into.
//
// Crash discards the volatile image and exposes the persisted one,
// exercising exactly the failure model of Izraelevitz et al.: everything
// not explicitly written back and fenced before the crash is lost.
//
// Because real persistence instructions (clwb/sfence) cost hundreds of
// nanoseconds while the simulation's memcpy costs almost nothing, the
// Region can inject configurable write-back and fence latencies (busy-wait,
// since the granularity is far below time.Sleep resolution). This is what
// lets the benchmark harness reproduce the paper's NVM write bottleneck and
// the gap between eager (per-store) and periodic (per-epoch) persistence.
package pmem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// WordsPerLine is the cache-line granularity of write-back (64 bytes).
const WordsPerLine = 8

// Config sizes a Region and sets its injected latencies.
type Config struct {
	// Words is the region size in 8-byte words.
	Words int
	// WriteBackLatency is charged once per cache line written back.
	WriteBackLatency time.Duration
	// FenceLatency is charged once per Fence.
	FenceLatency time.Duration
	// StoreLatency is charged once per Store, modeling the higher media
	// write cost of NVM-resident data relative to DRAM (the paper's
	// Figure 10b shows this effect with payloads on Optane).
	StoreLatency time.Duration
}

// Region is a simulated persistent-memory device.
type Region struct {
	cfg       Config
	volatile  []atomic.Uint64
	mu        sync.Mutex // guards persisted (flusher, crash, recovery)
	persisted []uint64

	writeBacks atomic.Uint64
	fences     atomic.Uint64
	crashes    atomic.Uint64
}

// New creates a zeroed region.
func New(cfg Config) *Region {
	if cfg.Words <= 0 {
		panic(fmt.Sprintf("pmem: bad region size %d", cfg.Words))
	}
	return &Region{
		cfg:       cfg,
		volatile:  make([]atomic.Uint64, cfg.Words),
		persisted: make([]uint64, cfg.Words),
	}
}

// Words returns the region size in words.
func (r *Region) Words() int { return len(r.volatile) }

// Load reads one word from the volatile image.
func (r *Region) Load(off int) uint64 { return r.volatile[off].Load() }

// Store writes one word to the volatile image. Like a real store, it is not
// durable until written back and fenced.
func (r *Region) Store(off int, v uint64) {
	busyWait(r.cfg.StoreLatency)
	r.volatile[off].Store(v)
}

// CAS performs a compare-and-swap on one volatile word.
func (r *Region) CAS(off int, old, new uint64) bool {
	return r.volatile[off].CompareAndSwap(old, new)
}

// busyWait spins for d; persistence latencies are far below the resolution
// (and fairness) of time.Sleep.
func busyWait(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
}

// WriteBack copies n words starting at off from the volatile image to the
// persisted image, charging the configured latency per cache line (the
// clwb analogue). Durability of the copied words still requires a Fence in
// principle; in the simulation the copy itself is atomic with respect to
// Crash, which is conservative in the right direction (a crash can lose
// writes, never invent them).
func (r *Region) WriteBack(off, n int) {
	lines := (n + WordsPerLine - 1) / WordsPerLine
	busyWait(time.Duration(lines) * r.cfg.WriteBackLatency)
	r.mu.Lock()
	for i := off; i < off+n; i++ {
		r.persisted[i] = r.volatile[i].Load()
	}
	r.mu.Unlock()
	r.writeBacks.Add(uint64(lines))
}

// Fence charges the sfence analogue.
func (r *Region) Fence() {
	busyWait(r.cfg.FenceLatency)
	r.fences.Add(1)
}

// Crash simulates a full-system crash: the volatile image is reset to the
// persisted image. The caller is responsible for discarding all DRAM-side
// structures (indices, descriptors) as the failure model requires.
func (r *Region) Crash() {
	r.mu.Lock()
	for i := range r.volatile {
		r.volatile[i].Store(r.persisted[i])
	}
	r.mu.Unlock()
	r.crashes.Add(1)
}

// PersistedLoad reads one word from the persisted image; recovery-side use.
func (r *Region) PersistedLoad(off int) uint64 {
	r.mu.Lock()
	v := r.persisted[off]
	r.mu.Unlock()
	return v
}

// Stats is a snapshot of device counters.
type Stats struct {
	WriteBackLines uint64
	Fences         uint64
	Crashes        uint64
}

// Stats returns a snapshot of the device counters.
func (r *Region) Stats() Stats {
	return Stats{
		WriteBackLines: r.writeBacks.Load(),
		Fences:         r.fences.Load(),
		Crashes:        r.crashes.Load(),
	}
}
