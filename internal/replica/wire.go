package replica

import "medley/internal/cdc"

// This file is the replication wire protocol shared by the leader's HTTP
// surface (internal/service server.go) and the follower (this package).
//
//	GET /v1/watch?shard=S&from=F — chunked application/x-ndjson stream of
//	    WatchChunk lines: entry chunks while the follower is behind,
//	    heartbeats (hb, head) while it is caught up, a compacted marker
//	    when the cursor fell off the leader's ring mid-stream. A cursor
//	    already compacted at connect time is answered 410 Gone.
//	GET /v1/snapshot?shard=S — one SnapshotResponse: the shard's live
//	    keys plus the feed position replay must resume from. The leader
//	    reads the feed head BEFORE scanning state, so every committed
//	    write the scan might miss has seq > head and is replayed; entries
//	    the scan caught twice converge because feed values are absolute.
//	POST /v1/promote — flip a follower into a leader (see service.Node).

// WatchChunk is one line of a watch stream.
type WatchChunk struct {
	// Entries is a contiguous run of feed entries (empty on heartbeats).
	Entries []cdc.Entry `json:"entries,omitempty"`
	// Head is the shard's feed head at send time — the follower's
	// staleness reference.
	Head uint64 `json:"head"`
	// Hb marks a heartbeat line: no entries, the stream is caught up.
	Hb bool `json:"hb,omitempty"`
	// Compacted marks the terminal line of a stream whose cursor fell off
	// the leader's bounded ring: re-bootstrap from a snapshot.
	Compacted bool `json:"compacted,omitempty"`
}

// SnapshotResponse is the body of GET /v1/snapshot: a fuzzy snapshot of
// one feed shard plus the replay cursor (overflow-to-snapshot protocol).
type SnapshotResponse struct {
	Shard   int          `json:"shard"`
	Shards  int          `json:"shards"` // feed shard count, for config validation
	FromSeq uint64       `json:"from_seq"`
	Entries []SnapshotKV `json:"entries"`
}

// SnapshotKV is one live key in a snapshot.
type SnapshotKV struct {
	Key uint64 `json:"key"`
	Val uint64 `json:"val"`
}

// PromoteResponse is the body of POST /v1/promote.
type PromoteResponse struct {
	Role     string `json:"role"`
	Promoted bool   `json:"promoted"` // false when the node already led
}
