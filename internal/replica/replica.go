// Package replica is the follower half of the replication subsystem: it
// bootstraps from a leader's fuzzy snapshot (GET /v1/snapshot), replays
// the commit-ordered change feed (GET /v1/watch) with gap and reorder
// detection, and tracks per-shard replay lag so the serving layer can
// enforce a bounded-staleness read contract.
//
// The follower does not own a store: it applies entries through the
// Apply seam (service.Node routes applies through the node's own
// transaction pipeline, so a follower's own change feed is populated as
// it replays — a promoted follower is immediately followable). Replay is
// idempotent: feed values are absolute post-states, so re-applying a
// chunk after a reconnect, or double-applying writes a fuzzy snapshot
// already contained, converges (last writer wins).
package replica

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/cdc"
	"medley/internal/kv"
)

// Config wires a Follower to its leader and its local store.
type Config struct {
	// Leader is the leader's base URL (e.g. http://127.0.0.1:7070).
	Leader string
	// Shards is the leader's feed shard count; bootstrap validates it
	// against the leader's reported count and refuses to apply on
	// mismatch (the shard routing would scatter keys).
	Shards int
	// Apply runs one batch of replay writes (puts and deletes only)
	// atomically against the local store. It must preserve call order per
	// goroutine; the follower issues at most one Apply per shard at a time.
	Apply func(ops []kv.Op) error
	// Scan, when non-nil, enumerates the local store's live keys in one
	// feed shard. Resyncs use it to delete keys the fresh snapshot no
	// longer contains (a snapshot is pure puts; without Scan a
	// re-bootstrap over existing state could leak deleted keys).
	Scan func(shard int, fn func(key, val uint64))
	// Client issues the HTTP requests (default: a dedicated client with
	// no overall timeout — watch streams are long-lived).
	Client *http.Client
	// ProbeFails is how many consecutive leader round-trip failures
	// (across all shards) trip LeaderDown (default 5; negative disables).
	ProbeFails int
	// RetryInterval paces reconnects after a failed round trip
	// (default 50ms).
	RetryInterval time.Duration
	// Mangle, when non-nil, transforms each received entry chunk before
	// gap detection and apply — the fault-injection seam divergence tests
	// use to drop, reorder, or corrupt entries in flight.
	Mangle func(shard int, entries []cdc.Entry) []cdc.Entry
}

// Stats is a snapshot of the follower's replication counters.
type Stats struct {
	Shards     int
	Applied    uint64 // entries applied to the local store
	Gaps       uint64 // sequence gaps observed (entries skipped upstream)
	Reordered  uint64 // entries arriving at or below the applied cursor
	Resyncs    uint64 // snapshot re-bootstraps after compaction
	Reconnects uint64 // watch stream reconnects
	Failures   uint64 // leader round trips that failed
	Lag        uint64 // max over shards of head - applied
	Ready      bool   // all shards bootstrapped
	LeaderDown bool   // ProbeFails consecutive failures observed
}

// Follower replicates one leader. Create with Start, stop with Stop.
type Follower struct {
	cfg     Config
	applied []atomic.Uint64 // per-shard replay cursor
	head    []atomic.Uint64 // per-shard last known leader head
	ready   []atomic.Bool   // per-shard bootstrapped

	lastContact atomic.Int64 // unix nanos of the last decoded chunk or bootstrap

	appliedN   atomic.Uint64
	gaps       atomic.Uint64
	reordered  atomic.Uint64
	resyncs    atomic.Uint64
	reconnects atomic.Uint64
	failures   atomic.Uint64

	consecFails atomic.Int64
	downOnce    sync.Once
	downCh      chan struct{}

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// errCompacted marks a stream or cursor that fell off the leader's ring.
var errCompacted = fmt.Errorf("replica: cursor compacted")

// Start launches one replay goroutine per feed shard. It returns
// immediately; an unreachable leader is retried until Stop (the follower
// may legitimately start first).
func Start(cfg Config) (*Follower, error) {
	if cfg.Leader == "" || cfg.Shards <= 0 || cfg.Apply == nil {
		return nil, fmt.Errorf("replica: Leader, Shards and Apply are required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.ProbeFails == 0 {
		cfg.ProbeFails = 5
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 50 * time.Millisecond
	}
	f := &Follower{
		cfg:     cfg,
		applied: make([]atomic.Uint64, cfg.Shards),
		head:    make([]atomic.Uint64, cfg.Shards),
		ready:   make([]atomic.Bool, cfg.Shards),
		downCh:  make(chan struct{}),
		stopCh:  make(chan struct{}),
	}
	f.lastContact.Store(time.Now().UnixNano())
	for s := 0; s < cfg.Shards; s++ {
		f.wg.Add(1)
		go f.run(s)
	}
	return f, nil
}

// Stop halts replication and waits for the replay goroutines. The applied
// state stays as is — promotion builds on it.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stopCh) })
	f.wg.Wait()
}

// LeaderDown is closed once ProbeFails consecutive leader round trips
// have failed — the promotion trigger service.Node watches.
func (f *Follower) LeaderDown() <-chan struct{} { return f.downCh }

// Ready reports whether every shard has bootstrapped (reads before that
// would observe an arbitrary prefix of the leader's state).
func (f *Follower) Ready() bool {
	for s := range f.ready {
		if !f.ready[s].Load() {
			return false
		}
	}
	return true
}

// Lag is the staleness bound input: the maximum over shards of the last
// known leader head minus the replay cursor. It undercounts while the
// leader is unreachable (heads stop advancing), which is why LeaderDown
// is a separate signal.
func (f *Follower) Lag() uint64 {
	var lag uint64
	for s := range f.applied {
		h, a := f.head[s].Load(), f.applied[s].Load()
		if h > a && h-a > lag {
			lag = h - a
		}
	}
	return lag
}

// Applied returns the replay cursor of one shard.
func (f *Follower) Applied(shard int) uint64 { return f.applied[shard].Load() }

// SinceContact is how long ago the follower last heard anything from the
// leader — a decoded watch chunk (heartbeats count) or a completed
// bootstrap. Lag undercounts under a partition because heads stop
// advancing; silence is the staleness signal that survives a cut feed,
// so the serving layer bounds both.
func (f *Follower) SinceContact() time.Duration {
	return time.Duration(time.Now().UnixNano() - f.lastContact.Load())
}

// Stats snapshots the counters.
func (f *Follower) Stats() Stats {
	down := false
	select {
	case <-f.downCh:
		down = true
	default:
	}
	return Stats{
		Shards:     f.cfg.Shards,
		Applied:    f.appliedN.Load(),
		Gaps:       f.gaps.Load(),
		Reordered:  f.reordered.Load(),
		Resyncs:    f.resyncs.Load(),
		Reconnects: f.reconnects.Load(),
		Failures:   f.failures.Load(),
		Lag:        f.Lag(),
		Ready:      f.Ready(),
		LeaderDown: down,
	}
}

func (f *Follower) stopped() bool {
	select {
	case <-f.stopCh:
		return true
	default:
		return false
	}
}

// fail records one failed leader round trip and trips LeaderDown at the
// configured threshold.
func (f *Follower) fail() {
	f.failures.Add(1)
	if n := f.consecFails.Add(1); f.cfg.ProbeFails > 0 && n >= int64(f.cfg.ProbeFails) {
		f.downOnce.Do(func() { close(f.downCh) })
	}
}

func (f *Follower) ok() {
	f.consecFails.Store(0)
	f.lastContact.Store(time.Now().UnixNano())
}

// run is one shard's replay loop: bootstrap, then stream; on any failure
// back off and reconnect from the cursor; on compaction re-bootstrap.
func (f *Follower) run(shard int) {
	defer f.wg.Done()
	for !f.stopped() {
		if !f.ready[shard].Load() {
			if err := f.bootstrap(shard); err != nil {
				f.fail()
				f.sleep()
				continue
			}
			f.ok()
		}
		err := f.stream(shard)
		if f.stopped() {
			return
		}
		if err == errCompacted {
			// Too far behind the ring: overflow-to-snapshot.
			f.resyncs.Add(1)
			f.ready[shard].Store(false)
			continue
		}
		f.fail()
		f.reconnects.Add(1)
		f.sleep()
	}
}

func (f *Follower) sleep() {
	select {
	case <-f.stopCh:
	case <-time.After(f.cfg.RetryInterval):
	}
}

// applyBatchMax bounds one Apply call (stays under the service layer's
// per-request op limit).
const applyBatchMax = 512

// bootstrap fetches the shard's fuzzy snapshot and folds it into the
// local store: puts for every snapshot key, deletes for local keys the
// snapshot no longer has (via Scan), then sets the replay cursor to the
// snapshot's anchor. Idempotent and safe over existing state.
func (f *Follower) bootstrap(shard int) error {
	resp, err := f.cfg.Client.Get(fmt.Sprintf("%s/v1/snapshot?shard=%d", f.cfg.Leader, shard))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("replica: snapshot status %d", resp.StatusCode)
	}
	var snap SnapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return err
	}
	if snap.Shards != f.cfg.Shards {
		return fmt.Errorf("replica: leader has %d feed shards, follower configured for %d",
			snap.Shards, f.cfg.Shards)
	}

	var stale []uint64
	if f.cfg.Scan != nil {
		in := make(map[uint64]struct{}, len(snap.Entries))
		for _, e := range snap.Entries {
			in[e.Key] = struct{}{}
		}
		f.cfg.Scan(shard, func(key, _ uint64) {
			if _, ok := in[key]; !ok {
				stale = append(stale, key)
			}
		})
	}

	ops := make([]kv.Op, 0, applyBatchMax)
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		err := f.cfg.Apply(ops)
		ops = ops[:0]
		return err
	}
	for _, e := range snap.Entries {
		ops = append(ops, kv.Op{Kind: kv.OpPut, Key: e.Key, Val: e.Val})
		if len(ops) == applyBatchMax {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	for _, k := range stale {
		ops = append(ops, kv.Op{Kind: kv.OpDelete, Key: k})
		if len(ops) == applyBatchMax {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	if snap.FromSeq > 0 {
		f.applied[shard].Store(snap.FromSeq - 1)
		if h := f.head[shard].Load(); snap.FromSeq-1 > h {
			f.head[shard].Store(snap.FromSeq - 1)
		}
	}
	f.ready[shard].Store(true)
	return nil
}

// stream opens one watch stream from the cursor and replays chunks until
// the stream ends (reconnect), compacts (re-bootstrap), or Stop.
func (f *Follower) stream(shard int) error {
	from := f.applied[shard].Load() + 1
	u := fmt.Sprintf("%s/v1/watch?%s", f.cfg.Leader, url.Values{
		"shard": {fmt.Sprint(shard)},
		"from":  {fmt.Sprint(from)},
	}.Encode())
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		io.Copy(io.Discard, resp.Body)
		return errCompacted
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("replica: watch status %d", resp.StatusCode)
	}

	// Terminate the blocking read when Stop arrives mid-stream.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-f.stopCh:
			resp.Body.Close()
		case <-done:
		}
	}()

	dec := json.NewDecoder(resp.Body)
	ops := make([]kv.Op, 0, applyBatchMax)
	for {
		var c WatchChunk
		if err := dec.Decode(&c); err != nil {
			return err
		}
		f.ok()
		if c.Head > f.head[shard].Load() {
			f.head[shard].Store(c.Head)
		}
		if c.Compacted {
			return errCompacted
		}
		if c.Hb || len(c.Entries) == 0 {
			continue
		}
		entries := c.Entries
		if f.cfg.Mangle != nil {
			entries = f.cfg.Mangle(shard, entries)
		}
		cursor := f.applied[shard].Load()
		ops = ops[:0]
		for _, e := range entries {
			if e.Seq <= cursor {
				// At or below the replay cursor: a reordered (or
				// duplicated) entry. Applying it would let an older value
				// overwrite a newer one — count and skip.
				f.reordered.Add(1)
				continue
			}
			if e.Seq > cursor+1 {
				// Entries vanished between cursor and e.Seq. The keys they
				// carried are now stale or missing locally; the divergence
				// verifier classifies them, this counter localizes when.
				f.gaps.Add(1)
			}
			if e.Del {
				ops = append(ops, kv.Op{Kind: kv.OpDelete, Key: e.Key})
			} else {
				ops = append(ops, kv.Op{Kind: kv.OpPut, Key: e.Key, Val: e.Val})
			}
			cursor = e.Seq
		}
		if len(ops) > 0 {
			if err := f.cfg.Apply(ops); err != nil {
				return err
			}
			f.appliedN.Add(uint64(len(ops)))
		}
		f.applied[shard].Store(cursor)
		if cursor > f.head[shard].Load() {
			f.head[shard].Store(cursor)
		}
	}
}
