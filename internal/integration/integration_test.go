// Package integration exercises whole-system behavior across modules:
// transactions spanning every structure type, persistence under concurrent
// load, and the statistics plumbing.
package integration

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"medley/internal/core"
	"medley/internal/ebr"
	"medley/internal/montage"
	"medley/internal/structures/fraserskip"
	"medley/internal/structures/mhash"
	"medley/internal/structures/msqueue"
	"medley/internal/structures/nmbst"
	"medley/internal/structures/rotatingskip"
)

// TestFiveStructureTransaction composes one transaction across all five
// NBTC-transformed structure types and checks atomicity both ways.
func TestFiveStructureTransaction(t *testing.T) {
	mgr := core.NewTxManager()
	ht := mhash.NewMap[uint64](mgr, 256)
	sk := fraserskip.New[uint64](mgr)
	rt := rotatingskip.New[uint64](mgr)
	bt := nmbst.New[uint64](mgr)
	q := msqueue.New[uint64](mgr)
	tx := mgr.Register()

	err := tx.RunRetry(func() error {
		ht.Put(tx, 1, 11)
		sk.Put(tx, 2, 22)
		rt.Put(tx, 3, 33)
		bt.Put(tx, 4, 44)
		q.Enqueue(tx, 55)
		return nil
	})
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	for _, check := range []struct {
		name string
		got  uint64
		ok   bool
		want uint64
	}{
		{"ht", first(ht.Get(nil, 1)), second(ht.Get(nil, 1)), 11},
		{"sk", first(sk.Get(nil, 2)), second(sk.Get(nil, 2)), 22},
		{"rt", first(rt.Get(nil, 3)), second(rt.Get(nil, 3)), 33},
		{"bt", first(bt.Get(nil, 4)), second(bt.Get(nil, 4)), 44},
	} {
		if !check.ok || check.got != check.want {
			t.Fatalf("%s = %d,%v want %d", check.name, check.got, check.ok, check.want)
		}
	}
	if v, ok := q.Peek(nil); !ok || v != 55 {
		t.Fatalf("queue = %d,%v", v, ok)
	}

	// All-or-nothing on abort.
	_ = tx.Run(func() error {
		ht.Remove(tx, 1)
		sk.Remove(tx, 2)
		rt.Remove(tx, 3)
		bt.Remove(tx, 4)
		q.Dequeue(tx)
		tx.Abort()
		return nil
	})
	if !second(ht.Get(nil, 1)) || !second(sk.Get(nil, 2)) ||
		!second(rt.Get(nil, 3)) || !second(bt.Get(nil, 4)) || q.Len() != 1 {
		t.Fatal("aborted five-structure transaction leaked")
	}
}

func first(v uint64, _ bool) uint64 { return v }
func second(_ uint64, ok bool) bool { return ok }

// TestWorkQueuePipeline models the paper's motivating composition: move a
// task from a queue into a map ("claim") atomically; under concurrency no
// task is lost or claimed twice.
func TestWorkQueuePipeline(t *testing.T) {
	mgr := core.NewTxManager()
	pending := msqueue.New[uint64](mgr)
	claimed := mhash.NewMap[uint64](mgr, 512)
	const tasks = 300
	for i := uint64(0); i < tasks; i++ {
		pending.Enqueue(nil, i)
	}
	var wg sync.WaitGroup
	errEmpty := errors.New("empty")
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			tx := mgr.Register()
			for {
				err := tx.RunRetry(func() error {
					task, ok := pending.Dequeue(tx)
					if !ok {
						return errEmpty
					}
					if !claimed.Insert(tx, task, id) {
						t.Errorf("task %d claimed twice", task)
					}
					return nil
				})
				if errors.Is(err, errEmpty) {
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if pending.Len() != 0 {
		t.Fatalf("%d tasks stranded", pending.Len())
	}
	if claimed.Len() != tasks {
		t.Fatalf("claimed %d tasks, want %d", claimed.Len(), tasks)
	}
}

// TestPersistentAndTransientMix runs a transaction touching a txMontage
// persistent store AND a transient Medley map; crash recovery keeps the
// persistent part consistent with itself.
func TestPersistentAndTransientMix(t *testing.T) {
	sys := montage.NewSystem(montage.Config{RegionWords: 1 << 18})
	mgr := core.NewTxManager()
	durable := montage.NewPStore[uint64](sys,
		mhash.NewMap[montage.Entry[uint64]](mgr, 256), montage.U64Codec())
	cache := mhash.NewMap[uint64](mgr, 256) // transient index next to it

	tx := mgr.Register()
	h := sys.Wrap(tx)
	if err := tx.RunRetry(func() error {
		durable.Put(h, 1, 100)
		durable.Put(h, 2, 200)
		cache.Put(tx, 1, 100)
		cache.Put(tx, 2, 200)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sys.Sync()
	_ = tx.RunRetry(func() error {
		durable.Put(h, 1, 101)
		cache.Put(tx, 1, 101)
		return nil
	}) // unsynced: will be lost together with nothing else

	rec := sys.CrashAndRecover()
	got := map[uint64]uint64{}
	for _, r := range rec {
		got[r.Key] = r.Data[0]
	}
	if got[1] != 100 || got[2] != 200 || len(got) != 2 {
		t.Fatalf("recovered %v, want {1:100 2:200}", got)
	}
}

// TestStatsPlumbing checks that manager statistics reflect a mixed
// workload plausibly across modules. Pooling is enabled so the EBR domain
// sees real retire traffic: fraserskip recycles its link cells through the
// workers' arenas (its nodes stay GC-reclaimed by design — see the node
// audit note in the package).
func TestStatsPlumbing(t *testing.T) {
	mgr := core.NewTxManager()
	mgr.EnablePooling()
	sk := fraserskip.New[uint64](mgr)
	smr := ebr.New(16)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			h := smr.Register()
			tx.SetSMR(h)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				h.Enter()
				_ = tx.RunRetry(func() error {
					k := uint64(rng.Intn(64))
					sk.Put(tx, k, k)
					sk.Remove(tx, (k+3)%64)
					return nil
				})
				h.Exit()
			}
			h.Drain()
		}(int64(g) + 2)
	}
	wg.Wait()
	st := mgr.Stats()
	if st.Commits != 1200 {
		t.Fatalf("commits = %d, want 1200", st.Commits)
	}
	if st.Begins != st.Commits+st.Aborts {
		t.Fatalf("accounting: %+v", st)
	}
	es := smr.Stats()
	if es.Retired == 0 || es.Reclaimed != es.Retired {
		t.Fatalf("ebr stats: %+v", es)
	}
}

// TestOpacityValidateReads exercises the paper's optional mid-transaction
// validation across structures.
func TestOpacityValidateReads(t *testing.T) {
	mgr := core.NewTxManager()
	ht := mhash.NewMap[uint64](mgr, 64)
	ht.Put(nil, 1, 10)
	tx := mgr.Register()
	_ = tx.Run(func() error {
		if _, ok := ht.Get(tx, 1); !ok {
			t.Fatal("get failed")
		}
		if !tx.ValidateReads() {
			t.Fatal("fresh read invalid")
		}
		ht.Put(nil, 1, 11) // external commit invalidates
		if tx.ValidateReads() {
			t.Fatal("stale read validated")
		}
		tx.Abort()
		return nil
	})
}
