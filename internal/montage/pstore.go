package montage

import (
	"medley/internal/core"
)

// Index is the transient DRAM index a persistent store keeps its payload
// handles in: any Medley map (mhash.Map, fraserskip.List, ...) satisfies it
// with V = Entry[T].
type Index[V any] interface {
	Get(tx *core.Tx, key uint64) (V, bool)
	Put(tx *core.Tx, key uint64, val V) (V, bool)
	Insert(tx *core.Tx, key uint64, val V) bool
	Remove(tx *core.Tx, key uint64) (V, bool)
	Len() int
	Range(fn func(key uint64, val V) bool)
}

// Entry is what a persistent store keeps in its index: the decoded value
// (so reads never touch NVM) plus the payload block offset.
type Entry[V any] struct {
	Val V
	Off int
}

// Codec serializes values into payload words. Values in the paper's
// benchmarks are 8-byte integers (see U64Codec); richer values provide
// their own.
type Codec[V any] struct {
	Enc func(V) []uint64
	Dec func([]uint64) V
}

// U64Codec is the identity codec for uint64 values.
func U64Codec() Codec[uint64] {
	return Codec[uint64]{
		Enc: func(v uint64) []uint64 { return []uint64{v} },
		Dec: func(w []uint64) uint64 { return w[0] },
	}
}

// PStore is a txMontage persistent map: a transient Medley index over
// epoch-tagged payloads in simulated NVM. All operations must run on a
// Handle whose transaction is open (ops compose transactionally and commit
// with epoch validation); single ops may use RunOp.
type PStore[V any] struct {
	sys   *System
	idx   Index[Entry[V]]
	codec Codec[V]
}

// NewPStore creates a persistent store over the given transient index.
func NewPStore[V any](sys *System, idx Index[Entry[V]], codec Codec[V]) *PStore[V] {
	return &PStore[V]{sys: sys, idx: idx, codec: codec}
}

// System returns the montage system backing this store.
func (p *PStore[V]) System() *System { return p.sys }

// Get returns the value bound to key. Reads are served entirely from the
// DRAM index (payloads are write-only during normal operation, exactly as
// in nbMontage).
func (p *PStore[V]) Get(h *Handle, key uint64) (V, bool) {
	e, ok := p.idx.Get(h.tx, key)
	return e.Val, ok
}

// Contains reports whether key is present.
func (p *PStore[V]) Contains(h *Handle, key uint64) bool {
	_, ok := p.Get(h, key)
	return ok
}

// Put binds key to val: a new payload is staged and the old one (if any)
// retired, all taking effect at commit.
func (p *PStore[V]) Put(h *Handle, key uint64, val V) (V, bool) {
	off := h.newPayload(key, p.codec.Enc(val))
	old, replaced := p.idx.Put(h.tx, key, Entry[V]{Val: val, Off: off})
	if replaced {
		h.killPayload(old.Off)
	}
	return old.Val, replaced
}

// Insert adds key only if absent.
func (p *PStore[V]) Insert(h *Handle, key uint64, val V) bool {
	off := h.newPayload(key, p.codec.Enc(val))
	if p.idx.Insert(h.tx, key, Entry[V]{Val: val, Off: off}) {
		return true
	}
	// Not inserted: the staged block was never born. On commit the deferred
	// release below returns it; on abort the undo registered by newPayload
	// does (Defer and OnAbortUndo are mutually exclusive paths).
	h.tx.Defer(func() { p.sys.release(off, 0) })
	return false
}

// Remove deletes key, retiring its payload at commit.
func (p *PStore[V]) Remove(h *Handle, key uint64) (V, bool) {
	old, ok := p.idx.Remove(h.tx, key)
	if ok {
		h.killPayload(old.Off)
	}
	return old.Val, ok
}

// Len counts entries (not linearizable; tests and diagnostics).
func (p *PStore[V]) Len() int { return p.idx.Len() }

// Range iterates a non-linearizable snapshot of entries.
func (p *PStore[V]) Range(fn func(key uint64, val V) bool) {
	p.idx.Range(func(k uint64, e Entry[V]) bool { return fn(k, e.Val) })
}

// RunOp runs a single-operation transaction on h with retry: the
// convenience path for non-composed durable operations.
func RunOp(h *Handle, op func() error) error {
	return h.tx.RunRetry(op)
}

// Recovered is one payload surviving a crash.
type Recovered struct {
	Key  uint64
	Data []uint64
	Off  int
}

// CrashAndRecover simulates a full-system crash and returns the surviving
// payloads: those born in a persisted epoch and not dead by it. It also
// resets the system's DRAM state (epoch clock, allocator, handles) the way
// a post-restart process would find it; the caller rebuilds indices from
// the result (see RebuildPStore).
func (s *System) CrashAndRecover() []Recovered {
	s.advMu.Lock()
	defer s.advMu.Unlock()
	s.Region.Crash()
	p := s.Region.Load(epochWord)
	s.persisted.Store(p)
	s.epoch.Store(p + 1)
	s.mu.Lock()
	s.handles = nil // old threads disappear under the full-system-crash model
	s.mu.Unlock()

	var out []Recovered
	for i := range s.arenas {
		a := &s.arenas[i]
		a.mu.Lock()
		a.free = a.free[:0]
		highest := -1
		live := make([]bool, a.nBlocks)
		for b := 0; b < a.nBlocks; b++ {
			off := a.start + b*a.blockWords
			birth := s.Region.Load(off + hdrBirth)
			death := s.Region.Load(off + hdrDeath)
			if birth != 0 && birth <= p && (death == 0 || death > p) {
				if n := int(s.Region.Load(off + hdrLen)); n >= 0 && n <= a.blockWords-hdrWords {
					data := make([]uint64, n)
					for j := 0; j < n; j++ {
						data[j] = s.Region.Load(off + hdrWords + j)
					}
					out = append(out, Recovered{Key: s.Region.Load(off + hdrKey), Data: data, Off: off})
					live[b] = true
					highest = b
				}
			}
			if !live[b] && birth != 0 {
				// Occupied but not recovered (dead, or unborn by the
				// horizon): scrub so the block reads as free.
				s.Region.Store(off+hdrBirth, 0)
				s.Region.Store(off+hdrDeath, 0)
			}
		}
		// Resume bump allocation above the highest survivor; every
		// non-surviving block below that point is immediately reusable.
		a.bump = highest + 1
		for b := 0; b < a.bump; b++ {
			if !live[b] {
				a.free = append(a.free, freeBlock{off: a.start + b*a.blockWords, safe: 0})
			}
		}
		a.mu.Unlock()
	}
	return out
}

// RebuildPStore reconstructs a persistent store from recovered payloads
// over a fresh transient index, as post-crash recovery does for each
// structure.
func RebuildPStore[V any](sys *System, idx Index[Entry[V]], codec Codec[V], payloads []Recovered) *PStore[V] {
	p := NewPStore(sys, idx, codec)
	for _, r := range payloads {
		idx.Put(nil, r.Key, Entry[V]{Val: codec.Dec(r.Data), Off: r.Off})
	}
	return p
}
