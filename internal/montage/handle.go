package montage

import (
	"sync"
	"sync/atomic"

	"medley/internal/core"
)

// flushRange is a region span awaiting write-back at epoch end.
type flushRange struct {
	off, words int
	epoch      uint64
}

// Handle is a per-goroutine participant in the montage protocol. It tracks
// the epoch its current transaction runs in, announces activity for the
// advancer's grace period, and buffers payload write-back work per epoch.
type Handle struct {
	sys *System
	tx  *core.Tx

	txEpoch uint64
	active  atomic.Uint64 // epoch<<1 | 1 while a transaction is open

	mu      sync.Mutex
	pending []flushRange

	// noPersist marks a handle whose payloads live in NVM but are never
	// epoch-tagged or written back: the "transient on NVM" configuration
	// of the paper's Figure 10b.
	noPersist bool
}

// Wrap attaches a Medley transaction context to this montage system,
// turning it into a txMontage context: every transaction begun on tx will
// observe the epoch at Begin and validate it at commit through the MCNS
// read set — the "one small change" of Section 4.4 — and the handle's
// cleanup work is coordinated with the epoch advancer.
func (s *System) Wrap(tx *core.Tx) *Handle {
	h := &Handle{sys: s, tx: tx}
	s.mu.Lock()
	s.handles = append(s.handles, h)
	s.mu.Unlock()
	tx.OnBegin(func(t *core.Tx) {
		e := s.epoch.Load()
		h.txEpoch = e
		h.active.Store(e<<1 | 1)
		t.AddReadCheck(func() bool { return s.epoch.Load() == e })
	})
	tx.OnFinish(func(*core.Tx, bool) {
		h.active.Store(0)
	})
	return h
}

// WrapTransient attaches a transaction context with persistence disabled:
// payload content is still allocated and written in simulated NVM (so the
// media write cost is paid) but nothing is epoch-tagged, validated or
// written back. This is the paper's Figure 10b configuration.
func (s *System) WrapTransient(tx *core.Tx) *Handle {
	h := &Handle{sys: s, tx: tx, noPersist: true}
	return h
}

// Tx returns the wrapped Medley transaction context.
func (h *Handle) Tx() *core.Tx { return h.tx }

// System returns the montage system this handle belongs to.
func (h *Handle) System() *System { return h.sys }

// addPending registers a region span for write-back when epoch e ends.
func (h *Handle) addPending(off, words int, e uint64) {
	h.mu.Lock()
	h.pending = append(h.pending, flushRange{off: off, words: words, epoch: e})
	h.mu.Unlock()
}

// drainUpTo removes and returns all spans registered for epochs <= e.
func (h *Handle) drainUpTo(e uint64) []flushRange {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []flushRange
	kept := h.pending[:0]
	for _, rg := range h.pending {
		if rg.epoch <= e {
			out = append(out, rg)
		} else {
			kept = append(kept, rg)
		}
	}
	h.pending = kept
	return out
}

// opEpoch returns the epoch this payload work belongs to: the transaction's
// begin epoch inside a transaction (commit validates it), else the current
// clock.
func (h *Handle) opEpoch() uint64 {
	if !h.noPersist && h.tx.InTx() {
		return h.txEpoch
	}
	return h.sys.epoch.Load()
}

// newPayload stages a persistent payload for (key, data): the block is
// allocated and its content written immediately, but it is born — epoch
// stamped and scheduled for write-back — only if the enclosing transaction
// commits. Returns the block offset.
func (h *Handle) newPayload(key uint64, data []uint64) int {
	s := h.sys
	off, blockWords := s.alloc(len(data))
	s.Region.Store(off+hdrKey, key)
	s.Region.Store(off+hdrLen, uint64(len(data)))
	for i, w := range data {
		s.Region.Store(off+hdrWords+i, w)
	}
	e := h.opEpoch()
	h.tx.Defer(func() {
		s.Region.Store(off+hdrBirth, e)
		if !h.noPersist {
			h.addPending(off, blockWords, e)
		}
		s.payloadsBorn.Add(1)
	})
	h.tx.OnAbortUndo(func() {
		s.release(off, 0)
	})
	return off
}

// killPayload retires the payload at off when the enclosing transaction
// commits: its death is stamped with the transaction's epoch, the header
// line is scheduled for write-back, and the block becomes reusable once
// that epoch persists.
func (h *Handle) killPayload(off int) {
	s := h.sys
	e := h.opEpoch()
	h.tx.Defer(func() {
		s.Region.Store(off+hdrDeath, e)
		if h.noPersist {
			s.release(off, 0)
		} else {
			h.addPending(off, hdrWords, e)
			s.release(off, e)
		}
		s.payloadsKilled.Add(1)
	})
}
