// Package montage reimplements nbMontage (Cai et al., DISC 2021), the
// periodic-persistence system the paper grafts Medley onto to obtain
// txMontage, and the txMontage integration itself.
//
// Design, following Section 4 of the Medley paper:
//
//   - Wall-clock time is divided into epochs. Semantically significant data
//     ("payloads" — key/value pairs plus epoch tags) live in simulated NVM
//     (internal/pmem); indices (hash table, skiplist) stay in DRAM and are
//     rebuilt on recovery.
//   - Payload content is written during the operation, but the payload is
//     born (epoch-tagged) and scheduled for write-back only in post-commit
//     cleanup; an aborted transaction returns its unborn block to the
//     allocator and the persisted image never learns of it.
//   - The epoch advancer ends epoch e by (1) bumping the global epoch so no
//     further transaction can commit in e (every txMontage transaction
//     validates its begin-epoch through the MCNS read set), (2) waiting for
//     transactions already committed in e to finish their cleanups, (3)
//     writing back all epoch-≤e payload work, fencing, and (4) durably
//     recording e as persisted. A crash therefore recovers exactly the
//     state at the end of the last persisted epoch: buffered durable strict
//     serializability, with transactions of an unpersisted epoch lost as a
//     group.
//   - Freed blocks are reused only once their death epoch is persisted, so
//     recovery to any reachable horizon never sees a recycled block.
//
// The paper's claim that persistence comes "almost for free" corresponds
// here to the one extra read-set entry (the epoch check) per transaction.
package montage

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/pmem"
)

// Block layout (words): birth | death | key | nData | data...
const (
	hdrBirth  = 0
	hdrDeath  = 1
	hdrKey    = 2
	hdrLen    = 3
	hdrWords  = 4
	epochWord = 0 // region word durably recording the last persisted epoch
	arenaBase = pmem.WordsPerLine
)

// classes are the payload block size classes, in words (header included).
var classes = []int{8, 16, 32, 64, 256}

// classShare is each class's share of the arena space, in sixteenths.
var classShare = []int{8, 3, 2, 2, 1}

// Config sizes the montage system.
type Config struct {
	// RegionWords is the simulated NVM size in 8-byte words.
	RegionWords int
	// WriteBackLatency, FenceLatency and StoreLatency are injected device
	// latencies (see pmem.Config).
	WriteBackLatency time.Duration
	FenceLatency     time.Duration
	StoreLatency     time.Duration
}

// DefaultConfig returns a 32 MiB region with no injected latency (tests);
// benchmarks override the latencies to model Optane.
func DefaultConfig() Config {
	return Config{RegionWords: 1 << 22}
}

type freeBlock struct {
	off  int
	safe uint64 // reusable once persistedEpoch >= safe
}

type arena struct {
	start, blockWords, nBlocks int

	mu   sync.Mutex
	bump int
	free []freeBlock
}

// System is one montage persistence domain: a region, an epoch clock, and
// the per-thread handles registered with it.
type System struct {
	Region *pmem.Region

	epoch     atomic.Uint64
	persisted atomic.Uint64

	arenas []arena

	mu      sync.Mutex // handle registry
	handles []*Handle

	advMu sync.Mutex // serializes advancers

	// Stats.
	payloadsBorn   atomic.Uint64
	payloadsKilled atomic.Uint64
	advances       atomic.Uint64
}

// NewSystem creates a montage domain over a fresh region. The epoch clock
// starts at 1; epoch 0 means "never persisted".
func NewSystem(cfg Config) *System {
	if cfg.RegionWords == 0 {
		cfg = DefaultConfig()
	}
	s := &System{
		Region: pmem.New(pmem.Config{
			Words:            cfg.RegionWords,
			WriteBackLatency: cfg.WriteBackLatency,
			FenceLatency:     cfg.FenceLatency,
			StoreLatency:     cfg.StoreLatency,
		}),
	}
	s.layoutArenas(cfg.RegionWords)
	s.epoch.Store(1)
	return s
}

func (s *System) layoutArenas(words int) {
	usable := words - arenaBase
	s.arenas = make([]arena, len(classes))
	off := arenaBase
	for i, cw := range classes {
		share := usable * classShare[i] / 16
		n := share / cw
		s.arenas[i] = arena{start: off, blockWords: cw, nBlocks: n}
		off += n * cw
	}
}

// Epoch returns the current epoch.
func (s *System) Epoch() uint64 { return s.epoch.Load() }

// PersistedEpoch returns the newest durably recorded epoch.
func (s *System) PersistedEpoch() uint64 { return s.persisted.Load() }

// alloc reserves a block able to hold nData data words. The block is not
// yet born: its persisted-visible birth word is 0 until post-commit cleanup
// stamps it.
func (s *System) alloc(nData int) (off, blockWords int) {
	need := hdrWords + nData
	for i := range s.arenas {
		a := &s.arenas[i]
		if a.blockWords < need {
			continue
		}
		a.mu.Lock()
		// Prefer recycling a block whose death is safely persisted.
		if n := len(a.free); n > 0 && a.free[0].safe <= s.persisted.Load() {
			blk := a.free[0]
			a.free = a.free[1:]
			a.mu.Unlock()
			s.Region.Store(blk.off+hdrBirth, 0)
			s.Region.Store(blk.off+hdrDeath, 0)
			return blk.off, a.blockWords
		}
		if a.bump < a.nBlocks {
			o := a.start + a.bump*a.blockWords
			a.bump++
			a.mu.Unlock()
			return o, a.blockWords
		}
		a.mu.Unlock()
	}
	panic("montage: persistent region exhausted")
}

// release returns a block to its arena; safe is the epoch that must be
// persisted before reuse (0 for never-born blocks).
func (s *System) release(off int, safe uint64) {
	for i := range s.arenas {
		a := &s.arenas[i]
		end := a.start + a.nBlocks*a.blockWords
		if off >= a.start && off < end {
			a.mu.Lock()
			a.free = append(a.free, freeBlock{off: off, safe: safe})
			a.mu.Unlock()
			return
		}
	}
	panic("montage: release of unknown block")
}

// Advance ends the current epoch e: no transaction can commit in e once the
// clock ticks (epoch validation in MCNS), committed-in-e cleanups are
// waited out, all epoch-≤e payload work is written back and fenced, and e
// is durably recorded. Returns the epoch that became persistent.
//
// Advance must not be called from inside an open transaction on a handle of
// this system (it would wait for itself).
func (s *System) Advance() uint64 {
	s.advMu.Lock()
	defer s.advMu.Unlock()
	e := s.epoch.Load()
	s.epoch.Store(e + 1)

	// Grace period: wait for every transaction that began in epoch <= e to
	// finish settling (its cleanups registered all epoch-e payload work).
	s.mu.Lock()
	hs := make([]*Handle, len(s.handles))
	copy(hs, s.handles)
	s.mu.Unlock()
	for _, h := range hs {
		for {
			a := h.active.Load()
			if a&1 == 0 || a>>1 > e {
				break
			}
			runtime.Gosched()
		}
	}

	// Write back everything registered for epochs <= e.
	for _, h := range hs {
		for _, rg := range h.drainUpTo(e) {
			s.Region.WriteBack(rg.off, rg.words)
		}
	}
	s.Region.Fence()
	s.Region.Store(epochWord, e)
	s.Region.WriteBack(epochWord, 1)
	s.Region.Fence()
	s.persisted.Store(e)
	s.advances.Add(1)
	return e
}

// Sync makes everything committed so far durable: one Advance of the
// current epoch (the paper's wait-free sync is approximated by this
// blocking call; only the advancer blocks, never data operations).
func (s *System) Sync() { s.Advance() }

// StartAdvancer runs Advance every interval until the returned stop
// function is called, mirroring nbMontage's background epoch advancer.
func (s *System) StartAdvancer(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.Advance()
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// Stats is a snapshot of system counters.
type Stats struct {
	Epoch          uint64
	PersistedEpoch uint64
	PayloadsBorn   uint64
	PayloadsKilled uint64
	Advances       uint64
	Device         pmem.Stats
}

// Stats returns a snapshot of the system's counters.
func (s *System) Stats() Stats {
	return Stats{
		Epoch:          s.epoch.Load(),
		PersistedEpoch: s.persisted.Load(),
		PayloadsBorn:   s.payloadsBorn.Load(),
		PayloadsKilled: s.payloadsKilled.Load(),
		Advances:       s.advances.Load(),
		Device:         s.Region.Stats(),
	}
}
