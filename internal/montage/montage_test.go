package montage

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"medley/internal/core"
	"medley/internal/structures/mhash"
)

func newStore(t *testing.T) (*System, *PStore[uint64], *core.TxManager) {
	t.Helper()
	sys := NewSystem(Config{RegionWords: 1 << 18})
	mgr := core.NewTxManager()
	idx := mhash.NewMap[Entry[uint64]](mgr, 1024)
	return sys, NewPStore[uint64](sys, idx, U64Codec()), mgr
}

func rebuild(sys *System, mgr *core.TxManager, payloads []Recovered) *PStore[uint64] {
	idx := mhash.NewMap[Entry[uint64]](mgr, 1024)
	return RebuildPStore(sys, idx, U64Codec(), payloads)
}

func TestPersistAcrossCrash(t *testing.T) {
	sys, st, _ := newStore(t)
	mgr2 := core.NewTxManager()
	h := sys.Wrap(mgr2.Register())
	if err := RunOp(h, func() error {
		st.Put(h, 1, 100)
		st.Put(h, 2, 200)
		return nil
	}); err != nil {
		t.Fatalf("put: %v", err)
	}
	sys.Sync()
	rec := sys.CrashAndRecover()
	if len(rec) != 2 {
		t.Fatalf("recovered %d payloads, want 2", len(rec))
	}
	st2 := rebuild(sys, mgr2, rec)
	if v, ok := st2.Get(sys.Wrap(mgr2.Register()), 1); !ok || v != 100 {
		t.Fatalf("recovered st[1] = %d,%v", v, ok)
	}
}

func TestUnsyncedEpochLost(t *testing.T) {
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	h := sys.Wrap(mgr.Register())
	_ = RunOp(h, func() error { st.Put(h, 1, 100); return nil })
	sys.Sync()
	_ = RunOp(h, func() error { st.Put(h, 2, 200); return nil }) // not synced
	rec := sys.CrashAndRecover()
	if len(rec) != 1 || rec[0].Key != 1 {
		t.Fatalf("recovered %v, want only key 1", rec)
	}
}

func TestRemoveDurable(t *testing.T) {
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	h := sys.Wrap(mgr.Register())
	_ = RunOp(h, func() error { st.Put(h, 1, 100); return nil })
	_ = RunOp(h, func() error { st.Put(h, 2, 200); return nil })
	sys.Sync()
	_ = RunOp(h, func() error {
		if _, ok := st.Remove(h, 1); !ok {
			t.Fatal("remove failed")
		}
		return nil
	})
	sys.Sync()
	rec := sys.CrashAndRecover()
	if len(rec) != 1 || rec[0].Key != 2 {
		t.Fatalf("recovered %d payloads (want only key 2)", len(rec))
	}
}

func TestReplaceDurable(t *testing.T) {
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	h := sys.Wrap(mgr.Register())
	_ = RunOp(h, func() error { st.Put(h, 1, 100); return nil })
	sys.Sync()
	_ = RunOp(h, func() error { st.Put(h, 1, 111); return nil })
	sys.Sync()
	rec := sys.CrashAndRecover()
	if len(rec) != 1 {
		t.Fatalf("recovered %d payloads, want 1", len(rec))
	}
	if rec[0].Data[0] != 111 {
		t.Fatalf("recovered value %d, want 111", rec[0].Data[0])
	}
}

func TestRecoveryToOlderEpochSeesOldValue(t *testing.T) {
	// A replace whose epoch never persisted must roll back to the old value.
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	h := sys.Wrap(mgr.Register())
	_ = RunOp(h, func() error { st.Put(h, 1, 100); return nil })
	sys.Sync()
	_ = RunOp(h, func() error { st.Put(h, 1, 111); return nil }) // unsynced replace
	rec := sys.CrashAndRecover()
	if len(rec) != 1 || rec[0].Data[0] != 100 {
		t.Fatalf("recovered %+v, want old value 100", rec)
	}
}

func TestAbortedTxLeavesNoPayloads(t *testing.T) {
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	tx := mgr.Register()
	h := sys.Wrap(tx)
	_ = tx.Run(func() error {
		st.Put(h, 1, 100)
		st.Put(h, 2, 200)
		tx.Abort()
		return nil
	})
	sys.Sync()
	rec := sys.CrashAndRecover()
	if len(rec) != 0 {
		t.Fatalf("aborted tx persisted %d payloads", len(rec))
	}
	if sys.Stats().PayloadsBorn != 0 {
		t.Fatalf("aborted tx counted births: %+v", sys.Stats())
	}
}

func TestTxAtomicAcrossCrash(t *testing.T) {
	// Both writes of one transaction persist together or not at all.
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	tx := mgr.Register()
	h := sys.Wrap(tx)
	if err := tx.Run(func() error {
		st.Put(h, 1, 10)
		st.Put(h, 2, 20)
		return nil
	}); err != nil {
		t.Fatalf("tx: %v", err)
	}
	sys.Sync()
	if err := tx.Run(func() error {
		st.Put(h, 1, 11)
		st.Put(h, 3, 30)
		return nil
	}); err != nil {
		t.Fatalf("tx2: %v", err)
	}
	// No sync: second tx must vanish entirely.
	rec := sys.CrashAndRecover()
	got := map[uint64]uint64{}
	for _, r := range rec {
		got[r.Key] = r.Data[0]
	}
	want := map[uint64]uint64{1: 10, 2: 20}
	if len(got) != len(want) || got[1] != 10 || got[2] != 20 {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestEpochValidationAbortsStragglers(t *testing.T) {
	// A transaction that begins in epoch e cannot commit after the clock
	// ticks: the epoch read-check fails at End.
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	tx := mgr.Register()
	h := sys.Wrap(tx)
	err := tx.Run(func() error {
		st.Put(h, 1, 1)
		// The epoch advances inside an open transaction: the advancer's
		// grace wait only applies at write-back time; bumping the clock is
		// what kills stragglers. Simulate the bump directly.
		sys.epoch.Add(1)
		return nil
	})
	if !errors.Is(err, core.ErrTxAborted) {
		t.Fatalf("straggler committed across epoch boundary: %v", err)
	}
}

func TestBlockReuseOnlyAfterDeathPersisted(t *testing.T) {
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	h := sys.Wrap(mgr.Register())
	_ = RunOp(h, func() error { st.Put(h, 1, 100); return nil })
	sys.Sync()
	var oldOff int
	_ = RunOp(h, func() error {
		e, _ := st.idx.Get(h.tx, 1)
		oldOff = e.Off
		st.Remove(h, 1)
		return nil
	})
	// Death epoch not yet persisted: allocation must not hand the block out.
	off, _ := sys.alloc(1)
	if off == oldOff {
		t.Fatal("block reused before its death epoch persisted")
	}
	sys.release(off, 0)
	sys.Sync()
	// Now the death epoch is persisted; the block may circulate.
	off2, _ := sys.alloc(1)
	if off2 != oldOff {
		// Not required to be the same block, but it must be available:
		// drain the free list to confirm it is reachable.
		found := off2 == oldOff
		for i := 0; i < 1024 && !found; i++ {
			o, _ := sys.alloc(1)
			if o == oldOff {
				found = true
			}
		}
		if !found {
			t.Fatal("dead block never became reusable")
		}
	}
}

func TestConservationAcrossRandomCrash(t *testing.T) {
	// Bank transfers with a background advancer; crash at an arbitrary
	// moment must recover a cut where the total is conserved.
	const nAccounts = 16
	const initial = 1000
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	seedH := sys.Wrap(mgr.Register())
	if err := RunOp(seedH, func() error {
		for k := uint64(0); k < nAccounts; k++ {
			st.Put(seedH, k, initial)
		}
		return nil
	}); err != nil {
		t.Fatalf("seed: %v", err)
	}
	sys.Sync()

	stopAdv := sys.StartAdvancer(200 * 1000) // 200us
	var wg sync.WaitGroup
	iters := 400
	if testing.Short() {
		iters = 80
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			h := sys.Wrap(tx)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				a := uint64(rng.Intn(nAccounts))
				b := uint64(rng.Intn(nAccounts))
				if a == b {
					continue
				}
				amt := uint64(rng.Intn(5) + 1)
				_ = tx.RunRetry(func() error {
					va, ok := st.Get(h, a)
					if !ok || va < amt {
						return errInsufficient
					}
					vb, _ := st.Get(h, b)
					st.Put(h, a, va-amt)
					st.Put(h, b, vb+amt)
					return nil
				})
			}
		}(int64(g) + 3)
	}
	wg.Wait()
	stopAdv()
	rec := sys.CrashAndRecover()
	if len(rec) != nAccounts {
		t.Fatalf("recovered %d accounts, want %d", len(rec), nAccounts)
	}
	var total uint64
	for _, r := range rec {
		total += r.Data[0]
	}
	if total != nAccounts*initial {
		t.Fatalf("recovered total = %d, want %d (epoch cut not consistent)", total, nAccounts*initial)
	}
}

func TestRecycledRegionSurvivesChurn(t *testing.T) {
	// Heavy insert/remove churn in a small region: allocation must recycle
	// without exhausting, and recovery must stay consistent.
	sys := NewSystem(Config{RegionWords: 1 << 14})
	mgr := core.NewTxManager()
	idx := mhash.NewMap[Entry[uint64]](mgr, 64)
	st := NewPStore[uint64](sys, idx, U64Codec())
	h := sys.Wrap(mgr.Register())
	for round := 0; round < 30; round++ {
		for k := uint64(0); k < 20; k++ {
			key := k
			_ = RunOp(h, func() error { st.Put(h, key, key*uint64(round+1)); return nil })
		}
		sys.Sync()
		for k := uint64(0); k < 20; k += 2 {
			key := k
			_ = RunOp(h, func() error { st.Remove(h, key); return nil })
		}
		sys.Sync()
	}
	rec := sys.CrashAndRecover()
	if len(rec) != 10 {
		t.Fatalf("recovered %d payloads, want 10 odd keys", len(rec))
	}
	for _, r := range rec {
		if r.Key%2 != 1 {
			t.Fatalf("even key %d survived", r.Key)
		}
		if r.Data[0] != r.Key*30 {
			t.Fatalf("key %d value %d, want %d", r.Key, r.Data[0], r.Key*30)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	h := sys.Wrap(mgr.Register())
	_ = RunOp(h, func() error { st.Put(h, 1, 1); st.Put(h, 2, 2); return nil })
	_ = RunOp(h, func() error { st.Remove(h, 1); return nil })
	sys.Sync()
	s := sys.Stats()
	if s.PayloadsBorn != 2 || s.PayloadsKilled != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Device.WriteBackLines == 0 || s.Device.Fences == 0 {
		t.Fatalf("no device traffic recorded: %+v", s.Device)
	}
}
