package montage

import "errors"

// errInsufficient is a business-rule failure: aborts the transaction via
// Run without being retried by RunRetry.
var errInsufficient = errors.New("insufficient funds")
