package montage

import (
	"testing"

	"medley/internal/core"
	"medley/internal/structures/mhash"
)

// newTestStore builds a small montage system with a hash-indexed PStore
// and a wrapped handle, the fixture shape of the recovery tests.
func newTestStore(t *testing.T) (*System, *PStore[uint64], *Handle) {
	t.Helper()
	sys := NewSystem(Config{RegionWords: 1 << 16})
	mgr := core.NewTxManager()
	idx := mhash.NewMap[Entry[uint64]](mgr, 1<<8)
	store := NewPStore(sys, idx, U64Codec())
	h := sys.Wrap(mgr.Register())
	return sys, store, h
}

func put(t *testing.T, store *PStore[uint64], h *Handle, k, v uint64) {
	t.Helper()
	if err := h.Tx().RunRetry(func() error { store.Put(h, k, v); return nil }); err != nil {
		t.Fatal(err)
	}
}

func remove(t *testing.T, store *PStore[uint64], h *Handle, k uint64) {
	t.Helper()
	if err := h.Tx().RunRetry(func() error { store.Remove(h, k); return nil }); err != nil {
		t.Fatal(err)
	}
}

func contents(store *PStore[uint64]) map[uint64]uint64 {
	out := make(map[uint64]uint64)
	store.Range(func(k, v uint64) bool {
		out[k] = v
		return true
	})
	return out
}

// TestRebuildPStoreRoundTrip pushes a non-empty store through
// CrashAndRecover + RebuildPStore and checks the recovered contents are
// exactly the persisted ones: puts and overwrites present with their last
// value, removed keys absent.
func TestRebuildPStoreRoundTrip(t *testing.T) {
	sys, store, h := newTestStore(t)
	for k := uint64(0); k < 100; k++ {
		put(t, store, h, k, k*3)
	}
	for k := uint64(0); k < 20; k++ {
		put(t, store, h, k, k*7) // overwrite: old payload retired
	}
	for k := uint64(90); k < 100; k++ {
		remove(t, store, h, k)
	}
	want := contents(store)
	if len(want) != 90 {
		t.Fatalf("pre-crash store has %d entries, want 90", len(want))
	}
	sys.Sync()

	payloads := sys.CrashAndRecover()
	mgr := core.NewTxManager()
	idx := mhash.NewMap[Entry[uint64]](mgr, 1<<8)
	rebuilt := RebuildPStore(sys, idx, U64Codec(), payloads)

	got := contents(rebuilt)
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok || gv != v {
			t.Fatalf("key %d: recovered (%d, %v), want %d", k, gv, ok, v)
		}
	}
	// Recovery is a restart: the rebuilt store keeps working.
	h2 := sys.Wrap(mgr.Register())
	put(t, rebuilt, h2, 7, 777)
	if v, ok := rebuilt.Get(h2, 7); !ok || v != 777 {
		t.Fatalf("post-recovery put lost: (%d, %v)", v, ok)
	}
}

// TestRebuildPStoreDuplicateOffsets documents RebuildPStore's tolerance of
// degenerate payload lists: entries apply in order, so a later payload for
// the same key wins regardless of offsets, and distinct keys sharing an
// offset (a recycled block surfacing twice) both land in the index.
func TestRebuildPStoreDuplicateOffsets(t *testing.T) {
	sys := NewSystem(Config{RegionWords: 1 << 16})
	mgr := core.NewTxManager()
	idx := mhash.NewMap[Entry[uint64]](mgr, 1<<8)
	payloads := []Recovered{
		{Key: 1, Data: []uint64{10}, Off: 4096},
		{Key: 1, Data: []uint64{20}, Off: 4096}, // same key, same block: last wins
		{Key: 2, Data: []uint64{30}, Off: 4096}, // different key, recycled offset
	}
	store := RebuildPStore(sys, idx, U64Codec(), payloads)
	got := contents(store)
	if len(got) != 2 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("rebuilt contents = %v, want {1:20, 2:30}", got)
	}
}

// TestCrashAndRecoverSkipsTornPayload persists a store, then corrupts one
// block's persisted length header so it claims more data than the block
// can hold — the torn-write shape a real crash can leave. Recovery must
// skip the torn block without panicking and keep every intact one.
func TestCrashAndRecoverSkipsTornPayload(t *testing.T) {
	sys, store, h := newTestStore(t)
	for k := uint64(0); k < 50; k++ {
		put(t, store, h, k, k+1000)
	}
	sys.Sync()

	// Locate the live blocks (offset + key) from the persisted image.
	first := sys.CrashAndRecover()
	if len(first) != 50 {
		t.Fatalf("first recovery found %d payloads, want 50", len(first))
	}
	victim := first[0]

	// Tear the victim: length header far beyond the block's capacity,
	// persisted the way an interrupted write-back would leave it.
	sys.Region.Store(victim.Off+hdrLen, 1<<40)
	sys.Region.WriteBack(victim.Off, hdrWords)
	sys.Region.Fence()

	second := sys.CrashAndRecover()
	if len(second) != 49 {
		t.Fatalf("recovery after tear found %d payloads, want 49", len(second))
	}
	for _, r := range second {
		if r.Key == victim.Key {
			t.Fatalf("torn payload for key %d survived recovery", victim.Key)
		}
		if len(r.Data) != 1 || r.Data[0] != r.Key+1000 {
			t.Fatalf("intact payload %d corrupted: %v", r.Key, r.Data)
		}
	}

	// A negative length (huge uint64) must also be skipped, not sliced.
	victim2 := second[0]
	sys.Region.Store(victim2.Off+hdrLen, ^uint64(0))
	sys.Region.WriteBack(victim2.Off, hdrWords)
	sys.Region.Fence()
	third := sys.CrashAndRecover()
	if len(third) != 48 {
		t.Fatalf("recovery after negative-length tear found %d payloads, want 48", len(third))
	}
}
