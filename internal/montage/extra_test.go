package montage

import (
	"testing"

	"medley/internal/core"
	"medley/internal/structures/fraserskip"
)

// TestAdvanceWithNoWork: epoch bookkeeping must be correct on an idle
// system.
func TestAdvanceWithNoWork(t *testing.T) {
	sys := NewSystem(Config{RegionWords: 1 << 14})
	if e := sys.Advance(); e != 1 {
		t.Fatalf("first advance persisted epoch %d, want 1", e)
	}
	if sys.Epoch() != 2 || sys.PersistedEpoch() != 1 {
		t.Fatalf("clock=%d persisted=%d", sys.Epoch(), sys.PersistedEpoch())
	}
	rec := sys.CrashAndRecover()
	if len(rec) != 0 {
		t.Fatalf("idle system recovered %d payloads", len(rec))
	}
	if sys.Epoch() != 2 || sys.PersistedEpoch() != 1 {
		t.Fatalf("post-crash clock=%d persisted=%d", sys.Epoch(), sys.PersistedEpoch())
	}
}

// TestCrashRecoverTwiceIdempotent: recovery itself must be crash-stable.
func TestCrashRecoverTwiceIdempotent(t *testing.T) {
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	h := sys.Wrap(mgr.Register())
	_ = RunOp(h, func() error { st.Put(h, 1, 100); st.Put(h, 2, 200); return nil })
	sys.Sync()
	rec1 := sys.CrashAndRecover()
	rec2 := sys.CrashAndRecover()
	if len(rec1) != 2 || len(rec2) != 2 {
		t.Fatalf("recoveries differ: %d then %d", len(rec1), len(rec2))
	}
	m1, m2 := map[uint64]uint64{}, map[uint64]uint64{}
	for _, r := range rec1 {
		m1[r.Key] = r.Data[0]
	}
	for _, r := range rec2 {
		m2[r.Key] = r.Data[0]
	}
	for k, v := range m1 {
		if m2[k] != v {
			t.Fatalf("recovery not idempotent at key %d: %d vs %d", k, v, m2[k])
		}
	}
}

// TestSkiplistIndexBackend exercises PStore over the skiplist index (the
// Figure 8 configuration) including removal and recovery.
func TestSkiplistIndexBackend(t *testing.T) {
	sys := NewSystem(Config{RegionWords: 1 << 18})
	mgr := core.NewTxManager()
	idx := fraserskip.New[Entry[uint64]](mgr)
	st := NewPStore[uint64](sys, idx, U64Codec())
	h := sys.Wrap(mgr.Register())
	for k := uint64(0); k < 64; k++ {
		key := k
		_ = RunOp(h, func() error { st.Put(h, key, key*3); return nil })
	}
	_ = RunOp(h, func() error { st.Remove(h, 10); st.Remove(h, 20); return nil })
	sys.Sync()
	rec := sys.CrashAndRecover()
	if len(rec) != 62 {
		t.Fatalf("recovered %d, want 62", len(rec))
	}
	mgr2 := core.NewTxManager()
	st2 := RebuildPStore(sys, fraserskip.New[Entry[uint64]](mgr2), U64Codec(), rec)
	h2 := sys.Wrap(mgr2.Register())
	if _, ok := st2.Get(h2, 10); ok {
		t.Fatal("removed key recovered")
	}
	if v, ok := st2.Get(h2, 33); !ok || v != 99 {
		t.Fatalf("st2[33] = %d,%v want 99", v, ok)
	}
}

// TestWrapTransientNeverPersists: the Figure 10b configuration writes
// payloads but persists nothing.
func TestWrapTransientNeverPersists(t *testing.T) {
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	h := sys.WrapTransient(mgr.Register())
	_ = RunOp(h, func() error { st.Put(h, 1, 100); return nil })
	if sys.Stats().PayloadsBorn != 1 {
		t.Fatal("payload not written")
	}
	sys.Sync() // an advance with persistence "off" flushes nothing of ours
	rec := sys.CrashAndRecover()
	if len(rec) != 0 {
		t.Fatalf("persistOff payloads survived a crash: %d", len(rec))
	}
}

// TestInsertFailureReleasesBlock: a losing Insert returns its staged block
// on both the commit and abort paths.
func TestInsertFailureReleasesBlock(t *testing.T) {
	sys, st, _ := newStore(t)
	mgr := core.NewTxManager()
	tx := mgr.Register()
	h := sys.Wrap(tx)
	_ = RunOp(h, func() error { st.Put(h, 1, 100); return nil })
	// Commit path.
	if err := tx.RunRetry(func() error {
		if st.Insert(h, 1, 999) {
			t.Fatal("duplicate insert succeeded")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Abort path.
	_ = tx.Run(func() error {
		st.Insert(h, 1, 999)
		tx.Abort()
		return nil
	})
	sys.Sync()
	rec := sys.CrashAndRecover()
	if len(rec) != 1 || rec[0].Data[0] != 100 {
		t.Fatalf("recovered %+v, want single payload 100", rec)
	}
}

// TestLargePayloadClassSelection: values spanning size classes round-trip.
func TestLargePayloadClassSelection(t *testing.T) {
	sys := NewSystem(Config{RegionWords: 1 << 18})
	mgr := core.NewTxManager()
	codec := Codec[[]uint64]{
		Enc: func(v []uint64) []uint64 { return v },
		Dec: func(w []uint64) []uint64 { return append([]uint64(nil), w...) },
	}
	idx := fraserskip.New[Entry[[]uint64]](mgr)
	st := NewPStore[[]uint64](sys, idx, codec)
	h := sys.Wrap(mgr.Register())
	sizes := []int{1, 4, 11, 27, 59, 200}
	for i, n := range sizes {
		data := make([]uint64, n)
		for j := range data {
			data[j] = uint64(i*1000 + j)
		}
		key, val := uint64(i), data
		_ = RunOp(h, func() error { st.Put(h, key, val); return nil })
	}
	sys.Sync()
	rec := sys.CrashAndRecover()
	if len(rec) != len(sizes) {
		t.Fatalf("recovered %d, want %d", len(rec), len(sizes))
	}
	for _, r := range rec {
		want := sizes[r.Key]
		if len(r.Data) != want {
			t.Fatalf("key %d recovered %d words, want %d", r.Key, len(r.Data), want)
		}
		for j, w := range r.Data {
			if w != uint64(int(r.Key)*1000+j) {
				t.Fatalf("key %d word %d corrupted", r.Key, j)
			}
		}
	}
}
