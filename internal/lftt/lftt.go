// Package lftt implements a Lock-Free Transactional Transform skiplist in
// the style of Zhang & Dechev (SPAA 2016), the strongest competing
// baseline in the paper's Figure 8.
//
// The costs the paper attributes to LFTT are reproduced faithfully:
//
//   - Static transactions: the full operation list must be known up front
//     (Execute takes a []Op), which is why LFTT cannot run TPC-C (Fig. 9).
//   - Per-critical-node publication: every operation — including reads —
//     CASes a pointer to its transaction descriptor onto the node it
//     touches, so readers are visible to writers and read-mostly workloads
//     still pay coherence traffic.
//   - Conflict resolution by whole-transaction re-execution: encountering
//     another transaction's active descriptor finalizes it (we use eager
//     abort rather than the original's forward helping, a simplification
//     LOFT [Elizarov et al., PPoPP 2019] motivates by showing LFTT's
//     repeated helping was incorrect; DESIGN.md records this divergence)
//     and the loser re-runs all of its operations.
//
// Nodes are never physically unlinked on logical removal: presence is a
// function of the node's last committed descriptor, so a remove merely
// publishes new info, and a later insert of the same key revives the node.
// This matches the original's node-reuse design.
package lftt

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
)

// Status of a transaction descriptor.
const (
	statusActive uint32 = iota
	statusCommitted
	statusAborted
)

// OpKind enumerates the static operation types.
type OpKind uint8

const (
	OpInsert OpKind = iota
	OpRemove
	OpGet
)

// Op is one operation of a static transaction.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  uint64
}

// Result is the outcome of one operation in a committed transaction.
type Result struct {
	OK  bool
	Val uint64
}

// desc is a transaction descriptor, published on every touched node.
type desc struct {
	status atomic.Uint32
}

// nodeInfo links a node to the descriptor that last touched it, together
// with both interpretations of the node's logical state: the post-state if
// that transaction commits and the pre-transaction state if it aborts (or
// is still active). Chained operations of one transaction on the same node
// update the commit interpretation while preserving the abort one, so an
// abort always reverts the whole transaction.
type nodeInfo struct {
	d             *desc
	commitPresent bool
	commitVal     uint64
	abortPresent  bool
	abortVal      uint64
}

// isPresent interprets the node's logical membership from its info.
func (inf *nodeInfo) isPresent() (bool, uint64) {
	if inf.d.status.Load() == statusCommitted {
		return inf.commitPresent, inf.commitVal
	}
	return inf.abortPresent, inf.abortVal
}

const maxLevel = 20

type node struct {
	key   uint64
	level int
	info  atomic.Pointer[nodeInfo]
	next  []atomic.Pointer[node]
}

// Skiplist is an LFTT transactional skiplist (a set/map keyed by uint64).
type Skiplist struct {
	head *node

	commits atomic.Uint64
	aborts  atomic.Uint64
}

// New creates an empty LFTT skiplist.
func New() *Skiplist {
	h := &node{level: maxLevel, next: make([]atomic.Pointer[node], maxLevel)}
	return &Skiplist{head: h}
}

func randomLevel() int {
	return bits.TrailingZeros64(rand.Uint64()|1<<(maxLevel-1)) + 1
}

// locate returns level-0 (pred, node-with-key-or-nil). Physical structure
// only; logical presence is interpreted through info.
func (s *Skiplist) locate(key uint64) (*node, *node, []*node, []*node) {
	var preds, succs [maxLevel]*node
	p := s.head
	for l := maxLevel - 1; l >= 0; l-- {
		c := p.next[l].Load()
		for c != nil && c.key < key {
			p = c
			c = p.next[l].Load()
		}
		preds[l] = p
		succs[l] = c
	}
	if c := succs[0]; c != nil && c.key == key {
		return p, c, preds[:], succs[:]
	}
	return p, nil, preds[:], succs[:]
}

// finalizeForeign resolves an encountered foreign descriptor: an active one
// is aborted (eager contention management); terminal ones stand.
func finalizeForeign(d *desc) {
	d.status.CompareAndSwap(statusActive, statusAborted)
}

// Execute runs the static transaction ops atomically. It returns the
// per-operation results and true on commit; on abort it re-executes
// internally until it commits (the transform's standard retry loop), so it
// always returns committed results.
func (s *Skiplist) Execute(ops []Op) []Result {
	for {
		if res, ok := s.attempt(ops); ok {
			s.commits.Add(1)
			return res
		}
		s.aborts.Add(1)
	}
}

// attempt runs one execution of the transaction.
func (s *Skiplist) attempt(ops []Op) ([]Result, bool) {
	d := &desc{}
	results := make([]Result, len(ops))
	for i, op := range ops {
		ok := s.doOp(d, i, op, &results[i])
		if !ok {
			// Conflict: give up this attempt (descriptor aborted so any
			// published infos of this attempt revert to wasPresent).
			d.status.CompareAndSwap(statusActive, statusAborted)
			return nil, false
		}
	}
	if d.status.CompareAndSwap(statusActive, statusCommitted) {
		return results, true
	}
	return nil, false
}

// doOp performs one operation on behalf of descriptor d. Returns false on
// a conflict that requires re-execution.
func (s *Skiplist) doOp(d *desc, idx int, op Op, res *Result) bool {
	for {
		_, n, preds, succs := s.locate(op.Key)
		if n == nil {
			// No physical node.
			switch op.Kind {
			case OpInsert:
				if s.insertNode(d, op, preds, succs) {
					res.OK = true
					res.Val = op.Val
					return true
				}
				continue // physical race; relocate
			case OpRemove, OpGet:
				// Publish the read of absence on the predecessor? The
				// original publishes only on the key's node; absence is
				// unprotected there as well. Record the result and move on.
				res.OK = false
				return true
			}
		}
		inf := n.info.Load()
		if inf.d != d && inf.d.status.Load() == statusActive {
			finalizeForeign(inf.d)
			continue
		}
		var base, revert struct {
			present bool
			val     uint64
		}
		if inf.d == d {
			// Earlier op of this very transaction touched the node: the
			// semantic pre-state of this op is that op's commit
			// interpretation, while the revert state stays pre-transaction.
			base.present, base.val = inf.commitPresent, inf.commitVal
			revert.present, revert.val = inf.abortPresent, inf.abortVal
		} else {
			p, v := inf.isPresent()
			base.present, base.val = p, v
			revert = base
		}
		ni := &nodeInfo{d: d, abortPresent: revert.present, abortVal: revert.val}
		switch op.Kind {
		case OpInsert:
			if base.present {
				res.OK = false
				ni.commitPresent, ni.commitVal = base.present, base.val
			} else {
				res.OK = true
				res.Val = op.Val
				ni.commitPresent, ni.commitVal = true, op.Val
			}
		case OpRemove:
			res.OK = base.present
			res.Val = base.val
			ni.commitPresent, ni.commitVal = false, 0
		case OpGet:
			res.OK = base.present
			res.Val = base.val
			ni.commitPresent, ni.commitVal = base.present, base.val
		}
		if n.info.CompareAndSwap(inf, ni) {
			return true
		}
		// Someone published over us; reinterpret.
	}
}

// insertNode links a fresh node carrying d's insert info.
func (s *Skiplist) insertNode(d *desc, op Op, preds, succs []*node) bool {
	lvl := randomLevel()
	n := &node{key: op.Key, level: lvl, next: make([]atomic.Pointer[node], lvl)}
	n.info.Store(&nodeInfo{d: d, commitPresent: true, commitVal: op.Val})
	n.next[0].Store(succs[0])
	if !preds[0].next[0].CompareAndSwap(succs[0], n) {
		return false
	}
	// Index levels: best effort.
	for l := 1; l < lvl; l++ {
		for {
			if preds[l] == nil {
				break
			}
			n.next[l].Store(succs[l])
			if preds[l].next[l].CompareAndSwap(succs[l], n) {
				break
			}
			// Relocate this level only.
			p := s.head
			for ll := maxLevel - 1; ll >= l; ll-- {
				c := p.next[ll].Load()
				for c != nil && c.key < op.Key {
					p = c
					c = p.next[ll].Load()
				}
				if ll == l {
					preds[l], succs[l] = p, c
				}
			}
			if succs[l] == n {
				break
			}
		}
	}
	return true
}

// Contains runs a single-op read transaction (visible, like all LFTT
// reads).
func (s *Skiplist) Contains(key uint64) (uint64, bool) {
	res := s.Execute([]Op{{Kind: OpGet, Key: key}})
	return res[0].Val, res[0].OK
}

// Insert runs a single-op insert transaction.
func (s *Skiplist) Insert(key, val uint64) bool {
	return s.Execute([]Op{{Kind: OpInsert, Key: key, Val: val}})[0].OK
}

// Remove runs a single-op remove transaction.
func (s *Skiplist) Remove(key uint64) (uint64, bool) {
	res := s.Execute([]Op{{Kind: OpRemove, Key: key}})
	return res[0].Val, res[0].OK
}

// Len counts logically present keys; not linearizable, for tests.
func (s *Skiplist) Len() int {
	n := 0
	for c := s.head.next[0].Load(); c != nil; c = c.next[0].Load() {
		if inf := c.info.Load(); inf != nil {
			if ok, _ := inf.isPresent(); ok {
				n++
			}
		}
	}
	return n
}

// Range iterates logically present keys in order; for tests.
func (s *Skiplist) Range(fn func(key, val uint64) bool) {
	for c := s.head.next[0].Load(); c != nil; c = c.next[0].Load() {
		if inf := c.info.Load(); inf != nil {
			if ok, v := inf.isPresent(); ok {
				if !fn(c.key, v) {
					return
				}
			}
		}
	}
}

// Stats reports commit/abort counts.
func (s *Skiplist) Stats() (commits, aborts uint64) {
	return s.commits.Load(), s.aborts.Load()
}
