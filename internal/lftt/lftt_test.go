package lftt

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSingleOpSemantics(t *testing.T) {
	s := New()
	if _, ok := s.Contains(5); ok {
		t.Fatal("empty contains")
	}
	if !s.Insert(5, 50) {
		t.Fatal("insert failed")
	}
	if s.Insert(5, 51) {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := s.Contains(5); !ok || v != 50 {
		t.Fatalf("contains = %d,%v", v, ok)
	}
	if v, ok := s.Remove(5); !ok || v != 50 {
		t.Fatalf("remove = %d,%v", v, ok)
	}
	if _, ok := s.Remove(5); ok {
		t.Fatal("double remove succeeded")
	}
	// Node reuse: reinsert same key.
	if !s.Insert(5, 99) {
		t.Fatal("reinsert failed")
	}
	if v, ok := s.Contains(5); !ok || v != 99 {
		t.Fatalf("reinserted contains = %d,%v", v, ok)
	}
}

func TestStaticTxAtomicVisibility(t *testing.T) {
	s := New()
	res := s.Execute([]Op{
		{Kind: OpInsert, Key: 1, Val: 10},
		{Kind: OpInsert, Key: 2, Val: 20},
		{Kind: OpInsert, Key: 3, Val: 30},
	})
	for i, r := range res {
		if !r.OK {
			t.Fatalf("op %d failed", i)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestTxChainedOpsOnSameKey(t *testing.T) {
	s := New()
	res := s.Execute([]Op{
		{Kind: OpInsert, Key: 7, Val: 70},
		{Kind: OpGet, Key: 7},
		{Kind: OpRemove, Key: 7},
		{Kind: OpGet, Key: 7},
	})
	if !res[0].OK || !res[1].OK || res[1].Val != 70 || !res[2].OK || res[3].OK {
		t.Fatalf("chained results wrong: %+v", res)
	}
	if _, ok := s.Contains(7); ok {
		t.Fatal("key present after insert+remove tx")
	}
	// And insert-remove-insert leaves it present.
	res = s.Execute([]Op{
		{Kind: OpInsert, Key: 8, Val: 1},
		{Kind: OpRemove, Key: 8},
		{Kind: OpInsert, Key: 8, Val: 2},
	})
	if v, ok := s.Contains(8); !ok || v != 2 {
		t.Fatalf("key 8 = %d,%v want 2,true", v, ok)
	}
}

func TestQuickVsReference(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint16
	}
	f := func(ops []op) bool {
		s := New()
		ref := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o.Key % 40)
			switch o.Kind % 3 {
			case 0:
				ok := s.Insert(k, uint64(o.Val))
				if _, had := ref[k]; ok == had {
					return false
				}
				if ok {
					ref[k] = uint64(o.Val)
				}
			case 1:
				v, ok := s.Remove(k)
				rv, had := ref[k]
				if ok != had || (ok && v != rv) {
					return false
				}
				delete(ref, k)
			default:
				v, ok := s.Contains(k)
				rv, had := ref[k]
				if ok != had || (ok && v != rv) {
					return false
				}
			}
		}
		return s.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointTxs(t *testing.T) {
	s := New()
	const goroutines = 4
	const keysPer = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for k := base; k < base+keysPer; k += 2 {
				s.Execute([]Op{
					{Kind: OpInsert, Key: k, Val: k},
					{Kind: OpInsert, Key: k + 1, Val: k + 1},
				})
			}
			for k := base; k < base+keysPer; k += 2 {
				s.Execute([]Op{{Kind: OpRemove, Key: k}})
			}
		}(uint64(g) * 1000)
	}
	wg.Wait()
	want := goroutines * keysPer / 2
	if s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
	s.Range(func(k, v uint64) bool {
		if k%2 != 1 || v != k {
			t.Errorf("unexpected survivor %d=%d", k, v)
		}
		return true
	})
}

func TestConcurrentConflictingTxsConserve(t *testing.T) {
	// Pairs of keys updated atomically under contention: interpret-time
	// atomicity means a reader tx sees both or neither update.
	s := New()
	s.Execute([]Op{{Kind: OpInsert, Key: 1, Val: 0}, {Kind: OpInsert, Key: 2, Val: 0}})
	var wg sync.WaitGroup
	iters := 500
	if testing.Short() {
		iters = 100
	}
	var torn int64
	var mu sync.Mutex
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				if rng.Intn(2) == 0 {
					// Writer: remove both, reinsert both with same tag.
					tag := uint64(rng.Intn(1000)) + 1
					s.Execute([]Op{
						{Kind: OpRemove, Key: 1},
						{Kind: OpRemove, Key: 2},
						{Kind: OpInsert, Key: 1, Val: tag},
						{Kind: OpInsert, Key: 2, Val: tag},
					})
				} else {
					res := s.Execute([]Op{{Kind: OpGet, Key: 1}, {Kind: OpGet, Key: 2}})
					if res[0].OK != res[1].OK || (res[0].OK && res[0].Val != res[1].Val) {
						mu.Lock()
						torn++
						mu.Unlock()
					}
				}
			}
		}(int64(g) + 7)
	}
	wg.Wait()
	if torn != 0 {
		t.Fatalf("%d torn reads", torn)
	}
	commits, aborts := s.Stats()
	if commits == 0 {
		t.Fatalf("no commits recorded (aborts=%d)", aborts)
	}
}

func TestVisibleReadersConflict(t *testing.T) {
	// Readers publish on nodes, so a read transaction can abort a writer's
	// active descriptor — the visible-reader cost the paper measures.
	s := New()
	s.Insert(1, 1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Contains(1)
				}
			}
		}()
	}
	for i := 0; i < 300; i++ {
		s.Execute([]Op{{Kind: OpRemove, Key: 1}, {Kind: OpInsert, Key: 1, Val: uint64(i)}})
	}
	close(stop)
	wg.Wait()
	_, aborts := s.Stats()
	if aborts == 0 {
		t.Log("note: no aborts observed; contention too low to exhibit visible-reader conflicts")
	}
	if v, ok := s.Contains(1); !ok || v != 299 {
		t.Fatalf("final state %d,%v want 299,true", v, ok)
	}
}
