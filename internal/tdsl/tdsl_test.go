package tdsl

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSequentialBasics(t *testing.T) {
	sl := New()
	err := RunRetry(func(tx *Tx) error {
		if _, ok := tx.Get(sl, 5); ok {
			t.Fatal("empty Get found")
		}
		if _, had := tx.Put(sl, 5, 50); had {
			t.Fatal("fresh Put replaced")
		}
		if v, ok := tx.Get(sl, 5); !ok || v != 50 {
			t.Fatal("own write invisible")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = RunRetry(func(tx *Tx) error {
		if v, ok := tx.Get(sl, 5); !ok || v != 50 {
			t.Fatalf("committed put invisible: %d,%v", v, ok)
		}
		if !tx.Insert(sl, 3, 30) || tx.Insert(sl, 5, 1) {
			t.Fatal("Insert semantics broken")
		}
		if v, ok := tx.Remove(sl, 5); !ok || v != 50 {
			t.Fatal("Remove broken")
		}
		if _, ok := tx.Get(sl, 5); ok {
			t.Fatal("removed key visible in same tx")
		}
		return nil
	})
	if sl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", sl.Len())
	}
}

func TestQuickVsReference(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint16
	}
	f := func(ops []op) bool {
		sl := New()
		ref := map[uint64]uint64{}
		good := true
		for _, o := range ops {
			k := uint64(o.Key % 40)
			_ = RunRetry(func(tx *Tx) error {
				switch o.Kind % 4 {
				case 0:
					tx.Put(sl, k, uint64(o.Val))
				case 1:
					tx.Remove(sl, k)
				case 2:
					ins := tx.Insert(sl, k, uint64(o.Val))
					if _, had := ref[k]; ins == had {
						good = false
					}
				default:
					v, ok := tx.Get(sl, k)
					rv, had := ref[k]
					if ok != had || (ok && v != rv) {
						good = false
					}
				}
				return nil
			})
			switch o.Kind % 4 {
			case 0:
				ref[k] = uint64(o.Val)
			case 1:
				delete(ref, k)
			case 2:
				if _, had := ref[k]; !had {
					ref[k] = uint64(o.Val)
				}
			}
		}
		return good && sl.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossStructureTransaction(t *testing.T) {
	s1 := New()
	s2 := New()
	_ = RunRetry(func(tx *Tx) error { tx.Put(s1, 1, 100); return nil })
	err := RunRetry(func(tx *Tx) error {
		v, ok := tx.Get(s1, 1)
		if !ok || v < 40 {
			return errors.New("insufficient")
		}
		tx.Put(s1, 1, v-40)
		v2, _ := tx.Get(s2, 9)
		tx.Put(s2, 9, v2+40)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = RunRetry(func(tx *Tx) error {
		if v, _ := tx.Get(s1, 1); v != 60 {
			t.Fatalf("s1[1] = %d", v)
		}
		if v, _ := tx.Get(s2, 9); v != 40 {
			t.Fatalf("s2[9] = %d", v)
		}
		return nil
	})
}

func TestReadValidationAbortsStale(t *testing.T) {
	sl := New()
	_ = RunRetry(func(tx *Tx) error { tx.Put(sl, 5, 50); return nil })
	tx := NewTx()
	if _, ok := tx.Get(sl, 5); !ok {
		t.Fatal("Get missing")
	}
	// Interfering committed write.
	_ = RunRetry(func(tx2 *Tx) error { tx2.Put(sl, 5, 51); return nil })
	tx.Put(sl, 7, 70)
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("stale read committed: %v", err)
	}
	_ = RunRetry(func(tx3 *Tx) error {
		if _, ok := tx3.Get(sl, 7); ok {
			t.Fatal("aborted write leaked")
		}
		return nil
	})
}

func TestAbsenceWitness(t *testing.T) {
	sl := New()
	tx := NewTx()
	if _, ok := tx.Get(sl, 5); ok {
		t.Fatal("phantom")
	}
	_ = RunRetry(func(tx2 *Tx) error { tx2.Put(sl, 5, 1); return nil })
	tx.Put(sl, 99, 1)
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("phantom insert undetected: %v", err)
	}
}

func TestConcurrentConservation(t *testing.T) {
	sl := New()
	const nAccounts = 16
	const initial = 400
	_ = RunRetry(func(tx *Tx) error {
		for k := uint64(0); k < nAccounts; k++ {
			tx.Put(sl, k, initial)
		}
		return nil
	})
	var wg sync.WaitGroup
	iters := 600
	if testing.Short() {
		iters = 120
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				a := uint64(rng.Intn(nAccounts))
				b := uint64(rng.Intn(nAccounts))
				if a == b {
					continue
				}
				amt := uint64(rng.Intn(7) + 1)
				_ = RunRetry(func(tx *Tx) error {
					va, ok := tx.Get(sl, a)
					if !ok || va < amt {
						return nil // no-op commit
					}
					vb, _ := tx.Get(sl, b)
					tx.Put(sl, a, va-amt)
					tx.Put(sl, b, vb+amt)
					return nil
				})
			}
		}(int64(g) + 13)
	}
	wg.Wait()
	var total uint64
	_ = RunRetry(func(tx *Tx) error {
		total = 0
		for k := uint64(0); k < nAccounts; k++ {
			v, _ := tx.Get(sl, k)
			total += v
		}
		return nil
	})
	if total != nAccounts*initial {
		t.Fatalf("total = %d, want %d", total, nAccounts*initial)
	}
}

func TestConcurrentInsertRemoveChurn(t *testing.T) {
	sl := New()
	var wg sync.WaitGroup
	iters := 1500
	if testing.Short() {
		iters = 250
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := uint64(rng.Intn(64))
				if rng.Intn(2) == 0 {
					_ = RunRetry(func(tx *Tx) error { tx.Put(sl, k, k); return nil })
				} else {
					_ = RunRetry(func(tx *Tx) error { tx.Remove(sl, k); return nil })
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	var prev uint64
	first := true
	sl.Range(func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("order violated")
		}
		if v != k {
			t.Fatalf("value mismatch at %d", k)
		}
		prev, first = k, false
		return true
	})
}

func TestNoDeadlockOnCrossingTransfers(t *testing.T) {
	// Two structures, opposite lock orders at user level; the sorted
	// try-lock commit must not deadlock.
	s1, s2 := New(), New()
	_ = RunRetry(func(tx *Tx) error { tx.Put(s1, 1, 1000); tx.Put(s2, 1, 1000); return nil })
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(flip bool) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = RunRetry(func(tx *Tx) error {
					a, b := s1, s2
					if flip {
						a, b = s2, s1
					}
					va, _ := tx.Get(a, 1)
					vb, _ := tx.Get(b, 1)
					tx.Put(a, 1, va+1)
					tx.Put(b, 1, vb-1)
					return nil
				})
			}
		}(g == 1)
	}
	wg.Wait()
	var v1, v2 uint64
	_ = RunRetry(func(tx *Tx) error {
		v1, _ = tx.Get(s1, 1)
		v2, _ = tx.Get(s2, 1)
		return nil
	})
	if v1+v2 != 2000 {
		t.Fatalf("sum = %d, want 2000", v1+v2)
	}
}
