// Package tdsl implements a transactional skiplist in the style of the
// transactional data structure library of Spiegelman, Golan-Gueta and
// Keidar (PLDI 2016), the blocking baseline of the paper's Figures 8 and 9.
//
// The concurrency-control shape matches the original:
//
//   - Reads are tracked only on semantically critical nodes — the node
//     proving presence, or the level-0 predecessor proving absence — so
//     read sets stay tiny compared to a word-based STM.
//   - Writes are buffered as a per-key overlay during the transaction.
//   - Commit is blocking two-phase: re-locate each written key, try-lock
//     its level-0 predecessor and (if present) the node itself in one
//     atomic sweep, validate the read set against per-node versions, apply
//     (link / mark / write value, bumping versions), and unlock.
//
// Index levels above 0 are maintained with best-effort CAS as hints, the
// same discipline as the nonblocking skiplists in this repository; level 0
// is authoritative and modified only under locks.
package tdsl

import (
	"errors"
	"math/bits"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrAborted is returned by Commit when validation or locking failed; the
// caller retries the whole transaction.
var ErrAborted = errors.New("tdsl: transaction aborted")

const maxLevel = 20

type node struct {
	key     uint64
	val     atomic.Uint64 // written under lock; read lock-free by Get
	level   int
	lock    sync.Mutex
	version atomic.Uint64 // bumped on every semantic change at this node
	marked  atomic.Bool   // logically deleted
	next    []atomic.Pointer[node]
}

// Skiplist is one TDSL skiplist; transactions (Tx) may span several.
type Skiplist struct {
	head *node
	id   uint64 // global lock-ordering rank across skiplists
}

var nextSkiplistID atomic.Uint64

// New creates an empty TDSL skiplist.
func New() *Skiplist {
	h := &node{level: maxLevel, next: make([]atomic.Pointer[node], maxLevel)}
	return &Skiplist{head: h, id: nextSkiplistID.Add(1)}
}

func randomLevel() int {
	return bits.TrailingZeros64(rand.Uint64()|1<<(maxLevel-1)) + 1
}

// locate returns the level-0 predecessor and the node holding key (nil if
// absent), skipping marked nodes.
func (s *Skiplist) locate(key uint64) (pred, curr *node) {
	p := s.head
	for l := maxLevel - 1; l >= 1; l-- {
		for {
			c := p.next[l].Load()
			if c == nil || c.key >= key {
				break
			}
			if c.marked.Load() {
				// Index hint repair: best-effort CAS past dead towers.
				p.next[l].CompareAndSwap(c, c.next[l].Load())
				continue
			}
			p = c
		}
	}
	// Level 0 is authoritative: unlink marked nodes en passant (Michael-
	// style helping; safe because inserts take the predecessor's lock and
	// re-validate it unmarked, so a CAS race can only drop dead nodes).
	c := p.next[0].Load()
	for c != nil {
		if c.marked.Load() {
			succ := c.next[0].Load()
			if p.next[0].CompareAndSwap(c, succ) {
				c = succ
			} else {
				c = p.next[0].Load()
			}
			continue
		}
		if c.key >= key {
			break
		}
		p = c
		c = c.next[0].Load()
	}
	if c != nil && c.key == key {
		return p, c
	}
	return p, nil
}

// readEntry is a critical-node version witness.
type readEntry struct {
	n   *node
	ver uint64
}

// overlay is the buffered per-key outcome of a transaction.
type overlay struct {
	present bool
	val     uint64
}

type wkey struct {
	sl  *Skiplist
	key uint64
}

// Tx is a TDSL transaction spanning any number of skiplists. Not safe for
// concurrent use by multiple goroutines.
type Tx struct {
	reads  []readEntry
	writes map[wkey]overlay
}

// NewTx creates an empty transaction.
func NewTx() *Tx {
	return &Tx{writes: make(map[wkey]overlay)}
}

// Reset clears the transaction for reuse.
func (t *Tx) Reset() {
	t.reads = t.reads[:0]
	clear(t.writes)
}

// read records the current state of key with its semantic witness.
func (t *Tx) read(sl *Skiplist, key uint64) (uint64, bool) {
	if ov, ok := t.writes[wkey{sl, key}]; ok {
		return ov.val, ov.present
	}
	pred, curr := sl.locate(key)
	if curr != nil {
		v := curr.version.Load()
		val := curr.val.Load()
		// The version witness makes this read consistent-or-aborted at
		// commit validation.
		t.reads = append(t.reads, readEntry{curr, v})
		return val, true
	}
	t.reads = append(t.reads, readEntry{pred, pred.version.Load()})
	return 0, false
}

// Get returns the value bound to key in sl.
func (t *Tx) Get(sl *Skiplist, key uint64) (uint64, bool) { return t.read(sl, key) }

// Contains reports whether key is present in sl.
func (t *Tx) Contains(sl *Skiplist, key uint64) bool {
	_, ok := t.read(sl, key)
	return ok
}

// Put binds key to val in sl, returning the prior value if any.
func (t *Tx) Put(sl *Skiplist, key uint64, val uint64) (uint64, bool) {
	old, had := t.read(sl, key)
	t.writes[wkey{sl, key}] = overlay{present: true, val: val}
	return old, had
}

// Insert adds key only if absent.
func (t *Tx) Insert(sl *Skiplist, key uint64, val uint64) bool {
	if _, had := t.read(sl, key); had {
		return false
	}
	t.writes[wkey{sl, key}] = overlay{present: true, val: val}
	return true
}

// Remove deletes key, returning the removed value.
func (t *Tx) Remove(sl *Skiplist, key uint64) (uint64, bool) {
	old, had := t.read(sl, key)
	if had {
		t.writes[wkey{sl, key}] = overlay{present: false}
	}
	return old, had
}

// Commit applies the transaction atomically: lock, validate, apply,
// unlock. On ErrAborted the transaction had no effect and may be retried.
func (t *Tx) Commit() error {
	if len(t.writes) == 0 {
		// Read-only: validate versions.
		for _, re := range t.reads {
			if re.n.version.Load() != re.ver {
				t.Reset()
				return ErrAborted
			}
		}
		t.Reset()
		return nil
	}

	keys := make([]wkey, 0, len(t.writes))
	for k := range t.writes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sl != keys[j].sl {
			return keys[i].sl.id < keys[j].sl.id
		}
		return keys[i].key < keys[j].key
	})

	type target struct {
		k          wkey
		pred, curr *node
	}
	locked := map[*node]bool{}
	var order []*node
	unlockAll := func() {
		for i := len(order) - 1; i >= 0; i-- {
			order[i].lock.Unlock()
		}
		order = order[:0]
		clear(locked)
	}
	tryLock := func(n *node) bool {
		if locked[n] {
			return true
		}
		if !n.lock.TryLock() {
			return false
		}
		locked[n] = true
		order = append(order, n)
		return true
	}

	var targets []target
	for attempt := 0; ; attempt++ {
		targets = targets[:0]
		ok := true
		for _, k := range keys {
			pred, curr := k.sl.locate(k.key)
			if !tryLock(pred) || (curr != nil && !tryLock(curr)) {
				ok = false
				break
			}
			// Re-validate adjacency under locks.
			if !adjacent(pred, curr, k.key, k.sl.head) {
				ok = false
				break
			}
			targets = append(targets, target{k: k, pred: pred, curr: curr})
		}
		if ok {
			break
		}
		unlockAll()
		if attempt > 8 {
			time.Sleep(time.Duration(rand.IntN(20)+1) * time.Microsecond)
		}
		if attempt > 64 {
			t.Reset()
			return ErrAborted
		}
	}

	// Validate the read set while holding all write locks.
	for _, re := range t.reads {
		if re.n.version.Load() != re.ver {
			unlockAll()
			t.Reset()
			return ErrAborted
		}
	}

	// Apply.
	for _, tg := range targets {
		ov := t.writes[tg.k]
		switch {
		case ov.present && tg.curr != nil: // value update
			tg.curr.val.Store(ov.val)
			tg.curr.version.Add(1)
		case ov.present && tg.curr == nil: // insert
			lvl := randomLevel()
			n := &node{key: tg.k.key, level: lvl,
				next: make([]atomic.Pointer[node], lvl)}
			n.val.Store(ov.val)
			// Re-walk forward from the locked predecessor: earlier applies
			// of this very transaction may have inserted into the same gap.
			p := tg.pred
			for {
				c := p.next[0].Load()
				for c != nil && !c.marked.Load() && c.key < n.key {
					p = c
					c = c.next[0].Load()
				}
				n.next[0].Store(c)
				if p.next[0].CompareAndSwap(c, n) {
					break
				}
			}
			tg.pred.version.Add(1)
			buildTower(tg.k.sl, n)
		case !ov.present && tg.curr != nil: // remove
			// Mark only; physical unlink is lock-free helping in locate.
			tg.curr.marked.Store(true)
			tg.curr.version.Add(1)
			tg.pred.version.Add(1)
		}
	}
	unlockAll()
	t.Reset()
	return nil
}

// adjacent verifies, under locks, that pred is live and that curr (when
// present) or the gap (when absent) still governs key at level 0.
func adjacent(pred, curr *node, key uint64, head *node) bool {
	if pred != head && (pred.marked.Load() || pred.key >= key) {
		return false
	}
	c := pred.next[0].Load()
	for c != nil && c.marked.Load() {
		c = c.next[0].Load()
	}
	if curr == nil {
		return c == nil || c.key > key
	}
	return c == curr && !curr.marked.Load()
}

// buildTower links n into index levels with best-effort CAS.
func buildTower(sl *Skiplist, n *node) {
	for l := 1; l < n.level; l++ {
		for attempt := 0; attempt < 2; attempt++ {
			if n.marked.Load() {
				return
			}
			pred, succ := indexPosition(sl, l, n)
			if pred == nil {
				break
			}
			n.next[l].Store(succ)
			if pred.next[l].CompareAndSwap(succ, n) {
				break
			}
		}
	}
}

func indexPosition(sl *Skiplist, l int, self *node) (*node, *node) {
	p := sl.head
	for lvl := maxLevel - 1; lvl >= l; lvl-- {
		for {
			c := p.next[lvl].Load()
			if c == nil || c == self || c.key >= self.key {
				break
			}
			p = c
		}
	}
	c := p.next[l].Load()
	if c == self {
		return nil, nil
	}
	if c != nil && c.key == self.key {
		// Same-key refusal: see fraserskip.indexPosition — racing tower
		// builds across a remove/insert chain must never create a
		// same-key index link, which could form a cycle.
		return nil, nil
	}
	return p, c
}

// RunRetry executes body in a fresh transaction, committing with retry on
// ErrAborted. A non-nil error from body aborts without retry.
func RunRetry(body func(tx *Tx) error) error {
	tx := NewTx()
	for {
		tx.Reset()
		if err := body(tx); err != nil {
			tx.Reset()
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
	}
}

// Len counts live nodes; not linearizable, for tests.
func (s *Skiplist) Len() int {
	n := 0
	for c := s.head.next[0].Load(); c != nil; c = c.next[0].Load() {
		if !c.marked.Load() {
			n++
		}
	}
	return n
}

// Range iterates a non-linearizable snapshot in key order; for tests.
func (s *Skiplist) Range(fn func(key uint64, val uint64) bool) {
	for c := s.head.next[0].Load(); c != nil; c = c.next[0].Load() {
		if !c.marked.Load() {
			if !fn(c.key, c.val.Load()) {
				return
			}
		}
	}
}
