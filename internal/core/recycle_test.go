package core

import (
	"math/rand"
	"sync"
	"testing"

	"medley/internal/ebr"
)

// pooledTx registers a Tx with pooling active: manager pooling enabled and
// an EBR handle attached. Returns the handle so tests can bracket
// transactions in critical sections, as the harness workers do.
func pooledTx(t *testing.T, mgr *TxManager, dom *ebr.Manager) (*Tx, *ebr.Handle) {
	t.Helper()
	tx := mgr.Register()
	h := dom.Register()
	tx.SetSMR(h)
	if !tx.pooled {
		t.Fatal("pooling did not activate (SetSMR with an *ebr.Handle on a pooling manager)")
	}
	return tx, h
}

// TestGenerationMismatchRejectsWitness is the fault-injection half of the
// recycling contract: a witness whose cell has been recycled (generation
// bumped) must fail validation even if the cell is reinstalled, bitwise
// identical, in the very same slot — the scenario that pointer identity
// alone would wrongly validate.
func TestGenerationMismatchRejectsWitness(t *testing.T) {
	mgr := NewTxManager()
	mgr.EnablePooling()
	dom := ebr.New(1)
	tx, h := pooledTx(t, mgr, dom)

	o := NewCASObj(100)
	h.Enter()
	defer h.Exit()

	tx.Begin()
	v, w := o.NbtcLoad(tx)
	if v != 100 {
		t.Fatalf("loaded %d", v)
	}
	tx.AddToReadSet(w)
	if !tx.ValidateReads() {
		t.Fatal("fresh witness must validate")
	}

	// Inject the fault: pretend the witnessed cell went through a
	// retire→grace→recycle cycle and was reinstalled in the same slot with
	// the same value. Pointer identity and value are unchanged; only the
	// generation differs.
	c := o.state.Load()
	c.gen.Add(1)
	if tx.ValidateReads() {
		t.Fatal("validator accepted a recycled cell: stale witness forged")
	}
	tx.AbortNow()

	// And the end-to-end commit path must abort for the same reason.
	tx.Begin()
	_, w = o.NbtcLoad(tx)
	tx.AddToReadSet(w)
	o.state.Load().gen.Add(1)
	if err := tx.End(); err == nil {
		t.Fatal("commit succeeded over a recycled witness")
	}
}

// TestRecycledCellReuseBumpsGeneration checks the real cycle: a displaced
// cell that travels retire→limbo→arena→reuse comes back with a higher
// generation, so any witness captured in its previous life is dead.
func TestRecycledCellReuseBumpsGeneration(t *testing.T) {
	mgr := NewTxManager()
	mgr.EnablePooling()
	dom := ebr.New(1) // advance attempt on every retire: shortest grace
	tx, h := pooledTx(t, mgr, dom)

	o := NewCASObj(uint64(0))
	// Capture the initial cell and a witness to it.
	c0 := o.state.Load()
	gen0 := c0.gen.Load()
	w := c0.witness()

	// Churn transactions until c0 reappears from the arena (its grace
	// period takes a couple of epoch advances).
	reused := false
	for i := uint64(1); i < 200; i++ {
		h.Enter()
		tx.Begin()
		if !o.NbtcCAS(tx, i-1, i, true, true) {
			t.Fatalf("iteration %d: CAS failed single-threaded", i)
		}
		if err := tx.End(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		h.Exit()
		if o.state.Load() == c0 {
			reused = true
			break
		}
	}
	if !reused {
		t.Skip("cell never recycled back into this slot (pool ordering changed); covered by fault injection above")
	}
	if g := c0.gen.Load(); g == gen0 {
		t.Fatal("recycled cell reinstalled with unchanged generation")
	}
	if w.valid(tx.desc, tx.serial) {
		t.Fatal("witness from the cell's previous life still validates")
	}
}

// TestRecycleStressConservation hammers cell recycling with concurrent
// transfers over a small, hot slot array: every displaced cell cycles
// through limbo and back into an arena within a few transactions, so a
// single recycle-then-validate hole (a stale witness validating, a cell
// reused before its grace period) shows up as a conservation violation or
// as a data race under -race.
func TestRecycleStressConservation(t *testing.T) {
	const nAccounts = 16
	const perAccount = 1000
	const goroutines = 8
	iters := 4000
	if testing.Short() {
		iters = 800
	}

	mgr := NewTxManager()
	mgr.EnablePooling()
	dom := ebr.New(4)
	accounts := make([]*CASObj[int], nAccounts)
	for i := range accounts {
		accounts[i] = NewCASObj[int](perAccount)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			h := dom.Register()
			tx.SetSMR(h)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				from := rng.Intn(nAccounts)
				to := rng.Intn(nAccounts)
				if from == to {
					continue
				}
				amt := rng.Intn(10) + 1
				h.Enter()
				_ = tx.RunRetry(func() error {
					tx.OpStart()
					vf, wf := accounts[from].NbtcLoad(tx)
					tx.AddToReadSet(wf)
					if vf < amt {
						return errInsufficient
					}
					tx.OpStart()
					vt, wt := accounts[to].NbtcLoad(tx)
					tx.AddToReadSet(wt)
					tx.OpStart()
					if !accounts[from].NbtcCAS(tx, vf, vf-amt, true, true) {
						tx.Abort()
					}
					tx.OpStart()
					if !accounts[to].NbtcCAS(tx, vt, vt+amt, true, true) {
						tx.Abort()
					}
					return nil
				})
				h.Exit()
			}
		}(int64(g)*7919 + 17)
	}
	wg.Wait()

	sum := 0
	for _, a := range accounts {
		sum += a.Load()
	}
	if sum != nAccounts*perAccount {
		t.Fatalf("conservation violated under recycling: sum %d, want %d",
			sum, nAccounts*perAccount)
	}
	st := mgr.Stats()
	if st.PoolGets == 0 || st.PoolHits == 0 || st.PoolRetires == 0 {
		t.Fatalf("recycling never engaged: %+v", st)
	}
	t.Logf("pool: gets=%d hits=%d (%.1f%%) retires=%d",
		st.PoolGets, st.PoolHits, 100*float64(st.PoolHits)/float64(st.PoolGets), st.PoolRetires)
}

// TestPoolingOffUnchanged pins the default: without EnablePooling (or
// without an SMR handle) no pooling state activates and counters stay
// zero, so existing users see the historical allocation behavior.
func TestPoolingOffUnchanged(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	h := ebr.New(1).Register()
	tx.SetSMR(h) // handle without EnablePooling: no pooling
	if tx.pooled {
		t.Fatal("pooling active without EnablePooling")
	}
	o := NewCASObj(1)
	tx.Begin()
	if !o.NbtcCAS(tx, 1, 2, true, true) {
		t.Fatal("CAS failed")
	}
	if err := tx.End(); err != nil {
		t.Fatal(err)
	}
	if st := mgr.Stats(); st.PoolGets != 0 || st.PoolRetires != 0 {
		t.Fatalf("pool counters moved without pooling: %+v", st)
	}
}

// TestDeferCASRunsOnCommitOnly pins DeferCAS semantics against the Defer
// closure idiom it replaces: deferred CASes run after commit, are dropped
// on abort, and execute immediately outside a transaction.
func TestDeferCASRunsOnCommitOnly(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj(10)

	tx.Begin()
	DeferCAS(tx, o, 10, 11)
	if o.Load() != 10 {
		t.Fatal("deferred CAS ran before commit")
	}
	if err := tx.End(); err != nil {
		t.Fatal(err)
	}
	if o.Load() != 11 {
		t.Fatal("deferred CAS did not run on commit")
	}

	tx.Begin()
	DeferCAS(tx, o, 11, 12)
	tx.AbortNow()
	if o.Load() != 11 {
		t.Fatal("deferred CAS ran on abort")
	}

	DeferCAS(tx, o, 11, 12) // outside a transaction: immediate
	if o.Load() != 12 {
		t.Fatal("bare DeferCAS not immediate")
	}
}
