package core

import (
	"errors"
	"testing"
)

// recordTicketer is a CommitTicketer that remembers every draw and cancel.
type recordTicketer struct {
	next      uint64
	cancelled []uint64
}

func (r *recordTicketer) DrawTicket() uint64 {
	r.next++
	return r.next
}

func (r *recordTicketer) CancelTicket(t uint64) { r.cancelled = append(r.cancelled, t) }

func TestTicketCommittedWrite(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	rt := &recordTicketer{}
	tx.SetCommitTicketer(rt)
	o := NewCASObj[int](1)
	if err := tx.Run(func() error {
		if !o.NbtcCAS(tx, 1, 2, true, true) {
			t.Fatal("CAS failed")
		}
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tk, ok := tx.CommittedTicket()
	if !ok || tk != 1 {
		t.Fatalf("CommittedTicket = %d, %v; want 1, true", tk, ok)
	}
	if len(rt.cancelled) != 0 {
		t.Fatalf("cancelled = %v for a committed tx", rt.cancelled)
	}
}

func TestTicketMultiWriteDrawsOnce(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	rt := &recordTicketer{}
	tx.SetCommitTicketer(rt)
	a := NewCASObj[int](10)
	b := NewCASObj[int](20)
	if err := tx.Run(func() error {
		tx.OpStart()
		a.NbtcCAS(tx, 10, 11, true, true)
		tx.OpStart()
		b.NbtcCAS(tx, 20, 21, true, true)
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tk, ok := tx.CommittedTicket(); !ok || tk != 1 {
		t.Fatalf("CommittedTicket = %d, %v; want one ticket for the whole tx", tk, ok)
	}
	if rt.next != 1 {
		t.Fatalf("drew %d tickets for one tx", rt.next)
	}
}

func TestTicketReadOnlyDrawsNothing(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	rt := &recordTicketer{}
	tx.SetCommitTicketer(rt)
	o := NewCASObj[int](5)
	if err := tx.Run(func() error {
		if got, _ := o.NbtcLoad(tx); got != 5 {
			t.Fatalf("read = %d", got)
		}
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rt.next != 0 {
		t.Fatalf("read-only tx drew a ticket")
	}
	if _, ok := tx.CommittedTicket(); ok {
		t.Fatal("CommittedTicket reports true for read-only tx")
	}
}

func TestTicketAbortBeforeCommitPathDrawsNothing(t *testing.T) {
	// Self-abort happens before End reaches a draw site, so the dense
	// ticket space never sees this transaction at all.
	mgr := NewTxManager()
	tx := mgr.Register()
	rt := &recordTicketer{}
	tx.SetCommitTicketer(rt)
	o := NewCASObj[int](1)
	err := tx.Run(func() error {
		o.NbtcCAS(tx, 1, 2, true, true)
		tx.Abort()
		return nil
	})
	if !errors.Is(err, ErrTxAborted) {
		t.Fatalf("Run = %v, want ErrTxAborted", err)
	}
	if rt.next != 0 || len(rt.cancelled) != 0 {
		t.Fatalf("aborted-before-commit tx touched ticketer: drew %d, cancelled %v", rt.next, rt.cancelled)
	}
	if _, ok := tx.CommittedTicket(); ok {
		t.Fatal("CommittedTicket reports true after abort")
	}
}

func TestTicketDrawnThenAbortedCancels(t *testing.T) {
	// The draw-then-lose race (helper aborts the owner between the draw
	// site and the terminal CAS) settles through finish(false), which must
	// cancel so the feed's contiguity drain can pass the hole. Exercise
	// the helpers directly — the race window is a few instructions wide.
	mgr := NewTxManager()
	tx := mgr.Register()
	rt := &recordTicketer{}
	tx.SetCommitTicketer(rt)
	o := NewCASObj[int](1)
	if err := tx.Run(func() error {
		o.NbtcCAS(tx, 1, 2, true, true)
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tx.writes = append(tx.writes[:0], nil) // make drawTicket eligible
	tx.drawTicket()
	if !tx.ticketDrawn || rt.next != 2 {
		t.Fatalf("drawTicket did not draw: drawn=%v next=%d", tx.ticketDrawn, rt.next)
	}
	tx.settleTicket(false)
	if len(rt.cancelled) != 1 || rt.cancelled[0] != 2 {
		t.Fatalf("cancelled = %v, want exactly ticket 2", rt.cancelled)
	}
	tx.writes = tx.writes[:0]
}

func TestTicketClearedByNextBegin(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	rt := &recordTicketer{}
	tx.SetCommitTicketer(rt)
	o := NewCASObj[int](1)
	if err := tx.Run(func() error {
		o.NbtcCAS(tx, 1, 2, true, true)
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, ok := tx.CommittedTicket(); !ok {
		t.Fatal("no ticket after write tx")
	}
	// A following read-only tx must not leave the stale ticket visible:
	// a consumer that published it again would corrupt the feed.
	if err := tx.Run(func() error {
		o.NbtcLoad(tx)
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tk, ok := tx.CommittedTicket(); ok {
		t.Fatalf("stale ticket %d still visible after read-only tx", tk)
	}
}

func TestTicketOrderRespectsDependency(t *testing.T) {
	// B overwrites A's write, so B depends on A; B's ticket must be higher.
	mgr := NewTxManager()
	rt := &recordTicketer{}
	txA := mgr.Register()
	txA.SetCommitTicketer(rt)
	txB := mgr.Register()
	txB.SetCommitTicketer(rt)
	o := NewCASObj[int](0)
	if err := txA.Run(func() error {
		o.NbtcCAS(txA, 0, 1, true, true)
		return nil
	}); err != nil {
		t.Fatalf("A: %v", err)
	}
	if err := txB.Run(func() error {
		o.NbtcCAS(txB, 1, 2, true, true)
		return nil
	}); err != nil {
		t.Fatalf("B: %v", err)
	}
	ta, _ := txA.CommittedTicket()
	tb, _ := txB.CommittedTicket()
	if ta >= tb {
		t.Fatalf("dependent tx ticket %d not after dependency %d", tb, ta)
	}
}
