package core

import (
	"errors"
	"math/rand"
	"time"
)

// ErrTxAborted is returned by Tx.End / Tx.Run when the transaction aborted,
// whether explicitly (Tx.Abort), by failed read validation, or by a
// conflicting transaction's eager contention management.
var ErrTxAborted = errors.New("medley: transaction aborted")

// abortSignal is the panic payload used by Tx.Abort to unwind out of
// arbitrarily deep data structure code, mirroring the paper's
// TransactionAborted exception. Tx.Run recovers it.
type abortSignal struct{}

// Tx is a per-goroutine transaction context. It owns one Desc, reused
// across transactions and distinguished by serial number. A Tx must not be
// shared between goroutines.
//
// Most data structure operations accept a *Tx; a nil *Tx (or one with no
// transaction open) elides all instrumentation, so the same structure can
// be used transactionally and non-transactionally.
type Tx struct {
	mgr    *TxManager
	desc   *Desc
	serial uint64
	active bool
	inSpec bool

	reads     []ReadWitness // fresh backing array per transaction (published)
	writes    []writeCell   // owner-only
	cleanups  []func()      // post-commit work (addToCleanups)
	allocUndo []func()      // tNew compensation on abort

	beginHooks  []func(*Tx)       // run at Begin; txMontage hooks the epoch here
	finishHooks []func(*Tx, bool) // run after settle; arg is committed
	smr         Retirer           // optional SMR domain for Retire
	boost       *boostState       // transactional-boosting locks/inverses

	rng *rand.Rand // backoff randomization for RunRetry
}

// InTx reports whether a transaction is currently open. It is safe to call
// on a nil Tx.
func (tx *Tx) InTx() bool { return tx != nil && tx.active }

// OpStart marks the beginning of a data structure operation, the analogue
// of declaring the paper's OpStarter. It resets per-operation speculation
// state. Safe on a nil Tx.
func (tx *Tx) OpStart() {
	if tx.InTx() {
		tx.inSpec = false
	}
}

// Manager returns the TxManager this Tx is registered with, or nil.
func (tx *Tx) Manager() *TxManager {
	if tx == nil {
		return nil
	}
	return tx.mgr
}

func (tx *Tx) startSpec() { tx.inSpec = true }
func (tx *Tx) endSpec()   { tx.inSpec = false }

// checkDoomed aborts (with unwinding) a transaction that a conflicting
// thread has already aborted via eager contention management. The paper's
// design lets a doomed transaction run to txEnd; detecting the abort at the
// next critical access instead costs one load of our own (cache-hot) status
// word and prevents a doomed transaction from continuing to install
// descriptors that knock out viable ones — the livelock amplifier of eager
// contention management. It is the same early-exit license the paper grants
// via validateReads.
func (tx *Tx) checkDoomed() {
	st := tx.desc.status.Load()
	if serialOf(st) == tx.serial && statusOf(st) == StatusAborted {
		tx.Abort()
	}
}

// InSpeculation reports whether the current operation is inside its
// speculation interval. Exposed for structures with multi-CAS speculation
// intervals (publication point before linearization point).
func (tx *Tx) InSpeculation() bool { return tx.InTx() && tx.inSpec }

func (tx *Tx) addWrite(w writeCell) { tx.writes = append(tx.writes, w) }

// AddToReadSet registers the witness of a linearizing load for commit-time
// validation (the paper's addToReadSet). Calling it outside a transaction,
// or with a nil witness, is a no-op.
func (tx *Tx) AddToReadSet(w ReadWitness) {
	if !tx.InTx() || w == nil {
		return
	}
	tx.reads = append(tx.reads, w)
}

// AddReadCheck registers an arbitrary predicate to be validated along with
// the read set at commit, both by the owner and by helping threads.
// txMontage uses this to require that the transaction commit in the epoch
// observed at Begin.
func (tx *Tx) AddReadCheck(f func() bool) {
	if !tx.InTx() {
		return
	}
	tx.reads = append(tx.reads, checkWitness{f})
}

// Defer registers post-critical cleanup work to run after the transaction
// commits (the paper's addToCleanups). Outside a transaction the work runs
// immediately, which is what a non-transactional operation wants.
func (tx *Tx) Defer(f func()) {
	if !tx.InTx() {
		f()
		return
	}
	tx.cleanups = append(tx.cleanups, f)
}

// OnAbortUndo registers compensation to run if the transaction aborts; tNew
// uses it to release speculatively allocated blocks. Outside a transaction
// it is a no-op.
func (tx *Tx) OnAbortUndo(f func()) {
	if !tx.InTx() {
		return
	}
	tx.allocUndo = append(tx.allocUndo, f)
}

// OnBegin registers a hook invoked at every subsequent Begin on this Tx.
func (tx *Tx) OnBegin(f func(*Tx)) {
	tx.beginHooks = append(tx.beginHooks, f)
}

// OnFinish registers a hook invoked after every transaction on this Tx
// settles (post-cleanup), with the commit outcome. txMontage uses it to
// announce that the transaction's epoch work is complete.
func (tx *Tx) OnFinish(f func(*Tx, bool)) {
	tx.finishHooks = append(tx.finishHooks, f)
}

// Begin opens a transaction (the paper's txBegin): bumps the serial number,
// resets the descriptor to InPrep, and clears per-transaction state.
func (tx *Tx) Begin() {
	if tx.active {
		panic("medley: Begin inside an open transaction")
	}
	tx.serial++
	tx.desc.status.Store(packStatus(tx.serial, StatusInPrep))
	// The read set gets a fresh backing array every transaction because the
	// previous one may have been published to helpers.
	tx.reads = make([]ReadWitness, 0, 8)
	tx.writes = tx.writes[:0]
	tx.cleanups = tx.cleanups[:0]
	tx.allocUndo = tx.allocUndo[:0]
	tx.inSpec = false
	tx.active = true
	tx.desc.shard.Begins.Add(1)
	for _, f := range tx.beginHooks {
		f(tx)
	}
}

// ValidateReads re-checks all reads made so far, for callers that want
// opacity-style early aborts (the paper's optional validateReads). It
// returns false if the transaction is doomed; the caller would then
// typically invoke Abort.
func (tx *Tx) ValidateReads() bool {
	if !tx.InTx() {
		return true
	}
	for _, w := range tx.reads {
		if !w.validFor(tx.desc, tx.serial) {
			return false
		}
	}
	return true
}

// End attempts to commit (the paper's txEnd). On success it uninstalls all
// descriptor cells with their new values and runs deferred cleanups; on
// failure it rolls back and returns ErrTxAborted.
func (tx *Tx) End() error {
	if !tx.active {
		panic("medley: End without Begin")
	}
	d := tx.desc
	// Publish the read set so helpers that observe InProg can validate on
	// our behalf, then announce readiness.
	d.reads.Store(&publishedReads{serial: tx.serial, entries: tx.reads})
	if !d.stsCAS(packStatus(tx.serial, StatusInPrep), StatusInPrep, StatusInProg) {
		return tx.settle()
	}
	word := packStatus(tx.serial, StatusInProg)
	if tx.ValidateReads() {
		d.stsCAS(word, StatusInProg, StatusCommitted)
	} else {
		d.stsCAS(word, StatusInProg, StatusAborted)
	}
	return tx.settle()
}

// Abort explicitly aborts the open transaction (the paper's txAbort) and
// unwinds to the enclosing Run via panic; use AbortNow for the
// non-unwinding variant with explicit Begin/End.
func (tx *Tx) Abort() {
	tx.AbortNow()
	panic(abortSignal{})
}

// AbortNow aborts the open transaction and returns (no unwinding). It is a
// no-op if no transaction is open.
func (tx *Tx) AbortNow() {
	if !tx.active {
		return
	}
	st := tx.desc.status.Load()
	if serialOf(st) == tx.serial && statusOf(st) == StatusInPrep {
		tx.desc.stsCAS(st, StatusInPrep, StatusAborted)
	}
	_ = tx.settle()
}

// settle drives the descriptor to a terminal state if it is not already
// there, then uninstalls every installed cell accordingly, runs cleanups or
// compensation, gathers statistics, and closes the transaction. It returns
// nil iff the transaction committed. Note that a helper may have committed
// us even while the owner was trying to abort-from-InProg; the terminal
// status word is the single source of truth.
func (tx *Tx) settle() error {
	d := tx.desc
	st := d.status.Load()
	if serialOf(st) != tx.serial {
		panic("medley: descriptor serial advanced under an open transaction")
	}
	switch statusOf(st) {
	case StatusInPrep:
		d.stsCAS(st, StatusInPrep, StatusAborted)
	case StatusInProg:
		// Owner reaches here only from AbortNow between setReady and the
		// commit CAS racing a helper; help the validation to a decision.
		if d.validatePublished(tx.serial) {
			d.stsCAS(st, StatusInProg, StatusCommitted)
		} else {
			d.stsCAS(st, StatusInProg, StatusAborted)
		}
	}
	st = d.status.Load()
	committed := statusOf(st) == StatusCommitted
	for _, w := range tx.writes {
		w.uninstall(committed)
	}
	tx.settleBoost(committed)
	tx.active = false
	tx.inSpec = false
	if committed {
		for _, f := range tx.cleanups {
			f()
		}
		tx.desc.shard.Commits.Add(1)
		for _, f := range tx.finishHooks {
			f(tx, true)
		}
		return nil
	}
	for _, f := range tx.allocUndo {
		f()
	}
	tx.desc.shard.Aborts.Add(1)
	for _, f := range tx.finishHooks {
		f(tx, false)
	}
	return ErrTxAborted
}

// Run executes fn inside a transaction: Begin, fn, End. If fn calls
// Tx.Abort the unwind is caught here and ErrTxAborted is returned. If fn
// returns a non-nil error the transaction is aborted and that error is
// returned. Run does not retry; see RunRetry.
func (tx *Tx) Run(fn func() error) (err error) {
	tx.Begin()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				err = ErrTxAborted
				return
			}
			tx.AbortNow()
			panic(r)
		}
	}()
	if ferr := fn(); ferr != nil {
		tx.AbortNow()
		return ferr
	}
	return tx.End()
}

// RunRetry executes fn as with Run, retrying on ErrTxAborted with
// randomized exponential backoff until it commits or fn returns a different
// error. This is the catch-block retry loop of the paper's Figure 3,
// packaged for convenience.
func (tx *Tx) RunRetry(fn func() error) error {
	backoff := time.Microsecond
	const maxBackoff = 128 * time.Microsecond
	for {
		err := tx.Run(fn)
		if !errors.Is(err, ErrTxAborted) {
			return err
		}
		if tx.rng == nil {
			tx.rng = rand.New(rand.NewSource(int64(tx.desc.tid)*2654435761 + 1))
		}
		time.Sleep(time.Duration(tx.rng.Int63n(int64(backoff)) + 1))
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// TNew allocates a block inside a transaction (the paper's tNew). Under
// Go's garbage collector no explicit compensation is required for plain
// heap blocks, so this is an ordinary allocation whose reference is simply
// dropped on abort; it exists so transformed structures read like the
// paper's, and so allocators with real side effects (e.g., persistent
// payloads) have a single choke point to hook via Tx.OnAbortUndo.
func TNew[T any](tx *Tx) *T {
	return new(T)
}

// TDelete logically deletes a block at commit (the paper's tDelete):
// deferred to post-commit cleanup inside a transaction, immediate outside.
// del is invoked when the deletion takes effect.
func TDelete(tx *Tx, del func()) {
	tx.Defer(del)
}

// Retirer is the safe-memory-reclamation hook consumed by Tx.Retire; an
// *ebr.Handle satisfies it.
type Retirer interface {
	Retire(free func())
}

// SetSMR attaches a safe-memory-reclamation handle (typically an
// *ebr.Handle) to this Tx. When set, Tx.Retire routes unlinked blocks
// through it; when unset, retirement falls back to dropping the reference
// and letting the garbage collector reclaim it.
func (tx *Tx) SetSMR(r Retirer) { tx.smr = r }

// Retire is the paper's tRetire: schedule a block for safe reclamation once
// the enclosing transaction commits (immediately when no transaction is
// open). Safe on a nil Tx.
func (tx *Tx) Retire(free func()) {
	if tx == nil {
		free()
		return
	}
	do := free
	if tx.smr != nil {
		r := tx.smr
		do = func() { r.Retire(free) }
	}
	tx.Defer(do)
}
