package core

import "errors"

// ErrTxAborted is returned by Tx.End / Tx.Run when the transaction aborted,
// whether explicitly (Tx.Abort), by failed read validation, or by a
// conflicting transaction's eager contention management.
var ErrTxAborted = errors.New("medley: transaction aborted")

// abortSignal is the panic payload used by Tx.Abort to unwind out of
// arbitrarily deep data structure code, mirroring the paper's
// TransactionAborted exception. Tx.Run recovers it.
type abortSignal struct{}

// cleanupEntry is one deferred post-commit action: a closure (fn) or an
// SMR-routed free (free). Two fields instead of one closure so Tx.Retire
// does not have to allocate a wrapper per call to route through the SMR.
type cleanupEntry struct {
	fn   func()
	free func()
}

// Tx is a per-goroutine transaction context. It owns one Desc, reused
// across transactions and distinguished by serial number. A Tx must not be
// shared between goroutines.
//
// Most data structure operations accept a *Tx; a nil *Tx (or one with no
// transaction open) elides all instrumentation, so the same structure can
// be used transactionally and non-transactionally.
type Tx struct {
	mgr    *TxManager
	desc   *Desc
	serial uint64
	active bool
	inSpec bool
	fast   bool // commit fast paths enabled (TxManager.FastPathsEnabled at Register)
	group  bool // group commit enabled (TxManager.GroupCommitEnabled at Register)

	reads     []ReadWitness  // published at End; see readsFree for reuse rules
	writes    []writeCell    // owner-only: truncate-and-reuse
	cleanups  []cleanupEntry // post-commit work (addToCleanups); owner-only
	allocUndo []func()       // tNew compensation on abort; owner-only

	beginHooks  []func(*Tx)       // run at Begin; txMontage hooks the epoch here
	finishHooks []func(*Tx, bool) // run after settle; arg is committed
	smr         Retirer           // optional SMR domain for Retire
	pauser      sectionPauser     // smr's critical section, released across backoff sleeps
	boost       *boostState       // transactional-boosting locks/inverses

	// Pooling state (TxManager.EnablePooling + an SMR handle that supports
	// RetireInto). pools holds this Tx's cell arenas and node pools;
	// readsFree/rpFree recycle read-set backing arrays and publishedReads
	// shells whose grace period (or non-publication) makes reuse safe.
	pooled    bool
	pr        poolRetirer
	pools     []txPool
	published bool // current read set was published to helpers at End
	readsFree [][]ReadWitness
	rpFree    []*publishedReads
	rpBin     rpBin

	rngState uint64     // xorshift state for RunRetry backoff jitter
	cm       contention // adaptive backoff state (backoff.go); owner-only

	// Commit-order ticketing (ticket.go): nil ticketer elides it all.
	ticketer     CommitTicketer
	ticket       uint64 // drawn for the open transaction
	ticketDrawn  bool
	lastTicket   uint64 // ticket of the last committed transaction
	lastTicketOK bool
}

// rpBin is the ebr.Pool that receives a retired publishedReads once no
// helper can still iterate it; it splits the shell and the backing array
// back into the owner's free lists.
type rpBin struct{ tx *Tx }

// Recycle implements ebr.Pool; it runs on the owning goroutine.
func (b *rpBin) Recycle(obj any) {
	rp := obj.(*publishedReads)
	clear(rp.entries)
	b.tx.readsFree = append(b.tx.readsFree, rp.entries[:0])
	rp.entries = nil
	rp.serial = 0
	b.tx.rpFree = append(b.tx.rpFree, rp)
}

// InTx reports whether a transaction is currently open. It is safe to call
// on a nil Tx.
func (tx *Tx) InTx() bool { return tx != nil && tx.active }

// OpStart marks the beginning of a data structure operation, the analogue
// of declaring the paper's OpStarter. It resets per-operation speculation
// state. Safe on a nil Tx.
func (tx *Tx) OpStart() {
	if tx.InTx() {
		tx.inSpec = false
	}
}

// Manager returns the TxManager this Tx is registered with, or nil.
func (tx *Tx) Manager() *TxManager {
	if tx == nil {
		return nil
	}
	return tx.mgr
}

func (tx *Tx) startSpec() { tx.inSpec = true }
func (tx *Tx) endSpec()   { tx.inSpec = false }

// checkDoomed aborts (with unwinding) a transaction that a conflicting
// thread has already aborted via eager contention management. The paper's
// design lets a doomed transaction run to txEnd; detecting the abort at the
// next critical access instead costs one load of our own (cache-hot) status
// word and prevents a doomed transaction from continuing to install
// descriptors that knock out viable ones — the livelock amplifier of eager
// contention management. It is the same early-exit license the paper grants
// via validateReads.
func (tx *Tx) checkDoomed() {
	st := tx.desc.status.Load()
	if serialOf(st) == tx.serial && statusOf(st) == StatusAborted {
		tx.Abort()
	}
}

// InSpeculation reports whether the current operation is inside its
// speculation interval. Exposed for structures with multi-CAS speculation
// intervals (publication point before linearization point).
func (tx *Tx) InSpeculation() bool { return tx.InTx() && tx.inSpec }

func (tx *Tx) addWrite(w writeCell) { tx.writes = append(tx.writes, w) }

// AddToReadSet registers the witness of a linearizing load for commit-time
// validation (the paper's addToReadSet). Calling it outside a transaction,
// or with a zero witness, is a no-op.
//
// A witness naming the same cell and generation as the read set's last
// entry is dropped: it is evidence of the same fact, so validating it twice
// proves nothing. Hand-over-hand range reads re-witness their anchor cell
// on every step, which would otherwise grow the read set — and commit-time
// validation cost — quadratically in the scan length.
func (tx *Tx) AddToReadSet(w ReadWitness) {
	if !tx.InTx() || w.isZero() {
		return
	}
	if n := len(tx.reads); n > 0 && w.c != nil {
		if last := &tx.reads[n-1]; last.c == w.c && last.gen == w.gen {
			return
		}
	}
	tx.reads = append(tx.reads, w)
}

// AddReadCheck registers an arbitrary predicate to be validated along with
// the read set at commit, both by the owner and by helping threads.
// txMontage uses this to require that the transaction commit in the epoch
// observed at Begin.
func (tx *Tx) AddReadCheck(f func() bool) {
	if !tx.InTx() {
		return
	}
	tx.reads = append(tx.reads, ReadWitness{chk: f})
}

// Defer registers post-critical cleanup work to run after the transaction
// commits (the paper's addToCleanups). Outside a transaction the work runs
// immediately, which is what a non-transactional operation wants.
func (tx *Tx) Defer(f func()) {
	if !tx.InTx() {
		f()
		return
	}
	tx.cleanups = append(tx.cleanups, cleanupEntry{fn: f})
}

// OnAbortUndo registers compensation to run if the transaction aborts; tNew
// uses it to release speculatively allocated blocks. Outside a transaction
// it is a no-op.
func (tx *Tx) OnAbortUndo(f func()) {
	if !tx.InTx() {
		return
	}
	tx.allocUndo = append(tx.allocUndo, f)
}

// OnBegin registers a hook invoked at every subsequent Begin on this Tx.
func (tx *Tx) OnBegin(f func(*Tx)) {
	tx.beginHooks = append(tx.beginHooks, f)
}

// OnFinish registers a hook invoked after every transaction on this Tx
// settles (post-cleanup), with the commit outcome. txMontage uses it to
// announce that the transaction's epoch work is complete.
func (tx *Tx) OnFinish(f func(*Tx, bool)) {
	tx.finishHooks = append(tx.finishHooks, f)
}

// takeReads sources the read-set backing array for a new transaction after
// the previous one was published. Under pooling, published arrays cycle
// back through EBR into readsFree (helpers may iterate a publication until
// a grace period passes); without pooling a published array is left to the
// garbage collector and a fresh one is allocated. Never-published arrays
// are reused in place by Begin and do not come through here.
func (tx *Tx) takeReads() []ReadWitness {
	if tx.pooled {
		if n := len(tx.readsFree); n > 0 {
			buf := tx.readsFree[n-1]
			tx.readsFree[n-1] = nil
			tx.readsFree = tx.readsFree[:n-1]
			return buf
		}
	}
	return make([]ReadWitness, 0, 8)
}

// Begin opens a transaction (the paper's txBegin): bumps the serial number,
// resets the descriptor to InPrep, and clears per-transaction state.
func (tx *Tx) Begin() {
	if tx.active {
		panic("medley: Begin inside an open transaction")
	}
	tx.serial++
	tx.desc.status.Store(packStatus(tx.serial, StatusInPrep))
	if tx.reads != nil && !tx.published {
		// Never published: no helper ever observed the backing array, so it
		// is reusable in place regardless of pooling. Read-only fast-path
		// commits never publish, which is what makes a warm read-only
		// transaction allocation-free even without recycling arenas.
		clear(tx.reads)
		tx.reads = tx.reads[:0]
	} else {
		tx.reads = tx.takeReads()
	}
	tx.published = false
	tx.writes = tx.writes[:0]
	tx.cleanups = tx.cleanups[:0]
	tx.allocUndo = tx.allocUndo[:0]
	tx.inSpec = false
	tx.active = true
	if tx.ticketer != nil {
		// Each transaction's ticket must be consumed (published) before
		// the owner opens the next one; a read-only transaction clears it
		// so a stale ticket is never republished.
		tx.lastTicketOK = false
	}
	bump(&tx.desc.shard.Begins)
	for _, f := range tx.beginHooks {
		f(tx)
	}
}

// ValidateReads re-checks all reads made so far, for callers that want
// opacity-style early aborts (the paper's optional validateReads). It
// returns false if the transaction is doomed; the caller would then
// typically invoke Abort.
func (tx *Tx) ValidateReads() bool {
	if !tx.InTx() {
		return true
	}
	for i := range tx.reads {
		if !tx.reads[i].valid(tx.desc, tx.serial) {
			return false
		}
	}
	return true
}

// End attempts to commit (the paper's txEnd). On success it uninstalls all
// descriptor cells with their new values and runs deferred cleanups; on
// failure it rolls back and returns ErrTxAborted.
//
// The general protocol — publish the read set, announce InProg, validate,
// settle — exists so that helpers which encounter this transaction's
// installed descriptor cells can finish the commit on its behalf. When the
// write set is small that machinery is mostly or entirely dead weight, so
// End dispatches to two tiered fast paths (ablatable via
// TxManager.DisableFastPaths):
//
//   - no critical CAS installed: endReadOnly — no publication, owner-side
//     validation, one plain status store (see the helper-reachability
//     argument there);
//   - exactly one critical CAS installed: endSingleWrite — no publication,
//     owner-side validation folded into a single InPrep→Committed status
//     CAS plus the one uninstall.
func (tx *Tx) End() error {
	if !tx.active {
		panic("medley: End without Begin")
	}
	if tx.fast {
		switch len(tx.writes) {
		case 0:
			return tx.endReadOnly()
		case 1:
			return tx.endSingleWrite()
		}
	}
	d := tx.desc
	// Publish the read set so helpers that observe InProg can validate on
	// our behalf, then announce readiness. The previous publication is
	// retired through EBR under pooling: a slow helper may still iterate it.
	rp := tx.takeRP()
	rp.serial = tx.serial
	rp.entries = tx.reads
	old := d.reads.Swap(rp)
	tx.published = true
	if old != nil && tx.pooled {
		tx.pr.RetireInto(&tx.rpBin, old)
	}
	// Draw the commit ticket while still InPrep: the InPrep→InProg CAS
	// below is the first step from which a helper can drive this
	// transaction to Committed, so the draw is strictly pre-visibility
	// (see ticket.go for the full ordering argument).
	tx.drawTicket()
	if !d.stsCAS(packStatus(tx.serial, StatusInPrep), StatusInPrep, StatusInProg) {
		return tx.settle()
	}
	word := packStatus(tx.serial, StatusInProg)
	if tx.ValidateReads() {
		d.stsCAS(word, StatusInProg, StatusCommitted)
	} else {
		d.stsCAS(word, StatusInProg, StatusAborted)
	}
	return tx.settle()
}

// endReadOnly commits a transaction that installed no descriptor cell this
// serial. Helpers discover a descriptor only by encountering one of its
// installed cells — there is no other route to a foreign Desc — so with an
// empty write set no helper can ever reach this transaction: nobody can
// abort it, help it, or observe its status word at this serial. The owner
// is therefore the sole status writer, owner-side validation is
// authoritative, and the entire handshake (read-set publication,
// InPrep→InProg, InProg→terminal) collapses to one validation sweep plus a
// single plain atomic status store — zero atomic RMWs. The store itself is
// kept (rather than leaving the descriptor InPrep until the next Begin)
// so the descriptor always ends a transaction in a terminal state, the
// invariant settle asserts and debug tooling relies on.
//
// Serializability is unchanged: a read-only transaction linearizes at its
// validation sweep. Every witnessed cell still governing its slot at that
// point means the reads form a consistent snapshot at that instant; a
// writer displacing a witnessed cell before the sweep fails it, and one
// displacing after serializes after this transaction.
func (tx *Tx) endReadOnly() error {
	committed := tx.ValidateReads()
	status := StatusAborted
	if committed {
		status = StatusCommitted
	}
	tx.desc.status.Store(packStatus(tx.serial, status))
	if committed {
		shard := tx.desc.shard
		bump(&shard.ReadOnlyCommits)
		bump(&shard.FastPathCommits)
	}
	return tx.finish(committed)
}

// endSingleWrite commits a transaction with exactly one installed
// descriptor cell. That cell makes the descriptor reachable, so helpers
// may race us — but the only move a helper has against an InPrep
// transaction is the eager-contention-management abort (helpers validate
// on a transaction's behalf only from InProg, which this path never
// enters). Validation therefore happens owner-side while still InPrep, and
// commit is a single InPrep→Committed status CAS: it either wins against a
// helper's InPrep→Aborted CAS or loses to it, linearizing the outcome on
// the status word exactly as the general protocol does. The read-set
// publication and the InPrep→InProg transition are elided, and settle's
// status resolution plus write-set loop fold into one uninstall.
//
// The trade is that a concurrent helper aborts us where the general
// protocol would have let it help us commit; the window (one validation
// sweep) is tiny, and the displaced transaction retries — the same license
// eager contention management already grants.
func (tx *Tx) endSingleWrite() error {
	d := tx.desc
	word := packStatus(tx.serial, StatusInPrep)
	if tx.ValidateReads() {
		// Draw the commit ticket after validation, before the terminal
		// CAS: this is the fast path's last pre-visibility instant (see
		// ticket.go). A draw whose CAS then loses to a helper's abort is
		// cancelled by settle's finish(false).
		tx.drawTicket()
		if d.stsCAS(word, StatusInPrep, StatusCommitted) {
			tx.writes[0].uninstall(tx, true)
			bump(&d.shard.FastPathCommits)
			return tx.finish(true)
		}
	}
	// Validation failed, or a helper's eager-contention-management abort
	// won the status race; settle resolves whatever state the descriptor
	// is in (including states only reachable when callers drive the
	// handshake by hand) and uninstalls the cell accordingly.
	return tx.settle()
}

// takeRP sources a publishedReads shell, reusing recycled ones under
// pooling.
func (tx *Tx) takeRP() *publishedReads {
	if n := len(tx.rpFree); n > 0 {
		rp := tx.rpFree[n-1]
		tx.rpFree[n-1] = nil
		tx.rpFree = tx.rpFree[:n-1]
		return rp
	}
	return &publishedReads{}
}

// Abort explicitly aborts the open transaction (the paper's txAbort) and
// unwinds to the enclosing Run via panic; use AbortNow for the
// non-unwinding variant with explicit Begin/End.
func (tx *Tx) Abort() {
	tx.AbortNow()
	panic(abortSignal{})
}

// AbortNow aborts the open transaction and returns (no unwinding). It is a
// no-op if no transaction is open.
func (tx *Tx) AbortNow() {
	if !tx.active {
		return
	}
	st := tx.desc.status.Load()
	if serialOf(st) == tx.serial && statusOf(st) == StatusInPrep {
		tx.desc.stsCAS(st, StatusInPrep, StatusAborted)
	}
	_ = tx.settle()
}

// settle drives the descriptor to a terminal state if it is not already
// there, then uninstalls every installed cell accordingly, runs cleanups or
// compensation, gathers statistics, and closes the transaction. It returns
// nil iff the transaction committed. Note that a helper may have committed
// us even while the owner was trying to abort-from-InProg; the terminal
// status word is the single source of truth.
func (tx *Tx) settle() error {
	d := tx.desc
	st := d.status.Load()
	if serialOf(st) != tx.serial {
		panic("medley: descriptor serial advanced under an open transaction")
	}
	switch statusOf(st) {
	case StatusInPrep:
		d.stsCAS(st, StatusInPrep, StatusAborted)
	case StatusInProg:
		// Owner reaches here only from AbortNow between setReady and the
		// commit CAS racing a helper; help the validation to a decision.
		if d.validatePublished(tx.serial) {
			d.stsCAS(st, StatusInProg, StatusCommitted)
		} else {
			d.stsCAS(st, StatusInProg, StatusAborted)
		}
	}
	st = d.status.Load()
	committed := statusOf(st) == StatusCommitted
	for _, w := range tx.writes {
		w.uninstall(tx, committed)
	}
	return tx.finish(committed)
}

// finish is the outcome-independent tail of every commit path (settle and
// the End fast paths): boost locks, cleanups or compensation, pool settles,
// statistics, finish hooks. The descriptor is already terminal and every
// installed cell already uninstalled when it runs. It returns nil iff the
// transaction committed.
func (tx *Tx) finish(committed bool) error {
	tx.settleBoost(committed)
	tx.settleTicket(committed)
	tx.active = false
	tx.inSpec = false
	if committed {
		for i := range tx.cleanups {
			c := &tx.cleanups[i]
			switch {
			case c.fn != nil:
				c.fn()
			case tx.smr != nil:
				tx.smr.Retire(c.free)
			default:
				c.free()
			}
		}
		for _, p := range tx.pools {
			p.settle(tx, true)
		}
		bump(&tx.desc.shard.Commits)
		for _, f := range tx.finishHooks {
			f(tx, true)
		}
		return nil
	}
	for _, f := range tx.allocUndo {
		f()
	}
	for _, p := range tx.pools {
		p.settle(tx, false)
	}
	bump(&tx.desc.shard.Aborts)
	for _, f := range tx.finishHooks {
		f(tx, false)
	}
	return ErrTxAborted
}

// Run executes fn inside a transaction: Begin, fn, End. If fn calls
// Tx.Abort the unwind is caught here and ErrTxAborted is returned. If fn
// returns a non-nil error the transaction is aborted and that error is
// returned. Run does not retry; see RunRetry.
func (tx *Tx) Run(fn func() error) (err error) {
	tx.Begin()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				err = ErrTxAborted
				return
			}
			tx.AbortNow()
			panic(r)
		}
	}()
	if ferr := fn(); ferr != nil {
		tx.AbortNow()
		return ferr
	}
	return tx.End()
}

// RunRetry executes fn as with Run, retrying on ErrTxAborted until it
// commits or fn returns a different error. This is the catch-block retry
// loop of the paper's Figure 3, packaged for convenience.
//
// The backoff is allocation-free and contention-adaptive (backoff.go): a
// Gosched-first spin ladder followed by exponential sleeps jittered by a
// per-Tx xorshift PRNG, with the yield count and jitter window steered by
// this Tx's abort-rate EWMA and hot-conflict detection.
func (tx *Tx) RunRetry(fn func() error) error {
	for attempt := 0; ; attempt++ {
		err := tx.Run(fn)
		if !errors.Is(err, ErrTxAborted) {
			tx.cm.note(tx, false)
			return err
		}
		tx.cm.note(tx, true)
		tx.backoff(attempt)
	}
}

// sectionPauser is the slice of an SMR handle RunRetry needs to step out
// of its critical section while sleeping; *ebr.Handle satisfies it.
type sectionPauser interface {
	Enter()
	Exit()
	Active() bool
}

// TNew allocates a block inside a transaction (the paper's tNew). Under
// Go's garbage collector no explicit compensation is required for plain
// heap blocks, so this is an ordinary allocation whose reference is simply
// dropped on abort; it exists so transformed structures read like the
// paper's, and so allocators with real side effects (e.g., persistent
// payloads) have a single choke point to hook via Tx.OnAbortUndo.
func TNew[T any](tx *Tx) *T {
	return new(T)
}

// TDelete logically deletes a block at commit (the paper's tDelete):
// deferred to post-commit cleanup inside a transaction, immediate outside.
// del is invoked when the deletion takes effect.
func TDelete(tx *Tx, del func()) {
	tx.Defer(del)
}

// Retirer is the safe-memory-reclamation hook consumed by Tx.Retire; an
// *ebr.Handle satisfies it.
type Retirer interface {
	Retire(free func())
}

// SetSMR attaches a safe-memory-reclamation handle (typically an
// *ebr.Handle) to this Tx. When set, Tx.Retire routes unlinked blocks
// through it; when unset, retirement falls back to dropping the reference
// and letting the garbage collector reclaim it.
//
// If the manager has pooling enabled (TxManager.EnablePooling) and r
// supports pool-routed retirement (as *ebr.Handle does), this also
// activates the Tx's recycling arenas: cells and nodes displaced by this
// Tx are retired into its pools and reused after a grace period. The
// owning goroutine must then hold r's critical section (ebr.Handle.Enter /
// Exit) around every transaction and bare operation on pooled structures.
func (tx *Tx) SetSMR(r Retirer) {
	tx.smr = r
	tx.pauser, _ = r.(sectionPauser)
	if pr, ok := r.(poolRetirer); ok && tx.mgr != nil && tx.mgr.PoolingEnabled() {
		tx.pr = pr
		tx.pooled = true
		tx.rpBin.tx = tx
	}
}

// Retire is the paper's tRetire: schedule a block for safe reclamation once
// the enclosing transaction commits (immediately when no transaction is
// open). Safe on a nil Tx.
func (tx *Tx) Retire(free func()) {
	if !tx.InTx() {
		if tx != nil && tx.smr != nil {
			tx.smr.Retire(free)
			return
		}
		free()
		return
	}
	tx.cleanups = append(tx.cleanups, cleanupEntry{free: free})
}
