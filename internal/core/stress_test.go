package core

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestTransferConservation is the canonical multi-word atomicity stress:
// concurrent transactions move value between slots; the sum is invariant.
func TestTransferConservation(t *testing.T) {
	const nAccounts = 32
	const perAccount = 1000
	const goroutines = 8
	iters := 3000
	if testing.Short() {
		iters = 500
	}

	mgr := NewTxManager()
	accounts := make([]*CASObj[int], nAccounts)
	for i := range accounts {
		accounts[i] = NewCASObj[int](perAccount)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				from := rng.Intn(nAccounts)
				to := rng.Intn(nAccounts)
				if from == to {
					continue
				}
				amt := rng.Intn(10) + 1
				_ = tx.RunRetry(func() error {
					tx.OpStart()
					vf, wf := accounts[from].NbtcLoad(tx)
					tx.AddToReadSet(wf)
					if vf < amt {
						return errInsufficient
					}
					tx.OpStart()
					vt, wt := accounts[to].NbtcLoad(tx)
					tx.AddToReadSet(wt)
					tx.OpStart()
					if !accounts[from].NbtcCAS(tx, vf, vf-amt, true, true) {
						tx.Abort()
					}
					tx.OpStart()
					if !accounts[to].NbtcCAS(tx, vt, vt+amt, true, true) {
						tx.Abort()
					}
					return nil
				})
			}
		}(int64(g) + 1)
	}
	wg.Wait()

	total := 0
	for _, a := range accounts {
		v := a.Load()
		if v < 0 {
			t.Fatalf("negative balance %d", v)
		}
		total += v
	}
	if total != nAccounts*perAccount {
		t.Fatalf("conservation violated: total = %d, want %d", total, nAccounts*perAccount)
	}
}

// TestSnapshotConsistency checks strict serializability from the reader
// side: two slots are always updated together (x, -x); transactional
// readers must never observe a mixed state.
func TestSnapshotConsistency(t *testing.T) {
	mgr := NewTxManager()
	a := NewCASObj[int](0)
	b := NewCASObj[int](0)
	var stop atomic.Bool
	var bad atomic.Int64
	var wg sync.WaitGroup

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				d := rng.Intn(100) - 50
				_ = tx.RunRetry(func() error {
					tx.OpStart()
					va, _ := a.NbtcLoad(tx)
					tx.OpStart()
					vb, _ := b.NbtcLoad(tx)
					tx.OpStart()
					if !a.NbtcCAS(tx, va, va+d, true, true) {
						tx.Abort()
					}
					tx.OpStart()
					if !b.NbtcCAS(tx, vb, vb-d, true, true) {
						tx.Abort()
					}
					return nil
				})
			}
		}(int64(w) + 99)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := mgr.Register()
			for !stop.Load() {
				var va, vb int
				err := tx.Run(func() error {
					tx.OpStart()
					v1, w1 := a.NbtcLoad(tx)
					tx.AddToReadSet(w1)
					tx.OpStart()
					v2, w2 := b.NbtcLoad(tx)
					tx.AddToReadSet(w2)
					va, vb = v1, v2
					return nil
				})
				if err == nil && va+vb != 0 {
					bad.Add(1)
				}
			}
		}()
	}

	iters := 20000
	if testing.Short() {
		iters = 2000
	}
	tx := mgr.Register()
	for i := 0; i < iters; i++ {
		_ = tx.RunRetry(func() error {
			tx.OpStart()
			va, _ := a.NbtcLoad(tx)
			tx.OpStart()
			if !a.NbtcCAS(tx, va, va+1, true, true) {
				tx.Abort()
			}
			tx.OpStart()
			vb, _ := b.NbtcLoad(tx)
			tx.OpStart()
			if !b.NbtcCAS(tx, vb, vb-1, true, true) {
				tx.Abort()
			}
			return nil
		})
	}
	stop.Store(true)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d committed reader transactions observed torn state", n)
	}
	if a.Load()+b.Load() != 0 {
		t.Fatalf("final state torn: a=%d b=%d", a.Load(), b.Load())
	}
}

// TestObstructionFreedomSolo verifies the liveness argument of Theorem 4 in
// its testable form: a transaction running with no concurrent activity must
// commit on the first retry even if it initially encounters a stale
// descriptor left by a paused (abandoned) transaction.
func TestObstructionFreedomSolo(t *testing.T) {
	mgr := NewTxManager()
	tStale := mgr.Register()
	o := NewCASObj[int](0)
	tStale.Begin()
	if !o.NbtcCAS(tStale, 0, 77, true, true) {
		t.Fatal("stale install failed")
	}
	// tStale is now "paused forever". A solo thread must make progress.
	tx := mgr.Register()
	err := tx.Run(func() error {
		if !o.NbtcCAS(tx, 0, 1, true, true) {
			return errors.New("CAS failed")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("solo transaction did not commit over abandoned descriptor: %v", err)
	}
	if o.Load() != 1 {
		t.Fatalf("Load = %d, want 1", o.Load())
	}
}

// TestQuickSequentialTx property: any sequence of single-threaded committed
// transactions over a pair of slots is equivalent to executing the same
// updates directly.
func TestQuickSequentialTx(t *testing.T) {
	f := func(ops []int8) bool {
		mgr := NewTxManager()
		tx := mgr.Register()
		a := NewCASObj[int](0)
		b := NewCASObj[int](0)
		refA, refB := 0, 0
		for _, op := range ops {
			d := int(op)
			err := tx.Run(func() error {
				va, _ := a.NbtcLoad(tx)
				tx.OpStart()
				if !a.NbtcCAS(tx, va, va+d, true, true) {
					tx.Abort()
				}
				tx.OpStart()
				vb, _ := b.NbtcLoad(tx)
				tx.OpStart()
				if !b.NbtcCAS(tx, vb, vb^d, true, true) {
					tx.Abort()
				}
				return nil
			})
			if err == nil {
				refA += d
				refB ^= d
			}
		}
		return a.Load() == refA && b.Load() == refB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAbortIsNoop property: a transaction that always aborts never
// changes observable state, for arbitrary op interleavings within the tx.
func TestQuickAbortIsNoop(t *testing.T) {
	f := func(writes []uint8) bool {
		mgr := NewTxManager()
		tx := mgr.Register()
		slots := make([]*CASObj[int], 4)
		for i := range slots {
			slots[i] = NewCASObj[int](i * 100)
		}
		_ = tx.Run(func() error {
			for _, w := range writes {
				s := slots[int(w)%len(slots)]
				tx.OpStart()
				v, _ := s.NbtcLoad(tx)
				_ = s.NbtcCAS(tx, v, v+1, true, true)
			}
			tx.Abort()
			return nil
		})
		for i, s := range slots {
			if s.Load() != i*100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestManyThreadsManySlots is a broad randomized stress mixing
// transactional and plain accesses across goroutines under -race.
func TestManyThreadsManySlots(t *testing.T) {
	const nSlots = 16
	const goroutines = 6
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	mgr := NewTxManager()
	slots := make([]*CASObj[uint64], nSlots)
	for i := range slots {
		slots[i] = NewCASObj[uint64](0)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tx := mgr.Register()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				switch rng.Intn(3) {
				case 0: // plain CAS increment
					s := slots[rng.Intn(nSlots)]
					for {
						v := s.Load()
						if s.CAS(v, v+1) {
							break
						}
					}
				case 1: // read-only tx
					i1, i2 := rng.Intn(nSlots), rng.Intn(nSlots)
					_ = tx.Run(func() error {
						tx.OpStart()
						_, w1 := slots[i1].NbtcLoad(tx)
						tx.AddToReadSet(w1)
						tx.OpStart()
						_, w2 := slots[i2].NbtcLoad(tx)
						tx.AddToReadSet(w2)
						return nil
					})
				default: // update tx on 2-3 slots
					n := 2 + rng.Intn(2)
					idx := rng.Perm(nSlots)[:n]
					_ = tx.Run(func() error {
						for _, j := range idx {
							tx.OpStart()
							v, _ := slots[j].NbtcLoad(tx)
							if !slots[j].NbtcCAS(tx, v, v+1, true, true) {
								tx.Abort()
							}
						}
						return nil
					})
				}
			}
		}(int64(g) * 7)
	}
	wg.Wait()
	st := mgr.Stats()
	if st.Begins != st.Commits+st.Aborts {
		t.Fatalf("accounting broken: begins=%d commits=%d aborts=%d",
			st.Begins, st.Commits, st.Aborts)
	}
}
