package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestReadOnlyFastPathCounters checks that a transaction with an empty
// write set commits through the read-only fast path and is counted as both
// a read-only and a fast-path commit.
func TestReadOnlyFastPathCounters(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[int](7)
	for i := 0; i < 3; i++ {
		err := tx.Run(func() error {
			v, w := o.NbtcLoad(tx)
			if v != 7 {
				t.Errorf("NbtcLoad = %d, want 7", v)
			}
			tx.AddToReadSet(w)
			return nil
		})
		if err != nil {
			t.Fatalf("read-only Run: %v", err)
		}
	}
	st := mgr.Stats()
	if st.ReadOnlyCommits != 3 || st.FastPathCommits != 3 || st.Commits != 3 {
		t.Fatalf("ReadOnlyCommits,FastPathCommits,Commits = %d,%d,%d, want 3,3,3",
			st.ReadOnlyCommits, st.FastPathCommits, st.Commits)
	}
	// The descriptor must still end terminal, exactly as the general path
	// leaves it.
	if got := statusOf(tx.desc.status.Load()); got != StatusCommitted {
		t.Fatalf("descriptor status = %d, want Committed", got)
	}
}

// TestSingleWriteFastPathCounters checks that a transaction with exactly
// one installed descriptor cell commits through the single-write fast path
// (a fast-path commit that is not a read-only commit) and that larger
// write sets fall back to the general protocol.
func TestSingleWriteFastPathCounters(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	a, b := NewCASObj[int](0), NewCASObj[int](0)
	if err := tx.Run(func() error {
		if !a.NbtcCAS(tx, 0, 1, true, true) {
			t.Fatal("single-write install failed")
		}
		return nil
	}); err != nil {
		t.Fatalf("single-write Run: %v", err)
	}
	if err := tx.Run(func() error {
		if !a.NbtcCAS(tx, 1, 2, false, true) || !b.NbtcCAS(tx, 0, 1, true, true) {
			t.Fatal("double-write install failed")
		}
		return nil
	}); err != nil {
		t.Fatalf("double-write Run: %v", err)
	}
	st := mgr.Stats()
	if st.FastPathCommits != 1 || st.ReadOnlyCommits != 0 || st.Commits != 2 {
		t.Fatalf("FastPathCommits,ReadOnlyCommits,Commits = %d,%d,%d, want 1,0,2",
			st.FastPathCommits, st.ReadOnlyCommits, st.Commits)
	}
	if got := a.Load(); got != 2 {
		t.Fatalf("a = %d, want 2", got)
	}
	if got := b.Load(); got != 1 {
		t.Fatalf("b = %d, want 1", got)
	}
}

// TestFastPathsDisabled checks the ablation switch: with
// TxManager.DisableFastPaths, the same transactions run the full
// handshake and no fast-path commit is counted.
func TestFastPathsDisabled(t *testing.T) {
	mgr := NewTxManager()
	mgr.DisableFastPaths()
	tx := mgr.Register()
	o := NewCASObj[int](0)
	if err := tx.Run(func() error {
		v, w := o.NbtcLoad(tx)
		tx.AddToReadSet(w)
		_ = v
		return nil
	}); err != nil {
		t.Fatalf("read-only Run: %v", err)
	}
	if err := tx.Run(func() error {
		if !o.NbtcCAS(tx, 0, 1, true, true) {
			t.Fatal("install failed")
		}
		return nil
	}); err != nil {
		t.Fatalf("single-write Run: %v", err)
	}
	st := mgr.Stats()
	if st.FastPathCommits != 0 || st.ReadOnlyCommits != 0 {
		t.Fatalf("FastPathCommits,ReadOnlyCommits = %d,%d, want 0,0 with fast paths off",
			st.FastPathCommits, st.ReadOnlyCommits)
	}
	if st.Commits != 2 {
		t.Fatalf("Commits = %d, want 2", st.Commits)
	}
}

// TestReadOnlyFastPathSerializable is the serializability property test of
// the read-only commit elision: writer goroutines move value between two
// slots transactionally (preserving their sum), reader goroutines commit
// read-only transactions over both slots through the fast path, and every
// committed read must observe the invariant sum. A reader whose validation
// were skipped or torn would observe a half-applied transfer. Run with
// -race for the memory-model half of the claim.
func TestReadOnlyFastPathSerializable(t *testing.T) {
	const (
		workers = 4
		total   = 1 << 10
		rounds  = 20000
	)
	mgr := NewTxManager()
	a, b := NewCASObj[int](total), NewCASObj[int](0)
	var wg sync.WaitGroup
	var torn atomic.Int64
	var readOnly atomic.Uint64
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			tx := mgr.Register()
			for i := 0; i < rounds; i++ {
				if (i+seed)%2 == 0 {
					// Transfer one unit a->b (or back), a two-write
					// transaction through the general protocol.
					_ = tx.RunRetry(func() error {
						av, aw := a.NbtcLoad(tx)
						tx.AddToReadSet(aw)
						bv, bw := b.NbtcLoad(tx)
						tx.AddToReadSet(bw)
						d := 1
						if av == 0 {
							d = -1
						}
						if !a.NbtcCAS(tx, av, av-d, false, true) {
							tx.Abort()
						}
						if !b.NbtcCAS(tx, bv, bv+d, true, false) {
							tx.Abort()
						}
						return nil
					})
					continue
				}
				var av, bv int
				err := tx.Run(func() error {
					v, w := a.NbtcLoad(tx)
					tx.AddToReadSet(w)
					av = v
					v, w = b.NbtcLoad(tx)
					tx.AddToReadSet(w)
					bv = v
					return nil
				})
				if err == nil && av+bv != total {
					torn.Add(1)
				}
				if err == nil {
					readOnly.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d committed read-only transactions observed a torn transfer", n)
	}
	if readOnly.Load() == 0 {
		t.Fatal("no read-only transaction ever committed")
	}
	st := mgr.Stats()
	if st.ReadOnlyCommits == 0 {
		t.Fatal("read-only commits bypassed the fast path entirely")
	}
	if got := a.Load() + b.Load(); got != total {
		t.Fatalf("final sum = %d, want %d", got, total)
	}
}

// TestSingleWriteFastPathLinearizable hammers one slot with single-write
// increment transactions: the final value must equal the number of commits
// the workers observed, proving the InPrep->Committed fold linearizes
// correctly against helper aborts and competing installs.
func TestSingleWriteFastPathLinearizable(t *testing.T) {
	const (
		workers = 4
		rounds  = 20000
	)
	mgr := NewTxManager()
	o := NewCASObj[int](0)
	var wg sync.WaitGroup
	var commits atomic.Int64
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := mgr.Register()
			for i := 0; i < rounds; i++ {
				err := tx.RunRetry(func() error {
					v, w := o.NbtcLoad(tx)
					tx.AddToReadSet(w)
					if !o.NbtcCAS(tx, v, v+1, true, true) {
						tx.Abort()
					}
					return nil
				})
				if err == nil {
					commits.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got, want := int64(o.Load()), commits.Load(); got != want {
		t.Fatalf("final value = %d, want %d committed increments", got, want)
	}
	if st := mgr.Stats(); st.FastPathCommits == 0 {
		t.Fatal("no increment took the single-write fast path")
	}
}

// TestReadSetDedup checks that consecutive witnesses of the same cell and
// generation collapse to one read-set entry, while distinct cells and
// recycled generations do not.
func TestReadSetDedup(t *testing.T) {
	mgr := NewTxManager()
	tx := mgr.Register()
	a, b := NewCASObj[int](1), NewCASObj[int](2)
	tx.Begin()
	defer tx.AbortNow()
	_, wa := a.NbtcLoad(tx)
	_, wb := b.NbtcLoad(tx)
	tx.AddToReadSet(wa)
	tx.AddToReadSet(wa) // duplicate of the last entry: dropped
	if len(tx.reads) != 1 {
		t.Fatalf("read set has %d entries after duplicate add, want 1", len(tx.reads))
	}
	tx.AddToReadSet(wb)
	tx.AddToReadSet(wa) // same cell, but not consecutive: kept
	if len(tx.reads) != 3 {
		t.Fatalf("read set has %d entries, want 3", len(tx.reads))
	}
	// A bumped generation is new evidence, not a duplicate: the repeated
	// same-generation witness is dropped, the bumped one is kept.
	wa2 := wa
	wa2.gen++
	tx.AddToReadSet(wa)
	tx.AddToReadSet(wa2)
	if len(tx.reads) != 4 {
		t.Fatalf("read set has %d entries after generation bump, want 4", len(tx.reads))
	}
}

// TestReadOnlyAllocsUnpooledZero pins the allocation cost of a warm
// read-only transaction at zero WITHOUT pooling: the read-set array is
// reused in place because a fast-path commit never publishes it, and the
// elided publication is the only allocation the general read-only path
// performs.
func TestReadOnlyAllocsUnpooledZero(t *testing.T) {
	mgr := NewTxManager() // pooling off
	tx := mgr.Register()
	a, b := NewCASObj[uint64](1), NewCASObj[uint64](2)
	body := func() error {
		v, w := a.NbtcLoad(tx)
		tx.AddToReadSet(w)
		_ = v
		v, w = b.NbtcLoad(tx)
		tx.AddToReadSet(w)
		_ = v
		return nil
	}
	// Warm up: first Begin allocates the read-set array once.
	for i := 0; i < 8; i++ {
		if err := tx.RunRetry(body); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		_ = tx.RunRetry(body)
	})
	if allocs != 0 {
		t.Fatalf("warm read-only transaction allocates %.2f objects/run without pooling, want 0", allocs)
	}
}
