// Per-Tx recycling arenas: the allocation-free hot path.
//
// Every successful critical CAS used to install a freshly heap-allocated
// cell, and every structure insert a freshly allocated node, so at high
// transaction rates GC pressure dominated the non-algorithmic cost of the
// core. This file adds per-Tx freelists for cells (cellArena) and structure
// nodes (NodePool) with EBR-guarded recycling:
//
//   - a displaced cell or unlinked node is retired into the retiring Tx's
//     EBR limbo (Handle.RetireInto — no closure allocation);
//   - after the grace period the EBR flush, which runs on the retiring
//     goroutine, hands it to that goroutine's pool (ebr.Pool.Recycle);
//   - reuse bumps the cell's generation counter, so a ReadWitness taken
//     during the cell's previous life can never validate (see
//     cell.witnessValid); nodes carry no identity of their own — their
//     embedded CASObjs do — so node reuse reduces to cell reuse plus the
//     structure's own reset.
//
// Pools are single-owner: only the owning goroutine gets from or recycles
// into them, because EBR flushes run on the retiring handle's goroutine and
// each Tx retires into its own arena. Cells therefore migrate between Txs
// (whoever displaces a cell keeps it), which keeps pools balanced without
// any cross-thread synchronization.
//
// Soundness requires that no thread can reach a recycled block. Two rules
// deliver that:
//
//  1. every goroutine touching pooled structures holds an EBR critical
//     section (Handle.Enter/Exit) across each transaction or bare
//     operation — the harness workers already do; and
//  2. blocks are retired only once unreachable from the live structure
//     (cells when displaced from their slot; nodes at the successful
//     unlink CAS, not at the logical delete).
//
// Witnesses in a stale published read set are the one reference that can
// outlive rule 1 (the read set keeps cells reachable after they are
// unlinked); the per-cell generation counter plus the atomicity of
// cell.gen/cell.slot make that path safe (see cell.witnessValid).
package core

import "medley/internal/ebr"

// poolRetirer is the capability Tx.SetSMR detects to enable pooling: an
// SMR domain handle that can retire objects into pools without allocating.
// *ebr.Handle satisfies it.
type poolRetirer interface {
	Retirer
	RetireInto(pool ebr.Pool, obj any)
}

// txPool is one per-Tx pool (a cellArena[T] or NodePool[N]); settle runs at
// transaction settle to execute deferred CASes and flush pending retires.
type txPool interface {
	settle(tx *Tx, committed bool)
}

// deferredCAS is one commit-deferred CAS (see DeferCAS). pool/obj, when
// set, name a block to retire iff the CAS succeeds — the "whoever unlinks
// retires" rule for deferred unlinks.
type deferredCAS[T comparable] struct {
	slot              *CASObj[T]
	expected, desired T
	pool              ebr.Pool
	obj               any
}

// cellArena is the per-Tx freelist of cell[T] plus the deferred-CAS list
// for T. Single-owner; see the package comment.
type cellArena[T comparable] struct {
	tx   *Tx
	free []*cell[T]
	def  []deferredCAS[T]

	// pending accumulates displaced cells between settles; each settle
	// ships the whole batch to EBR limbo as ONE entry (a cellBatch whose
	// backing array cycles back through the arena), so the per-displacement
	// cost is a plain append instead of a limbo append with its write
	// barriers. Displacements are physical facts independent of the
	// transaction outcome, so the batch flushes on commit and abort alike.
	pending     []*cell[T]
	freeBatches []*cellBatch[T]

	// slab is the bump allocator behind pool misses: cells are carved from
	// a block of cellSlabSize instead of allocated one by one, so a burst
	// of misses (a cold pool, or EBR advance starved by oversubscription
	// parking readers mid-transaction) costs one GC allocation per slab
	// rather than one per cell. Pooled cells are immortal — once carved
	// they circulate through freelists forever — so slab backing memory
	// never needs to free individually.
	slab []cell[T]

	// Plain counters, owner-only; flushed to the owner's StatShard once
	// per settle so the hot path performs no atomic ops for telemetry.
	gets, hits, retires uint64
}

// cellBatch is one settle's worth of displaced cells riding through EBR
// limbo as a single entry.
type cellBatch[T comparable] struct {
	cells []*cell[T]
}

// arenaFor returns tx's arena for T, creating it on first use. The lookup
// is a linear scan with a type assertion — a pointer comparison of type
// descriptors — over the handful of instantiations a Tx ever sees.
func arenaFor[T comparable](tx *Tx) *cellArena[T] {
	for _, p := range tx.pools {
		if a, ok := p.(*cellArena[T]); ok {
			return a
		}
	}
	a := &cellArena[T]{tx: tx}
	tx.pools = append(tx.pools, a)
	return a
}

// cellSlabSize is how many cells one pool-miss slab carves into.
const cellSlabSize = 32

// get pops a recycled cell (grace period already elapsed) or carves one
// from the miss slab, binding it to slot o.
func (a *cellArena[T]) get(o *CASObj[T]) *cell[T] {
	a.gets++
	if n := len(a.free); n > 0 {
		c := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		c.slot.Store(o)
		a.hits++
		return c
	}
	if len(a.slab) == 0 {
		a.slab = make([]cell[T], cellSlabSize)
	}
	c := &a.slab[0]
	a.slab = a.slab[1:]
	c.slot.Store(o)
	return c
}

// put returns a never-published cell for immediate reuse (a CAS install
// that lost its race). No grace period or generation bump is needed: no
// other thread can have observed the cell.
func (a *cellArena[T]) put(c *cell[T]) {
	var zero T
	c.val = zero
	c.desc = nil
	c.serial = 0
	c.prev = nil
	a.free = append(a.free, c)
}

// Recycle implements ebr.Pool: called by the EBR flush on the owning
// goroutine once the grace period has elapsed, with either one cell or a
// whole cellBatch. The generation bump is what invalidates any witness
// that still names a recycled cell.
func (a *cellArena[T]) Recycle(obj any) {
	if b, ok := obj.(*cellBatch[T]); ok {
		for i, c := range b.cells {
			a.recycleCell(c)
			b.cells[i] = nil
		}
		b.cells = b.cells[:0]
		a.freeBatches = append(a.freeBatches, b)
		return
	}
	a.recycleCell(obj.(*cell[T]))
}

func (a *cellArena[T]) recycleCell(c *cell[T]) {
	c.gen.Add(1)
	var zero T
	c.val = zero
	c.desc = nil
	c.serial = 0
	c.prev = nil
	// slot is deliberately left stale: witnessValid reads it only when the
	// generation still matches, and re-checks the generation after the slot
	// load, so a stale (always-valid-memory) slot pointer can never produce
	// a false validation — and skipping the atomic store plus its write
	// barrier is measurable at recycle rates of millions per second.
	a.free = append(a.free, c)
}

// settle implements txPool: on commit, execute the deferred CASes in
// registration order, retiring attached blocks on CAS success; in both
// outcomes, ship the pending displaced cells to limbo as one batch and
// truncate for reuse.
func (a *cellArena[T]) settle(tx *Tx, committed bool) {
	if committed {
		for i := range a.def {
			d := &a.def[i]
			if d.slot.casTx(tx, d.expected, d.desired) && d.pool != nil {
				a.retires++
				tx.pr.RetireInto(d.pool, d.obj)
			}
		}
	}
	clear(a.def)
	a.def = a.def[:0]
	if len(a.pending) > 0 {
		var b *cellBatch[T]
		if n := len(a.freeBatches); n > 0 {
			b = a.freeBatches[n-1]
			a.freeBatches[n-1] = nil
			a.freeBatches = a.freeBatches[:n-1]
		} else {
			b = &cellBatch[T]{}
		}
		// Swap: the batch takes the filled slice, the arena keeps the
		// batch's empty spare for the next transaction.
		b.cells, a.pending = a.pending, b.cells[:0]
		tx.pr.RetireInto(a, b)
	}
	flushPoolStats(tx, &a.gets, &a.hits, &a.retires)
}

// flushPoolStats folds a pool's owner-local counters into the owner's
// StatShard (a few single-writer counter stores per transaction rather
// than an atomic add per allocation) and zeroes them.
func flushPoolStats(tx *Tx, gets, hits, retires *uint64) {
	shard := tx.desc.shard
	if *gets != 0 {
		bumpN(&shard.PoolGets, *gets)
		bumpN(&shard.PoolHits, *hits)
		*gets, *hits = 0, 0
	}
	if *retires != 0 {
		bumpN(&shard.PoolRetires, *retires)
		*retires = 0
	}
}

// newCell sources a cell for slot o: from tx's arena under pooling, from
// the heap otherwise (including tx == nil).
func newCell[T comparable](tx *Tx, o *CASObj[T]) *cell[T] {
	if tx != nil && tx.pooled {
		return arenaFor[T](tx).get(o)
	}
	c := &cell[T]{}
	c.slot.Store(o)
	return c
}

// retireCell schedules a displaced (published, now unreachable-from-slot)
// cell for recycling after a grace period. Without pooling the cell is
// simply dropped for the garbage collector, which is always safe.
func retireCell[T comparable](tx *Tx, c *cell[T]) {
	if c == nil || tx == nil || !tx.pooled {
		return
	}
	a := arenaFor[T](tx)
	a.retires++
	a.pending = append(a.pending, c)
	// The batch ships at this Tx's next settle. A displacement outside any
	// transaction (deferred unlinks run post-settle, helping during bare
	// ops) just waits in pending until the Tx transacts again — the grace
	// clock starts later than necessary, which is always safe.
}

// freeCell returns a never-published cell directly to tx's arena.
func freeCell[T comparable](tx *Tx, c *cell[T]) {
	if tx != nil && tx.pooled {
		arenaFor[T](tx).put(c)
	}
}

// DeferCAS registers a plain value CAS on o to run after the transaction
// commits — the allocation-free replacement for the
// tx.Defer(func() { o.CAS(...) }) unlink idiom of the transformed
// structures. Outside a transaction the CAS executes immediately, matching
// Tx.Defer's semantics. Deferred CASes run at settle after closure
// cleanups, in registration order per value type; displaced cells are
// retired into the Tx's arena.
func DeferCAS[T comparable](tx *Tx, o *CASObj[T], expected, desired T) {
	if !tx.InTx() {
		o.casTx(tx, expected, desired)
		return
	}
	a := arenaFor[T](tx)
	a.def = append(a.def, deferredCAS[T]{slot: o, expected: expected, desired: desired})
}

// DeferCASRetire is DeferCAS for deferred unlinks under node pooling: if
// (and only if) the deferred CAS succeeds, n is retired into pool — the
// thread that unlinks a node is the one that retires it, so a node whose
// unlink is instead performed by a later traversal is retired exactly once,
// by that traversal. With a nil pool (pooling off) it degrades to DeferCAS
// and the node is left to the garbage collector.
func DeferCASRetire[T comparable, N any](tx *Tx, o *CASObj[T], expected, desired T, pool *NodePool[N], n *N) {
	if pool == nil {
		DeferCAS(tx, o, expected, desired)
		return
	}
	if !tx.InTx() {
		if o.casTx(tx, expected, desired) {
			pool.Retire(n)
		}
		return
	}
	a := arenaFor[T](tx)
	a.def = append(a.def, deferredCAS[T]{slot: o, expected: expected, desired: desired, pool: pool, obj: n})
}

// ResetSlot prepares a pooled node's embedded CASObj for reuse: the
// resident cell, if any, stays attached (InitTx will reuse it in place)
// but has its generation bumped and contents cleared so it retains no
// references and can never satisfy an old witness. Only call on nodes
// whose grace period has elapsed (i.e., from a NodePool reset function).
func ResetSlot[T comparable](o *CASObj[T]) {
	c := o.state.Load()
	if c == nil {
		return
	}
	c.gen.Add(1)
	var zero T
	c.val = zero
	c.desc = nil
	c.serial = 0
	c.prev = nil
}

// NodePool is a per-Tx freelist of structure nodes of type N with the same
// EBR retire-to-pool cycle as cells. A nil *NodePool (pooling off) is a
// valid receiver for every method, so structures can call through it
// unconditionally.
//
// Nodes must only be retired once they are unreachable from the live
// structure — at the successful physical unlink, not the logical delete —
// and reused nodes must be fully reinitialized by the caller (keys, values,
// and every embedded CASObj via InitTx). Structures whose lazy maintenance
// keeps references to unlinked nodes beyond any EBR grace period (e.g. a
// rebuilt-on-a-timer index snapshot) must not pool nodes at all; see the
// audit notes in the structure packages.
type NodePool[N any] struct {
	tx      *Tx
	free    []*N
	pending []*N // retired this transaction; routed to EBR on commit

	freeBatches []*nodeBatch[N]

	gets, hits, retires uint64 // owner-only; flushed per settle
}

// nodeBatch is one settle's worth of retired nodes riding through EBR
// limbo as a single entry.
type nodeBatch[N any] struct {
	nodes []*N
}

// Resettable is implemented by pooled node types that need to drop
// references and invalidate embedded CASObj cells (via ResetSlot) before
// reuse; ResetForReuse runs post-grace, on the recycling goroutine. It is
// an interface method rather than a callback parameter because
// materializing a generic function value allocates a dictionary closure on
// every call — on the hot path, exactly the allocation this file removes.
type Resettable interface {
	ResetForReuse()
}

// PoolOf returns tx's node pool for N, or nil when pooling is off.
func PoolOf[N any](tx *Tx) *NodePool[N] {
	if tx == nil || !tx.pooled {
		return nil
	}
	for _, p := range tx.pools {
		if np, ok := p.(*NodePool[N]); ok {
			return np
		}
	}
	np := &NodePool[N]{tx: tx}
	tx.pools = append(tx.pools, np)
	return np
}

// Get pops a recycled node, or returns nil when the pool is empty or the
// receiver is nil — callers fall back to the heap.
func (p *NodePool[N]) Get() *N {
	if p == nil {
		return nil
	}
	p.gets++
	if n := len(p.free); n > 0 {
		nd := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.hits++
		return nd
	}
	return nil
}

// Put returns a never-published node for immediate reuse (a failed insert
// attempt whose node was never linked).
func (p *NodePool[N]) Put(n *N) {
	if p == nil {
		return
	}
	p.free = append(p.free, n)
}

// Retire schedules a node for recycling: deferred to commit inside a
// transaction (an aborted transaction's unlinks never took effect),
// routed straight to EBR limbo outside one. A nil receiver (pooling off)
// leaves the node to the garbage collector, which is the pre-pooling
// behavior and always safe.
func (p *NodePool[N]) Retire(n *N) {
	if p == nil {
		return
	}
	if p.tx.InTx() {
		p.pending = append(p.pending, n)
		return
	}
	p.retires++
	p.tx.pr.RetireInto(p, n)
}

// Recycle implements ebr.Pool.
func (p *NodePool[N]) Recycle(obj any) {
	if b, ok := obj.(*nodeBatch[N]); ok {
		for i, n := range b.nodes {
			p.recycleNode(n)
			b.nodes[i] = nil
		}
		b.nodes = b.nodes[:0]
		p.freeBatches = append(p.freeBatches, b)
		return
	}
	p.recycleNode(obj.(*N))
}

func (p *NodePool[N]) recycleNode(n *N) {
	if r, ok := any(n).(Resettable); ok {
		r.ResetForReuse()
	}
	p.free = append(p.free, n)
}

// settle implements txPool: commit ships the pending retires to EBR as
// one batch, abort discards them (their unlinks never happened).
func (p *NodePool[N]) settle(tx *Tx, committed bool) {
	if committed && len(p.pending) > 0 {
		p.retires += uint64(len(p.pending))
		var b *nodeBatch[N]
		if n := len(p.freeBatches); n > 0 {
			b = p.freeBatches[n-1]
			p.freeBatches[n-1] = nil
			p.freeBatches = p.freeBatches[:n-1]
		} else {
			b = &nodeBatch[N]{}
		}
		b.nodes, p.pending = p.pending, b.nodes[:0]
		// Swap as in cellArena.settle: batch takes the filled slice.
		tx.pr.RetireInto(p, b)
	}
	clear(p.pending)
	p.pending = p.pending[:0]
	flushPoolStats(tx, &p.gets, &p.hits, &p.retires)
}
