// Package core implements Medley, an obstruction-free realization of
// nonblocking transaction composition (NBTC) as described in
//
//	Wentao Cai, Haosen Wen, and Michael L. Scott.
//	"Transactional Composition of Nonblocking Data Structures." SPAA 2023.
//
// NBTC observes that in an already-nonblocking data structure only the
// critical memory accesses — for the most part the linearizing load of a
// read-only operation and the CAS instructions inside an update operation's
// speculation interval — need to take effect atomically for a transaction to
// be strictly serializable. Medley executes those critical accesses
// speculatively and commits them with an M-compare-N-swap (MCNS), a software
// multi-word CAS derived from Harris et al. (DISC 2002).
//
// # Differences from the paper's C++ implementation
//
// The C++ system packs each transactional word into a 128-bit
// {value, counter} pair and uses CMPXCHG16B; the counter distinguishes
// installed descriptors (odd) from real values (even) and defeats ABA. Go
// has no 128-bit CAS, but it has a garbage collector, so this package keeps
// each transactional word (CASObj) as an atomic pointer to an immutable
// cell. A fresh cell is allocated for every successful CAS; pointer
// identity of cells therefore provides exactly the validation the paper's
// counters provide, and a non-nil desc field plays the role of the odd
// counter. Descriptor cells additionally carry a back-pointer to their slot
// and the displaced value cell, which lets any helper uninstall a descriptor
// it encounters without touching the owner's (unsynchronized) write set.
//
// # Transaction lifecycle
//
// A TxManager holds shared metadata; each worker goroutine obtains a Tx via
// TxManager.Register and runs transactions with Tx.Run or Tx.RunRetry (or
// explicit Begin/End/Abort). Data structure operations take a *Tx receiver
// argument; passing a nil or inactive Tx elides all transactional
// instrumentation, exactly like the paper's OpStarter.
//
// Transactions are isolated and consistent (strictly serializable) and
// obstruction-free: a conflicting descriptor encountered mid-operation is
// eagerly finalized — aborted if still InPrep, helped to completion if
// InProg — and uninstalled.
package core
