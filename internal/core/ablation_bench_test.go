package core

import (
	"testing"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the cost
// of the cell indirection, of transactional instrumentation relative to
// plain CAS, of read-set validation as transactions grow, and of the
// publish-at-commit read-set copy.

// BenchmarkPlainCAS is the baseline: uncontended CAS through the cell
// indirection.
func BenchmarkPlainCAS(b *testing.B) {
	o := NewCASObj[uint64](0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := o.Load()
		o.CAS(v, v+1)
	}
}

// BenchmarkNbtcCASInTx measures a single-write transaction end to end: the
// marginal cost of Begin + install + commit + uninstall over a plain CAS.
func BenchmarkNbtcCASInTx(b *testing.B) {
	mgr := NewTxManager()
	tx := mgr.Register()
	o := NewCASObj[uint64](0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tx.Run(func() error {
			v, _ := o.NbtcLoad(tx)
			o.NbtcCAS(tx, v, v+1, true, true)
			return nil
		})
	}
}

// BenchmarkTxSizeSweep isolates how commit cost scales with the number of
// critical accesses per transaction (the paper's transactions hold 1-10).
func BenchmarkTxSizeSweep(b *testing.B) {
	for _, size := range []int{1, 4, 10} {
		b.Run(itoa(size), func(b *testing.B) {
			mgr := NewTxManager()
			tx := mgr.Register()
			slots := make([]*CASObj[uint64], size)
			for i := range slots {
				slots[i] = NewCASObj[uint64](0)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = tx.Run(func() error {
					for _, s := range slots {
						tx.OpStart()
						v, _ := s.NbtcLoad(tx)
						s.NbtcCAS(tx, v, v+1, true, true)
					}
					return nil
				})
			}
		})
	}
}

// BenchmarkReadOnlyTxValidation measures read-set tracking + commit
// validation for read-only transactions of growing size (invisible
// readers: no shared-memory writes at all).
func BenchmarkReadOnlyTxValidation(b *testing.B) {
	for _, size := range []int{1, 4, 10} {
		b.Run(itoa(size), func(b *testing.B) {
			mgr := NewTxManager()
			tx := mgr.Register()
			slots := make([]*CASObj[uint64], size)
			for i := range slots {
				slots[i] = NewCASObj[uint64](uint64(i))
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = tx.Run(func() error {
					for _, s := range slots {
						tx.OpStart()
						_, w := s.NbtcLoad(tx)
						tx.AddToReadSet(w)
					}
					return nil
				})
			}
		})
	}
}

// BenchmarkAbortRollback measures the cost of installing and rolling back
// a transaction's writes (the uninstall-to-prev path).
func BenchmarkAbortRollback(b *testing.B) {
	mgr := NewTxManager()
	tx := mgr.Register()
	slots := make([]*CASObj[uint64], 4)
	for i := range slots {
		slots[i] = NewCASObj[uint64](0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tx.Run(func() error {
			for _, s := range slots {
				tx.OpStart()
				v, _ := s.NbtcLoad(tx)
				s.NbtcCAS(tx, v, v+1, true, true)
			}
			tx.Abort()
			return nil
		})
	}
}

// BenchmarkCommitFastPathAblation is the commit fast-path ablation: the
// same read-only and single-write transactions with the fast paths on
// (the default dispatch in Tx.End) and off (the full publish/InProg
// handshake). The deltas are the per-commit price of the handshake.
func BenchmarkCommitFastPathAblation(b *testing.B) {
	for _, cfg := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"handshake", false}} {
		mgr := NewTxManager()
		if !cfg.fast {
			mgr.DisableFastPaths()
		}
		tx := mgr.Register()
		o := NewCASObj[uint64](0)
		b.Run("readonly/"+cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = tx.Run(func() error {
					_, w := o.NbtcLoad(tx)
					tx.AddToReadSet(w)
					return nil
				})
			}
		})
		b.Run("singlewrite/"+cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = tx.Run(func() error {
					v, _ := o.NbtcLoad(tx)
					o.NbtcCAS(tx, v, v+1, true, true)
					return nil
				})
			}
		})
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}
