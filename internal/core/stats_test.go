package core

import "testing"

// TestShardStatsAttributesWorkPerWorker checks that the sharded counters
// both attribute work to the registering worker and aggregate to the same
// totals Stats always reported.
func TestShardStatsAttributesWorkPerWorker(t *testing.T) {
	mgr := NewTxManager()
	obj := NewCASObj(uint64(0))
	tx1 := mgr.Register()
	tx2 := mgr.Register()

	for i := 0; i < 5; i++ {
		if err := tx1.Run(func() error {
			v, w := obj.NbtcLoad(tx1)
			tx1.AddToReadSet(w)
			obj.NbtcCAS(tx1, v, uint64(i), true, true)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		_ = tx2.Run(func() error {
			tx2.Abort()
			return nil
		})
	}

	shards := mgr.ShardStats()
	if len(shards) != 2 {
		t.Fatalf("want 2 shards, got %d", len(shards))
	}
	if shards[0].Commits != 5 || shards[0].Aborts != 0 {
		t.Fatalf("worker 1 shard wrong: %+v", shards[0])
	}
	if shards[1].Commits != 0 || shards[1].Aborts != 3 {
		t.Fatalf("worker 2 shard wrong: %+v", shards[1])
	}

	total := mgr.Stats()
	if total.Begins != 8 || total.Commits != 5 || total.Aborts != 3 {
		t.Fatalf("aggregate wrong: %+v", total)
	}
	var sum Stats
	for _, s := range shards {
		sum.add(s)
	}
	if sum != total {
		t.Fatalf("shard sum %+v != Stats %+v", sum, total)
	}
}
